# Developer entry points. CI runs the same commands (.github/workflows/ci.yml),
# so a green `make lint test` locally means the gates pass remotely too.

GO ?= go

.PHONY: all build test lint spatiallint fuzz

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint runs the repo's static gates: gofmt, go vet, and the spatiallint
# suite (the determinism / arena-aliasing / snapshot-completeness analyzers
# under internal/analysis — see internal/analysis/README.md for the waiver
# syntax). staticcheck and govulncheck also run when installed; CI always
# installs them, locally they are optional.
lint: spatiallint
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "staticcheck not installed; skipped (CI runs it)"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; \
	else echo "govulncheck not installed; skipped (CI runs it)"; fi

# spatiallint runs standalone (sources via go list) and again under
# `go vet -vettool`, which additionally covers _test.go files.
spatiallint:
	$(GO) run ./cmd/spatiallint ./...
	$(GO) build -o $(CURDIR)/.bin/spatiallint ./cmd/spatiallint
	$(GO) vet -vettool=$(CURDIR)/.bin/spatiallint ./...

# fuzz gives the wire formats a short adversarial shake — the stats JSON
# round trip and the binary ingest frame decoder; CI runs the same legs on
# every push.
fuzz:
	$(GO) test ./internal/engine -run FuzzStatsJSONRoundTrip -fuzz FuzzStatsJSONRoundTrip -fuzztime 10s
	$(GO) test ./internal/wire -run FuzzWireFrameRoundTrip -fuzz FuzzWireFrameRoundTrip -fuzztime 10s
