package spatialcrowd_test

import (
	"fmt"
	"math"
	"testing"

	"spatialcrowd"
	"spatialcrowd/internal/geo"
	"spatialcrowd/internal/stats"
)

func TestPublicQuickstartFlow(t *testing.T) {
	cfg := spatialcrowd.SyntheticConfig{
		Workers: 200, Requests: 1000, Periods: 50, GridSide: 4, Seed: 1,
	}
	instance, model, err := spatialcrowd.Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	params := spatialcrowd.DefaultParams()

	base, err := spatialcrowd.NewBaseP(params)
	if err != nil {
		t.Fatal(err)
	}
	oracle := spatialcrowd.OracleFromModel(model, 7)
	if err := base.Calibrate(oracle, instance.Grid.NumCells(), 100); err != nil {
		t.Fatal(err)
	}

	maps, err := spatialcrowd.NewMAPS(params, base.BasePrice())
	if err != nil {
		t.Fatal(err)
	}
	base.WarmStart(maps.CellStats)

	res, err := spatialcrowd.Run(instance, maps, spatialcrowd.DefaultSimConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Revenue <= 0 || res.Offered != 1000 {
		t.Fatalf("unexpected result %+v", res)
	}
}

func TestPublicExpectedRevenueMatchesPaperExample(t *testing.T) {
	// The running example through the public API: E[U] = 4.075 for prices
	// {3, 3, 2} (the paper reports 4.1 after rounding).
	grid := spatialcrowd.Grid(geo.SquareGrid(8, 4))
	tasks := []spatialcrowd.Task{
		{ID: 1, Origin: spatialcrowd.Point{X: 1, Y: 5}, Distance: 1.3},
		{ID: 2, Origin: spatialcrowd.Point{X: 1.5, Y: 5.5}, Distance: 0.7},
		{ID: 3, Origin: spatialcrowd.Point{X: 5, Y: 5}, Distance: 1.0},
	}
	workers := []spatialcrowd.Worker{
		{ID: 1, Loc: spatialcrowd.Point{X: 3, Y: 5}, Radius: 2.5},
		{ID: 2, Loc: spatialcrowd.Point{X: 7, Y: 5}, Radius: 2.5},
		{ID: 3, Loc: spatialcrowd.Point{X: 5, Y: 3}, Radius: 2.5},
	}
	table, err := stats.NewTable([]float64{1, 2, 3}, []float64{0.9, 0.8, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	model := tableModel{table}
	got, err := spatialcrowd.ExpectedRevenueExact(grid, tasks, workers, []float64{3, 3, 2}, model)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-4.075) > 1e-9 {
		t.Fatalf("E[U] = %v, want 4.075", got)
	}
}

type tableModel struct{ d *stats.Table }

func (m tableModel) Dist(int) stats.Dist { return m.d }

func TestPublicMaxMatchingRevenue(t *testing.T) {
	tasks := []spatialcrowd.Task{
		{ID: 1, Origin: spatialcrowd.Point{X: 1, Y: 5}, Distance: 1.3},
		{ID: 2, Origin: spatialcrowd.Point{X: 1.5, Y: 5.5}, Distance: 0.7},
		{ID: 3, Origin: spatialcrowd.Point{X: 5, Y: 5}, Distance: 1.0},
	}
	workers := []spatialcrowd.Worker{
		{ID: 1, Loc: spatialcrowd.Point{X: 3, Y: 5}, Radius: 2.5},
		{ID: 2, Loc: spatialcrowd.Point{X: 7, Y: 5}, Radius: 2.5},
		{ID: 3, Loc: spatialcrowd.Point{X: 5, Y: 3}, Radius: 2.5},
	}
	got := spatialcrowd.MaxMatchingRevenue(tasks, workers, []float64{3, 3, 2})
	if math.Abs(got-5.9) > 1e-9 { // r1 on w1 (3.9) + r3 on w2/w3 (2.0)
		t.Fatalf("max matching revenue = %v, want 5.9", got)
	}
}

func TestPublicBuildPeriodContext(t *testing.T) {
	grid := spatialcrowd.Grid(geo.SquareGrid(8, 4))
	tasks := []spatialcrowd.Task{{ID: 1, Origin: spatialcrowd.Point{X: 1, Y: 5}, Distance: 2}}
	workers := []spatialcrowd.Worker{{ID: 1, Loc: spatialcrowd.Point{X: 3, Y: 5}, Radius: 2.5, Duration: 1}}
	ctx := spatialcrowd.BuildPeriodContext(grid, 0, tasks, workers)
	if len(ctx.Tasks) != 1 || ctx.Graph.NumEdges() != 1 {
		t.Fatalf("context: %d tasks, %d edges", len(ctx.Tasks), ctx.Graph.NumEdges())
	}
	// Drive a strategy manually through the context.
	sdr, err := spatialcrowd.NewSDR(spatialcrowd.DefaultParams(), 2)
	if err != nil {
		t.Fatal(err)
	}
	prices := sdr.Prices(ctx)
	if len(prices) != 1 {
		t.Fatalf("prices = %v", prices)
	}
}

func TestPublicExperimentRunner(t *testing.T) {
	r := spatialcrowd.NewRunner()
	r.Scale = 100
	r.ProbeBudget = 30
	s, err := r.VaryDemandMean()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 5 {
		t.Fatalf("points = %d", len(s.Points))
	}
}

// ExampleNewMAPS reproduces the paper's Example 5 through the public API:
// with Table 1's acceptance statistics, MAPS prices the two-task grid at 3
// and the single-task grid at 2.
func ExampleNewMAPS() {
	grid := spatialcrowd.Grid(geo.SquareGrid(8, 4))
	tasks := []spatialcrowd.Task{
		{ID: 1, Origin: spatialcrowd.Point{X: 1, Y: 5}, Distance: 1.3},
		{ID: 2, Origin: spatialcrowd.Point{X: 1.5, Y: 5.5}, Distance: 0.7},
		{ID: 3, Origin: spatialcrowd.Point{X: 5, Y: 5}, Distance: 1.0},
	}
	workers := []spatialcrowd.Worker{
		{ID: 1, Loc: spatialcrowd.Point{X: 3, Y: 5}, Radius: 2.5, Duration: 1},
		{ID: 2, Loc: spatialcrowd.Point{X: 7, Y: 5}, Radius: 2.5, Duration: 1},
		{ID: 3, Loc: spatialcrowd.Point{X: 5, Y: 3}, Radius: 2.5, Duration: 1},
	}

	params := spatialcrowd.Params{PMin: 1, PMax: 3, Alpha: 0.5, Eps: 0.2, Delta: 0.01}
	maps, err := spatialcrowd.NewMAPS(params, 2)
	if err != nil {
		panic(err)
	}
	maps.SetLadder([]float64{1, 2, 3})
	for _, cell := range []int{8, 10} { // the grids of (1,5) and (5,5)
		cs := maps.CellStats(cell)
		cs.Seed(1, 100000, 90000) // S(1) = 0.9 (Table 1)
		cs.Seed(2, 100000, 80000) // S(2) = 0.8
		cs.Seed(3, 100000, 50000) // S(3) = 0.5
	}

	ctx := spatialcrowd.BuildPeriodContext(grid, 0, tasks, workers)
	prices := maps.Prices(ctx)
	fmt.Printf("r1: %.0f  r2: %.0f  r3: %.0f\n", prices[0], prices[1], prices[2])
	// Output: r1: 3  r2: 3  r3: 2
}
