package spatialcrowd_test

import (
	"fmt"
	"math"
	"testing"

	"spatialcrowd"
	"spatialcrowd/internal/geo"
	"spatialcrowd/internal/stats"
)

func TestPublicQuickstartFlow(t *testing.T) {
	cfg := spatialcrowd.SyntheticConfig{
		Workers: 200, Requests: 1000, Periods: 50, GridSide: 4, Seed: 1,
	}
	instance, model, err := spatialcrowd.Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	params := spatialcrowd.DefaultParams()

	base, err := spatialcrowd.NewBaseP(params)
	if err != nil {
		t.Fatal(err)
	}
	oracle := spatialcrowd.OracleFromModel(model, 7)
	if err := base.Calibrate(oracle, instance.Grid.NumCells(), 100); err != nil {
		t.Fatal(err)
	}

	maps, err := spatialcrowd.NewMAPS(params, base.BasePrice())
	if err != nil {
		t.Fatal(err)
	}
	base.WarmStart(maps.CellStats)

	res, err := spatialcrowd.Run(instance, maps, spatialcrowd.DefaultSimConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Revenue <= 0 || res.Offered != 1000 {
		t.Fatalf("unexpected result %+v", res)
	}
}

func TestPublicExpectedRevenueMatchesPaperExample(t *testing.T) {
	// The running example through the public API: E[U] = 4.075 for prices
	// {3, 3, 2} (the paper reports 4.1 after rounding).
	grid := spatialcrowd.Grid(geo.SquareGrid(8, 4))
	tasks := []spatialcrowd.Task{
		{ID: 1, Origin: spatialcrowd.Point{X: 1, Y: 5}, Distance: 1.3},
		{ID: 2, Origin: spatialcrowd.Point{X: 1.5, Y: 5.5}, Distance: 0.7},
		{ID: 3, Origin: spatialcrowd.Point{X: 5, Y: 5}, Distance: 1.0},
	}
	workers := []spatialcrowd.Worker{
		{ID: 1, Loc: spatialcrowd.Point{X: 3, Y: 5}, Radius: 2.5},
		{ID: 2, Loc: spatialcrowd.Point{X: 7, Y: 5}, Radius: 2.5},
		{ID: 3, Loc: spatialcrowd.Point{X: 5, Y: 3}, Radius: 2.5},
	}
	table, err := stats.NewTable([]float64{1, 2, 3}, []float64{0.9, 0.8, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	model := tableModel{table}
	got, err := spatialcrowd.ExpectedRevenueExact(grid, tasks, workers, []float64{3, 3, 2}, model)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-4.075) > 1e-9 {
		t.Fatalf("E[U] = %v, want 4.075", got)
	}
}

type tableModel struct{ d *stats.Table }

func (m tableModel) Dist(int) stats.Dist { return m.d }

func TestPublicMaxMatchingRevenue(t *testing.T) {
	tasks := []spatialcrowd.Task{
		{ID: 1, Origin: spatialcrowd.Point{X: 1, Y: 5}, Distance: 1.3},
		{ID: 2, Origin: spatialcrowd.Point{X: 1.5, Y: 5.5}, Distance: 0.7},
		{ID: 3, Origin: spatialcrowd.Point{X: 5, Y: 5}, Distance: 1.0},
	}
	workers := []spatialcrowd.Worker{
		{ID: 1, Loc: spatialcrowd.Point{X: 3, Y: 5}, Radius: 2.5},
		{ID: 2, Loc: spatialcrowd.Point{X: 7, Y: 5}, Radius: 2.5},
		{ID: 3, Loc: spatialcrowd.Point{X: 5, Y: 3}, Radius: 2.5},
	}
	got := spatialcrowd.MaxMatchingRevenue(tasks, workers, []float64{3, 3, 2})
	if math.Abs(got-5.9) > 1e-9 { // r1 on w1 (3.9) + r3 on w2/w3 (2.0)
		t.Fatalf("max matching revenue = %v, want 5.9", got)
	}
}

func TestPublicBuildPeriodContext(t *testing.T) {
	grid := spatialcrowd.Grid(geo.SquareGrid(8, 4))
	tasks := []spatialcrowd.Task{{ID: 1, Origin: spatialcrowd.Point{X: 1, Y: 5}, Distance: 2}}
	workers := []spatialcrowd.Worker{{ID: 1, Loc: spatialcrowd.Point{X: 3, Y: 5}, Radius: 2.5, Duration: 1}}
	ctx := spatialcrowd.BuildPeriodContext(grid, 0, tasks, workers)
	if len(ctx.Tasks) != 1 || ctx.Graph.NumEdges() != 1 {
		t.Fatalf("context: %d tasks, %d edges", len(ctx.Tasks), ctx.Graph.NumEdges())
	}
	// Drive a strategy manually through the context.
	sdr, err := spatialcrowd.NewSDR(spatialcrowd.DefaultParams(), 2)
	if err != nil {
		t.Fatal(err)
	}
	prices := sdr.Prices(ctx)
	if len(prices) != 1 {
		t.Fatalf("prices = %v", prices)
	}
}

func TestPublicPeriodContextBuilder(t *testing.T) {
	grid := spatialcrowd.Grid(geo.SquareGrid(8, 4))
	var b spatialcrowd.PeriodContextBuilder
	for period := 0; period < 5; period++ {
		tasks := []spatialcrowd.Task{
			{ID: period * 10, Origin: spatialcrowd.Point{X: 1, Y: 5}, Distance: 2},
			{ID: period*10 + 1, Origin: spatialcrowd.Point{X: float64(period), Y: 1}, Distance: 3},
		}
		workers := []spatialcrowd.Worker{{ID: 1, Loc: spatialcrowd.Point{X: 3, Y: 5}, Radius: 2.5, Duration: 1}}
		got := b.Build(grid, period, tasks, workers)
		want := spatialcrowd.BuildPeriodContext(grid, period, tasks, workers)
		if len(got.Tasks) != len(want.Tasks) || got.Graph.NumEdges() != want.Graph.NumEdges() ||
			len(got.Cells) != len(want.Cells) {
			t.Fatalf("period %d: builder context diverges: %d tasks/%d edges/%d cells, want %d/%d/%d",
				period, len(got.Tasks), got.Graph.NumEdges(), len(got.Cells),
				len(want.Tasks), want.Graph.NumEdges(), len(want.Cells))
		}
	}
}

func TestPublicExperimentRunner(t *testing.T) {
	r := spatialcrowd.NewRunner()
	r.Scale = 100
	r.ProbeBudget = 30
	s, err := r.VaryDemandMean()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 5 {
		t.Fatalf("points = %d", len(s.Points))
	}
}

// ExampleNewMAPS reproduces the paper's Example 5 through the public API:
// with Table 1's acceptance statistics, MAPS prices the two-task grid at 3
// and the single-task grid at 2.
func ExampleNewMAPS() {
	grid := spatialcrowd.Grid(geo.SquareGrid(8, 4))
	tasks := []spatialcrowd.Task{
		{ID: 1, Origin: spatialcrowd.Point{X: 1, Y: 5}, Distance: 1.3},
		{ID: 2, Origin: spatialcrowd.Point{X: 1.5, Y: 5.5}, Distance: 0.7},
		{ID: 3, Origin: spatialcrowd.Point{X: 5, Y: 5}, Distance: 1.0},
	}
	workers := []spatialcrowd.Worker{
		{ID: 1, Loc: spatialcrowd.Point{X: 3, Y: 5}, Radius: 2.5, Duration: 1},
		{ID: 2, Loc: spatialcrowd.Point{X: 7, Y: 5}, Radius: 2.5, Duration: 1},
		{ID: 3, Loc: spatialcrowd.Point{X: 5, Y: 3}, Radius: 2.5, Duration: 1},
	}

	params := spatialcrowd.Params{PMin: 1, PMax: 3, Alpha: 0.5, Eps: 0.2, Delta: 0.01}
	maps, err := spatialcrowd.NewMAPS(params, 2)
	if err != nil {
		panic(err)
	}
	maps.SetLadder([]float64{1, 2, 3})
	for _, cell := range []int{8, 10} { // the grids of (1,5) and (5,5)
		cs := maps.CellStats(cell)
		cs.Seed(1, 100000, 90000) // S(1) = 0.9 (Table 1)
		cs.Seed(2, 100000, 80000) // S(2) = 0.8
		cs.Seed(3, 100000, 50000) // S(3) = 0.5
	}

	ctx := spatialcrowd.BuildPeriodContext(grid, 0, tasks, workers)
	prices := maps.Prices(ctx)
	fmt.Printf("r1: %.0f  r2: %.0f  r3: %.0f\n", prices[0], prices[1], prices[2])
	// Output: r1: 3  r2: 3  r3: 2
}

// TestPublicBuildPeriodContextGrouping covers BuildPeriodContext directly:
// cell attribution, per-cell distance-descending ordering, and the range
// constraint encoded in the graph.
func TestPublicBuildPeriodContextGrouping(t *testing.T) {
	grid := spatialcrowd.Grid(geo.SquareGrid(100, 10)) // 10x10 cells of 10 units
	tasks := []spatialcrowd.Task{
		{ID: 0, Origin: spatialcrowd.Point{X: 5, Y: 5}, Distance: 2},   // cell 0
		{ID: 1, Origin: spatialcrowd.Point{X: 7, Y: 3}, Distance: 9},   // cell 0
		{ID: 2, Origin: spatialcrowd.Point{X: 3, Y: 8}, Distance: 4},   // cell 0
		{ID: 3, Origin: spatialcrowd.Point{X: 55, Y: 5}, Distance: 1},  // cell 5
		{ID: 4, Origin: spatialcrowd.Point{X: 95, Y: 95}, Distance: 6}, // cell 99
	}
	workers := []spatialcrowd.Worker{
		{ID: 0, Loc: spatialcrowd.Point{X: 6, Y: 6}, Radius: 5},   // reaches cell-0 tasks
		{ID: 1, Loc: spatialcrowd.Point{X: 50, Y: 50}, Radius: 1}, // reaches nobody
	}
	ctx := spatialcrowd.BuildPeriodContext(grid, 3, tasks, workers)

	if ctx.Period != 3 {
		t.Fatalf("period = %d, want 3", ctx.Period)
	}
	if len(ctx.Tasks) != len(tasks) || len(ctx.Workers) != len(workers) {
		t.Fatalf("context sizes: %d tasks, %d workers", len(ctx.Tasks), len(ctx.Workers))
	}
	if len(ctx.Cells) != 3 {
		t.Fatalf("cells = %v, want 3 groups", ctx.Cells)
	}
	// Cell 0's tasks are ordered by distance descending: 9, 4, 2.
	got := ctx.Cells[0]
	want := []int{1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cell 0 order = %v, want %v", got, want)
		}
	}
	for _, ti := range ctx.Cells[0] {
		if ctx.Tasks[ti].Cell != 0 {
			t.Fatalf("task %d attributed to cell %d, want 0", ti, ctx.Tasks[ti].Cell)
		}
	}
	// Worker 0 reaches exactly the three cell-0 tasks; worker 1 none.
	if ctx.Graph.NumEdges() != 3 {
		t.Fatalf("edges = %d, want 3", ctx.Graph.NumEdges())
	}
	for _, ti := range []int{0, 1, 2} {
		if !ctx.Graph.HasEdge(ti, 0) {
			t.Fatalf("missing edge task %d - worker 0", ti)
		}
	}
	if ctx.Graph.HasEdge(3, 0) || ctx.Graph.HasEdge(4, 0) || ctx.Graph.HasEdge(0, 1) {
		t.Fatal("range constraint violated in graph")
	}
}

// TestPublicEngineReplayMatchesRun checks the public streaming facade: a
// deterministic engine replaying an instance reproduces Run's revenue.
func TestPublicEngineReplayMatchesRun(t *testing.T) {
	cfg := spatialcrowd.SyntheticConfig{
		Workers: 200, Requests: 1000, Periods: 50, GridSide: 4, Seed: 1,
	}
	instance, model, err := spatialcrowd.Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	params := spatialcrowd.DefaultParams()
	base, err := spatialcrowd.NewBaseP(params)
	if err != nil {
		t.Fatal(err)
	}
	if err := base.Calibrate(spatialcrowd.OracleFromModel(model, 7), instance.Grid.NumCells(), 100); err != nil {
		t.Fatal(err)
	}

	simRes, err := spatialcrowd.Run(instance, base, spatialcrowd.DefaultSimConfig())
	if err != nil {
		t.Fatal(err)
	}

	eng, err := spatialcrowd.NewEngine(spatialcrowd.EngineConfig{
		Grid: instance.Grid, Strategy: base, AutoDecide: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	events, err := spatialcrowd.ReplayInstance(eng, instance)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if events != int(st.Events) {
		t.Fatalf("replay submitted %d events, engine counted %d", events, st.Events)
	}
	if rel := math.Abs(st.Revenue-simRes.Revenue) / simRes.Revenue; rel > 0.02 {
		t.Fatalf("engine revenue %.2f vs sim %.2f (rel diff %.4f)", st.Revenue, simRes.Revenue, rel)
	}
	if ds := eng.Poll(); len(ds) == 0 {
		t.Fatal("no decisions emitted")
	}
}

// TestPublicMobilityReplay exercises the worker-lifecycle surface through
// the facade: a generated mobility trace replays through a sharded engine
// (moves, cross-shard migrations) with lifecycle accounting exposed in the
// stats, and an explicit WorkerMoveEvent relocates supply.
func TestPublicMobilityReplay(t *testing.T) {
	cfg := spatialcrowd.SyntheticConfig{
		Workers: 200, Requests: 1000, Periods: 50, GridSide: 4, Seed: 1,
	}
	instance, _, err := spatialcrowd.Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	moves := spatialcrowd.GenerateMobilityTrace(instance, spatialcrowd.MobilityConfig{MoveProb: 0.3, Seed: 5})
	if len(moves) == 0 {
		t.Fatal("empty mobility trace")
	}
	params := spatialcrowd.DefaultParams()
	eng, err := spatialcrowd.NewEngine(spatialcrowd.EngineConfig{
		Grid:   instance.Grid,
		Shards: 2,
		NewStrategy: func(int) spatialcrowd.Strategy {
			s, _ := spatialcrowd.NewSDR(params, 2)
			return s
		},
		AutoDecide: true,
		OnDecision: func(spatialcrowd.Decision) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := spatialcrowd.ReplayInstanceMobility(eng, instance, moves); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	lc := eng.Stats().Lifecycle
	if lc.Onlines == 0 || lc.Moves+lc.Migrations == 0 {
		t.Fatalf("lifecycle counters flat: %+v", lc)
	}

	// Explicit move through the event API: supply follows the worker.
	det, err := spatialcrowd.NewEngine(spatialcrowd.EngineConfig{
		Grid: spatialcrowd.NewSquareGrid(100, 10), Strategy: mustSDR(t, params), AutoDecide: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range []spatialcrowd.EngineEvent{
		spatialcrowd.TickEvent(0),
		spatialcrowd.WorkerOnlineEvent(spatialcrowd.Worker{ID: 1, Loc: spatialcrowd.Point{X: 5, Y: 5}, Radius: 3, Duration: 10}),
		spatialcrowd.WorkerMoveEvent(1, spatialcrowd.Point{X: 55, Y: 55}),
		spatialcrowd.TaskArrivalEvent(spatialcrowd.Task{ID: 1, Origin: spatialcrowd.Point{X: 55, Y: 55}, Distance: 2, Valuation: 100}),
		spatialcrowd.TickEvent(1),
	} {
		if err := det.Submit(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := det.Close(); err != nil {
		t.Fatal(err)
	}
	if st := det.Stats(); st.Served != 1 {
		t.Fatalf("moved worker did not serve the task at its new position: %+v", st)
	}
}

func mustSDR(t *testing.T, p spatialcrowd.Params) spatialcrowd.Strategy {
	t.Helper()
	s, err := spatialcrowd.NewSDR(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
