// Package spatialcrowd is a Go implementation of "Dynamic Pricing in Spatial
// Crowdsourcing: A Matching-Based Approach" (Tong et al., SIGMOD 2018).
//
// A spatial-crowdsourcing platform (ride hailing, food delivery, gig
// micro-tasks) must set one unit price per grid cell per time period so that
// its expected total revenue — over requesters' random accept/reject
// decisions and the maximum-weight matching of accepting tasks to
// range-constrained workers — is maximized. The package provides:
//
//   - BaseP: the base pricing strategy (Algorithm 1), which estimates
//     per-grid Myerson reserve prices from accept/reject probes and prices
//     everything at their average;
//   - MAPS: the matching-based dynamic pricing strategy (Algorithms 2–3),
//     which greedily distributes dependent supply across grids with
//     augmenting-path validation and prices each grid with a UCB index;
//   - the paper's comparison baselines SDR, SDE, and CappedUCB;
//   - a market simulator, synthetic and Beijing-like workload generators,
//     and the experiment drivers that regenerate every figure of the
//     paper's evaluation;
//   - a streaming dispatch engine (Engine, cmd/serve) that serves the same
//     strategies online over an event stream with sharded market state and
//     incremental matching.
//
// # Quick start
//
//	cfg := spatialcrowd.SyntheticConfig{Workers: 500, Requests: 2000, Seed: 1}
//	instance, model, _ := spatialcrowd.Synthetic(cfg)
//
//	params := spatialcrowd.DefaultParams()
//	base, _ := spatialcrowd.NewBaseP(params)
//	_ = base.Calibrate(spatialcrowd.OracleFromModel(model, 7), instance.Grid.NumCells(), 200)
//
//	maps, _ := spatialcrowd.NewMAPS(params, base.BasePrice())
//	result, _ := spatialcrowd.Run(instance, maps, spatialcrowd.DefaultSimConfig())
//	fmt.Println(result.Revenue)
//
// See the examples/ directory for complete programs and EXPERIMENTS.md for
// the paper-versus-measured record of every reproduced figure.
package spatialcrowd

import (
	"math/rand"

	"spatialcrowd/internal/core"
	"spatialcrowd/internal/engine"
	"spatialcrowd/internal/exp"
	"spatialcrowd/internal/geo"
	"spatialcrowd/internal/market"
	"spatialcrowd/internal/match"
	"spatialcrowd/internal/pworld"
	"spatialcrowd/internal/roadnet"
	"spatialcrowd/internal/server"
	"spatialcrowd/internal/server/loadgen"
	"spatialcrowd/internal/sim"
	"spatialcrowd/internal/spatial"
	"spatialcrowd/internal/stats"
	"spatialcrowd/internal/wal"
	"spatialcrowd/internal/window"
	"spatialcrowd/internal/workload"
)

// Geometry and market model.
type (
	// Point is a planar location.
	Point = geo.Point
	// Rect is an axis-aligned rectangle.
	Rect = geo.Rect
	// Grid is the uniform partition of the region into local markets.
	Grid = geo.Grid
	// Task is a spatial task with origin, destination, travel distance, and
	// the requester's private valuation.
	Task = market.Task
	// Worker is a crowd worker with a location and range constraint.
	Worker = market.Worker
	// Move is one worker relocation (Period, WorkerID, To) — the shared
	// mobility-trace format of the simulator (SimConfig.OnMove), the
	// mobility generator (MobilityTrace), and the engine's replay.
	Move = market.Move
	// Instance is a complete market: spatial partition, periods, tasks, and
	// workers.
	Instance = market.Instance
	// ValuationModel is the hidden per-grid demand distribution.
	ValuationModel = market.ValuationModel
)

// Spatial backends (the pluggable geometry layer; see internal/spatial).
type (
	// Space is the spatial-backend interface every pricing layer depends
	// on: a partition of the plane into cells plus a travel metric. Grid
	// satisfies it directly.
	Space = spatial.Space
	// GridSpace is the uniform-grid backend of the paper's Definition 1.
	GridSpace = spatial.GridSpace
	// RoadSpace is the road-network backend: node-snapped positions,
	// shortest-path distances with an LRU cache, cells from node clusters.
	RoadSpace = spatial.RoadSpace
	// Partitioner maps cells to engine shards.
	Partitioner = spatial.Partitioner
	// RoadNetwork is a directed weighted street graph embedded in the plane.
	RoadNetwork = roadnet.Network
)

// NewGridSpace wraps a grid as a named spatial backend.
func NewGridSpace(g Grid) GridSpace { return spatial.NewGridSpace(g) }

// NewRoadSpace clusters a road network's nodes into the given number of
// cells and returns the road backend.
func NewRoadSpace(net *RoadNetwork, cells int) (*RoadSpace, error) {
	return spatial.NewRoadSpace(net, cells)
}

// ModPartition returns the engine's historical cell-mod-shards partitioner.
func ModPartition(shards int) Partitioner { return spatial.ModPartition(shards) }

// BalancedPartition splits a space's cells into contiguous near-equal runs —
// the partitioner of choice for backends with irregular cell counts.
func BalancedPartition(space Space, shards int) Partitioner {
	return spatial.BalancedPartition(space, shards)
}

// Pricing strategies.
type (
	// Params bundles the pricing knobs (price bounds, ladder step, accuracy).
	Params = core.Params
	// Strategy is the interface every pricing algorithm implements.
	Strategy = core.Strategy
	// PeriodContext is one period's market state as strategies see it.
	PeriodContext = core.PeriodContext
	// BaseP is the base pricing strategy of Section 3.
	BaseP = core.BaseP
	// MAPS is the matching-based dynamic pricing strategy of Section 4.
	MAPS = core.MAPS
	// SDR is the supply-demand-ratio heuristic baseline.
	SDR = core.SDR
	// SDE is the exponential supply-demand-difference heuristic baseline.
	SDE = core.SDE
	// CappedUCB is the per-grid independent limited-supply pricing baseline.
	CappedUCB = core.CappedUCB
	// ParametricMAPS is a MAPS variant with a logistic demand fit instead of
	// the nonparametric UCB estimator (ablation A6).
	ParametricMAPS = core.ParametricMAPS
	// LogisticDemand fits an acceptance curve S(p) online.
	LogisticDemand = core.LogisticDemand
	// ProbeOracle answers base pricing's calibration probes.
	ProbeOracle = core.ProbeOracle
)

// Simulation and experiments.
type (
	// SimConfig controls a simulation run.
	SimConfig = sim.Config
	// SimResult is one run's revenue, counts, and resource metrics.
	SimResult = sim.Result
	// PeriodStats is one period of the simulation trace (SimConfig.Trace).
	PeriodStats = sim.PeriodStats
	// SyntheticConfig parameterizes the Table 3 synthetic workload.
	SyntheticConfig = workload.SyntheticConfig
	// BeijingConfig parameterizes the Beijing-like real-data stand-in.
	BeijingConfig = workload.BeijingConfig
	// BeijingVariant selects the rush-hour or late-night time window.
	BeijingVariant = workload.BeijingVariant
	// RoadConfig parameterizes the road-network Beijing-like workload.
	RoadConfig = workload.RoadConfig
	// MobilityConfig parameterizes the synthetic mobility-trace generator.
	MobilityConfig = workload.MobilityConfig
	// Runner executes the paper's experiments.
	Runner = exp.Runner
	// Series is one figure column: a parameter sweep across strategies.
	Series = exp.Series
)

// Unified window-execution core: the single canonical
// price -> accept -> assign pipeline shared by the offline simulator (Run)
// and the streaming engine's shards. Library users pricing live batches
// outside either driver can execute windows directly through it.
type (
	// WindowExecutor owns one window pipeline and its reusable arenas
	// (graph builder, pricing context, matchers). One executor serves one
	// goroutine.
	WindowExecutor = window.Executor
	// WindowGraphMode selects the batch graph builder (cell index or k-d
	// tree candidates).
	WindowGraphMode = window.GraphMode
	// WindowPriced is a priced, not-yet-resolved window.
	WindowPriced = window.Priced
	// WindowOutcome is the settled result of one window.
	WindowOutcome = window.Outcome
	// PriceCountError is the typed contract violation for strategies that
	// return the wrong number of prices.
	PriceCountError = window.PriceCountError
)

// Graph-builder modes for NewWindowExecutor.
const (
	// WindowGraphCellIndex enumerates worker candidates through the spatial
	// cell index — the offline simulator's construction, byte-identical
	// adjacency for deterministic replay.
	WindowGraphCellIndex = window.GraphCellIndex
	// WindowGraphKD enumerates candidates through a k-d tree — same edge
	// set, faster on large pools.
	WindowGraphKD = window.GraphKD
)

// NewWindowExecutor returns a window executor over the given spatial
// backend and graph mode.
func NewWindowExecutor(space Space, mode WindowGraphMode) *WindowExecutor {
	return window.NewExecutor(space, mode)
}

// Strategy-state snapshots (exact, for engine checkpoint/restore).
type (
	// StateSnapshotter is the optional Strategy extension for strategies
	// whose learned state can be captured and restored exactly (MAPS,
	// CappedUCB, ParametricMAPS).
	StateSnapshotter = core.StateSnapshotter
	// StrategyState is a strategy's complete serializable learned state.
	StrategyState = core.StrategyState
	// CellSnapshot is one cell's serialized learning state.
	CellSnapshot = core.CellSnapshot
)

// Streaming dispatch engine (the online counterpart of Run; see cmd/serve).
// The Engine also exposes Checkpoint(io.Writer) / Restore(io.Reader) /
// RestoredPeriod() for crash-safe state snapshots: checkpoint a
// deterministic engine, restore into a fresh one, resume the stream from
// RestoredPeriod()+1, and the run's revenue is reproduced exactly (see
// EXPERIMENTS.md for the recipe).
type (
	// Engine is the real-time streaming dispatch engine: it ingests task /
	// worker / decision events, prices batches every window with any
	// Strategy, and assigns accepting tasks with incremental augmenting
	// paths over k-d tree candidates.
	Engine = engine.Engine
	// EngineConfig parameterizes NewEngine (shards, window, strategy).
	EngineConfig = engine.Config
	// EngineStats is a snapshot of engine throughput, latency quantiles,
	// per-shard revenue, and worker-lifecycle counters.
	EngineStats = engine.Stats
	// EngineLifecycleStats counts worker-lifecycle transitions: onlines,
	// duplicate onlines, moves, cross-shard migrations, pinned moves, and
	// retirements by reason.
	EngineLifecycleStats = engine.LifecycleStats
	// WorkerState is one stage of the engine's per-worker state machine
	// (offline, online, quoted-held, assigned, retired).
	WorkerState = engine.WorkerState
	// EngineEvent is one element of the engine's input stream.
	EngineEvent = engine.Event
	// Decision is one element of the engine's output stream: a quote,
	// requester outcome, or (re)assignment for a single task.
	Decision = engine.Decision
)

// NewEngine starts a streaming dispatch engine. With EngineConfig.Shards = 0
// it runs deterministically in the caller's goroutine; otherwise events fan
// out to per-shard goroutines that each own a subset of grid cells.
func NewEngine(cfg EngineConfig) (*Engine, error) { return engine.New(cfg) }

// WAL is the segmented, CRC32C-framed write-ahead event log. Attach one via
// EngineConfig.WAL and every submitted event is appended (group-commit
// fsynced per WALSyncEvery) before it is applied; after a crash, reopen the
// directory, attach the log to a fresh engine, and call Engine.RecoverWAL
// (optionally with a checkpoint reader) to rebuild the acknowledged state
// exactly — then resume the stream with ReplayOpts.SkipEvents set to the
// recovered Stats().Events. The dispatch server does all of this per tenant
// automatically via TenantConfig.WALDir.
type WAL = wal.Log

// OpenFileWAL opens (creating if needed) a durable on-disk WAL in dir.
// syncEvery > 1 batches fsyncs every that many appends (call Sync for a
// durability barrier sooner); <= 1 fsyncs every append.
func OpenFileWAL(dir string, syncEvery int) (*WAL, error) {
	st, err := wal.NewFileStore(dir)
	if err != nil {
		return nil, err
	}
	opt := wal.Options{}
	if syncEvery > 1 {
		opt.Sync = wal.SyncBatch
		opt.BatchAppends = syncEvery
	}
	return wal.Open(st, opt)
}

// ReplayInstance feeds a complete instance into the engine as the canonical
// event stream (per period: a Tick, worker arrivals, task arrivals) and
// returns the number of events submitted. On a deterministic AutoDecide
// engine this is the streaming equivalent of Run.
func ReplayInstance(e *Engine, in *Instance) (int, error) { return engine.Replay(e, in) }

// ReplayInstanceMobility is ReplayInstance with a mobility trace
// interleaved: each move of period t becomes a worker-move event right
// after the tick that closes period t's batch, matching the simulator's
// reposition-after-assignment ordering. A deterministic AutoDecide engine
// with EngineConfig.CellIndexGraphs set, replaying the moves Run recorded
// through SimConfig.OnMove, reproduces Run's revenue exactly.
func ReplayInstanceMobility(e *Engine, in *Instance, moves []Move) (int, error) {
	return engine.ReplayMobility(e, in, moves)
}

// ReplayOpts parameterizes ReplayInstanceWith: an optional mobility trace,
// a starting period (resuming after Engine.Restore), and a per-period hook
// (periodic checkpoints).
type ReplayOpts = engine.ReplayOpts

// ReplayInstanceWith is the general replay driver: ReplayInstance and
// ReplayInstanceMobility are thin wrappers over it. Use From =
// Engine.RestoredPeriod() + 1 to resume an interrupted replay after a
// checkpoint restore, and AfterPeriod to write periodic checkpoints.
func ReplayInstanceWith(e *Engine, in *Instance, opts ReplayOpts) (int, error) {
	return engine.ReplayWith(e, in, opts)
}

// GenerateMobilityTrace fabricates a random per-period worker mobility
// trace for an instance (workers drift toward neighboring cells), for
// stress-testing the engine's move/migration path. For the
// demand-following trace of a specific simulation, record SimConfig.OnMove
// instead.
func GenerateMobilityTrace(in *Instance, cfg MobilityConfig) []Move {
	return workload.MobilityTrace(in, cfg)
}

// TaskArrivalEvent announces a new task to the engine.
func TaskArrivalEvent(t Task) EngineEvent { return engine.TaskArrival(t) }

// WorkerOnlineEvent adds a worker to the engine's pool.
func WorkerOnlineEvent(w Worker) EngineEvent { return engine.WorkerOnline(w) }

// WorkerOfflineEvent withdraws a worker by ID, repairing any provisional
// assignment it holds.
func WorkerOfflineEvent(id int) EngineEvent { return engine.WorkerOffline(id) }

// WorkerMoveEvent relocates an online worker. Within a shard the pool entry
// moves in place; across shards the engine migrates the worker with a
// retire/admit handshake so no ghost supply survives.
func WorkerMoveEvent(id int, to Point) EngineEvent { return engine.WorkerMove(id, to) }

// AcceptDecisionEvent is a requester's reply to a price quote (engines
// running with AutoDecide disabled).
func AcceptDecisionEvent(taskID int, accept bool) EngineEvent {
	return engine.AcceptDecision(taskID, accept)
}

// TickEvent advances the engine clock; crossing a window boundary closes
// and prices the open batch of every shard.
func TickEvent(period int) EngineEvent { return engine.Tick(period) }

// ErrEngineBusy is returned by Engine.TrySubmit when the bounded ingest
// queue is full — the hook admission control (the dispatch server's 429
// path) is built on.
var ErrEngineBusy = engine.ErrBusy

// EngineQueueDepths reports the engine's bounded-queue occupancy, for
// backpressure monitoring.
type EngineQueueDepths = engine.QueueDepths

// DefaultEngineShards is the shard count used when none is specified:
// GOMAXPROCS clamped to the cell count (an engine never needs more shards
// than cells), floor 1.
func DefaultEngineShards(cells int) int { return engine.DefaultShards(cells) }

type (
	// DispatchServer is the network-facing dispatch service: HTTP event
	// ingestion with admission control, streaming quote delivery (SSE +
	// long-poll), one isolated engine per tenant, Prometheus /metrics, and
	// graceful drain with atomic checkpoints. See internal/server for the
	// endpoint table.
	DispatchServer = server.Server
	// DispatchConfig parameterizes NewDispatchServer.
	DispatchConfig = server.Config
	// DispatchTenant is one city's isolated engine + quote hub inside a
	// DispatchServer.
	DispatchTenant = server.Tenant
	// TenantConfig declares one tenant: name, engine configuration, and
	// optional checkpoint/restore paths.
	TenantConfig = server.TenantConfig
	// IngestResult is the JSON body of every ingest response; Accepted is
	// the durably submitted event count a client resumes after on 429.
	IngestResult = server.IngestResult
	// WireEvent and WireDecision are the JSON wire forms of engine events
	// and decisions.
	WireEvent    = server.WireEvent
	WireDecision = server.WireDecision
	// LoadGenConfig / LoadGenReport parameterize RunLoadGen.
	LoadGenConfig = loadgen.Config
	LoadGenReport = loadgen.Report
)

// NewDispatchServer assembles the dispatch service. The returned server is
// an http.Handler; serve it with net/http and call Drain on shutdown.
func NewDispatchServer(cfg DispatchConfig) (*DispatchServer, error) { return server.New(cfg) }

// RunLoadGen streams an instance's canonical event order into a dispatch
// server over HTTP as chunked NDJSON, following the 429 resume protocol:
// the loopback driver behind `cmd/serve -selftest` and the e2e tests.
func RunLoadGen(cfg LoadGenConfig, in *Instance) (LoadGenReport, error) {
	return loadgen.Run(cfg, in)
}

// WriteEngineCheckpoint checkpoints the engine to path atomically
// (tmp + rename in the destination directory).
func WriteEngineCheckpoint(e *Engine, path string) error {
	return server.WriteCheckpointAtomic(e, path)
}

// Demand distribution families for SyntheticConfig.
const (
	// DemandNormal draws valuations from truncated normals (default).
	DemandNormal = workload.DemandNormal
	// DemandExponential draws valuations from truncated exponentials
	// (Figure 10).
	DemandExponential = workload.DemandExponential
)

// Beijing dataset variants.
const (
	// BeijingRush is dataset #1 (5pm-7pm, heavy demand).
	BeijingRush = workload.BeijingRush
	// BeijingNight is dataset #2 (0am-2am, light demand).
	BeijingNight = workload.BeijingNight
)

// Distance metrics for SyntheticConfig.DistanceMetric.
const (
	// MetricEuclidean is the straight-line travel distance (default).
	MetricEuclidean = workload.MetricEuclidean
	// MetricManhattan is the L1 travel distance.
	MetricManhattan = workload.MetricManhattan
	// MetricRoadNetwork routes trips over a synthetic grid-city road
	// network.
	MetricRoadNetwork = workload.MetricRoadNetwork
)

// NewSquareGrid builds an n x n grid over the square region [0, side]^2 —
// the geometry every workload generator uses. Library users assembling
// custom markets (e.g. feeding the streaming engine) start here.
func NewSquareGrid(side float64, n int) Grid { return geo.SquareGrid(side, n) }

// NewGridOver builds a cols x rows grid over an arbitrary region.
func NewGridOver(region Rect, cols, rows int) Grid { return geo.NewGrid(region, cols, rows) }

// NewParametricMAPS builds the logistic-demand MAPS variant.
func NewParametricMAPS(p Params, basePrice float64) (*ParametricMAPS, error) {
	return core.NewParametricMAPS(p, basePrice)
}

// SmoothPrices applies one pass of spatial price smoothing across
// neighboring cells (Section 4.2.3's practical note). Any spatial backend
// works; a Grid passes directly.
func SmoothPrices(space Space, prices map[int]float64, w float64) map[int]float64 {
	return core.SmoothPrices(space, prices, w)
}

// PriceGap returns the largest absolute price difference between
// neighboring priced cells.
func PriceGap(space Space, prices map[int]float64) float64 {
	return core.PriceGap(space, prices)
}

// DefaultParams returns the paper's experimental pricing parameters:
// prices in [1, 5], ladder step 0.5, accuracy (0.2, 0.01).
func DefaultParams() Params { return core.DefaultParams() }

// DefaultSimConfig returns the default simulator configuration.
func DefaultSimConfig() SimConfig { return sim.DefaultConfig() }

// NewBaseP builds the base pricing strategy (calibrate it before use).
func NewBaseP(p Params) (*BaseP, error) { return core.NewBaseP(p) }

// NewMAPS builds the MAPS strategy around a base price.
func NewMAPS(p Params, basePrice float64) (*MAPS, error) { return core.NewMAPS(p, basePrice) }

// NewSDR builds the supply-demand-ratio baseline.
func NewSDR(p Params, basePrice float64) (*SDR, error) { return core.NewSDR(p, basePrice) }

// NewSDE builds the exponential supply-demand-difference baseline.
func NewSDE(p Params, basePrice float64) (*SDE, error) { return core.NewSDE(p, basePrice) }

// NewCappedUCB builds the per-grid independent UCB baseline.
func NewCappedUCB(p Params, basePrice float64) (*CappedUCB, error) {
	return core.NewCappedUCB(p, basePrice)
}

// Run simulates an instance under a strategy and reports revenue and
// resource metrics.
func Run(in *Instance, strat Strategy, cfg SimConfig) (SimResult, error) {
	return sim.Run(in, strat, cfg)
}

// Synthetic generates a Table 3 synthetic market instance plus the hidden
// valuation model (for calibration oracles).
func Synthetic(cfg SyntheticConfig) (*Instance, ValuationModel, error) {
	return workload.Synthetic(cfg)
}

// BeijingLike generates the Beijing-like stand-in for the paper's real
// datasets (Table 4).
func BeijingLike(cfg BeijingConfig) (*Instance, ValuationModel, error) {
	return workload.BeijingLike(cfg)
}

// BeijingRoad generates the road-network Beijing-like workload: the Table 4
// populations on a synthetic street network, with node-snapped positions,
// shortest-path travel distances, and road-cluster local markets. The
// returned instance carries the RoadSpace in Instance.Space.
func BeijingRoad(cfg RoadConfig) (*Instance, ValuationModel, *RoadSpace, error) {
	return workload.BeijingRoad(cfg)
}

// NewRunner returns the experiment runner with paper-scale defaults.
func NewRunner() *Runner { return exp.NewRunner() }

// BuildPeriodContext assembles the strategy-facing view of one period:
// task projections, the range-constraint bipartite graph, and per-cell
// groupings. Library users driving strategies outside the simulator (e.g.
// pricing live data one batch at a time) use this as the entry point. Any
// spatial backend works; a Grid passes directly.
func BuildPeriodContext(space Space, period int, tasks []Task, workers []Worker) *PeriodContext {
	in := &Instance{Space: space, Periods: period + 1}
	graph := market.BuildBipartiteIndexed(in, tasks, workers)
	return core.BuildContext(space, period, tasks, workers, graph)
}

// PeriodContextBuilder is BuildPeriodContext with reusable scratch arenas:
// the bipartite graph, the task views, and the per-cell groupings are
// rebuilt in place batch over batch, so callers pricing a live stream one
// batch at a time allocate nothing in steady state (the discipline the
// streaming engine's shards use internally). One builder serves one
// goroutine; each Build invalidates the previously returned context.
type PeriodContextBuilder struct {
	cellIx market.CellIndexScratch
	ctx    core.ContextScratch
}

// Build assembles the period context over the builder's arenas. The result
// is identical to BuildPeriodContext's (byte-identical graph adjacency,
// same grouping content).
func (b *PeriodContextBuilder) Build(space Space, period int, tasks []Task, workers []Worker) *PeriodContext {
	graph := market.BuildBipartiteCellIndexScratch(space, tasks, workers, &b.cellIx)
	return core.BuildContextScratch(space, period, tasks, workers, graph, &b.ctx)
}

// OracleFromModel adapts a valuation model into a calibration oracle with
// its own deterministic random stream; it stands in for "requesters who
// recently issued tasks" when simulating.
func OracleFromModel(model ValuationModel, seed int64) ProbeOracle {
	return &modelOracle{model: model, rng: rand.New(rand.NewSource(seed))}
}

type modelOracle struct {
	model ValuationModel
	rng   *rand.Rand
}

// Probe implements ProbeOracle.
func (o *modelOracle) Probe(cell int, price float64) bool {
	return price <= o.model.Dist(cell).Sample(o.rng)
}

// ExpectedRevenueExact computes the exact expected total revenue of pricing
// `tasks` at `prices` against known acceptance probabilities, by full
// possible-world enumeration (Definitions 5–6). It is exponential in the
// task count (limit 20) and intended for analysis and testing.
func ExpectedRevenueExact(space Space, tasks []Task, workers []Worker, prices []float64, model ValuationModel) (float64, error) {
	graph := market.BuildBipartite(tasks, workers)
	probs := make([]float64, len(tasks))
	weights := make([]float64, len(tasks))
	for i := range tasks {
		cell := space.CellOf(tasks[i].Origin)
		probs[i] = stats.Accept(model.Dist(cell), prices[i])
		weights[i] = tasks[i].Distance * prices[i]
	}
	return pworld.ExpectedRevenueExact(&pworld.World{Graph: graph, AcceptProb: probs, Weight: weights})
}

// MaxMatchingRevenue returns the best-case single-period revenue if every
// requester accepted: the maximum-weight matching of the full bipartite
// graph with weights d_r * p_r. Useful as an upper bound in reports.
func MaxMatchingRevenue(tasks []Task, workers []Worker, prices []float64) float64 {
	graph := market.BuildBipartite(tasks, workers)
	weights := make([]float64, len(tasks))
	for i := range tasks {
		weights[i] = tasks[i].Distance * prices[i]
	}
	_, total := match.MaxWeightByLeft(graph, weights)
	return total
}
