// Command gendata emits a generated workload as JSON for inspection or for
// feeding external tooling (plotting, statistics, replay).
//
// Usage:
//
//	gendata -workload synthetic -requests 1000 -workers 300 > market.json
//	gendata -workload beijing-night -scale 100 | jq '.Tasks | length'
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"spatialcrowd"
)

func main() {
	var (
		wl       = flag.String("workload", "synthetic", "synthetic | beijing-rush | beijing-night")
		workers  = flag.Int("workers", 500, "synthetic worker count")
		requests = flag.Int("requests", 2000, "synthetic request count")
		periods  = flag.Int("periods", 100, "synthetic periods")
		gridSide = flag.Int("grid", 10, "synthetic grid side")
		duration = flag.Int("duration", 10, "beijing worker duration")
		scale    = flag.Int("scale", 1, "population divisor")
		seed     = flag.Int64("seed", 42, "seed")
		indent   = flag.Bool("indent", false, "pretty-print JSON")
	)
	flag.Parse()

	var (
		in  *spatialcrowd.Instance
		err error
	)
	switch strings.ToLower(*wl) {
	case "synthetic":
		in, _, err = spatialcrowd.Synthetic(spatialcrowd.SyntheticConfig{
			Workers: *workers, Requests: *requests, Periods: *periods,
			GridSide: *gridSide, Seed: *seed,
		})
	case "beijing-rush":
		in, _, err = spatialcrowd.BeijingLike(spatialcrowd.BeijingConfig{
			Variant: spatialcrowd.BeijingRush, WorkerDuration: *duration, Scale: *scale, Seed: *seed,
		})
	case "beijing-night":
		in, _, err = spatialcrowd.BeijingLike(spatialcrowd.BeijingConfig{
			Variant: spatialcrowd.BeijingNight, WorkerDuration: *duration, Scale: *scale, Seed: *seed,
		})
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *wl)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	enc := json.NewEncoder(os.Stdout)
	if *indent {
		enc.SetIndent("", "  ")
	}
	if err := enc.Encode(in); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
