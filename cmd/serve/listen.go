package main

import (
	"context"
	"fmt"

	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"spatialcrowd/internal/engine"
	"spatialcrowd/internal/server"
	"spatialcrowd/internal/server/loadgen"
	"spatialcrowd/internal/spatial"
)

// buildServer assembles the multi-tenant dispatch server from the flags:
// one isolated engine per -tenants name, all sharing the workload's spatial
// backend and base-price calibration but nothing else.
func buildServer(o *options, s *setup) (*server.Server, []string, error) {
	names := strings.Split(o.tenants, ",")
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
	}
	scfg := server.Config{}
	for _, name := range names {
		tc := server.TenantConfig{
			Name:   name,
			Engine: engineConfig(o, s, !o.quoted),
			Codec:  o.codec, // "" accepts both wire codecs
		}
		if o.ckptDir != "" {
			tc.CheckpointPath = filepath.Join(o.ckptDir, name+".ckpt")
		}
		if o.restore != "" {
			tc.RestoreFrom = o.restore
		}
		if o.walDir != "" {
			// Each tenant owns its log: separate directory, independent
			// recovery. Startup auto-recovers from the tenant's drain
			// checkpoint (when present) plus the WAL tail past it.
			tc.WALDir = filepath.Join(o.walDir, name)
			tc.WALSyncEvery = o.walSync
		}
		scfg.Tenants = append(scfg.Tenants, tc)
	}
	srv, err := server.New(scfg)
	if err != nil {
		return nil, nil, err
	}
	return srv, names, nil
}

// runListen hosts the dispatch service until SIGINT/SIGTERM, then drains:
// ingestion quiesces (503), every tenant writes its checkpoint (when
// -checkpoint-dir is set), engines close, and the listener shuts down.
func runListen(o *options) error {
	s, err := buildSetup(o)
	if err != nil {
		return err
	}
	srv, names, err := buildServer(o, s)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", o.listen)
	if err != nil {
		return err
	}
	mode := "auto-decide (replay traffic carries valuations)"
	if o.quoted {
		mode = "quoted (requesters answer with decision events)"
	}
	cfg := engineConfig(o, s, !o.quoted)
	fmt.Printf("dispatch service on http://%s\n", ln.Addr())
	fmt.Printf("tenants: %s (one engine each: %d shards, window %d, %s strategy)\n",
		strings.Join(names, ", "), cfg.Shards, o.window, o.strategy)
	codec := "json + binary"
	if o.codec != "" {
		codec = o.codec + " only"
	}
	fmt.Printf("spatial backend: %s (%d cells), mode: %s, ingest codec: %s\n",
		spatial.BackendName(s.sp), s.sp.NumCells(), mode, codec)
	if o.ckptDir != "" {
		fmt.Printf("drain checkpoints: %s/<tenant>.ckpt\n", o.ckptDir)
	}
	if o.walDir != "" {
		fmt.Printf("durable wal: %s/<tenant>/ (fsync every %d appends + per-ack group commit)\n",
			o.walDir, o.walSync)
	}

	hs := &http.Server{Handler: srv}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Printf("\n%v: draining...\n", sig)
	case err := <-errCh:
		return err
	}
	if err := srv.Drain(); err != nil {
		fmt.Fprintln(os.Stderr, "serve: drain:", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		return err
	}
	for _, name := range names {
		if t, ok := srv.Tenant(name); ok {
			st := t.Engine().Stats()
			fmt.Printf("\n[%s] ingested %d over HTTP, rejected %d\n%s", name, t.Ingested(), t.Rejected(), st)
		}
	}
	return nil
}

// runSelftest is the loopback smoke test: a real server on a random port,
// the load generator pushing the full synthetic trace over sockets, and an
// exact revenue comparison against an in-process replay of the same trace
// through an identically configured engine. It exercises every layer the
// network path adds (JSON codec, chunked ingest, admission control, drain)
// and fails loudly on any divergence.
func runSelftest(o *options) error {
	s, err := buildSetup(o)
	if err != nil {
		return err
	}

	// Reference: in-process replay, identical engine configuration. For a
	// fixed submission order the engine is deterministic, so the HTTP path
	// must land on exactly this revenue.
	refCfg := engineConfig(o, s, true)
	refCfg.OnDecision = func(engine.Decision) {}
	ref, err := engine.New(refCfg)
	if err != nil {
		return err
	}
	if _, err := engine.ReplayWith(ref, s.in, engine.ReplayOpts{}); err != nil {
		return err
	}
	if err := ref.Close(); err != nil {
		return err
	}
	refStats := ref.Stats()

	// Amortization must be transparent: the same replay with the cache layer
	// flipped has to land on exactly the same revenue before the network leg
	// is worth comparing against either.
	oAlt := *o
	oAlt.amortize = !o.amortize
	altCfg := engineConfig(&oAlt, s, true)
	altCfg.OnDecision = func(engine.Decision) {}
	alt, err := engine.New(altCfg)
	if err != nil {
		return err
	}
	if _, err := engine.ReplayWith(alt, s.in, engine.ReplayOpts{}); err != nil {
		return err
	}
	if err := alt.Close(); err != nil {
		return err
	}
	altStats := alt.Stats()
	fmt.Printf("selftest: amortize on/off revenue %.6f vs %.6f (ctx cache %d/%d hits)\n",
		refStats.Revenue, altStats.Revenue,
		refStats.Cache.CtxHits+altStats.Cache.CtxHits,
		refStats.Cache.CtxHits+refStats.Cache.CtxMisses+altStats.Cache.CtxHits+altStats.Cache.CtxMisses)
	if altStats.Revenue != refStats.Revenue || altStats.Served != refStats.Served {
		return fmt.Errorf("selftest: amortized and fresh replays diverged: revenue %.9f vs %.9f, served %d vs %d",
			refStats.Revenue, altStats.Revenue, refStats.Served, altStats.Served)
	}

	// One codec-restricted tenant per wire codec: the same trace streams
	// over loopback twice, once as chunked NDJSON and once as binary batch
	// frames, and BOTH must land on exactly the in-process revenue — which
	// also proves the two codecs equal each other bit for bit.
	codecs := []string{"json", "binary"}
	primary := o.codec
	if primary == "" {
		primary = "json"
	}
	scfg := server.Config{}
	for _, c := range codecs {
		scfg.Tenants = append(scfg.Tenants, server.TenantConfig{
			Name:   "selftest-" + c,
			Engine: engineConfig(o, s, true),
			Codec:  c,
		})
	}
	srv, err := server.New(scfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()

	fmt.Printf("selftest: %s, %d tasks / %d workers / %d periods, chunk %d, codecs %s (primary %s)\n",
		base, len(s.in.Tasks), len(s.in.Workers), s.in.Periods, o.genChunk,
		strings.Join(codecs, "+"), primary)

	reps := make(map[string]loadgen.Report, len(codecs))
	for _, c := range codecs {
		rep, err := loadgen.Run(loadgen.Config{
			BaseURL:     base,
			Tenant:      "selftest-" + c,
			Codec:       c,
			ChunkEvents: o.genChunk,
			Window:      o.window,
		}, s.in)
		if err != nil {
			return fmt.Errorf("load generator (%s): %w", c, err)
		}
		reps[c] = rep
	}

	if err := srv.Drain(); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		return err
	}

	for _, c := range codecs {
		t, _ := srv.Tenant("selftest-" + c)
		st := t.Engine().Stats()
		rep := reps[c]
		fmt.Printf("selftest[%s]: %d events over loopback in %v (%.0f events/s, %d posts, %d rejections)\n",
			c, rep.Events, rep.Duration.Round(time.Millisecond), rep.EventsPerSec, rep.Posts, rep.Rejections)
		fmt.Printf("selftest[%s]: revenue http=%.6f in-process=%.6f, served %d/%d\n",
			c, st.Revenue, refStats.Revenue, st.Served, refStats.Served)
		if int64(rep.Events) != st.Events {
			return fmt.Errorf("selftest[%s]: loadgen sent %d events, engine counted %d", c, rep.Events, st.Events)
		}
		if st.Revenue != refStats.Revenue || st.Served != refStats.Served {
			return fmt.Errorf("selftest[%s]: HTTP-ingested run diverged from in-process replay: revenue %.9f vs %.9f, served %d vs %d",
				c, st.Revenue, refStats.Revenue, st.Served, refStats.Served)
		}
	}
	if j, b := reps["json"], reps["binary"]; j.EventsPerSec > 0 {
		fmt.Printf("selftest: binary/json ingest speedup %.2fx (%s is the -codec primary)\n",
			b.EventsPerSec/j.EventsPerSec, primary)
	}
	fmt.Println("selftest: PASS (both codecs, exact revenue match, clean drain)")
	return nil
}
