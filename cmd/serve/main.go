// Command serve runs workloads through the streaming dispatch engine
// (internal/engine) in two modes:
//
//   - Replay (default): ingest a generated workload in-process as an event
//     stream and report sustained throughput, decision-latency quantiles,
//     and revenue — the online counterpart of cmd/experiments.
//   - Listen (-listen): host the engine behind the network-facing dispatch
//     service (internal/server): HTTP ingestion with admission control,
//     streaming quote delivery, one isolated engine per -tenants city,
//     Prometheus /metrics, and graceful checkpointed drain on SIGTERM.
//
// Usage:
//
//	serve                         # default synthetic replay, MAPS, auto shards
//	serve -strategy sdr -shards 8
//	serve -beijing rush -duration 15
//	serve -space road             # road-network backend: street-snapped workload
//	serve -det                    # deterministic single-threaded mode
//	serve -mobility 0.3           # synthetic worker mobility: moves + cross-shard migrations
//	serve -requests 100000 -workers 25000
//	serve -checkpoint-every 100   # periodic crash-safe checkpoints to -checkpoint-file
//	serve -restore serve.ckpt     # resume an interrupted replay from a checkpoint
//	serve -wal-dir serve-wal      # durable write-ahead log: kill -9 anywhere, rerun to recover exactly
//	serve -listen :8080           # network mode: one tenant city, HTTP ingestion
//	serve -listen :8080 -tenants beijing,shanghai -checkpoint-dir /var/lib/spatialcrowd
//	serve -selftest               # loopback smoke: server + load generator + revenue check
//
// In replay mode SIGINT/SIGTERM write a final crash-safe checkpoint to
// -checkpoint-file (when -checkpoint-every is enabled) before exiting, so
// an interrupted replay resumes with -restore exactly where it stopped.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"

	"spatialcrowd/internal/core"
	"spatialcrowd/internal/engine"
	"spatialcrowd/internal/market"
	"spatialcrowd/internal/server"
	"spatialcrowd/internal/spatial"
	"spatialcrowd/internal/wal"
	"spatialcrowd/internal/workload"
)

// spaceBackends lists the known -space values; flag validation reports them
// on a typo so the operator never has to read the source to find the set.
var spaceBackends = []string{"grid", "road"}

type modelOracle struct {
	model market.ValuationModel
	rng   *rand.Rand
}

func (o *modelOracle) Probe(cell int, price float64) bool {
	return price <= o.model.Dist(cell).Sample(o.rng)
}

// options collects the parsed flags shared by the replay, listen, and
// selftest modes.
type options struct {
	workers, requests, periods, gridSide int
	beijing                              string
	duration, scale                      int
	strategy, space                      string
	shards, window                       int
	det                                  bool
	mobility                             float64
	seed                                 int64
	probes                               int
	amortize                             bool

	ckptEvery int
	ckptFile  string
	restore   string
	walDir    string
	walSync   int

	listen   string
	tenants  string
	quoted   bool
	ckptDir  string
	selftest bool
	genChunk int
	codec    string
}

func main() {
	var o options
	flag.IntVar(&o.workers, "workers", 5000, "synthetic worker count |W|")
	flag.IntVar(&o.requests, "requests", 20000, "synthetic request count |R|")
	flag.IntVar(&o.periods, "periods", 400, "synthetic horizon T")
	flag.IntVar(&o.gridSide, "grid", 10, "synthetic grid side (G = side^2 cells)")
	flag.StringVar(&o.beijing, "beijing", "", "replay a Beijing-like dataset instead: rush or night")
	flag.IntVar(&o.duration, "duration", 15, "Beijing worker duration delta_w in periods")
	flag.IntVar(&o.scale, "scale", 1, "divide Beijing population sizes by this factor")
	flag.StringVar(&o.strategy, "strategy", "maps", "pricing strategy: maps, basep, sdr, sde")
	flag.StringVar(&o.space, "space", "grid", "spatial backend: "+strings.Join(spaceBackends, " | "))
	flag.IntVar(&o.shards, "shards", 0, "shard goroutines (market partitions); 0 = auto (GOMAXPROCS clamped to cell count)")
	flag.IntVar(&o.window, "window", 1, "periods per pricing batch")
	flag.BoolVar(&o.det, "det", false, "deterministic single-threaded mode (ignores -shards)")
	flag.Float64Var(&o.mobility, "mobility", 0, "per-worker per-period move probability (0 disables the mobility trace)")
	flag.Int64Var(&o.seed, "seed", 42, "workload seed")
	flag.IntVar(&o.probes, "probes", 200, "base-pricing calibration probes per price")
	amortize := flag.String("amortize", "on", "fingerprint-gated window caching and incremental k-d maintenance: on | off (results are bit-identical either way)")

	flag.IntVar(&o.ckptEvery, "checkpoint-every", 0, "write a crash-safe engine checkpoint every k periods (0 disables; SIGINT/SIGTERM also snapshot when enabled)")
	flag.StringVar(&o.ckptFile, "checkpoint-file", "serve.ckpt", "checkpoint path for -checkpoint-every and signal-triggered snapshots")
	flag.StringVar(&o.restore, "restore", "", "restore the engine from this checkpoint and resume the replay after its last period")
	flag.StringVar(&o.walDir, "wal-dir", "", "durable write-ahead log directory: every event is appended before it is applied and the run auto-recovers from the log (plus -restore snapshot) on restart; network mode gives each tenant <dir>/<tenant>/")
	flag.IntVar(&o.walSync, "wal-sync", 64, "fsync the WAL after this many appends (group commit); 1 fsyncs every append")

	flag.StringVar(&o.listen, "listen", "", "network mode: serve the dispatch HTTP API on this address (e.g. :8080) instead of replaying")
	flag.StringVar(&o.tenants, "tenants", "city", "comma-separated tenant (city) names for -listen, one isolated engine each")
	flag.BoolVar(&o.quoted, "quoted", false, "network mode: quote prices and wait for decision events instead of auto-deciding from valuations")
	flag.StringVar(&o.ckptDir, "checkpoint-dir", "", "network mode: write <dir>/<tenant>.ckpt on graceful drain (empty disables)")
	flag.BoolVar(&o.selftest, "selftest", false, "loopback smoke test: start a server on a random port, drive it with the load generator over BOTH wire codecs, verify revenue against an in-process replay")
	flag.IntVar(&o.genChunk, "loadgen-chunk", 5000, "selftest load-generator events per POST")
	flag.StringVar(&o.codec, "codec", "", "ingest wire codec: json | binary (network mode restricts every tenant to it — empty accepts both; selftest always verifies both and reports the selected one)")
	flag.Parse()

	switch o.codec {
	case "", "json", "binary":
	default:
		fatal(fmt.Errorf("unknown -codec %q (want json or binary)", o.codec))
	}

	switch strings.ToLower(*amortize) {
	case "on":
		o.amortize = true
	case "off":
		o.amortize = false
	default:
		fatal(fmt.Errorf("unknown -amortize value %q (want on or off)", *amortize))
	}

	switch {
	case o.selftest:
		if err := runSelftest(&o); err != nil {
			fatal(err)
		}
	case o.listen != "":
		if err := runListen(&o); err != nil {
			fatal(err)
		}
	default:
		if err := runReplay(&o); err != nil {
			fatal(err)
		}
	}
}

// setup is everything both serving modes need: the workload, its spatial
// backend, and a calibrated per-shard strategy factory.
type setup struct {
	in      *market.Instance
	model   market.ValuationModel
	sp      spatial.Space
	factory func(int) core.Strategy
	pb      float64
}

func buildSetup(o *options) (*setup, error) {
	in, model, err := buildInstance(o.space, o.beijing, o.duration, o.scale, o.workers, o.requests, o.periods, o.gridSide, o.seed)
	if err != nil {
		return nil, err
	}
	sp := in.Spatial()

	params := core.DefaultParams()
	basep, err := core.NewBaseP(params)
	if err != nil {
		return nil, err
	}
	oracle := &modelOracle{model: model, rng: rand.New(rand.NewSource(o.seed + 1))}
	if err := basep.Calibrate(oracle, sp.NumCells(), o.probes); err != nil {
		return nil, err
	}
	factory, err := strategyFactory(o.strategy, params, basep)
	if err != nil {
		return nil, err
	}
	return &setup{in: in, model: model, sp: sp, factory: factory, pb: basep.BasePrice()}, nil
}

// engineConfig assembles the engine config for the chosen shard count:
// 0 = auto-size to GOMAXPROCS clamped to the cell count, negative (or
// -det) = deterministic. Irregular (non-grid) spaces get the balanced
// contiguous partitioner. The returned config's Shards is authoritative —
// BalancedPartition may clamp below the request.
func engineConfig(o *options, s *setup, autoDecide bool) engine.Config {
	nShards := o.shards
	if o.det || nShards < 0 {
		nShards = 0
	} else if nShards == 0 {
		nShards = engine.DefaultShards(s.sp.NumCells())
	}
	cfg := engine.Config{
		Space:       s.sp,
		Shards:      nShards,
		Window:      o.window,
		NewStrategy: s.factory,
		AutoDecide:  autoDecide,
		Amortize:    o.amortize,
	}
	if nShards > 0 && spatial.BackendName(s.sp) != "grid" {
		// Irregular cell structures load-balance better in contiguous runs.
		// BalancedPartition clamps to the cell count; size the engine from
		// the partitioner it actually built.
		p := spatial.BalancedPartition(s.sp, nShards)
		cfg.Partitioner = p
		if p.Shards() != nShards {
			fmt.Printf("note: %d shards clamped to %d (space has only that many cells)\n",
				nShards, p.Shards())
			cfg.Shards = p.Shards()
		}
	}
	return cfg
}

// runReplay is the historical mode: stream the generated workload through
// an in-process engine.
func runReplay(o *options) error {
	s, err := buildSetup(o)
	if err != nil {
		return err
	}
	cfg := engineConfig(o, s, true)
	cfg.OnDecision = func(engine.Decision) {} // throughput run: discard the stream

	// -wal-dir makes the replay durable: every event is appended (and
	// group-commit fsynced) before it is applied, so a crash loses at most
	// the unsynced tail and a restart recovers the rest from the log.
	var wlog *wal.Log
	if o.walDir != "" {
		st, err := wal.NewFileStore(o.walDir)
		if err != nil {
			return err
		}
		wopt := wal.Options{}
		if o.walSync > 1 {
			wopt.Sync = wal.SyncBatch
			wopt.BatchAppends = o.walSync
		}
		wlog, err = wal.Open(st, wopt)
		if err != nil {
			return err
		}
		defer wlog.Close()
		cfg.WAL = wlog
	}
	eng, err := engine.New(cfg)
	if err != nil {
		return err
	}

	opts := engine.ReplayOpts{}
	switch {
	case wlog != nil:
		// WAL recovery: snapshot (if any) plus the log tail past it. The
		// recovered event count positions the resumed stream exactly —
		// SkipEvents is event-granular where -restore alone is only
		// period-granular. Without an explicit -restore, auto-recover from
		// -checkpoint-file when it exists: periodic snapshots truncate the
		// log past what they cover, so the snapshot is then mandatory (same
		// auto-recovery the server's tenants do).
		snapPath := o.restore
		if snapPath == "" && o.ckptEvery > 0 {
			if _, err := os.Stat(o.ckptFile); err == nil {
				snapPath = o.ckptFile
			}
		}
		var snap io.Reader
		var sf *os.File
		if snapPath != "" {
			sf, err = os.Open(snapPath)
			if err != nil {
				return err
			}
			snap = sf
		}
		_, err = eng.RecoverWAL(snap)
		if sf != nil {
			sf.Close()
		}
		if err != nil {
			return err
		}
		if recovered := int(eng.Stats().Events); recovered > 0 {
			opts.SkipEvents = recovered
			fmt.Printf("wal recovery: %d events restored (snapshot %q + log %s); resuming past them\n",
				recovered, snapPath, o.walDir)
		}
	case o.restore != "":
		f, err := os.Open(o.restore)
		if err != nil {
			return err
		}
		err = eng.Restore(f)
		f.Close()
		if err != nil {
			return err
		}
		opts.From = eng.RestoredPeriod() + 1
		fmt.Printf("restored checkpoint %s: resuming at period %d\n", o.restore, opts.From)
	}

	// Periodic checkpoints plus signal-triggered ones: SIGINT/SIGTERM mark
	// the interrupted flag; the per-period hook then writes a final
	// atomic snapshot (same tmp+rename path) and stops the replay, so an
	// operator's ^C never loses more than the open period.
	var interrupted atomic.Bool
	errInterrupted := fmt.Errorf("interrupted by signal")
	if o.ckptEvery > 0 {
		sigCh := make(chan os.Signal, 1)
		signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sigCh
			signal.Stop(sigCh)
			interrupted.Store(true)
		}()
		// snapshot writes the atomic checkpoint and, on a WAL-backed run,
		// reclaims the log segments the snapshot now covers — recovery then
		// replays only the tail past it.
		snapshot := func() error {
			var ckLSN uint64
			if wlog != nil {
				ckLSN = eng.WALLastLSN()
			}
			if err := writeCheckpoint(eng, o.ckptFile); err != nil {
				return err
			}
			if wlog != nil {
				if _, err := wlog.TruncateBefore(ckLSN + 1); err != nil {
					return err
				}
			}
			return nil
		}
		opts.AfterPeriod = func(p int) error {
			if interrupted.Load() {
				if err := snapshot(); err != nil {
					return err
				}
				return errInterrupted
			}
			if (p+1)%o.ckptEvery != 0 {
				return nil
			}
			return snapshot()
		}
	}

	if o.mobility > 0 {
		opts.Moves = workload.MobilityTrace(s.in, workload.MobilityConfig{
			MoveProb: o.mobility, Seed: o.seed + 2,
		})
	}

	mode := fmt.Sprintf("%d shards", cfg.Shards)
	if cfg.Shards == 0 {
		mode = "deterministic"
	}
	fmt.Printf("replaying %d tasks / %d workers / %d periods through %s (%s, window %d, p_b %.2f)\n",
		len(s.in.Tasks), len(s.in.Workers), s.in.Periods, o.strategy, mode, o.window, s.pb)
	fmt.Printf("spatial backend: %s (%d cells)\n", spatial.BackendName(s.sp), s.sp.NumCells())
	if len(opts.Moves) > 0 {
		fmt.Printf("mobility trace: %d moves (p=%.2f)\n", len(opts.Moves), o.mobility)
	}

	n, err := engine.ReplayWith(eng, s.in, opts)
	wasInterrupted := false
	if err != nil {
		if !strings.Contains(err.Error(), errInterrupted.Error()) {
			return err
		}
		wasInterrupted = true
	}
	if err := eng.Close(); err != nil {
		return err
	}
	st := eng.Stats()
	if wlog != nil {
		ws := wlog.Stats()
		if cerr := wlog.Close(); cerr != nil && cerr != wal.ErrClosed {
			return cerr
		}
		fmt.Printf("wal: %d..%d durable through %d (%d segments in %s)\n",
			ws.FirstLSN, ws.LastLSN, ws.DurableLSN, ws.Segments, o.walDir)
	}
	if wasInterrupted {
		fmt.Printf("interrupted: checkpoint written to %s (resume with -restore %s)\n", o.ckptFile, o.ckptFile)
	}
	fmt.Printf("submitted %d events\n\n%s", n, st)
	if rs, ok := s.sp.(*spatial.RoadSpace); ok {
		hits, misses := rs.CacheStats()
		fmt.Printf("road dist    %d cache hits, %d misses\n", hits, misses)
	}
	return nil
}

func buildInstance(space, beijing string, duration, scale, workers, requests, periods, gridSide int, seed int64) (*market.Instance, market.ValuationModel, error) {
	variant, err := beijingVariant(beijing)
	if err != nil {
		return nil, nil, err
	}
	switch strings.ToLower(space) {
	case "grid":
		if beijing == "" {
			return workload.Synthetic(workload.SyntheticConfig{
				Workers: workers, Requests: requests, Periods: periods,
				GridSide: gridSide, Seed: seed,
			})
		}
		return workload.BeijingLike(workload.BeijingConfig{
			Variant: variant, WorkerDuration: duration, Scale: scale, Seed: seed,
		})
	case "road":
		// The road backend serves the street-snapped Beijing-like workload
		// (rush unless -beijing night); synthetic flags don't apply.
		in, model, _, err := workload.BeijingRoad(workload.RoadConfig{
			Variant: variant, WorkerDuration: duration, Scale: scale, Seed: seed,
		})
		return in, model, err
	default:
		return nil, nil, fmt.Errorf("unknown -space backend %q (known backends: %s)",
			space, strings.Join(spaceBackends, ", "))
	}
}

// beijingVariant parses the -beijing flag ("" defaults to rush for -space
// road and to the synthetic workload for -space grid).
func beijingVariant(beijing string) (workload.BeijingVariant, error) {
	switch strings.ToLower(beijing) {
	case "", "rush":
		return workload.BeijingRush, nil
	case "night":
		return workload.BeijingNight, nil
	default:
		return 0, fmt.Errorf("unknown -beijing variant %q (want rush or night)", beijing)
	}
}

// strategyFactory builds one private strategy instance per shard, all
// sharing the single base-pricing calibration.
func strategyFactory(name string, params core.Params, basep *core.BaseP) (func(int) core.Strategy, error) {
	pb := basep.BasePrice()
	switch strings.ToLower(name) {
	case "maps":
		return func(int) core.Strategy {
			m, err := core.NewMAPS(params, pb)
			if err != nil {
				fatal(err)
			}
			basep.WarmStart(m.CellStats)
			return m
		}, nil
	case "basep":
		return func(int) core.Strategy {
			b, err := core.NewBaseP(params)
			if err != nil {
				fatal(err)
			}
			b.SetBasePrice(pb)
			return b
		}, nil
	case "sdr":
		return func(int) core.Strategy {
			s, err := core.NewSDR(params, pb)
			if err != nil {
				fatal(err)
			}
			return s
		}, nil
	case "sde":
		return func(int) core.Strategy {
			s, err := core.NewSDE(params, pb)
			if err != nil {
				fatal(err)
			}
			return s
		}, nil
	default:
		return nil, fmt.Errorf("unknown -strategy %q (want maps, basep, sdr, or sde)", name)
	}
}

// writeCheckpoint atomically replaces path with a fresh engine checkpoint
// (write to a temp file, then rename), so a crash mid-write cannot corrupt
// the last good checkpoint.
func writeCheckpoint(eng *engine.Engine, path string) error {
	return server.WriteCheckpointAtomic(eng, path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "serve:", err)
	os.Exit(1)
}
