// Command serve replays a workload through the streaming dispatch engine
// (internal/engine) as an event stream and reports sustained throughput,
// decision-latency quantiles, and revenue. It is the online counterpart of
// cmd/experiments: the same workloads and pricing strategies, but ingested
// as TaskArrival / WorkerOnline / Tick events through the sharded engine
// instead of the offline period simulator.
//
// Usage:
//
//	serve                         # default synthetic replay, MAPS, NumCPU shards
//	serve -strategy sdr -shards 8
//	serve -beijing rush -duration 15
//	serve -space road             # road-network backend: street-snapped workload
//	serve -det                    # deterministic single-threaded mode
//	serve -mobility 0.3           # synthetic worker mobility: moves + cross-shard migrations
//	serve -requests 100000 -workers 25000
//	serve -checkpoint-every 100   # periodic crash-safe checkpoints to -checkpoint-file
//	serve -restore serve.ckpt     # resume an interrupted replay from a checkpoint
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"

	"spatialcrowd/internal/core"
	"spatialcrowd/internal/engine"
	"spatialcrowd/internal/market"
	"spatialcrowd/internal/spatial"
	"spatialcrowd/internal/workload"
)

// spaceBackends lists the known -space values; flag validation reports them
// on a typo so the operator never has to read the source to find the set.
var spaceBackends = []string{"grid", "road"}

type modelOracle struct {
	model market.ValuationModel
	rng   *rand.Rand
}

func (o *modelOracle) Probe(cell int, price float64) bool {
	return price <= o.model.Dist(cell).Sample(o.rng)
}

func main() {
	var (
		workers  = flag.Int("workers", 5000, "synthetic worker count |W|")
		requests = flag.Int("requests", 20000, "synthetic request count |R|")
		periods  = flag.Int("periods", 400, "synthetic horizon T")
		gridSide = flag.Int("grid", 10, "synthetic grid side (G = side^2 cells)")
		beijing  = flag.String("beijing", "", "replay a Beijing-like dataset instead: rush or night")
		duration = flag.Int("duration", 15, "Beijing worker duration delta_w in periods")
		scale    = flag.Int("scale", 1, "divide Beijing population sizes by this factor")
		strategy = flag.String("strategy", "maps", "pricing strategy: maps, basep, sdr, sde")
		space    = flag.String("space", "grid", "spatial backend: "+strings.Join(spaceBackends, " | "))
		shards   = flag.Int("shards", runtime.NumCPU(), "shard goroutines (market partitions)")
		window   = flag.Int("window", 1, "periods per pricing batch")
		det      = flag.Bool("det", false, "deterministic single-threaded mode (ignores -shards)")
		mobility = flag.Float64("mobility", 0, "per-worker per-period move probability (0 disables the mobility trace)")
		seed     = flag.Int64("seed", 42, "workload seed")
		probes   = flag.Int("probes", 200, "base-pricing calibration probes per price")

		ckptEvery = flag.Int("checkpoint-every", 0, "write a crash-safe engine checkpoint every k periods (0 disables)")
		ckptFile  = flag.String("checkpoint-file", "serve.ckpt", "checkpoint path for -checkpoint-every")
		restore   = flag.String("restore", "", "restore the engine from this checkpoint and resume the replay after its last period")
	)
	flag.Parse()

	in, model, err := buildInstance(*space, *beijing, *duration, *scale, *workers, *requests, *periods, *gridSide, *seed)
	if err != nil {
		fatal(err)
	}
	sp := in.Spatial()

	params := core.DefaultParams()
	basep, err := core.NewBaseP(params)
	if err != nil {
		fatal(err)
	}
	oracle := &modelOracle{model: model, rng: rand.New(rand.NewSource(*seed + 1))}
	if err := basep.Calibrate(oracle, sp.NumCells(), *probes); err != nil {
		fatal(err)
	}
	pb := basep.BasePrice()

	factory, err := strategyFactory(*strategy, params, basep)
	if err != nil {
		fatal(err)
	}

	nShards := *shards
	if *det || nShards < 0 {
		nShards = 0
	}
	cfg := engine.Config{
		Space:       sp,
		Shards:      nShards,
		Window:      *window,
		NewStrategy: factory,
		AutoDecide:  true,
		OnDecision:  func(engine.Decision) {}, // throughput run: discard the stream
	}
	if nShards > 0 && spatial.BackendName(sp) != "grid" {
		// Irregular cell structures load-balance better in contiguous runs.
		// BalancedPartition clamps to the cell count; size the engine from
		// the partitioner it actually built.
		p := spatial.BalancedPartition(sp, nShards)
		cfg.Partitioner = p
		if p.Shards() != nShards {
			fmt.Printf("note: %d shards clamped to %d (space has only that many cells)\n",
				nShards, p.Shards())
			nShards = p.Shards()
			cfg.Shards = nShards
		}
	}
	eng, err := engine.New(cfg)
	if err != nil {
		fatal(err)
	}

	opts := engine.ReplayOpts{}
	if *restore != "" {
		f, err := os.Open(*restore)
		if err != nil {
			fatal(err)
		}
		err = eng.Restore(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		opts.From = eng.RestoredPeriod() + 1
		fmt.Printf("restored checkpoint %s: resuming at period %d\n", *restore, opts.From)
	}
	if *ckptEvery > 0 {
		opts.AfterPeriod = func(p int) error {
			if (p+1)%*ckptEvery != 0 {
				return nil
			}
			return writeCheckpoint(eng, *ckptFile)
		}
	}

	if *mobility > 0 {
		opts.Moves = workload.MobilityTrace(in, workload.MobilityConfig{
			MoveProb: *mobility, Seed: *seed + 2,
		})
	}

	mode := fmt.Sprintf("%d shards", nShards)
	if nShards == 0 {
		mode = "deterministic"
	}
	fmt.Printf("replaying %d tasks / %d workers / %d periods through %s (%s, window %d, p_b %.2f)\n",
		len(in.Tasks), len(in.Workers), in.Periods, *strategy, mode, *window, pb)
	fmt.Printf("spatial backend: %s (%d cells)\n", spatial.BackendName(sp), sp.NumCells())
	if len(opts.Moves) > 0 {
		fmt.Printf("mobility trace: %d moves (p=%.2f)\n", len(opts.Moves), *mobility)
	}

	n, err := engine.ReplayWith(eng, in, opts)
	if err != nil {
		fatal(err)
	}
	if err := eng.Close(); err != nil {
		fatal(err)
	}
	st := eng.Stats()
	fmt.Printf("submitted %d events\n\n%s", n, st)
	if rs, ok := sp.(*spatial.RoadSpace); ok {
		hits, misses := rs.CacheStats()
		fmt.Printf("road dist    %d cache hits, %d misses\n", hits, misses)
	}
}

func buildInstance(space, beijing string, duration, scale, workers, requests, periods, gridSide int, seed int64) (*market.Instance, market.ValuationModel, error) {
	variant, err := beijingVariant(beijing)
	if err != nil {
		return nil, nil, err
	}
	switch strings.ToLower(space) {
	case "grid":
		if beijing == "" {
			return workload.Synthetic(workload.SyntheticConfig{
				Workers: workers, Requests: requests, Periods: periods,
				GridSide: gridSide, Seed: seed,
			})
		}
		return workload.BeijingLike(workload.BeijingConfig{
			Variant: variant, WorkerDuration: duration, Scale: scale, Seed: seed,
		})
	case "road":
		// The road backend serves the street-snapped Beijing-like workload
		// (rush unless -beijing night); synthetic flags don't apply.
		in, model, _, err := workload.BeijingRoad(workload.RoadConfig{
			Variant: variant, WorkerDuration: duration, Scale: scale, Seed: seed,
		})
		return in, model, err
	default:
		return nil, nil, fmt.Errorf("unknown -space backend %q (known backends: %s)",
			space, strings.Join(spaceBackends, ", "))
	}
}

// beijingVariant parses the -beijing flag ("" defaults to rush for -space
// road and to the synthetic workload for -space grid).
func beijingVariant(beijing string) (workload.BeijingVariant, error) {
	switch strings.ToLower(beijing) {
	case "", "rush":
		return workload.BeijingRush, nil
	case "night":
		return workload.BeijingNight, nil
	default:
		return 0, fmt.Errorf("unknown -beijing variant %q (want rush or night)", beijing)
	}
}

// strategyFactory builds one private strategy instance per shard, all
// sharing the single base-pricing calibration.
func strategyFactory(name string, params core.Params, basep *core.BaseP) (func(int) core.Strategy, error) {
	pb := basep.BasePrice()
	switch strings.ToLower(name) {
	case "maps":
		return func(int) core.Strategy {
			m, err := core.NewMAPS(params, pb)
			if err != nil {
				fatal(err)
			}
			basep.WarmStart(m.CellStats)
			return m
		}, nil
	case "basep":
		return func(int) core.Strategy {
			b, err := core.NewBaseP(params)
			if err != nil {
				fatal(err)
			}
			b.SetBasePrice(pb)
			return b
		}, nil
	case "sdr":
		return func(int) core.Strategy {
			s, err := core.NewSDR(params, pb)
			if err != nil {
				fatal(err)
			}
			return s
		}, nil
	case "sde":
		return func(int) core.Strategy {
			s, err := core.NewSDE(params, pb)
			if err != nil {
				fatal(err)
			}
			return s
		}, nil
	default:
		return nil, fmt.Errorf("unknown -strategy %q (want maps, basep, sdr, or sde)", name)
	}
}

// writeCheckpoint atomically replaces path with a fresh engine checkpoint
// (write to a temp file, then rename), so a crash mid-write cannot corrupt
// the last good checkpoint.
func writeCheckpoint(eng *engine.Engine, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := eng.Checkpoint(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "serve:", err)
	os.Exit(1)
}
