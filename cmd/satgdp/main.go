// Command satgdp makes Theorem 1 tangible: it reads a 3-CNF formula in
// DIMACS format (or generates a random one), performs the paper's
// 3-SAT → Global Dynamic Pricing reduction, solves both sides exactly, and
// reports whether the equivalence "satisfiable ⇔ optimal revenue = m" holds.
//
// Usage:
//
//	satgdp -random -vars 6 -clauses 20
//	satgdp < formula.cnf
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"spatialcrowd/internal/hardness"
)

func main() {
	var (
		random  = flag.Bool("random", false, "generate a random formula instead of reading stdin")
		vars    = flag.Int("vars", 5, "variables for -random")
		clauses = flag.Int("clauses", 15, "clauses for -random")
		seed    = flag.Int64("seed", 1, "seed for -random")
	)
	flag.Parse()

	var f *hardness.Formula
	var err error
	if *random {
		f = randomFormula(*vars, *clauses, *seed)
	} else {
		f, err = hardness.ParseDIMACS(os.Stdin)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if f.NumVars > 20 {
		fmt.Fprintln(os.Stderr, "satgdp verifies exactly and is limited to 20 variables")
		os.Exit(2)
	}

	fmt.Printf("formula: %d variables, %d clauses\n", f.NumVars, len(f.Clauses))
	sat, assign := f.Satisfiable()
	fmt.Printf("3-SAT:   satisfiable = %v\n", sat)
	if sat {
		fmt.Printf("         assignment: %v\n", assign[1:])
	}

	in, err := hardness.Reduce(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("GDP:     %d grids, %d workers, %d requesters\n",
		in.NumGrids, in.NumWorkers, len(in.Valuation))
	rev, prices := in.MaxRevenue()
	fmt.Printf("         optimal revenue = %.2f (m = %d)\n", rev, len(f.Clauses))
	fmt.Printf("         optimal grid prices: %v\n", prices)

	if err := hardness.VerifyReduction(f); err != nil {
		fmt.Fprintf(os.Stderr, "THEOREM 1 VIOLATED: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("Theorem 1 equivalence verified: satisfiable ⇔ revenue = m")
}

func randomFormula(nv, nc int, seed int64) *hardness.Formula {
	rng := rand.New(rand.NewSource(seed))
	f := &hardness.Formula{NumVars: nv}
	for c := 0; c < nc; c++ {
		var cl hardness.Clause
		for k := 0; k < 3; k++ {
			v := 1 + rng.Intn(nv)
			if rng.Intn(2) == 0 {
				v = -v
			}
			cl[k] = hardness.Literal(v)
		}
		f.Clauses = append(f.Clauses, cl)
	}
	return f
}
