// Command pricesim runs one pricing simulation and prints a summary. It is
// the fastest way to poke at the system: pick a workload, pick a strategy,
// see revenue and service statistics.
//
// Usage:
//
//	pricesim -strategy maps
//	pricesim -strategy all -workers 2000 -requests 10000 -periods 200
//	pricesim -workload beijing-rush -strategy maps -duration 15 -scale 10
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"spatialcrowd"
)

func main() {
	var (
		strategy = flag.String("strategy", "all", "maps | basep | sdr | sde | cappeducb | all")
		wl       = flag.String("workload", "synthetic", "synthetic | beijing-rush | beijing-night")
		space    = flag.String("space", "grid", "spatial backend: grid | road")
		workers  = flag.Int("workers", 5000, "synthetic worker count |W|")
		requests = flag.Int("requests", 20000, "synthetic request count |R|")
		periods  = flag.Int("periods", 400, "synthetic period count T")
		gridSide = flag.Int("grid", 10, "synthetic grid side (G = side^2)")
		radius   = flag.Float64("radius", 10, "synthetic worker radius a_w")
		duration = flag.Int("duration", 10, "beijing worker duration delta_w")
		scale    = flag.Int("scale", 1, "population divisor")
		seed     = flag.Int64("seed", 42, "workload seed")
		probes   = flag.Int("probes", 0, "calibration probes per price (0 = full Hoeffding)")
		amortize = flag.String("amortize", "on", "fingerprint-gated window caching: on | off (results are bit-identical either way)")
		selftest = flag.Bool("selftest", false, "run every strategy with amortization on AND off and fail on any revenue divergence")
	)
	flag.Parse()
	var amortizeOn bool
	switch strings.ToLower(*amortize) {
	case "on":
		amortizeOn = true
	case "off":
		amortizeOn = false
	default:
		fmt.Fprintf(os.Stderr, "unknown -amortize value %q (want on or off)\n", *amortize)
		os.Exit(2)
	}

	var (
		instance *spatialcrowd.Instance
		model    spatialcrowd.ValuationModel
		err      error
	)
	switch strings.ToLower(*space) {
	case "grid":
		switch strings.ToLower(*wl) {
		case "synthetic":
			cfg := spatialcrowd.SyntheticConfig{
				Workers:  scaleDown(*workers, *scale),
				Requests: scaleDown(*requests, *scale),
				Periods:  *periods,
				GridSide: *gridSide,
				Radius:   *radius,
				Seed:     *seed,
			}
			instance, model, err = spatialcrowd.Synthetic(cfg)
		case "beijing-rush":
			instance, model, err = spatialcrowd.BeijingLike(spatialcrowd.BeijingConfig{
				Variant: spatialcrowd.BeijingRush, WorkerDuration: *duration, Scale: *scale, Seed: *seed,
			})
		case "beijing-night":
			instance, model, err = spatialcrowd.BeijingLike(spatialcrowd.BeijingConfig{
				Variant: spatialcrowd.BeijingNight, WorkerDuration: *duration, Scale: *scale, Seed: *seed,
			})
		default:
			fmt.Fprintf(os.Stderr, "unknown workload %q\n", *wl)
			os.Exit(2)
		}
	case "road":
		// The road backend runs the street-snapped Beijing-like workload
		// only; reject workloads it cannot serve rather than mislabel them.
		var variant spatialcrowd.BeijingVariant
		switch strings.ToLower(*wl) {
		case "beijing-rush", "synthetic": // synthetic is the flag default; road has no synthetic, use rush
			variant = spatialcrowd.BeijingRush
			*wl = "beijing-rush"
		case "beijing-night":
			variant = spatialcrowd.BeijingNight
		default:
			fmt.Fprintf(os.Stderr, "-space road serves beijing-rush or beijing-night, not %q\n", *wl)
			os.Exit(2)
		}
		d := *duration
		if d <= 0 {
			d = 10
		}
		instance, model, _, err = spatialcrowd.BeijingRoad(spatialcrowd.RoadConfig{
			Variant: variant, WorkerDuration: d, Scale: *scale, Seed: *seed,
		})
	default:
		fmt.Fprintf(os.Stderr, "unknown -space backend %q (known backends: grid, road)\n", *space)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	sp := instance.Spatial()
	fmt.Printf("workload: %s (%s)  |W|=%d |R|=%d T=%d G=%d\n",
		*wl, *space, len(instance.Workers), len(instance.Tasks), instance.Periods, sp.NumCells())

	params := spatialcrowd.DefaultParams()
	base, err := spatialcrowd.NewBaseP(params)
	fail(err)
	fail(base.Calibrate(spatialcrowd.OracleFromModel(model, *seed+1), sp.NumCells(), *probes))
	pb := base.BasePrice()
	fmt.Printf("calibrated base price p_b = %.4f (%d probes)\n\n", pb, base.ProbeCount())

	if *selftest {
		runSelftest(instance, *strategy, params, pb, base)
		return
	}

	strategies, err := buildStrategies(*strategy, params, pb, base)
	fail(err)

	cfg := spatialcrowd.DefaultSimConfig()
	cfg.Amortize = amortizeOn
	fmt.Printf("%-10s %12s %9s %9s %9s %12s %10s\n",
		"strategy", "revenue", "offered", "accepted", "served", "time", "peak heap")
	for _, s := range strategies {
		res, err := spatialcrowd.Run(instance, s, cfg)
		fail(err)
		fmt.Printf("%-10s %12.1f %9d %9d %9d %12v %8.1fMB\n",
			res.Strategy, res.Revenue, res.Offered, res.Accepted, res.Served,
			res.StrategyTime.Round(1000), res.PeakHeapMB)
	}
}

// runSelftest runs every selected strategy twice — amortization off, then on,
// each leg with a fresh strategy instance — and fails unless the two legs
// agree exactly on revenue and service counts. It is the executable form of
// the amortization layer's transparency contract.
func runSelftest(instance *spatialcrowd.Instance, which string, params spatialcrowd.Params, pb float64, base *spatialcrowd.BaseP) {
	fresh := spatialcrowd.DefaultSimConfig()
	amort := fresh
	amort.Amortize = true
	fmt.Printf("%-10s %14s %14s %8s\n", "strategy", "fresh revenue", "cached revenue", "verdict")
	failed := false
	freshStrats, err := buildStrategies(which, params, pb, base)
	fail(err)
	cachedStrats, err := buildStrategies(which, params, pb, base)
	fail(err)
	for i := range freshStrats {
		a, err := spatialcrowd.Run(instance, freshStrats[i], fresh)
		fail(err)
		b, err := spatialcrowd.Run(instance, cachedStrats[i], amort)
		fail(err)
		verdict := "ok"
		if a.Revenue != b.Revenue || a.Accepted != b.Accepted || a.Served != b.Served {
			verdict = "DIVERGED"
			failed = true
		}
		fmt.Printf("%-10s %14.4f %14.4f %8s\n", a.Strategy, a.Revenue, b.Revenue, verdict)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "selftest: amortized run diverged from fresh run")
		os.Exit(1)
	}
	fmt.Println("selftest: PASS (amortization is transparent)")
}

func buildStrategies(which string, params spatialcrowd.Params, pb float64, base *spatialcrowd.BaseP) ([]spatialcrowd.Strategy, error) {
	mk := map[string]func() (spatialcrowd.Strategy, error){
		"maps": func() (spatialcrowd.Strategy, error) {
			m, err := spatialcrowd.NewMAPS(params, pb)
			if err == nil {
				base.WarmStart(m.CellStats)
			}
			return m, err
		},
		"basep": func() (spatialcrowd.Strategy, error) { return base, nil },
		"sdr":   func() (spatialcrowd.Strategy, error) { return spatialcrowd.NewSDR(params, pb) },
		"sde":   func() (spatialcrowd.Strategy, error) { return spatialcrowd.NewSDE(params, pb) },
		"cappeducb": func() (spatialcrowd.Strategy, error) {
			c, err := spatialcrowd.NewCappedUCB(params, pb)
			if err == nil {
				base.WarmStart(c.CellStats)
			}
			return c, err
		},
	}
	names := []string{strings.ToLower(which)}
	if strings.EqualFold(which, "all") {
		names = []string{"maps", "basep", "sdr", "sde", "cappeducb"}
	}
	out := make([]spatialcrowd.Strategy, 0, len(names))
	for _, n := range names {
		f, ok := mk[n]
		if !ok {
			return nil, fmt.Errorf("unknown strategy %q", n)
		}
		s, err := f()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func scaleDown(n, s int) int {
	if s <= 1 {
		return n
	}
	if n/s < 1 {
		return 1
	}
	return n / s
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
