// Command spatiallint runs the spatialcrowd static-analysis suite — the
// determinism, arena-aliasing, and snapshot-completeness analyzers under
// internal/analysis — over package patterns.
//
// Standalone mode:
//
//	go run ./cmd/spatiallint ./...
//	spatiallint -only detmaprange,detsource ./internal/engine
//
// exits 0 when the tree is clean (all findings fixed or carrying justified
// //lint: waivers) and 3 when findings remain, vet-style.
//
// Vet-tool mode: when invoked by cmd/go (via
// `go vet -vettool=$(command -v spatiallint) ./...`) the binary speaks the
// unit-checker protocol instead; see internal/analysis/unit.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"spatialcrowd/internal/analysis/checker"
	"spatialcrowd/internal/analysis/load"
	"spatialcrowd/internal/analysis/suite"
	"spatialcrowd/internal/analysis/unit"
)

func main() {
	// cmd/go's vet driver calls with -flags / -V=full / a single .cfg path.
	if code, handled := unit.Main(suite.All(), os.Args[1:], os.Stdout, os.Stderr); handled {
		os.Exit(code)
	}

	fs := flag.NewFlagSet("spatiallint", flag.ExitOnError)
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: spatiallint [-only a,b] [packages]\n\n")
		fs.PrintDefaults()
		fmt.Fprintf(fs.Output(), "\nanalyzers:\n")
		for _, a := range suite.All() {
			fmt.Fprintf(fs.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	fs.Parse(os.Args[1:])

	if *list {
		for _, a := range suite.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := suite.All()
	if *only != "" {
		var ok bool
		analyzers, ok = suite.ByName(strings.Split(*only, ","))
		if !ok {
			fmt.Fprintf(os.Stderr, "spatiallint: unknown analyzer in -only=%s\n", *only)
			os.Exit(1)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "spatiallint:", err)
		os.Exit(1)
	}
	pkgs, err := load.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spatiallint:", err)
		os.Exit(1)
	}
	// The analysis framework itself is exempt: its testdata trees contain
	// deliberate violations, and the framework is not on a replay path.
	kept := pkgs[:0]
	for _, p := range pkgs {
		if p.Path == "spatialcrowd/internal/analysis" || strings.HasPrefix(p.Path, "spatialcrowd/internal/analysis/") {
			continue
		}
		kept = append(kept, p)
	}
	findings, err := checker.Run(analyzers, kept)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spatiallint:", err)
		os.Exit(1)
	}
	if len(findings) > 0 {
		checker.Print(os.Stdout, findings)
		fmt.Fprintf(os.Stderr, "spatiallint: %d finding(s)\n", len(findings))
		os.Exit(3)
	}
}
