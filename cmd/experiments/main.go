// Command experiments regenerates the paper's evaluation: every panel of
// Figures 6–8 and 10 as ASCII tables (or CSV), plus the ablation studies
// described in DESIGN.md.
//
// Usage:
//
//	experiments -list
//	experiments -exp E1            # one experiment at paper scale
//	experiments -exp all -scale 20 # everything, populations divided by 20
//	experiments -exp E5 -csv       # machine-readable output
//	experiments -exp ablations
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"spatialcrowd/internal/exp"
)

func main() {
	var (
		expID  = flag.String("exp", "", "experiment id (E1..E13, 'all', or 'ablations')")
		scale  = flag.Int("scale", 1, "divide population sizes by this factor (1 = paper scale)")
		seed   = flag.Int64("seed", 42, "workload seed")
		probes = flag.Int("probes", 0, "base-pricing calibration probes per price (0 = full Hoeffding bound)")
		csv    = flag.Bool("csv", false, "emit CSV instead of tables")
		list   = flag.Bool("list", false, "list available experiments")
	)
	flag.Parse()

	if *list || *expID == "" {
		printCatalog()
		if *expID == "" && !*list {
			os.Exit(2)
		}
		return
	}

	r := exp.NewRunner()
	r.Scale = *scale
	r.Seed = *seed
	r.ProbeBudget = *probes

	if strings.EqualFold(*expID, "ablations") {
		runAblations(r)
		return
	}

	drivers := catalog(r)
	var selected []namedDriver
	if strings.EqualFold(*expID, "all") {
		selected = drivers
	} else {
		for _, d := range drivers {
			if strings.EqualFold(d.id, *expID) {
				selected = []namedDriver{d}
			}
		}
		if len(selected) == 0 {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *expID)
			os.Exit(2)
		}
	}

	header := true
	for _, d := range selected {
		s, err := d.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", d.id, err)
			os.Exit(1)
		}
		if *csv {
			s.WriteCSV(os.Stdout, header)
			header = false
		} else {
			s.WriteAll(os.Stdout)
		}
	}
}

type namedDriver struct {
	id    string
	title string
	run   func() (*exp.Series, error)
}

func catalog(r *exp.Runner) []namedDriver {
	return []namedDriver{
		{"E1", "Fig 6(a,e,i): varying |W|", r.VaryWorkers},
		{"E2", "Fig 6(b,f,j): varying |R|", r.VaryRequests},
		{"E3", "Fig 6(c,g,k): varying temporal mu", r.VaryTemporalMean},
		{"E4", "Fig 6(d,h,l): varying spatial mean", r.VarySpatialMean},
		{"E5", "Fig 7(a,e,i): varying demand mu", r.VaryDemandMean},
		{"E6", "Fig 7(b,f,j): varying demand sigma", r.VaryDemandSigma},
		{"E7", "Fig 7(c,g,k): varying T", r.VaryPeriods},
		{"E8", "Fig 7(d,h,l): varying G", r.VaryGrids},
		{"E9", "Fig 8(a,e,i): varying radius a_w", r.VaryRadius},
		{"E10", "Fig 8(b,f,j): scalability", r.Scalability},
		{"E11", "Fig 8(c,g,k): Beijing-like #1 (rush)", r.BeijingRush},
		{"E12", "Fig 8(d,h,l): Beijing-like #2 (night)", r.BeijingNight},
		{"E13", "Fig 10: exponential demand alpha", r.VaryExpRate},
	}
}

func printCatalog() {
	r := exp.NewRunner()
	fmt.Println("Available experiments (see DESIGN.md §4):")
	for _, d := range catalog(r) {
		fmt.Printf("  %-4s %s\n", d.id, d.title)
	}
	fmt.Println("  all        run every figure experiment")
	fmt.Println("  ablations  run A1-A6 (oracle demand, no matching, optimality gap,")
	fmt.Println("             ladder alpha, spatial smoothing, parametric demand)")
}

func runAblations(r *exp.Runner) {
	rows, err := r.AblationOracleDemand()
	fail(err)
	exp.WriteAblation(os.Stdout, "A1: MAPS learned vs oracle demand", rows)

	rows, err = r.AblationNoMatching()
	fail(err)
	exp.WriteAblation(os.Stdout, "A2: matching-validated vs independent supply", rows)

	gaps, err := r.AblationOptimalityGap(10)
	fail(err)
	fmt.Println("A3: MAPS vs exhaustive optimum on tiny instances (exact E[U])")
	worst := 1.0
	for _, g := range gaps {
		fmt.Printf("  instance %2d: MAPS=%.4f OPT=%.4f ratio=%.3f\n",
			g.Instance, g.MAPSValue, g.OptValue, g.Ratio)
		if g.Ratio < worst {
			worst = g.Ratio
		}
	}
	fmt.Printf("  worst ratio %.3f (Theorem 8 floor: %.3f)\n", worst, 1-1/2.718281828)

	pts, err := r.AblationLadderAlpha()
	fail(err)
	fmt.Println("A4: base-price ladder step alpha vs Theorem 3 bound")
	for _, p := range pts {
		fmt.Printf("  alpha=%.2f achieved=%.3f bound=%.3f\n", p.Alpha, p.Achieved, p.Bound)
	}

	rows, err = r.AblationSmoothing()
	fail(err)
	exp.WriteAblation(os.Stdout, "A5: spatial price smoothing weight", rows)

	rows, err = r.AblationParametricDemand()
	fail(err)
	exp.WriteAblation(os.Stdout, "A6: nonparametric UCB vs logistic demand fit", rows)

	rows, err = r.AblationRepositioning()
	fail(err)
	exp.WriteAblation(os.Stdout, "A7: idle-worker repositioning toward surge prices", rows)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
