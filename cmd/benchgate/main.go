// Command benchgate turns `go test -bench` output into a committed JSON
// baseline and gates CI on it: parse a bench run, optionally write the
// parsed results as BENCH_engine.json, and optionally compare them against a
// committed baseline, failing (exit 1) when a benchmark regressed its
// throughput by more than the allowed fraction.
//
// Usage:
//
//	go test -run xxx -bench EngineThroughput -benchmem . | \
//	    go run ./cmd/benchgate -baseline BENCH_engine.json -max-regress 0.20
//	go test -run xxx -bench . -benchmem . | \
//	    go run ./cmd/benchgate -write BENCH_engine.json
//
// Benchmark names are normalized by stripping the -GOMAXPROCS suffix, so a
// baseline recorded on one core count gates runs on another. Two measures
// are gated: ns/op throughput (machine-dependent, generous default budget)
// and allocs/op (machine-independent, so the zero-allocation hot-path wins
// cannot silently rot — a -max-alloc-regress overrun fails the gate; small
// drifts above the baseline are still reported as warnings). B/op is
// recorded in the baseline so the allocation trajectory stays versioned.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line. bytes_per_op and allocs_per_op are
// recorded unconditionally: omitempty on a float64 silently drops a
// legitimate measured 0 (the zero-allocation benchmarks this gate exists to
// protect), making the baseline indistinguishable from "not measured".
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Baseline is the committed BENCH_engine.json schema.
type Baseline struct {
	Note    string   `json:"note,omitempty"`
	Results []Result `json:"results"`
}

var maxprocsSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	input := flag.String("input", "-", "bench output file (- for stdin)")
	baselinePath := flag.String("baseline", "", "committed baseline JSON to gate against")
	writePath := flag.String("write", "", "write parsed results as a new baseline JSON")
	maxRegress := flag.Float64("max-regress", 0.20, "maximum allowed fractional throughput regression")
	maxAllocRegress := flag.Float64("max-alloc-regress", 0.25, "maximum allowed fractional allocs/op regression")
	allocSlack := flag.Float64("alloc-slack", 16, "absolute allocs/op slack added to the limit: near-zero baselines (3-4 allocs/op) see warm-up noise worth a few allocs at short benchtimes, while the rot this gate exists to catch reintroduces hundreds of per-item allocations")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	results, err := parse(r)
	if err != nil {
		fatal(err)
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}
	for _, res := range results {
		fmt.Printf("parsed %-55s %12.0f ns/op %10.0f allocs/op\n",
			res.Name, res.NsPerOp, res.AllocsPerOp)
	}

	if *writePath != "" {
		out := Baseline{
			Note:    "committed perf baseline; regenerate with: go test -run xxx -bench 'EngineThroughput$|ShardBatch$|BipartiteBuild|RoadSpaceDistContended$|RoadSpaceDistCached$|LowChurnWindow|KDIncremental|WALAppend|IngestLoopback' -benchmem -benchtime 0.5s ./... | go run ./cmd/benchgate -write BENCH_engine.json",
			Results: results,
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fatal(err)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*writePath, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d results)\n", *writePath, len(results))
	}

	if *baselinePath == "" {
		return
	}
	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatal(err)
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fatal(fmt.Errorf("parse %s: %w", *baselinePath, err))
	}
	baseByName := make(map[string]Result, len(base.Results))
	for _, res := range base.Results {
		baseByName[res.Name] = res
	}

	failed := false
	compared := 0
	for _, cur := range results {
		old, ok := baseByName[cur.Name]
		if !ok || old.NsPerOp <= 0 {
			continue
		}
		compared++
		// Throughput regression: ops/s dropping by fraction f means ns/op
		// growing to old/(1-f).
		limit := old.NsPerOp / (1 - *maxRegress)
		change := cur.NsPerOp/old.NsPerOp - 1
		status := "ok"
		if cur.NsPerOp > limit {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%-4s %-55s ns/op %12.0f -> %12.0f (%+.1f%%, limit %+.1f%%)\n",
			status, cur.Name, old.NsPerOp, cur.NsPerOp, change*100,
			(limit/old.NsPerOp-1)*100)
		// Gate even on a zero-alloc baseline (slack alone is the limit):
		// exempting zero would exempt exactly the benchmarks this gate
		// protects. Baselines must therefore be recorded with -benchmem.
		allocLimit := old.AllocsPerOp*(1+*maxAllocRegress) + *allocSlack
		switch {
		case cur.AllocsPerOp > allocLimit:
			failed = true
			fmt.Printf("FAIL %-55s allocs/op %10.0f -> %10.0f (limit %.0f)\n",
				cur.Name, old.AllocsPerOp, cur.AllocsPerOp, allocLimit)
		case cur.AllocsPerOp > old.AllocsPerOp*1.05+1:
			fmt.Printf("warn %-55s allocs/op %10.0f -> %10.0f (limit %.0f)\n",
				cur.Name, old.AllocsPerOp, cur.AllocsPerOp, allocLimit)
		}
	}
	if compared == 0 {
		fatal(fmt.Errorf("no benchmarks in common between run and baseline %s", *baselinePath))
	}
	if failed {
		fmt.Println("benchgate: regression beyond the allowed budget (throughput or allocs/op)")
		os.Exit(1)
	}
	fmt.Printf("benchgate: %d benchmark(s) within the budgets (%.0f%% ns/op, %.0f%% allocs/op)\n",
		compared, *maxRegress*100, *maxAllocRegress*100)
}

// parse extracts benchmark result lines from go test -bench output.
func parse(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		ns, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			continue
		}
		res := Result{
			Name:       maxprocsSuffix.ReplaceAllString(fields[0], ""),
			Iterations: iters,
			NsPerOp:    ns,
		}
		// Remaining fields come in (value, unit) pairs: -benchmem's B/op and
		// allocs/op plus any b.ReportMetric units.
		for i := 4; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			default:
				if res.Metrics == nil {
					res.Metrics = map[string]float64{}
				}
				res.Metrics[fields[i+1]] = v
			}
		}
		out = append(out, res)
	}
	return out, sc.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}
