module spatialcrowd

go 1.22
