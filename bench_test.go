// Benchmarks regenerating the paper's evaluation, one per figure column
// (see DESIGN.md §4 for the experiment index). Each benchmark measures the
// full simulation of the most expensive strategy (MAPS) on the swept
// workload and reports its revenue, plus the revenue of the strongest
// unified-price baseline (BaseP), as benchmark metrics. Populations are
// scaled down (benchScale) so iterations stay in the tens of milliseconds;
// run `go run ./cmd/experiments -exp all` for paper-scale tables.
package spatialcrowd_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"spatialcrowd/internal/core"
	"spatialcrowd/internal/engine"
	"spatialcrowd/internal/geo"
	"spatialcrowd/internal/market"
	"spatialcrowd/internal/match"
	"spatialcrowd/internal/pworld"
	"spatialcrowd/internal/sim"
	"spatialcrowd/internal/window"
	"spatialcrowd/internal/workload"
)

// benchScale divides the paper's population sizes for benchmark iterations.
const benchScale = 40

func scaled(n int) int {
	if n/benchScale < 1 {
		return 1
	}
	return n / benchScale
}

// benchOracle adapts a valuation model for calibration.
type benchOracle struct {
	model market.ValuationModel
	rng   *rand.Rand
}

func (o *benchOracle) Probe(cell int, price float64) bool {
	return price <= o.model.Dist(cell).Sample(o.rng)
}

// benchWorkload runs the five-strategy comparison on the given instance:
// MAPS inside the timed loop, baselines once for the reported metrics.
func benchWorkload(b *testing.B, in *market.Instance, model market.ValuationModel) {
	b.Helper()
	params := core.DefaultParams()
	basep, err := core.NewBaseP(params)
	if err != nil {
		b.Fatal(err)
	}
	oracle := &benchOracle{model: model, rng: rand.New(rand.NewSource(1))}
	if err := basep.Calibrate(oracle, in.Grid.NumCells(), 300); err != nil {
		b.Fatal(err)
	}
	pb := basep.BasePrice()

	baseRes, err := sim.Run(in, basep, sim.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}

	var mapsRevenue float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := core.NewMAPS(params, pb)
		if err != nil {
			b.Fatal(err)
		}
		basep.WarmStart(m.CellStats)
		res, err := sim.Run(in, m, sim.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		mapsRevenue = res.Revenue
	}
	b.StopTimer()
	b.ReportMetric(mapsRevenue, "maps-revenue")
	b.ReportMetric(baseRes.Revenue, "basep-revenue")
}

func benchSynthetic(b *testing.B, mutate func(*workload.SyntheticConfig)) {
	b.Helper()
	cfg := workload.SyntheticConfig{
		Workers:  scaled(5000),
		Requests: scaled(20000),
		Seed:     42,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	in, model, err := workload.Synthetic(cfg)
	if err != nil {
		b.Fatal(err)
	}
	benchWorkload(b, in, model)
}

// BenchmarkFig6Workers is E1: revenue/time/memory vs |W| (Fig. 6 a/e/i).
func BenchmarkFig6Workers(b *testing.B) {
	for _, w := range []int{1250, 5000, 10000} {
		b.Run(fmt.Sprintf("W=%d", w), func(b *testing.B) {
			benchSynthetic(b, func(c *workload.SyntheticConfig) { c.Workers = scaled(w) })
		})
	}
}

// BenchmarkFig6Requests is E2: vs |R| (Fig. 6 b/f/j).
func BenchmarkFig6Requests(b *testing.B) {
	for _, r := range []int{5000, 20000, 40000} {
		b.Run(fmt.Sprintf("R=%d", r), func(b *testing.B) {
			benchSynthetic(b, func(c *workload.SyntheticConfig) { c.Requests = scaled(r) })
		})
	}
}

// BenchmarkFig6TemporalMu is E3: vs temporal mean (Fig. 6 c/g/k).
func BenchmarkFig6TemporalMu(b *testing.B) {
	for _, mu := range []float64{0.1, 0.5, 0.9} {
		b.Run(fmt.Sprintf("mu=%g", mu), func(b *testing.B) {
			benchSynthetic(b, func(c *workload.SyntheticConfig) { c.TemporalMu = mu })
		})
	}
}

// BenchmarkFig6SpatialMean is E4: vs spatial mean (Fig. 6 d/h/l).
func BenchmarkFig6SpatialMean(b *testing.B) {
	for _, m := range []float64{0.1, 0.5, 0.9} {
		b.Run(fmt.Sprintf("mean=%g", m), func(b *testing.B) {
			benchSynthetic(b, func(c *workload.SyntheticConfig) { c.SpatialMean = m })
		})
	}
}

// BenchmarkFig7DemandMu is E5: vs demand mean (Fig. 7 a/e/i).
func BenchmarkFig7DemandMu(b *testing.B) {
	for _, mu := range []float64{1.0, 2.0, 3.0} {
		b.Run(fmt.Sprintf("mu=%g", mu), func(b *testing.B) {
			benchSynthetic(b, func(c *workload.SyntheticConfig) { c.DemandMu = mu })
		})
	}
}

// BenchmarkFig7DemandSigma is E6: vs demand sigma (Fig. 7 b/f/j).
func BenchmarkFig7DemandSigma(b *testing.B) {
	for _, s := range []float64{0.5, 1.0, 2.5} {
		b.Run(fmt.Sprintf("sigma=%g", s), func(b *testing.B) {
			benchSynthetic(b, func(c *workload.SyntheticConfig) { c.DemandSigma = s })
		})
	}
}

// BenchmarkFig7Periods is E7: vs T (Fig. 7 c/g/k).
func BenchmarkFig7Periods(b *testing.B) {
	for _, t := range []int{200, 400, 1000} {
		b.Run(fmt.Sprintf("T=%d", t), func(b *testing.B) {
			benchSynthetic(b, func(c *workload.SyntheticConfig) { c.Periods = t })
		})
	}
}

// BenchmarkFig7Grids is E8: vs G (Fig. 7 d/h/l).
func BenchmarkFig7Grids(b *testing.B) {
	for _, side := range []int{5, 10, 25} {
		b.Run(fmt.Sprintf("G=%d", side*side), func(b *testing.B) {
			benchSynthetic(b, func(c *workload.SyntheticConfig) { c.GridSide = side })
		})
	}
}

// BenchmarkFig8Radius is E9: vs worker radius (Fig. 8 a/e/i).
func BenchmarkFig8Radius(b *testing.B) {
	for _, r := range []float64{5, 10, 25} {
		b.Run(fmt.Sprintf("aw=%g", r), func(b *testing.B) {
			benchSynthetic(b, func(c *workload.SyntheticConfig) { c.Radius = r })
		})
	}
}

// BenchmarkFig8Scalability is E10: |W| = |R| growth (Fig. 8 b/f/j).
func BenchmarkFig8Scalability(b *testing.B) {
	for _, n := range []int{100000, 300000, 500000} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			benchSynthetic(b, func(c *workload.SyntheticConfig) {
				c.Workers = scaled(n)
				c.Requests = scaled(n)
			})
		})
	}
}

func benchBeijing(b *testing.B, variant workload.BeijingVariant) {
	b.Helper()
	for _, d := range []int{5, 15, 25} {
		b.Run(fmt.Sprintf("dw=%d", d), func(b *testing.B) {
			in, model, err := workload.BeijingLike(workload.BeijingConfig{
				Variant: variant, WorkerDuration: d, Scale: benchScale, Seed: 42,
			})
			if err != nil {
				b.Fatal(err)
			}
			benchWorkload(b, in, model)
		})
	}
}

// BenchmarkFig8Beijing1 is E11: Beijing-like rush dataset (Fig. 8 c/g/k).
func BenchmarkFig8Beijing1(b *testing.B) { benchBeijing(b, workload.BeijingRush) }

// BenchmarkFig8Beijing2 is E12: Beijing-like night dataset (Fig. 8 d/h/l).
func BenchmarkFig8Beijing2(b *testing.B) { benchBeijing(b, workload.BeijingNight) }

// BenchmarkFig10ExpRate is E13: exponential demand (Fig. 10).
func BenchmarkFig10ExpRate(b *testing.B) {
	for _, a := range []float64{0.5, 1.0, 1.5} {
		b.Run(fmt.Sprintf("alpha=%g", a), func(b *testing.B) {
			benchSynthetic(b, func(c *workload.SyntheticConfig) {
				c.Demand = workload.DemandExponential
				c.ExpRate = a
			})
		})
	}
}

// --- Micro-benchmarks of the algorithmic building blocks ---

// BenchmarkMaxWeightMatching measures the revenue-defining matching on a
// mid-sized accepted subgraph (Definition 5).
func BenchmarkMaxWeightMatching(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	const nt, nw = 500, 200
	g := match.NewGraph(nt, nw)
	weights := make([]float64, nt)
	for l := 0; l < nt; l++ {
		weights[l] = rng.Float64() * 100
		for r := 0; r < nw; r++ {
			if rng.Float64() < 0.05 {
				g.AddEdge(l, r)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		match.MaxWeightByLeft(g, weights)
	}
}

// BenchmarkMAPSPricesOnePeriod isolates Algorithm 2 on one period's batch.
func BenchmarkMAPSPricesOnePeriod(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	grid := geo.SquareGrid(100, 10)
	const nt, nw = 200, 60
	tasks := make([]market.Task, nt)
	for i := range tasks {
		o := geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		d := geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		tasks[i] = market.Task{ID: i, Origin: o, Dest: d, Distance: o.Dist(d)}
	}
	workers := make([]market.Worker, nw)
	for i := range workers {
		workers[i] = market.Worker{ID: i,
			Loc:    geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100},
			Radius: 10}
	}
	graph := market.BuildBipartite(tasks, workers)
	ctx := core.BuildContext(grid, 0, tasks, workers, graph)
	m, err := core.NewMAPS(core.DefaultParams(), 2)
	if err != nil {
		b.Fatal(err)
	}
	for cell := range ctx.Cells {
		cs := m.CellStats(cell)
		for _, p := range cs.Ladder() {
			cs.Seed(p, 500, int(500*(1-p/6)))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Prices(ctx)
	}
}

// BenchmarkBipartiteBuild measures indexed graph construction, the hot path
// of every simulated period: the cell-index builder with and without the
// reusable scratch arena, and the k-d tree builder with a reused index and
// graph (the streaming engine's steady-state construction).
func BenchmarkBipartiteBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	in := &market.Instance{Grid: geo.SquareGrid(100, 10), Periods: 1}
	const nt, nw = 500, 2000
	tasks := make([]market.Task, nt)
	for i := range tasks {
		tasks[i] = market.Task{ID: i, Origin: geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}}
	}
	workers := make([]market.Worker, nw)
	for i := range workers {
		workers[i] = market.Worker{ID: i,
			Loc:    geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100},
			Radius: 10}
	}
	b.Run("cell-fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			market.BuildBipartiteIndexed(in, tasks, workers)
		}
	})
	b.Run("cell-scratch", func(b *testing.B) {
		sc := &market.CellIndexScratch{}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			market.BuildBipartiteCellIndexScratch(in.Spatial(), tasks, workers, sc)
		}
	})
	b.Run("kd-fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			market.BuildBipartiteKD(tasks, workers)
		}
	})
	b.Run("kd-scratch", func(b *testing.B) {
		ix := market.NewWorkerIndex(workers)
		g := match.NewGraph(0, 0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ix.Reindex(workers)
			ix.BuildGraphInto(tasks, g)
		}
	})
}

// BenchmarkPossibleWorldExact measures the exact expected-revenue
// enumeration at its practical limit.
func BenchmarkPossibleWorldExact(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	const nt, nw = 14, 6
	g := match.NewGraph(nt, nw)
	probs := make([]float64, nt)
	weights := make([]float64, nt)
	for l := 0; l < nt; l++ {
		probs[l] = rng.Float64()
		weights[l] = rng.Float64() * 10
		for r := 0; r < nw; r++ {
			if rng.Float64() < 0.4 {
				g.AddEdge(l, r)
			}
		}
	}
	w := &pworld.World{Graph: g, AcceptProb: probs, Weight: weights}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pworld.ExpectedRevenueExact(w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineThroughput measures the streaming dispatch engine on the
// benchmark-scale synthetic replay (the workload of cmd/serve's default,
// scaled like every other benchmark here) and reports sustained events/sec
// alongside the engine's revenue, so future PRs track dispatch throughput
// next to the figure benchmarks.
func BenchmarkEngineThroughput(b *testing.B) {
	in, model, err := workload.Synthetic(workload.SyntheticConfig{
		Workers:  scaled(5000),
		Requests: scaled(20000),
		Seed:     42,
	})
	if err != nil {
		b.Fatal(err)
	}
	params := core.DefaultParams()
	basep, err := core.NewBaseP(params)
	if err != nil {
		b.Fatal(err)
	}
	oracle := &benchOracle{model: model, rng: rand.New(rand.NewSource(1))}
	if err := basep.Calibrate(oracle, in.Grid.NumCells(), 300); err != nil {
		b.Fatal(err)
	}
	pb := basep.BasePrice()

	var events int64
	var revenue float64
	var elapsed time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := core.NewMAPS(params, pb)
		if err != nil {
			b.Fatal(err)
		}
		basep.WarmStart(m.CellStats)
		eng, err := engine.New(engine.Config{
			Grid: in.Grid, Strategy: m, AutoDecide: true,
			OnDecision: func(engine.Decision) {},
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := engine.Replay(eng, in); err != nil {
			b.Fatal(err)
		}
		if err := eng.Close(); err != nil {
			b.Fatal(err)
		}
		st := eng.Stats()
		events += st.Events
		revenue = st.Revenue
		elapsed += st.Elapsed
	}
	b.StopTimer()
	if secs := elapsed.Seconds(); secs > 0 {
		b.ReportMetric(float64(events)/secs, "events/s")
	}
	b.ReportMetric(revenue, "engine-revenue")
}

// lowChurnFixture fabricates the workload the amortized-rebuild layer
// targets: a large long-lived worker fleet and a demand pattern that repeats
// window over window under fresh task IDs. mutateChurn relocates a small,
// deterministic slice of the fleet — the "low churn" between consecutive
// windows of a quiet shard.
func lowChurnFixture() (protoTasks []market.Task, workers []market.Worker, grid geo.Grid) {
	rng := rand.New(rand.NewSource(29))
	grid = geo.SquareGrid(100, 10)
	protoTasks = make([]market.Task, 100)
	for i := range protoTasks {
		o := geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		d := geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		protoTasks[i] = market.Task{Origin: o, Dest: d, Distance: o.Dist(d), Valuation: 5}
	}
	workers = make([]market.Worker, 4000)
	for i := range workers {
		workers[i] = market.Worker{
			ID:  i + 1,
			Loc: geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100},
			// Long-lived fleet: duration never lapses within the run.
			Radius: 10, Duration: 1 << 20,
		}
	}
	return protoTasks, workers, grid
}

// mutateChurn deterministically relocates ~2% of the fleet for the given
// window — identical across benchmark legs, so fresh and cached runs see the
// same pool history.
func mutateChurn(workers []market.Worker, win int) {
	for k := 0; k < len(workers)/50; k++ {
		idx := (win*37 + k*101) % len(workers)
		workers[idx].Loc = geo.Point{
			X: float64((idx*13 + win*7 + k) % 100),
			Y: float64((idx*19 + win*3 + 2*k) % 100),
		}
	}
}

// runLowChurnWindows drives one executor through the fixture for the given
// number of windows — repeating demand with fresh task IDs, churn touching
// the fleet every tenth window — and returns the accrued revenue.
func runLowChurnWindows(x *window.Executor, strat core.Strategy,
	protoTasks []market.Task, workers []market.Worker, windows int, b *testing.B) float64 {
	tasks := make([]market.Task, len(protoTasks))
	revenue := 0.0
	for win := 0; win < windows; win++ {
		if win%10 == 5 {
			mutateChurn(workers, win)
		}
		copy(tasks, protoTasks)
		for j := range tasks {
			tasks[j].ID = win*len(tasks) + j + 1 // fresh identity, repeated content
			tasks[j].Period = win
		}
		pr, err := x.Price(strat, win, tasks, workers)
		if err != nil {
			b.Fatal(err)
		}
		out := x.ResolveImmediate(strat, pr, tasks)
		revenue += out.Revenue
	}
	return revenue
}

// BenchmarkLowChurnWindow measures the full window pipeline (price -> accept
// -> assign) on the low-churn fixture with the amortized-rebuild layer off
// (fresh) and on (cached). The fixture is the layer's home turf — most
// windows fingerprint identically to their predecessor — and the two paths
// are first checked to accrue bit-identical revenue before either is timed.
func BenchmarkLowChurnWindow(b *testing.B) {
	protoTasks, protoWorkers, grid := lowChurnFixture()
	mkStrat := func() core.Strategy {
		s, err := core.NewSDR(core.DefaultParams(), 2)
		if err != nil {
			b.Fatal(err)
		}
		return s
	}
	mkPool := func() []market.Worker {
		p := make([]market.Worker, len(protoWorkers))
		copy(p, protoWorkers)
		return p
	}

	// Transparency check before timing: same windows, same churn history,
	// revenue must match to the bit.
	fresh := window.NewExecutor(grid, window.GraphKD)
	cached := window.NewExecutor(grid, window.GraphKD)
	cached.SetAmortize(true)
	const checkWindows = 50
	revFresh := runLowChurnWindows(fresh, mkStrat(), protoTasks, mkPool(), checkWindows, b)
	revCached := runLowChurnWindows(cached, mkStrat(), protoTasks, mkPool(), checkWindows, b)
	if revFresh != revCached || revFresh <= 0 {
		b.Fatalf("cached revenue %.12f != fresh %.12f over %d windows", revCached, revFresh, checkWindows)
	}

	b.Run("fresh", func(b *testing.B) {
		x := window.NewExecutor(grid, window.GraphKD)
		strat := mkStrat()
		pool := mkPool()
		b.ReportAllocs()
		b.ResetTimer()
		runLowChurnWindows(x, strat, protoTasks, pool, b.N, b)
	})
	b.Run("cached", func(b *testing.B) {
		x := window.NewExecutor(grid, window.GraphKD)
		x.SetAmortize(true)
		strat := mkStrat()
		pool := mkPool()
		b.ReportAllocs()
		b.ResetTimer()
		runLowChurnWindows(x, strat, protoTasks, pool, b.N, b)
		b.StopTimer()
		st := x.CacheStats()
		if total := st.CtxHits + st.CtxMisses; total > 0 {
			b.ReportMetric(float64(st.CtxHits)/float64(total), "ctx-hit-rate")
		}
	})
}

// BenchmarkKDIncremental isolates the worker-index maintenance cost the
// cached path saves: full Reindex every window versus Update applying the
// ~2% location delta (the incremental path falls back to a rebuild
// automatically above its churn threshold).
func BenchmarkKDIncremental(b *testing.B) {
	_, protoWorkers, _ := lowChurnFixture()
	run := func(b *testing.B, incremental bool) {
		workers := make([]market.Worker, len(protoWorkers))
		copy(workers, protoWorkers)
		ix := market.NewWorkerIndex(workers)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mutateChurn(workers, i)
			if incremental {
				ix.Update(workers)
			} else {
				ix.Reindex(workers)
			}
		}
	}
	b.Run("reindex", func(b *testing.B) { run(b, false) })
	b.Run("update", func(b *testing.B) { run(b, true) })
}
