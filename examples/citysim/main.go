// Citysim: a full-day simulation with a mid-day demand shift, exercising
// MAPS's change detection (Section 4.2.2). At noon a festival doubles the
// crowd's willingness to pay in the city center; the statistically-
// significant-deviation detector notices, drops the stale acceptance
// statistics, and re-learns the new market.
//
//	go run ./examples/citysim
package main

import (
	"fmt"
	"log"
	"math/rand"

	"spatialcrowd"
	"spatialcrowd/internal/geo"
	"spatialcrowd/internal/stats"
)

const (
	periods   = 600 // one-minute periods: a 10-hour day
	shiftAt   = 300 // the festival starts mid-day
	citySide  = 50.0
	gridSide  = 5
	perPeriod = 30 // orders per period
)

func main() {
	rng := rand.New(rand.NewSource(2))
	grid := spatialcrowd.Grid(geo.SquareGrid(citySide, gridSide))

	morning := stats.TruncNormal{Mu: 1.8, Sigma: 0.8, Lo: 1, Hi: 5}
	festival := stats.TruncNormal{Mu: 3.2, Sigma: 0.8, Lo: 1, Hi: 5}

	params := spatialcrowd.DefaultParams()
	maps, err := spatialcrowd.NewMAPS(params, 1.8)
	if err != nil {
		log.Fatal(err)
	}

	revenueBefore, revenueAfter := 0.0, 0.0
	for t := 0; t < periods; t++ {
		demand := morning
		if t >= shiftAt {
			demand = festival
		}
		tasks := make([]spatialcrowd.Task, perPeriod)
		for i := range tasks {
			origin := spatialcrowd.Point{X: rng.Float64() * citySide, Y: rng.Float64() * citySide}
			dest := spatialcrowd.Point{X: rng.Float64() * citySide, Y: rng.Float64() * citySide}
			tasks[i] = spatialcrowd.Task{
				ID: t*perPeriod + i, Origin: origin, Dest: dest,
				Distance:  origin.Dist(dest),
				Valuation: demand.Sample(rng),
			}
		}
		workers := make([]spatialcrowd.Worker, 12)
		for i := range workers {
			workers[i] = spatialcrowd.Worker{
				ID:     t*12 + i,
				Loc:    spatialcrowd.Point{X: rng.Float64() * citySide, Y: rng.Float64() * citySide},
				Radius: 15, Duration: 1,
			}
		}

		ctx := spatialcrowd.BuildPeriodContext(grid, t, tasks, workers)
		prices := maps.Prices(ctx)
		accepted := make([]bool, len(tasks))
		served := 0
		for i, task := range tasks {
			accepted[i] = task.Accepts(prices[i])
			// Simplified dispatch: serve accepted tasks while workers last.
			if accepted[i] && served < len(workers) {
				served++
				if t < shiftAt {
					revenueBefore += task.Revenue(prices[i])
				} else {
					revenueAfter += task.Revenue(prices[i])
				}
			}
		}
		maps.Observe(ctx, prices, accepted)
	}

	changes := 0
	avgPrice := func() float64 {
		sum, n := 0.0, 0
		for _, p := range maps.LastPrices {
			sum += p
			n++
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
	for cell := 0; cell < grid.NumCells(); cell++ {
		changes += maps.CellStats(cell).Changes
	}

	fmt.Printf("morning revenue (%d periods): %10.1f\n", shiftAt, revenueBefore)
	fmt.Printf("festival revenue (%d periods): %10.1f\n", periods-shiftAt, revenueAfter)
	fmt.Printf("demand shifts detected across grids: %d\n", changes)
	fmt.Printf("final average grid price: %.2f (morning optimum ~1.8, festival optimum ~3)\n", avgPrice())
	if changes == 0 {
		fmt.Println("warning: change detector never fired - demand shift missed")
	}
}
