// Fooddelivery: batch pricing outside the simulator. A lunch-rush delivery
// platform prices one batch of orders directly through the public API:
// build a PeriodContext from live tasks and couriers, ask MAPS for prices,
// observe the customers' responses, and repeat. This is how a service would
// embed the library in its own dispatch loop.
//
//	go run ./examples/fooddelivery
package main

import (
	"fmt"
	"log"
	"math/rand"

	"spatialcrowd"
	"spatialcrowd/internal/geo"
)

// city is a 6x6 km downtown with 3x3 pricing zones.
var city = spatialcrowd.Grid(geo.SquareGrid(6, 3))

// restaurantRow is the hotspot band where most lunch orders originate.
const restaurantY = 3.0

func main() {
	rng := rand.New(rand.NewSource(11))
	params := spatialcrowd.Params{PMin: 1, PMax: 5, Alpha: 0.5, Eps: 0.2, Delta: 0.01}

	maps, err := spatialcrowd.NewMAPS(params, 2.0)
	if err != nil {
		log.Fatal(err)
	}

	// Hidden customer behaviour: willingness-to-pay per delivery-km is
	// higher near offices (east side) than near campus (west side). The
	// platform never sees these curves - it only observes accept/reject.
	willingness := func(cell int) float64 {
		center := city.CellCenter(cell)
		return 1.6 + 0.35*center.X/2 // east pays more
	}

	totalRevenue := 0.0
	for batch := 0; batch < 60; batch++ {
		tasks := lunchOrders(rng, 12+rng.Intn(8))
		couriers := availableCouriers(rng, 6+rng.Intn(4))

		ctx := spatialcrowd.BuildPeriodContext(city, batch, tasks, couriers)
		prices := maps.Prices(ctx)

		// Customers respond according to their hidden valuations.
		accepted := make([]bool, len(tasks))
		for i := range tasks {
			cell := city.CellOf(tasks[i].Origin)
			v := willingness(cell) + 0.8*rng.NormFloat64()
			accepted[i] = prices[i] <= v
			if accepted[i] {
				totalRevenue += tasks[i].Distance * prices[i] // assume courier found
			}
		}
		maps.Observe(ctx, prices, accepted)
	}

	fmt.Printf("60 lunch batches priced, total revenue %.1f\n\n", totalRevenue)
	fmt.Println("learned zone prices (last batch):")
	for cell := 0; cell < city.NumCells(); cell++ {
		if p, ok := maps.LastPrices[cell]; ok {
			c := city.CellCenter(cell)
			fmt.Printf("  zone %d at (%.0f,%.0f): %.2f per km  (true willingness ~%.2f)\n",
				cell, c.X, c.Y, p, willingness(cell))
		}
	}
}

// lunchOrders places most origins along the restaurant band, destinations
// anywhere in the city.
func lunchOrders(rng *rand.Rand, n int) []spatialcrowd.Task {
	tasks := make([]spatialcrowd.Task, n)
	for i := range tasks {
		origin := spatialcrowd.Point{
			X: rng.Float64() * 6,
			Y: restaurantY + 0.8*rng.NormFloat64(),
		}
		origin = city.Region.Clamp(origin)
		dest := spatialcrowd.Point{X: rng.Float64() * 6, Y: rng.Float64() * 6}
		tasks[i] = spatialcrowd.Task{
			ID: i, Origin: origin, Dest: dest, Distance: origin.Dist(dest),
		}
	}
	return tasks
}

// availableCouriers scatters couriers with a 2 km delivery range.
func availableCouriers(rng *rand.Rand, n int) []spatialcrowd.Worker {
	couriers := make([]spatialcrowd.Worker, n)
	for i := range couriers {
		couriers[i] = spatialcrowd.Worker{
			ID:       i,
			Loc:      spatialcrowd.Point{X: rng.Float64() * 6, Y: rng.Float64() * 6},
			Radius:   2,
			Duration: 1,
		}
	}
	return couriers
}
