// Ridehailing: the paper's motivating scenario — rush hour in a big city,
// where demand drastically exceeds driver supply in hotspot districts.
// Runs the Beijing-like dataset #1 (5pm-7pm) and shows how MAPS surges
// prices in under-supplied grids while the unified base price leaves
// revenue on the table.
//
//	go run ./examples/ridehailing
package main

import (
	"fmt"
	"log"
	"sort"

	"spatialcrowd"
)

func main() {
	// Beijing-like rush hour at 1/20 the published population (fast to run;
	// use Scale: 1 for the full Table 4 sizes).
	instance, model, err := spatialcrowd.BeijingLike(spatialcrowd.BeijingConfig{
		Variant:        spatialcrowd.BeijingRush,
		WorkerDuration: 10, // drivers stay for 10 minutes unless matched
		Scale:          20,
		Seed:           3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rush hour: %d drivers vs %d requests over %d minutes (%.1fx demand)\n",
		len(instance.Workers), len(instance.Tasks), instance.Periods,
		float64(len(instance.Tasks))/float64(len(instance.Workers)))

	params := spatialcrowd.DefaultParams()
	base, err := spatialcrowd.NewBaseP(params)
	if err != nil {
		log.Fatal(err)
	}
	if err := base.Calibrate(spatialcrowd.OracleFromModel(model, 1),
		instance.Grid.NumCells(), 300); err != nil {
		log.Fatal(err)
	}

	maps, err := spatialcrowd.NewMAPS(params, base.BasePrice())
	if err != nil {
		log.Fatal(err)
	}
	base.WarmStart(maps.CellStats)
	sde, err := spatialcrowd.NewSDE(params, base.BasePrice())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-6s %12s %10s %8s\n", "policy", "revenue", "served", "avg $/km")
	for _, strat := range []spatialcrowd.Strategy{maps, base, sde} {
		res, err := spatialcrowd.Run(instance, strat, spatialcrowd.DefaultSimConfig())
		if err != nil {
			log.Fatal(err)
		}
		perServed := 0.0
		if res.Served > 0 {
			perServed = res.Revenue / float64(res.Served)
		}
		fmt.Printf("%-6s %12.1f %10d %8.2f\n", res.Strategy, res.Revenue, res.Served, perServed)
	}

	// Peek at MAPS's final per-grid surge map: the last period's prices,
	// highest first. Hotspot grids (scarce supply) carry the premium.
	fmt.Println("\nMAPS per-grid prices in the last priced period (top 8):")
	type gp struct {
		cell  int
		price float64
	}
	var prices []gp
	for cell, p := range maps.LastPrices {
		prices = append(prices, gp{cell, p})
	}
	sort.Slice(prices, func(i, j int) bool { return prices[i].price > prices[j].price })
	for i, p := range prices {
		if i >= 8 {
			break
		}
		c := instance.Grid.CellCenter(p.cell)
		fmt.Printf("  grid %2d at (%.1f, %.1f) km: %.2f per km (supply %d)\n",
			p.cell, c.X, c.Y, p.price, maps.LastSupply[p.cell])
	}
}
