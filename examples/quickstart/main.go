// Quickstart: generate a small synthetic market, calibrate a base price,
// run MAPS, and compare it with the unified-price baseline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"spatialcrowd"
)

func main() {
	// The paper's default synthetic market (Table 3, bold settings):
	// 5000 drivers, 20000 ride requests over 400 one-minute periods on a
	// 10x10 grid of local markets.
	instance, model, err := spatialcrowd.Synthetic(spatialcrowd.SyntheticConfig{
		Workers:  5000,
		Requests: 20000,
		Seed:     7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("market: %d workers, %d requests, %d periods, %d grids\n",
		len(instance.Workers), len(instance.Tasks), instance.Periods,
		instance.Grid.NumCells())

	// Step 1: base pricing (Algorithm 1). Probe candidate prices against
	// recent requesters to estimate each grid's Myerson reserve price; the
	// base price is their average.
	params := spatialcrowd.DefaultParams()
	base, err := spatialcrowd.NewBaseP(params)
	if err != nil {
		log.Fatal(err)
	}
	oracle := spatialcrowd.OracleFromModel(model, 1)
	if err := base.Calibrate(oracle, instance.Grid.NumCells(), 0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("base price p_b = %.3f (from %d probes)\n", base.BasePrice(), base.ProbeCount())

	// Step 2: MAPS (Algorithms 2-3), warm-started from the calibration
	// statistics. MAPS re-prices every grid every period, distributing the
	// dependent supply with bipartite matching.
	maps, err := spatialcrowd.NewMAPS(params, base.BasePrice())
	if err != nil {
		log.Fatal(err)
	}
	base.WarmStart(maps.CellStats)

	for _, strat := range []spatialcrowd.Strategy{maps, base} {
		res, err := spatialcrowd.Run(instance, strat, spatialcrowd.DefaultSimConfig())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s revenue=%9.1f  accepted=%4d/%d  served=%4d  time=%v\n",
			res.Strategy, res.Revenue, res.Accepted, res.Offered, res.Served,
			res.StrategyTime.Round(1000))
	}
}
