// Operations: the production affordances around MAPS — simulation tracing,
// strategy state persistence across a "deployment restart", and idle-worker
// repositioning toward surge prices.
//
//	go run ./examples/operations
package main

import (
	"bytes"
	"fmt"
	"log"

	"spatialcrowd"
)

func main() {
	instance, model, err := spatialcrowd.Synthetic(spatialcrowd.SyntheticConfig{
		Workers:        800,
		Requests:       6000,
		Periods:        150,
		GridSide:       6,
		WorkerDuration: 5, // drivers idle up to 5 minutes: repositioning matters
		Seed:           17,
	})
	if err != nil {
		log.Fatal(err)
	}

	params := spatialcrowd.DefaultParams()
	base, err := spatialcrowd.NewBaseP(params)
	if err != nil {
		log.Fatal(err)
	}
	if err := base.Calibrate(spatialcrowd.OracleFromModel(model, 1),
		instance.Grid.NumCells(), 0); err != nil {
		log.Fatal(err)
	}

	// --- Day 1: run with tracing on, then persist the learned state.
	day1, err := spatialcrowd.NewMAPS(params, base.BasePrice())
	if err != nil {
		log.Fatal(err)
	}
	base.WarmStart(day1.CellStats)
	day1.Smoothing = 0.2

	cfg := spatialcrowd.DefaultSimConfig()
	cfg.Trace = true
	cfg.RepositionSpeed = 3

	res, err := spatialcrowd.Run(instance, day1, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("day 1: revenue %.0f, served %d/%d accepted\n",
		res.Revenue, res.Served, res.Accepted)
	fmt.Printf("       offered price median %.2f, p90 %.2f\n", res.PriceMedian, res.PriceP90)

	// A compact view of the trace: revenue by quarter of the day.
	quarter := len(res.Trace) / 4
	for q := 0; q < 4; q++ {
		sum := 0.0
		for _, p := range res.Trace[q*quarter : (q+1)*quarter] {
			sum += p.Revenue
		}
		fmt.Printf("       quarter %d revenue: %8.0f\n", q+1, sum)
	}

	var checkpoint bytes.Buffer
	if err := day1.SaveState(&checkpoint); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint: %d bytes of learned demand statistics\n", checkpoint.Len())

	// --- Day 2: a fresh process restores the state and keeps earning
	// without re-calibrating.
	day2, err := spatialcrowd.NewMAPS(params, 1) // deliberately wrong base price
	if err != nil {
		log.Fatal(err)
	}
	if err := day2.LoadState(&checkpoint); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restored: base price %.3f, smoothing %.2f\n", day2.BasePrice(), day2.Smoothing)

	res2, err := spatialcrowd.Run(instance, day2, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("day 2: revenue %.0f (%.1f%% of day 1, zero calibration probes)\n",
		res2.Revenue, 100*res2.Revenue/res.Revenue)
}
