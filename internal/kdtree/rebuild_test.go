package kdtree

import (
	"math/rand"
	"sort"
	"testing"

	"spatialcrowd/internal/geo"
)

// TestRebuildMatchesFresh drives one tree through many in-place rebuilds
// over point sets of varying size and checks every query against a freshly
// built tree: the reused node arena must not leak anything between builds.
func TestRebuildMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	reused := Build(nil, nil)
	for round := 0; round < 40; round++ {
		n := rng.Intn(200)
		pts := make([]geo.Point, n)
		for i := range pts {
			pts[i] = geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		}
		reused.Rebuild(pts, nil)
		fresh := Build(pts, nil)
		if reused.Len() != n {
			t.Fatalf("round %d: Len = %d, want %d", round, reused.Len(), n)
		}
		for q := 0; q < 20; q++ {
			p := geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
			gi, gd := reused.Nearest(p)
			wi, wd := fresh.Nearest(p)
			if gi != wi || gd != wd {
				t.Fatalf("round %d: Nearest(%v) = (%d,%v), fresh (%d,%v)", round, p, gi, gd, wi, wd)
			}
			r := rng.Float64() * 30
			got := append([]int(nil), reused.InRadiusAppend(p, r, nil)...)
			want := fresh.InRadius(p, r)
			sort.Ints(got)
			sort.Ints(want)
			if len(got) != len(want) {
				t.Fatalf("round %d: InRadius(%v,%v) = %v, fresh %v", round, p, r, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("round %d: InRadius(%v,%v) = %v, fresh %v", round, p, r, got, want)
				}
			}
		}
	}
}

// TestRebuildTraversalOrderIdentical pins layout equality, not just result
// sets: matching tie breaks downstream depend on candidate enumeration
// order, so a rebuilt tree must enumerate identically to a fresh one.
func TestRebuildTraversalOrderIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	reused := Build(nil, nil)
	for round := 0; round < 20; round++ {
		n := 1 + rng.Intn(150)
		pts := make([]geo.Point, n)
		for i := range pts {
			// Duplicate coordinates force tie handling through the sort.
			pts[i] = geo.Point{X: float64(rng.Intn(12)), Y: float64(rng.Intn(12))}
		}
		reused.Rebuild(pts, nil)
		fresh := Build(pts, nil)
		p := geo.Point{X: rng.Float64() * 12, Y: rng.Float64() * 12}
		got := reused.InRadiusAppend(p, 6, nil)
		want := fresh.InRadiusAppend(p, 6, nil)
		if len(got) != len(want) {
			t.Fatalf("round %d: enumeration %v vs fresh %v", round, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("round %d: enumeration order diverges: %v vs fresh %v", round, got, want)
			}
		}
	}
}

// BenchmarkRebuild compares fresh construction against in-place rebuild
// over the reused arena (the engine's per-batch pattern).
func BenchmarkRebuild(b *testing.B) {
	rng := rand.New(rand.NewSource(23))
	const n = 2000
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
	}
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			Build(pts, nil)
		}
	})
	b.Run("inplace", func(b *testing.B) {
		tr := Build(pts, nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tr.Rebuild(pts, nil)
		}
	})
}
