// Package kdtree implements a static 2-d tree over points with integer
// payloads, supporting nearest-neighbor, k-nearest, and radius queries. The
// market package uses it as a worker index for bipartite-graph construction
// when worker radii vary too widely for the uniform grid index to prune
// well; it is also generally useful to library users building dispatch
// tooling (e.g. "closest idle courier" lookups).
package kdtree

import (
	"container/heap"
	"math"
	"sort"

	"spatialcrowd/internal/geo"
)

// Tree is an immutable 2-d tree with an implicit layout: the node of the
// subarray [lo, hi) is its median position, with children in [lo, mid) and
// [mid+1, hi), alternating split axes by depth. The zero value is an empty
// tree.
type Tree struct {
	pts []geo.Point // stored in tree order
	ids []int       // payload per point, parallel to pts
}

// Build constructs a tree over the given points; ids[i] is returned from
// queries instead of raw indices (pass nil to use positions 0..n-1).
func Build(points []geo.Point, ids []int) *Tree {
	t := &Tree{}
	t.Rebuild(points, ids)
	return t
}

// Rebuild reconstructs the tree in place over a new point set, reusing the
// node arena (the point and payload arrays) of the previous build whenever
// it is large enough. Per-batch indexes on hot paths (the streaming engine's
// worker index) rebuild one tree per pricing window; with a reused arena the
// steady-state rebuild allocates nothing. Queries issued before the call see
// the old tree; Rebuild must not run concurrently with queries.
func (t *Tree) Rebuild(points []geo.Point, ids []int) {
	n := len(points)
	if cap(t.pts) >= n {
		t.pts = t.pts[:n]
	} else {
		t.pts = make([]geo.Point, n)
	}
	copy(t.pts, points)
	if cap(t.ids) >= n {
		t.ids = t.ids[:n]
	} else {
		t.ids = make([]int, n)
	}
	if ids == nil {
		for i := range t.ids {
			t.ids[i] = i
		}
	} else {
		copy(t.ids, ids)
	}
	if n == 0 {
		return
	}
	t.build(0, n, 0)
}

// build recursively median-splits pts[lo:hi] on the given axis. The
// subrange is fully sorted on the axis (simpler than quickselect; Build is
// a one-time cost and n log^2 n total is fine at the sizes involved), which
// places the median at the pivot position. One sorter is reused for every
// recursive sort so the interface conversion boxes nothing per subrange.
func (t *Tree) build(lo, hi, axis int) {
	t.buildWith(&byAxis{t: t}, lo, hi, axis)
}

func (t *Tree) buildWith(b *byAxis, lo, hi, axis int) {
	if hi-lo <= 1 {
		return
	}
	b.lo, b.axis, b.n = lo, axis, hi-lo
	sort.Sort(b)
	mid := (lo + hi) / 2
	t.buildWith(b, lo, mid, 1-axis)
	t.buildWith(b, mid+1, hi, 1-axis)
}

type byAxis struct {
	t    *Tree
	lo   int
	axis int
	n    int
}

func (b byAxis) Len() int { return b.n }
func (b byAxis) Less(i, j int) bool {
	pi, pj := b.t.pts[b.lo+i], b.t.pts[b.lo+j]
	if b.axis == 0 {
		return pi.X < pj.X
	}
	return pi.Y < pj.Y
}
func (b byAxis) Swap(i, j int) {
	b.t.pts[b.lo+i], b.t.pts[b.lo+j] = b.t.pts[b.lo+j], b.t.pts[b.lo+i]
	b.t.ids[b.lo+i], b.t.ids[b.lo+j] = b.t.ids[b.lo+j], b.t.ids[b.lo+i]
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return len(t.pts) }

// Nearest returns the payload id and distance of the point closest to q.
// It returns (-1, +Inf) on an empty tree.
func (t *Tree) Nearest(q geo.Point) (int, float64) {
	if len(t.pts) == 0 {
		return -1, math.Inf(1)
	}
	bestID, bestD2 := -1, math.Inf(1)
	t.nearest(0, len(t.pts), 0, q, &bestID, &bestD2)
	return bestID, math.Sqrt(bestD2)
}

func (t *Tree) nearest(lo, hi, axis int, q geo.Point, bestID *int, bestD2 *float64) {
	if hi <= lo {
		return
	}
	mid := (lo + hi) / 2
	p := t.pts[mid]
	if d2 := p.SqDist(q); d2 < *bestD2 {
		*bestD2 = d2
		*bestID = t.ids[mid]
	}
	var qa, pa float64
	if axis == 0 {
		qa, pa = q.X, p.X
	} else {
		qa, pa = q.Y, p.Y
	}
	nearLo, nearHi, farLo, farHi := lo, mid, mid+1, hi
	if qa > pa {
		nearLo, nearHi, farLo, farHi = mid+1, hi, lo, mid
	}
	t.nearest(nearLo, nearHi, 1-axis, q, bestID, bestD2)
	if diff := qa - pa; diff*diff < *bestD2 {
		t.nearest(farLo, farHi, 1-axis, q, bestID, bestD2)
	}
}

// KNearest returns the payload ids of the k points closest to q, ordered by
// increasing distance. Fewer than k points are returned when the tree is
// smaller than k.
func (t *Tree) KNearest(q geo.Point, k int) []int {
	if k <= 0 || len(t.pts) == 0 {
		return nil
	}
	h := &maxHeap{}
	t.knearest(0, len(t.pts), 0, q, k, h)
	out := make([]int, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(heapItem).id
	}
	return out
}

func (t *Tree) knearest(lo, hi, axis int, q geo.Point, k int, h *maxHeap) {
	if hi <= lo {
		return
	}
	mid := (lo + hi) / 2
	p := t.pts[mid]
	d2 := p.SqDist(q)
	if h.Len() < k {
		heap.Push(h, heapItem{d2: d2, id: t.ids[mid]})
	} else if d2 < (*h)[0].d2 {
		heap.Pop(h)
		heap.Push(h, heapItem{d2: d2, id: t.ids[mid]})
	}
	var qa, pa float64
	if axis == 0 {
		qa, pa = q.X, p.X
	} else {
		qa, pa = q.Y, p.Y
	}
	nearLo, nearHi, farLo, farHi := lo, mid, mid+1, hi
	if qa > pa {
		nearLo, nearHi, farLo, farHi = mid+1, hi, lo, mid
	}
	t.knearest(nearLo, nearHi, 1-axis, q, k, h)
	diff := qa - pa
	if h.Len() < k || diff*diff < (*h)[0].d2 {
		t.knearest(farLo, farHi, 1-axis, q, k, h)
	}
}

// InRadius returns the payload ids of all points within the closed disk of
// radius r around q, in no particular order.
func (t *Tree) InRadius(q geo.Point, r float64) []int {
	return t.InRadiusAppend(q, r, nil)
}

// InRadiusAppend appends the payload ids of all points within the closed
// disk of radius r around q to out and returns the extended slice. Passing
// a reused buffer keeps repeated queries allocation-free, which matters on
// per-task hot paths like bipartite candidate generation.
func (t *Tree) InRadiusAppend(q geo.Point, r float64, out []int) []int {
	if len(t.pts) == 0 || r < 0 {
		return out
	}
	t.inRadius(0, len(t.pts), 0, q, r*r, &out)
	return out
}

func (t *Tree) inRadius(lo, hi, axis int, q geo.Point, r2 float64, out *[]int) {
	if hi <= lo {
		return
	}
	mid := (lo + hi) / 2
	p := t.pts[mid]
	if p.SqDist(q) <= r2 {
		*out = append(*out, t.ids[mid])
	}
	var qa, pa float64
	if axis == 0 {
		qa, pa = q.X, p.X
	} else {
		qa, pa = q.Y, p.Y
	}
	diff := qa - pa
	if diff <= 0 || diff*diff <= r2 {
		t.inRadius(lo, mid, 1-axis, q, r2, out)
	}
	if diff >= 0 || diff*diff <= r2 {
		t.inRadius(mid+1, hi, 1-axis, q, r2, out)
	}
}

type heapItem struct {
	d2 float64
	id int
}

type maxHeap []heapItem

func (h maxHeap) Len() int            { return len(h) }
func (h maxHeap) Less(i, j int) bool  { return h[i].d2 > h[j].d2 }
func (h maxHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *maxHeap) Push(x interface{}) { *h = append(*h, x.(heapItem)) }
func (h *maxHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
