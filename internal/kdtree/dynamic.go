package kdtree

import (
	"math"
	"sort"

	"spatialcrowd/internal/geo"
)

// DynamicTree is a 2-d tree supporting Insert and Delete between queries,
// for indexes whose point set changes by small deltas per batch (the
// streaming engine's worker pool under low churn). It complements the
// static Tree: where Rebuild pays O(n log^2 n) every window, a DynamicTree
// absorbs k updates in O(k log n) amortized and leaves the rest of the
// structure untouched.
//
// Balance is maintained scapegoat-style: every node carries a subtree size,
// inserts walk one root-to-leaf path, and when a node on that path becomes
// alpha-weight-unbalanced its whole subtree is rebuilt perfectly balanced
// (the classic rebuild-when-unbalanced policy, amortized O(log n) per
// insert). Deletes tombstone the node in place — queries skip dead nodes
// but still use their coordinates for pruning, which stays correct because
// pruning only ever discards regions, never reports them — and the whole
// tree is compacted once dead nodes outnumber live ones.
//
// The zero value is an empty tree. Not safe for concurrent mutation.
type DynamicTree struct {
	pts  []geo.Point
	ids  []int
	left []int32
	size []int32 // nodes (live + dead) in subtree, self included
	rite []int32
	dead []bool

	free    []int32 // tombstoned slots released by the last compaction
	root    int32
	nLive   int
	nDead   int
	path    []int32 // reusable insert path
	scratch []int32 // reusable rebuild buffer
	sorter  dynByAxis
}

// scapegoatAlpha is the weight-balance bound: a subtree is rebuilt when one
// child holds more than this fraction of its nodes. 0.7 trades slightly
// deeper trees for fewer rebuilds, which suits the low-churn workloads the
// dynamic index targets.
const scapegoatAlpha = 0.7

// scapegoatMinRebuild is the smallest subtree worth rebalancing; below it a
// skewed subtree is cheaper to search than to rebuild.
const scapegoatMinRebuild = 8

// NewDynamicTree returns an empty dynamic tree.
func NewDynamicTree() *DynamicTree {
	return &DynamicTree{root: -1}
}

// Len returns the number of live (inserted and not deleted) points.
func (t *DynamicTree) Len() int { return t.nLive }

// Reset empties the tree, keeping the node arena for reuse.
func (t *DynamicTree) Reset() {
	t.pts = t.pts[:0]
	t.ids = t.ids[:0]
	t.left = t.left[:0]
	t.rite = t.rite[:0]
	t.size = t.size[:0]
	t.dead = t.dead[:0]
	t.free = t.free[:0]
	t.root = -1
	t.nLive, t.nDead = 0, 0
}

// Bulk resets the tree and loads the given points in one perfectly
// balanced build — the fast path when the caller decides incremental
// maintenance is not worth it for this batch. ids[i] is the payload of
// points[i]; pass nil to use positions 0..n-1.
func (t *DynamicTree) Bulk(points []geo.Point, ids []int) {
	t.Reset()
	n := len(points)
	if n == 0 {
		return
	}
	t.pts = append(t.pts, points...)
	if ids == nil {
		for i := 0; i < n; i++ {
			t.ids = append(t.ids, i)
		}
	} else {
		t.ids = append(t.ids, ids...)
	}
	t.scratch = t.scratch[:0]
	for i := 0; i < n; i++ {
		t.left = append(t.left, -1)
		t.rite = append(t.rite, -1)
		t.size = append(t.size, 1)
		t.dead = append(t.dead, false)
		t.scratch = append(t.scratch, int32(i))
	}
	t.nLive = n
	t.root = t.buildBalanced(t.scratch, 0, n, 0)
}

// alloc claims a node slot for (p, id), reusing compacted slots first.
func (t *DynamicTree) alloc(p geo.Point, id int) int32 {
	if n := len(t.free); n > 0 {
		ni := t.free[n-1]
		t.free = t.free[:n-1]
		t.pts[ni], t.ids[ni] = p, id
		t.left[ni], t.rite[ni], t.size[ni] = -1, -1, 1
		t.dead[ni] = false
		return ni
	}
	t.pts = append(t.pts, p)
	t.ids = append(t.ids, id)
	t.left = append(t.left, -1)
	t.rite = append(t.rite, -1)
	t.size = append(t.size, 1)
	t.dead = append(t.dead, false)
	return int32(len(t.pts) - 1)
}

// Insert adds a point with its payload id. Duplicate points and ids are
// allowed; Delete removes one matching (point, id) occurrence.
func (t *DynamicTree) Insert(p geo.Point, id int) {
	if len(t.pts) == 0 {
		t.root = -1 // zero-value tree: no arena yet, root index 0 is meaningless
	}
	ni := t.alloc(p, id)
	t.nLive++
	if t.root < 0 {
		t.root = ni
		return
	}
	// Walk one path to a leaf slot, bumping subtree sizes. Equal axis
	// coordinates descend right; searches must (and do) check both sides on
	// equality because subtree rebuilds do not preserve that convention.
	t.path = t.path[:0]
	cur, axis := t.root, 0
	for {
		t.path = append(t.path, cur)
		t.size[cur]++
		var next *int32
		var pa, ca float64
		if axis == 0 {
			pa, ca = p.X, t.pts[cur].X
		} else {
			pa, ca = p.Y, t.pts[cur].Y
		}
		if pa < ca {
			next = &t.left[cur]
		} else {
			next = &t.rite[cur]
		}
		if *next < 0 {
			*next = ni
			break
		}
		cur = *next
		axis = 1 - axis
	}
	// Scapegoat check: rebuild the highest alpha-unbalanced subtree on the
	// path. Sizes shrink along the path, so the scan can stop early.
	for depth, n := range t.path {
		s := t.size[n]
		if int(s) < scapegoatMinRebuild {
			break
		}
		heavier := int32(0)
		if l := t.left[n]; l >= 0 && t.size[l] > heavier {
			heavier = t.size[l]
		}
		if r := t.rite[n]; r >= 0 && t.size[r] > heavier {
			heavier = t.size[r]
		}
		if float64(heavier) > scapegoatAlpha*float64(s) {
			parent := int32(-1)
			if depth > 0 {
				parent = t.path[depth-1]
			}
			t.rebuildSubtree(n, depth, parent)
			return
		}
	}
}

// rebuildSubtree rebalances the subtree rooted at n (which sits at the
// given depth, under parent, or at the root when parent < 0). Tombstones
// inside the subtree are kept — only the global compaction drops them — so
// every ancestor size stays valid.
func (t *DynamicTree) rebuildSubtree(n int32, depth int, parent int32) {
	t.scratch = t.scratch[:0]
	t.collect(n)
	nr := t.buildBalanced(t.scratch, 0, len(t.scratch), depth&1)
	switch {
	case parent < 0:
		t.root = nr
	case t.left[parent] == n:
		t.left[parent] = nr
	default:
		t.rite[parent] = nr
	}
}

// collect appends every node index (dead or alive) of n's subtree to
// t.scratch.
func (t *DynamicTree) collect(n int32) {
	if n < 0 {
		return
	}
	t.scratch = append(t.scratch, n)
	t.collect(t.left[n])
	t.collect(t.rite[n])
}

// buildBalanced links buf[lo:hi] into a perfectly balanced subtree split on
// axis and returns its root (-1 when empty). The subrange is fully sorted
// per level with a reused sorter, mirroring the static builder's
// n log^2 n strategy — fine at rebuild sizes, and allocation-free.
func (t *DynamicTree) buildBalanced(buf []int32, lo, hi, axis int) int32 {
	if hi <= lo {
		return -1
	}
	t.sorter.t, t.sorter.idx, t.sorter.axis = t, buf[lo:hi], axis
	sort.Sort(&t.sorter)
	mid := (lo + hi) / 2
	n := buf[mid]
	t.left[n] = t.buildBalanced(buf, lo, mid, 1-axis)
	t.rite[n] = t.buildBalanced(buf, mid+1, hi, 1-axis)
	t.size[n] = int32(hi - lo)
	return n
}

type dynByAxis struct {
	t    *DynamicTree
	idx  []int32
	axis int
}

func (s *dynByAxis) Len() int { return len(s.idx) }
func (s *dynByAxis) Less(i, j int) bool {
	pi, pj := s.t.pts[s.idx[i]], s.t.pts[s.idx[j]]
	if s.axis == 0 {
		return pi.X < pj.X
	}
	return pi.Y < pj.Y
}
func (s *dynByAxis) Swap(i, j int) { s.idx[i], s.idx[j] = s.idx[j], s.idx[i] }

// Delete removes one live occurrence of (p, id) and reports whether it was
// found. When tombstones come to outnumber live nodes the tree is compacted
// into a fresh balanced build, so query cost stays O(log n) in the live
// population.
func (t *DynamicTree) Delete(p geo.Point, id int) bool {
	if t.nLive == 0 || t.root < 0 || !t.findAndKill(t.root, 0, p, id) {
		return false
	}
	t.nLive--
	t.nDead++
	if t.nDead > t.nLive {
		t.compact()
	}
	return true
}

// findAndKill locates a live node holding exactly (p, id) and tombstones
// it. Both children are searched when the query coordinate equals the
// node's split coordinate — required because balanced rebuilds place equal
// coordinates on either side.
func (t *DynamicTree) findAndKill(n int32, axis int, p geo.Point, id int) bool {
	if n < 0 {
		return false
	}
	if !t.dead[n] && t.ids[n] == id && t.pts[n] == p {
		t.dead[n] = true
		return true
	}
	var qa, pa float64
	if axis == 0 {
		qa, pa = p.X, t.pts[n].X
	} else {
		qa, pa = p.Y, t.pts[n].Y
	}
	if qa <= pa && t.findAndKill(t.left[n], 1-axis, p, id) {
		return true
	}
	return qa >= pa && t.findAndKill(t.rite[n], 1-axis, p, id)
}

// compact rebuilds the whole tree over the live nodes only and releases
// tombstoned slots to the free list.
func (t *DynamicTree) compact() {
	t.scratch = t.scratch[:0]
	t.collectLive(t.root)
	t.root = t.buildBalanced(t.scratch, 0, len(t.scratch), 0)
	t.nDead = 0
}

func (t *DynamicTree) collectLive(n int32) {
	if n < 0 {
		return
	}
	l, r := t.left[n], t.rite[n]
	if t.dead[n] {
		t.dead[n] = false
		t.free = append(t.free, n)
	} else {
		t.scratch = append(t.scratch, n)
	}
	t.collectLive(l)
	t.collectLive(r)
}

// Nearest returns the payload id and distance of the live point closest to
// q, or (-1, +Inf) on an empty tree.
func (t *DynamicTree) Nearest(q geo.Point) (int, float64) {
	if t.nLive == 0 {
		return -1, math.Inf(1)
	}
	bestID, bestD2 := -1, math.Inf(1)
	t.nearest(t.root, 0, q, &bestID, &bestD2)
	return bestID, math.Sqrt(bestD2)
}

func (t *DynamicTree) nearest(n int32, axis int, q geo.Point, bestID *int, bestD2 *float64) {
	if n < 0 {
		return
	}
	p := t.pts[n]
	if !t.dead[n] {
		if d2 := p.SqDist(q); d2 < *bestD2 {
			*bestD2 = d2
			*bestID = t.ids[n]
		}
	}
	var qa, pa float64
	if axis == 0 {
		qa, pa = q.X, p.X
	} else {
		qa, pa = q.Y, p.Y
	}
	near, far := t.left[n], t.rite[n]
	if qa > pa {
		near, far = far, near
	}
	t.nearest(near, 1-axis, q, bestID, bestD2)
	if diff := qa - pa; diff*diff < *bestD2 {
		t.nearest(far, 1-axis, q, bestID, bestD2)
	}
}

// InRadiusAppend appends the payload ids of all live points within the
// closed disk of radius r around q to out and returns the extended slice.
func (t *DynamicTree) InRadiusAppend(q geo.Point, r float64, out []int) []int {
	if t.nLive == 0 || r < 0 {
		return out
	}
	t.inRadius(t.root, 0, q, r*r, &out)
	return out
}

func (t *DynamicTree) inRadius(n int32, axis int, q geo.Point, r2 float64, out *[]int) {
	if n < 0 {
		return
	}
	p := t.pts[n]
	if !t.dead[n] && p.SqDist(q) <= r2 {
		*out = append(*out, t.ids[n])
	}
	var qa, pa float64
	if axis == 0 {
		qa, pa = q.X, p.X
	} else {
		qa, pa = q.Y, p.Y
	}
	diff := qa - pa
	if diff <= 0 || diff*diff <= r2 {
		t.inRadius(t.left[n], 1-axis, q, r2, out)
	}
	if diff >= 0 || diff*diff <= r2 {
		t.inRadius(t.rite[n], 1-axis, q, r2, out)
	}
}
