package kdtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"spatialcrowd/internal/geo"
)

// TestDynamicTreeFuzzVsRebuild drives a DynamicTree through randomized
// Insert/Delete interleavings and, after every mutation burst, checks its
// Nearest and InRadius answers against a static Tree rebuilt from scratch
// over the same live set. Nearest is compared by distance (ties may
// legitimately resolve to different ids); InRadius is compared as an id
// multiset.
func TestDynamicTreeFuzzVsRebuild(t *testing.T) {
	for _, seed := range []int64{1, 7, 23, 91} {
		seed := seed
		t.Run("", func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			dyn := NewDynamicTree()
			ref := &Tree{}
			type entry struct {
				p  geo.Point
				id int
			}
			var live []entry
			nextID := 0
			randPoint := func() geo.Point {
				// Snap to a coarse lattice so duplicate coordinates (the
				// delete-search edge case) occur often.
				return geo.Point{
					X: float64(rng.Intn(40)) * 0.5,
					Y: float64(rng.Intn(40)) * 0.5,
				}
			}

			check := func(round int) {
				pts := make([]geo.Point, len(live))
				ids := make([]int, len(live))
				for i, e := range live {
					pts[i], ids[i] = e.p, e.id
				}
				ref.Rebuild(pts, ids)
				if dyn.Len() != len(live) {
					t.Fatalf("round %d: dynamic Len %d, want %d", round, dyn.Len(), len(live))
				}
				for probe := 0; probe < 20; probe++ {
					q := geo.Point{X: rng.Float64() * 20, Y: rng.Float64() * 20}
					_, wd := ref.Nearest(q)
					gi, gd := dyn.Nearest(q)
					if gd != wd {
						t.Fatalf("round %d probe %d: Nearest(%v) distance %v, want %v", round, probe, q, gd, wd)
					}
					if gi >= 0 {
						// The returned id must belong to a live point at that distance.
						found := false
						for _, e := range live {
							if e.id == gi && math.Sqrt(e.p.SqDist(q)) == gd {
								found = true
								break
							}
						}
						if !found && len(live) > 0 {
							t.Fatalf("round %d probe %d: Nearest returned id %d not at distance %v", round, probe, gi, gd)
						}
					}
					r := rng.Float64() * 8
					want := append([]int(nil), ref.InRadiusAppend(q, r, nil)...)
					got := append([]int(nil), dyn.InRadiusAppend(q, r, nil)...)
					sort.Ints(want)
					sort.Ints(got)
					if len(want) != len(got) {
						t.Fatalf("round %d probe %d: InRadius(%v, %v) returned %d ids, want %d", round, probe, q, r, len(got), len(want))
					}
					for i := range want {
						if want[i] != got[i] {
							t.Fatalf("round %d probe %d: InRadius mismatch at %d: %d vs %d", round, probe, i, got[i], want[i])
						}
					}
				}
			}

			for round := 0; round < 60; round++ {
				// A burst of mutations: inserts early, deletes dominating later
				// so the tombstone-compaction path triggers.
				for m := 0; m < 25; m++ {
					delBias := 0.3
					if round > 40 {
						delBias = 0.7
					}
					if len(live) > 0 && rng.Float64() < delBias {
						i := rng.Intn(len(live))
						e := live[i]
						if !dyn.Delete(e.p, e.id) {
							t.Fatalf("round %d: Delete(%v, %d) not found", round, e.p, e.id)
						}
						live[i] = live[len(live)-1]
						live = live[:len(live)-1]
					} else {
						e := entry{p: randPoint(), id: nextID}
						nextID++
						dyn.Insert(e.p, e.id)
						live = append(live, e)
					}
				}
				check(round)
			}

			// Deleting something absent must report false and change nothing.
			before := dyn.Len()
			if dyn.Delete(geo.Point{X: -1000, Y: -1000}, 999999) {
				t.Fatal("Delete of absent point reported true")
			}
			if dyn.Len() != before {
				t.Fatalf("failed Delete changed Len: %d -> %d", before, dyn.Len())
			}
		})
	}
}

// TestDynamicTreeBulkMatchesStatic checks a Bulk load answers queries
// exactly like a static build over the same points.
func TestDynamicTreeBulkMatchesStatic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := make([]geo.Point, 500)
	for i := range pts {
		pts[i] = geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
	}
	dyn := NewDynamicTree()
	dyn.Bulk(pts, nil)
	ref := Build(pts, nil)
	for probe := 0; probe < 50; probe++ {
		q := geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		wi, wd := ref.Nearest(q)
		gi, gd := dyn.Nearest(q)
		if wd != gd {
			t.Fatalf("probe %d: Nearest distance %v, want %v", probe, gd, wd)
		}
		if pts[gi].SqDist(q) != pts[wi].SqDist(q) {
			t.Fatalf("probe %d: Nearest ids at different distances", probe)
		}
		r := rng.Float64() * 15
		want := append([]int(nil), ref.InRadiusAppend(q, r, nil)...)
		got := append([]int(nil), dyn.InRadiusAppend(q, r, nil)...)
		sort.Ints(want)
		sort.Ints(got)
		if len(want) != len(got) {
			t.Fatalf("probe %d: InRadius count %d, want %d", probe, len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("probe %d: InRadius sets differ", probe)
			}
		}
	}
}

// TestDynamicTreeZeroValue checks the zero value behaves as an empty tree.
func TestDynamicTreeZeroValue(t *testing.T) {
	var tr DynamicTree
	if id, _ := tr.Nearest(geo.Point{}); id != -1 {
		t.Fatalf("empty Nearest id = %d", id)
	}
	if got := tr.InRadiusAppend(geo.Point{}, 10, nil); len(got) != 0 {
		t.Fatalf("empty InRadius returned %v", got)
	}
	if tr.Delete(geo.Point{}, 0) {
		t.Fatal("empty Delete reported true")
	}
	tr.Insert(geo.Point{X: 1, Y: 2}, 42)
	if id, d := tr.Nearest(geo.Point{X: 1, Y: 2}); id != 42 || d != 0 {
		t.Fatalf("Nearest after first insert = (%d, %v)", id, d)
	}
}
