package kdtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"spatialcrowd/internal/geo"
)

func randomPoints(rng *rand.Rand, n int) []geo.Point {
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
	}
	return pts
}

func TestEmptyTree(t *testing.T) {
	tr := Build(nil, nil)
	if tr.Len() != 0 {
		t.Fatal("empty tree has points")
	}
	if id, d := tr.Nearest(geo.Point{}); id != -1 || !math.IsInf(d, 1) {
		t.Errorf("Nearest on empty = %d/%v", id, d)
	}
	if got := tr.KNearest(geo.Point{}, 3); got != nil {
		t.Errorf("KNearest on empty = %v", got)
	}
	if got := tr.InRadius(geo.Point{}, 5); got != nil {
		t.Errorf("InRadius on empty = %v", got)
	}
}

func TestSinglePoint(t *testing.T) {
	tr := Build([]geo.Point{{X: 3, Y: 4}}, []int{42})
	id, d := tr.Nearest(geo.Point{})
	if id != 42 || math.Abs(d-5) > 1e-12 {
		t.Errorf("Nearest = %d/%v, want 42/5", id, d)
	}
}

func TestNearestVsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(300)
		pts := randomPoints(rng, n)
		tr := Build(pts, nil)
		for q := 0; q < 20; q++ {
			query := geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
			bestI, bestD := -1, math.Inf(1)
			for i, p := range pts {
				if d := p.Dist(query); d < bestD {
					bestI, bestD = i, d
				}
			}
			gotI, gotD := tr.Nearest(query)
			if math.Abs(gotD-bestD) > 1e-9 {
				t.Fatalf("trial %d: nearest dist %v, brute %v", trial, gotD, bestD)
			}
			// Distances tie rarely with random floats; ids must then match.
			if gotI != bestI && math.Abs(pts[gotI].Dist(query)-bestD) > 1e-9 {
				t.Fatalf("trial %d: wrong nearest id", trial)
			}
		}
	}
}

func TestKNearestVsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(200)
		pts := randomPoints(rng, n)
		tr := Build(pts, nil)
		for _, k := range []int{1, 3, 7, n, n + 5} {
			query := geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
			got := tr.KNearest(query, k)
			wantLen := k
			if wantLen > n {
				wantLen = n
			}
			if len(got) != wantLen {
				t.Fatalf("k=%d: returned %d ids", k, len(got))
			}
			// Brute-force the same k.
			idx := make([]int, n)
			for i := range idx {
				idx[i] = i
			}
			sort.Slice(idx, func(a, b int) bool {
				return pts[idx[a]].SqDist(query) < pts[idx[b]].SqDist(query)
			})
			for i := range got {
				gd := pts[got[i]].Dist(query)
				wd := pts[idx[i]].Dist(query)
				if math.Abs(gd-wd) > 1e-9 {
					t.Fatalf("k=%d position %d: dist %v vs brute %v", k, i, gd, wd)
				}
			}
			// Ordered by increasing distance.
			for i := 1; i < len(got); i++ {
				if pts[got[i-1]].SqDist(query) > pts[got[i]].SqDist(query)+1e-12 {
					t.Fatalf("KNearest not sorted at %d", i)
				}
			}
		}
	}
}

func TestInRadiusVsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(300)
		pts := randomPoints(rng, n)
		tr := Build(pts, nil)
		query := geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		r := rng.Float64() * 40
		got := map[int]bool{}
		for _, id := range tr.InRadius(query, r) {
			if got[id] {
				t.Fatalf("duplicate id %d", id)
			}
			got[id] = true
		}
		for i, p := range pts {
			want := p.Dist(query) <= r
			if got[i] != want {
				t.Fatalf("trial %d: point %d in-radius %v, tree says %v", trial, i, want, got[i])
			}
		}
	}
}

func TestCustomIDs(t *testing.T) {
	pts := []geo.Point{{X: 0, Y: 0}, {X: 10, Y: 0}}
	tr := Build(pts, []int{100, 200})
	id, _ := tr.Nearest(geo.Point{X: 9, Y: 0})
	if id != 200 {
		t.Errorf("Nearest id = %d, want 200", id)
	}
	ids := tr.InRadius(geo.Point{X: 0, Y: 0}, 1)
	if len(ids) != 1 || ids[0] != 100 {
		t.Errorf("InRadius ids = %v", ids)
	}
}

func TestDuplicatePoints(t *testing.T) {
	pts := make([]geo.Point, 20)
	for i := range pts {
		pts[i] = geo.Point{X: 5, Y: 5}
	}
	tr := Build(pts, nil)
	if got := tr.InRadius(geo.Point{X: 5, Y: 5}, 0); len(got) != 20 {
		t.Errorf("found %d of 20 duplicates", len(got))
	}
	if got := tr.KNearest(geo.Point{X: 5, Y: 5}, 7); len(got) != 7 {
		t.Errorf("KNearest returned %d", len(got))
	}
}

func TestBuildDoesNotAliasInput(t *testing.T) {
	pts := randomPoints(rand.New(rand.NewSource(4)), 50)
	orig := append([]geo.Point(nil), pts...)
	Build(pts, nil)
	for i := range pts {
		if pts[i] != orig[i] {
			t.Fatal("Build mutated the caller's slice")
		}
	}
}

func TestInRadiusAppendReusesBuffer(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	pts := make([]geo.Point, 200)
	for i := range pts {
		pts[i] = geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
	}
	tree := Build(pts, nil)
	buf := make([]int, 0, 256)
	for trial := 0; trial < 20; trial++ {
		q := geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		r := rng.Float64() * 30
		want := tree.InRadius(q, r)
		buf = tree.InRadiusAppend(q, r, buf[:0])
		if len(buf) != len(want) {
			t.Fatalf("trial %d: %d ids vs %d", trial, len(buf), len(want))
		}
		seen := make(map[int]bool, len(want))
		for _, id := range want {
			seen[id] = true
		}
		for _, id := range buf {
			if !seen[id] {
				t.Fatalf("trial %d: unexpected id %d", trial, id)
			}
		}
	}
}
