package spatial

import (
	"math"
	"math/rand"
	"testing"

	"spatialcrowd/internal/geo"
	"spatialcrowd/internal/roadnet"
)

// twoIslands builds a road network with two disconnected components (no
// edge crosses between them) and returns the space plus one point on each
// island.
func twoIslands(t *testing.T) (*RoadSpace, geo.Point, geo.Point) {
	t.Helper()
	nw := roadnet.New()
	a0 := nw.AddNode(geo.Point{X: 0, Y: 0})
	a1 := nw.AddNode(geo.Point{X: 10, Y: 0})
	b0 := nw.AddNode(geo.Point{X: 100, Y: 0})
	b1 := nw.AddNode(geo.Point{X: 110, Y: 0})
	nw.AddRoad(a0, a1)
	nw.AddRoad(b0, b1)
	rs, err := NewRoadSpace(nw, 2)
	if err != nil {
		t.Fatal(err)
	}
	return rs, geo.Point{X: 1, Y: 0}, geo.Point{X: 101, Y: 0}
}

// TestDisconnectedDistCached pins the A*-storm fix: the first Dist over a
// disconnected pair pays the full-component search and caches the
// unreachable sentinel; repeats are pure cache hits (misses stop growing).
func TestDisconnectedDistCached(t *testing.T) {
	rs, pa, pb := twoIslands(t)
	first := rs.Dist(pa, pb)
	if want := pa.Dist(pb); first != want {
		t.Fatalf("disconnected Dist = %v, want Euclidean fallback %v", first, want)
	}
	_, misses := rs.CacheStats()
	for i := 0; i < 10; i++ {
		if got := rs.Dist(pa, pb); got != first {
			t.Fatalf("repeat Dist = %v, want %v", got, first)
		}
	}
	hits, missesAfter := rs.CacheStats()
	if missesAfter != misses {
		t.Fatalf("misses grew from %d to %d on repeated disconnected Dist (Inf not cached)", misses, missesAfter)
	}
	if hits < 10 {
		t.Fatalf("hits = %d, want >= 10", hits)
	}
}

// TestWithinDistNegativeCached: negative range checks must be cached too —
// as the exact unreachable sentinel for disconnected pairs, and as a
// distance lower bound when the bounded search was cut off at the radius.
func TestWithinDistNegativeCached(t *testing.T) {
	rs, pa, pb := twoIslands(t)
	if rs.WithinDist(pa, pb, 500) {
		t.Fatal("disconnected pair reported in range")
	}
	_, misses := rs.CacheStats()
	for i := 0; i < 10; i++ {
		if rs.WithinDist(pa, pb, 500) {
			t.Fatal("disconnected pair reported in range")
		}
	}
	if _, m := rs.CacheStats(); m != misses {
		t.Fatalf("misses grew from %d to %d on repeated negative WithinDist", misses, m)
	}

	// Connected but out of range: the cutoff caches a lower bound that
	// answers any repeat with the same or smaller radius.
	nw := roadnet.New()
	n0 := nw.AddNode(geo.Point{X: 0, Y: 0})
	n1 := nw.AddNode(geo.Point{X: 50, Y: 0})
	n2 := nw.AddNode(geo.Point{X: 100, Y: 0})
	nw.AddRoad(n0, n1)
	nw.AddRoad(n1, n2)
	far, err := NewRoadSpace(nw, 2)
	if err != nil {
		t.Fatal(err)
	}
	qa, qb := geo.Point{X: 0, Y: 0}, geo.Point{X: 100, Y: 0}
	if far.WithinDist(qa, qb, 30) {
		t.Fatal("pair 100 apart reported within 30")
	}
	_, misses = far.CacheStats()
	for i := 0; i < 10; i++ {
		if far.WithinDist(qa, qb, 30) || far.WithinDist(qa, qb, 20) {
			t.Fatal("out-of-range pair reported in range")
		}
	}
	if _, m := far.CacheStats(); m != misses {
		t.Fatalf("misses grew from %d to %d on repeated bounded-negative WithinDist", misses, m)
	}
	// A wider radius must still find the true route: the lower bound is
	// upgraded to the exact distance, and positives stay correct.
	if !far.WithinDist(qa, qb, 150) {
		t.Fatal("pair 100 apart not within 150 after negative caching")
	}
	if d := far.Dist(qa, qb); math.Abs(d-100) > 1e-9 {
		t.Fatalf("Dist = %v, want 100", d)
	}
}

// TestPartitionFuzz drives both partitioners over random cell/shard
// combinations: every cell must land in [0, Shards()), and whenever there
// are at least as many cells as shards no shard may be left empty.
func TestPartitionFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 500; iter++ {
		cols, rows := 1+rng.Intn(12), 1+rng.Intn(12)
		space := NewGridSpace(geo.NewGrid(geo.Rect{Max: geo.Point{X: 100, Y: 100}}, cols, rows))
		cells := space.NumCells()
		asked := 1 + rng.Intn(80)
		for name, p := range map[string]Partitioner{
			"mod":      ModPartition(asked),
			"balanced": BalancedPartition(space, asked),
		} {
			shards := p.Shards()
			if name == "balanced" && shards != min(asked, cells) {
				t.Fatalf("balanced(%d cells, %d shards).Shards() = %d, want clamp to %d",
					cells, asked, shards, min(asked, cells))
			}
			owned := make([]int, shards)
			for c := 0; c < cells; c++ {
				si := p.ShardOf(c)
				if si < 0 || si >= shards {
					t.Fatalf("%s: cell %d of %d -> shard %d outside [0,%d)", name, c, cells, si, shards)
				}
				owned[si]++
			}
			if cells >= shards {
				for si, n := range owned {
					if n == 0 {
						t.Fatalf("%s: shard %d/%d owns no cells (cells=%d asked=%d)", name, si, shards, cells, asked)
					}
				}
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
