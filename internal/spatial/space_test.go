package spatial

import (
	"math"
	"math/rand"
	"testing"

	"spatialcrowd/internal/geo"
	"spatialcrowd/internal/roadnet"
)

// TestGridSpaceDelegates pins the zero-behavior-change guarantee: every
// Space method of GridSpace (and of a raw geo.Grid used as a Space) answers
// exactly like the underlying grid.
func TestGridSpaceDelegates(t *testing.T) {
	g := geo.SquareGrid(100, 10)
	gs := NewGridSpace(g)
	var asSpace Space = g // raw grid must satisfy Space too
	rng := rand.New(rand.NewSource(1))

	if gs.NumCells() != g.NumCells() || asSpace.NumCells() != g.NumCells() {
		t.Fatalf("NumCells mismatch")
	}
	for i := 0; i < 200; i++ {
		p := geo.Point{X: rng.Float64()*120 - 10, Y: rng.Float64()*120 - 10}
		if gs.CellOf(p) != g.CellOf(p) {
			t.Fatalf("CellOf(%v) diverged", p)
		}
		q := geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		if gs.Dist(p, q) != p.Dist(q) {
			t.Fatalf("Dist(%v,%v) diverged", p, q)
		}
		r := rng.Float64() * 30
		a, b := gs.CellsInRange(p, r), g.CellsInRange(p, r)
		if len(a) != len(b) {
			t.Fatalf("CellsInRange(%v,%v) diverged: %v vs %v", p, r, a, b)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("CellsInRange(%v,%v) diverged: %v vs %v", p, r, a, b)
			}
		}
	}
	for c := 0; c < g.NumCells(); c++ {
		if gs.CellCenter(c) != g.CellCenter(c) {
			t.Fatalf("CellCenter(%d) diverged", c)
		}
		want := g.Neighbors(c)
		got := gs.NeighborsAppend(c, nil)
		if len(got) != len(want) {
			t.Fatalf("Neighbors(%d) diverged: %v vs %v", c, got, want)
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("Neighbors(%d) diverged: %v vs %v", c, got, want)
			}
		}
	}
	if BackendName(gs) != "grid" || BackendName(asSpace) != "grid" {
		t.Fatalf("BackendName: got %q / %q, want grid", BackendName(gs), BackendName(asSpace))
	}
}

// bruteDijkstra is an O(V^2) reference shortest-path for small networks.
func bruteDijkstra(nw *roadnet.Network, src roadnet.NodeID) []float64 {
	n := nw.NumNodes()
	dist := make([]float64, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	for {
		u, best := -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if !done[i] && dist[i] < best {
				u, best = i, dist[i]
			}
		}
		if u < 0 {
			return dist
		}
		done[u] = true
		nw.VisitEdges(roadnet.NodeID(u), func(to roadnet.NodeID, w float64) {
			if d := dist[u] + w; d < dist[to] {
				dist[to] = d
			}
		})
	}
}

// randomNetwork builds a connected-ish random road graph.
func randomNetwork(rng *rand.Rand, nodes int) *roadnet.Network {
	nw := roadnet.New()
	for i := 0; i < nodes; i++ {
		nw.AddNode(geo.Point{X: rng.Float64() * 50, Y: rng.Float64() * 50})
	}
	// A random spanning chain plus extra chords.
	for i := 1; i < nodes; i++ {
		nw.AddRoad(roadnet.NodeID(rng.Intn(i)), roadnet.NodeID(i))
	}
	for k := 0; k < nodes; k++ {
		a, b := roadnet.NodeID(rng.Intn(nodes)), roadnet.NodeID(rng.Intn(nodes))
		if a != b {
			nw.AddRoad(a, b)
		}
	}
	return nw
}

// TestRoadSpaceDistMatchesBruteForce checks RoadSpace.Dist against a
// brute-force Dijkstra on random small networks, querying from node
// positions so the walk legs are zero and the comparison is exact.
func TestRoadSpaceDistMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		nodes := 15 + rng.Intn(40)
		nw := randomNetwork(rng, nodes)
		rs, err := NewRoadSpace(nw, 1+rng.Intn(8))
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < 20; q++ {
			a := roadnet.NodeID(rng.Intn(nodes))
			b := roadnet.NodeID(rng.Intn(nodes))
			want := bruteDijkstra(nw, a)[b]
			got := rs.Dist(nw.Coord(a), nw.Coord(b))
			if math.IsInf(want, 1) {
				// Disconnected: Dist falls back to Euclidean.
				if e := nw.Coord(a).Dist(nw.Coord(b)); math.Abs(got-e) > 1e-9 {
					t.Fatalf("trial %d: unreachable pair (%d,%d): got %v, want Euclidean %v", trial, a, b, got, e)
				}
				continue
			}
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("trial %d: Dist(%d,%d) = %v, want %v", trial, a, b, got, want)
			}
			// WithinDist must agree with the true distance on both sides.
			if want > 0 {
				if !rs.WithinDist(nw.Coord(a), nw.Coord(b), want+1e-9) {
					t.Fatalf("trial %d: WithinDist(%d,%d,%v) = false", trial, a, b, want)
				}
				if rs.WithinDist(nw.Coord(a), nw.Coord(b), want*0.99-1e-9) {
					t.Fatalf("trial %d: WithinDist(%d,%d,%v) = true under the true distance %v", trial, a, b, want*0.99, want)
				}
			}
		}
	}
}

// TestRoadSpaceCellInvariants checks the clustering contract: every cell is
// non-empty, centers map back to their own cell, neighbors are valid cells,
// and CellsInRange covers the cell of every node within the radius.
func TestRoadSpaceCellInvariants(t *testing.T) {
	nw, err := roadnet.GridCity(roadnet.GridCityConfig{
		Region: geo.Square(50), Cols: 10, Rows: 10, Jitter: 0.2, DropProb: 0.05, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := NewRoadSpace(nw, 12)
	if err != nil {
		t.Fatal(err)
	}
	if rs.NumCells() != 12 {
		t.Fatalf("NumCells = %d, want 12", rs.NumCells())
	}
	counts := make([]int, rs.NumCells())
	for i := 0; i < nw.NumNodes(); i++ {
		counts[rs.CellOf(nw.Coord(roadnet.NodeID(i)))]++
	}
	for c, n := range counts {
		if n == 0 {
			t.Fatalf("cell %d has no nodes", c)
		}
	}
	for c := 0; c < rs.NumCells(); c++ {
		if got := rs.CellOf(rs.CellCenter(c)); got != c {
			t.Fatalf("CellOf(CellCenter(%d)) = %d", c, got)
		}
		for _, nb := range rs.Neighbors(c) {
			if nb < 0 || nb >= rs.NumCells() || nb == c {
				t.Fatalf("cell %d has invalid neighbor %d", c, nb)
			}
		}
	}

	rng := rand.New(rand.NewSource(5))
	for q := 0; q < 50; q++ {
		center := geo.Point{X: rng.Float64() * 50, Y: rng.Float64() * 50}
		r := rng.Float64() * 15
		in := map[int]bool{}
		for _, c := range rs.CellsInRange(center, r) {
			in[c] = true
		}
		for i := 0; i < nw.NumNodes(); i++ {
			p := nw.Coord(roadnet.NodeID(i))
			if p.Dist(center) <= r && !in[rs.CellOf(p)] {
				t.Fatalf("CellsInRange(%v,%v) misses cell %d of node %d", center, r, rs.CellOf(p), i)
			}
		}
	}
	if BackendName(rs) != "road" {
		t.Fatalf("BackendName = %q, want road", BackendName(rs))
	}
}

// TestPartitioners pins ModPartition to the legacy assignment and checks
// BalancedPartition spreads an irregular cell count within one cell of even.
func TestPartitioners(t *testing.T) {
	mod := ModPartition(4)
	if mod.Shards() != 4 {
		t.Fatalf("mod shards = %d", mod.Shards())
	}
	for c := 0; c < 100; c++ {
		if mod.ShardOf(c) != c%4 {
			t.Fatalf("ModPartition(4).ShardOf(%d) = %d, want %d", c, mod.ShardOf(c), c%4)
		}
	}

	g := geo.SquareGrid(10, 9) // 81 cells, not divisible by 4
	bal := BalancedPartition(g, 4)
	counts := make([]int, 4)
	prev := 0
	for c := 0; c < g.NumCells(); c++ {
		s := bal.ShardOf(c)
		if s < 0 || s >= 4 {
			t.Fatalf("ShardOf(%d) = %d out of range", c, s)
		}
		if s < prev {
			t.Fatalf("BalancedPartition not contiguous: cell %d on shard %d after shard %d", c, s, prev)
		}
		prev = s
		counts[s]++
	}
	min, max := counts[0], counts[0]
	for _, n := range counts[1:] {
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if max-min > 1 {
		t.Fatalf("BalancedPartition skewed: %v", counts)
	}
	// Out-of-range cells clamp instead of panicking (router defensiveness).
	if bal.ShardOf(-1) != 0 || bal.ShardOf(10_000) != 3 {
		t.Fatalf("BalancedPartition clamp: %d / %d", bal.ShardOf(-1), bal.ShardOf(10_000))
	}
}

// TestRoadSpaceDeterministic checks that equal networks and cell counts give
// identical spaces (clustering is seeded by farthest-point sampling, not
// randomness).
func TestRoadSpaceDeterministic(t *testing.T) {
	build := func() *RoadSpace {
		nw, err := roadnet.GridCity(roadnet.GridCityConfig{
			Region: geo.Square(30), Cols: 6, Rows: 6, Jitter: 0.3, DropProb: 0.1, Seed: 11,
		})
		if err != nil {
			t.Fatal(err)
		}
		rs, err := NewRoadSpace(nw, 7)
		if err != nil {
			t.Fatal(err)
		}
		return rs
	}
	a, b := build(), build()
	for i := 0; i < a.Network().NumNodes(); i++ {
		p := a.Network().Coord(roadnet.NodeID(i))
		if a.CellOf(p) != b.CellOf(p) {
			t.Fatalf("node %d: cells diverged across identical builds", i)
		}
	}
}

// BenchmarkRoadSpaceDistCached pins the cached-lookup cost of
// RoadSpace.Dist: a working set of node pairs far smaller than the cache, so
// after the first pass every query is snap + map hit.
func BenchmarkRoadSpaceDistCached(b *testing.B) {
	nw, err := roadnet.GridCity(roadnet.GridCityConfig{
		Region: geo.Square(100), Cols: 20, Rows: 20, Jitter: 0.25, DropProb: 0.05, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	rs, err := NewRoadSpace(nw, 80)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	const pairs = 512
	from := make([]geo.Point, pairs)
	to := make([]geo.Point, pairs)
	for i := range from {
		from[i] = nw.Coord(roadnet.NodeID(rng.Intn(nw.NumNodes())))
		to[i] = nw.Coord(roadnet.NodeID(rng.Intn(nw.NumNodes())))
		rs.Dist(from[i], to[i]) // warm the cache
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs.Dist(from[i%pairs], to[i%pairs])
	}
	b.StopTimer()
	hits, misses := rs.CacheStats()
	b.ReportMetric(float64(hits)/float64(hits+misses), "hit-rate")
}

// TestDistCacheIsLRU checks the eviction policy: an entry kept hot by
// lookups survives insertion pressure that evicts cold entries. Eviction is
// per stripe, so the pressure is sized to overflow every stripe's share.
func TestDistCacheIsLRU(t *testing.T) {
	c := newDistCache(distCacheSize, distCacheStripes)
	hot := uint64(0)<<32 | uint64(uint32(1))
	c.put(hot, 1, false)
	// Fill the cache to several times total capacity, touching the hot entry
	// along the way so it stays at the front of its stripe.
	n := 4 * distCacheSize
	for i := 1; i < n; i++ {
		c.put(uint64(i)<<32|uint64(uint32(i+1)), 1, false)
		if i%64 == 0 {
			if _, ok := c.lookup(hot); !ok {
				t.Fatalf("hot entry evicted after %d inserts despite recent use", i)
			}
		}
	}
	if _, ok := c.lookup(hot); !ok {
		t.Fatal("hot entry evicted under pressure: cache is not LRU")
	}
	if got := c.len(); got > distCacheSize {
		t.Fatalf("cache grew to %d entries, cap %d", got, distCacheSize)
	}
	// A cold early entry (never touched again) must be gone: its stripe has
	// seen far more fresh inserts than its capacity share since.
	if _, ok := c.lookup(uint64(1)<<32 | uint64(uint32(2))); ok {
		t.Fatal("cold entry survived eviction pressure")
	}
}
