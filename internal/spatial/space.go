// Package spatial defines the pluggable spatial backend of the pricing
// system. The paper's model (Definition 1) partitions the region of interest
// into local markets ("grids") and prices each one per period; nothing in the
// pricing semantics requires the partition to come from a uniform grid or the
// travel metric to be Euclidean. Space is that separation: pricing code
// (core, market, sim, engine) talks to a Space, and backends supply the
// geometry — the uniform grid of the paper, a road network with node-snapped
// positions and shortest-path distances, or future indexes (geohash, H3,
// adaptive quadtrees) without touching pricing code again.
package spatial

import "spatialcrowd/internal/geo"

// Space is a partition of the plane into cells (local markets) together with
// a travel metric. Implementations must be safe for concurrent read use: the
// engine's shard goroutines call CellOf and Dist in parallel.
//
// geo.Grid satisfies Space directly, so existing grid-based call sites keep
// working with zero wrapping cost; GridSpace is the same backend under the
// name the -space flags and banners use.
type Space interface {
	// NumCells returns the number of cells; cell indices are 0..NumCells()-1.
	NumCells() int
	// CellOf returns the cell containing (or, for snapped backends, nearest
	// to) p. Every point maps to a valid cell.
	CellOf(p geo.Point) int
	// CellCenter returns a representative point of the cell, satisfying
	// CellOf(CellCenter(i)) == i. Repositioning walks toward it.
	CellCenter(cell int) geo.Point
	// Neighbors returns the cells adjacent to cell. Callers must not mutate
	// the result (backends may return an internal slice).
	Neighbors(cell int) []int
	// NeighborsAppend appends the cells adjacent to cell to out and returns
	// the extended slice; a reused buffer keeps hot paths allocation-free.
	NeighborsAppend(cell int, out []int) []int
	// CellsInRange returns a superset of the cells holding positions within
	// Euclidean distance r of center — the candidate cells a worker at
	// center with range constraint r can supply.
	CellsInRange(center geo.Point, r float64) []int
	// CellsInRangeAppend is CellsInRange appending into out; a reused buffer
	// keeps per-task candidate enumeration allocation-free on hot paths.
	CellsInRangeAppend(center geo.Point, r float64, out []int) []int
	// Dist returns the travel distance d(a, b) under the backend's metric:
	// Euclidean for grids, shortest-path for road networks.
	Dist(a, b geo.Point) float64
}

// GridSpace is the uniform-grid backend: the paper's Definition 1 geometry,
// wrapping geo.Grid unchanged. Pricing over a GridSpace is bit-for-bit
// identical to pricing over the raw grid.
type GridSpace struct {
	geo.Grid
}

// NewGridSpace wraps a grid as a named spatial backend.
func NewGridSpace(g geo.Grid) GridSpace { return GridSpace{Grid: g} }

// Name identifies the backend in flags and banners.
func (GridSpace) Name() string { return "grid" }

// BackendName reports the backend name of a Space for banners and error
// messages: the backend's own Name() when it has one, "grid" for a raw
// geo.Grid, and "custom" otherwise.
func BackendName(s Space) string {
	if n, ok := s.(interface{ Name() string }); ok {
		return n.Name()
	}
	if _, ok := s.(geo.Grid); ok {
		return "grid"
	}
	return "custom"
}
