package spatial

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"spatialcrowd/internal/geo"
	"spatialcrowd/internal/kdtree"
	"spatialcrowd/internal/roadnet"
)

// distCacheSize bounds the RoadSpace shortest-path cache. Markets revisit a
// small working set of node pairs (hot cells, repeated range checks), so a
// few thousand entries keep the hit rate high while the cache stays small.
const distCacheSize = 1 << 12

// distCacheStripes is the lock-striping factor of the shortest-path cache
// (power of two). Sixteen stripes keep cross-shard contention negligible at
// realistic shard counts while each stripe still holds a few hundred
// entries.
const distCacheStripes = 1 << 4

// RoadSpace is the road-network backend: positions snap to the nearest
// network node (k-d tree), travel distance is the shortest path over the
// network, and cells are clusters of nodes built by deterministic
// farthest-point sampling. Euclidean radii over-estimate reachability on real
// street geometry — a river or a missing ramp can make a "close" task
// unreachable — so d_r and the cell structure both follow the network.
//
// All query methods are safe for concurrent use; the shortest-path cache is
// the only mutable state, and it is striped (per-stripe locks) so concurrent
// shards contend only on colliding key stripes, not on one global mutex.
type RoadSpace struct {
	net  *roadnet.Network
	snap *kdtree.Tree // over node coordinates; payload = node id

	cellOfNode []int            // node id -> cell
	seeds      []roadnet.NodeID // cell -> seed node (its coordinate is the center)
	adj        [][]int          // cell -> sorted neighbor cells
	rangePool  sync.Pool        // *rangeScratch for CellsInRangeAppend

	// Striped LRU cache over node-pair network distances: lookup promotes,
	// insert evicts the stripe's least recently used entry when full.
	cache *distCache
}

// cacheEntry is one cached node-pair distance fact. Exact entries (lb ==
// false) carry the true network distance, including the +Inf unreachable
// sentinel for disconnected pairs — without it every repeat query over a
// fragmented map re-runs a full-component A* (the "A*-storm"). Lower-bound
// entries (lb == true) record "the true distance exceeds d", the most a
// bounded range search that was cut off at its radius can prove; they
// answer any future WithinDist whose radius the bound already covers, and
// are upgraded in place when a deeper search learns more.
type cacheEntry struct {
	key uint64
	d   float64
	lb  bool
}

// NewRoadSpace clusters the network's nodes into the given number of cells
// and returns the backend. Cells are seeded by farthest-point sampling from
// node 0 (deterministic: equal networks and cell counts give equal spaces)
// and every node joins its nearest seed; cell adjacency is derived from
// network edges that cross cluster boundaries.
func NewRoadSpace(net *roadnet.Network, cells int) (*RoadSpace, error) {
	n := net.NumNodes()
	if n == 0 {
		return nil, fmt.Errorf("spatial: road space needs a non-empty network")
	}
	if cells <= 0 {
		return nil, fmt.Errorf("spatial: road space needs a positive cell count, got %d", cells)
	}
	if cells > n {
		cells = n
	}

	coords := make([]geo.Point, n)
	for i := 0; i < n; i++ {
		coords[i] = net.Coord(roadnet.NodeID(i))
	}

	// Farthest-point sampling: start at node 0, then repeatedly take the
	// node farthest from every chosen seed (ties to the lowest id).
	seeds := make([]roadnet.NodeID, 0, cells)
	minD := make([]float64, n)
	for i := range minD {
		minD[i] = math.Inf(1)
	}
	cur := roadnet.NodeID(0)
	for len(seeds) < cells {
		seeds = append(seeds, cur)
		far, farD := roadnet.NodeID(0), -1.0
		for i := 0; i < n; i++ {
			if d := coords[i].SqDist(coords[cur]); d < minD[i] {
				minD[i] = d
			}
			if minD[i] > farD {
				far, farD = roadnet.NodeID(i), minD[i]
			}
		}
		cur = far
	}

	cellOfNode := make([]int, n)
	for i := 0; i < n; i++ {
		best, bestD := 0, math.Inf(1)
		for c, s := range seeds {
			if d := coords[i].SqDist(coords[s]); d < bestD {
				best, bestD = c, d
			}
		}
		cellOfNode[i] = best
	}

	adj := make([][]int, len(seeds))
	seen := make(map[uint64]bool)
	for a := 0; a < n; a++ {
		ca := cellOfNode[a]
		net.VisitEdges(roadnet.NodeID(a), func(to roadnet.NodeID, _ float64) {
			cb := cellOfNode[to]
			if ca == cb {
				return
			}
			key := uint64(ca)<<32 | uint64(cb)
			if !seen[key] {
				seen[key] = true
				adj[ca] = append(adj[ca], cb)
			}
		})
	}
	for _, nb := range adj {
		sort.Ints(nb)
	}

	return &RoadSpace{
		net:        net,
		snap:       kdtree.Build(coords, nil),
		cellOfNode: cellOfNode,
		seeds:      seeds,
		adj:        adj,
		cache:      newDistCache(distCacheSize, distCacheStripes),
	}, nil
}

// Name identifies the backend in flags and banners.
func (*RoadSpace) Name() string { return "road" }

// Network returns the underlying road graph.
func (rs *RoadSpace) Network() *roadnet.Network { return rs.net }

// NumCells implements Space.
func (rs *RoadSpace) NumCells() int { return len(rs.seeds) }

// SnapNode returns the network node nearest to p.
func (rs *RoadSpace) SnapNode(p geo.Point) roadnet.NodeID {
	id, _ := rs.snap.Nearest(p)
	return roadnet.NodeID(id)
}

// Snap returns the coordinate of the network node nearest to p — the
// position generators use to emit on-network populations.
func (rs *RoadSpace) Snap(p geo.Point) geo.Point {
	return rs.net.Coord(rs.SnapNode(p))
}

// CellOf implements Space: the cluster of the nearest node.
func (rs *RoadSpace) CellOf(p geo.Point) int {
	return rs.cellOfNode[rs.SnapNode(p)]
}

// CellCenter implements Space with the seed node's coordinate; the seed is
// its own nearest node, so CellOf(CellCenter(i)) == i.
func (rs *RoadSpace) CellCenter(cell int) geo.Point {
	return rs.net.Coord(rs.seeds[cell])
}

// Neighbors implements Space with the precomputed cluster adjacency. The
// returned slice is internal; callers must not mutate it.
func (rs *RoadSpace) Neighbors(cell int) []int { return rs.adj[cell] }

// NeighborsAppend implements Space.
func (rs *RoadSpace) NeighborsAppend(cell int, out []int) []int {
	return append(out, rs.adj[cell]...)
}

// CellsInRange implements Space: the cells of every node within Euclidean
// distance r of center. For node-snapped populations (everything the road
// workload generators emit) this is exactly the set of cells that can hold a
// position within r; off-network positions may snap outside it, so mixed
// populations should use the k-d tree index (market.BuildBipartiteKD)
// instead of the cell index.
func (rs *RoadSpace) CellsInRange(center geo.Point, r float64) []int {
	return rs.CellsInRangeAppend(center, r, nil)
}

// rangeScratch is the pooled working state of CellsInRangeAppend: the node
// hit list and a cell de-duplication mark array, recycled across queries so
// concurrent range enumeration allocates nothing in steady state.
type rangeScratch struct {
	nodes []int
	mark  []bool
}

// CellsInRangeAppend implements Space, appending into out in the same
// first-seen node order as CellsInRange.
func (rs *RoadSpace) CellsInRangeAppend(center geo.Point, r float64, out []int) []int {
	sc, _ := rs.rangePool.Get().(*rangeScratch)
	if sc == nil {
		sc = &rangeScratch{}
	}
	sc.nodes = rs.snap.InRadiusAppend(center, r, sc.nodes[:0])
	if len(sc.nodes) == 0 {
		rs.rangePool.Put(sc)
		return out
	}
	if len(sc.mark) < len(rs.seeds) {
		sc.mark = make([]bool, len(rs.seeds))
	}
	from := len(out)
	for _, nd := range sc.nodes {
		if c := rs.cellOfNode[nd]; !sc.mark[c] {
			sc.mark[c] = true
			out = append(out, c)
		}
	}
	// Clear only the marks this query set; the array is pool-shared.
	for _, c := range out[from:] {
		sc.mark[c] = false
	}
	rs.rangePool.Put(sc)
	return out
}

// Dist implements Space: walk to the nearest node, ride the network's
// shortest path, walk from the nearest node. Node-to-node distances go
// through an LRU cache so repeated queries over the market's working set
// (range checks, batch pricing over hot cells) skip the search entirely;
// misses run A* with straight-line pruning. Disconnected pairs fall back to
// the Euclidean distance, mirroring roadnet.Distance: a fragmented map
// should degrade pricing inputs, not break them.
func (rs *RoadSpace) Dist(a, b geo.Point) float64 {
	na, nb := rs.SnapNode(a), rs.SnapNode(b)
	walk := a.Dist(rs.net.Coord(na)) + b.Dist(rs.net.Coord(nb))
	if na == nb {
		return walk
	}
	d := rs.nodeDist(na, nb)
	if math.IsInf(d, 1) {
		return a.Dist(b)
	}
	return walk + d
}

// WithinDist reports whether the road distance from a to b is at most r. On
// a cache hit it is a map lookup; on a miss it runs a Dijkstra bounded at
// the remaining radius, which abandons the search as soon as the frontier
// passes r, staying off the full O(V log V) path. Negative results are
// cached too: a disconnected pair becomes an exact unreachable sentinel, a
// bound cutoff becomes a "distance exceeds r - walk" lower bound that
// answers every repeat query with the same (or smaller) radius without
// searching again.
//
// Note the market's worker range constraint itself stays the Euclidean disk
// of Definition 4 — the paper's "Euclidean or road-network" choice applies
// to the travel distance d_r, which Dist serves. WithinDist is for dispatch
// tooling that wants road-aware feasibility on top (e.g. filtering
// candidates a river separates from a task despite Euclidean closeness).
func (rs *RoadSpace) WithinDist(a, b geo.Point, r float64) bool {
	na, nb := rs.SnapNode(a), rs.SnapNode(b)
	walk := a.Dist(rs.net.Coord(na)) + b.Dist(rs.net.Coord(nb))
	if walk > r {
		return false
	}
	if na == nb {
		return true
	}
	key := uint64(na)<<32 | uint64(uint32(nb))
	if ent, ok := rs.cache.lookup(key); ok {
		if !ent.lb {
			return walk+ent.d <= r
		}
		if walk+ent.d >= r { // true distance > ent.d >= r - walk: out of range
			return false
		}
		// The cached bound is weaker than this query's radius: the search
		// still runs, so this lookup avoided nothing — count it as a miss.
		rs.cache.demoteHit(key)
	}
	d, disconnected := rs.net.BoundedShortestDistInfo(na, nb, r-walk)
	if disconnected {
		rs.cache.put(key, math.Inf(1), false)
		return false
	}
	if math.IsInf(d, 1) {
		rs.cache.put(key, r-walk, true)
		return false
	}
	rs.cache.put(key, d, false)
	return true
}

// nodeDist returns the cached-or-computed network distance between nodes.
// A lower-bound entry cannot answer an exact-distance query, so it falls
// through to A* and is upgraded with the exact result (the unreachable
// sentinel included).
func (rs *RoadSpace) nodeDist(na, nb roadnet.NodeID) float64 {
	key := uint64(na)<<32 | uint64(uint32(nb))
	if ent, ok := rs.cache.lookup(key); ok {
		if !ent.lb {
			return ent.d
		}
		// A bound cannot answer an exact query; A* still runs.
		rs.cache.demoteHit(key)
	}
	d, _ := rs.net.AStar(na, nb)
	rs.cache.put(key, d, false)
	return d
}

// CacheStats reports shortest-path cache hits and misses since construction,
// summed over all cache stripes.
func (rs *RoadSpace) CacheStats() (hits, misses int64) {
	return rs.cache.stats()
}
