package spatial

import "sync"

// distCache is a striped LRU over node-pair distance facts: the key space is
// hashed across a power-of-two number of independent stripes, each with its
// own lock, LRU order, capacity share, and hit/miss counters. Shard
// goroutines querying a shared RoadSpace therefore contend only when two
// queries land on the same stripe, instead of serializing on one global
// mutex the way the previous single-LRU cache did. Aggregate statistics are
// the sum of the per-stripe counters.
//
// Each stripe is an array-backed intrusive LRU: entries live in a
// fixed-capacity arena with index links, so steady-state insertion and
// promotion allocate nothing.
type distCache struct {
	stripes []cacheStripe
	shift   uint // stripe index = hash(key) >> shift
}

// cacheStripe is one lock's worth of the cache. The entry arena is sized
// once at construction (capacity / stripe count) and recycled thereafter.
type cacheStripe struct {
	mu   sync.Mutex
	m    map[uint64]int32
	ents []stripeEntry
	head int32 // most recently used, -1 when empty
	tail int32 // least recently used, -1 when empty
	cap  int
	hits int64
	miss int64

	// Pad stripes apart so neighboring locks do not share a cache line.
	_ [40]byte
}

type stripeEntry struct {
	key        uint64
	d          float64
	lb         bool
	prev, next int32 // LRU links, -1 terminated
}

// newDistCache builds a cache with the given total capacity spread over a
// power-of-two stripe count. Both arguments must be powers of two with
// capacity >= stripes.
func newDistCache(capacity, stripes int) *distCache {
	per := capacity / stripes
	c := &distCache{
		stripes: make([]cacheStripe, stripes),
		shift:   uint(64 - log2(stripes)),
	}
	for i := range c.stripes {
		st := &c.stripes[i]
		st.m = make(map[uint64]int32, per)
		st.ents = make([]stripeEntry, 0, per)
		st.head, st.tail = -1, -1
		st.cap = per
	}
	return c
}

func log2(n int) int {
	k := 0
	for n > 1 {
		n >>= 1
		k++
	}
	return k
}

// stripe maps a key to its stripe. Keys are (nodeA<<32 | nodeB) pairs whose
// low bits carry little entropy across hot pairs, so a Fibonacci mix spreads
// them before the top bits select the stripe.
func (c *distCache) stripe(key uint64) *cacheStripe {
	return &c.stripes[(key*0x9E3779B97F4A7C15)>>c.shift]
}

// unlink removes slot i from the stripe's LRU list (the slot stays in the
// arena and map).
func (st *cacheStripe) unlink(i int32) {
	e := &st.ents[i]
	if e.prev >= 0 {
		st.ents[e.prev].next = e.next
	} else {
		st.head = e.next
	}
	if e.next >= 0 {
		st.ents[e.next].prev = e.prev
	} else {
		st.tail = e.prev
	}
}

// pushFront makes slot i the most recently used.
func (st *cacheStripe) pushFront(i int32) {
	e := &st.ents[i]
	e.prev, e.next = -1, st.head
	if st.head >= 0 {
		st.ents[st.head].prev = i
	}
	st.head = i
	if st.tail < 0 {
		st.tail = i
	}
}

// lookup consults the cache, promoting the entry to most-recent on a hit.
func (c *distCache) lookup(key uint64) (cacheEntry, bool) {
	st := c.stripe(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	i, ok := st.m[key]
	if !ok {
		st.miss++
		return cacheEntry{}, false
	}
	st.hits++
	if st.head != i {
		st.unlink(i)
		st.pushFront(i)
	}
	e := &st.ents[i]
	return cacheEntry{key: e.key, d: e.d, lb: e.lb}, true
}

// put inserts or upgrades one entry, evicting the stripe's least recently
// used when the stripe is full. Exact facts are final; a lower bound is
// replaced by an exact distance or by a larger lower bound, never the other
// way around (the same monotone-upgrade rule as the old single-LRU cache,
// now enforced per stripe).
func (c *distCache) put(key uint64, d float64, lb bool) {
	st := c.stripe(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	if i, ok := st.m[key]; ok {
		e := &st.ents[i]
		if e.lb && (!lb || d > e.d) {
			e.d, e.lb = d, lb
			if st.head != i {
				st.unlink(i)
				st.pushFront(i)
			}
		}
		return
	}
	var i int32
	if len(st.ents) < st.cap {
		i = int32(len(st.ents))
		st.ents = append(st.ents, stripeEntry{})
	} else {
		// Recycle the least recently used slot.
		i = st.tail
		st.unlink(i)
		delete(st.m, st.ents[i].key)
	}
	st.ents[i] = stripeEntry{key: key, d: d, lb: lb, prev: -1, next: -1}
	st.m[key] = i
	st.pushFront(i)
}

// demoteHit reclassifies the most recent lookup hit on key's stripe as a
// miss: the entry existed but was too weak to answer, so a search ran
// anyway. Keeps the aggregate stats an honest measure of avoided searches.
func (c *distCache) demoteHit(key uint64) {
	st := c.stripe(key)
	st.mu.Lock()
	st.hits--
	st.miss++
	st.mu.Unlock()
}

// stats sums hits and misses over all stripes. The totals follow the same
// accounting as the old single-LRU cache: every lookup is one hit or one
// miss, with demoteHit reclassifying hits that avoided no work.
func (c *distCache) stats() (hits, misses int64) {
	for i := range c.stripes {
		st := &c.stripes[i]
		st.mu.Lock()
		hits += st.hits
		misses += st.miss
		st.mu.Unlock()
	}
	return hits, misses
}

// len reports the number of cached entries (for tests).
func (c *distCache) len() int {
	n := 0
	for i := range c.stripes {
		st := &c.stripes[i]
		st.mu.Lock()
		n += len(st.m)
		st.mu.Unlock()
	}
	return n
}
