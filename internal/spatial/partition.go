package spatial

// Partitioner maps cells to engine shards. The engine historically hard-wired
// "cell id mod shards", which balances a uniform grid (cell ids are
// row-major, so consecutive ids interleave across shards) but can skew
// backends with irregular cell counts or clustered ids. Backends choose a
// partitioner; the engine only asks ShardOf.
type Partitioner interface {
	// Shards returns the shard count the partitioner was built for.
	Shards() int
	// ShardOf returns the shard owning the cell, in [0, Shards()).
	ShardOf(cell int) int
}

// modPartition is the legacy interleaved assignment.
type modPartition int

// ModPartition returns the engine's historical partitioner: cell % shards.
// It is the default, and on grid backends preserves the exact shard
// assignment of every earlier release.
func ModPartition(shards int) Partitioner {
	if shards < 1 {
		shards = 1
	}
	return modPartition(shards)
}

func (m modPartition) Shards() int          { return int(m) }
func (m modPartition) ShardOf(cell int) int { return cell % int(m) }

// blockPartition assigns contiguous cell-id runs of near-equal length.
type blockPartition struct {
	shards int
	cells  int
}

// BalancedPartition returns a partitioner that splits the space's cells into
// contiguous runs of near-equal size (shard = cell*shards/numCells). For
// backends whose cell ids carry locality — road-network clusters, space
// filling curve indexes — contiguous runs keep adjacent markets on one
// shard, so the sharding approximation (a worker serves only its shard's
// cells) cuts fewer viable task-worker edges than interleaving would.
//
// The shard count is clamped to the cell count: asking for more shards than
// cells would leave some shards owning no cells at all (idle goroutines
// that skew per-shard statistics) while others got a skewed interleaving.
// Callers must therefore size the engine from the returned partitioner —
// Config.Shards = Partitioner.Shards() — not from the requested count;
// engine.New rejects a mismatch.
func BalancedPartition(space Space, shards int) Partitioner {
	if shards < 1 {
		shards = 1
	}
	cells := space.NumCells()
	if cells < 1 {
		cells = 1
	}
	if shards > cells {
		shards = cells
	}
	return blockPartition{shards: shards, cells: cells}
}

func (b blockPartition) Shards() int { return b.shards }

func (b blockPartition) ShardOf(cell int) int {
	if cell < 0 {
		return 0
	}
	if cell >= b.cells {
		return b.shards - 1
	}
	return cell * b.shards / b.cells
}
