package spatial

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"spatialcrowd/internal/geo"
	"spatialcrowd/internal/roadnet"
)

// TestStripedCacheConcurrent hammers one cache from many goroutines with a
// key space several times the total capacity, mixing lookups, inserts,
// upgrades, and demotions. Run under -race it pins the per-stripe locking;
// the invariants checked afterwards pin that eviction kept every stripe
// within its share and the counters add up.
func TestStripedCacheConcurrent(t *testing.T) {
	c := newDistCache(1<<8, 1<<3)
	const (
		workers = 8
		rounds  = 5000
		keys    = 1 << 11 // 8x total capacity
	)
	var wg sync.WaitGroup
	var lookups int64
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			n := int64(0)
			for i := 0; i < rounds; i++ {
				key := uint64(rng.Intn(keys))
				switch rng.Intn(4) {
				case 0:
					c.put(key, float64(key), false) // exact fact
				case 1:
					c.put(key, rng.Float64()*10, true) // lower bound
				case 2:
					if ent, ok := c.lookup(key); ok && ent.lb {
						c.demoteHit(key) // bound too weak: recount as miss
					}
					n++
				default:
					if ent, ok := c.lookup(key); ok && !ent.lb && ent.d != float64(key) {
						t.Errorf("key %d: exact entry carries %v, want %v", key, ent.d, float64(key))
					}
					n++
				}
			}
			mu.Lock()
			lookups += n
			mu.Unlock()
		}(int64(w + 1))
	}
	wg.Wait()
	if c.len() > 1<<8 {
		t.Fatalf("cache holds %d entries, cap %d", c.len(), 1<<8)
	}
	hits, misses := c.stats()
	if hits < 0 || misses < 0 {
		t.Fatalf("negative counters: hits=%d misses=%d", hits, misses)
	}
	// Every lookup is classified exactly once (demoteHit moves a hit to the
	// miss column without changing the total).
	if hits+misses != lookups {
		t.Fatalf("hits+misses = %d, want %d lookups", hits+misses, lookups)
	}
}

// TestStripedCacheNegativeEntrySemantics pins the monotone-upgrade rule on
// whichever stripe each key hashes to: a lower bound may grow or become
// exact, an exact fact (the unreachable sentinel included) is final.
func TestStripedCacheNegativeEntrySemantics(t *testing.T) {
	c := newDistCache(1<<6, 1<<2)
	// Spread keys so several stripes exercise the rule independently.
	for key := uint64(0); key < 64; key++ {
		c.put(key, 5, true) // lower bound: true distance exceeds 5
		if ent, _ := c.lookup(key); !ent.lb || ent.d != 5 {
			t.Fatalf("key %d: want lb=5, got %+v", key, ent)
		}
		c.put(key, 3, true) // weaker bound: must not downgrade
		if ent, _ := c.lookup(key); !ent.lb || ent.d != 5 {
			t.Fatalf("key %d: weaker bound overwrote 5: %+v", key, ent)
		}
		c.put(key, 9, true) // stronger bound: upgrade in place
		if ent, _ := c.lookup(key); !ent.lb || ent.d != 9 {
			t.Fatalf("key %d: stronger bound not applied: %+v", key, ent)
		}
		c.put(key, 12, false) // exact distance finalizes the entry
		if ent, _ := c.lookup(key); ent.lb || ent.d != 12 {
			t.Fatalf("key %d: exact fact not applied: %+v", key, ent)
		}
		c.put(key, 99, true) // nothing replaces an exact fact
		c.put(key, 7, false)
		if ent, _ := c.lookup(key); ent.lb || ent.d != 12 {
			t.Fatalf("key %d: exact fact overwritten: %+v", key, ent)
		}
	}
	// The unreachable sentinel is an exact fact too.
	inf := uint64(1 << 40)
	c.put(inf, math.Inf(1), false)
	c.put(inf, 100, true)
	if ent, _ := c.lookup(inf); ent.lb || !math.IsInf(ent.d, 1) {
		t.Fatalf("unreachable sentinel overwritten: %+v", ent)
	}
}

// refLRU is the old single-mutex LRU accounting, reduced to its counter
// semantics: one hit or one miss per lookup, demote moves one hit to the
// miss column.
type refLRU struct {
	seen       map[uint64]bool
	hits, miss int64
}

func (r *refLRU) lookup(key uint64) bool {
	if r.seen[key] {
		r.hits++
		return true
	}
	r.miss++
	return false
}

// TestStripedCacheStatsMatchSingleLRU replays one deterministic query
// sequence against the striped cache and the single-LRU reference counter
// model. Below capacity no eviction can occur in either layout, so the
// aggregate hit/miss totals must match the old accounting exactly.
func TestStripedCacheStatsMatchSingleLRU(t *testing.T) {
	c := newDistCache(1<<10, 1<<4)
	ref := &refLRU{seen: make(map[uint64]bool)}
	rng := rand.New(rand.NewSource(7))
	const keys = 1 << 8 // well below every stripe's share under any skew
	for i := 0; i < 20000; i++ {
		key := uint64(rng.Intn(keys))
		_, ok := c.lookup(key)
		refOK := ref.lookup(key)
		if ok != refOK {
			t.Fatalf("step %d key %d: striped hit=%v, reference hit=%v", i, key, ok, refOK)
		}
		if !ok {
			c.put(key, float64(key), false)
			ref.seen[key] = true
		}
	}
	hits, misses := c.stats()
	if hits != ref.hits || misses != ref.miss {
		t.Fatalf("striped stats (%d,%d) diverge from single-LRU accounting (%d,%d)",
			hits, misses, ref.hits, ref.miss)
	}
}

// TestRoadSpaceCacheStatsAggregate drives real road queries and checks the
// aggregated stripe counters behave like the old single-cache stats: misses
// only on first-seen pairs, hits on every repeat.
func TestRoadSpaceCacheStatsAggregate(t *testing.T) {
	nw := roadnet.New()
	const n = 64
	for i := 0; i < n; i++ {
		nw.AddNode(geo.Point{X: float64(i), Y: float64(i%5) * 0.1})
		if i > 0 {
			nw.AddRoad(roadnet.NodeID(i-1), roadnet.NodeID(i))
		}
	}
	rs, err := NewRoadSpace(nw, 8)
	if err != nil {
		t.Fatal(err)
	}
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = nw.Coord(roadnet.NodeID(i))
	}
	queries := 0
	for i := 0; i < n; i += 3 {
		for j := 1; j < n; j += 7 {
			if rs.SnapNode(pts[i]) == rs.SnapNode(pts[j]) {
				continue // same-node queries bypass the cache
			}
			rs.Dist(pts[i], pts[j])
			queries++
		}
	}
	hits, misses := rs.CacheStats()
	if misses != int64(queries) {
		t.Fatalf("first pass: %d misses for %d distinct pair queries", misses, queries)
	}
	if hits != 0 {
		t.Fatalf("first pass: %d hits, want 0", hits)
	}
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < n; i += 3 {
			for j := 1; j < n; j += 7 {
				if rs.SnapNode(pts[i]) == rs.SnapNode(pts[j]) {
					continue
				}
				rs.Dist(pts[i], pts[j])
			}
		}
	}
	hits, missesAfter := rs.CacheStats()
	if missesAfter != misses {
		t.Fatalf("repeats grew misses %d -> %d", misses, missesAfter)
	}
	if hits != int64(3*queries) {
		t.Fatalf("repeats: %d hits, want %d", hits, 3*queries)
	}
}

// BenchmarkRoadSpaceDistContended measures cache-hit Dist queries issued
// from every CPU at once — the engine's sharded access pattern. Against the
// old single-mutex LRU this serialized completely; with the striped cache,
// goroutines contend only on colliding stripes. Compare with the
// single-goroutine BenchmarkRoadSpaceDistCached for the contention overhead.
func BenchmarkRoadSpaceDistContended(b *testing.B) {
	nw := roadnet.New()
	rng := rand.New(rand.NewSource(2))
	const nodes = 2000
	for i := 0; i < nodes; i++ {
		nw.AddNode(geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000})
	}
	for i := 1; i < nodes; i++ {
		nw.AddRoad(roadnet.NodeID(i-1), roadnet.NodeID(i))
		if j := rng.Intn(i); j != i-1 {
			nw.AddRoad(roadnet.NodeID(j), roadnet.NodeID(i))
		}
	}
	rs, err := NewRoadSpace(nw, 80)
	if err != nil {
		b.Fatal(err)
	}
	const pairs = 512
	from := make([]geo.Point, pairs)
	to := make([]geo.Point, pairs)
	for i := range from {
		from[i] = nw.Coord(roadnet.NodeID(rng.Intn(nodes)))
		to[i] = nw.Coord(roadnet.NodeID(rng.Intn(nodes)))
		rs.Dist(from[i], to[i]) // warm the cache
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			rs.Dist(from[i%pairs], to[i%pairs])
			i++
		}
	})
	b.StopTimer()
	hits, misses := rs.CacheStats()
	b.ReportMetric(float64(hits)/float64(hits+misses), "hit-rate")
}

// BenchmarkStripedCacheLookupParallel isolates the lock-striping win: the
// same parallel hit workload against a single-stripe cache (the old global
// mutex, modulo the array-backed arena) and the production stripe count.
func BenchmarkStripedCacheLookupParallel(b *testing.B) {
	for _, stripes := range []int{1, distCacheStripes} {
		b.Run(map[bool]string{true: "stripes=1", false: "striped"}[stripes == 1], func(b *testing.B) {
			c := newDistCache(distCacheSize, stripes)
			const keys = 1 << 10
			for k := uint64(0); k < keys; k++ {
				c.put(k, float64(k), false)
			}
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				k := uint64(0)
				for pb.Next() {
					c.lookup(k % keys)
					k++
				}
			})
		})
	}
}

// TestRoadSpaceDistConcurrent exercises the striped cache through the public
// API from many goroutines (run under -race): identical queries must return
// identical distances regardless of interleaving.
func TestRoadSpaceDistConcurrent(t *testing.T) {
	nw := roadnet.New()
	rng := rand.New(rand.NewSource(3))
	const nodes = 200
	for i := 0; i < nodes; i++ {
		nw.AddNode(geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100})
	}
	for i := 1; i < nodes; i++ {
		nw.AddRoad(roadnet.NodeID(i-1), roadnet.NodeID(i))
		if j := rng.Intn(i); j != i-1 {
			nw.AddRoad(roadnet.NodeID(j), roadnet.NodeID(i))
		}
	}
	rs, err := NewRoadSpace(nw, 16)
	if err != nil {
		t.Fatal(err)
	}
	const pairs = 128
	from := make([]geo.Point, pairs)
	to := make([]geo.Point, pairs)
	want := make([]float64, pairs)
	for i := range from {
		from[i] = nw.Coord(roadnet.NodeID(rng.Intn(nodes)))
		to[i] = nw.Coord(roadnet.NodeID(rng.Intn(nodes)))
		want[i] = rs.Dist(from[i], to[i])
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 2000; i++ {
				k := r.Intn(pairs)
				if got := rs.Dist(from[k], to[k]); got != want[k] {
					t.Errorf("pair %d: concurrent Dist = %v, want %v", k, got, want[k])
					return
				}
			}
		}(int64(w + 100))
	}
	wg.Wait()
}
