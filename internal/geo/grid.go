package geo

import "fmt"

// Grid partitions a rectangular region of interest into Cols x Rows equal
// cells, indexed 0..NumCells()-1 from the bottom-left, row-major (cell 0 is
// the bottom-left cell, cell Cols-1 the bottom-right, as in Figure 1c of the
// paper where "grid 1" is bottom-left; our indices are zero-based).
type Grid struct {
	Region Rect
	Cols   int
	Rows   int
}

// NewGrid builds a grid over region with cols x rows cells. It panics on
// non-positive dimensions or an empty region: a grid is part of experiment
// configuration, so a bad value is a programming error rather than runtime
// input.
func NewGrid(region Rect, cols, rows int) Grid {
	if cols <= 0 || rows <= 0 {
		panic(fmt.Sprintf("geo: grid dimensions must be positive, got %dx%d", cols, rows))
	}
	if region.Width() <= 0 || region.Height() <= 0 {
		panic(fmt.Sprintf("geo: grid region must be non-empty, got %v", region))
	}
	return Grid{Region: region, Cols: cols, Rows: rows}
}

// SquareGrid builds an n x n grid over the square [0,side]^2.
func SquareGrid(side float64, n int) Grid {
	return NewGrid(Square(side), n, n)
}

// NumCells returns the number of grid cells G.
func (g Grid) NumCells() int { return g.Cols * g.Rows }

// CellWidth returns the horizontal size of one cell.
func (g Grid) CellWidth() float64 { return g.Region.Width() / float64(g.Cols) }

// CellHeight returns the vertical size of one cell.
func (g Grid) CellHeight() float64 { return g.Region.Height() / float64(g.Rows) }

// CellOf returns the index of the cell containing p. Points outside the
// region are clamped to the nearest boundary cell, so every point maps to a
// valid index; this mirrors the platform practice of attributing slightly
// out-of-region requests to the nearest market.
func (g Grid) CellOf(p Point) int {
	cx := int((p.X - g.Region.Min.X) / g.CellWidth())
	cy := int((p.Y - g.Region.Min.Y) / g.CellHeight())
	if cx < 0 {
		cx = 0
	} else if cx >= g.Cols {
		cx = g.Cols - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy >= g.Rows {
		cy = g.Rows - 1
	}
	return cy*g.Cols + cx
}

// CellRect returns the rectangle of cell i. It panics if i is out of range.
func (g Grid) CellRect(i int) Rect {
	if i < 0 || i >= g.NumCells() {
		panic(fmt.Sprintf("geo: cell index %d out of range [0,%d)", i, g.NumCells()))
	}
	cx := i % g.Cols
	cy := i / g.Cols
	w, h := g.CellWidth(), g.CellHeight()
	min := Point{g.Region.Min.X + float64(cx)*w, g.Region.Min.Y + float64(cy)*h}
	return Rect{Min: min, Max: Point{min.X + w, min.Y + h}}
}

// CellCenter returns the center point of cell i.
func (g Grid) CellCenter(i int) Point { return g.CellRect(i).Center() }

// Neighbors returns the indices of the up-to-8 cells adjacent to cell i
// (including diagonals). Useful for spatial price smoothing.
func (g Grid) Neighbors(i int) []int {
	return g.NeighborsAppend(i, make([]int, 0, 8))
}

// NeighborsAppend appends the indices of the up-to-8 cells adjacent to cell i
// to out and returns the extended slice, in the same order as Neighbors.
// Passing a reused buffer keeps repeated queries allocation-free, which
// matters on per-worker hot paths like repositioning and price smoothing
// (mirrors kdtree.InRadiusAppend).
func (g Grid) NeighborsAppend(i int, out []int) []int {
	cx := i % g.Cols
	cy := i / g.Cols
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			if dx == 0 && dy == 0 {
				continue
			}
			nx, ny := cx+dx, cy+dy
			if nx < 0 || nx >= g.Cols || ny < 0 || ny >= g.Rows {
				continue
			}
			out = append(out, ny*g.Cols+nx)
		}
	}
	return out
}

// Dist returns the travel distance between two points under the grid's
// metric: the Euclidean distance of the plane the grid partitions. It makes
// Grid satisfy the spatial.Space interface directly, so grid-backed code
// paths pay no wrapper indirection.
func (g Grid) Dist(a, b Point) float64 { return a.Dist(b) }

// CellsInRange returns the indices of all cells whose rectangle intersects
// the closed disk of radius r around center. MAPS uses this to enumerate the
// grids a worker can supply without scanning every task.
func (g Grid) CellsInRange(center Point, r float64) []int {
	return g.CellsInRangeAppend(center, r, nil)
}

// CellsInRangeAppend is CellsInRange appending into out, in the same order.
// Passing a reused buffer keeps per-task candidate enumeration
// allocation-free (mirrors NeighborsAppend).
func (g Grid) CellsInRangeAppend(center Point, r float64, out []int) []int {
	// Bound the scan to the cells overlapping the disk's bounding box.
	w, h := g.CellWidth(), g.CellHeight()
	minCX := int((center.X - r - g.Region.Min.X) / w)
	maxCX := int((center.X + r - g.Region.Min.X) / w)
	minCY := int((center.Y - r - g.Region.Min.Y) / h)
	maxCY := int((center.Y + r - g.Region.Min.Y) / h)
	if minCX < 0 {
		minCX = 0
	}
	if minCY < 0 {
		minCY = 0
	}
	if maxCX >= g.Cols {
		maxCX = g.Cols - 1
	}
	if maxCY >= g.Rows {
		maxCY = g.Rows - 1
	}
	for cy := minCY; cy <= maxCY; cy++ {
		for cx := minCX; cx <= maxCX; cx++ {
			i := cy*g.Cols + cx
			if rectIntersectsDisk(g.CellRect(i), center, r) {
				out = append(out, i)
			}
		}
	}
	return out
}

// rectIntersectsDisk reports whether rect and the closed disk (center, r)
// share at least one point.
func rectIntersectsDisk(rect Rect, center Point, r float64) bool {
	nearest := rect.Clamp(center)
	return nearest.SqDist(center) <= r*r
}
