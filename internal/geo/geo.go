// Package geo provides the planar geometry primitives used throughout the
// spatial-crowdsourcing pricing system: points, rectangles, distance metrics,
// and the uniform grid partition of Definition 1 in the paper.
//
// All coordinates are float64 in an application-defined unit (the synthetic
// experiments use a 100x100 square; the Beijing-like workload uses degrees
// with an equirectangular kilometre conversion).
package geo

import (
	"fmt"
	"math"
)

// Point is a location in the plane.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// SqDist returns the squared Euclidean distance between p and q. It avoids
// the square root for pure comparisons such as range-constraint checks.
func (p Point) SqDist(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return dx*dx + dy*dy
}

// Add returns the translation of p by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Scale returns p scaled componentwise by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.4g,%.4g)", p.X, p.Y) }

// InRange reports whether p lies within the closed disk of radius r around
// center. This is the worker range constraint of Definition 4: a worker at
// center with radius r can serve a task whose origin is p.
func (p Point) InRange(center Point, r float64) bool {
	return p.SqDist(center) <= r*r
}

// Rect is an axis-aligned rectangle [MinX,MaxX] x [MinY,MaxY].
type Rect struct {
	Min, Max Point
}

// NewRect returns the rectangle spanned by two corner points in any order.
func NewRect(a, b Point) Rect {
	return Rect{
		Min: Point{math.Min(a.X, b.X), math.Min(a.Y, b.Y)},
		Max: Point{math.Max(a.X, b.X), math.Max(a.Y, b.Y)},
	}
}

// Square returns the square [0,side] x [0,side].
func Square(side float64) Rect {
	return Rect{Min: Point{0, 0}, Max: Point{side, side}}
}

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Area returns the area of r.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Contains reports whether p lies inside r (closed on all sides).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Clamp returns the nearest point to p inside r.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Max(r.Min.X, math.Min(r.Max.X, p.X)),
		Y: math.Max(r.Min.Y, math.Min(r.Max.Y, p.Y)),
	}
}

// Center returns the center of r.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// String implements fmt.Stringer.
func (r Rect) String() string { return fmt.Sprintf("[%v %v]", r.Min, r.Max) }
