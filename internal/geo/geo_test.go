package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointDist(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want float64
	}{
		{"same point", Point{1, 1}, Point{1, 1}, 0},
		{"unit x", Point{0, 0}, Point{1, 0}, 1},
		{"unit y", Point{0, 0}, Point{0, 1}, 1},
		{"3-4-5", Point{0, 0}, Point{3, 4}, 5},
		{"negative coords", Point{-1, -1}, Point{2, 3}, 5},
		{"paper example w1-r1", Point{3, 5}, Point{5, 5}, 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.Dist(tt.q); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("Dist(%v,%v) = %v, want %v", tt.p, tt.q, got, tt.want)
			}
		})
	}
}

func TestSqDistConsistent(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		if math.IsNaN(ax) || math.IsNaN(ay) || math.IsNaN(bx) || math.IsNaN(by) {
			return true
		}
		// Keep magnitudes sane to avoid overflow in the square.
		clamp := func(v float64) float64 { return math.Mod(v, 1e6) }
		p := Point{clamp(ax), clamp(ay)}
		q := Point{clamp(bx), clamp(by)}
		d := p.Dist(q)
		return math.Abs(d*d-p.SqDist(q)) <= 1e-6*(1+d*d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInRange(t *testing.T) {
	// Paper's running example: all workers have radius 2.5. Task labels
	// follow the assignment Example 5's arithmetic fixes: r1 and r2 are the
	// grid-9 points reachable only by w1; r3 at (5,5) reaches all three.
	w1 := Point{3, 5}
	w2 := Point{7, 5}
	w3 := Point{5, 3}
	r1 := Point{1, 5}
	r2 := Point{2, 6}
	r3 := Point{5, 5}
	const a = 2.5
	tests := []struct {
		name   string
		task   Point
		worker Point
		want   bool
	}{
		{"w1 reaches r1", r1, w1, true},
		{"w1 reaches r2", r2, w1, true},
		{"w1 reaches r3", r3, w1, true},
		{"w2 misses r1", r1, w2, false},
		{"w2 misses r2", r2, w2, false},
		{"w2 reaches r3", r3, w2, true},
		{"w3 misses r1", r1, w3, false},
		{"w3 misses r2", r2, w3, false},
		{"w3 reaches r3", r3, w3, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.task.InRange(tt.worker, a); got != tt.want {
				t.Errorf("InRange(%v,%v,%v) = %v, want %v", tt.task, tt.worker, a, got, tt.want)
			}
		})
	}
}

func TestInRangeBoundary(t *testing.T) {
	// The range constraint is a closed disk: exactly-at-radius counts.
	if !(Point{2.5, 0}).InRange(Point{0, 0}, 2.5) {
		t.Error("point exactly at radius should be in range")
	}
	if (Point{2.5 + 1e-9, 0}).InRange(Point{0, 0}, 2.5) {
		t.Error("point just beyond radius should be out of range")
	}
}

func TestRect(t *testing.T) {
	r := NewRect(Point{4, 5}, Point{1, 2})
	if r.Min != (Point{1, 2}) || r.Max != (Point{4, 5}) {
		t.Fatalf("NewRect did not normalize corners: %v", r)
	}
	if r.Width() != 3 || r.Height() != 3 || r.Area() != 9 {
		t.Errorf("Width/Height/Area = %v/%v/%v", r.Width(), r.Height(), r.Area())
	}
	if !r.Contains(Point{1, 2}) || !r.Contains(Point{4, 5}) || !r.Contains(Point{2, 3}) {
		t.Error("Contains should include boundary and interior")
	}
	if r.Contains(Point{0.999, 3}) || r.Contains(Point{2, 5.001}) {
		t.Error("Contains should exclude exterior points")
	}
	if got := r.Clamp(Point{-10, 10}); got != (Point{1, 5}) {
		t.Errorf("Clamp = %v, want (1,5)", got)
	}
	if got := r.Center(); got != (Point{2.5, 3.5}) {
		t.Errorf("Center = %v", got)
	}
}

func TestGridCellOfPaperExample(t *testing.T) {
	// Figure 1c: 8x8 region, 2-unit cells => 4x4 = 16 grids. The paper indexes
	// 1-based from the bottom-left; we are zero-based, so paper "grid 7" is
	// our cell 6, "grid 9" our 8, "grid 11" our 10.
	g := NewGrid(Square(8), 4, 4)
	if g.NumCells() != 16 {
		t.Fatalf("NumCells = %d, want 16", g.NumCells())
	}
	tests := []struct {
		name string
		p    Point
		want int
	}{
		{"w3 at (5,3) in paper grid 7", Point{5, 3}, 6},
		{"r3 at (5,5) in paper grid 11", Point{5, 5}, 10},
		{"r1 at (1,5) in paper grid 9", Point{1, 5}, 8},
		// (2,6) sits on the cell boundary; our half-open convention places
		// it in the upper cell (paper grid 14), while the paper's Example 2
		// narrative treats it as grid 9 — boundary ties are convention.
		{"boundary point (2,6)", Point{2, 6}, 13},
		{"w1 at (3,5) in paper grid 10", Point{3, 5}, 9},
		{"w2 at (7,5) in paper grid 12", Point{7, 5}, 11},
		{"origin", Point{0, 0}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := g.CellOf(tt.p); got != tt.want {
				t.Errorf("CellOf(%v) = %d, want %d", tt.p, got, tt.want)
			}
		})
	}
}

func TestGridCellOfClamping(t *testing.T) {
	g := SquareGrid(100, 10)
	tests := []struct {
		p    Point
		want int
	}{
		{Point{-5, -5}, 0},
		{Point{105, -5}, 9},
		{Point{-5, 105}, 90},
		{Point{105, 105}, 99},
		{Point{100, 100}, 99}, // exact max corner
	}
	for _, tt := range tests {
		if got := g.CellOf(tt.p); got != tt.want {
			t.Errorf("CellOf(%v) = %d, want %d", tt.p, got, tt.want)
		}
	}
}

func TestGridRoundTrip(t *testing.T) {
	g := SquareGrid(100, 7)
	for i := 0; i < g.NumCells(); i++ {
		c := g.CellCenter(i)
		if got := g.CellOf(c); got != i {
			t.Errorf("CellOf(CellCenter(%d)) = %d", i, got)
		}
		r := g.CellRect(i)
		if !r.Contains(c) {
			t.Errorf("cell %d rect %v does not contain its center %v", i, r, c)
		}
	}
}

func TestGridRoundTripProperty(t *testing.T) {
	g := NewGrid(NewRect(Point{-50, -20}, Point{70, 80}), 13, 9)
	f := func(x, y float64) bool {
		p := Point{math.Mod(math.Abs(x), 120) - 50, math.Mod(math.Abs(y), 100) - 20}
		i := g.CellOf(p)
		if i < 0 || i >= g.NumCells() {
			return false
		}
		// Containment is approximate on cell boundaries (ties go to the
		// higher cell); check the point is within one cell of the rect.
		r := g.CellRect(i)
		const eps = 1e-9
		return p.X >= r.Min.X-eps && p.X <= r.Max.X+g.CellWidth()*eps+eps &&
			p.Y >= r.Min.Y-eps && p.Y <= r.Max.Y+eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestNeighbors(t *testing.T) {
	g := SquareGrid(100, 4)
	tests := []struct {
		cell int
		want int
	}{
		{0, 3},  // corner
		{1, 5},  // edge
		{5, 8},  // interior
		{15, 3}, // opposite corner
	}
	for _, tt := range tests {
		if got := len(g.Neighbors(tt.cell)); got != tt.want {
			t.Errorf("len(Neighbors(%d)) = %d, want %d", tt.cell, got, tt.want)
		}
	}
	for _, n := range g.Neighbors(5) {
		if n == 5 {
			t.Error("cell should not be its own neighbor")
		}
	}
}

func TestCellsInRange(t *testing.T) {
	g := SquareGrid(8, 4) // 2-unit cells, as the paper example
	// Worker w1 at (3,5) radius 2.5 must cover the cells containing r1 (5,5),
	// r2 (1,5), r3 (2,6): our cells 10, 8, 13.
	cells := g.CellsInRange(Point{3, 5}, 2.5)
	has := map[int]bool{}
	for _, c := range cells {
		has[c] = true
	}
	for _, want := range []int{8, 10, 13} {
		if !has[want] {
			t.Errorf("CellsInRange missing cell %d; got %v", want, cells)
		}
	}
	// A tiny disk deep inside one cell covers exactly that cell.
	cells = g.CellsInRange(Point{1, 1}, 0.5)
	if len(cells) != 1 || cells[0] != 0 {
		t.Errorf("tiny disk: got %v, want [0]", cells)
	}
}

func TestCellsInRangeCoversEveryReachablePoint(t *testing.T) {
	g := SquareGrid(100, 10)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		center := Point{rng.Float64() * 100, rng.Float64() * 100}
		radius := rng.Float64() * 30
		covered := map[int]bool{}
		for _, c := range g.CellsInRange(center, radius) {
			covered[c] = true
		}
		// Sample points in the disk; their cells must be in the cover set.
		for s := 0; s < 20; s++ {
			ang := rng.Float64() * 2 * math.Pi
			rad := rng.Float64() * radius
			p := Point{center.X + rad*math.Cos(ang), center.Y + rad*math.Sin(ang)}
			if !g.Region.Contains(p) {
				continue
			}
			if !covered[g.CellOf(p)] {
				t.Fatalf("point %v in disk(%v,%v) maps to uncovered cell %d",
					p, center, radius, g.CellOf(p))
			}
		}
	}
}

func TestNewGridPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewGrid with zero cols should panic")
		}
	}()
	NewGrid(Square(10), 0, 5)
}

func TestCellRectPanics(t *testing.T) {
	g := SquareGrid(10, 2)
	defer func() {
		if recover() == nil {
			t.Error("CellRect out of range should panic")
		}
	}()
	g.CellRect(4)
}

func TestNeighborsAppendMatchesNeighbors(t *testing.T) {
	g := SquareGrid(9, 3)
	buf := make([]int, 0, 8)
	for i := 0; i < g.NumCells(); i++ {
		want := g.Neighbors(i)
		buf = g.NeighborsAppend(i, buf[:0])
		if len(buf) != len(want) {
			t.Fatalf("cell %d: append variant returned %v, want %v", i, buf, want)
		}
		for j := range buf {
			if buf[j] != want[j] {
				t.Fatalf("cell %d: append variant returned %v, want %v", i, buf, want)
			}
		}
	}
	// Appends after existing content instead of clobbering it.
	pre := []int{42}
	out := g.NeighborsAppend(4, pre)
	if out[0] != 42 || len(out) != 1+len(g.Neighbors(4)) {
		t.Fatalf("NeighborsAppend clobbered the prefix: %v", out)
	}
}
