package window_test

import (
	"errors"
	"fmt"
	"testing"

	"spatialcrowd/internal/core"
	"spatialcrowd/internal/engine"
	"spatialcrowd/internal/geo"
	"spatialcrowd/internal/market"
	"spatialcrowd/internal/sim"
	"spatialcrowd/internal/window"
	"spatialcrowd/internal/workload"
)

type flatStrategy struct {
	price    float64
	observes int
}

func (f *flatStrategy) Name() string { return "flat" }
func (f *flatStrategy) Prices(ctx *core.PeriodContext) []float64 {
	out := make([]float64, len(ctx.Tasks))
	for i := range out {
		out[i] = f.price
	}
	return out
}
func (f *flatStrategy) Observe(*core.PeriodContext, []float64, []bool) { f.observes++ }

type badCount struct{}

func (badCount) Name() string                                   { return "bad" }
func (badCount) Prices(ctx *core.PeriodContext) []float64       { return nil }
func (badCount) Observe(*core.PeriodContext, []float64, []bool) {}

// TestExecutorSharedSimEngineProperty is the executor-sharing property
// test: for a sweep of random workloads, the offline simulator and the
// deterministic streaming engine — both now thin drivers over the same
// window.Executor — must produce bit-identical revenue and identical
// funnels. Before the unified core this equivalence was maintained by two
// hand-rolled pipelines; now it is structural, and this test guards the
// wiring on both sides.
func TestExecutorSharedSimEngineProperty(t *testing.T) {
	for _, seed := range []int64{1, 7, 23, 91} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			in, _, err := workload.Synthetic(workload.SyntheticConfig{
				Workers: 150 + int(seed)*13, Requests: 600 + int(seed)*29,
				Periods: 30, GridSide: 4, Seed: seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			mk := func() core.Strategy {
				m, err := core.NewMAPS(core.DefaultParams(), 2)
				if err != nil {
					t.Fatal(err)
				}
				return m
			}
			simRes, err := sim.Run(in, mk(), sim.Config{Params: core.DefaultParams()})
			if err != nil {
				t.Fatal(err)
			}
			e, err := engine.New(engine.Config{
				Grid: in.Grid, Strategy: mk(), AutoDecide: true,
				CellIndexGraphs: true, OnDecision: func(engine.Decision) {},
			})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := engine.Replay(e, in); err != nil {
				t.Fatal(err)
			}
			if err := e.Close(); err != nil {
				t.Fatal(err)
			}
			st := e.Stats()
			if simRes.Revenue <= 0 {
				t.Fatalf("degenerate workload: sim revenue %v", simRes.Revenue)
			}
			if st.Revenue != simRes.Revenue {
				t.Fatalf("engine revenue %v != sim revenue %v (shared executor must agree exactly)",
					st.Revenue, simRes.Revenue)
			}
			if st.Served != int64(simRes.Served) || st.Accepted != int64(simRes.Accepted) ||
				st.TasksPriced != int64(simRes.Offered) {
				t.Fatalf("funnel mismatch: engine %d/%d/%d, sim %d/%d/%d",
					st.TasksPriced, st.Accepted, st.Served,
					simRes.Offered, simRes.Accepted, simRes.Served)
			}
		})
	}
}

func exampleBatch() ([]market.Task, []market.Worker, geo.Grid) {
	grid := geo.SquareGrid(100, 10)
	tasks := []market.Task{
		{ID: 1, Origin: geo.Point{X: 11, Y: 11}, Distance: 3, Valuation: 5},
		{ID: 2, Origin: geo.Point{X: 9, Y: 9}, Distance: 2, Valuation: 1},   // rejects price 2
		{ID: 3, Origin: geo.Point{X: 90, Y: 90}, Distance: 5, Valuation: 5}, // out of range
	}
	workers := []market.Worker{
		{ID: 10, Loc: geo.Point{X: 10, Y: 10}, Radius: 10, Duration: 100},
		{ID: 11, Loc: geo.Point{X: 12, Y: 10}, Radius: 10, Duration: 100},
	}
	return tasks, workers, grid
}

// TestExecutorResolveImmediate pins the immediate pipeline on a hand-sized
// batch: accepts, assignment, revenue, consumed rights, and the Observe
// call.
func TestExecutorResolveImmediate(t *testing.T) {
	tasks, workers, grid := exampleBatch()
	for _, mode := range []window.GraphMode{window.GraphCellIndex, window.GraphKD} {
		x := window.NewExecutor(grid, mode)
		strat := &flatStrategy{price: 2}
		pr, err := x.Price(strat, 0, tasks, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(pr.Prices) != 3 || pr.Prices[0] != 2 {
			t.Fatalf("mode %d: prices %v", mode, pr.Prices)
		}
		out := x.ResolveImmediate(strat, pr, tasks)
		if !out.Accepted[0] || out.Accepted[1] || !out.Accepted[2] || out.AcceptedCount != 2 {
			t.Fatalf("mode %d: accepts %v", mode, out.Accepted)
		}
		// Only task 1 is servable: revenue d*p = 6, one worker consumed.
		if out.Served != 1 || out.Revenue != 6 || len(out.ConsumedRights) != 1 {
			t.Fatalf("mode %d: outcome %+v", mode, out)
		}
		if r := out.Matching.LeftTo[0]; r != out.ConsumedRights[0] {
			t.Fatalf("mode %d: matching %v vs consumed %v", mode, out.Matching.LeftTo, out.ConsumedRights)
		}
		if strat.observes != 1 {
			t.Fatalf("mode %d: observe called %d times", mode, strat.observes)
		}
	}
}

// TestExecutorQuotedSettle drives the quoted path directly: arm, augment on
// acceptance, settle, and check the committed books.
func TestExecutorQuotedSettle(t *testing.T) {
	tasks, workers, grid := exampleBatch()
	x := window.NewExecutor(grid, window.GraphCellIndex)
	strat := &flatStrategy{price: 2}
	pr, err := x.Price(strat, 0, tasks, workers)
	if err != nil {
		t.Fatal(err)
	}
	inc := x.ArmQuoted(pr)
	accepted := make([]bool, len(tasks))
	// Requester of task 1 accepts and is provisionally assigned; task 2's
	// requester declines; task 3 never answers.
	accepted[0] = true
	if !inc.TryAugment(0) {
		t.Fatal("task 1 should be assignable")
	}
	out := x.SettleQuoted(strat, pr.Ctx, pr.Prices, inc, accepted)
	if out.AcceptedCount != 1 || out.Served != 1 || out.Revenue != 6 {
		t.Fatalf("settlement %+v", out)
	}
	matchedCount := 0
	for _, m := range out.MatchedRights {
		if m {
			matchedCount++
		}
	}
	if matchedCount != 1 {
		t.Fatalf("matched rights %v, want exactly one", out.MatchedRights)
	}
	if strat.observes != 1 {
		t.Fatalf("observe called %d times", strat.observes)
	}
}

// TestExecutorPriceCountError pins the typed contract-violation error.
func TestExecutorPriceCountError(t *testing.T) {
	tasks, workers, grid := exampleBatch()
	x := window.NewExecutor(grid, window.GraphCellIndex)
	_, err := x.Price(badCount{}, 0, tasks, workers)
	var pce *window.PriceCountError
	if !errors.As(err, &pce) {
		t.Fatalf("err = %v, want *PriceCountError", err)
	}
	if pce.Strategy != "bad" || pce.Got != 0 || pce.Want != 3 {
		t.Fatalf("error detail %+v", *pce)
	}
}
