package window_test

import (
	"fmt"
	"testing"

	"spatialcrowd/internal/core"
	"spatialcrowd/internal/market"
	"spatialcrowd/internal/match"
	"spatialcrowd/internal/window"
	"spatialcrowd/internal/workload"
)

// assertGraphsEqual demands byte-identical adjacency: same sizes, same edge
// count, and the same neighbor list in the same order for every left vertex.
// Order matters — matching tie breaks follow adjacency order, so a cached
// graph in a different order would silently change who serves whom.
func assertGraphsEqual(t *testing.T, period int, fresh, cached *match.Graph) {
	t.Helper()
	if fresh.NLeft() != cached.NLeft() || fresh.NRight() != cached.NRight() ||
		fresh.NumEdges() != cached.NumEdges() {
		t.Fatalf("period %d: graph shape %dx%d/%d edges vs cached %dx%d/%d",
			period, fresh.NLeft(), fresh.NRight(), fresh.NumEdges(),
			cached.NLeft(), cached.NRight(), cached.NumEdges())
	}
	for l := 0; l < fresh.NLeft(); l++ {
		fa, ca := fresh.Adj(l), cached.Adj(l)
		if len(fa) != len(ca) {
			t.Fatalf("period %d: task %d has %d fresh neighbors, %d cached", period, l, len(fa), len(ca))
		}
		for k := range fa {
			if fa[k] != ca[k] {
				t.Fatalf("period %d: task %d adjacency diverges at %d: fresh %v, cached %v",
					period, l, k, fa, ca)
			}
		}
	}
}

// runLockstep drives a fresh executor and an amortized executor through the
// same instance in lockstep, each with its own strategy instance and worker
// pool, asserting per window that prices are element-exact and adjacency is
// byte-identical, then resolving both and asserting identical books. Because
// outcomes are asserted equal every window, the two pools evolve identically
// and a single stale cache entry is caught in the very window it happens.
func runLockstep(t *testing.T, in *market.Instance, mode window.GraphMode, mk func() core.Strategy) window.CacheStats {
	t.Helper()
	space := in.Spatial()
	fresh := window.NewExecutor(space, mode)
	cached := window.NewExecutor(space, mode)
	cached.SetAmortize(true)
	fStrat, cStrat := mk(), mk()

	tasksByPeriod := in.TasksByPeriod()
	arrivals := in.WorkersByStart()
	fPool := make([]market.Worker, 0, 256)
	cPool := make([]market.Worker, 0, 256)

	step := func(pool []market.Worker, p int) []market.Worker {
		pool = append(pool, arrivals[p]...)
		live := pool[:0]
		for _, w := range pool {
			if w.ActiveAt(p) {
				live = append(live, w)
			}
		}
		return live
	}
	consume := func(pool []market.Worker, rights []int) []market.Worker {
		drop := make(map[int]bool, len(rights))
		for _, r := range rights {
			drop[r] = true
		}
		live := pool[:0]
		for wi, w := range pool {
			if !drop[wi] {
				live = append(live, w)
			}
		}
		return live
	}

	for p := 0; p < in.Periods; p++ {
		fPool = step(fPool, p)
		cPool = step(cPool, p)
		tasks := tasksByPeriod[p]
		if len(tasks) == 0 {
			continue
		}
		fPr, err := fresh.Price(fStrat, p, tasks, fPool)
		if err != nil {
			t.Fatal(err)
		}
		cPr, err := cached.Price(cStrat, p, tasks, cPool)
		if err != nil {
			t.Fatal(err)
		}
		if len(fPr.Prices) != len(cPr.Prices) {
			t.Fatalf("period %d: %d fresh prices, %d cached", p, len(fPr.Prices), len(cPr.Prices))
		}
		for i := range fPr.Prices {
			if fPr.Prices[i] != cPr.Prices[i] {
				t.Fatalf("period %d task %d: fresh price %.17g, cached %.17g",
					p, i, fPr.Prices[i], cPr.Prices[i])
			}
		}
		assertGraphsEqual(t, p, fPr.Graph, cPr.Graph)

		fOut := fresh.ResolveImmediate(fStrat, fPr, tasks)
		cOut := cached.ResolveImmediate(cStrat, cPr, tasks)
		if fOut.Revenue != cOut.Revenue || fOut.Served != cOut.Served ||
			fOut.AcceptedCount != cOut.AcceptedCount {
			t.Fatalf("period %d: fresh outcome %.12f/%d/%d, cached %.12f/%d/%d",
				p, fOut.Revenue, fOut.Served, fOut.AcceptedCount,
				cOut.Revenue, cOut.Served, cOut.AcceptedCount)
		}
		fPool = consume(fPool, fOut.ConsumedRights)
		cPool = consume(cPool, cOut.ConsumedRights)
	}
	if fs := fresh.CacheStats(); fs != (window.CacheStats{}) {
		t.Fatalf("fresh executor reported cache activity: %+v", fs)
	}
	return cached.CacheStats()
}

// TestAmortizedExecutorLockstep is the window-level half of the amortization
// transparency contract: across seeds, both graph modes, and both a learning
// (MAPS) and a stateless (SDR) strategy, every window an amortized executor
// produces must carry the exact price vector and adjacency a fresh executor
// builds from scratch.
func TestAmortizedExecutorLockstep(t *testing.T) {
	strategies := map[string]func() core.Strategy{
		"maps": func() core.Strategy { m, _ := core.NewMAPS(core.DefaultParams(), 2); return m },
		"sdr":  func() core.Strategy { s, _ := core.NewSDR(core.DefaultParams(), 2); return s },
	}
	modes := map[string]window.GraphMode{"cellindex": window.GraphCellIndex, "kd": window.GraphKD}
	for _, seed := range []int64{1, 7, 23, 91} {
		in, _, err := workload.Synthetic(workload.SyntheticConfig{
			Workers: 120 + int(seed)*11, Requests: 500 + int(seed)*23,
			Periods: 25, GridSide: 4, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		for sname, mk := range strategies {
			for mname, mode := range modes {
				t.Run(fmt.Sprintf("seed=%d/%s/%s", seed, sname, mname), func(t *testing.T) {
					runLockstep(t, in, mode, mk)
				})
			}
		}
	}
}

// TestAmortizedExecutorRepeatingWindows replays the exact same batch content
// (fresh task IDs each window, as the engine mints them) through the
// amortized executor and asserts the fast paths actually engage while
// remaining lockstep-identical to a fresh executor: context hits every
// window after the first, and price hits for the stateless SDR ladder once
// the pool stops changing.
func TestAmortizedExecutorRepeatingWindows(t *testing.T) {
	const periods = 20
	protoTasks, protoWorkers, grid := exampleBatch()
	in := &market.Instance{Grid: grid, Periods: periods}
	for p := 0; p < periods; p++ {
		for i, task := range protoTasks {
			task.ID = p*len(protoTasks) + i + 1
			task.Period = p
			in.Tasks = append(in.Tasks, task)
		}
	}
	// One immortal worker cohort arriving up front: after the first few
	// windows consume the reachable supply, the pool quiesces and the worker
	// fingerprint stabilizes window over window.
	for j, w := range protoWorkers {
		w.ID = 100 + j
		w.Period = 0
		w.Duration = periods
		in.Workers = append(in.Workers, w)
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}

	for mname, mode := range map[string]window.GraphMode{"cellindex": window.GraphCellIndex, "kd": window.GraphKD} {
		t.Run(mname, func(t *testing.T) {
			st := runLockstep(t, in, mode, func() core.Strategy {
				s, _ := core.NewSDR(core.DefaultParams(), 2)
				return s
			})
			if st.CtxHits == 0 {
				t.Fatalf("no context hits on repeating windows: %+v", st)
			}
			if st.PriceHits == 0 {
				t.Fatalf("no price hits for SDR on a quiesced pool: %+v", st)
			}
			if st.CtxHits+st.CtxMisses != periods {
				t.Fatalf("ctx outcomes %d != %d windows (%+v)", st.CtxHits+st.CtxMisses, periods, st)
			}
			if st.CtxHits != periods-1 {
				t.Fatalf("want %d ctx hits (every window after the first), got %d", periods-1, st.CtxHits)
			}
		})
	}
}
