// Package window is the unified window-execution core: the single canonical
// price -> accept -> assign pipeline that both the offline period simulator
// (internal/sim) and the streaming dispatch engine (internal/engine) drive.
// One Executor owns the batch's bipartite-graph builder, the pricing context,
// the assignment matcher, and all of their scratch arenas, so a caller
// executing one window per batch allocates nothing in steady state — the
// discipline PR-4 established for the engine's shards, now shared by every
// execution path.
//
// A window executes in two phases:
//
//  1. Price: build the task-worker bipartite graph (cell-index or k-d tree
//     candidates), assemble the strategy-facing PeriodContext, and ask the
//     Strategy for one unit price per task. A malformed price vector is a
//     typed *PriceCountError, never a panic.
//  2. Resolve: either immediately (ResolveImmediate — requesters decide
//     against their private valuations and accepting tasks are assigned by
//     the exact left-weighted maximum-weight matching) or quoted
//     (ArmQuoted/SettleQuoted — the caller collects requester replies
//     against a match.Incremental and the executor settles the final books).
//
// One Executor serves one goroutine. Each Price (or Rebuild) call
// invalidates the previously returned Priced and everything reachable from
// it; quoted batches must therefore be settled before the next Price — the
// same window-over-window discipline the engine's shards always had.
package window

import (
	"fmt"
	"time"

	"spatialcrowd/internal/core"
	"spatialcrowd/internal/market"
	"spatialcrowd/internal/match"
	"spatialcrowd/internal/spatial"
)

// GraphMode selects the batch bipartite-graph builder.
type GraphMode uint8

const (
	// GraphCellIndex builds the graph from the spatial cell index — the
	// offline simulator's historical "indexed" construction
	// (market.BuildBipartiteIndexed delegates to the same builder). Candidate
	// enumeration order, and therefore adjacency order and matching tie
	// breaks, is byte-identical to the simulator's, which is what makes
	// deterministic replay reproduce sim revenue bit for bit.
	GraphCellIndex GraphMode = iota
	// GraphKD builds the graph from k-d tree candidates over the worker
	// pool — the same edge set in a different adjacency order; faster on
	// large pools.
	GraphKD
)

// PriceCountError reports a Strategy that returned the wrong number of
// prices for a batch — the contract violation both execution paths must
// surface instead of indexing out of bounds.
type PriceCountError struct {
	Strategy string // Strategy.Name()
	Got      int    // prices returned
	Want     int    // tasks in the batch
}

// Error implements error.
func (e *PriceCountError) Error() string {
	return fmt.Sprintf("window: strategy %s returned %d prices for %d tasks",
		e.Strategy, e.Got, e.Want)
}

// Priced is one priced, not-yet-resolved window: the strategy-facing
// context, the batch bipartite graph, and the strategy's prices. It is
// backed by the executor's arenas and valid until the executor's next
// Price or Rebuild call.
type Priced struct {
	Ctx    *core.PeriodContext
	Graph  *match.Graph
	Prices []float64
	// PriceTime is the wall time spent inside Strategy.Prices — the
	// simulator's "running time" metric excludes the platform's own work.
	PriceTime time.Duration
}

// Outcome is the settled result of one window: the requesters' decisions,
// the committed assignment, and the revenue the platform accrued. Slices
// are backed by the executor's arenas and valid until its next resolve.
type Outcome struct {
	// Accepted flags each task whose requester accepted the offer.
	Accepted      []bool
	AcceptedCount int
	// Served counts assigned tasks; Revenue is the sum of d_r * p_r over
	// them, accumulated in task order (both callers' historical order, so
	// refactoring did not move a single float addition).
	Served  int
	Revenue float64
	// Matching maps task index -> batch-worker index (LeftTo), the
	// committed assignment.
	Matching *match.Matching
	// ConsumedRights lists the consumed batch-worker indices in task order
	// (immediate resolution).
	ConsumedRights []int
	// MatchedRights flags each consumed batch-worker index (quoted
	// settlement).
	MatchedRights []bool
	// MatchTime and ObserveTime split the platform-side assignment cost
	// from the strategy's learning cost (immediate resolution only).
	MatchTime   time.Duration
	ObserveTime time.Duration
}

// Executor owns the canonical window pipeline and its reusable arenas.
// Create one with NewExecutor; it serves a single goroutine.
type Executor struct {
	space spatial.Space
	mode  GraphMode

	// Arenas, reused window over window.
	cellIx  market.CellIndexScratch // graph builder (cell-index mode)
	ix      *market.WorkerIndex     // k-d candidate index (kd mode)
	kdGraph *match.Graph            // bipartite graph arena (kd mode)
	ctxSc   core.ContextScratch     // PeriodContext arena
	mw      match.MaxWeightScratch  // immediate-assignment arena
	inc     *match.Incremental      // quoted-batch matcher, reset per quote
	acc     []bool                  // per-task accept flags
	weights []float64               // per-task matching weights
	cons    []int                   // consumed batch-worker indices
	matched []bool                  // per-right matched flags (quoted settle)

	pr  Priced
	out Outcome

	// Amortization layer (SetAmortize): fingerprint-gated reuse of the
	// context, graph, and price vector across consecutive windows, plus
	// incremental k-d maintenance. Off by default; transparent when on —
	// cache hits return content bit-identical to a fresh rebuild.
	am        amortizer
	lastGraph *match.Graph // graph returned by the previous Rebuild
}

// amortizer is the executor's window-over-window cache state. Fingerprints
// cover everything a strategy or graph builder can see (core.TasksFingerprint
// deliberately skips task IDs and hidden valuations); a hit therefore
// guarantees the recomputation being skipped would have produced identical
// output, which is what keeps cached and fresh runs revenue-equal to the
// bit.
type amortizer struct {
	enabled bool
	have    bool // fingerprints below describe the previous window

	taskFP   uint64
	workerFP uint64

	// Per-window comparison results, set by Rebuild for Price to consume.
	sameTasks   bool
	sameWorkers bool

	// Price-vector cache for core.PriceCacheable strategies: a private copy
	// of the previous window's prices and the strategy state version it was
	// computed under.
	havePrice bool
	priceVer  uint64
	prices    []float64

	stats CacheStats
}

// CacheStats counts the amortization layer's cache outcomes. Context
// counters are per window: every Rebuild under amortization scores exactly
// one context hit or miss, so CtxHits + CtxMisses equals the number of
// windows executed. Price counters likewise score one outcome per Price
// call (strategies that do not opt into price caching always score a
// miss). KD counters mirror market.IndexStats: windows whose worker index
// was maintained by delta application versus bulk rebuilds.
type CacheStats struct {
	CtxHits       int64
	CtxMisses     int64
	PriceHits     int64
	PriceMisses   int64
	KDIncremental int64
	KDRebuilds    int64
}

// Add returns the field-wise sum of c and o.
func (c CacheStats) Add(o CacheStats) CacheStats {
	c.CtxHits += o.CtxHits
	c.CtxMisses += o.CtxMisses
	c.PriceHits += o.PriceHits
	c.PriceMisses += o.PriceMisses
	c.KDIncremental += o.KDIncremental
	c.KDRebuilds += o.KDRebuilds
	return c
}

// Sub returns the field-wise difference c - o.
func (c CacheStats) Sub(o CacheStats) CacheStats {
	c.CtxHits -= o.CtxHits
	c.CtxMisses -= o.CtxMisses
	c.PriceHits -= o.PriceHits
	c.PriceMisses -= o.PriceMisses
	c.KDIncremental -= o.KDIncremental
	c.KDRebuilds -= o.KDRebuilds
	return c
}

// NewExecutor returns an executor over the given spatial backend and graph
// mode.
func NewExecutor(space spatial.Space, mode GraphMode) *Executor {
	return &Executor{space: space, mode: mode}
}

// Space reports the executor's spatial backend.
func (x *Executor) Space() spatial.Space { return x.space }

// Mode reports the executor's graph-builder mode.
func (x *Executor) Mode() GraphMode { return x.mode }

// SetAmortize toggles the amortized-rebuild layer. When on, each Rebuild
// fingerprints the window's tasks and workers and reuses the previous
// window's context (same tasks), graph (same tasks and workers), and — for
// core.PriceCacheable strategies via Price — price vector (same inputs and
// strategy state version); the k-d worker index is additionally maintained
// incrementally under low churn. Disabling also invalidates the cache.
func (x *Executor) SetAmortize(on bool) {
	x.am.enabled = on
	if !on {
		x.InvalidateCache()
	}
}

// Amortize reports whether the amortized-rebuild layer is on.
func (x *Executor) Amortize() bool { return x.am.enabled }

// InvalidateCache drops every cached window artifact; the next Rebuild and
// Price recompute from scratch. Callers restoring external state (engine
// checkpoint restore) use it to keep the cache honest.
func (x *Executor) InvalidateCache() {
	x.am.have = false
	x.am.havePrice = false
	x.am.sameTasks, x.am.sameWorkers = false, false
}

// CacheStats returns the cumulative cache counters, folding in the worker
// index's maintenance counters when the executor runs in kd mode.
func (x *Executor) CacheStats() CacheStats {
	st := x.am.stats
	if x.ix != nil {
		ks := x.ix.Stats()
		st.KDIncremental, st.KDRebuilds = ks.Incremental, ks.Rebuilds
	}
	return st
}

// Price executes phase one of a window: build the batch graph and context
// over the executor's arenas and price the tasks with the strategy. The
// returned Priced is valid until the next Price or Rebuild call. A strategy
// returning the wrong number of prices yields a *PriceCountError and leaves
// nothing half-resolved.
func (x *Executor) Price(strat core.Strategy, period int, tasks []market.Task, workers []market.Worker) (*Priced, error) {
	pr := x.Rebuild(period, tasks, workers)
	if x.am.enabled {
		if pc, ok := strat.(core.PriceCacheable); ok {
			ver := pc.PriceStateVersion()
			if x.am.havePrice && x.am.sameTasks && x.am.sameWorkers && ver == x.am.priceVer {
				// Inputs and strategy state are unchanged since the cached
				// vector was computed, so by the PriceCacheable contract the
				// strategy would return exactly these prices again.
				pr.Prices = x.am.prices
				x.am.stats.PriceHits++
				return pr, nil
			}
			start := time.Now() //lint:detsource PriceTime metric only
			prices := strat.Prices(pr.Ctx)
			pr.PriceTime = time.Since(start) //lint:detsource PriceTime metric only
			if len(prices) != len(tasks) {
				x.am.havePrice = false
				return nil, &PriceCountError{Strategy: strat.Name(), Got: len(prices), Want: len(tasks)}
			}
			pr.Prices = prices
			// Cache a private copy: strategies may reuse their price buffer.
			x.am.prices = append(x.am.prices[:0], prices...)
			x.am.priceVer = ver
			x.am.havePrice = true
			x.am.stats.PriceMisses++
			return pr, nil
		}
		x.am.stats.PriceMisses++
	}
	start := time.Now() //lint:detsource PriceTime metric only
	prices := strat.Prices(pr.Ctx)
	pr.PriceTime = time.Since(start) //lint:detsource PriceTime metric only
	if len(prices) != len(tasks) {
		return nil, &PriceCountError{Strategy: strat.Name(), Got: len(prices), Want: len(tasks)}
	}
	pr.Prices = prices
	return pr, nil
}

// Rebuild reconstructs the graph and context of a batch without invoking
// the strategy, leaving Prices nil. Checkpoint restore uses it to re-arm a
// pending quoted batch against prices recorded earlier; construction is
// deterministic, so the rebuilt adjacency is identical to the original.
func (x *Executor) Rebuild(period int, tasks []market.Task, workers []market.Worker) *Priced {
	if !x.am.enabled {
		graph := x.buildGraph(tasks, workers, false)
		ctx := core.BuildContextScratch(x.space, period, tasks, workers, graph, &x.ctxSc)
		x.pr = Priced{Ctx: ctx, Graph: graph}
		x.lastGraph = graph
		return &x.pr
	}

	taskFP := core.TasksFingerprint(tasks)
	workerFP := core.WorkersFingerprint(workers)
	// The length guard backs up the fingerprint: a (vanishingly unlikely)
	// collision across different batch sizes must not slice stale views.
	sameTasks := x.am.have && taskFP == x.am.taskFP && x.ctxSc.Len() == len(tasks)
	sameWorkers := x.am.have && workerFP == x.am.workerFP
	x.am.sameTasks, x.am.sameWorkers = sameTasks, sameWorkers
	x.am.taskFP, x.am.workerFP = taskFP, workerFP
	x.am.have = true

	var graph *match.Graph
	if sameTasks && sameWorkers && x.lastGraph != nil {
		// Identical inputs: the previous window's graph is exactly what the
		// builder would produce, and nothing has touched it since.
		graph = x.lastGraph
	} else {
		graph = x.buildGraph(tasks, workers, true)
	}
	var ctx *core.PeriodContext
	if sameTasks {
		ctx = core.ReuseContextScratch(&x.ctxSc, period, tasks, workers, graph)
		x.am.stats.CtxHits++
	} else {
		ctx = core.BuildContextScratch(x.space, period, tasks, workers, graph, &x.ctxSc)
		x.am.stats.CtxMisses++
	}
	x.pr = Priced{Ctx: ctx, Graph: graph}
	x.lastGraph = graph
	return &x.pr
}

// buildGraph constructs the batch bipartite graph in the executor's mode.
// In kd mode with amortization the worker index is maintained incrementally
// (market.WorkerIndex.Update); candidate order is ascending either way, so
// the two maintenance modes build identical adjacency.
func (x *Executor) buildGraph(tasks []market.Task, workers []market.Worker, amortized bool) *match.Graph {
	switch x.mode {
	case GraphKD:
		if x.ix == nil {
			x.ix = &market.WorkerIndex{}
		}
		if amortized {
			x.ix.Update(workers)
		} else {
			x.ix.Reindex(workers)
		}
		if x.kdGraph == nil {
			x.kdGraph = match.NewGraph(len(tasks), len(workers))
		}
		return x.ix.BuildGraphInto(tasks, x.kdGraph)
	default:
		return market.BuildBipartiteCellIndexScratch(x.space, tasks, workers, &x.cellIx)
	}
}

// ResolveImmediate executes phase two in immediate mode: requesters decide
// against their private valuations (the raw tasks parallel to pr.Ctx.Tasks),
// accepting tasks are assigned with the exact left-weighted maximum-weight
// matching, and the strategy observes the outcomes. Observe runs before the
// caller compacts its worker pool, so strategies may still read the context.
func (x *Executor) ResolveImmediate(strat core.Strategy, pr *Priced, tasks []market.Task) *Outcome {
	n := len(tasks)
	accepted := resizeZeroed(&x.acc, n)
	weights := resizeZeroed(&x.weights, n) // rejected tasks weigh 0, never matched
	acceptedCount := 0
	for i := range tasks {
		if tasks[i].Accepts(pr.Prices[i]) {
			accepted[i] = true
			acceptedCount++
			weights[i] = pr.Ctx.Tasks[i].Distance * pr.Prices[i]
		}
	}
	mt := time.Now() //lint:detsource MatchTime metric only
	m, _ := match.MaxWeightByLeftScratch(pr.Graph, weights, &x.mw)
	matchTime := time.Since(mt) //lint:detsource MatchTime metric only

	consumed := x.cons[:0]
	served, revenue := 0, 0.0
	for i := range tasks {
		if accepted[i] {
			if r := m.LeftTo[i]; r >= 0 {
				served++
				revenue += weights[i]
				consumed = append(consumed, r)
			}
		}
	}
	x.cons = consumed

	ot := time.Now() //lint:detsource ObserveTime metric only
	strat.Observe(pr.Ctx, pr.Prices, accepted)
	x.out = Outcome{
		Accepted: accepted, AcceptedCount: acceptedCount,
		Served: served, Revenue: revenue,
		Matching: m, ConsumedRights: consumed,
		MatchTime: matchTime, ObserveTime: time.Since(ot), //lint:detsource ObserveTime metric only
	}
	return &x.out
}

// ArmQuoted re-arms the executor's incremental matcher over the priced
// batch's graph for quoted resolution: the caller augments it one requester
// reply at a time (and repairs around withdrawn workers) and finally settles
// with SettleQuoted.
func (x *Executor) ArmQuoted(pr *Priced) *match.Incremental {
	if x.inc == nil {
		x.inc = match.NewIncremental(pr.Graph)
	} else {
		x.inc.Reset(pr.Graph)
	}
	return x.inc
}

// SettleQuoted closes the books on a quoted batch: the matching state at
// this instant is what the platform commits. Given the batch's context,
// prices, matcher, and per-task accept flags, it computes the finalized
// outcome (MatchedRights flags the consumed batch workers) and feeds the
// accept/reject outcomes to the strategy.
func (x *Executor) SettleQuoted(strat core.Strategy, ctx *core.PeriodContext, prices []float64,
	inc *match.Incremental, accepted []bool) *Outcome {
	m := inc.Matching()
	matched := resizeZeroed(&x.matched, len(ctx.Workers))
	acceptedCount, served, revenue := 0, 0, 0.0
	for i, acc := range accepted {
		if !acc {
			continue
		}
		acceptedCount++
		if r := m.LeftTo[i]; r >= 0 {
			matched[r] = true
			served++
			revenue += ctx.Tasks[i].Distance * prices[i]
		}
	}
	strat.Observe(ctx, prices, accepted)
	x.out = Outcome{
		Accepted: accepted, AcceptedCount: acceptedCount,
		Served: served, Revenue: revenue,
		Matching: m, MatchedRights: matched,
	}
	return &x.out
}

// resizeZeroed returns *p resized to n zero-valued entries, reusing
// capacity.
func resizeZeroed[T any](p *[]T, n int) []T {
	s := *p
	if cap(s) >= n {
		s = s[:n]
		clear(s)
	} else {
		s = make([]T, n)
	}
	*p = s
	return s
}
