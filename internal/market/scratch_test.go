package market

import (
	"math/rand"
	"testing"

	"spatialcrowd/internal/geo"
	"spatialcrowd/internal/match"
)

// randomBatch fabricates one pricing batch's tasks and workers.
func randomBatch(rng *rand.Rand, nt, nw int) ([]Task, []Worker) {
	tasks := make([]Task, nt)
	for i := range tasks {
		o := geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		d := geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		tasks[i] = Task{ID: i, Origin: o, Dest: d, Distance: o.Dist(d)}
	}
	workers := make([]Worker, nw)
	for i := range workers {
		workers[i] = Worker{ID: i,
			Loc:    geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100},
			Radius: 2 + rng.Float64()*15}
	}
	return tasks, workers
}

// sameGraph fails the test unless a and b have identical dimensions and
// identical adjacency, in order (edge order steers matching tie breaks).
func sameGraph(t *testing.T, round int, got, want *match.Graph) {
	t.Helper()
	if got.NLeft() != want.NLeft() || got.NRight() != want.NRight() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("round %d: graph %dx%d/%d, want %dx%d/%d", round,
			got.NLeft(), got.NRight(), got.NumEdges(), want.NLeft(), want.NRight(), want.NumEdges())
	}
	for l := 0; l < want.NLeft(); l++ {
		ga, wa := got.Adj(l), want.Adj(l)
		if len(ga) != len(wa) {
			t.Fatalf("round %d left %d: adj %v, want %v", round, l, ga, wa)
		}
		for i := range wa {
			if ga[i] != wa[i] {
				t.Fatalf("round %d left %d: adj %v, want %v (order must match)", round, l, ga, wa)
			}
		}
	}
}

// TestCellIndexScratchMatchesFresh drives the reusable cell-index builder
// through many batches of varying shape and pins byte-identical adjacency
// against the allocating builder — the property deterministic replay needs.
func TestCellIndexScratchMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	grid := geo.SquareGrid(100, 8)
	sc := &CellIndexScratch{}
	for round := 0; round < 40; round++ {
		tasks, workers := randomBatch(rng, rng.Intn(60), rng.Intn(120))
		got := BuildBipartiteCellIndexScratch(grid, tasks, workers, sc)
		want := BuildBipartiteCellIndex(grid, tasks, workers)
		sameGraph(t, round, got, want)
	}
}

// TestWorkerIndexReindexMatchesFresh checks the in-place reindex against a
// fresh index: same candidates, same graph, same enumeration order.
func TestWorkerIndexReindexMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	var reused *WorkerIndex
	g := match.NewGraph(0, 0)
	for round := 0; round < 40; round++ {
		tasks, workers := randomBatch(rng, rng.Intn(60), rng.Intn(120))
		if reused == nil {
			reused = NewWorkerIndex(workers)
		} else {
			reused.Reindex(workers)
		}
		fresh := NewWorkerIndex(workers)
		var buf []int
		for ti := range tasks {
			got := reused.Candidates(tasks[ti].Origin, buf[:0])
			want := fresh.Candidates(tasks[ti].Origin, nil)
			if len(got) != len(want) {
				t.Fatalf("round %d task %d: candidates %v, want %v", round, ti, got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("round %d task %d: candidate order %v, want %v", round, ti, got, want)
				}
			}
		}
		sameGraph(t, round, reused.BuildGraphInto(tasks, g), fresh.BuildGraph(tasks))
	}
}
