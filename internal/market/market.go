// Package market defines the spatial-crowdsourcing market model of Section 2
// of the paper: spatial tasks with hidden private valuations, crowd workers
// with range constraints, per-grid acceptance-ratio curves, and the per-period
// task–worker bipartite graph construction.
package market

import (
	"fmt"
	"math/rand"

	"spatialcrowd/internal/geo"
	"spatialcrowd/internal/spatial"
	"spatialcrowd/internal/stats"
)

// Task is a spatial task r = <t, ori_r, des_r> (Definition 2) together with
// its travel distance d_r and the requester's private valuation v_r. The
// valuation is exported for the simulator's oracle but pricing strategies
// must never read it; they only observe accept/reject outcomes.
type Task struct {
	ID       int
	Period   int       // issue time period t
	Origin   geo.Point // ori_r
	Dest     geo.Point // des_r
	Distance float64   // d_r, travel distance from origin to destination

	// Valuation is the requester's private maximum acceptable unit price.
	// Hidden information: see Oracle.
	Valuation float64
}

// Worker is a crowd worker w = <t, l_w, a_w> (Definition 4). Duration is the
// number of consecutive periods the worker remains available once active
// (the delta_w knob of the real-data experiments); a worker matched to a task
// is occupied and leaves the market, as in the paper's batch model.
type Worker struct {
	ID       int
	Period   int       // first period the worker is available
	Loc      geo.Point // l_w
	Radius   float64   // a_w, range constraint radius
	Duration int       // periods of availability; <= 0 means one period
}

// Move is one worker relocation: at the end of Period, the worker with ID
// WorkerID stands at To. The simulator emits moves as its supply responds to
// prices (sim.Config.OnMove), the mobility generator fabricates them
// (workload.MobilityTrace), and the streaming engine replays them as
// KindWorkerMove events — one shared trace format across the offline and
// online paths.
type Move struct {
	Period   int
	WorkerID int
	To       geo.Point
}

// ActiveAt reports whether the worker is available in period t, assuming it
// has not been consumed by an assignment.
func (w Worker) ActiveAt(t int) bool {
	d := w.Duration
	if d <= 0 {
		d = 1
	}
	return t >= w.Period && t < w.Period+d
}

// CanServe reports whether the worker's range constraint admits the task:
// the task origin lies in the closed disk of radius a_w around l_w.
func (w Worker) CanServe(task Task) bool {
	return task.Origin.InRange(w.Loc, w.Radius)
}

// Accepts reports the requester's decision for a unit price: accept iff
// p <= v_r (Section 2.2: the accepting tasks are those with p_r <= v_r).
func (t Task) Accepts(price float64) bool { return price <= t.Valuation }

// Revenue returns the platform revenue if the task is served at the given
// unit price: d_r * p.
func (t Task) Revenue(price float64) float64 { return t.Distance * price }

// Instance is one complete market instance: a spatial partition plus all
// tasks and workers over T periods. Grid is the uniform-grid geometry every
// generator historically produced; Space, when set, overrides it with a
// different spatial backend (e.g. a road network) and Grid is ignored.
type Instance struct {
	Grid    geo.Grid
	Space   spatial.Space // optional; nil means GridSpace over Grid
	Periods int
	Tasks   []Task
	Workers []Worker
}

// Spatial returns the instance's spatial backend: the configured Space, or
// the uniform grid when none is set.
func (in *Instance) Spatial() spatial.Space {
	if in.Space != nil {
		return in.Space
	}
	return in.Grid
}

// Validate checks structural sanity of the instance.
func (in *Instance) Validate() error {
	if in.Periods <= 0 {
		return fmt.Errorf("market: instance needs Periods > 0, got %d", in.Periods)
	}
	for i, task := range in.Tasks {
		if task.Period < 0 || task.Period >= in.Periods {
			return fmt.Errorf("market: task %d period %d out of [0,%d)", i, task.Period, in.Periods)
		}
		if task.Distance < 0 {
			return fmt.Errorf("market: task %d has negative distance %v", i, task.Distance)
		}
	}
	for i, w := range in.Workers {
		if w.Period < 0 || w.Period >= in.Periods {
			return fmt.Errorf("market: worker %d period %d out of [0,%d)", i, w.Period, in.Periods)
		}
		if w.Radius <= 0 {
			return fmt.Errorf("market: worker %d has non-positive radius %v", i, w.Radius)
		}
	}
	return nil
}

// TasksByPeriod returns tasks bucketed by issue period.
func (in *Instance) TasksByPeriod() [][]Task {
	out := make([][]Task, in.Periods)
	for _, t := range in.Tasks {
		out[t.Period] = append(out[t.Period], t)
	}
	return out
}

// WorkersByStart returns workers bucketed by first active period.
func (in *Instance) WorkersByStart() [][]Worker {
	out := make([][]Worker, in.Periods)
	for _, w := range in.Workers {
		out[w.Period] = append(out[w.Period], w)
	}
	return out
}

// GridDemand describes one local market (grid cell) in one period: the tasks
// whose origins fall in the cell, with distances sorted descending — the
// order the supply curve of Eq. (1) consumes them.
type GridDemand struct {
	Cell  int
	Tasks []int // indices into the period's task slice, sorted by Distance desc
}

// ValuationModel draws private valuations for tasks by grid cell; it is the
// hidden demand distribution F^g of Definition 3.
type ValuationModel interface {
	// Dist returns the valuation distribution of grid cell g.
	Dist(cell int) stats.Dist
}

// UniformModel applies a single distribution to every cell.
type UniformModel struct {
	D stats.Dist
}

// Dist implements ValuationModel.
func (u UniformModel) Dist(int) stats.Dist { return u.D }

// PerCellModel stores one distribution per cell, falling back to Default for
// cells without an entry.
type PerCellModel struct {
	Cells   map[int]stats.Dist
	Default stats.Dist
}

// Dist implements ValuationModel.
func (m PerCellModel) Dist(cell int) stats.Dist {
	if d, ok := m.Cells[cell]; ok {
		return d
	}
	return m.Default
}

// AssignValuations samples a private valuation for every task from the
// model's per-cell distribution, mutating tasks in place.
func AssignValuations(tasks []Task, space spatial.Space, model ValuationModel, rng *rand.Rand) {
	for i := range tasks {
		cell := space.CellOf(tasks[i].Origin)
		tasks[i].Valuation = model.Dist(cell).Sample(rng)
	}
}
