package market

import (
	"sort"

	"spatialcrowd/internal/geo"
	"spatialcrowd/internal/kdtree"
	"spatialcrowd/internal/match"
)

// BuildBipartite constructs the probabilistic bipartite graph B^t of
// Section 2.2 for one period: left vertices are the given tasks, right
// vertices the given workers, with an edge whenever the worker's range
// constraint admits the task. Complexity O(|R| * |W|) pairwise; use
// BuildBipartiteIndexed for large instances.
func BuildBipartite(tasks []Task, workers []Worker) *match.Graph {
	g := match.NewGraph(len(tasks), len(workers))
	for wi, w := range workers {
		r2 := w.Radius * w.Radius
		for ti := range tasks {
			if tasks[ti].Origin.SqDist(w.Loc) <= r2 {
				g.AddEdge(ti, wi)
			}
		}
	}
	return g
}

// BuildBipartiteIndexed is BuildBipartite accelerated by the grid index.
// Workers are bucketed by grid cell once; each task then distance-tests only
// the workers in cells intersecting the disk of the period's maximum radius
// around its origin. Since a period has far fewer tasks than there are
// accumulated idle workers, the task-centric scan keeps edge generation
// near-linear, which is what makes the 500k-scale experiment (Fig. 8
// scalability) tractable.
func BuildBipartiteIndexed(in *Instance, tasks []Task, workers []Worker) *match.Graph {
	g := match.NewGraph(len(tasks), len(workers))
	if len(tasks) == 0 || len(workers) == 0 {
		return g
	}
	byCell := make(map[int][]int)
	maxR := 0.0
	for wi := range workers {
		c := in.Grid.CellOf(workers[wi].Loc)
		byCell[c] = append(byCell[c], wi)
		if workers[wi].Radius > maxR {
			maxR = workers[wi].Radius
		}
	}
	for ti := range tasks {
		origin := tasks[ti].Origin
		for _, cell := range in.Grid.CellsInRange(origin, maxR) {
			for _, wi := range byCell[cell] {
				w := &workers[wi]
				if origin.SqDist(w.Loc) <= w.Radius*w.Radius {
					g.AddEdge(ti, wi)
				}
			}
		}
	}
	return g
}

// BuildBipartiteKD constructs the same graph as BuildBipartite using a k-d
// tree over worker locations: each task radius-queries the tree at the
// period's maximum worker radius and distance-tests the candidates. Unlike
// the grid index, pruning quality does not depend on the grid resolution,
// which makes this variant preferable when worker radii are small relative
// to grid cells or when no grid exists at all.
func BuildBipartiteKD(tasks []Task, workers []Worker) *match.Graph {
	g := match.NewGraph(len(tasks), len(workers))
	if len(tasks) == 0 || len(workers) == 0 {
		return g
	}
	pts := make([]geo.Point, len(workers))
	maxR := 0.0
	for i := range workers {
		pts[i] = workers[i].Loc
		if workers[i].Radius > maxR {
			maxR = workers[i].Radius
		}
	}
	tree := kdtree.Build(pts, nil)
	for ti := range tasks {
		origin := tasks[ti].Origin
		for _, wi := range tree.InRadius(origin, maxR) {
			w := &workers[wi]
			if origin.SqDist(w.Loc) <= w.Radius*w.Radius {
				g.AddEdge(ti, wi)
			}
		}
	}
	return g
}

// GroupByCell buckets the period's tasks into per-grid local markets, each
// with task indices sorted by distance descending (the order Eq. (1)'s
// supply curve consumes them). Cells without tasks are absent from the map.
func GroupByCell(in *Instance, tasks []Task) map[int]*GridDemand {
	out := make(map[int]*GridDemand)
	for ti := range tasks {
		c := in.Grid.CellOf(tasks[ti].Origin)
		gd, ok := out[c]
		if !ok {
			gd = &GridDemand{Cell: c}
			out[c] = gd
		}
		gd.Tasks = append(gd.Tasks, ti)
	}
	for _, gd := range out {
		sort.Slice(gd.Tasks, func(i, j int) bool {
			return tasks[gd.Tasks[i]].Distance > tasks[gd.Tasks[j]].Distance
		})
	}
	return out
}
