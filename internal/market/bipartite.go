package market

import (
	"sort"

	"spatialcrowd/internal/geo"
	"spatialcrowd/internal/kdtree"
	"spatialcrowd/internal/match"
	"spatialcrowd/internal/spatial"
)

// BuildBipartite constructs the probabilistic bipartite graph B^t of
// Section 2.2 for one period: left vertices are the given tasks, right
// vertices the given workers, with an edge whenever the worker's range
// constraint admits the task. Complexity O(|R| * |W|) pairwise; use
// BuildBipartiteIndexed for large instances.
func BuildBipartite(tasks []Task, workers []Worker) *match.Graph {
	g := match.NewGraph(len(tasks), len(workers))
	for wi, w := range workers {
		r2 := w.Radius * w.Radius
		for ti := range tasks {
			if tasks[ti].Origin.SqDist(w.Loc) <= r2 {
				g.AddEdge(ti, wi)
			}
		}
	}
	return g
}

// BuildBipartiteIndexed is BuildBipartite accelerated by the instance's
// spatial cell index. Workers are bucketed by cell once; each task then
// distance-tests only the workers in cells intersecting the disk of the
// period's maximum radius around its origin. Since a period has far fewer
// tasks than there are accumulated idle workers, the task-centric scan keeps
// edge generation near-linear, which is what makes the 500k-scale experiment
// (Fig. 8 scalability) tractable.
func BuildBipartiteIndexed(in *Instance, tasks []Task, workers []Worker) *match.Graph {
	return BuildBipartiteCellIndex(in.Spatial(), tasks, workers)
}

// BuildBipartiteCellIndex is BuildBipartiteIndexed against a bare spatial
// backend (no Instance required). The streaming engine uses it in
// cell-index mode: candidate enumeration — and therefore adjacency order,
// which steers tie breaks in the greedy matching — is byte-identical to the
// offline simulator's, the property the exact replay-equivalence tests pin.
func BuildBipartiteCellIndex(space spatial.Space, tasks []Task, workers []Worker) *match.Graph {
	return BuildBipartiteCellIndexScratch(space, tasks, workers, nil)
}

// CellIndexScratch is reusable working state for the cell-index graph
// builder: the worker-by-cell buckets, the per-task candidate-cell buffer,
// and the graph itself survive across batches, so a caller building one
// graph per pricing window allocates nothing in steady state. One instance
// serves one goroutine.
type CellIndexScratch struct {
	graph  *match.Graph
	byCell map[int][]int
	used   []int // cells with a non-empty bucket this batch
	cells  []int // candidate-cell buffer
}

// BuildBipartiteCellIndexScratch is BuildBipartiteCellIndex with
// caller-owned scratch state. A nil scratch allocates fresh state. The
// returned graph is backed by the scratch and valid until its next use;
// candidate enumeration order — and therefore adjacency order — is
// byte-identical to BuildBipartiteCellIndex's.
func BuildBipartiteCellIndexScratch(space spatial.Space, tasks []Task, workers []Worker, sc *CellIndexScratch) *match.Graph {
	if sc == nil {
		sc = &CellIndexScratch{}
	}
	if sc.graph == nil {
		sc.graph = match.NewGraph(len(tasks), len(workers))
	} else {
		sc.graph.Reset(len(tasks), len(workers))
	}
	g := sc.graph
	if len(tasks) == 0 || len(workers) == 0 {
		return g
	}
	if sc.byCell == nil {
		sc.byCell = make(map[int][]int)
	}
	for _, c := range sc.used {
		sc.byCell[c] = sc.byCell[c][:0]
	}
	sc.used = sc.used[:0]
	maxR := 0.0
	for wi := range workers {
		c := space.CellOf(workers[wi].Loc)
		b := sc.byCell[c]
		if len(b) == 0 {
			sc.used = append(sc.used, c)
		}
		sc.byCell[c] = append(b, wi)
		if workers[wi].Radius > maxR {
			maxR = workers[wi].Radius
		}
	}
	for ti := range tasks {
		origin := tasks[ti].Origin
		sc.cells = space.CellsInRangeAppend(origin, maxR, sc.cells[:0])
		for _, cell := range sc.cells {
			for _, wi := range sc.byCell[cell] {
				w := &workers[wi]
				if origin.SqDist(w.Loc) <= w.Radius*w.Radius {
					g.AddEdge(ti, wi)
				}
			}
		}
	}
	return g
}

// BuildBipartiteKD constructs the same graph as BuildBipartite using a k-d
// tree over worker locations: each task radius-queries the tree at the
// period's maximum worker radius and distance-tests the candidates. Unlike
// the grid index, pruning quality does not depend on the grid resolution,
// which makes this variant preferable when worker radii are small relative
// to grid cells or when no grid exists at all.
func BuildBipartiteKD(tasks []Task, workers []Worker) *match.Graph {
	return NewWorkerIndex(workers).BuildGraph(tasks)
}

// WorkerIndex is a k-d tree over a worker pool for repeated range-candidate
// queries. The streaming dispatch engine builds one per pricing batch and
// uses it both to generate the batch's bipartite edges and to answer
// ad-hoc "who can serve this origin" lookups without rescanning the pool.
type WorkerIndex struct {
	workers []Worker
	tree    *kdtree.Tree
	maxR    float64
	pts     []geo.Point // reused coordinate buffer for Reindex
	buf     []int       // reused candidate buffer for BuildGraphInto
}

// NewWorkerIndex indexes the pool. The slice is retained (not copied); the
// caller must not mutate worker locations while the index is in use.
func NewWorkerIndex(workers []Worker) *WorkerIndex {
	ix := &WorkerIndex{}
	ix.Reindex(workers)
	return ix
}

// Reindex rebuilds the index in place over a new pool, reusing the k-d
// tree's node arena and the coordinate buffer. The streaming engine calls it
// once per pricing batch; in steady state a reindex allocates nothing.
func (ix *WorkerIndex) Reindex(workers []Worker) {
	if cap(ix.pts) >= len(workers) {
		ix.pts = ix.pts[:len(workers)]
	} else {
		ix.pts = make([]geo.Point, len(workers))
	}
	maxR := 0.0
	for i := range workers {
		ix.pts[i] = workers[i].Loc
		if workers[i].Radius > maxR {
			maxR = workers[i].Radius
		}
	}
	ix.workers = workers
	ix.maxR = maxR
	if ix.tree == nil {
		ix.tree = kdtree.Build(ix.pts, nil)
	} else {
		ix.tree.Rebuild(ix.pts, nil)
	}
}

// Len returns the number of indexed workers.
func (ix *WorkerIndex) Len() int { return len(ix.workers) }

// Candidates appends to out the pool indices of every worker whose range
// constraint admits a task at origin, and returns the extended slice. Pass a
// reused buffer to stay allocation-free across queries; candidates beyond
// the buffer's capacity still grow it as usual.
func (ix *WorkerIndex) Candidates(origin geo.Point, out []int) []int {
	from := len(out)
	out = ix.tree.InRadiusAppend(origin, ix.maxR, out)
	// Filter each candidate by its own radius in place (the tree query used
	// the pool-wide maximum).
	keep := from
	for _, wi := range out[from:] {
		w := &ix.workers[wi]
		if origin.SqDist(w.Loc) <= w.Radius*w.Radius {
			out[keep] = wi
			keep++
		}
	}
	return out[:keep]
}

// BuildGraph constructs the bipartite graph of the given tasks against the
// indexed pool: the same edge set as BuildBipartite, generated by k-d tree
// radius queries instead of a pairwise scan.
func (ix *WorkerIndex) BuildGraph(tasks []Task) *match.Graph {
	return ix.BuildGraphInto(tasks, match.NewGraph(len(tasks), len(ix.workers)))
}

// BuildGraphInto is BuildGraph appending edges into a caller-reused graph
// (reset to the batch's dimensions first), so per-window graph construction
// reuses the previous window's adjacency arenas. It returns g.
func (ix *WorkerIndex) BuildGraphInto(tasks []Task, g *match.Graph) *match.Graph {
	g.Reset(len(tasks), len(ix.workers))
	if len(tasks) == 0 || len(ix.workers) == 0 {
		return g
	}
	for ti := range tasks {
		ix.buf = ix.Candidates(tasks[ti].Origin, ix.buf[:0])
		for _, wi := range ix.buf {
			g.AddEdge(ti, wi)
		}
	}
	return g
}

// GroupByCell buckets the period's tasks into per-cell local markets, each
// with task indices sorted by distance descending (the order Eq. (1)'s
// supply curve consumes them). Cells without tasks are absent from the map.
func GroupByCell(in *Instance, tasks []Task) map[int]*GridDemand {
	out := make(map[int]*GridDemand)
	space := in.Spatial()
	for ti := range tasks {
		c := space.CellOf(tasks[ti].Origin)
		gd, ok := out[c]
		if !ok {
			gd = &GridDemand{Cell: c}
			out[c] = gd
		}
		gd.Tasks = append(gd.Tasks, ti)
	}
	for _, gd := range out {
		sort.Slice(gd.Tasks, func(i, j int) bool {
			return tasks[gd.Tasks[i]].Distance > tasks[gd.Tasks[j]].Distance
		})
	}
	return out
}
