package market

import (
	"math/bits"
	"sort"

	"spatialcrowd/internal/geo"
	"spatialcrowd/internal/kdtree"
	"spatialcrowd/internal/match"
	"spatialcrowd/internal/spatial"
)

// BuildBipartite constructs the probabilistic bipartite graph B^t of
// Section 2.2 for one period: left vertices are the given tasks, right
// vertices the given workers, with an edge whenever the worker's range
// constraint admits the task. Complexity O(|R| * |W|) pairwise; use
// BuildBipartiteIndexed for large instances.
func BuildBipartite(tasks []Task, workers []Worker) *match.Graph {
	g := match.NewGraph(len(tasks), len(workers))
	for wi, w := range workers {
		r2 := w.Radius * w.Radius
		for ti := range tasks {
			if tasks[ti].Origin.SqDist(w.Loc) <= r2 {
				g.AddEdge(ti, wi)
			}
		}
	}
	return g
}

// BuildBipartiteIndexed is BuildBipartite accelerated by the instance's
// spatial cell index. Workers are bucketed by cell once; each task then
// distance-tests only the workers in cells intersecting the disk of the
// period's maximum radius around its origin. Since a period has far fewer
// tasks than there are accumulated idle workers, the task-centric scan keeps
// edge generation near-linear, which is what makes the 500k-scale experiment
// (Fig. 8 scalability) tractable.
func BuildBipartiteIndexed(in *Instance, tasks []Task, workers []Worker) *match.Graph {
	return BuildBipartiteCellIndex(in.Spatial(), tasks, workers)
}

// BuildBipartiteCellIndex is BuildBipartiteIndexed against a bare spatial
// backend (no Instance required). The streaming engine uses it in
// cell-index mode: candidate enumeration — and therefore adjacency order,
// which steers tie breaks in the greedy matching — is byte-identical to the
// offline simulator's, the property the exact replay-equivalence tests pin.
func BuildBipartiteCellIndex(space spatial.Space, tasks []Task, workers []Worker) *match.Graph {
	return BuildBipartiteCellIndexScratch(space, tasks, workers, nil)
}

// CellIndexScratch is reusable working state for the cell-index graph
// builder: the worker-by-cell buckets, the per-task candidate-cell buffer,
// and the graph itself survive across batches, so a caller building one
// graph per pricing window allocates nothing in steady state. One instance
// serves one goroutine.
type CellIndexScratch struct {
	graph  *match.Graph
	byCell map[int][]int
	used   []int // cells with a non-empty bucket this batch
	cells  []int // candidate-cell buffer
}

// BuildBipartiteCellIndexScratch is BuildBipartiteCellIndex with
// caller-owned scratch state. A nil scratch allocates fresh state. The
// returned graph is backed by the scratch and valid until its next use;
// candidate enumeration order — and therefore adjacency order — is
// byte-identical to BuildBipartiteCellIndex's.
func BuildBipartiteCellIndexScratch(space spatial.Space, tasks []Task, workers []Worker, sc *CellIndexScratch) *match.Graph {
	if sc == nil {
		sc = &CellIndexScratch{}
	}
	if sc.graph == nil {
		sc.graph = match.NewGraph(len(tasks), len(workers))
	} else {
		sc.graph.Reset(len(tasks), len(workers))
	}
	g := sc.graph
	if len(tasks) == 0 || len(workers) == 0 {
		return g
	}
	if sc.byCell == nil {
		sc.byCell = make(map[int][]int)
	}
	for _, c := range sc.used {
		sc.byCell[c] = sc.byCell[c][:0]
	}
	sc.used = sc.used[:0]
	maxR := 0.0
	for wi := range workers {
		c := space.CellOf(workers[wi].Loc)
		b := sc.byCell[c]
		if len(b) == 0 {
			sc.used = append(sc.used, c)
		}
		sc.byCell[c] = append(b, wi)
		if workers[wi].Radius > maxR {
			maxR = workers[wi].Radius
		}
	}
	for ti := range tasks {
		origin := tasks[ti].Origin
		sc.cells = space.CellsInRangeAppend(origin, maxR, sc.cells[:0])
		for _, cell := range sc.cells {
			for _, wi := range sc.byCell[cell] {
				w := &workers[wi]
				if origin.SqDist(w.Loc) <= w.Radius*w.Radius {
					g.AddEdge(ti, wi)
				}
			}
		}
	}
	return g
}

// BuildBipartiteKD constructs the same graph as BuildBipartite using a k-d
// tree over worker locations: each task radius-queries the tree at the
// period's maximum worker radius and distance-tests the candidates. Unlike
// the grid index, pruning quality does not depend on the grid resolution,
// which makes this variant preferable when worker radii are small relative
// to grid cells or when no grid exists at all.
func BuildBipartiteKD(tasks []Task, workers []Worker) *match.Graph {
	return NewWorkerIndex(workers).BuildGraph(tasks)
}

// WorkerIndex is a k-d tree over a worker pool for repeated range-candidate
// queries. The streaming dispatch engine builds one per pricing batch and
// uses it both to generate the batch's bipartite edges and to answer
// ad-hoc "who can serve this origin" lookups without rescanning the pool.
//
// Two maintenance modes share the same query API. Reindex rebuilds a static
// tree from scratch every batch. Update diffs the batch against the
// previously indexed pool by worker ID and applies only the delta to a
// dynamic (scapegoat) tree, falling back to a full rebuild when churn
// exceeds updateRebuildFrac of the pool; under low churn this replaces the
// per-window O(n log^2 n) rebuild with O(churn * log n) tree updates.
// Candidate order is identical in both modes (ascending pool index), so a
// caller may switch between them without perturbing adjacency order.
type WorkerIndex struct {
	workers []Worker
	tree    *kdtree.Tree
	maxR    float64
	pts     []geo.Point // reused coordinate buffer for Reindex
	buf     []int       // reused candidate buffer for BuildGraphInto

	// Incremental mode (Update). The dynamic tree stores stable slot
	// numbers, not batch indices: the engine's pool uses swap-delete, so a
	// worker's position moves even when the worker does not. Per batch the
	// slotBatch table translates slots back to pool indices.
	dyn       *kdtree.DynamicTree
	dynMode   bool        // whether the last build used the dynamic tree
	slotOf    map[int]int // worker ID -> slot
	slotID    []int       // slot -> worker ID
	slotLoc   []geo.Point // slot -> indexed location
	slotUsed  []bool      // slot -> live
	slotSeen  []uint32    // slot -> epoch of last batch containing it
	slotBatch []int       // slot -> pool index in the current batch
	slotFree  []int       // recycled slot numbers
	epoch     uint32
	liveSlots int
	movedBuf  []int    // batch indices whose location changed
	freshBuf  []int    // batch indices absent from the registry
	markWords []uint64 // reused bitmap for ascending candidate emission
	stats     IndexStats
}

// IndexStats counts how Update maintained the index: batches applied as
// deltas versus batches that fell back to a full rebuild (high churn,
// duplicate IDs, or the initial build).
type IndexStats struct {
	Incremental int64
	Rebuilds    int64
}

// Stats returns the cumulative maintenance counters.
func (ix *WorkerIndex) Stats() IndexStats { return ix.stats }

// updateRebuildFrac is the churn fraction (moves + arrivals + departures
// over the larger of the old and new pool sizes) above which Update prefers
// a full rebuild: past roughly a quarter of the pool the delta path does
// more pointer-chasing than one bulk build.
const updateRebuildFrac = 0.25

// NewWorkerIndex indexes the pool. The slice is retained (not copied); the
// caller must not mutate worker locations while the index is in use.
func NewWorkerIndex(workers []Worker) *WorkerIndex {
	ix := &WorkerIndex{}
	ix.Reindex(workers)
	return ix
}

// Reindex rebuilds the index in place over a new pool, reusing the k-d
// tree's node arena and the coordinate buffer. The streaming engine calls it
// once per pricing batch; in steady state a reindex allocates nothing.
func (ix *WorkerIndex) Reindex(workers []Worker) {
	if cap(ix.pts) >= len(workers) {
		ix.pts = ix.pts[:len(workers)]
	} else {
		ix.pts = make([]geo.Point, len(workers))
	}
	maxR := 0.0
	for i := range workers {
		ix.pts[i] = workers[i].Loc
		if workers[i].Radius > maxR {
			maxR = workers[i].Radius
		}
	}
	ix.workers = workers
	ix.maxR = maxR
	ix.dynMode = false
	if ix.tree == nil {
		ix.tree = kdtree.Build(ix.pts, nil)
	} else {
		ix.tree.Rebuild(ix.pts, nil)
	}
}

// Update indexes the pool like Reindex but incrementally: the batch is
// diffed against the previously indexed pool by worker ID, and only moved,
// arrived, and departed workers touch the tree. High churn (or duplicate
// IDs in the batch, which the slot registry cannot represent) falls back to
// a bulk rebuild. The resulting candidate sets are identical to Reindex's.
func (ix *WorkerIndex) Update(workers []Worker) {
	maxR := 0.0
	for i := range workers {
		if workers[i].Radius > maxR {
			maxR = workers[i].Radius
		}
	}
	ix.maxR = maxR
	if ix.dyn == nil {
		ix.dyn = kdtree.NewDynamicTree()
		ix.slotOf = make(map[int]int, len(workers))
	}
	ix.epoch++
	prevLive := ix.liveSlots
	if !ix.dynMode {
		// The registry does not describe the last build (Reindex ran, or
		// this is the first batch); start from a bulk load.
		ix.rebuildDynamic(workers)
		return
	}

	// Pass 1: classify the batch against the registry without touching the
	// tree, so the churn threshold can still choose the bulk path.
	moved, fresh, matched := ix.movedBuf[:0], ix.freshBuf[:0], 0
	dup := false
	for i := range workers {
		w := &workers[i]
		slot, ok := ix.slotOf[w.ID]
		if ok && ix.slotSeen[slot] == ix.epoch {
			dup = true
			break
		}
		if ok {
			ix.slotSeen[slot] = ix.epoch
			ix.slotBatch[slot] = i
			matched++
			if ix.slotLoc[slot] != w.Loc {
				moved = append(moved, i)
			}
		} else {
			fresh = append(fresh, i)
		}
	}
	ix.movedBuf, ix.freshBuf = moved, fresh
	departed := prevLive - matched
	churn := len(moved) + len(fresh) + departed
	scale := len(workers)
	if prevLive > scale {
		scale = prevLive
	}
	if dup || scale == 0 || float64(churn) > updateRebuildFrac*float64(scale) {
		ix.rebuildDynamic(workers)
		return
	}

	// Pass 2: apply the delta. Departures first so a freed slot can be
	// recycled by an arrival in the same batch.
	ix.workers = workers
	if departed > 0 {
		for slot, used := range ix.slotUsed {
			if used && ix.slotSeen[slot] != ix.epoch {
				ix.dyn.Delete(ix.slotLoc[slot], slot)
				delete(ix.slotOf, ix.slotID[slot])
				ix.slotUsed[slot] = false
				ix.slotFree = append(ix.slotFree, slot)
			}
		}
	}
	for _, i := range moved {
		w := &workers[i]
		slot := ix.slotOf[w.ID]
		ix.dyn.Delete(ix.slotLoc[slot], slot)
		ix.dyn.Insert(w.Loc, slot)
		ix.slotLoc[slot] = w.Loc
	}
	for _, i := range fresh {
		w := &workers[i]
		slot := ix.allocSlot(w.ID, w.Loc)
		ix.slotSeen[slot] = ix.epoch
		ix.slotBatch[slot] = i
		ix.dyn.Insert(w.Loc, slot)
	}
	ix.liveSlots = len(workers)
	ix.stats.Incremental++
}

// rebuildDynamic bulk-loads the dynamic tree and resets the slot registry
// to slot == batch index. Duplicate IDs are tolerated: each occurrence gets
// its own slot (the map keeps the last), so the candidate sets stay exact;
// the inflated diff next batch simply lands on this path again.
func (ix *WorkerIndex) rebuildDynamic(workers []Worker) {
	n := len(workers)
	if cap(ix.pts) >= n {
		ix.pts = ix.pts[:n]
	} else {
		ix.pts = make([]geo.Point, n)
	}
	for k := range ix.slotOf {
		delete(ix.slotOf, k)
	}
	ix.slotID = resizeInts(ix.slotID, n)
	ix.slotLoc = ix.slotLoc[:0]
	ix.slotUsed = ix.slotUsed[:0]
	ix.slotSeen = ix.slotSeen[:0]
	ix.slotBatch = resizeInts(ix.slotBatch, n)
	ix.slotFree = ix.slotFree[:0]
	for i := range workers {
		w := &workers[i]
		ix.pts[i] = w.Loc
		ix.slotOf[w.ID] = i
		ix.slotID[i] = w.ID
		ix.slotLoc = append(ix.slotLoc, w.Loc)
		ix.slotUsed = append(ix.slotUsed, true)
		ix.slotSeen = append(ix.slotSeen, ix.epoch)
		ix.slotBatch[i] = i
	}
	ix.dyn.Bulk(ix.pts, nil)
	ix.workers = workers
	ix.liveSlots = n
	ix.dynMode = true
	ix.stats.Rebuilds++
}

// allocSlot registers a new worker, recycling freed slot numbers.
func (ix *WorkerIndex) allocSlot(id int, loc geo.Point) int {
	if n := len(ix.slotFree); n > 0 {
		slot := ix.slotFree[n-1]
		ix.slotFree = ix.slotFree[:n-1]
		ix.slotOf[id] = slot
		ix.slotID[slot] = id
		ix.slotLoc[slot] = loc
		ix.slotUsed[slot] = true
		return slot
	}
	slot := len(ix.slotID)
	ix.slotOf[id] = slot
	ix.slotID = append(ix.slotID, id)
	ix.slotLoc = append(ix.slotLoc, loc)
	ix.slotUsed = append(ix.slotUsed, true)
	ix.slotSeen = append(ix.slotSeen, 0)
	ix.slotBatch = append(ix.slotBatch, 0)
	return slot
}

func resizeInts(p []int, n int) []int {
	if cap(p) >= n {
		return p[:n]
	}
	return make([]int, n)
}

// Len returns the number of indexed workers.
func (ix *WorkerIndex) Len() int { return len(ix.workers) }

// Candidates appends to out the pool indices of every worker whose range
// constraint admits a task at origin, and returns the extended slice. Pass a
// reused buffer to stay allocation-free across queries; candidates beyond
// the buffer's capacity still grow it as usual. Candidates are returned in
// ascending pool order regardless of maintenance mode, so adjacency order —
// which steers tie breaks in the greedy matching — cannot drift between
// Reindex and Update builds of the same pool.
func (ix *WorkerIndex) Candidates(origin geo.Point, out []int) []int {
	from := len(out)
	keep := from
	if ix.dynMode {
		out = ix.dyn.InRadiusAppend(origin, ix.maxR, out)
		// The dynamic tree yields slots; translate to this batch's pool
		// indices and filter by each worker's own radius.
		for _, slot := range out[from:] {
			wi := ix.slotBatch[slot]
			w := &ix.workers[wi]
			if origin.SqDist(w.Loc) <= w.Radius*w.Radius {
				out[keep] = wi
				keep++
			}
		}
	} else {
		out = ix.tree.InRadiusAppend(origin, ix.maxR, out)
		// Filter each candidate by its own radius in place (the tree query
		// used the pool-wide maximum).
		for _, wi := range out[from:] {
			w := &ix.workers[wi]
			if origin.SqDist(w.Loc) <= w.Radius*w.Radius {
				out[keep] = wi
				keep++
			}
		}
	}
	out = out[:keep]
	ix.ascending(out[from:])
	return out
}

// ascending reorders a query's candidate pool indices into ascending order.
// A comparison sort here costs more than the tree query it follows, so the
// candidates — distinct integers below the pool size — are scattered into a
// reused bitmap and re-emitted by scanning the touched word range: O(k +
// (max-min)/64) per query instead of O(k log k), with the bitmap left zeroed
// for the next call.
func (ix *WorkerIndex) ascending(cand []int) {
	n := len(cand)
	if n <= 12 {
		for i := 1; i < n; i++ {
			v := cand[i]
			j := i - 1
			for j >= 0 && cand[j] > v {
				cand[j+1] = cand[j]
				j--
			}
			cand[j+1] = v
		}
		return
	}
	words := (len(ix.workers) + 63) / 64
	if cap(ix.markWords) < words {
		ix.markWords = make([]uint64, words)
	}
	mark := ix.markWords[:words]
	lo, hi := cand[0], cand[0]
	for _, wi := range cand {
		mark[wi>>6] |= 1 << (uint(wi) & 63)
		if wi < lo {
			lo = wi
		}
		if wi > hi {
			hi = wi
		}
	}
	k := 0
	for w := lo >> 6; w <= hi>>6; w++ {
		b := mark[w]
		mark[w] = 0
		for b != 0 {
			cand[k] = w<<6 + bits.TrailingZeros64(b)
			k++
			b &= b - 1
		}
	}
}

// BuildGraph constructs the bipartite graph of the given tasks against the
// indexed pool: the same edge set as BuildBipartite, generated by k-d tree
// radius queries instead of a pairwise scan.
func (ix *WorkerIndex) BuildGraph(tasks []Task) *match.Graph {
	return ix.BuildGraphInto(tasks, match.NewGraph(len(tasks), len(ix.workers)))
}

// BuildGraphInto is BuildGraph appending edges into a caller-reused graph
// (reset to the batch's dimensions first), so per-window graph construction
// reuses the previous window's adjacency arenas. It returns g.
func (ix *WorkerIndex) BuildGraphInto(tasks []Task, g *match.Graph) *match.Graph {
	g.Reset(len(tasks), len(ix.workers))
	if len(tasks) == 0 || len(ix.workers) == 0 {
		return g
	}
	for ti := range tasks {
		ix.buf = ix.Candidates(tasks[ti].Origin, ix.buf[:0])
		for _, wi := range ix.buf {
			g.AddEdge(ti, wi)
		}
	}
	return g
}

// GroupByCell buckets the period's tasks into per-cell local markets, each
// with task indices sorted by distance descending (the order Eq. (1)'s
// supply curve consumes them). Cells without tasks are absent from the map.
func GroupByCell(in *Instance, tasks []Task) map[int]*GridDemand {
	out := make(map[int]*GridDemand)
	space := in.Spatial()
	for ti := range tasks {
		c := space.CellOf(tasks[ti].Origin)
		gd, ok := out[c]
		if !ok {
			gd = &GridDemand{Cell: c}
			out[c] = gd
		}
		gd.Tasks = append(gd.Tasks, ti)
	}
	//lint:ordered each bucket is sorted in place; buckets are disjoint
	for _, gd := range out {
		sort.Slice(gd.Tasks, func(i, j int) bool {
			return tasks[gd.Tasks[i]].Distance > tasks[gd.Tasks[j]].Distance
		})
	}
	return out
}
