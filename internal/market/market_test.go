package market

import (
	"math/rand"
	"testing"

	"spatialcrowd/internal/geo"
	"spatialcrowd/internal/stats"
)

func TestWorkerActiveAt(t *testing.T) {
	tests := []struct {
		name   string
		w      Worker
		t      int
		active bool
	}{
		{"before arrival", Worker{Period: 5, Duration: 3}, 4, false},
		{"at arrival", Worker{Period: 5, Duration: 3}, 5, true},
		{"mid duration", Worker{Period: 5, Duration: 3}, 7, true},
		{"after lapse", Worker{Period: 5, Duration: 3}, 8, false},
		{"zero duration means one period", Worker{Period: 5}, 5, true},
		{"zero duration next period", Worker{Period: 5}, 6, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.w.ActiveAt(tt.t); got != tt.active {
				t.Errorf("ActiveAt(%d) = %v, want %v", tt.t, got, tt.active)
			}
		})
	}
}

func TestTaskAcceptsBoundary(t *testing.T) {
	task := Task{Valuation: 3}
	if !task.Accepts(3) {
		t.Error("p == v must accept (R' has p_r <= v_r)")
	}
	if task.Accepts(3.0001) {
		t.Error("p > v must reject")
	}
	if task.Revenue(2) != task.Distance*2 {
		t.Error("revenue must be d_r * p")
	}
}

func TestInstanceValidate(t *testing.T) {
	grid := geo.SquareGrid(10, 2)
	good := &Instance{Grid: grid, Periods: 2,
		Tasks:   []Task{{Period: 1, Distance: 1}},
		Workers: []Worker{{Period: 0, Radius: 1}}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mut  func(*Instance)
	}{
		{"zero periods", func(in *Instance) { in.Periods = 0 }},
		{"task period out of range", func(in *Instance) { in.Tasks[0].Period = 5 }},
		{"negative distance", func(in *Instance) { in.Tasks[0].Distance = -1 }},
		{"worker period out of range", func(in *Instance) { in.Workers[0].Period = -1 }},
		{"zero radius", func(in *Instance) { in.Workers[0].Radius = 0 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			in := &Instance{Grid: grid, Periods: 2,
				Tasks:   []Task{{Period: 1, Distance: 1}},
				Workers: []Worker{{Period: 0, Radius: 1}}}
			c.mut(in)
			if err := in.Validate(); err == nil {
				t.Error("want validation error")
			}
		})
	}
}

func TestBucketing(t *testing.T) {
	grid := geo.SquareGrid(10, 2)
	in := &Instance{Grid: grid, Periods: 3,
		Tasks: []Task{
			{ID: 0, Period: 0}, {ID: 1, Period: 2}, {ID: 2, Period: 0},
		},
		Workers: []Worker{{ID: 0, Period: 1, Radius: 1}},
	}
	byP := in.TasksByPeriod()
	if len(byP[0]) != 2 || len(byP[1]) != 0 || len(byP[2]) != 1 {
		t.Errorf("TasksByPeriod sizes %d/%d/%d", len(byP[0]), len(byP[1]), len(byP[2]))
	}
	byW := in.WorkersByStart()
	if len(byW[1]) != 1 || len(byW[0]) != 0 {
		t.Error("WorkersByStart wrong")
	}
}

func TestBuildBipartitePaperExample(t *testing.T) {
	tasks := []Task{
		{ID: 0, Origin: geo.Point{X: 1, Y: 5}, Distance: 1.3},
		{ID: 1, Origin: geo.Point{X: 1.5, Y: 5.5}, Distance: 0.7},
		{ID: 2, Origin: geo.Point{X: 5, Y: 5}, Distance: 1.0},
	}
	workers := []Worker{
		{ID: 0, Loc: geo.Point{X: 3, Y: 5}, Radius: 2.5},
		{ID: 1, Loc: geo.Point{X: 7, Y: 5}, Radius: 2.5},
		{ID: 2, Loc: geo.Point{X: 5, Y: 3}, Radius: 2.5},
	}
	g := BuildBipartite(tasks, workers)
	if len(g.Adj(0)) != 1 || len(g.Adj(1)) != 1 || len(g.Adj(2)) != 3 {
		t.Errorf("degrees %d/%d/%d, want 1/1/3 (Figure 1b)",
			len(g.Adj(0)), len(g.Adj(1)), len(g.Adj(2)))
	}
}

func TestBuildBipartiteIndexedMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	grid := geo.SquareGrid(100, 10)
	for trial := 0; trial < 30; trial++ {
		in := &Instance{Grid: grid, Periods: 1}
		nt, nw := rng.Intn(40), rng.Intn(40)
		tasks := make([]Task, nt)
		for i := range tasks {
			tasks[i] = Task{ID: i, Origin: geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}}
		}
		workers := make([]Worker, nw)
		for i := range workers {
			workers[i] = Worker{ID: i,
				Loc:    geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100},
				Radius: 2 + rng.Float64()*25}
		}
		naive := BuildBipartite(tasks, workers)
		indexed := BuildBipartiteIndexed(in, tasks, workers)
		if naive.NumEdges() != indexed.NumEdges() {
			t.Fatalf("trial %d: edge counts differ: %d vs %d",
				trial, naive.NumEdges(), indexed.NumEdges())
		}
		for l := 0; l < nt; l++ {
			for _, r := range naive.Adj(l) {
				if !indexed.HasEdge(l, r) {
					t.Fatalf("trial %d: indexed graph missing edge (%d,%d)", trial, l, r)
				}
			}
		}
	}
}

func TestGroupByCellSortsByDistance(t *testing.T) {
	grid := geo.SquareGrid(10, 1)
	in := &Instance{Grid: grid, Periods: 1}
	tasks := []Task{
		{ID: 0, Origin: geo.Point{X: 1, Y: 1}, Distance: 2},
		{ID: 1, Origin: geo.Point{X: 2, Y: 2}, Distance: 5},
		{ID: 2, Origin: geo.Point{X: 3, Y: 3}, Distance: 3},
	}
	groups := GroupByCell(in, tasks)
	if len(groups) != 1 {
		t.Fatalf("groups = %v", groups)
	}
	got := groups[0].Tasks
	want := []int{1, 2, 0} // distances 5, 3, 2
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestAssignValuations(t *testing.T) {
	grid := geo.SquareGrid(10, 2)
	tasks := []Task{
		{Origin: geo.Point{X: 1, Y: 1}},
		{Origin: geo.Point{X: 9, Y: 9}},
	}
	model := PerCellModel{
		Cells:   map[int]stats.Dist{0: stats.PointMass{V: 2}},
		Default: stats.PointMass{V: 4},
	}
	AssignValuations(tasks, grid, model, rand.New(rand.NewSource(1)))
	if tasks[0].Valuation != 2 || tasks[1].Valuation != 4 {
		t.Errorf("valuations %v/%v, want 2/4", tasks[0].Valuation, tasks[1].Valuation)
	}
}

func TestUniformModel(t *testing.T) {
	m := UniformModel{D: stats.PointMass{V: 3}}
	if m.Dist(0) != m.Dist(99) {
		t.Error("uniform model should ignore the cell")
	}
}

func TestBuildBipartiteKDMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		nt, nw := rng.Intn(50), rng.Intn(50)
		tasks := make([]Task, nt)
		for i := range tasks {
			tasks[i] = Task{ID: i, Origin: geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}}
		}
		workers := make([]Worker, nw)
		for i := range workers {
			workers[i] = Worker{ID: i,
				Loc:    geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100},
				Radius: 1 + rng.Float64()*30}
		}
		naive := BuildBipartite(tasks, workers)
		kd := BuildBipartiteKD(tasks, workers)
		if naive.NumEdges() != kd.NumEdges() {
			t.Fatalf("trial %d: edges %d vs %d", trial, naive.NumEdges(), kd.NumEdges())
		}
		for l := 0; l < nt; l++ {
			for _, r := range naive.Adj(l) {
				if !kd.HasEdge(l, r) {
					t.Fatalf("trial %d: kd graph missing edge (%d,%d)", trial, l, r)
				}
			}
		}
	}
}

func TestWorkerIndexMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 30; trial++ {
		nt, nw := rng.Intn(50), rng.Intn(50)
		tasks := make([]Task, nt)
		for i := range tasks {
			tasks[i] = Task{ID: i, Origin: geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}}
		}
		workers := make([]Worker, nw)
		for i := range workers {
			workers[i] = Worker{ID: i,
				Loc:    geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100},
				Radius: 1 + rng.Float64()*30}
		}
		ix := NewWorkerIndex(workers)
		if ix.Len() != nw {
			t.Fatalf("trial %d: index len %d, want %d", trial, ix.Len(), nw)
		}
		naive := BuildBipartite(tasks, workers)
		got := ix.BuildGraph(tasks)
		if naive.NumEdges() != got.NumEdges() {
			t.Fatalf("trial %d: edges %d vs %d", trial, naive.NumEdges(), got.NumEdges())
		}
		for l := 0; l < nt; l++ {
			for _, r := range naive.Adj(l) {
				if !got.HasEdge(l, r) {
					t.Fatalf("trial %d: index graph missing edge (%d,%d)", trial, l, r)
				}
			}
		}
	}
}

func TestWorkerIndexCandidates(t *testing.T) {
	workers := []Worker{
		{ID: 0, Loc: geo.Point{X: 10, Y: 10}, Radius: 5},
		{ID: 1, Loc: geo.Point{X: 20, Y: 10}, Radius: 2},
		{ID: 2, Loc: geo.Point{X: 50, Y: 50}, Radius: 5},
	}
	ix := NewWorkerIndex(workers)
	got := ix.Candidates(geo.Point{X: 12, Y: 10}, nil)
	// Worker 0 (distance 2 <= 5) qualifies; worker 1 (distance 8 > 2) and
	// worker 2 (far away) do not.
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("candidates = %v, want [0]", got)
	}
	buf := got[:0]
	if got2 := ix.Candidates(geo.Point{X: 0, Y: 0}, buf); len(got2) != 0 {
		t.Fatalf("candidates at origin = %v, want none", got2)
	}
}
