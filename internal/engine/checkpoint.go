package engine

// Engine checkpoint/restore: crash-safe serialization of the complete
// market state — worker pools (with arrival order), open pricing windows,
// pending quoted batches (prices, requester replies, and the provisional
// matching), the router's lifecycle table and quote routes, every aggregate
// counter, and each shard's strategy state (core.StateSnapshotter).
//
// Exactness contract: checkpointing a deterministic engine, restoring the
// file into a fresh engine with the same configuration, and resuming the
// identical event stream reproduces the uninterrupted run's revenue and
// lifecycle ledger bit for bit. Sharded engines get the same guarantee for
// a fixed event order and unchanged shard layout.
//
// Re-sharding: a checkpoint may also be restored onto a different shard
// count (including det -> sharded and back) as long as no quoted batch was
// pending. Workers and open tasks are re-homed by cell under the target
// engine's partitioner, and per-cell strategy state is merged across the
// recorded shards and re-filtered per target shard — pricing state travels
// with the workers of its cells. Totals are conserved; per-shard breakdowns
// (Stats.ShardRevenue/ShardTasks) restart at zero with prior revenue
// carried in the total.
//
// Not captured: decision-latency quantiles (wall-clock, meaningless across
// a restart) and the undrained Poll queue (the consumer's business —
// checkpoint after draining). Checkpoint files contain the open tasks'
// private valuations in AutoDecide (simulation replay) mode.

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"spatialcrowd/internal/core"
	"spatialcrowd/internal/geo"
	"spatialcrowd/internal/market"
	"spatialcrowd/internal/wal"
)

const checkpointVersion = 1

// checkpointFile is the serialized engine state (JSON).
type checkpointFile struct {
	Version         int  `json:"version"`
	Shards          int  `json:"shards"` // 0 = deterministic
	Window          int  `json:"window"`
	AutoDecide      bool `json:"auto_decide"`
	CellIndexGraphs bool `json:"cell_index_graphs"`
	Cells           int  `json:"cells"`
	// Partition fingerprints the cell -> shard map, so a restore onto the
	// same shard count but a different Partitioner is detected and re-homed
	// instead of silently installing pools the new routing will never hit.
	Partition uint64 `json:"partition_fingerprint"`
	// WALLSN is the write-ahead-log position this snapshot covers: every
	// event with LSN <= WALLSN is folded into the checkpointed state, so
	// recovery replays the tail strictly past it (RecoverWAL). Zero when
	// the engine ran without a WAL.
	WALLSN uint64 `json:"wal_lsn,omitempty"`

	RouterPeriod   int           `json:"router_period"`
	TaskRotated    int           `json:"task_rotated,omitempty"`
	TaskRoutes     []taskRouteCk `json:"task_routes,omitempty"`
	TaskRoutesPrev []taskRouteCk `json:"task_routes_prev,omitempty"`
	WorkerTable    []workerRowCk `json:"worker_table,omitempty"`

	Counters    countersCk `json:"counters"`
	ShardStates []shardCk  `json:"shard_states"`
}

type taskRouteCk struct {
	Task  int `json:"task"`
	Shard int `json:"shard"`
}

type workerRowCk struct {
	ID    int   `json:"id"`
	Shard int   `json:"shard"`
	Seen  int   `json:"seen"`
	State uint8 `json:"state"`
}

type countersCk struct {
	Events         int64 `json:"events"`
	Priced         int64 `json:"priced"`
	Quoted         int64 `json:"quoted"`
	Batches        int64 `json:"batches"`
	Late           int64 `json:"late"`
	StrategyErrors int64 `json:"strategy_errors,omitempty"`

	Onlines    int64 `json:"onlines"`
	Duplicates int64 `json:"duplicates"`
	Moves      int64 `json:"moves"`
	Pinned     int64 `json:"pinned"`
	Migrations int64 `json:"migrations"`
	Assigned   int64 `json:"assigned"`
	Expired    int64 `json:"expired"`
	Offline    int64 `json:"offline"`
	Pooled     int64 `json:"pooled"`

	Accepted       int64     `json:"accepted"`
	Served         int64     `json:"served"`
	ShardRevenue   []float64 `json:"shard_revenue"`
	ShardTasks     []int64   `json:"shard_tasks"`
	CarriedRevenue float64   `json:"carried_revenue,omitempty"`

	// Aggregate amortization-cache counters (Config.Amortize). Per-shard
	// attribution is not preserved across a restart: a fresh engine's
	// executors start with cold caches regardless of layout, so the totals
	// restore as carried values.
	CacheCtxHits       int64 `json:"cache_ctx_hits,omitempty"`
	CacheCtxMisses     int64 `json:"cache_ctx_misses,omitempty"`
	CachePriceHits     int64 `json:"cache_price_hits,omitempty"`
	CachePriceMisses   int64 `json:"cache_price_misses,omitempty"`
	CacheKDIncremental int64 `json:"cache_kd_incremental,omitempty"`
	CacheKDRebuilds    int64 `json:"cache_kd_rebuilds,omitempty"`
}

// shardCk is one shard's serialized market state. Workers are recorded in
// pool storage order together with their arrival sequence numbers, so the
// restored pool reproduces batch construction (and therefore matching tie
// breaks) exactly.
type shardCk struct {
	BatchStart int                 `json:"batch_start"`
	LastTick   int                 `json:"last_tick"`
	NextSeq    uint64              `json:"next_seq"`
	Workers    []market.Worker     `json:"workers,omitempty"`
	Seqs       []uint64            `json:"seqs,omitempty"`
	OpenTasks  []market.Task       `json:"open_tasks,omitempty"`
	Pending    *pendingCk          `json:"pending,omitempty"`
	Strategy   *core.StrategyState `json:"strategy,omitempty"`
}

// pendingCk is a quoted batch awaiting requester decisions: everything
// needed to rebuild the batch context and matcher deterministically. The
// graph itself is not stored — construction is deterministic, so it is
// rebuilt from the tasks and the stable worker copy.
type pendingCk struct {
	Period   int             `json:"period"`
	Tasks    []pendingTaskCk `json:"tasks"`
	Prices   []float64       `json:"prices"`
	Workers  []market.Worker `json:"workers"`
	Decided  []bool          `json:"decided"`
	Accepted []bool          `json:"accepted"`
	Pairs    [][2]int        `json:"pairs,omitempty"`   // provisional matching: task -> right
	Removed  []int           `json:"removed,omitempty"` // withdrawn right vertices
}

// pendingTaskCk is the strategy-visible task projection (quoted batches
// never touch private valuations).
type pendingTaskCk struct {
	ID       int       `json:"id"`
	Origin   geo.Point `json:"origin"`
	Dest     geo.Point `json:"dest"`
	Distance float64   `json:"distance"`
}

// Control payloads carried on Event.ctl.
type ctlCheckpoint struct{ reply chan ctlCheckpointReply }

type ctlCheckpointReply struct {
	file *checkpointFile
	err  error
}

type ctlShardCheckpoint struct {
	out  *shardCk
	done chan error
}

type ctlRestore struct {
	file  *checkpointFile
	exact bool // layout (shard count + partitioner) matches the checkpoint
	reply chan error
}

type ctlShardRestore struct {
	st   *shardCk
	done chan error
}

// Checkpoint serializes the engine's complete state to w. It must not be
// called concurrently with Submit or Close; in concurrent mode the request
// rides the event FIFO, so the snapshot reflects every event submitted
// before the call and the engine continues serving afterwards.
func (e *Engine) Checkpoint(w io.Writer) error {
	if e.closed.Load() {
		return ErrClosed
	}
	var f *checkpointFile
	if e.det != nil {
		st, err := e.det.checkpoint()
		if err != nil {
			return err
		}
		f = e.newCheckpointFile([]shardCk{st})
		f.RouterPeriod = e.det.lastTick
	} else {
		req := &ctlCheckpoint{reply: make(chan ctlCheckpointReply, 1)}
		e.in <- Event{Kind: kindCheckpoint, ctl: req}
		rep := <-req.reply
		if rep.err != nil {
			return rep.err
		}
		f = rep.file
	}
	if e.wal != nil {
		// No Submit runs concurrently (precondition), so the log's last LSN
		// is exactly the log position the snapshot folds in. Force it
		// durable before recording it: a snapshot must never claim coverage
		// of records a crash could still lose, or recovery from this
		// snapshot would skip replaying events whose effects it lacks.
		f.WALLSN = e.wal.LastLSN()
		if err := e.wal.Sync(); err != nil {
			return fmt.Errorf("engine: wal sync before checkpoint: %w", err)
		}
	}
	if err := json.NewEncoder(w).Encode(f); err != nil {
		return err
	}
	if e.wal != nil {
		// Drop a marker so the log itself records where snapshots were
		// taken; recovery skips it (state travels in the checkpoint file).
		var lsn [8]byte
		binary.LittleEndian.PutUint64(lsn[:], f.WALLSN)
		if _, err := e.wal.Append(wal.RecCheckpoint, lsn[:]); err != nil {
			return fmt.Errorf("engine: wal checkpoint marker: %w", err)
		}
	}
	return nil
}

// Restore loads a checkpoint into this engine. The engine must be freshly
// created — same Window, AutoDecide, CellIndexGraphs, and cell count as the
// checkpoint — with no events submitted yet. The shard layout (count and
// partitioner) may differ (see the re-sharding notes above) unless the
// checkpoint holds pending quoted batches. After Restore, resume the
// stream from RestoredPeriod() + 1. On error the engine is partially
// initialized and must be discarded, not retried or fed events.
//
// Corrupt input — truncated files, bit flips, wrong versions — returns a
// descriptive error, never a panic: every structural assumption is
// validated before use, and a recover guard backstops whatever validation
// cannot foresee (the corruption-matrix test drives both layers).
func (e *Engine) Restore(r io.Reader) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("engine: corrupt checkpoint: restore panicked: %v", p)
		}
	}()
	if e.closed.Load() {
		return ErrClosed
	}
	if e.restored || e.events.Load() != 0 {
		return fmt.Errorf("engine: Restore needs a fresh engine (state already present)")
	}
	var f checkpointFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return fmt.Errorf("engine: decoding checkpoint: %w", err)
	}
	if f.Version != checkpointVersion {
		return fmt.Errorf("engine: unsupported checkpoint version %d", f.Version)
	}
	if f.Window != e.cfg.Window || f.AutoDecide != e.cfg.AutoDecide || f.CellIndexGraphs != e.cfg.CellIndexGraphs {
		return fmt.Errorf("engine: checkpoint config mismatch: window %d/%d, autoDecide %v/%v, cellIndexGraphs %v/%v",
			f.Window, e.cfg.Window, f.AutoDecide, e.cfg.AutoDecide, f.CellIndexGraphs, e.cfg.CellIndexGraphs)
	}
	if f.Cells != e.space.NumCells() {
		return fmt.Errorf("engine: checkpoint has %d cells, engine space has %d", f.Cells, e.space.NumCells())
	}
	if len(f.ShardStates) != maxInt(f.Shards, 1) {
		return fmt.Errorf("engine: checkpoint has %d shard states for %d shards", len(f.ShardStates), f.Shards)
	}
	// Exact only when the full cell -> shard map matches: the same shard
	// count under a different Partitioner must re-home, not install pools
	// the new routing will never hit.
	exact := f.Shards == len(e.shards) && f.Partition == e.partitionFingerprint()
	if !exact {
		for i := range f.ShardStates {
			if f.ShardStates[i].Pending != nil {
				return fmt.Errorf("engine: cannot restore pending quoted batches onto a different shard layout (%d shards -> %d shards / new partitioner)",
					f.Shards, len(e.shards))
			}
		}
	}
	// Mark the engine used before touching any state: a failed restore
	// leaves it partially initialized, so it must be discarded, never
	// retried or fed events.
	e.restored = true
	if e.det != nil {
		st := &f.ShardStates[0]
		if !exact {
			states := e.reshard(&f)
			st = &states[0]
		}
		if err := e.det.restore(st); err != nil {
			return err
		}
	} else {
		req := &ctlRestore{file: &f, exact: exact, reply: make(chan error, 1)}
		e.in <- Event{Kind: kindRestore, ctl: req}
		if err := <-req.reply; err != nil {
			return err
		}
	}
	// Counters install last, so a failed restore cannot leave the
	// checkpoint's aggregates on an engine that holds no market state.
	if err := e.restoreCounters(&f, exact); err != nil {
		return err
	}
	e.restoredPeriod = f.RouterPeriod
	e.restoredWALLSN = f.WALLSN
	return nil
}

// partitionFingerprint hashes the engine's cell -> shard assignment
// (FNV-1a over shard indices in cell order; all zeros in deterministic
// mode).
func (e *Engine) partitionFingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for c, n := 0, e.space.NumCells(); c < n; c++ {
		s := 0
		if e.part != nil {
			s = e.part.ShardOf(c)
		}
		h ^= uint64(s)
		h *= prime64
	}
	return h
}

// RestoredPeriod reports the last tick period the restored checkpoint had
// processed (0 when the engine was not restored). Resuming a replay from
// RestoredPeriod() + 1 continues the interrupted stream.
func (e *Engine) RestoredPeriod() int { return e.restoredPeriod }

// restoreCounters installs the checkpoint's aggregate counters. On a
// re-shard, per-shard breakdowns restart and prior totals are carried.
func (e *Engine) restoreCounters(f *checkpointFile, exact bool) error {
	c := &f.Counters
	e.events.Store(c.Events)
	e.priced.Store(c.Priced)
	e.quoted.Store(c.Quoted)
	e.batches.Store(c.Batches)
	e.late.Store(c.Late)
	e.stratErrs.Store(c.StrategyErrors)
	e.lcOnlines.Store(c.Onlines)
	e.lcDuplicates.Store(c.Duplicates)
	e.lcMoves.Store(c.Moves)
	e.lcPinned.Store(c.Pinned)
	e.lcMigrations.Store(c.Migrations)
	e.lcAssigned.Store(c.Assigned)
	e.lcExpired.Store(c.Expired)
	e.lcOffline.Store(c.Offline)
	e.pooled.Store(c.Pooled)

	e.aggMu.Lock()
	defer e.aggMu.Unlock()
	e.accepted = c.Accepted
	e.served = c.Served
	e.carriedRevenue = c.CarriedRevenue
	e.carriedCache = CacheStats{
		CtxHits: c.CacheCtxHits, CtxMisses: c.CacheCtxMisses,
		PriceHits: c.CachePriceHits, PriceMisses: c.CachePriceMisses,
		KDIncremental: c.CacheKDIncremental, KDRebuilds: c.CacheKDRebuilds,
	}
	if exact {
		if len(c.ShardRevenue) != len(e.shardRevenue) || len(c.ShardTasks) != len(e.shardTasks) {
			return fmt.Errorf("engine: checkpoint has %d shard revenue entries, engine has %d",
				len(c.ShardRevenue), len(e.shardRevenue))
		}
		copy(e.shardRevenue, c.ShardRevenue)
		copy(e.shardTasks, c.ShardTasks)
		return nil
	}
	// Per-shard breakdowns restart on a re-shard; revenue is carried so
	// Stats.Revenue stays exact (TasksPriced is already a global counter).
	for _, r := range c.ShardRevenue {
		e.carriedRevenue += r
	}
	return nil
}

// newCheckpointFile assembles the config and counter sections common to
// both modes.
func (e *Engine) newCheckpointFile(states []shardCk) *checkpointFile {
	f := &checkpointFile{
		Version:         checkpointVersion,
		Shards:          len(e.shards),
		Window:          e.cfg.Window,
		AutoDecide:      e.cfg.AutoDecide,
		CellIndexGraphs: e.cfg.CellIndexGraphs,
		Cells:           e.space.NumCells(),
		Partition:       e.partitionFingerprint(),
		ShardStates:     states,
	}
	f.Counters = countersCk{
		Events:         e.events.Load(),
		Priced:         e.priced.Load(),
		Quoted:         e.quoted.Load(),
		Batches:        e.batches.Load(),
		Late:           e.late.Load(),
		StrategyErrors: e.stratErrs.Load(),
		Onlines:        e.lcOnlines.Load(),
		Duplicates:     e.lcDuplicates.Load(),
		Moves:          e.lcMoves.Load(),
		Pinned:         e.lcPinned.Load(),
		Migrations:     e.lcMigrations.Load(),
		Assigned:       e.lcAssigned.Load(),
		Expired:        e.lcExpired.Load(),
		Offline:        e.lcOffline.Load(),
		Pooled:         e.pooled.Load(),
	}
	e.aggMu.Lock()
	f.Counters.Accepted = e.accepted
	f.Counters.Served = e.served
	f.Counters.ShardRevenue = append([]float64(nil), e.shardRevenue...)
	f.Counters.ShardTasks = append([]int64(nil), e.shardTasks...)
	f.Counters.CarriedRevenue = e.carriedRevenue
	cache := e.carriedCache
	for _, c := range e.shardCache {
		cache = cache.Add(c)
	}
	e.aggMu.Unlock()
	f.Counters.CacheCtxHits = cache.CtxHits
	f.Counters.CacheCtxMisses = cache.CtxMisses
	f.Counters.CachePriceHits = cache.PriceHits
	f.Counters.CachePriceMisses = cache.PriceMisses
	f.Counters.CacheKDIncremental = cache.KDIncremental
	f.Counters.CacheKDRebuilds = cache.KDRebuilds
	return f
}

// routerCheckpoint runs in the router goroutine: barrier every shard (each
// serializes its state and flushes its lifecycle notes), fold the notes
// into the worker table, and serialize the router-owned routing state.
func (e *Engine) routerCheckpoint(req *ctlCheckpoint) {
	states := make([]shardCk, len(e.shards))
	for i, s := range e.shards {
		sub := &ctlShardCheckpoint{out: &states[i], done: make(chan error, 1)}
		s.in <- Event{Kind: kindCheckpoint, ctl: sub}
		if err := <-sub.done; err != nil {
			req.reply <- ctlCheckpointReply{err: err}
			return
		}
	}
	e.applyNotes()
	f := e.newCheckpointFile(states)
	f.RouterPeriod = e.routerPeriod
	f.TaskRotated = e.taskRotated
	f.TaskRoutes = routesCk(e.taskShardCur)
	f.TaskRoutesPrev = routesCk(e.taskShardPrev)
	for _, id := range sortedKeys(e.workers.m) {
		ent := e.workers.m[id]
		f.WorkerTable = append(f.WorkerTable, workerRowCk{
			ID: id, Shard: ent.shard, Seen: ent.seen, State: uint8(ent.state)})
	}
	req.reply <- ctlCheckpointReply{file: f}
}

// routerRestore runs in the router goroutine: install the routing state and
// forward each shard its section (re-homed first when the layout changed).
// The panic guard turns corrupt-checkpoint surprises into a Restore error
// instead of killing the router.
func (e *Engine) routerRestore(req *ctlRestore) {
	defer func() {
		if p := recover(); p != nil {
			req.reply <- fmt.Errorf("engine: corrupt checkpoint: router restore panicked: %v", p)
		}
	}()
	f := req.file
	exact := req.exact
	e.routerPeriod = f.RouterPeriod
	e.taskRotated = f.TaskRotated
	e.taskShardCur = make(map[int]int, len(f.TaskRoutes))
	e.taskShardPrev = make(map[int]int, len(f.TaskRoutesPrev))
	e.workers = newWorkerTable()

	states := f.ShardStates
	if exact {
		for _, tr := range f.TaskRoutes {
			e.taskShardCur[tr.Task] = tr.Shard
		}
		for _, tr := range f.TaskRoutesPrev {
			e.taskShardPrev[tr.Task] = tr.Shard
		}
		for _, row := range f.WorkerTable {
			e.workers.set(row.ID, workerEntry{shard: row.Shard, seen: row.Seen, state: WorkerState(row.State)})
		}
	} else {
		// Re-homed layout: quote routes are unanswerable (no pendings were
		// allowed) and the table is rebuilt from the re-homed pools.
		states = e.reshard(f)
		for si := range states {
			for _, w := range states[si].Workers {
				e.workers.set(w.ID, workerEntry{shard: si, seen: f.RouterPeriod, state: StateOnline})
			}
		}
	}
	for i, s := range e.shards {
		sub := &ctlShardRestore{st: &states[i], done: make(chan error, 1)}
		s.in <- Event{Kind: kindRestore, ctl: sub}
		if err := <-sub.done; err != nil {
			req.reply <- err
			return
		}
	}
	e.syncTableGauges()
	req.reply <- nil
}

// reshard re-homes a checkpoint onto this engine's shard layout: workers
// and open tasks move to the shard owning their cell, arrival order within
// each target shard follows the recorded shard/pool order, and per-cell
// strategy state is merged across the recorded shards and filtered per
// target shard — pricing state travels with the workers of its cells.
func (e *Engine) reshard(f *checkpointFile) []shardCk {
	n := maxInt(len(e.shards), 1)
	out := make([]shardCk, n)
	ownerOf := func(cell int) int {
		if e.part == nil {
			return 0
		}
		return e.part.ShardOf(cell)
	}
	batchStart, lastTick := 0, 0
	var parts []core.StrategyState
	for i := range f.ShardStates {
		st := &f.ShardStates[i]
		if st.BatchStart > batchStart {
			batchStart = st.BatchStart
		}
		if st.LastTick > lastTick {
			lastTick = st.LastTick
		}
		if st.Strategy != nil {
			parts = append(parts, *st.Strategy)
		}
		for _, w := range st.Workers {
			tgt := &out[ownerOf(e.space.CellOf(w.Loc))]
			tgt.Workers = append(tgt.Workers, w)
			tgt.Seqs = append(tgt.Seqs, tgt.NextSeq)
			tgt.NextSeq++
		}
		for _, t := range st.OpenTasks {
			tgt := &out[ownerOf(e.space.CellOf(t.Origin))]
			tgt.OpenTasks = append(tgt.OpenTasks, t)
		}
	}
	merged := core.MergeStrategyStates(parts)
	for i := range out {
		out[i].BatchStart = batchStart
		out[i].LastTick = lastTick
		if len(parts) > 0 {
			fs := merged.CellFilter(func(cell int) bool { return ownerOf(cell) == i })
			out[i].Strategy = &fs
		}
	}
	return out
}

// checkpoint serializes the shard's market state (run from the shard's own
// goroutine, or inline in deterministic mode) and flushes pending lifecycle
// notes so the router's table is current before it is serialized.
func (s *shard) checkpoint() (shardCk, error) {
	st := shardCk{
		BatchStart: s.batchStart,
		LastTick:   s.lastTick,
		NextSeq:    s.nextSeq,
		Workers:    append([]market.Worker(nil), s.pool...),
		Seqs:       append([]uint64(nil), s.poolSeq...),
		OpenTasks:  append([]market.Task(nil), s.tasks...),
	}
	if pb := s.pending; pb != nil {
		p := &pendingCk{
			Period:   pb.ctx.Period,
			Prices:   append([]float64(nil), pb.prices...),
			Workers:  append([]market.Worker(nil), pb.workers...),
			Decided:  append([]bool(nil), pb.decided...),
			Accepted: append([]bool(nil), pb.accepted...),
		}
		for _, tv := range pb.ctx.Tasks {
			p.Tasks = append(p.Tasks, pendingTaskCk{ID: tv.ID, Origin: tv.Origin, Dest: tv.Dest, Distance: tv.Distance})
		}
		for l, r := range pb.inc.Matching().LeftTo {
			if r >= 0 {
				p.Pairs = append(p.Pairs, [2]int{l, r})
			}
		}
		for r := range pb.workers {
			if pb.inc.Removed(r) {
				p.Removed = append(p.Removed, r)
			}
		}
		st.Pending = p
	}
	if snap, ok := s.strat.(core.StateSnapshotter); ok {
		stg, err := snap.SnapshotState()
		if err != nil {
			return st, fmt.Errorf("engine: shard %d strategy snapshot: %w", s.id, err)
		}
		st.Strategy = &stg
	}
	s.flushNotes()
	return st, nil
}

// restore installs a checkpointed shard section (run from the shard's own
// goroutine, or inline in deterministic mode).
func (s *shard) restore(st *shardCk) error {
	if len(st.Seqs) != len(st.Workers) {
		return fmt.Errorf("engine: shard state has %d seqs for %d workers", len(st.Seqs), len(st.Workers))
	}
	// Whatever the executor cached describes the pre-restore engine; the
	// restored market must rebuild from scratch.
	s.exec.InvalidateCache()
	s.batchStart = st.BatchStart
	s.lastTick = st.LastTick
	s.nextSeq = st.NextSeq
	s.pool = append(s.pool[:0], st.Workers...)
	s.poolSeq = append(s.poolSeq[:0], st.Seqs...)
	clear(s.poolPos)
	for i := range s.pool {
		s.poolPos[s.pool[i].ID] = i
	}
	s.tasks = append(s.tasks[:0], st.OpenTasks...)
	s.pending = nil
	if st.Pending != nil {
		if err := s.restorePending(st.Pending); err != nil {
			return err
		}
	}
	if st.Strategy != nil {
		snap, ok := s.strat.(core.StateSnapshotter)
		if !ok {
			return fmt.Errorf("engine: checkpoint carries strategy state but %s cannot restore it", s.strat.Name())
		}
		if err := snap.RestoreState(*st.Strategy); err != nil {
			return fmt.Errorf("engine: shard %d strategy restore: %w", s.id, err)
		}
	}
	// Swallow the restore's own executor bookkeeping (re-arming a quoted
	// batch rebuilds a context outside any priced window) so reported cache
	// deltas keep counting priced windows only.
	s.lastCache = s.exec.CacheStats()
	return nil
}

// restorePending re-arms a quoted batch: graph and context are rebuilt
// deterministically through the executor, and the matcher is brought back
// to the recorded matching pair by pair.
func (s *shard) restorePending(p *pendingCk) error {
	n := len(p.Tasks)
	if len(p.Prices) != n || len(p.Decided) != n || len(p.Accepted) != n {
		return fmt.Errorf("engine: pending batch arrays disagree on length")
	}
	tasks := make([]market.Task, n)
	for i, t := range p.Tasks {
		tasks[i] = market.Task{ID: t.ID, Period: p.Period, Origin: t.Origin, Dest: t.Dest, Distance: t.Distance}
	}
	workers := append([]market.Worker(nil), p.Workers...)
	pr := s.exec.Rebuild(p.Period, tasks, workers)
	inc := s.exec.ArmQuoted(pr)
	for _, r := range p.Removed {
		if r < 0 || r >= len(workers) {
			return fmt.Errorf("engine: pending batch removes right %d of %d", r, len(workers))
		}
		inc.RemoveRight(r)
	}
	for _, pair := range p.Pairs {
		// Bounds first: a corrupt checkpoint's indices must error, not
		// panic the matcher.
		if pair[0] < 0 || pair[0] >= n || pair[1] < 0 || pair[1] >= len(workers) {
			return fmt.Errorf("engine: pending pairing (%d, %d) outside %d tasks x %d workers",
				pair[0], pair[1], n, len(workers))
		}
		if !inc.RestorePair(pair[0], pair[1]) {
			return fmt.Errorf("engine: pending pairing (%d, %d) does not fit the rebuilt batch", pair[0], pair[1])
		}
	}
	pb := &s.scratch.pb
	pb.ctx = pr.Ctx
	pb.prices = p.Prices
	pb.workers = workers
	pb.inc = inc
	pb.decided = p.Decided
	pb.accepted = p.Accepted
	if pb.taskIdx == nil {
		pb.taskIdx = make(map[int]int, n)
	} else {
		clear(pb.taskIdx)
	}
	for i, tv := range pr.Ctx.Tasks {
		pb.taskIdx[tv.ID] = i
	}
	pb.snap = pb.snap[:0]
	s.pending = pb
	return nil
}

// routesCk serializes a task-route map deterministically (sorted by task).
func routesCk(m map[int]int) []taskRouteCk {
	if len(m) == 0 {
		return nil
	}
	out := make([]taskRouteCk, 0, len(m))
	for _, t := range sortedKeys(m) {
		out = append(out, taskRouteCk{Task: t, Shard: m[t]})
	}
	return out
}

// sortedKeys returns the map's int keys ascending.
func sortedKeys[V any](m map[int]V) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
