package engine

import (
	"bytes"
	"encoding/json"
	"errors"
	"reflect"
	"sort"
	"testing"
	"time"
	"unicode/utf8"
)

func fullStats() Stats {
	return Stats{
		Events:            123456,
		TasksPriced:       4000,
		Quoted:            3500,
		Accepted:          3000,
		Served:            2800,
		Revenue:           98765.4321,
		ShardRevenue:      []float64{50000.25, 48765.1821},
		ShardTasks:        []int64{2100, 1900},
		Batches:           400,
		Late:              7,
		StrategyErrors:    2,
		LastStrategyError: errors.New("strategy returned 3 prices for 4 tasks"),
		Cache: CacheStats{CtxHits: 300, CtxMisses: 100, PriceHits: 250,
			PriceMisses: 150, KDIncremental: 280, KDRebuilds: 20},
		ShardCache: []CacheStats{
			{CtxHits: 200, CtxMisses: 40, PriceHits: 180, PriceMisses: 60,
				KDIncremental: 200, KDRebuilds: 5},
			{CtxHits: 100, CtxMisses: 60, PriceHits: 70, PriceMisses: 90,
				KDIncremental: 80, KDRebuilds: 15},
		},
		Lifecycle: LifecycleStats{
			Onlines: 900, DuplicateOnlines: 3, Moves: 1200, Migrations: 80,
			PinnedMoves: 5, RetiredAssigned: 700, RetiredExpired: 150,
			RetiredOffline: 40, Pooled: 10, Tracked: 12, TrackedHeld: 2,
		},
		P50Latency:   1500 * time.Microsecond,
		P99Latency:   42 * time.Millisecond,
		Elapsed:      3*time.Minute + 9*time.Second,
		EventsPerSec: 653.2,
	}
}

// TestStatsMarshalJSONStableShape pins the wire contract of Stats: the
// exact top-level and lifecycle key sets, durations as both integer
// nanoseconds and human strings, and the error as its message. Renaming or
// removing a key is a breaking change for /stats scrapers — this test is
// the tripwire.
func TestStatsMarshalJSONStableShape(t *testing.T) {
	raw, err := json.Marshal(fullStats())
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("unmarshal into map: %v", err)
	}

	wantKeys := []string{
		"events", "tasks_priced", "quoted", "accepted", "served",
		"revenue", "shard_revenue", "shard_tasks", "batches", "late",
		"strategy_errors", "last_strategy_error", "cache", "shard_cache",
		"lifecycle",
		"p50_latency_ns", "p50_latency", "p99_latency_ns", "p99_latency",
		"elapsed_ns", "elapsed", "events_per_sec",
	}
	gotKeys := make([]string, 0, len(m))
	for k := range m {
		gotKeys = append(gotKeys, k)
	}
	sort.Strings(gotKeys)
	sort.Strings(wantKeys)
	if !reflect.DeepEqual(gotKeys, wantKeys) {
		t.Errorf("top-level key set changed:\n got %v\nwant %v", gotKeys, wantKeys)
	}

	lc, ok := m["lifecycle"].(map[string]any)
	if !ok {
		t.Fatalf("lifecycle is %T, want object", m["lifecycle"])
	}
	wantLC := []string{
		"onlines", "duplicate_onlines", "moves", "migrations", "pinned_moves",
		"retired_assigned", "retired_expired", "retired_offline",
		"pooled", "tracked", "tracked_held",
	}
	gotLC := make([]string, 0, len(lc))
	for k := range lc {
		gotLC = append(gotLC, k)
	}
	sort.Strings(gotLC)
	sort.Strings(wantLC)
	if !reflect.DeepEqual(gotLC, wantLC) {
		t.Errorf("lifecycle key set changed:\n got %v\nwant %v", gotLC, wantLC)
	}

	cache, ok := m["cache"].(map[string]any)
	if !ok {
		t.Fatalf("cache is %T, want object", m["cache"])
	}
	wantCache := []string{
		"ctx_hits", "ctx_misses", "price_hits", "price_misses",
		"kd_incremental", "kd_rebuilds",
	}
	gotCache := make([]string, 0, len(cache))
	for k := range cache {
		gotCache = append(gotCache, k)
	}
	sort.Strings(gotCache)
	sort.Strings(wantCache)
	if !reflect.DeepEqual(gotCache, wantCache) {
		t.Errorf("cache key set changed:\n got %v\nwant %v", gotCache, wantCache)
	}

	if ns := m["p50_latency_ns"].(float64); int64(ns) != int64(1500*time.Microsecond) {
		t.Errorf("p50_latency_ns = %v, want %d", ns, int64(1500*time.Microsecond))
	}
	if s := m["p50_latency"].(string); s != "1.5ms" {
		t.Errorf("p50_latency = %q, want \"1.5ms\"", s)
	}
	if ns := m["p99_latency_ns"].(float64); int64(ns) != int64(42*time.Millisecond) {
		t.Errorf("p99_latency_ns = %v, want %d", ns, int64(42*time.Millisecond))
	}
	if s := m["elapsed"].(string); s != "3m9s" {
		t.Errorf("elapsed = %q, want \"3m9s\"", s)
	}
	if msg := m["last_strategy_error"].(string); msg != "strategy returned 3 prices for 4 tasks" {
		t.Errorf("last_strategy_error = %q", msg)
	}
}

// TestStatsJSONRoundTrip checks Unmarshal(Marshal(s)) reproduces every
// field; the error comes back equal in message (the typed value is
// intentionally not preserved).
func TestStatsJSONRoundTrip(t *testing.T) {
	orig := fullStats()
	raw, err := json.Marshal(orig)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Stats
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.LastStrategyError == nil || back.LastStrategyError.Error() != orig.LastStrategyError.Error() {
		t.Errorf("error message lost: %v", back.LastStrategyError)
	}
	a, b := orig, back
	a.LastStrategyError, b.LastStrategyError = nil, nil
	if !reflect.DeepEqual(a, b) {
		t.Errorf("round trip changed stats:\n in  %+v\n out %+v", a, b)
	}
}

// TestStatsJSONNilError checks the error field encodes as explicit null
// and decodes back to nil.
func TestStatsJSONNilError(t *testing.T) {
	s := fullStats()
	s.LastStrategyError = nil
	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	v, present := m["last_strategy_error"]
	if !present || v != nil {
		t.Errorf("last_strategy_error = %v (present %v), want explicit null", v, present)
	}
	var back Stats
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.LastStrategyError != nil {
		t.Errorf("nil error decoded as %v", back.LastStrategyError)
	}
}

// FuzzStatsJSONRoundTrip drives the Stats wire format from two directions.
// Structured: any encodable Stats must decode from its own encoding, and
// re-encoding the decoded value must be a byte-level fixed point (this is
// what the server's /stats scrape and the snapfields analyzer both assume).
// Raw: any bytes UnmarshalJSON accepts must re-encode and decode again
// without error, so a hostile or truncated scrape can never wedge the
// format.
func FuzzStatsJSONRoundTrip(f *testing.F) {
	f.Add(int64(1), int64(2), 3.5, int64(4), int64(5), 6.25, "boom", []byte(`{"events":1}`))
	f.Add(int64(0), int64(0), 0.0, int64(0), int64(-1), -2.5, "", []byte(`{"last_strategy_error":null}`))
	f.Fuzz(func(t *testing.T, events, priced int64, revenue float64, late, p50 int64, shardRev float64, errMsg string, raw []byte) {
		s := Stats{
			Events:         events,
			TasksPriced:    priced,
			Revenue:        revenue,
			Late:           late,
			P50Latency:     time.Duration(p50),
			ShardRevenue:   []float64{shardRev, revenue},
			ShardTasks:     []int64{priced, events},
			StrategyErrors: 1,
		}
		if errMsg != "" {
			if !utf8.ValidString(errMsg) {
				// encoding/json normalizes invalid UTF-8 to U+FFFD — escaped
				// as \ufffd on the first encode but emitted raw thereafter —
				// so the byte fixed point only holds for valid strings. Found
				// by this fuzzer; the raw path below still covers such bytes.
				t.Skip()
			}
			s.LastStrategyError = errors.New(errMsg)
		}
		b, err := json.Marshal(s)
		if err != nil {
			t.Skip() // NaN/Inf floats are not encodable; nothing to round-trip
		}
		var back Stats
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("decode of own encoding failed: %v\n%s", err, b)
		}
		b2, err := json.Marshal(back)
		if err != nil {
			t.Fatalf("re-encode after round trip failed: %v", err)
		}
		if !bytes.Equal(b, b2) {
			t.Fatalf("marshal is not a fixed point:\n first %s\n again %s", b, b2)
		}

		// Arbitrary input: acceptance implies a clean re-encode/decode.
		var fromRaw Stats
		if err := json.Unmarshal(raw, &fromRaw); err == nil {
			b3, err := json.Marshal(fromRaw)
			if err != nil {
				t.Fatalf("re-encode of accepted input failed: %v (input %q)", err, raw)
			}
			var again Stats
			if err := json.Unmarshal(b3, &again); err != nil {
				t.Fatalf("decode of re-encoded input failed: %v\n%s", err, b3)
			}
		}
	})
}
