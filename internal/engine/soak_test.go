package engine

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"spatialcrowd/internal/core"
	"spatialcrowd/internal/geo"
	"spatialcrowd/internal/market"
	"spatialcrowd/internal/spatial"
)

// The randomized soak harness: a seeded generator drives tens of thousands
// of interleaved arrivals / onlines / moves / duplicate onlines / offlines
// / decisions / ticks through the engine in quoted mode — deterministic and
// sharded — and asserts the lifecycle invariants:
//
//   - no worker is pooled in two shards (no ghost supply)
//   - the funnel holds: served <= accepted <= quoted <= priced... (quoted
//     mode: served <= accepted <= quoted, priced == quoted)
//   - shard revenues sum to the total, and the committed decision stream
//     carries exactly the finalized revenue
//   - the router's maps stay bounded by the live population / recent quotes
//
// Environment knobs (CI pins them for reproduction):
//
//	SOAK_SEED          generator seed (default 1)
//	SOAK_EVENTS        approximate event budget (default 60000; -short 15000)
//	SOAK_ARTIFACT_DIR  when set, a failing run writes soak-failure-seed.txt
//	                   there so CI can upload it as an artifact

func soakSeed() int64 {
	if s := os.Getenv("SOAK_SEED"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil {
			return v
		}
	}
	return 1
}

func soakEvents(t *testing.T) int {
	if s := os.Getenv("SOAK_EVENTS"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	if testing.Short() {
		return 15_000
	}
	return 60_000
}

// reportFailureSeed persists the failing seed for artifact upload.
func reportFailureSeed(t *testing.T, seed int64, events int) {
	t.Cleanup(func() {
		if !t.Failed() {
			return
		}
		dir := os.Getenv("SOAK_ARTIFACT_DIR")
		if dir == "" {
			return
		}
		_ = os.MkdirAll(dir, 0o755)
		body := fmt.Sprintf("test=%s\nSOAK_SEED=%d\nSOAK_EVENTS=%d\n", t.Name(), seed, events)
		path := filepath.Join(dir, "soak-failure-seed.txt")
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Logf("could not write failure seed artifact: %v", err)
		} else {
			t.Logf("failure seed written to %s", path)
		}
	})
}

func TestSoakRandomizedLifecycle(t *testing.T) {
	seed, budget := soakSeed(), soakEvents(t)
	for _, shards := range []int{0, 4} {
		t.Run("shards="+strconv.Itoa(shards), func(t *testing.T) {
			reportFailureSeed(t, seed, budget)
			runSoak(t, seed, budget, shards, false, false)
		})
	}
}

// TestSoakAmortizedLifecycle is the same randomized soak with the
// amortized-rebuild layer on: every lifecycle/revenue invariant must hold
// unchanged (the cache is transparent), and additionally the cache counters
// must cohere — every priced window scores exactly one context and one price
// outcome, so hits+misses reconcile against the batch count.
func TestSoakAmortizedLifecycle(t *testing.T) {
	seed, budget := soakSeed(), soakEvents(t)
	for _, shards := range []int{0, 4} {
		t.Run("shards="+strconv.Itoa(shards), func(t *testing.T) {
			reportFailureSeed(t, seed, budget)
			runSoak(t, seed, budget, shards, false, true)
		})
	}
}

// TestSoakCheckpointRestore is the same randomized soak with a mid-stream
// checkpoint/restore: halfway through the budget the engine is
// checkpointed (pending quoted batches included), discarded, and replaced
// by a fresh engine restored from the checkpoint, which then serves the
// rest of the stream. Extra invariant at the seam: no worker is lost or
// duplicated across the restore. Every end-of-run invariant then holds on
// the restored engine.
func TestSoakCheckpointRestore(t *testing.T) {
	seed, budget := soakSeed(), soakEvents(t)
	for _, shards := range []int{0, 4} {
		t.Run("shards="+strconv.Itoa(shards), func(t *testing.T) {
			reportFailureSeed(t, seed, budget)
			runSoak(t, seed, budget, shards, true, false)
		})
	}
}

// pooledIDs collects the IDs pooled across an idle engine's shards,
// failing on duplicates. Safe after Checkpoint/Restore returned and before
// the next Submit (the control round-trip orders the memory).
func pooledIDs(t *testing.T, e *Engine, when string) map[int]bool {
	t.Helper()
	ids := map[int]bool{}
	pools := [][]market.Worker{}
	if e.det != nil {
		pools = append(pools, e.det.pool)
	}
	for _, s := range e.shards {
		pools = append(pools, s.pool)
	}
	for _, pool := range pools {
		for _, w := range pool {
			if ids[w.ID] {
				t.Fatalf("%s: worker %d pooled twice", when, w.ID)
			}
			ids[w.ID] = true
		}
	}
	return ids
}

func runSoak(t *testing.T, seed int64, budget, shards int, restoreMid, amortize bool) {
	t.Helper()
	grid := geo.SquareGrid(100, 8) // 64 cells
	cfg := Config{Grid: grid, Shards: shards, Amortize: amortize}
	if shards > 0 {
		cfg.Partitioner = spatial.BalancedPartition(spatial.NewGridSpace(grid), shards)
		cfg.NewStrategy = func(int) core.Strategy {
			s, _ := core.NewSDR(core.DefaultParams(), 2)
			return s
		}
	} else {
		s, _ := core.NewSDR(core.DefaultParams(), 2)
		cfg.Strategy = s
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(seed))
	randPoint := func() geo.Point {
		return geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
	}

	type liveWorker struct {
		id    int
		until int // first period the worker is expired
	}
	var (
		online     []liveWorker // workers the harness believes are online (may include consumed)
		openQuotes []int
		nextWorker = 1
		nextTask   = 1
		submitted  = 0
		maxPerTick = 0
		everOnline = map[int]bool{}
		last       = map[int]Decision{} // committed (non-quoted) pairing per task
	)
	sub := func(ev Event) {
		if err := e.Submit(ev); err != nil {
			t.Fatalf("event %d: %v", submitted+1, err)
		}
		submitted++
	}
	drain := func() {
		for _, d := range e.Poll() {
			if !d.Quoted {
				last[d.TaskID] = d
			}
		}
	}

	// Event mix per period; tuned so ~budget events span a few thousand
	// periods with constant churn.
	period := 0
	restored := false
	for submitted < budget {
		// Mid-stream crash/recovery: checkpoint (quoted batches pending),
		// discard the engine, restore into a fresh one, keep streaming.
		if restoreMid && !restored && submitted >= budget/2 {
			restored = true
			var ck bytes.Buffer
			if err := e.Checkpoint(&ck); err != nil {
				t.Fatalf("mid-stream checkpoint: %v", err)
			}
			// The checkpoint barrier guarantees every pre-checkpoint decision
			// has been emitted; collect them before discarding the engine
			// (Close would re-finalize state the restored engine still owns).
			drain()
			before := pooledIDs(t, e, "pre-restore")
			_ = e.Close()
			fresh, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := fresh.Restore(bytes.NewReader(ck.Bytes())); err != nil {
				t.Fatalf("mid-stream restore: %v", err)
			}
			after := pooledIDs(t, fresh, "post-restore")
			if len(after) != len(before) {
				t.Fatalf("restore changed the pool: %d workers before, %d after", len(before), len(after))
			}
			for id := range before {
				if !after[id] {
					t.Fatalf("worker %d lost across restore", id)
				}
			}
			e = fresh
		}
		sub(Tick(period))

		// Answer ~70% of the previous window's quotes (random accepts).
		for _, id := range openQuotes {
			if rng.Float64() < 0.7 {
				sub(AcceptDecision(id, rng.Float64() < 0.6))
			}
		}
		openQuotes = openQuotes[:0]
		drain()

		// Forget workers whose availability lapsed, so most mobility events
		// target genuinely live workers (consumed ones still slip through
		// and must be absorbed as late).
		live := online[:0]
		for _, w := range online {
			if w.until > period {
				live = append(live, w)
			}
		}
		online = live

		tasksThisTick := 0
		// Fresh onlines.
		for i := rng.Intn(4); i > 0; i-- {
			id := nextWorker
			nextWorker++
			everOnline[id] = true
			dur := 2 + rng.Intn(12)
			online = append(online, liveWorker{id: id, until: period + dur})
			sub(WorkerOnline(market.Worker{
				ID: id, Period: period, Loc: randPoint(),
				Radius: 5 + rng.Float64()*10, Duration: dur,
			}))
		}
		// Duplicate onlines: an already-known worker re-onlines from a new
		// random location (often a different shard) — the ghost hazard.
		if len(online) > 0 && rng.Float64() < 0.25 {
			i := rng.Intn(len(online))
			dur := 2 + rng.Intn(12)
			online[i].until = period + dur
			sub(WorkerOnline(market.Worker{
				ID: online[i].id, Period: period, Loc: randPoint(),
				Radius: 5 + rng.Float64()*10, Duration: dur,
			}))
		}
		// Moves: known workers teleport to random points, which usually
		// crosses cells and often crosses shards (migration handshake);
		// moves landing on consumed workers must be absorbed as late.
		for i := rng.Intn(3); i > 0; i-- {
			if len(online) == 0 {
				break
			}
			sub(WorkerMove(online[rng.Intn(len(online))].id, randPoint()))
		}
		// Unknown-worker noise.
		if rng.Float64() < 0.05 {
			sub(WorkerMove(-7, randPoint()))
		}
		// Task arrivals (their quotes are answerable next period).
		for i := rng.Intn(5); i > 0; i-- {
			id := nextTask
			nextTask++
			tasksThisTick++
			sub(TaskArrival(market.Task{
				ID: id, Period: period, Origin: randPoint(),
				Distance: 0.5 + rng.Float64()*4,
			}))
			openQuotes = append(openQuotes, id)
		}
		// Offlines.
		if len(online) > 0 && rng.Float64() < 0.2 {
			i := rng.Intn(len(online))
			sub(WorkerOffline(online[i].id))
			online = append(online[:i], online[i+1:]...)
		}
		if tasksThisTick > maxPerTick {
			maxPerTick = tasksThisTick
		}
		period++

		// Mid-run coherence probes (cheap, snapshot-safe).
		if period%512 == 0 {
			st := e.Stats()
			if st.Served > st.Accepted || st.Accepted > st.Quoted {
				t.Fatalf("period %d: funnel violated: %+v", period, st)
			}
			if st.Lifecycle.Pooled < 0 {
				t.Fatalf("period %d: negative pool gauge: %+v", period, st.Lifecycle)
			}
		}
	}
	sub(Tick(period))
	sub(Tick(period + 1))
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	drain()

	st := e.Stats()
	t.Logf("soak shards=%d seed=%d: %d events, %d periods, %d quoted, %d served, revenue %.1f, late %d, lifecycle %+v",
		shards, seed, submitted, period, st.Quoted, st.Served, st.Revenue, st.Late, st.Lifecycle)

	// Invariant: the funnel.
	if st.TasksPriced == 0 || st.Quoted == 0 || st.Served == 0 {
		t.Fatalf("degenerate run (nothing flowed): %+v", st)
	}
	if st.Served > st.Accepted || st.Accepted > st.Quoted || st.Quoted != st.TasksPriced {
		t.Fatalf("funnel violated: %+v", st)
	}

	// Invariant: revenue conservation across shards.
	sum := 0.0
	for _, r := range st.ShardRevenue {
		sum += r
	}
	if math.Abs(sum-st.Revenue) > 1e-6*(1+st.Revenue) {
		t.Fatalf("shard revenues sum to %v, total %v", sum, st.Revenue)
	}

	// Invariant: no worker pooled in two shards, and every pooled worker is
	// one the harness actually onlined. Safe to inspect after Close (shard
	// goroutines have exited).
	pools := [][]market.Worker{}
	if e.det != nil {
		pools = append(pools, e.det.pool)
	}
	for _, s := range e.shards {
		pools = append(pools, s.pool)
	}
	seen := map[int]int{}
	pooled := 0
	for si, pool := range pools {
		for _, w := range pool {
			pooled++
			if prev, dup := seen[w.ID]; dup {
				t.Fatalf("worker %d pooled in shards %d and %d (ghost supply)", w.ID, prev, si)
			}
			seen[w.ID] = si
			if !everOnline[w.ID] {
				t.Fatalf("pool holds worker %d the harness never onlined", w.ID)
			}
		}
	}
	if int64(pooled) != st.Lifecycle.Pooled {
		t.Fatalf("pool gauge %d != actual pooled %d", st.Lifecycle.Pooled, pooled)
	}

	// Invariant: router maps bounded. The lifecycle table tracks at most
	// the workers that ever onlined and never more than onlines minus
	// permanent retirements it has heard about; the quoted-task maps hold
	// at most the last two generations of quotes.
	if e.workers != nil {
		if n := e.workers.size(); n > len(everOnline) {
			t.Fatalf("worker table tracks %d workers, only %d ever onlined", n, len(everOnline))
		}
		if lc := st.Lifecycle; lc.TrackedHeld < 0 || lc.TrackedHeld > lc.Tracked {
			t.Fatalf("held gauge out of range: held=%d tracked=%d", lc.TrackedHeld, lc.Tracked)
		}
		taskEntries := len(e.taskShardCur) + len(e.taskShardPrev)
		if bound := 4 * (maxPerTick + 1) * e.Window(); taskEntries > bound {
			t.Fatalf("task routing maps hold %d entries, bound %d (leak?)", taskEntries, bound)
		}
	}

	// Invariant: the committed decision stream carries the finalized
	// matching (deterministic mode: Poll saw every decision in order).
	var served int64
	decRevenue := 0.0
	for _, d := range last {
		if d.Served {
			served++
			decRevenue += d.Revenue
		}
	}
	if served != st.Served {
		t.Fatalf("decision stream commits %d served, stats say %d", served, st.Served)
	}
	if math.Abs(decRevenue-st.Revenue) > 1e-6*(1+st.Revenue) {
		t.Fatalf("decision stream revenue %v, stats revenue %v", decRevenue, st.Revenue)
	}

	// Lifecycle ledger: pool admissions (fresh onlines; migration admits
	// cancel against migration removals) equal current pool plus reasoned
	// retirements plus stale-copy evictions, and the latter cannot exceed
	// the duplicate onlines that caused them:
	//   pooled + retired <= onlines <= pooled + retired + duplicates
	lc := st.Lifecycle
	retired := lc.RetiredAssigned + lc.RetiredExpired + lc.RetiredOffline
	if lc.Onlines < lc.Pooled+retired || lc.Onlines > lc.Pooled+retired+lc.DuplicateOnlines {
		t.Fatalf("lifecycle ledger broken: onlines=%d pooled=%d retired=%d dup=%d mig=%d",
			lc.Onlines, lc.Pooled, retired, lc.DuplicateOnlines, lc.Migrations)
	}

	// Cache-counter coherence. Off: the counters never move. On (without a
	// mid-stream restore, which legitimately swallows re-arm rebuilds): every
	// priced window scores exactly one context and one price outcome, the
	// per-shard breakdown sums to the total, and no counter is negative.
	if !amortize {
		if st.Cache != (CacheStats{}) {
			t.Fatalf("amortize off but cache counters moved: %+v", st.Cache)
		}
		return
	}
	c := st.Cache
	if c.CtxHits < 0 || c.CtxMisses < 0 || c.PriceHits < 0 || c.PriceMisses < 0 ||
		c.KDIncremental < 0 || c.KDRebuilds < 0 {
		t.Fatalf("negative cache counter: %+v", c)
	}
	var fromShards CacheStats
	for _, sc := range st.ShardCache {
		fromShards = fromShards.Add(sc)
	}
	if fromShards != c {
		t.Fatalf("shard cache counters sum to %+v, total %+v", fromShards, c)
	}
	if !restoreMid {
		windows := st.Batches + st.StrategyErrors
		if got := c.CtxHits + c.CtxMisses; got != windows {
			t.Fatalf("ctx outcomes %d != priced windows %d (cache %+v)", got, windows, c)
		}
		if got := c.PriceHits + c.PriceMisses; got != windows {
			t.Fatalf("price outcomes %d != priced windows %d (cache %+v)", got, windows, c)
		}
	}
}
