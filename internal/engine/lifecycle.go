package engine

// Worker lifecycle. Every worker the engine has ever admitted moves through
// a small state machine:
//
//	offline ──WorkerOnline──▶ online ──quote()──▶ quoted-held
//	   ▲                        │  ▲                  │
//	   │                        │  └──released────────┤ (batch finalized,
//	   │                        │                     │  worker unmatched)
//	   │        WorkerMove ─────┘ (same cell/shard:   │
//	   │        in-place; cross-shard: retire-in-old/ │
//	   │        admit-in-new handshake)               │
//	   │                        │                     │
//	   └──────── retired ◀──────┴─────────────────────┘
//	             (assigned · expired · offline)
//
// In concurrent mode the router owns the authoritative table (workerTable):
// it is consulted on every WorkerOnline (duplicate detection — the ghost-
// worker hazard), WorkerOffline, and WorkerMove (shard targeting). Shards
// report pool transitions back at batch grain as lifecycleNotes, so the
// table is eventually consistent within one tick; the synchronous migration
// handshake gives the router ground truth at the one point staleness could
// create double supply. In deterministic mode the single shard's pool is the
// state machine and the same counters are maintained inline.

import "fmt"

// WorkerState is one stage of the worker lifecycle.
type WorkerState uint8

const (
	// StateOffline is the implicit state of a worker the engine is not
	// tracking (never seen, or retired and forgotten).
	StateOffline WorkerState = iota
	// StateOnline means the worker sits in exactly one shard's pool,
	// available for the next pricing batch.
	StateOnline
	// StateQuotedHeld means a pending quoted batch references the worker:
	// it may hold a provisional assignment, so it is pinned to its shard
	// (migration applies the location in place instead of moving it).
	StateQuotedHeld
	// StateAssigned means a finalized batch consumed the worker.
	StateAssigned
	// StateRetired means the worker left the market (offline or expired).
	StateRetired
)

// String names the state for diagnostics.
func (s WorkerState) String() string {
	switch s {
	case StateOffline:
		return "offline"
	case StateOnline:
		return "online"
	case StateQuotedHeld:
		return "quoted-held"
	case StateAssigned:
		return "assigned"
	case StateRetired:
		return "retired"
	}
	return fmt.Sprintf("WorkerState(%d)", uint8(s))
}

// RetireReason says why a worker left a shard's pool.
type RetireReason uint8

const (
	// RetireAssigned: consumed by a finalized assignment.
	RetireAssigned RetireReason = iota
	// RetireExpired: availability duration lapsed.
	RetireExpired
	// RetireOffline: an explicit WorkerOffline event.
	RetireOffline
)

// lifecycleNote is one pool transition a shard reports to the router at
// batch grain. held/released notes bracket a quoted batch; retire notes say
// the worker left the pool (the reason is counted at the shard, which works
// identically in deterministic mode). Notes are stale by up to one tick, so
// each carries enough provenance for the router to reject notes about a dead
// incarnation of the ID: the reporting shard, and the tick period the shard
// was processing. A note only applies while the worker is still attributed
// to that shard AND was last (re-)admitted strictly before that period — a
// worker that retired and re-onlined in between keeps its fresh entry.
type lifecycleNote struct {
	id     int
	shard  int
	period int
	kind   noteKind
}

type noteKind uint8

const (
	noteRetire noteKind = iota
	noteHeld
	noteReleased
)

// workerEntry is the router's view of one tracked worker. seen is the
// router's period when the worker was last admitted (online or migration) —
// the epoch that fences off stale lifecycle notes.
type workerEntry struct {
	shard int
	state WorkerState
	seen  int
}

// workerTable is the router-owned worker registry: worker ID -> owning shard
// and lifecycle state. Only the router goroutine touches it (no locks);
// Stats reads the size and held count through the engine's gauges. Entries
// are deleted on retirement, so the table is bounded by the live worker
// count.
type workerTable struct {
	m    map[int]workerEntry
	held int // entries currently in StateQuotedHeld
}

func newWorkerTable() *workerTable {
	return &workerTable{m: make(map[int]workerEntry)}
}

// get returns the entry for id, if tracked.
func (t *workerTable) get(id int) (workerEntry, bool) {
	e, ok := t.m[id]
	return e, ok
}

// set installs an entry, keeping the held gauge in step.
func (t *workerTable) set(id int, e workerEntry) {
	if prev, ok := t.m[id]; ok && prev.state == StateQuotedHeld {
		t.held--
	}
	if e.state == StateQuotedHeld {
		t.held++
	}
	t.m[id] = e
}

// online records id as online in shard at the router's current period,
// returning the previous entry when the worker was already tracked (a
// duplicate online — the caller retires the stale copy from its old shard).
func (t *workerTable) online(id, shard, period int) (workerEntry, bool) {
	prev, dup := t.m[id]
	t.set(id, workerEntry{shard: shard, state: StateOnline, seen: period})
	return prev, dup
}

// migrate re-points id to a new shard after a completed cross-shard
// migration handshake.
func (t *workerTable) migrate(id, shard, period int) {
	t.set(id, workerEntry{shard: shard, state: StateOnline, seen: period})
}

// retire forgets id. The caller has already checked shard attribution.
func (t *workerTable) retire(id int) {
	if e, ok := t.m[id]; ok && e.state == StateQuotedHeld {
		t.held--
	}
	delete(t.m, id)
}

// apply folds one shard-reported note into the table. A note is applied
// only if the worker is still attributed to the reporting shard and was
// admitted strictly before the note's period; anything else means the
// router has since re-pointed or re-admitted the worker (duplicate online,
// migration, retire-then-re-online) and the note describes a dead copy.
func (t *workerTable) apply(n lifecycleNote) bool {
	e, ok := t.m[n.id]
	if !ok || e.shard != n.shard || e.seen >= n.period {
		return false
	}
	switch n.kind {
	case noteRetire:
		t.retire(n.id)
	case noteHeld:
		e.state = StateQuotedHeld
		t.set(n.id, e)
	case noteReleased:
		e.state = StateOnline
		t.set(n.id, e)
	}
	return true
}

// size returns the number of tracked workers.
func (t *workerTable) size() int { return len(t.m) }

// heldCount returns the number of tracked workers in StateQuotedHeld.
func (t *workerTable) heldCount() int { return t.held }
