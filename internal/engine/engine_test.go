package engine

import (
	"math"
	"math/rand"
	"testing"

	"spatialcrowd/internal/core"
	"spatialcrowd/internal/geo"
	"spatialcrowd/internal/market"
	"spatialcrowd/internal/sim"
	"spatialcrowd/internal/workload"
)

// fixedPrice is a minimal deterministic strategy for unit tests.
type fixedPrice struct {
	price    float64
	observes int
	outcomes []bool
}

func (f *fixedPrice) Name() string { return "fixed" }
func (f *fixedPrice) Prices(ctx *core.PeriodContext) []float64 {
	out := make([]float64, len(ctx.Tasks))
	for i := range out {
		out[i] = f.price
	}
	return out
}
func (f *fixedPrice) Observe(ctx *core.PeriodContext, prices []float64, accepted []bool) {
	f.observes++
	f.outcomes = append(f.outcomes, accepted...)
}

type modelOracle struct {
	model market.ValuationModel
	rng   *rand.Rand
}

func (o *modelOracle) Probe(cell int, price float64) bool {
	return price <= o.model.Dist(cell).Sample(o.rng)
}

func testInstance(t testing.TB) (*market.Instance, market.ValuationModel) {
	t.Helper()
	in, model, err := workload.Synthetic(workload.SyntheticConfig{
		Workers: 400, Requests: 1600, Periods: 60, GridSide: 5, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return in, model
}

func calibratedBase(t testing.TB, in *market.Instance, model market.ValuationModel) *core.BaseP {
	t.Helper()
	basep, err := core.NewBaseP(core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	oracle := &modelOracle{model: model, rng: rand.New(rand.NewSource(3))}
	if err := basep.Calibrate(oracle, in.Grid.NumCells(), 100); err != nil {
		t.Fatal(err)
	}
	return basep
}

// replayDeterministic runs the instance through a deterministic AutoDecide
// engine and returns its final stats.
func replayDeterministic(t *testing.T, in *market.Instance, strat core.Strategy) Stats {
	t.Helper()
	e, err := New(Config{Grid: in.Grid, Strategy: strat, AutoDecide: true,
		OnDecision: func(Decision) {}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(e, in); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	return e.Stats()
}

// TestDeterministicEquivalenceSim is the end-to-end equivalence criterion:
// the engine in deterministic AutoDecide mode must reproduce sim.Run's
// revenue on the same workload. The engine builds its bipartite graphs from
// k-d tree candidates while the simulator uses the grid index, so adjacency
// orders differ; both assignments are exact maximum-weight values each
// period, but ties in which worker serves a task can consume different
// workers and drift the pool slightly across periods — hence a tolerance
// rather than exact equality.
func TestDeterministicEquivalenceSim(t *testing.T) {
	in, model := testInstance(t)
	basep := calibratedBase(t, in, model)
	pb := basep.BasePrice()

	cases := []struct {
		name string
		make func() core.Strategy
		tol  float64
	}{
		{"BaseP", func() core.Strategy { return basep }, 0.02},
		{"SDR", func() core.Strategy { s, _ := core.NewSDR(core.DefaultParams(), pb); return s }, 0.02},
		{"SDE", func() core.Strategy { s, _ := core.NewSDE(core.DefaultParams(), pb); return s }, 0.02},
		{"MAPS", func() core.Strategy {
			m, _ := core.NewMAPS(core.DefaultParams(), pb)
			basep.WarmStart(m.CellStats)
			return m
		}, 0.06},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			simRes, err := sim.Run(in, tc.make(), sim.Config{Params: core.DefaultParams()})
			if err != nil {
				t.Fatal(err)
			}
			st := replayDeterministic(t, in, tc.make())

			if simRes.Revenue <= 0 {
				t.Fatalf("sim revenue = %v, want > 0", simRes.Revenue)
			}
			rel := math.Abs(st.Revenue-simRes.Revenue) / simRes.Revenue
			t.Logf("sim revenue %.2f, engine revenue %.2f (rel diff %.4f); sim served %d, engine served %d",
				simRes.Revenue, st.Revenue, rel, simRes.Served, st.Served)
			if rel > tc.tol {
				t.Fatalf("engine revenue %.2f deviates from sim %.2f by %.2f%% (tolerance %.2f%%)",
					st.Revenue, simRes.Revenue, 100*rel, 100*tc.tol)
			}
			if st.TasksPriced != int64(simRes.Offered) {
				t.Fatalf("engine priced %d tasks, sim offered %d", st.TasksPriced, simRes.Offered)
			}
			if st.Accepted != int64(simRes.Accepted) {
				t.Fatalf("engine accepted %d, sim accepted %d", st.Accepted, simRes.Accepted)
			}
		})
	}
}

// TestShardedRepeatable checks that the concurrent engine is deterministic
// for a fixed input order (per-shard FIFO makes each shard's event sequence
// independent of goroutine scheduling) and that its statistics cohere.
func TestShardedRepeatable(t *testing.T) {
	in, model := testInstance(t)
	basep := calibratedBase(t, in, model)
	pb := basep.BasePrice()

	run := func(shards int) Stats {
		e, err := New(Config{
			Grid:   in.Grid,
			Shards: shards,
			NewStrategy: func(int) core.Strategy {
				s, _ := core.NewSDR(core.DefaultParams(), pb)
				return s
			},
			AutoDecide: true,
			OnDecision: func(Decision) {},
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Replay(e, in); err != nil {
			t.Fatal(err)
		}
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
		return e.Stats()
	}

	a, b := run(4), run(4)
	if a.Revenue <= 0 {
		t.Fatalf("sharded revenue = %v, want > 0", a.Revenue)
	}
	if a.Revenue != b.Revenue || a.Served != b.Served || a.Accepted != b.Accepted {
		t.Fatalf("sharded runs diverged: %+v vs %+v", a, b)
	}
	if len(a.ShardRevenue) != 4 {
		t.Fatalf("ShardRevenue has %d entries, want 4", len(a.ShardRevenue))
	}
	sum := 0.0
	for _, r := range a.ShardRevenue {
		sum += r
	}
	if math.Abs(sum-a.Revenue) > 1e-6 {
		t.Fatalf("shard revenues sum to %v, total %v", sum, a.Revenue)
	}
	if a.Served > a.Accepted || a.Accepted > a.TasksPriced {
		t.Fatalf("inconsistent funnel: %+v", a)
	}
	if a.P99Latency < a.P50Latency {
		t.Fatalf("p99 %v < p50 %v", a.P99Latency, a.P50Latency)
	}
}

// quotedEngine builds a deterministic quoted-mode engine over a small grid.
func quotedEngine(t *testing.T, strat core.Strategy) *Engine {
	t.Helper()
	e, err := New(Config{Grid: geo.SquareGrid(100, 10), Strategy: strat})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func mustSubmit(t *testing.T, e *Engine, evs ...Event) {
	t.Helper()
	for _, ev := range evs {
		if err := e.Submit(ev); err != nil {
			t.Fatal(err)
		}
	}
}

func TestQuotedFlow(t *testing.T) {
	strat := &fixedPrice{price: 2}
	e := quotedEngine(t, strat)
	mustSubmit(t, e,
		Tick(0),
		WorkerOnline(market.Worker{ID: 1, Loc: geo.Point{X: 10, Y: 10}, Radius: 10, Duration: 100}),
		WorkerOnline(market.Worker{ID: 2, Loc: geo.Point{X: 12, Y: 10}, Radius: 10, Duration: 100}),
		TaskArrival(market.Task{ID: 100, Origin: geo.Point{X: 11, Y: 11}, Distance: 3}),
		TaskArrival(market.Task{ID: 101, Origin: geo.Point{X: 9, Y: 9}, Distance: 2}),
		TaskArrival(market.Task{ID: 102, Origin: geo.Point{X: 90, Y: 90}, Distance: 5}), // out of range
		Tick(1),
	)
	quotes := e.Poll()
	if len(quotes) != 3 {
		t.Fatalf("got %d quotes, want 3", len(quotes))
	}
	for _, q := range quotes {
		if !q.Quoted || q.Price != 2 || q.WorkerID != -1 {
			t.Fatalf("bad quote %+v", q)
		}
	}

	mustSubmit(t, e,
		AcceptDecision(100, true),
		AcceptDecision(101, false),
		AcceptDecision(102, true), // accepted but no worker in range
	)
	ds := e.Poll()
	if len(ds) != 3 {
		t.Fatalf("got %d decisions, want 3", len(ds))
	}
	byID := map[int]Decision{}
	for _, d := range ds {
		byID[d.TaskID] = d
	}
	if d := byID[100]; !d.Accepted || !d.Served || d.Revenue != 6 {
		t.Fatalf("task 100: %+v", d)
	}
	if d := byID[101]; d.Accepted || d.Served {
		t.Fatalf("task 101: %+v", d)
	}
	if d := byID[102]; !d.Accepted || d.Served {
		t.Fatalf("task 102: %+v", d)
	}

	mustSubmit(t, e, Tick(2)) // finalize
	st := e.Stats()
	if st.Quoted != 3 || st.Accepted != 2 || st.Served != 1 || st.Revenue != 6 {
		t.Fatalf("stats after finalize: %+v", st)
	}
	if strat.observes != 1 {
		t.Fatalf("strategy observed %d batches, want 1", strat.observes)
	}
	want := []bool{true, false, true}
	for i, acc := range strat.outcomes {
		if acc != want[i] {
			t.Fatalf("observed outcomes %v, want %v", strat.outcomes, want)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWorkerOfflineRepair exercises the incremental-removal path: a worker
// with a provisional assignment goes offline mid-batch and the task is
// reassigned via a fresh augmenting path; when no path remains the task is
// reported unserved and the finalized stats reflect it.
func TestWorkerOfflineRepair(t *testing.T) {
	e := quotedEngine(t, &fixedPrice{price: 2})
	mustSubmit(t, e,
		Tick(0),
		WorkerOnline(market.Worker{ID: 1, Loc: geo.Point{X: 10, Y: 10}, Radius: 10, Duration: 100}),
		WorkerOnline(market.Worker{ID: 2, Loc: geo.Point{X: 12, Y: 10}, Radius: 10, Duration: 100}),
		TaskArrival(market.Task{ID: 100, Origin: geo.Point{X: 11, Y: 11}, Distance: 3}),
		Tick(1),
		AcceptDecision(100, true),
	)
	ds := e.Poll()
	var assigned Decision
	for _, d := range ds {
		if d.TaskID == 100 && d.Served {
			assigned = d
		}
	}
	if !assigned.Served {
		t.Fatalf("task not assigned: %+v", ds)
	}

	mustSubmit(t, e, WorkerOffline(assigned.WorkerID))
	ds = e.Poll()
	if len(ds) != 1 {
		t.Fatalf("got %d repair decisions, want 1: %+v", len(ds), ds)
	}
	other := 1 + 2 - assigned.WorkerID
	if !ds[0].Served || ds[0].WorkerID != other {
		t.Fatalf("expected reassignment to worker %d, got %+v", other, ds[0])
	}

	mustSubmit(t, e, WorkerOffline(other))
	ds = e.Poll()
	if len(ds) != 1 || ds[0].Served || !ds[0].Accepted {
		t.Fatalf("expected unserved repair decision, got %+v", ds)
	}

	mustSubmit(t, e, Tick(2))
	st := e.Stats()
	if st.Accepted != 1 || st.Served != 0 || st.Revenue != 0 {
		t.Fatalf("finalized stats %+v, want accepted=1 served=0 revenue=0", st)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWindowBatching checks that Window > 1 groups several periods' tasks
// into one pricing batch.
func TestWindowBatching(t *testing.T) {
	strat := &fixedPrice{price: 2}
	e, err := New(Config{Grid: geo.SquareGrid(100, 10), Strategy: strat, Window: 2, AutoDecide: true})
	if err != nil {
		t.Fatal(err)
	}
	mustSubmit(t, e,
		Tick(0),
		WorkerOnline(market.Worker{ID: 1, Loc: geo.Point{X: 10, Y: 10}, Radius: 10, Duration: 100}),
		TaskArrival(market.Task{ID: 1, Origin: geo.Point{X: 11, Y: 11}, Distance: 1, Valuation: 5}),
		Tick(1),
		TaskArrival(market.Task{ID: 2, Origin: geo.Point{X: 9, Y: 9}, Distance: 2, Valuation: 5}),
	)
	if got := e.Stats().Batches; got != 0 {
		t.Fatalf("batch closed before the window boundary (batches=%d)", got)
	}
	mustSubmit(t, e, Tick(2))
	st := e.Stats()
	if st.Batches != 1 || st.TasksPriced != 2 {
		t.Fatalf("stats %+v, want one batch of two tasks", st)
	}
	// One worker, both tasks accepted: only the heavier task is served.
	if st.Served != 1 || st.Revenue != 4 {
		t.Fatalf("stats %+v, want served=1 revenue=4", st)
	}
	ds := e.Poll()
	for _, d := range ds {
		if d.Period != 1 {
			t.Fatalf("decision period %d, want 1 (window close period): %+v", d.Period, d)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestLateAndInvalidEvents(t *testing.T) {
	e := quotedEngine(t, &fixedPrice{price: 2})
	if err := e.Submit(Event{}); err == nil {
		t.Fatal("zero event accepted")
	}
	mustSubmit(t, e, AcceptDecision(999, true)) // no pending batch
	if st := e.Stats(); st.Late != 1 {
		t.Fatalf("late = %d, want 1", st.Late)
	}
	mustSubmit(t, e, WorkerOffline(999)) // unknown worker: same accounting as router
	if st := e.Stats(); st.Late != 2 {
		t.Fatalf("late = %d, want 2", st.Late)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Submit(Tick(0)); err != ErrClosed {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
	if err := e.Close(); err != ErrClosed {
		t.Fatalf("second Close = %v, want ErrClosed", err)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Grid: geo.SquareGrid(100, 10)}); err == nil {
		t.Fatal("missing strategy accepted")
	}
	if _, err := New(Config{Strategy: &fixedPrice{price: 2}}); err == nil {
		t.Fatal("empty grid accepted")
	}
	if _, err := New(Config{Grid: geo.SquareGrid(100, 10), Strategy: &fixedPrice{price: 2}, Shards: 2}); err == nil {
		t.Fatal("multi-shard without factory accepted")
	}
}

// TestIdleFastForward checks that a sparse tick sequence (large period
// jumps with no tasks) stays cheap and still evicts lapsed workers.
func TestIdleFastForward(t *testing.T) {
	strat := &fixedPrice{price: 2}
	e, err := New(Config{Grid: geo.SquareGrid(100, 10), Strategy: strat, AutoDecide: true})
	if err != nil {
		t.Fatal(err)
	}
	mustSubmit(t, e,
		Tick(0),
		WorkerOnline(market.Worker{ID: 1, Loc: geo.Point{X: 10, Y: 10}, Radius: 10, Duration: 5}),
		Tick(1_000_000),
		TaskArrival(market.Task{ID: 1, Origin: geo.Point{X: 11, Y: 11}, Distance: 1, Valuation: 5}),
		Tick(1_000_001),
	)
	st := e.Stats()
	// The worker lapsed long before the task arrived.
	if st.Accepted != 1 || st.Served != 0 {
		t.Fatalf("stats %+v, want accepted=1 served=0 (worker expired)", st)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestQuotedReassignmentSupersedes pins the decision-stream contract: when a
// later acceptance's augmenting path flips an earlier task to a different
// worker, a superseding decision is emitted, so the last decision per task
// always names the committed worker. Geometry: task 1 reaches workers 1 and
// 2, task 2 reaches only worker 1 — whatever worker task 1 grabs first, the
// final matching must be task1-worker2, task2-worker1.
func TestQuotedReassignmentSupersedes(t *testing.T) {
	e := quotedEngine(t, &fixedPrice{price: 2})
	mustSubmit(t, e,
		Tick(0),
		WorkerOnline(market.Worker{ID: 1, Loc: geo.Point{X: 10, Y: 10}, Radius: 5, Duration: 100}),
		WorkerOnline(market.Worker{ID: 2, Loc: geo.Point{X: 20, Y: 10}, Radius: 5, Duration: 100}),
		TaskArrival(market.Task{ID: 1, Origin: geo.Point{X: 15, Y: 10}, Distance: 3}), // both workers
		TaskArrival(market.Task{ID: 2, Origin: geo.Point{X: 7, Y: 10}, Distance: 2}),  // worker 1 only
		Tick(1),
		AcceptDecision(1, true),
		AcceptDecision(2, true),
	)
	last := map[int]Decision{}
	for _, d := range e.Poll() {
		if !d.Quoted {
			last[d.TaskID] = d
		}
	}
	if d := last[1]; !d.Served || d.WorkerID != 2 {
		t.Fatalf("task 1 final decision %+v, want served by worker 2", d)
	}
	if d := last[2]; !d.Served || d.WorkerID != 1 {
		t.Fatalf("task 2 final decision %+v, want served by worker 1", d)
	}
	mustSubmit(t, e, Tick(2))
	if st := e.Stats(); st.Served != 2 || st.Revenue != 10 {
		t.Fatalf("finalized stats %+v, want served=2 revenue=10", st)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestQuoteLapsesWithTerminalDecision checks that an unanswered quote gets
// a terminal unaccepted Decision when its batch finalizes, so stream
// consumers can settle open-quote state.
func TestQuoteLapsesWithTerminalDecision(t *testing.T) {
	e := quotedEngine(t, &fixedPrice{price: 2})
	mustSubmit(t, e,
		Tick(0),
		WorkerOnline(market.Worker{ID: 1, Loc: geo.Point{X: 10, Y: 10}, Radius: 10, Duration: 100}),
		TaskArrival(market.Task{ID: 42, Origin: geo.Point{X: 11, Y: 11}, Distance: 3}),
		Tick(1),
	)
	quotes := e.Poll()
	if len(quotes) != 1 || !quotes[0].Quoted {
		t.Fatalf("quotes = %+v", quotes)
	}
	mustSubmit(t, e, Tick(2)) // no reply: the quote lapses
	ds := e.Poll()
	if len(ds) != 1 || ds[0].TaskID != 42 || ds[0].Quoted || ds[0].Accepted || ds[0].Served {
		t.Fatalf("lapse decisions = %+v, want one terminal rejection for task 42", ds)
	}
	if st := e.Stats(); st.Accepted != 0 || st.Served != 0 {
		t.Fatalf("stats %+v, want nothing accepted/served", st)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}
