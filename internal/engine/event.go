package engine

import (
	"time"

	"spatialcrowd/internal/geo"
	"spatialcrowd/internal/market"
)

// Kind discriminates the event union.
type Kind uint8

const (
	// KindTaskArrival announces a new spatial task. Its origin cell routes
	// it to a shard; it joins that shard's open pricing batch.
	KindTaskArrival Kind = iota + 1
	// KindWorkerOnline adds a worker to the pool of the shard owning the
	// worker's current cell.
	KindWorkerOnline
	// KindWorkerOffline withdraws a worker (by ID) from its pool; if the
	// worker holds a provisional assignment in an in-flight batch, the
	// matching is repaired around it.
	KindWorkerOffline
	// KindWorkerMove relocates an online worker (by ID) to a new position.
	// Within a shard the pool entry moves in place; when the new position's
	// cell belongs to a different shard, the router migrates the worker with
	// a retire-in-old-shard / admit-in-new-shard handshake so no ghost copy
	// survives. A worker referenced by a pending quoted batch is pinned: the
	// location updates in place and the worker stays in its shard until the
	// batch finalizes.
	KindWorkerMove
	// KindAcceptDecision is a requester's reply to a price quote (only
	// meaningful when the engine runs with AutoDecide disabled).
	KindAcceptDecision
	// KindTick advances the engine clock to a period; crossing a window
	// boundary closes and prices the open batch of every shard.
	KindTick

	// Internal kinds (Submit rejects anything above KindTick; only the
	// router fabricates these).

	// kindEvict removes a stale pool copy from a shard without lifecycle
	// accounting: the retire-in-old-shard half of a duplicate online. A
	// provisional assignment held by the evicted copy is repaired exactly
	// like a worker going offline.
	kindEvict
	// kindAdmit inserts a migrated worker into its new shard's pool: the
	// admit-in-new-shard half of the cross-shard migration handshake.
	kindAdmit
	// kindCheckpoint barriers a checkpoint through the router and shards:
	// each recipient serializes its state into the control payload and
	// acknowledges. Riding the event FIFO guarantees the snapshot reflects
	// every previously submitted event.
	kindCheckpoint
	// kindRestore installs a previously checkpointed state, before any
	// market event has been submitted.
	kindRestore
	// kindBatch is an envelope carrying a slice of public events accepted by
	// one TrySubmitBatch call: N events cross the router channel in one send,
	// and the router unpacks them in order (see batch.go).
	kindBatch
)

// Event is one element of the engine's input stream. Use the constructors;
// the zero Event is invalid.
type Event struct {
	Kind     Kind
	Task     market.Task   // KindTaskArrival
	Worker   market.Worker // KindWorkerOnline, kindAdmit
	WorkerID int           // KindWorkerOffline, KindWorkerMove, kindEvict
	Loc      geo.Point     // KindWorkerMove: the worker's new position
	TaskID   int           // KindAcceptDecision
	Accept   bool          // KindAcceptDecision
	Period   int           // KindTick

	at  time.Time  // stamped by Submit; decision latencies measure from here
	mig *migration // router-owned cross-shard migration handshake
	ctl any        // checkpoint/restore control payload (see checkpoint.go)
}

// migration carries the reply channel of the synchronous migrate-out
// request the router sends to a worker's current shard. The shard answers
// on reply before processing its next event; the router blocks until then,
// so a migration is fully resolved (retired from the old shard, ready to
// admit into the new one) before any later event routes — the ordering
// guarantee that keeps sharded runs deterministic for a fixed input.
type migration struct {
	reply chan migrateReply
}

type migrateReply struct {
	worker market.Worker // the migrating worker, location updated (ok && !pinned)
	ok     bool          // the old shard still pooled the worker
	pinned bool          // a pending quoted batch holds the worker: moved in place, not migrated
}

// TaskArrival returns a task-arrival event.
func TaskArrival(t market.Task) Event { return Event{Kind: KindTaskArrival, Task: t} }

// WorkerOnline returns a worker-online event.
func WorkerOnline(w market.Worker) Event { return Event{Kind: KindWorkerOnline, Worker: w} }

// WorkerOffline returns a worker-offline event for the given worker ID.
func WorkerOffline(id int) Event { return Event{Kind: KindWorkerOffline, WorkerID: id} }

// WorkerMove returns a worker-relocation event: the worker with the given ID
// is now at to.
func WorkerMove(id int, to geo.Point) Event {
	return Event{Kind: KindWorkerMove, WorkerID: id, Loc: to}
}

// AcceptDecision returns a requester's accept/reject reply for a quoted task.
func AcceptDecision(taskID int, accept bool) Event {
	return Event{Kind: KindAcceptDecision, TaskID: taskID, Accept: accept}
}

// Tick returns a clock-advance event to the given period.
func Tick(period int) Event { return Event{Kind: KindTick, Period: period} }

// Decision is one element of the engine's output stream: a price quote, a
// requester outcome, or a (re)assignment for a single task.
type Decision struct {
	TaskID int
	Period int // period of the batch that priced the task
	Cell   int
	Price  float64
	// Quoted marks a price offer awaiting the requester's AcceptDecision
	// (AutoDecide disabled). Accepted/Served are not meaningful on quotes.
	Quoted   bool
	Accepted bool
	// Served reports a provisional worker assignment. In quoted mode it can
	// be superseded by a later Decision for the same task — when the
	// assigned worker goes offline before the batch finalizes, or when a
	// later acceptance's augmenting path reassigns the task to a different
	// worker. The last decision per task is the committed pairing; engine
	// statistics count only the finalized matching.
	Served   bool
	WorkerID int // assigned worker, or -1
	Revenue  float64
	// Latency is the time from the submission of the triggering event
	// (the closing Tick or the AcceptDecision) to this decision.
	Latency time.Duration
}
