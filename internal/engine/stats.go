package engine

import (
	"fmt"
	"math"
	"strings"
	"time"

	"spatialcrowd/internal/window"
)

// CacheStats re-exports the window executor's amortization counters so
// engine consumers (stats JSON, metrics) need not import internal/window.
type CacheStats = window.CacheStats

// Stats is a point-in-time snapshot of the engine's aggregate counters.
// Revenue, Accepted, and Served count finalized batches only; quoted batches
// still awaiting requester decisions are not included.
type Stats struct {
	// Events is the number of events accepted by Submit.
	Events int64
	// TasksPriced counts tasks that went through a strategy's Prices call.
	TasksPriced int64
	// Quoted counts price offers emitted in quoted (non-AutoDecide) mode.
	Quoted int64
	// Accepted and Served count requester acceptances and finalized
	// assignments; Revenue is the sum of d_r * p_r over served tasks.
	Accepted int64
	Served   int64
	Revenue  float64
	// ShardRevenue breaks Revenue down by shard (one entry in
	// deterministic mode).
	ShardRevenue []float64
	// ShardTasks breaks TasksPriced down by shard — the per-shard
	// throughput, which shows how evenly the partitioner spread the market.
	ShardTasks []int64
	// Batches counts closed non-empty pricing batches.
	Batches int64
	// Late counts events that referenced an unknown or already-settled
	// target (duplicate decisions, offlines or moves for unknown workers,
	// duplicate onlines, replies after their batch finalized).
	Late int64
	// Cache aggregates the executors' amortization counters (Config.Amortize);
	// all zero when amortization is off. ShardCache breaks Cache down by
	// shard (one entry in deterministic mode). With amortization on, every
	// priced window scores exactly one context hit or miss and one price hit
	// or miss, so CtxHits + CtxMisses == Batches + StrategyErrors — the soak
	// harness asserts it (restore-time rebuilds are deliberately excluded
	// from the deltas shards report).
	Cache      CacheStats
	ShardCache []CacheStats
	// StrategyErrors counts pricing batches dropped because the strategy
	// violated the one-price-per-task contract; LastStrategyError is the
	// most recent such error (a typed *window.PriceCountError), nil when
	// none occurred. The batch's tasks go unpriced instead of panicking the
	// shard goroutine.
	StrategyErrors    int64
	LastStrategyError error
	// Lifecycle aggregates the worker-lifecycle counters.
	Lifecycle LifecycleStats
	// P50Latency / P99Latency are online P² quantile estimates of decision
	// latency: the time from the triggering event's Submit to the decision.
	P50Latency time.Duration
	P99Latency time.Duration
	// Elapsed spans engine start to Close (or to now while running);
	// EventsPerSec is Events over Elapsed.
	Elapsed      time.Duration
	EventsPerSec float64
}

// LifecycleStats counts worker-lifecycle transitions (see lifecycle.go).
type LifecycleStats struct {
	// Onlines counts fresh pool admissions; DuplicateOnlines counts online
	// events for an ID the engine was already tracking (the stale copy is
	// retired first — no ghost supply — and the event also counts as Late).
	Onlines          int64
	DuplicateOnlines int64
	// Moves counts in-place relocations (the new cell stayed in the same
	// shard, or deterministic mode); Migrations counts completed cross-shard
	// retire/admit handshakes; PinnedMoves counts cross-shard moves applied
	// in place because a pending quoted batch held the worker.
	Moves       int64
	Migrations  int64
	PinnedMoves int64
	// Retirements by reason.
	RetiredAssigned int64
	RetiredExpired  int64
	RetiredOffline  int64
	// Pooled is the current number of workers across shard pools; Tracked
	// is the router lifecycle-table size and TrackedHeld how many of those
	// entries are in the quoted-held state (both 0 in deterministic mode).
	// All are bounded by the live population — the soak harness asserts it.
	Pooled      int64
	Tracked     int64
	TrackedHeld int64
}

// Stats snapshots the engine's counters. Safe to call concurrently with
// event processing; batch-grain values are consistent with each other.
func (e *Engine) Stats() Stats {
	s := Stats{
		Events:         e.events.Load(),
		TasksPriced:    e.priced.Load(),
		Quoted:         e.quoted.Load(),
		Batches:        e.batches.Load(),
		Late:           e.late.Load(),
		StrategyErrors: e.stratErrs.Load(),
		Lifecycle: LifecycleStats{
			Onlines:          e.lcOnlines.Load(),
			DuplicateOnlines: e.lcDuplicates.Load(),
			Moves:            e.lcMoves.Load(),
			Migrations:       e.lcMigrations.Load(),
			PinnedMoves:      e.lcPinned.Load(),
			RetiredAssigned:  e.lcAssigned.Load(),
			RetiredExpired:   e.lcExpired.Load(),
			RetiredOffline:   e.lcOffline.Load(),
			Pooled:           e.pooled.Load(),
			Tracked:          e.tracked.Load(),
			TrackedHeld:      e.trackedHeld.Load(),
		},
	}
	e.stratErrMu.Lock()
	s.LastStrategyError = e.lastStratErr
	e.stratErrMu.Unlock()
	e.aggMu.Lock()
	s.Accepted = e.accepted
	s.Served = e.served
	s.ShardRevenue = append([]float64(nil), e.shardRevenue...)
	s.ShardTasks = append([]int64(nil), e.shardTasks...)
	// Revenue restored onto a different shard layout loses per-shard
	// attribution; the carried total keeps Revenue exact (checkpoint.go).
	s.Revenue = e.carriedRevenue
	s.ShardCache = append([]CacheStats(nil), e.shardCache...)
	s.Cache = e.carriedCache
	e.aggMu.Unlock()
	for _, r := range s.ShardRevenue {
		s.Revenue += r
	}
	for _, c := range s.ShardCache {
		s.Cache = s.Cache.Add(c)
	}

	e.latMu.Lock()
	if p := e.p50.Quantile(); !math.IsNaN(p) {
		s.P50Latency = time.Duration(p)
	}
	if p := e.p99.Quantile(); !math.IsNaN(p) {
		s.P99Latency = time.Duration(p)
	}
	e.latMu.Unlock()

	end := time.Now() //lint:detsource wall-clock elapsed/throughput metrics only
	if ns := e.stoppedNanos.Load(); ns != 0 {
		end = time.Unix(0, ns)
	}
	s.Elapsed = end.Sub(e.started)
	if secs := s.Elapsed.Seconds(); secs > 0 {
		s.EventsPerSec = float64(s.Events) / secs
	}
	return s
}

// String renders the snapshot as a compact multi-line report.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "events      %d (%.0f/s over %v)\n", s.Events, s.EventsPerSec, s.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(&b, "batches     %d (window-closed, non-empty)\n", s.Batches)
	fmt.Fprintf(&b, "tasks       %d priced, %d quoted, %d accepted, %d served\n",
		s.TasksPriced, s.Quoted, s.Accepted, s.Served)
	fmt.Fprintf(&b, "revenue     %.2f\n", s.Revenue)
	if len(s.ShardRevenue) > 1 {
		fmt.Fprintf(&b, "per-shard   ")
		for i, r := range s.ShardRevenue {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "s%d=%.1f", i, r)
			if i < len(s.ShardTasks) {
				fmt.Fprintf(&b, "/%dt", s.ShardTasks[i])
			}
		}
		b.WriteString("\n")
	}
	if c := s.Cache; c != (CacheStats{}) {
		fmt.Fprintf(&b, "cache       ctx %d/%d hit, price %d/%d hit, kd %d incr / %d rebuilds\n",
			c.CtxHits, c.CtxHits+c.CtxMisses, c.PriceHits, c.PriceHits+c.PriceMisses,
			c.KDIncremental, c.KDRebuilds)
	}
	fmt.Fprintf(&b, "latency     p50=%v p99=%v\n", s.P50Latency.Round(time.Microsecond), s.P99Latency.Round(time.Microsecond))
	lc := s.Lifecycle
	fmt.Fprintf(&b, "workers     %d online (%d pooled now), %d assigned, %d expired, %d offline\n",
		lc.Onlines, lc.Pooled, lc.RetiredAssigned, lc.RetiredExpired, lc.RetiredOffline)
	if lc.Moves+lc.Migrations+lc.PinnedMoves+lc.DuplicateOnlines > 0 {
		fmt.Fprintf(&b, "mobility    %d moves, %d migrations, %d pinned, %d duplicate onlines\n",
			lc.Moves, lc.Migrations, lc.PinnedMoves, lc.DuplicateOnlines)
	}
	if s.Late > 0 {
		fmt.Fprintf(&b, "late        %d\n", s.Late)
	}
	if s.StrategyErrors > 0 {
		fmt.Fprintf(&b, "strategy    %d dropped batches (last: %v)\n", s.StrategyErrors, s.LastStrategyError)
	}
	return b.String()
}
