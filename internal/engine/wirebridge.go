package engine

import (
	"fmt"

	"spatialcrowd/internal/wire"
)

// The engine's public event kinds and internal/wire's are pinned to the same
// values: one canonical byte-level encoding serves the WAL and the network
// ingest frames. These guards turn an accidental renumbering on either side
// into a compile error.
const (
	_ = uint8(KindTaskArrival) - uint8(wire.KindTaskArrival)
	_ = uint8(wire.KindTaskArrival) - uint8(KindTaskArrival)
	_ = uint8(KindTick) - uint8(wire.KindTick)
	_ = uint8(wire.KindTick) - uint8(KindTick)
)

// Wire converts a public event to its canonical codec form (internal/wire).
// Runtime-only fields (the arrival stamp, migration and control payloads)
// do not travel; internal kinds have no wire form and panic — Submit
// validates kinds before anything reaches a codec.
func (ev Event) Wire() wire.Event {
	if ev.Kind == 0 || ev.Kind > KindTick {
		panic(fmt.Sprintf("engine: event kind %d has no wire form", ev.Kind))
	}
	return wire.Event{
		Kind:     wire.Kind(ev.Kind),
		Task:     ev.Task,
		Worker:   ev.Worker,
		WorkerID: ev.WorkerID,
		Loc:      ev.Loc,
		TaskID:   ev.TaskID,
		Accept:   ev.Accept,
		Period:   ev.Period,
	}
}

// EventFromWire converts a decoded wire event back to the engine's form:
// the inverse of Event.Wire for every public kind (wire.DecodeEvent already
// rejected unknown kinds).
func EventFromWire(w wire.Event) Event {
	return Event{
		Kind:     Kind(w.Kind),
		Task:     w.Task,
		Worker:   w.Worker,
		WorkerID: w.WorkerID,
		Loc:      w.Loc,
		TaskID:   w.TaskID,
		Accept:   w.Accept,
		Period:   w.Period,
	}
}

// DecodeWireEvents decodes a frame payload of concatenated wire-encoded
// events straight into engine events appended to dst — the batch-ingest hot
// path. Decoding through a single stack-resident wire.Event (instead of an
// intermediate slice) halves the memory traffic per event; dst is reused by
// callers so steady-state ingest allocates nothing here. Any malformed event
// fails the whole payload (a frame is all-or-nothing, mirroring
// wire.DecodeEvents).
func DecodeWireEvents(payload []byte, dst []Event) ([]Event, error) {
	start := len(dst)
	for off := 0; off < len(payload); {
		w, n, err := wire.DecodeEvent(payload[off:])
		if err != nil {
			return dst[:start], fmt.Errorf("engine: event %d (payload offset %d): %w", len(dst)-start, off, err)
		}
		dst = append(dst, EventFromWire(w))
		off += n
	}
	return dst, nil
}
