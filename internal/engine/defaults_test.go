package engine

import (
	"runtime"
	"testing"
)

func TestDefaultShards(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	if got := DefaultShards(procs + 100); got != procs {
		t.Errorf("DefaultShards(cells>procs) = %d, want GOMAXPROCS %d", got, procs)
	}
	if got := DefaultShards(1); got != 1 {
		t.Errorf("DefaultShards(1) = %d, want 1 (clamped to cell count)", got)
	}
	for _, cells := range []int{0, -5} {
		if got := DefaultShards(cells); got != 1 {
			t.Errorf("DefaultShards(%d) = %d, want floor of 1", cells, got)
		}
	}
}
