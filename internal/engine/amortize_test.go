package engine

import (
	"fmt"
	"testing"

	"spatialcrowd/internal/core"
	"spatialcrowd/internal/geo"
	"spatialcrowd/internal/market"
	"spatialcrowd/internal/spatial"
	"spatialcrowd/internal/workload"
)

// amortizeRun replays the instance through a deterministic AutoDecide engine
// and returns its final stats. Runs of a pair differ ONLY in Config.Amortize,
// which is exactly what the transparency contract says must not matter.
func amortizeRun(t *testing.T, in *market.Instance, shards int, on bool, mk func() core.Strategy) Stats {
	t.Helper()
	space := in.Spatial()
	cfg := Config{
		Space:      space,
		Shards:     shards,
		AutoDecide: true,
		Amortize:   on,
		OnDecision: func(Decision) {},
	}
	if shards > 0 {
		cfg.Partitioner = spatial.BalancedPartition(space, shards)
		cfg.NewStrategy = func(int) core.Strategy { return mk() }
	} else {
		cfg.Strategy = mk()
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReplayWith(e, in, ReplayOpts{}); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	return e.Stats()
}

// assertAmortizeEqual demands exact equality — not tolerance-based — between
// a fresh and an amortized run: same revenue to the bit, same funnel, same
// per-shard breakdown. Any drift means a cache hit returned content that a
// fresh rebuild would not have produced.
func assertAmortizeEqual(t *testing.T, off, on Stats) {
	t.Helper()
	if on.Revenue != off.Revenue {
		t.Fatalf("amortized revenue %.12f != fresh %.12f", on.Revenue, off.Revenue)
	}
	if on.Served != off.Served || on.Accepted != off.Accepted || on.TasksPriced != off.TasksPriced {
		t.Fatalf("funnel mismatch: amortized %d/%d/%d, fresh %d/%d/%d",
			on.TasksPriced, on.Accepted, on.Served,
			off.TasksPriced, off.Accepted, off.Served)
	}
	if len(on.ShardRevenue) != len(off.ShardRevenue) {
		t.Fatalf("shard count changed: %d vs %d", len(on.ShardRevenue), len(off.ShardRevenue))
	}
	for i := range on.ShardRevenue {
		if on.ShardRevenue[i] != off.ShardRevenue[i] {
			t.Fatalf("shard %d revenue %.12f != fresh %.12f", i, on.ShardRevenue[i], off.ShardRevenue[i])
		}
		if on.ShardTasks[i] != off.ShardTasks[i] {
			t.Fatalf("shard %d priced %d tasks, fresh %d", i, on.ShardTasks[i], off.ShardTasks[i])
		}
	}
}

// TestAmortizeTransparencyProperty sweeps random workloads over both spatial
// backends and both execution modes and asserts the amortized-rebuild layer
// is invisible in the books: revenue, funnel, and per-shard breakdowns are
// exactly equal with the cache on and off. MAPS is the adversarial choice of
// strategy here — it learns from every outcome, so a single stale cached
// price vector would compound into visible revenue drift.
func TestAmortizeTransparencyProperty(t *testing.T) {
	mkMAPS := func() core.Strategy {
		m, _ := core.NewMAPS(core.DefaultParams(), 2)
		return m
	}
	backends := map[string]*market.Instance{}
	for _, seed := range []int64{1, 7, 23, 91} {
		in, _, err := workload.Synthetic(workload.SyntheticConfig{
			Workers: 150 + int(seed)*13, Requests: 600 + int(seed)*29,
			Periods: 30, GridSide: 4, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		backends[fmt.Sprintf("grid/seed=%d", seed)] = in
	}
	road, _, _, err := workload.BeijingRoad(workload.RoadConfig{
		Variant: workload.BeijingRush, WorkerDuration: 8, Scale: 200, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	backends["road"] = road

	for name, in := range backends {
		for _, shards := range []int{0, 4} {
			t.Run(name+modeName(shards), func(t *testing.T) {
				off := amortizeRun(t, in, shards, false, mkMAPS)
				on := amortizeRun(t, in, shards, true, mkMAPS)
				if off.Revenue <= 0 {
					t.Fatalf("degenerate workload: fresh revenue %v", off.Revenue)
				}
				assertAmortizeEqual(t, off, on)
				if off.Cache != (CacheStats{}) {
					t.Fatalf("amortize off reported cache activity: %+v", off.Cache)
				}
				// Every priced window scores exactly one context outcome.
				if got := on.Cache.CtxHits + on.Cache.CtxMisses; got != on.Batches {
					t.Fatalf("ctx outcomes %d != batches %d (cache %+v)", got, on.Batches, on.Cache)
				}
				if got := on.Cache.PriceHits + on.Cache.PriceMisses; got != on.Batches {
					t.Fatalf("price outcomes %d != batches %d (cache %+v)", got, on.Batches, on.Cache)
				}
			})
		}
	}
}

// lowChurnInstance fabricates the workload the amortization layer is built
// for: the same demand pattern re-issued every period under fresh task IDs
// (repeated content, new identity — fingerprints match, IDs do not), served
// by a long-lived worker pool. Positions are deterministic functions of the
// task/worker index so every period's batch hashes identically.
func lowChurnInstance(periods, tasksPerPeriod, workers int) *market.Instance {
	grid := geo.SquareGrid(100, 4)
	in := &market.Instance{Grid: grid, Periods: periods}
	for p := 0; p < periods; p++ {
		for i := 0; i < tasksPerPeriod; i++ {
			origin := geo.Point{X: float64(5 + (i*17)%90), Y: float64(5 + (i*29)%90)}
			dest := geo.Point{X: float64(5 + (i*13)%90), Y: float64(5 + (i*7)%90)}
			in.Tasks = append(in.Tasks, market.Task{
				ID:        p*tasksPerPeriod + i + 1,
				Period:    p,
				Origin:    origin,
				Dest:      dest,
				Distance:  1 + origin.Dist(dest),
				Valuation: 50,
			})
		}
	}
	for j := 0; j < workers; j++ {
		in.Workers = append(in.Workers, market.Worker{
			ID:       1_000_000 + j,
			Period:   0,
			Loc:      geo.Point{X: float64((j * 11) % 100), Y: float64((j * 19) % 100)},
			Radius:   300,
			Duration: periods,
		})
	}
	return in
}

// TestAmortizeLowChurnCacheHits drives the repeating-demand fixture through
// fresh and amortized engines and asserts both sides of the bargain: the
// books agree exactly, AND the cache actually fired — repeated task content
// scores context hits, and once the pool quiesces the stateless SDR ladder
// scores price-vector hits. A transparent cache that never hits would pass
// the property test above while being dead weight; this pins the hit path.
func TestAmortizeLowChurnCacheHits(t *testing.T) {
	in := lowChurnInstance(40, 12, 72)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	mkSDR := func() core.Strategy {
		s, _ := core.NewSDR(core.DefaultParams(), 2)
		return s
	}
	off := amortizeRun(t, in, 0, false, mkSDR)
	on := amortizeRun(t, in, 0, true, mkSDR)
	if off.Revenue <= 0 {
		t.Fatalf("degenerate fixture: fresh revenue %v", off.Revenue)
	}
	assertAmortizeEqual(t, off, on)

	c := on.Cache
	if c.CtxHits == 0 {
		t.Fatalf("no context cache hits on repeating demand: %+v", c)
	}
	if c.PriceHits == 0 {
		t.Fatalf("no price cache hits for SDR on a quiesced pool: %+v", c)
	}
	if got := c.CtxHits + c.CtxMisses; got != on.Batches {
		t.Fatalf("ctx outcomes %d != batches %d (%+v)", got, on.Batches, c)
	}
	// The repeated content dominates: all but the first window reuse the
	// context, so hits must carry the overwhelming share.
	if c.CtxHits < c.CtxMisses {
		t.Fatalf("expected ctx hits to dominate on low churn, got %d hits / %d misses", c.CtxHits, c.CtxMisses)
	}
}
