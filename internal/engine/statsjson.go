package engine

import (
	"encoding/json"
	"time"
)

// statsJSON is the stable wire shape of Stats. Durations encode twice: as
// integer nanoseconds (the machine-readable value — never changes meaning)
// and as Go's human duration string (for eyeballs). The error field encodes
// as its message or null. Field names are part of the public contract: the
// server's /stats endpoint and any scraper built on it depend on them, so
// additions are fine but renames and removals are not (the MarshalJSON test
// pins the set).
type statsJSON struct {
	Events            int64         `json:"events"`
	TasksPriced       int64         `json:"tasks_priced"`
	Quoted            int64         `json:"quoted"`
	Accepted          int64         `json:"accepted"`
	Served            int64         `json:"served"`
	Revenue           float64       `json:"revenue"`
	ShardRevenue      []float64     `json:"shard_revenue,omitempty"`
	ShardTasks        []int64       `json:"shard_tasks,omitempty"`
	Batches           int64         `json:"batches"`
	Late              int64         `json:"late"`
	StrategyErrors    int64         `json:"strategy_errors"`
	LastStrategyError *string       `json:"last_strategy_error"`
	Cache             cacheJSON     `json:"cache"`
	ShardCache        []cacheJSON   `json:"shard_cache,omitempty"`
	Lifecycle         lifecycleJSON `json:"lifecycle"`
	P50LatencyNanos   int64         `json:"p50_latency_ns"`
	P50Latency        string        `json:"p50_latency"` //lint:snapfields human-readable duplicate; decode reads the _ns field
	P99LatencyNanos   int64         `json:"p99_latency_ns"`
	P99Latency        string        `json:"p99_latency"` //lint:snapfields human-readable duplicate; decode reads the _ns field
	ElapsedNanos      int64         `json:"elapsed_ns"`
	Elapsed           string        `json:"elapsed"` //lint:snapfields human-readable duplicate; decode reads the _ns field
	EventsPerSec      float64       `json:"events_per_sec"`
}

type cacheJSON struct {
	CtxHits       int64 `json:"ctx_hits"`
	CtxMisses     int64 `json:"ctx_misses"`
	PriceHits     int64 `json:"price_hits"`
	PriceMisses   int64 `json:"price_misses"`
	KDIncremental int64 `json:"kd_incremental"`
	KDRebuilds    int64 `json:"kd_rebuilds"`
}

func cacheToJSON(c CacheStats) cacheJSON {
	return cacheJSON{CtxHits: c.CtxHits, CtxMisses: c.CtxMisses,
		PriceHits: c.PriceHits, PriceMisses: c.PriceMisses,
		KDIncremental: c.KDIncremental, KDRebuilds: c.KDRebuilds}
}

func cacheFromJSON(j cacheJSON) CacheStats {
	return CacheStats{CtxHits: j.CtxHits, CtxMisses: j.CtxMisses,
		PriceHits: j.PriceHits, PriceMisses: j.PriceMisses,
		KDIncremental: j.KDIncremental, KDRebuilds: j.KDRebuilds}
}

type lifecycleJSON struct {
	Onlines          int64 `json:"onlines"`
	DuplicateOnlines int64 `json:"duplicate_onlines"`
	Moves            int64 `json:"moves"`
	Migrations       int64 `json:"migrations"`
	PinnedMoves      int64 `json:"pinned_moves"`
	RetiredAssigned  int64 `json:"retired_assigned"`
	RetiredExpired   int64 `json:"retired_expired"`
	RetiredOffline   int64 `json:"retired_offline"`
	Pooled           int64 `json:"pooled"`
	Tracked          int64 `json:"tracked"`
	TrackedHeld      int64 `json:"tracked_held"`
}

// MarshalJSON encodes the snapshot in the stable shape above. Stats is a
// value type, so this also covers &Stats.
func (s Stats) MarshalJSON() ([]byte, error) {
	j := statsJSON{
		Events:          s.Events,
		TasksPriced:     s.TasksPriced,
		Quoted:          s.Quoted,
		Accepted:        s.Accepted,
		Served:          s.Served,
		Revenue:         s.Revenue,
		ShardRevenue:    s.ShardRevenue,
		ShardTasks:      s.ShardTasks,
		Batches:         s.Batches,
		Late:            s.Late,
		StrategyErrors:  s.StrategyErrors,
		P50LatencyNanos: int64(s.P50Latency),
		P50Latency:      s.P50Latency.String(),
		P99LatencyNanos: int64(s.P99Latency),
		P99Latency:      s.P99Latency.String(),
		ElapsedNanos:    int64(s.Elapsed),
		Elapsed:         s.Elapsed.String(),
		EventsPerSec:    s.EventsPerSec,
		Cache:           cacheToJSON(s.Cache),
		Lifecycle: lifecycleJSON{
			Onlines:          s.Lifecycle.Onlines,
			DuplicateOnlines: s.Lifecycle.DuplicateOnlines,
			Moves:            s.Lifecycle.Moves,
			Migrations:       s.Lifecycle.Migrations,
			PinnedMoves:      s.Lifecycle.PinnedMoves,
			RetiredAssigned:  s.Lifecycle.RetiredAssigned,
			RetiredExpired:   s.Lifecycle.RetiredExpired,
			RetiredOffline:   s.Lifecycle.RetiredOffline,
			Pooled:           s.Lifecycle.Pooled,
			Tracked:          s.Lifecycle.Tracked,
			TrackedHeld:      s.Lifecycle.TrackedHeld,
		},
	}
	for _, c := range s.ShardCache {
		j.ShardCache = append(j.ShardCache, cacheToJSON(c))
	}
	if s.LastStrategyError != nil {
		msg := s.LastStrategyError.Error()
		j.LastStrategyError = &msg
	}
	return json.Marshal(j)
}

// UnmarshalJSON decodes the MarshalJSON shape back into a Stats. The
// round trip is lossy only in LastStrategyError, which comes back as an
// opaque error wrapping the original message (the typed *PriceCountError
// does not survive the wire).
func (s *Stats) UnmarshalJSON(data []byte) error {
	var j statsJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	*s = Stats{
		Events:         j.Events,
		TasksPriced:    j.TasksPriced,
		Quoted:         j.Quoted,
		Accepted:       j.Accepted,
		Served:         j.Served,
		Revenue:        j.Revenue,
		ShardRevenue:   j.ShardRevenue,
		ShardTasks:     j.ShardTasks,
		Batches:        j.Batches,
		Late:           j.Late,
		StrategyErrors: j.StrategyErrors,
		P50Latency:     time.Duration(j.P50LatencyNanos),
		P99Latency:     time.Duration(j.P99LatencyNanos),
		Elapsed:        time.Duration(j.ElapsedNanos),
		EventsPerSec:   j.EventsPerSec,
		Cache:          cacheFromJSON(j.Cache),
		Lifecycle: LifecycleStats{
			Onlines:          j.Lifecycle.Onlines,
			DuplicateOnlines: j.Lifecycle.DuplicateOnlines,
			Moves:            j.Lifecycle.Moves,
			Migrations:       j.Lifecycle.Migrations,
			PinnedMoves:      j.Lifecycle.PinnedMoves,
			RetiredAssigned:  j.Lifecycle.RetiredAssigned,
			RetiredExpired:   j.Lifecycle.RetiredExpired,
			RetiredOffline:   j.Lifecycle.RetiredOffline,
			Pooled:           j.Lifecycle.Pooled,
			Tracked:          j.Lifecycle.Tracked,
			TrackedHeld:      j.Lifecycle.TrackedHeld,
		},
	}
	for _, c := range j.ShardCache {
		s.ShardCache = append(s.ShardCache, cacheFromJSON(c))
	}
	if j.LastStrategyError != nil {
		s.LastStrategyError = statsWireError(*j.LastStrategyError)
	}
	return nil
}

// statsWireError is the decoded form of LastStrategyError: the original
// message, no longer the typed value.
type statsWireError string

func (e statsWireError) Error() string { return string(e) }
