package engine

// Batched submission: the ingest fast path hands a decoded batch of events
// to the engine in ONE bounded-channel operation instead of N. A kindBatch
// envelope carries the accepted events across the router channel; the router
// unpacks it in order, so a batch is indistinguishable from the same events
// submitted singly — same routing, same WAL order, same decisions.
//
// Admission stays bounded at batch granularity: an envelope occupies one
// channel slot but represents many events, so the engine tracks the events
// of not-yet-unpacked envelopes in batchPending and admits at most
//
//	cap(in) - len(in) - batchPending
//
// events per call. A batch that does not fit is accepted as a prefix —
// TrySubmitBatch reports how many events were taken alongside ErrBusy, the
// exact contract the HTTP server's 429-resume protocol exposes to clients
// (the accepted count is the resume cursor).

import (
	"fmt"
	"time"

	"spatialcrowd/internal/wal"
)

// batchChunk caps how many events one envelope carries. A larger submitted
// batch is split across envelopes: the router interleaves Tick broadcasts
// and checkpoint barriers between envelopes, so one huge batch cannot stall
// the control plane, and pooled envelope slices stay small enough to recycle.
const batchChunk = 1024

func (e *Engine) getBatchSlice() *[]Event {
	if p, ok := e.batchPool.Get().(*[]Event); ok {
		return p
	}
	s := make([]Event, 0, batchChunk)
	return &s
}

// dispatchBatch unpacks one kindBatch envelope in the router goroutine:
// events dispatch in submission order, then the envelope's budget is
// released and its slice recycled.
func (e *Engine) dispatchBatch(ev Event) {
	p := ev.ctl.(*[]Event)
	for _, sub := range *p {
		e.dispatch(sub)
	}
	e.batchPending.Add(-int64(len(*p)))
	*p = (*p)[:0]
	e.batchPool.Put(p)
}

// TrySubmitBatch submits up to len(evs) events in one engine operation and
// reports how many were accepted — always a prefix of evs, applied in order.
// When the router's budget cannot take the whole batch it accepts what fits
// and returns the count with ErrBusy (0 when nothing fit), so the caller
// resumes from evs[accepted:] after backing off; with a WAL attached every
// accepted event is logged (append-before-apply) before the call returns,
// exactly like single-event submission. Deterministic mode processes inline
// and never reports ErrBusy. An invalid kind anywhere in evs rejects the
// whole batch before any event is accepted.
func (e *Engine) TrySubmitBatch(evs []Event) (int, error) {
	return e.submitBatch(evs, false)
}

// SubmitBatch is TrySubmitBatch without ErrBusy: it blocks until every event
// is accepted (or the engine closes), retrying the unaccepted suffix as
// router budget frees up.
func (e *Engine) SubmitBatch(evs []Event) error {
	_, err := e.submitBatch(evs, true)
	return err
}

func (e *Engine) submitBatch(evs []Event, block bool) (int, error) {
	for i := range evs {
		if evs[i].Kind == 0 || evs[i].Kind > KindTick {
			return 0, fmt.Errorf("engine: batch event %d has invalid kind %d", i, evs[i].Kind)
		}
	}
	accepted := 0
	for accepted < len(evs) {
		chunk := evs[accepted:]
		if len(chunk) > batchChunk {
			chunk = chunk[:batchChunk]
		}
		n, err := e.submitChunk(chunk)
		accepted += n
		switch {
		case err != nil && err != ErrBusy:
			return accepted, err
		case n == len(chunk):
			// Full chunk accepted; on to the next envelope.
		case !block:
			return accepted, ErrBusy
		case n == 0:
			// Budget exhausted: wait for the router to drain. The sleep is
			// backpressure pacing, not a correctness timing source.
			time.Sleep(50 * time.Microsecond)
		}
	}
	return accepted, nil
}

// submitChunk admits one envelope's worth of events (len(chunk) <=
// batchChunk), returning the accepted prefix length.
func (e *Engine) submitChunk(chunk []Event) (int, error) {
	if e.closed.Load() {
		return 0, ErrClosed
	}
	if len(chunk) == 0 {
		return 0, nil
	}
	now := time.Now() //lint:detsource arrival stamp feeds latency metrics; replay decisions carry event-time periods
	if e.wal != nil {
		return e.submitChunkWAL(chunk, now)
	}
	if e.det != nil {
		for _, ev := range chunk {
			ev.at = now
			e.det.handle(ev)
		}
		e.events.Add(int64(len(chunk)))
		return len(chunk), nil
	}
	e.batchMu.Lock()
	defer e.batchMu.Unlock()
	n := e.batchBudget(len(chunk))
	if n == 0 {
		return 0, ErrBusy
	}
	p := e.getBatchSlice()
	*p = append(*p, chunk[:n]...)
	for i := range *p {
		(*p)[i].at = now
	}
	e.batchPending.Add(int64(n))
	select {
	case e.in <- Event{Kind: kindBatch, ctl: p}:
		e.events.Add(int64(n))
		return n, nil
	default:
		// A single-event submitter took the last channel slot between the
		// budget check and the send: roll back and report busy.
		e.batchPending.Add(-int64(n))
		*p = (*p)[:0]
		e.batchPool.Put(p)
		return 0, ErrBusy
	}
}

// submitChunkWAL is submitChunk under Config.WAL: append every accepted
// event before any applies, under the same append-order-is-apply-order lock
// as single-event submission. walMu guarantees the envelope's channel slot
// cannot be stolen between the budget check and the send (all WAL-mode
// submitters hold walMu; the router only drains), so a logged event is
// always delivered.
func (e *Engine) submitChunkWAL(chunk []Event, now time.Time) (int, error) {
	e.walMu.Lock()
	defer e.walMu.Unlock()
	if !e.walReady {
		return 0, fmt.Errorf("engine: WAL holds unreplayed records; run RecoverWAL before submitting")
	}
	if e.det != nil {
		for i, ev := range chunk {
			ev.at = now
			if _, err := e.wal.Append(wal.RecEvent, encodeEvent(ev)); err != nil {
				// Events before i were logged AND applied: the accepted
				// prefix stays consistent with the log.
				return i, fmt.Errorf("engine: wal append: %w", err)
			}
			e.events.Add(1)
			e.det.handle(ev)
		}
		return len(chunk), nil
	}
	n := e.batchBudget(len(chunk))
	if n == 0 {
		return 0, ErrBusy
	}
	p := e.getBatchSlice()
	var apErr error
	for i := 0; i < n; i++ {
		ev := chunk[i]
		ev.at = now
		if _, err := e.wal.Append(wal.RecEvent, encodeEvent(ev)); err != nil {
			// Truncate the accepted prefix to what was logged, so the log
			// and the applied stream stay identical.
			apErr = fmt.Errorf("engine: wal append: %w", err)
			n = i
			break
		}
		*p = append(*p, ev)
	}
	if n == 0 {
		*p = (*p)[:0]
		e.batchPool.Put(p)
		return 0, apErr
	}
	e.batchPending.Add(int64(n))
	e.events.Add(int64(n))
	e.in <- Event{Kind: kindBatch, ctl: p}
	return n, apErr
}

// batchBudget reports how many of want events the router can take now:
// free channel slots minus events still packed in undispatched envelopes,
// and at least one slot for this call's own envelope (callers hold batchMu
// or walMu, so no other batch can spend the same budget).
func (e *Engine) batchBudget(want int) int {
	avail := cap(e.in) - len(e.in) - int(e.batchPending.Load())
	if avail <= 0 {
		return 0
	}
	if want > avail {
		want = avail
	}
	return want
}
