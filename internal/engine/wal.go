package engine

// Durable write-ahead logging for the event stream. With Config.WAL set,
// every accepted public event is framed through a deterministic binary
// codec and appended to the log BEFORE it is applied (inline handle in
// deterministic mode, router send in concurrent mode), with appends and
// sends serialized under one mutex so the log order is exactly the apply
// order. Crash recovery is then RecoverWAL: restore the last checkpoint
// (which records the LSN it covers), replay the WAL tail past that LSN,
// and — because the engine is bit-deterministic for a fixed event order —
// the recovered revenue and lifecycle ledger match the uninterrupted run
// exactly. The crash-injection harness in walcrash_test.go proves this for
// every injected fault point.

import (
	"fmt"
	"io"
	"time"

	"spatialcrowd/internal/wal"
	"spatialcrowd/internal/wire"
)

// encodeEvent serializes a public event into a WAL record payload using the
// shared canonical codec (internal/wire): fixed-width little-endian with
// floats as IEEE-754 bits, so a replayed event is bit-identical to the
// submitted one — the property the exact-recovery guarantee rests on. The
// same bytes are what a binary ingest frame carries, so WAL and network
// agree on every event's one encoding.
func encodeEvent(ev Event) []byte {
	b, err := wire.AppendEvent(nil, ev.Wire())
	if err != nil {
		// Submit validated the kind before appending; internal kinds never log.
		panic(fmt.Sprintf("engine: encodeEvent: %v", err))
	}
	return b
}

// decodeEvent is encodeEvent's inverse. The wire codec validates the tag and
// the frame length, so a corrupt record fails the replay descriptively
// instead of reviving a malformed event; a WAL record must hold exactly one
// event.
func decodeEvent(b []byte) (Event, error) {
	w, n, err := wire.DecodeEvent(b)
	if err != nil {
		return Event{}, fmt.Errorf("engine: wal event record: %w", err)
	}
	if n != len(b) {
		return Event{}, fmt.Errorf("engine: wal event record has %d trailing bytes", len(b)-n)
	}
	return EventFromWire(w), nil
}

// submitWAL is the append-before-apply submit path (Config.WAL set). One
// mutex serializes append + apply across all submitters, so the log order
// is the apply order; under that lock a non-blocking TrySubmit checks
// channel capacity BEFORE appending — a rejected event is never logged,
// and a logged event's send cannot block (no other sender can fill the
// checked slack while we hold the lock).
func (e *Engine) submitWAL(ev Event, block bool) error {
	e.walMu.Lock()
	defer e.walMu.Unlock()
	if !e.walReady {
		return fmt.Errorf("engine: WAL holds unreplayed records; run RecoverWAL before submitting")
	}
	if !block && e.det == nil && len(e.in) == cap(e.in) {
		return ErrBusy
	}
	if _, err := e.wal.Append(wal.RecEvent, encodeEvent(ev)); err != nil {
		return fmt.Errorf("engine: wal append: %w", err)
	}
	e.events.Add(1)
	if e.det != nil {
		e.det.handle(ev)
		return nil
	}
	e.in <- ev
	return nil
}

// RecoverWAL rebuilds state after a crash: restore the checkpoint read from
// snapshot (nil when no checkpoint survived), then decode and re-apply the
// WAL tail past the checkpoint's recorded LSN. The engine must be freshly
// created with Config.WAL set to the (re)opened log; until RecoverWAL runs,
// an engine attached to a non-empty log refuses Submit, so un-replayed
// records can never be silently overwritten by diverging new appends.
// Returns the number of tail events replayed.
func (e *Engine) RecoverWAL(snapshot io.Reader) (int, error) {
	if e.wal == nil {
		return 0, fmt.Errorf("engine: RecoverWAL needs Config.WAL")
	}
	e.walMu.Lock()
	defer e.walMu.Unlock()
	if e.events.Load() != 0 {
		return 0, fmt.Errorf("engine: RecoverWAL needs a fresh engine (events already submitted)")
	}
	if e.restored {
		return 0, fmt.Errorf("engine: RecoverWAL needs a fresh engine (already restored)")
	}
	from := uint64(1)
	if snapshot != nil {
		if err := e.Restore(snapshot); err != nil {
			return 0, err
		}
		from = e.restoredWALLSN + 1
	}
	replayed := 0
	err := e.wal.Replay(from, func(rec wal.Record) error {
		switch rec.Type {
		case wal.RecEvent:
			ev, err := decodeEvent(rec.Data)
			if err != nil {
				return fmt.Errorf("engine: wal record %d: %w", rec.LSN, err)
			}
			ev.at = time.Now() //lint:detsource replayed arrival stamp feeds latency metrics only
			e.events.Add(1)
			if e.det != nil {
				e.det.handle(ev)
			} else {
				e.in <- ev
			}
			replayed++
		default:
			// Checkpoint markers and future record types carry no event.
		}
		return nil
	})
	if err != nil {
		return replayed, err
	}
	e.walReady = true
	return replayed, nil
}

// WALLastLSN reports the LSN of the last event appended to the engine's
// WAL (0 without a WAL or before any append).
func (e *Engine) WALLastLSN() uint64 {
	if e.wal == nil {
		return 0
	}
	return e.wal.LastLSN()
}

// WALDurableLSN reports the last WAL LSN covered by a successful fsync.
func (e *Engine) WALDurableLSN() uint64 {
	if e.wal == nil {
		return 0
	}
	return e.wal.DurableLSN()
}

// SyncWAL forces the WAL's durable prefix up to the last append: the group
// commit barrier the network server places before acknowledging an ingest
// response, so "accepted" always means "survives a crash". No-op without a
// WAL.
func (e *Engine) SyncWAL() error {
	if e.wal == nil {
		return nil
	}
	return e.wal.Sync()
}

// WALStats snapshots the attached log's gauges (zero without a WAL).
func (e *Engine) WALStats() wal.Stats {
	if e.wal == nil {
		return wal.Stats{}
	}
	return e.wal.Stats()
}
