package engine

// Durable write-ahead logging for the event stream. With Config.WAL set,
// every accepted public event is framed through a deterministic binary
// codec and appended to the log BEFORE it is applied (inline handle in
// deterministic mode, router send in concurrent mode), with appends and
// sends serialized under one mutex so the log order is exactly the apply
// order. Crash recovery is then RecoverWAL: restore the last checkpoint
// (which records the LSN it covers), replay the WAL tail past that LSN,
// and — because the engine is bit-deterministic for a fixed event order —
// the recovered revenue and lifecycle ledger match the uninterrupted run
// exactly. The crash-injection harness in walcrash_test.go proves this for
// every injected fault point.

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"time"

	"spatialcrowd/internal/geo"
	"spatialcrowd/internal/market"
	"spatialcrowd/internal/wal"
)

// Fixed frame sizes per kind (1 tag byte + little-endian fields).
const (
	walTaskArrivalLen    = 1 + 8*8 // id, period, origin, dest, distance, valuation
	walWorkerOnlineLen   = 1 + 6*8 // id, period, loc, radius, duration
	walWorkerOfflineLen  = 1 + 8   // id
	walWorkerMoveLen     = 1 + 3*8 // id, to
	walAcceptDecisionLen = 1 + 8 + 1
	walTickLen           = 1 + 8
)

// encodeEvent serializes a public event into a WAL record payload. The
// encoding is fixed-width little-endian with floats as IEEE-754 bits, so a
// replayed event is bit-identical to the submitted one — the property the
// exact-recovery guarantee rests on.
func encodeEvent(ev Event) []byte {
	switch ev.Kind {
	case KindTaskArrival:
		b := make([]byte, walTaskArrivalLen)
		b[0] = byte(ev.Kind)
		putI64(b[1:], int64(ev.Task.ID))
		putI64(b[9:], int64(ev.Task.Period))
		putF64(b[17:], ev.Task.Origin.X)
		putF64(b[25:], ev.Task.Origin.Y)
		putF64(b[33:], ev.Task.Dest.X)
		putF64(b[41:], ev.Task.Dest.Y)
		putF64(b[49:], ev.Task.Distance)
		putF64(b[57:], ev.Task.Valuation)
		return b
	case KindWorkerOnline:
		b := make([]byte, walWorkerOnlineLen)
		b[0] = byte(ev.Kind)
		putI64(b[1:], int64(ev.Worker.ID))
		putI64(b[9:], int64(ev.Worker.Period))
		putF64(b[17:], ev.Worker.Loc.X)
		putF64(b[25:], ev.Worker.Loc.Y)
		putF64(b[33:], ev.Worker.Radius)
		putI64(b[41:], int64(ev.Worker.Duration))
		return b
	case KindWorkerOffline:
		b := make([]byte, walWorkerOfflineLen)
		b[0] = byte(ev.Kind)
		putI64(b[1:], int64(ev.WorkerID))
		return b
	case KindWorkerMove:
		b := make([]byte, walWorkerMoveLen)
		b[0] = byte(ev.Kind)
		putI64(b[1:], int64(ev.WorkerID))
		putF64(b[9:], ev.Loc.X)
		putF64(b[17:], ev.Loc.Y)
		return b
	case KindAcceptDecision:
		b := make([]byte, walAcceptDecisionLen)
		b[0] = byte(ev.Kind)
		putI64(b[1:], int64(ev.TaskID))
		if ev.Accept {
			b[9] = 1
		}
		return b
	case KindTick:
		b := make([]byte, walTickLen)
		b[0] = byte(ev.Kind)
		putI64(b[1:], int64(ev.Period))
		return b
	}
	// Submit validated the kind before appending; internal kinds never log.
	panic(fmt.Sprintf("engine: encodeEvent on kind %d", ev.Kind))
}

// decodeEvent is encodeEvent's inverse. It validates the tag and the frame
// length, so a corrupt record fails the replay descriptively instead of
// reviving a malformed event.
func decodeEvent(b []byte) (Event, error) {
	if len(b) == 0 {
		return Event{}, fmt.Errorf("engine: empty wal event record")
	}
	kind := Kind(b[0])
	want := 0
	switch kind {
	case KindTaskArrival:
		want = walTaskArrivalLen
	case KindWorkerOnline:
		want = walWorkerOnlineLen
	case KindWorkerOffline:
		want = walWorkerOfflineLen
	case KindWorkerMove:
		want = walWorkerMoveLen
	case KindAcceptDecision:
		want = walAcceptDecisionLen
	case KindTick:
		want = walTickLen
	default:
		return Event{}, fmt.Errorf("engine: wal event record has unknown kind %d", b[0])
	}
	if len(b) != want {
		return Event{}, fmt.Errorf("engine: wal %v record is %d bytes, want %d", kind, len(b), want)
	}
	switch kind {
	case KindTaskArrival:
		return TaskArrival(market.Task{
			ID:        int(getI64(b[1:])),
			Period:    int(getI64(b[9:])),
			Origin:    geo.Point{X: getF64(b[17:]), Y: getF64(b[25:])},
			Dest:      geo.Point{X: getF64(b[33:]), Y: getF64(b[41:])},
			Distance:  getF64(b[49:]),
			Valuation: getF64(b[57:]),
		}), nil
	case KindWorkerOnline:
		return WorkerOnline(market.Worker{
			ID:       int(getI64(b[1:])),
			Period:   int(getI64(b[9:])),
			Loc:      geo.Point{X: getF64(b[17:]), Y: getF64(b[25:])},
			Radius:   getF64(b[33:]),
			Duration: int(getI64(b[41:])),
		}), nil
	case KindWorkerOffline:
		return WorkerOffline(int(getI64(b[1:]))), nil
	case KindWorkerMove:
		return WorkerMove(int(getI64(b[1:])), geo.Point{X: getF64(b[9:]), Y: getF64(b[17:])}), nil
	case KindAcceptDecision:
		return AcceptDecision(int(getI64(b[1:])), b[9] == 1), nil
	default: // KindTick; the switch above excluded everything else
		return Tick(int(getI64(b[1:]))), nil
	}
}

func putI64(b []byte, v int64)   { binary.LittleEndian.PutUint64(b, uint64(v)) }
func getI64(b []byte) int64      { return int64(binary.LittleEndian.Uint64(b)) }
func putF64(b []byte, v float64) { binary.LittleEndian.PutUint64(b, math.Float64bits(v)) }
func getF64(b []byte) float64    { return math.Float64frombits(binary.LittleEndian.Uint64(b)) }

// submitWAL is the append-before-apply submit path (Config.WAL set). One
// mutex serializes append + apply across all submitters, so the log order
// is the apply order; under that lock a non-blocking TrySubmit checks
// channel capacity BEFORE appending — a rejected event is never logged,
// and a logged event's send cannot block (no other sender can fill the
// checked slack while we hold the lock).
func (e *Engine) submitWAL(ev Event, block bool) error {
	e.walMu.Lock()
	defer e.walMu.Unlock()
	if !e.walReady {
		return fmt.Errorf("engine: WAL holds unreplayed records; run RecoverWAL before submitting")
	}
	if !block && e.det == nil && len(e.in) == cap(e.in) {
		return ErrBusy
	}
	if _, err := e.wal.Append(wal.RecEvent, encodeEvent(ev)); err != nil {
		return fmt.Errorf("engine: wal append: %w", err)
	}
	e.events.Add(1)
	if e.det != nil {
		e.det.handle(ev)
		return nil
	}
	e.in <- ev
	return nil
}

// RecoverWAL rebuilds state after a crash: restore the checkpoint read from
// snapshot (nil when no checkpoint survived), then decode and re-apply the
// WAL tail past the checkpoint's recorded LSN. The engine must be freshly
// created with Config.WAL set to the (re)opened log; until RecoverWAL runs,
// an engine attached to a non-empty log refuses Submit, so un-replayed
// records can never be silently overwritten by diverging new appends.
// Returns the number of tail events replayed.
func (e *Engine) RecoverWAL(snapshot io.Reader) (int, error) {
	if e.wal == nil {
		return 0, fmt.Errorf("engine: RecoverWAL needs Config.WAL")
	}
	e.walMu.Lock()
	defer e.walMu.Unlock()
	if e.events.Load() != 0 {
		return 0, fmt.Errorf("engine: RecoverWAL needs a fresh engine (events already submitted)")
	}
	if e.restored {
		return 0, fmt.Errorf("engine: RecoverWAL needs a fresh engine (already restored)")
	}
	from := uint64(1)
	if snapshot != nil {
		if err := e.Restore(snapshot); err != nil {
			return 0, err
		}
		from = e.restoredWALLSN + 1
	}
	replayed := 0
	err := e.wal.Replay(from, func(rec wal.Record) error {
		switch rec.Type {
		case wal.RecEvent:
			ev, err := decodeEvent(rec.Data)
			if err != nil {
				return fmt.Errorf("engine: wal record %d: %w", rec.LSN, err)
			}
			ev.at = time.Now() //lint:detsource replayed arrival stamp feeds latency metrics only
			e.events.Add(1)
			if e.det != nil {
				e.det.handle(ev)
			} else {
				e.in <- ev
			}
			replayed++
		default:
			// Checkpoint markers and future record types carry no event.
		}
		return nil
	})
	if err != nil {
		return replayed, err
	}
	e.walReady = true
	return replayed, nil
}

// WALLastLSN reports the LSN of the last event appended to the engine's
// WAL (0 without a WAL or before any append).
func (e *Engine) WALLastLSN() uint64 {
	if e.wal == nil {
		return 0
	}
	return e.wal.LastLSN()
}

// WALDurableLSN reports the last WAL LSN covered by a successful fsync.
func (e *Engine) WALDurableLSN() uint64 {
	if e.wal == nil {
		return 0
	}
	return e.wal.DurableLSN()
}

// SyncWAL forces the WAL's durable prefix up to the last append: the group
// commit barrier the network server places before acknowledging an ingest
// response, so "accepted" always means "survives a crash". No-op without a
// WAL.
func (e *Engine) SyncWAL() error {
	if e.wal == nil {
		return nil
	}
	return e.wal.Sync()
}

// WALStats snapshots the attached log's gauges (zero without a WAL).
func (e *Engine) WALStats() wal.Stats {
	if e.wal == nil {
		return wal.Stats{}
	}
	return e.wal.Stats()
}
