package engine

// Corruption matrix for Restore: a checkpoint that was truncated, bit
// flipped, version-bumped, or hand-tampered must come back as a descriptive
// error — or, for flips that happen to keep the JSON coherent, a successful
// restore — but NEVER a panic. The matrix sweeps both failure families the
// hardening defends: structural damage the validators catch up front, and
// semantic damage (out-of-range indices, impossible shapes) the recover
// guard backstops.

import (
	"bytes"
	"regexp"
	"strings"
	"testing"

	"spatialcrowd/internal/geo"
	"spatialcrowd/internal/market"
)

// checkpointBytes runs a short stream and snapshots it.
func checkpointBytes(t *testing.T, shards int) []byte {
	t.Helper()
	for name, in := range churnBackends(t) {
		if name != "grid" {
			continue
		}
		e, err := New(ckConfig(t, in, shards, 2))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ReplayWith(e, in, ReplayOpts{Until: in.Periods / 2}); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := e.Checkpoint(&buf); err != nil {
			t.Fatal(err)
		}
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	t.Fatal("no grid backend")
	return nil
}

// restoreNoPanic feeds corrupt bytes to a fresh engine and demands
// error-or-success. The recover guards in Restore convert panics into
// errors; this asserts nothing slips past them and unwinds the test.
func restoreNoPanic(t *testing.T, shards int, in *market.Instance, data []byte) error {
	t.Helper()
	e, err := New(ckConfig(t, in, shards, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	return e.Restore(bytes.NewReader(data))
}

func TestRestoreCorruptionMatrix(t *testing.T) {
	in := churnBackends(t)["grid"]
	for _, shards := range []int{0, 4} {
		shards := shards
		t.Run(modeName(shards)[1:], func(t *testing.T) {
			ck := checkpointBytes(t, shards)
			if len(ck) < 200 {
				t.Fatalf("checkpoint implausibly small: %d bytes", len(ck))
			}

			t.Run("truncations", func(t *testing.T) {
				step := len(ck)/40 + 1
				for cut := 0; cut < len(ck); cut += step {
					if err := restoreNoPanic(t, shards, in, ck[:cut]); err == nil {
						t.Fatalf("restore of a %d/%d-byte prefix succeeded", cut, len(ck))
					}
				}
			})

			t.Run("bit-flips", func(t *testing.T) {
				step := len(ck)/60 + 1
				for off := 0; off < len(ck); off += step {
					for _, bit := range []byte{0x01, 0x20, 0x80} {
						mut := bytes.Clone(ck)
						mut[off] ^= bit
						// Error or success both fine; a panic fails the test.
						_ = restoreNoPanic(t, shards, in, mut)
					}
				}
			})

			t.Run("wrong-version", func(t *testing.T) {
				mut := bytes.Replace(ck, []byte(`"version":1`), []byte(`"version":99`), 1)
				if bytes.Equal(mut, ck) {
					t.Fatal("version field not found in checkpoint")
				}
				err := restoreNoPanic(t, shards, in, mut)
				if err == nil || !strings.Contains(err.Error(), "version") {
					t.Fatalf("want a version error, got %v", err)
				}
			})

			t.Run("not-json", func(t *testing.T) {
				if err := restoreNoPanic(t, shards, in, []byte("\x00\x01garbage")); err == nil {
					t.Fatal("restore of garbage bytes succeeded")
				}
			})
		})
	}
}

// TestRestoreCorruptPendingPairs targets the semantic validator directly:
// a checkpoint whose pending-batch pairing indices point outside the task
// and worker tables must be rejected by the bounds check, not crash the
// pairing rebuild.
func TestRestoreCorruptPendingPairs(t *testing.T) {
	build := func() *Engine {
		e, err := New(Config{Grid: geo.SquareGrid(100, 10), Strategy: &fixedPrice{price: 2}})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	e := build()
	mustSubmit(t, e,
		Tick(0),
		WorkerOnline(market.Worker{ID: 1, Loc: geo.Point{X: 10, Y: 10}, Radius: 10, Duration: 100}),
		TaskArrival(market.Task{ID: 100, Origin: geo.Point{X: 11, Y: 11}, Distance: 3}),
		Tick(1),                   // quote the batch
		AcceptDecision(100, true), // provisional assignment -> pending pairs
	)
	var buf bytes.Buffer
	if err := e.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	_ = e.Close()

	// Tamper with the raw bytes (a JSON round-trip through float64 would
	// mangle the 64-bit partition fingerprint and trip a different
	// validator): rewrite the pending pairings to out-of-range indices.
	pairsRe := regexp.MustCompile(`"pairs":\[\[\d+,\d+\]`)
	mut := pairsRe.ReplaceAll(buf.Bytes(), []byte(`"pairs":[[9999,9999]`))
	if bytes.Equal(mut, buf.Bytes()) {
		t.Fatal("checkpoint holds no pending pairs to tamper with")
	}

	fresh := build()
	defer fresh.Close()
	err := fresh.Restore(bytes.NewReader(mut))
	if err == nil {
		t.Fatal("restore accepted out-of-range pending pairings")
	}
	if !strings.Contains(err.Error(), "9999") {
		t.Fatalf("error %q does not name the bad index", err)
	}
}
