package engine

import (
	"math/rand"
	"testing"

	"spatialcrowd/internal/core"
	"spatialcrowd/internal/geo"
	"spatialcrowd/internal/market"
)

// flatPriceStrategy prices every task at a fixed unit price. It isolates the
// shard batch pipeline — pool sort, worker filtering, k-d rebuild, graph and
// context construction, greedy assignment, decision emission — from strategy
// cost, so BenchmarkShardBatch measures the engine's own per-window work.
type flatPriceStrategy struct {
	price float64
	buf   []float64
}

func (f *flatPriceStrategy) Name() string { return "flat" }

func (f *flatPriceStrategy) Prices(ctx *core.PeriodContext) []float64 {
	if cap(f.buf) >= len(ctx.Tasks) {
		f.buf = f.buf[:len(ctx.Tasks)]
	} else {
		f.buf = make([]float64, len(ctx.Tasks))
	}
	for i := range f.buf {
		f.buf[i] = f.price
	}
	return f.buf
}

func (f *flatPriceStrategy) Observe(*core.PeriodContext, []float64, []bool) {}

// BenchmarkShardBatch measures one full pricing window through the
// deterministic engine: worker arrivals, task arrivals, and the closing tick
// that builds, prices, matches, and settles the batch. The per-shard scratch
// arenas make the steady-state window allocation-free apart from the
// strategy's price slice and the decision hand-off.
func BenchmarkShardBatch(b *testing.B) {
	const (
		nWorkers = 200
		nTasks   = 400
	)
	grid := geo.SquareGrid(100, 10)
	eng, err := New(Config{
		Grid:       grid,
		Strategy:   &flatPriceStrategy{price: 2},
		AutoDecide: true,
		OnDecision: func(Decision) {},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()

	rng := rand.New(rand.NewSource(17))
	workers := make([]market.Worker, nWorkers)
	tasks := make([]market.Task, nTasks)
	for i := range workers {
		workers[i] = market.Worker{
			Loc:    geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100},
			Radius: 10, Duration: 1,
		}
	}
	for i := range tasks {
		o := geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		d := geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		tasks[i] = market.Task{Origin: o, Dest: d, Distance: o.Dist(d), Valuation: 5}
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.Submit(Tick(i)); err != nil {
			b.Fatal(err)
		}
		base := i * (nWorkers + nTasks)
		for j := range workers {
			w := workers[j]
			w.ID = base + j
			w.Period = i
			if err := eng.Submit(WorkerOnline(w)); err != nil {
				b.Fatal(err)
			}
		}
		for j := range tasks {
			tk := tasks[j]
			tk.ID = base + nWorkers + j
			tk.Period = i
			if err := eng.Submit(TaskArrival(tk)); err != nil {
				b.Fatal(err)
			}
		}
	}
	// Close the last window so its batch is settled and counted.
	if err := eng.Submit(Tick(b.N)); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	st := eng.Stats()
	if st.TasksPriced == 0 {
		b.Fatal("no tasks priced")
	}
	b.ReportMetric(float64(st.TasksPriced)/float64(b.N), "tasks/batch")
}
