// Package engine is the real-time streaming dispatch engine: the online
// analogue of the offline period simulator in internal/sim. It ingests a
// stream of task-arrival, worker-online/offline, accept-decision, and clock
// events, shards per-cell market state across goroutine-owned shards
// (channel-in/channel-out — no shared locks on the event path), closes a
// pricing batch every configurable window of periods, prices each batch with
// any core.Strategy via core.BuildContext, and assigns accepting tasks with
// single augmenting paths (match.Incremental) over a k-d tree candidate
// graph instead of recomputing a matching from scratch.
//
// Two modes:
//
//   - Deterministic (Config.Shards == 0): Submit processes events inline in
//     the caller's goroutine over one shard spanning every cell. With
//     AutoDecide set it reproduces sim.Run on a replayed instance — same
//     batch construction, same pricing contexts, and the same assignment
//     values (match.MaxWeightByLeft is the greedy augmentation the engine
//     performs incrementally).
//   - Concurrent (Config.Shards >= 1): a router goroutine forwards each
//     event to the shard owning its cell under the configured
//     spatial.Partitioner (default: cell mod Shards, the historical
//     assignment) and shards price their sub-markets independently — the
//     sharding approximation: a worker serves only tasks of its own shard's
//     cells.
//
// With AutoDecide disabled the engine quotes prices and waits for
// AcceptDecision events: accepting tasks are matched first-come-first-served
// by one augmentation each, workers that go offline mid-batch are repaired
// around with match.Incremental.RemoveRight, and the batch finalizes at the
// next window close with unanswered quotes counting as rejections.
package engine

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"spatialcrowd/internal/core"
	"spatialcrowd/internal/geo"
	"spatialcrowd/internal/spatial"
	"spatialcrowd/internal/stats"
	"spatialcrowd/internal/wal"
	"spatialcrowd/internal/window"
)

const defaultBuffer = 4096

// Config parameterizes an Engine.
type Config struct {
	// Grid partitions the region into the cells that shard the market and
	// group tasks for pricing. Used when Space is nil; a non-empty Grid or a
	// Space is required.
	Grid geo.Grid
	// Space, when set, overrides Grid with an arbitrary spatial backend
	// (e.g. spatial.RoadSpace); cells are the backend's cells.
	Space spatial.Space
	// Partitioner maps cells to shards in concurrent mode. Nil selects
	// spatial.ModPartition(Shards), the engine's historical cell-mod-shards
	// assignment. When set, Partitioner.Shards() must equal Shards.
	Partitioner spatial.Partitioner
	// Window is how many periods one pricing batch spans (default 1 — the
	// streaming analogue of the paper's per-period batch mode).
	Window int
	// Shards is the number of shard goroutines. 0 selects the deterministic
	// single-threaded mode: Submit processes events inline and every call
	// sequence produces identical results.
	Shards int
	// Strategy prices batches in deterministic mode (or with Shards == 1).
	Strategy core.Strategy
	// NewStrategy builds one private strategy per shard; required when
	// Shards > 1 because strategies are not concurrency-safe.
	NewStrategy func(shard int) core.Strategy
	// AutoDecide resolves requester decisions at batch close from the
	// tasks' private valuations (simulation replay). When false the engine
	// emits Quoted decisions and waits for AcceptDecision events.
	AutoDecide bool
	// CellIndexGraphs builds batch bipartite graphs with the spatial cell
	// index (market.BuildBipartiteCellIndex — the offline simulator's
	// construction) instead of a per-batch k-d tree. The edge sets are
	// identical either way; the adjacency order differs, which steers tie
	// breaks in the greedy matching. With CellIndexGraphs a deterministic
	// AutoDecide replay consumes exactly the workers sim.Run consumes, so
	// replayed revenue matches the simulator bit for bit (the equivalence
	// tests rely on this); the k-d tree default is faster on large pools.
	CellIndexGraphs bool
	// Buffer is the router and per-shard channel depth (default 4096).
	Buffer int
	// OnDecision, when set, receives every decision instead of the Poll
	// queue. It is called from shard goroutines and must be fast and
	// concurrency-safe.
	OnDecision func(Decision)
	// WAL, when set, is the engine's durable write-ahead event log: every
	// accepted public event is appended (and, per the log's sync policy,
	// fsynced) before it is applied, so a crash loses nothing past the
	// log's durable prefix. Attach a freshly opened wal.Log; if it already
	// holds records, call RecoverWAL before submitting — Submit refuses to
	// append after un-replayed history. Checkpoint records the covered LSN
	// (and appends a marker record), making recovery = Restore + tail
	// replay. See internal/wal and wal.go in this package.
	WAL *wal.Log
	// Amortize enables the executors' fingerprint-gated amortized-rebuild
	// layer: pricing contexts, batch graphs, and (for core.PriceCacheable
	// strategies) price vectors are reused across consecutive windows whose
	// inputs fingerprint identically, and the k-d worker index is maintained
	// incrementally under low churn. Cached windows are bit-identical to
	// fresh ones — revenue and the decision stream do not change.
	Amortize bool
}

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("engine: closed")

// ErrBusy is returned by TrySubmit when the router's ingest queue is full.
// The event was NOT accepted; the caller decides whether to retry, shed the
// load, or push the backpressure further upstream (the HTTP server in
// internal/server turns it into 429 + Retry-After).
var ErrBusy = errors.New("engine: ingest queue full")

// Engine is a streaming dispatch engine. Create it with New; feed it with
// Submit; read decisions with Poll or Config.OnDecision; stop it with Close.
// Submit must not be called concurrently with Close.
type Engine struct {
	cfg   Config
	space spatial.Space       // resolved backend (cfg.Space or cfg.Grid)
	part  spatial.Partitioner // resolved cell -> shard map (concurrent mode)

	det        *shard // deterministic mode; nil when sharded
	in         chan Event
	shards     []*shard
	routerDone chan struct{}
	shardWG    sync.WaitGroup

	// Router-owned routing state. Quoted-task entries live in a
	// two-generation rotation (rotated every two windows, by which time
	// their batch has certainly finalized) so unanswered quotes cannot
	// accumulate forever. Worker entries live in the lifecycle table and
	// are erased when shards report retirements through the note mailbox,
	// so both structures stay bounded by the live population.
	taskShardCur  map[int]int // quoted task ID -> shard (current generation)
	taskShardPrev map[int]int // previous generation
	taskRotated   int         // period of the last generation rotation
	workers       *workerTable
	routerPeriod  int // last tick period the router broadcast

	notesMu sync.Mutex
	notes   []lifecycleNote // shard-reported pool transitions, pending application

	// Hot counters (atomic; bumped from shard goroutines).
	events  atomic.Int64
	priced  atomic.Int64
	quoted  atomic.Int64
	batches atomic.Int64
	late    atomic.Int64 // decisions/offlines for unknown or settled targets

	// Strategy-contract violations (malformed price vectors): the batch is
	// dropped and the typed error surfaced through Stats.
	stratErrs    atomic.Int64
	stratErrMu   sync.Mutex
	lastStratErr error

	// Lifecycle counters (atomic; see LifecycleStats). pooled is a gauge of
	// workers currently in shard pools; tracked mirrors the router table
	// size so Stats can read it without touching router-owned state.
	lcOnlines    atomic.Int64
	lcDuplicates atomic.Int64
	lcMoves      atomic.Int64
	lcPinned     atomic.Int64
	lcMigrations atomic.Int64
	lcAssigned   atomic.Int64
	lcExpired    atomic.Int64
	lcOffline    atomic.Int64
	pooled       atomic.Int64
	tracked      atomic.Int64
	trackedHeld  atomic.Int64

	// Batch-grain aggregates. Revenue is kept per shard only (each shard
	// accumulates its own batches in a deterministic order) and totaled in
	// shard-index order at snapshot time, so the float sum is independent
	// of goroutine scheduling. The carried values cover state restored onto
	// a different shard layout, where per-shard attribution is lost (see
	// checkpoint.go).
	aggMu          sync.Mutex
	accepted       int64
	served         int64
	shardRevenue   []float64
	shardTasks     []int64 // tasks priced per shard (per-shard throughput)
	carriedRevenue float64
	// Cache counters mirror the revenue discipline: per-shard deltas folded
	// in at batch grain, plus a carried aggregate restored from checkpoints
	// taken under a different shard layout.
	shardCache   []window.CacheStats
	carriedCache window.CacheStats

	// Checkpoint restore bookkeeping (written before any event, read-only
	// afterwards).
	restored       bool
	restoredPeriod int
	restoredWALLSN uint64 // checkpoint's recorded WAL position (wal_lsn)

	// Write-ahead log (Config.WAL). walMu serializes append + apply so the
	// log order is the apply order; walReady (guarded by walMu) blocks
	// Submit until a non-empty log has been replayed through RecoverWAL.
	wal      *wal.Log
	walMu    sync.Mutex
	walReady bool

	// Batched ingest (TrySubmitBatch). batchMu serializes admission so two
	// batch submitters cannot both spend the same budget; batchPending counts
	// events accepted into kindBatch envelopes the router has not yet
	// unpacked, keeping total buffered events bounded even though an envelope
	// occupies one channel slot. batchPool recycles envelope slices so a
	// steady ingest stream allocates no per-batch memory.
	batchMu      sync.Mutex
	batchPending atomic.Int64
	batchPool    sync.Pool

	latMu sync.Mutex
	p50   *stats.PSquare
	p99   *stats.PSquare

	outMu sync.Mutex
	out   []Decision

	started      time.Time
	stoppedNanos atomic.Int64 // 0 while running
	closed       atomic.Bool
}

// New validates the configuration and starts the engine (shard goroutines
// and router in concurrent mode; nothing in deterministic mode).
func New(cfg Config) (*Engine, error) {
	space := cfg.Space
	if space == nil {
		if cfg.Grid.Cols <= 0 || cfg.Grid.Rows <= 0 {
			return nil, fmt.Errorf("engine: Config needs a Space or a non-empty Grid")
		}
		space = cfg.Grid
	}
	if cfg.Window <= 0 {
		cfg.Window = 1
	}
	if cfg.Buffer <= 0 {
		cfg.Buffer = defaultBuffer
	}
	newStrat := cfg.NewStrategy
	if newStrat == nil {
		if cfg.Strategy == nil {
			return nil, fmt.Errorf("engine: Config needs Strategy or NewStrategy")
		}
		if cfg.Shards > 1 {
			return nil, fmt.Errorf("engine: %d shards need a NewStrategy factory (strategies are not concurrency-safe)", cfg.Shards)
		}
		newStrat = func(int) core.Strategy { return cfg.Strategy }
	}

	e := &Engine{cfg: cfg, space: space, started: time.Now()} //lint:detsource process start time feeds throughput metrics only
	e.p50, _ = stats.NewPSquare(0.5)
	e.p99, _ = stats.NewPSquare(0.99)
	if cfg.WAL != nil {
		e.wal = cfg.WAL
		// An empty log needs no recovery; one with history must be replayed
		// (RecoverWAL) before new appends may extend it.
		e.walReady = e.wal.LastLSN() == 0
	}

	if cfg.Shards <= 0 {
		s := newShard(0, e, newStrat(0))
		if s.strat == nil {
			return nil, fmt.Errorf("engine: NewStrategy(0) returned nil")
		}
		e.det = s
		e.shardRevenue = make([]float64, 1)
		e.shardTasks = make([]int64, 1)
		e.shardCache = make([]window.CacheStats, 1)
		return e, nil
	}

	e.part = cfg.Partitioner
	if e.part == nil {
		e.part = spatial.ModPartition(cfg.Shards)
	} else if e.part.Shards() != cfg.Shards {
		return nil, fmt.Errorf("engine: Partitioner built for %d shards, Config.Shards is %d",
			e.part.Shards(), cfg.Shards)
	}
	// A partitioner answering outside [0, Shards) would index shards out of
	// range (or silently strand cells); probe every cell once up front.
	for c := 0; c < space.NumCells(); c++ {
		if si := e.part.ShardOf(c); si < 0 || si >= cfg.Shards {
			return nil, fmt.Errorf("engine: Partitioner maps cell %d to shard %d, outside [0,%d)",
				c, si, cfg.Shards)
		}
	}
	e.shardRevenue = make([]float64, cfg.Shards)
	e.shardTasks = make([]int64, cfg.Shards)
	e.shardCache = make([]window.CacheStats, cfg.Shards)
	e.in = make(chan Event, cfg.Buffer)
	e.taskShardCur = make(map[int]int)
	e.taskShardPrev = make(map[int]int)
	e.workers = newWorkerTable()
	e.routerDone = make(chan struct{})
	// Construct every shard before starting any goroutine so a failing
	// factory cannot leak goroutines blocked on never-closed channels.
	for i := 0; i < cfg.Shards; i++ {
		s := newShard(i, e, newStrat(i))
		if s.strat == nil {
			return nil, fmt.Errorf("engine: NewStrategy(%d) returned nil", i)
		}
		s.in = make(chan Event, cfg.Buffer)
		e.shards = append(e.shards, s)
	}
	for _, s := range e.shards {
		e.shardWG.Add(1)
		go s.run()
	}
	go e.route()
	return e, nil
}

// Shards reports the number of shard goroutines (0 in deterministic mode).
func (e *Engine) Shards() int { return len(e.shards) }

// Space reports the spatial backend the engine partitions the market with.
func (e *Engine) Space() spatial.Space { return e.space }

// Window reports the pricing window in periods.
func (e *Engine) Window() int { return e.cfg.Window }

// Submit enqueues one event. In deterministic mode it processes the event
// inline before returning; in concurrent mode it hands the event to the
// router and returns immediately (blocking only when buffers are full).
func (e *Engine) Submit(ev Event) error {
	if ev.Kind == 0 || ev.Kind > KindTick {
		return fmt.Errorf("engine: invalid event kind %d", ev.Kind)
	}
	if e.closed.Load() {
		return ErrClosed
	}
	ev.at = time.Now() //lint:detsource arrival stamp feeds latency metrics; replay decisions carry event-time periods
	if e.wal != nil {
		return e.submitWAL(ev, true)
	}
	e.events.Add(1)
	if e.det != nil {
		e.det.handle(ev)
		return nil
	}
	e.in <- ev
	return nil
}

// TrySubmit is Submit without blocking: when the router's ingest queue is
// full it returns ErrBusy instead of waiting for space, and the event is not
// accepted. In deterministic mode events process inline, so TrySubmit never
// reports ErrBusy there. This is the admission-control seam: a caller that
// must not block (a network handler) uses TrySubmit and converts ErrBusy
// into backpressure toward its own client.
func (e *Engine) TrySubmit(ev Event) error {
	if ev.Kind == 0 || ev.Kind > KindTick {
		return fmt.Errorf("engine: invalid event kind %d", ev.Kind)
	}
	if e.closed.Load() {
		return ErrClosed
	}
	ev.at = time.Now() //lint:detsource arrival stamp feeds latency metrics; replay decisions carry event-time periods
	if e.wal != nil {
		return e.submitWAL(ev, false)
	}
	if e.det != nil {
		e.events.Add(1)
		e.det.handle(ev)
		return nil
	}
	select {
	case e.in <- ev:
		e.events.Add(1)
		return nil
	default:
		return ErrBusy
	}
}

// QueueDepths is a point-in-time snapshot of the engine's bounded ingest
// queues: the router channel plus every shard channel. Depth counts
// buffered-but-unprocessed events; Capacity is the fixed buffer size
// (Config.Buffer). All zeros in deterministic mode, where events process
// inline and nothing queues.
type QueueDepths struct {
	Router    int   // events waiting in the router channel
	Shards    []int // events waiting per shard channel (nil in det mode)
	Capacity  int   // per-channel buffer size
	MaxShard  int   // deepest shard queue (0 in det mode)
	Saturated bool  // the router queue is full: TrySubmit would return ErrBusy
}

// QueueDepths snapshots the ingest-queue depths. Safe to call concurrently
// with event processing; the values are instantaneous and advisory (they can
// change before the caller acts on them) — exactly what admission control
// and metrics need.
func (e *Engine) QueueDepths() QueueDepths {
	if e.det != nil {
		return QueueDepths{}
	}
	d := QueueDepths{
		Router:   len(e.in),
		Capacity: cap(e.in),
		Shards:   make([]int, len(e.shards)),
	}
	for i, s := range e.shards {
		n := len(s.in)
		d.Shards[i] = n
		if n > d.MaxShard {
			d.MaxShard = n
		}
	}
	d.Saturated = d.Router >= d.Capacity
	return d
}

// DefaultShards picks a shard count for an engine over a space with the
// given cell count when the operator did not choose one: GOMAXPROCS capped
// at the cell count (a shard with no cells would idle) and floored at 1.
// The deterministic mode (Shards == 0) is never selected implicitly.
func DefaultShards(cells int) int {
	n := runtime.GOMAXPROCS(0)
	if cells > 0 && n > cells {
		n = cells
	}
	if n < 1 {
		n = 1
	}
	return n
}

// route is the router goroutine: it owns the task map and the worker
// lifecycle table and forwards each event to the shard owning its cell.
// Ticks broadcast.
func (e *Engine) route() {
	defer close(e.routerDone)
	// Start below any real period so worker admissions before the first
	// tick sort strictly earlier than any note a shard can emit (notes
	// flush at ticks).
	e.routerPeriod = math.MinInt
	for ev := range e.in {
		if ev.Kind == kindBatch {
			e.dispatchBatch(ev)
			continue
		}
		e.dispatch(ev)
	}
	for _, s := range e.shards {
		close(s.in)
	}
}

// dispatch forwards one event to the shard(s) owning it (router goroutine
// only): the per-event half of route, shared by the single-event path and
// the kindBatch envelope unpacker.
func (e *Engine) dispatch(ev Event) {
	switch ev.Kind {
	case KindTick:
		if ev.Period > e.routerPeriod {
			e.routerPeriod = ev.Period
		}
		e.pruneRoutes(ev.Period)
		for _, s := range e.shards {
			s.in <- ev
		}
	case KindTaskArrival:
		si := e.shardOfCell(e.space.CellOf(ev.Task.Origin))
		if !e.cfg.AutoDecide {
			e.taskShardCur[ev.Task.ID] = si
		}
		e.shards[si].in <- ev
	case KindWorkerOnline:
		si := e.shardOfCell(e.space.CellOf(ev.Worker.Loc))
		if prev, dup := e.workers.online(ev.Worker.ID, si, e.routerPeriod); dup {
			// Duplicate online: the worker is (still) attributed to a
			// shard. Retire the stale copy there before admitting the
			// fresh one, so no ghost supply survives in the old shard;
			// a same-shard duplicate is replaced in place by the shard.
			e.late.Add(1)
			e.lcDuplicates.Add(1)
			if prev.shard != si {
				e.shards[prev.shard].in <- Event{Kind: kindEvict, WorkerID: ev.Worker.ID, at: ev.at}
			}
		}
		e.syncTableGauges()
		e.shards[si].in <- ev
	case KindWorkerOffline:
		if ent, ok := e.workers.get(ev.WorkerID); ok {
			e.workers.retire(ev.WorkerID)
			e.syncTableGauges()
			e.shards[ent.shard].in <- ev
		} else {
			e.late.Add(1)
		}
	case KindWorkerMove:
		e.routeMove(ev)
	case KindAcceptDecision:
		si, ok := e.taskShardCur[ev.TaskID]
		if ok {
			delete(e.taskShardCur, ev.TaskID)
		} else if si, ok = e.taskShardPrev[ev.TaskID]; ok {
			delete(e.taskShardPrev, ev.TaskID)
		}
		if ok {
			e.shards[si].in <- ev
		} else {
			e.late.Add(1)
		}
	case kindCheckpoint:
		e.routerCheckpoint(ev.ctl.(*ctlCheckpoint))
	case kindRestore:
		e.routerRestore(ev.ctl.(*ctlRestore))
	}
}

// routeMove resolves a worker relocation. A move inside the owning shard is
// forwarded as-is (the shard updates the pool entry in place). A move whose
// target cell belongs to a different shard runs the migration handshake:
// the router sends a synchronous migrate-out to the old shard and waits for
// the worker record, then admits it into the new shard — so at every point
// in the event order the worker is pooled in at most one shard, and no
// later event can observe a half-finished migration. The old shard answers
// pinned (and applies the move in place) when a pending quoted batch still
// references the worker: a provisional assignment must not be yanked out
// from under its batch, so the worker migrates only after the batch
// finalizes and a later move re-targets it.
func (e *Engine) routeMove(ev Event) {
	ent, ok := e.workers.get(ev.WorkerID)
	if !ok {
		e.late.Add(1)
		return
	}
	si := e.shardOfCell(e.space.CellOf(ev.Loc))
	if si == ent.shard {
		e.shards[ent.shard].in <- ev
		return
	}
	mev := ev
	mev.mig = &migration{reply: make(chan migrateReply, 1)}
	e.shards[ent.shard].in <- mev
	rep := <-mev.mig.reply
	switch {
	case !rep.ok:
		// The old shard no longer pools the worker (consumed or expired,
		// retirement note still in flight): the move targets a settled
		// worker. Drop the stale table entry rather than waiting for the
		// note.
		e.workers.retire(ev.WorkerID)
		e.syncTableGauges()
		e.late.Add(1)
	case rep.pinned:
		e.lcPinned.Add(1)
	default:
		e.workers.migrate(ev.WorkerID, si, e.routerPeriod)
		e.lcMigrations.Add(1)
		e.shards[si].in <- Event{Kind: kindAdmit, Worker: rep.worker, at: ev.at}
	}
}

func (e *Engine) shardOfCell(cell int) int { return e.part.ShardOf(cell) }

// pruneRoutes bounds the router's maps. Quoted-task generations rotate
// every two windows: a quote is answerable for at most two window closes
// (its batch finalizes at the next close), so anything still in the
// previous generation by then is unanswerable and can be dropped. Pending
// lifecycle notes (quoted-batch holds/releases, retirements the router did
// not itself initiate — assignments and expiries) fold into the worker
// table.
func (e *Engine) pruneRoutes(period int) {
	if period >= e.taskRotated+2*e.cfg.Window {
		e.taskShardPrev = e.taskShardCur
		e.taskShardCur = make(map[int]int)
		e.taskRotated = period
	}
	e.applyNotes()
	e.syncTableGauges()
}

// applyNotes folds the pending shard-reported lifecycle notes into the
// worker table (router goroutine only).
func (e *Engine) applyNotes() {
	e.notesMu.Lock()
	notes := e.notes
	e.notes = nil
	e.notesMu.Unlock()
	for _, n := range notes {
		e.workers.apply(n)
	}
}

// syncTableGauges mirrors the router table's size and held count into
// atomics so Stats can read them without touching router-owned state.
func (e *Engine) syncTableGauges() {
	e.tracked.Store(int64(e.workers.size()))
	e.trackedHeld.Store(int64(e.workers.heldCount()))
}

// noteLifecycle records pool transitions a shard performed so the router
// can update the worker table. Shards call it at batch grain, not per
// event; deterministic mode has no router and keeps no table.
func (e *Engine) noteLifecycle(notes []lifecycleNote) {
	if e.det != nil || len(notes) == 0 {
		return
	}
	e.notesMu.Lock()
	e.notes = append(e.notes, notes...)
	e.notesMu.Unlock()
}

// Close drains the event stream and stops the shard goroutines, finalizing
// in-flight quoted batches (unanswered quotes count as rejections). It is
// not an implicit flush: tasks of a window whose closing Tick was never
// submitted are discarded unpriced. Close returns after every shard has
// drained, so Poll and Stats then reflect the complete stream.
func (e *Engine) Close() error {
	if !e.closed.CompareAndSwap(false, true) {
		return ErrClosed
	}
	if e.det != nil {
		e.det.finalizePending(time.Now()) //lint:detsource shutdown drain stamp feeds latency metrics only
	} else {
		close(e.in)
		<-e.routerDone
		e.shardWG.Wait()
	}
	e.stoppedNanos.Store(time.Now().UnixNano()) //lint:detsource wall-clock stop time feeds elapsed/throughput metrics only
	return nil
}

// Poll drains and returns the decisions emitted since the last Poll (nil
// when none). With Config.OnDecision installed, decisions bypass the queue
// and Poll always returns nil.
func (e *Engine) Poll() []Decision {
	e.outMu.Lock()
	ds := e.out
	e.out = nil
	e.outMu.Unlock()
	return ds
}

// emit delivers one decision, stamping its latency from the triggering
// event's submission time.
func (e *Engine) emit(d Decision, at time.Time) {
	d.Latency = time.Since(at) //lint:detsource latency metric; never read back into pricing
	e.latMu.Lock()
	e.p50.Add(float64(d.Latency))
	e.p99.Add(float64(d.Latency))
	e.latMu.Unlock()
	e.deliver(d)
}

// emitAll delivers a batch of decisions sharing one trigger (a closing
// Tick), amortizing the latency-recorder lock over the batch.
func (e *Engine) emitAll(ds []Decision, at time.Time) {
	if len(ds) == 0 {
		return
	}
	lat := time.Since(at) //lint:detsource latency metric; never read back into pricing
	e.latMu.Lock()
	for i := range ds {
		ds[i].Latency = lat
		e.p50.Add(float64(lat))
		e.p99.Add(float64(lat))
	}
	e.latMu.Unlock()
	if e.cfg.OnDecision != nil {
		for _, d := range ds {
			e.cfg.OnDecision(d)
		}
		return
	}
	e.outMu.Lock()
	e.out = append(e.out, ds...)
	e.outMu.Unlock()
}

func (e *Engine) deliver(d Decision) {
	if e.cfg.OnDecision != nil {
		e.cfg.OnDecision(d)
		return
	}
	e.outMu.Lock()
	e.out = append(e.out, d)
	e.outMu.Unlock()
}

// noteStrategyError records a dropped pricing batch: the shard's strategy
// violated the one-price-per-task contract (a typed *window.PriceCountError),
// so the batch's tasks went unpriced rather than panicking the shard
// goroutine. Stats surfaces the count and the most recent error.
func (e *Engine) noteStrategyError(err error) {
	e.stratErrs.Add(1)
	e.stratErrMu.Lock()
	e.lastStratErr = err
	e.stratErrMu.Unlock()
}

// noteBatch folds one finalized batch into the aggregate statistics.
func (e *Engine) noteBatch(shard, accepted, served int, revenue float64) {
	e.aggMu.Lock()
	e.accepted += int64(accepted)
	e.served += int64(served)
	e.shardRevenue[shard] += revenue
	e.aggMu.Unlock()
}

// notePriced records a batch's priced-task count against its shard, the
// per-shard throughput Stats reports.
func (e *Engine) notePriced(shard, tasks int) {
	e.priced.Add(int64(tasks))
	e.batches.Add(1)
	e.aggMu.Lock()
	e.shardTasks[shard] += int64(tasks)
	e.aggMu.Unlock()
}

// noteCache folds a shard's cache-counter delta (one priced window's worth)
// into the aggregate, under the same lock discipline as noteBatch.
func (e *Engine) noteCache(shard int, d window.CacheStats) {
	e.aggMu.Lock()
	e.shardCache[shard] = e.shardCache[shard].Add(d)
	e.aggMu.Unlock()
}
