package engine

import (
	"errors"
	"testing"

	"spatialcrowd/internal/core"
	"spatialcrowd/internal/geo"
	"spatialcrowd/internal/wal"
)

// streamedEvents collects the canonical replay stream of the shared test
// instance as a flat slice.
func streamedEvents(t *testing.T) []Event {
	t.Helper()
	in, _ := testInstance(t)
	var evs []Event
	if err := StreamEvents(in, 1, ReplayOpts{}, func(ev Event) error {
		evs = append(evs, ev)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return evs
}

// runStream drives evs into a freshly built engine via submit and returns
// its final stats.
func runStream(t *testing.T, cfg Config, evs []Event, submit func(*Engine, []Event) error) Stats {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := submit(e, evs); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	return e.Stats()
}

func submitSingly(e *Engine, evs []Event) error {
	for _, ev := range evs {
		if err := e.Submit(ev); err != nil {
			return err
		}
	}
	return nil
}

// submitChunked feeds evs through SubmitBatch in awkward chunk sizes (prime,
// spanning multiple internal envelopes) so batch boundaries land mid-period.
func submitChunked(e *Engine, evs []Event) error {
	const chunk = 997
	for off := 0; off < len(evs); off += chunk {
		end := off + chunk
		if end > len(evs) {
			end = len(evs)
		}
		if err := e.SubmitBatch(evs[off:end]); err != nil {
			return err
		}
	}
	return nil
}

// TestBatchEquivalence: a stream submitted through SubmitBatch produces
// bit-identical revenue and an identical funnel to the same stream submitted
// one event at a time — in deterministic mode, in sharded mode, and in
// sharded mode with a WAL attached (append-before-apply at batch grain).
func TestBatchEquivalence(t *testing.T) {
	evs := streamedEvents(t)
	in, _ := testInstance(t)
	cfgs := map[string]func() Config{
		"det": func() Config {
			return Config{Grid: in.Grid, Strategy: &fixedPrice{price: 2}, AutoDecide: true,
				OnDecision: func(Decision) {}}
		},
		"sharded": func() Config {
			return Config{Grid: in.Grid, Shards: 4, AutoDecide: true,
				NewStrategy: func(int) core.Strategy { return &fixedPrice{price: 2} },
				OnDecision:  func(Decision) {}}
		},
	}
	for name, mk := range cfgs {
		t.Run(name, func(t *testing.T) {
			want := runStream(t, mk(), evs, submitSingly)
			got := runStream(t, mk(), evs, submitChunked)
			if got.Revenue != want.Revenue || got.Served != want.Served ||
				got.Events != want.Events || got.TasksPriced != want.TasksPriced {
				t.Fatalf("batch run diverged: rev %v/%v served %d/%d events %d/%d priced %d/%d",
					got.Revenue, want.Revenue, got.Served, want.Served,
					got.Events, want.Events, got.TasksPriced, want.TasksPriced)
			}
		})
		t.Run(name+"/wal", func(t *testing.T) {
			cfg := mk()
			log, err := wal.Open(wal.NewMemStore(), wal.Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer log.Close()
			cfg.WAL = log
			want := runStream(t, mk(), evs, submitSingly)
			got := runStream(t, cfg, evs, submitChunked)
			if got.Revenue != want.Revenue || got.Events != want.Events {
				t.Fatalf("wal batch run diverged: rev %v/%v events %d/%d",
					got.Revenue, want.Revenue, got.Events, want.Events)
			}
			if lsn := log.LastLSN(); lsn != uint64(len(evs)) {
				t.Fatalf("WAL holds %d records, want one per event (%d)", lsn, len(evs))
			}
		})
	}
}

// TestBatchWALRecovery: events ingested through SubmitBatch are individually
// durable — recovering the log into a fresh engine reproduces the batch
// run's revenue exactly.
func TestBatchWALRecovery(t *testing.T) {
	evs := streamedEvents(t)
	in, _ := testInstance(t)
	mem := wal.NewMemStore()
	log, err := wal.Open(mem, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := func(l *wal.Log) Config {
		return Config{Grid: in.Grid, Strategy: &fixedPrice{price: 2}, AutoDecide: true,
			OnDecision: func(Decision) {}, WAL: l}
	}
	want := runStream(t, cfg(log), evs, submitChunked)
	log.Close()

	log2, err := wal.Open(mem, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	e2, err := New(cfg(log2))
	if err != nil {
		t.Fatal(err)
	}
	if n, err := e2.RecoverWAL(nil); err != nil || n != len(evs) {
		t.Fatalf("RecoverWAL: n=%d err=%v, want %d", n, err, len(evs))
	}
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}
	got := e2.Stats()
	if got.Revenue != want.Revenue || got.Served != want.Served || got.Events != want.Events {
		t.Fatalf("recovered run diverged: rev %v/%v served %d/%d events %d/%d",
			got.Revenue, want.Revenue, got.Served, want.Served, got.Events, want.Events)
	}
}

// TestTrySubmitBatchPrefix saturates a single-shard engine (strategy blocked
// mid-batch, tiny buffers) and asserts the partial-accept contract: a batch
// that does not fit is accepted as a prefix with ErrBusy, repeated calls
// make no progress while saturated, and after the shard unblocks a caller
// resuming from the accepted offset loses nothing and duplicates nothing.
func TestTrySubmitBatchPrefix(t *testing.T) {
	gate := make(chan struct{})
	const buffer = 8
	e, err := New(Config{
		Grid: geo.SquareGrid(100, 4), Shards: 1, Buffer: buffer, AutoDecide: true,
		NewStrategy: func(int) core.Strategy { return &gatedPrice{gate: gate} },
		OnDecision:  func(Decision) {},
	})
	if err != nil {
		t.Fatal(err)
	}

	in, _ := testInstance(t)
	var donor []Event
	if err := StreamEvents(in, 1, ReplayOpts{}, func(ev Event) error {
		if ev.Kind == KindTaskArrival {
			donor = append(donor, ev)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(donor) < 4*buffer {
		t.Fatalf("donor stream too small: %d tasks", len(donor))
	}

	// Stall the shard: one task plus the closing tick blocks Prices on the
	// gate, then single-event submits fill shard and router channels.
	mustSubmit(t, e, donor[0], Tick(1))
	singles := 2
	for {
		err := e.TrySubmit(donor[1])
		if err == ErrBusy {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		singles++
	}

	// The router may still be shuffling the last singles into the stalled
	// shard, so retry until a call makes no progress at all: every accepted
	// count is a prefix, and the engine's bounded buffers guarantee the
	// 2*buffer batch can never be fully admitted while the shard is blocked.
	batch := donor[2 : 2+2*buffer]
	off := 0
	for off < len(batch) {
		n, err := e.TrySubmitBatch(batch[off:])
		off += n
		if err == nil {
			continue
		}
		if !errors.Is(err, ErrBusy) {
			t.Fatalf("TrySubmitBatch: n=%d err=%v, want ErrBusy under saturation", n, err)
		}
		if n == 0 {
			break // saturated: no progress
		}
	}
	if off >= len(batch) {
		t.Fatalf("saturated engine accepted the whole %d-event batch", len(batch))
	}

	close(gate)
	if err := e.SubmitBatch(batch[off:]); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	want := int64(singles + len(batch))
	if got := e.Stats().Events; got != want {
		t.Fatalf("event conservation broken: engine saw %d events, resume protocol sent %d", got, want)
	}
}

// TestBatchRejectsInvalidKind: one invalid event anywhere rejects the whole
// batch before anything is accepted.
func TestBatchRejectsInvalidKind(t *testing.T) {
	e, err := New(Config{Grid: geo.SquareGrid(100, 4), Strategy: &fixedPrice{price: 1},
		AutoDecide: true, OnDecision: func(Decision) {}})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	bad := []Event{Tick(0), {Kind: kindEvict, WorkerID: 1}, Tick(1)}
	if n, err := e.TrySubmitBatch(bad); err == nil || n != 0 {
		t.Fatalf("batch with internal kind: n=%d err=%v, want 0 and an error", n, err)
	}
	if got := e.Stats().Events; got != 0 {
		t.Fatalf("rejected batch leaked %d events", got)
	}
}

// gatedPrice blocks its first Prices call until the gate closes: the lever
// that saturates a shard for the backpressure tests.
type gatedPrice struct {
	fixedPrice
	gate    <-chan struct{}
	blocked bool
}

func (g *gatedPrice) Prices(ctx *core.PeriodContext) []float64 {
	if !g.blocked {
		g.blocked = true
		<-g.gate
	}
	return g.fixedPrice.Prices(ctx)
}
