package engine

// Crash-injection property harness for the write-ahead log. The property:
// for EVERY injected crash point — a process kill that loses the unsynced
// page cache, a torn write that runs out of its byte budget mid-frame, an
// fsync that errors and downs the store — recovering (last durable
// checkpoint + WAL tail replay) and resuming the stream from the recovered
// event count yields revenue and a lifecycle ledger byte-identical to the
// uninterrupted run. Covered across det + 4-shard engines, grid + road
// backends, and auto-decide + quoted (mid-flight batch) streams, with
// segments small enough that rotation and checkpoint truncation happen
// constantly.

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"

	"spatialcrowd/internal/geo"
	"spatialcrowd/internal/market"
	"spatialcrowd/internal/wal"
)

// walCrashOptions keeps segments tiny so every run rotates segments many
// times, and batches fsyncs so kills genuinely lose acknowledged-but-
// unsynced records (the harness must recover through that, not around it).
func walCrashOptions() wal.Options {
	return wal.Options{SegmentBytes: 4 << 10, Sync: wal.SyncBatch, BatchAppends: 8}
}

// streamOf collects the canonical replay stream into a slice so the harness
// can cut it at arbitrary event indices.
func streamOf(t *testing.T, in *market.Instance, window int) []Event {
	t.Helper()
	var evs []Event
	err := StreamEvents(in, window, ReplayOpts{}, func(ev Event) error {
		evs = append(evs, ev)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return evs
}

// quotedStreamOf builds a deterministic quoted-mode stream: every period
// tick is followed by seeded-random accept/reject decisions for the tasks
// quoted in the previous window, so crash points land between a quote and
// its acceptance and recovery must restore mid-flight batches exactly.
func quotedStreamOf(in *market.Instance) []Event {
	rng := rand.New(rand.NewSource(41))
	tasksByPeriod := in.TasksByPeriod()
	arrivals := in.WorkersByStart()
	var evs []Event
	var open []int
	for p := 0; p < in.Periods; p++ {
		evs = append(evs, Tick(p))
		for _, id := range open {
			if rng.Float64() < 0.8 {
				evs = append(evs, AcceptDecision(id, rng.Float64() < 0.6))
			}
		}
		open = open[:0]
		for _, w := range arrivals[p] {
			evs = append(evs, WorkerOnline(w))
		}
		for _, task := range tasksByPeriod[p] {
			evs = append(evs, TaskArrival(task))
			open = append(open, task.ID)
		}
	}
	evs = append(evs, Tick(in.Periods), Tick(in.Periods+1))
	return evs
}

// walCrashSpec is one injected fault scenario.
type walCrashSpec struct {
	name    string
	fp      wal.Failpoints
	killAt  int // kill the store before submitting this event index (-1: never)
	ckEvery int // checkpoint cadence in events (0: no checkpoints)
}

func walCrashSpecs(n int) []walCrashSpec {
	lose := wal.Failpoints{LoseUnsynced: true}
	return []walCrashSpec{
		// Process kills at a spread of stream positions. Checkpoints (where
		// enabled) truncate the log, so late kills recover from snapshot +
		// short tail; the no-checkpoint variants replay the whole log.
		{name: "kill-early", fp: lose, killAt: 2},
		{name: "kill-early-ck", fp: lose, killAt: n / 6, ckEvery: n / 8},
		{name: "kill-mid", fp: lose, killAt: n / 2},
		{name: "kill-mid-ck", fp: lose, killAt: n / 2, ckEvery: n / 5},
		{name: "kill-late-ck", fp: lose, killAt: n - 2, ckEvery: n / 5},
		// Torn write: the byte budget runs out mid-frame, leaving a short
		// suffix recovery must truncate away.
		{name: "torn-early", fp: wal.Failpoints{CrashAfterBytes: 600, LoseUnsynced: true}, killAt: -1},
		{name: "torn-mid-ck", fp: wal.Failpoints{CrashAfterBytes: int64(20 * n), LoseUnsynced: true},
			killAt: -1, ckEvery: n / 5},
		// A scripted fsync error downs the store mid-group-commit.
		{name: "sync-fault", fp: wal.Failpoints{FailSyncAt: 7, LoseUnsynced: true}, killAt: -1},
		// No mid-run fault at all: the kill lands after the final event,
		// losing whatever the last group commit hadn't flushed.
		{name: "kill-at-end-ck", fp: lose, killAt: -1, ckEvery: n / 5},
	}
}

// TestWALCrashRecoveryExact is the tentpole acceptance property.
func TestWALCrashRecoveryExact(t *testing.T) {
	for name, in := range churnBackends(t) {
		for _, shards := range []int{0, 4} {
			for _, quoted := range []bool{false, true} {
				in := in
				shards := shards
				quoted := quoted
				variant := "/auto"
				if quoted {
					variant = "/quoted"
				}
				t.Run(name+modeName(shards)+variant, func(t *testing.T) {
					if testing.Short() && (quoted || name == "road") {
						t.Skip("short mode: auto-decide grid only")
					}
					cfg := func() Config {
						c := ckConfig(t, in, shards, 2)
						c.AutoDecide = !quoted
						return c
					}

					// Uninterrupted reference run over the same event slice.
					ref, err := New(cfg())
					if err != nil {
						t.Fatal(err)
					}
					var events []Event
					if quoted {
						events = quotedStreamOf(in)
					} else {
						events = streamOf(t, in, ref.Window())
					}
					for i, ev := range events {
						if err := ref.Submit(ev); err != nil {
							t.Fatalf("reference event %d: %v", i, err)
						}
					}
					if err := ref.Close(); err != nil {
						t.Fatal(err)
					}
					want := ref.Stats()
					if want.Revenue <= 0 {
						t.Fatalf("reference run accrued no revenue: %+v", want)
					}

					for _, spec := range walCrashSpecs(len(events)) {
						spec := spec
						t.Run(spec.name, func(t *testing.T) {
							runWALCrash(t, cfg, events, want, spec)
						})
					}
				})
			}
		}
	}
}

// runWALCrash drives one crash scenario end to end: run against a
// failpoint-wrapped store until the injected fault (or kill point) hits,
// then reopen the surviving bytes, recover a fresh engine, resume the
// stream at the recovered event count, and demand exact equality with the
// uninterrupted run.
func runWALCrash(t *testing.T, cfg func() Config, events []Event, want Stats, spec walCrashSpec) {
	t.Helper()
	mem := wal.NewMemStore()
	fp := wal.NewFailpointStore(mem, spec.fp)
	log, err := wal.Open(fp, walCrashOptions())
	if err != nil {
		t.Fatal(err)
	}
	c := cfg()
	c.WAL = log
	eng, err := New(c)
	if err != nil {
		t.Fatal(err)
	}

	// The latest checkpoint, held OUTSIDE the failpoint store: it models a
	// snapshot file already written atomically and fsynced (the server's
	// WriteCheckpointAtomic), which a crash therefore cannot damage.
	var ck []byte
	crashed := -1 // event index the run died at; -1 if it reached the end
	for i, ev := range events {
		if i == spec.killAt {
			fp.Kill()
			crashed = i
			break
		}
		if err := eng.Submit(ev); err != nil {
			if !errors.Is(err, wal.ErrInjected) {
				t.Fatalf("event %d: submit failed with a non-injected error: %v", i, err)
			}
			crashed = i
			break
		}
		if spec.ckEvery > 0 && (i+1)%spec.ckEvery == 0 {
			ckLSN := eng.WALLastLSN()
			var buf bytes.Buffer
			if err := eng.Checkpoint(&buf); err != nil {
				if !errors.Is(err, wal.ErrInjected) {
					t.Fatalf("event %d: checkpoint failed with a non-injected error: %v", i, err)
				}
				crashed = i
				break // fault tripped by the checkpoint's own sync/marker
			}
			ck = buf.Bytes()
			// Reclaim segments the snapshot now covers; recovery must work
			// from a log whose history starts mid-stream.
			if _, err := log.TruncateBefore(ckLSN + 1); err != nil && !errors.Is(err, wal.ErrInjected) {
				t.Fatalf("event %d: truncate: %v", i, err)
			}
		}
	}
	fp.Kill() // idempotent: the process dies wherever the loop stopped
	_ = eng.Close()

	// Guard the harness itself: a scenario that scripts a fault must have
	// actually crashed mid-stream, or the "recovery" below proves nothing.
	wantCrash := spec.killAt >= 0 || spec.fp.CrashAfterBytes > 0 || spec.fp.FailSyncAt > 0
	if wantCrash && crashed < 0 {
		t.Fatalf("scenario never crashed: the injected fault did not fire within %d events", len(events))
	}
	if spec.killAt >= 0 && crashed != spec.killAt {
		t.Fatalf("crashed at event %d, kill was scheduled at %d", crashed, spec.killAt)
	}

	// Recovery: reopen the surviving bytes directly (the failpoint layer
	// died with the "machine"), rebuild state, resume, compare.
	log2, err := wal.Open(mem, walCrashOptions())
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	defer log2.Close()
	c2 := cfg()
	c2.WAL = log2
	rec, err := New(c2)
	if err != nil {
		t.Fatal(err)
	}
	var snap io.Reader
	if ck != nil {
		snap = bytes.NewReader(ck)
	}
	if _, err := rec.RecoverWAL(snap); err != nil {
		t.Fatalf("RecoverWAL: %v", err)
	}
	resume := int(rec.Stats().Events)
	if resume > len(events) {
		t.Fatalf("recovered %d events, stream only has %d", resume, len(events))
	}
	if crashed >= 0 && resume > crashed {
		t.Fatalf("recovered %d events but only %d were ever submitted", resume, crashed)
	}
	t.Logf("crashed at %d, recovered %d of %d events (snapshot: %v)", crashed, resume, len(events), ck != nil)
	for i, ev := range events[resume:] {
		if err := rec.Submit(ev); err != nil {
			t.Fatalf("resume event %d: %v", resume+i, err)
		}
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	got := rec.Stats()

	if got.Revenue != want.Revenue {
		t.Fatalf("recovered revenue %v != uninterrupted %v (exact equality required; resumed at %d/%d)",
			got.Revenue, want.Revenue, resume, len(events))
	}
	if ledgerOf(got) != ledgerOf(want) {
		t.Fatalf("lifecycle ledger mismatch (resumed at %d/%d):\nrecovered     %+v\nuninterrupted %+v",
			resume, len(events), got.Lifecycle, want.Lifecycle)
	}
	if got.Events != want.Events || got.TasksPriced != want.TasksPriced ||
		got.Accepted != want.Accepted || got.Served != want.Served || got.Batches != want.Batches {
		t.Fatalf("funnel mismatch (resumed at %d/%d): recovered %d/%d/%d/%d/%d, uninterrupted %d/%d/%d/%d/%d",
			resume, len(events),
			got.Events, got.TasksPriced, got.Accepted, got.Served, got.Batches,
			want.Events, want.TasksPriced, want.Accepted, want.Served, want.Batches)
	}
}

// TestWALSubmitGate asserts the refusal that makes recovery safe: an engine
// attached to a log with unreplayed history must reject Submit until
// RecoverWAL has run, so new appends can never diverge from the tail.
func TestWALSubmitGate(t *testing.T) {
	mem := wal.NewMemStore()
	log, err := wal.Open(mem, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e1, err := New(Config{Grid: geo.SquareGrid(100, 10), Strategy: &fixedPrice{price: 2}, WAL: log})
	if err != nil {
		t.Fatal(err)
	}
	mustSubmit(t, e1, Tick(0))
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}
	log.Close()

	log2, err := wal.Open(mem, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	e2, err := New(Config{Grid: geo.SquareGrid(100, 10), Strategy: &fixedPrice{price: 2}, WAL: log2})
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.Submit(Tick(1)); err == nil {
		t.Fatal("Submit succeeded on an unrecovered engine with WAL history")
	}
	if n, err := e2.RecoverWAL(nil); err != nil || n != 1 {
		t.Fatalf("RecoverWAL: n=%d err=%v, want 1 replayed", n, err)
	}
	mustSubmit(t, e2, Tick(1))
	if got := e2.WALLastLSN(); got != 2 {
		t.Fatalf("WALLastLSN = %d, want 2", got)
	}
	_ = e2.Close()
}
