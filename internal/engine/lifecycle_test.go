package engine

import (
	"sync"
	"testing"

	"spatialcrowd/internal/core"
	"spatialcrowd/internal/geo"
	"spatialcrowd/internal/market"
	"spatialcrowd/internal/sim"
	"spatialcrowd/internal/spatial"
)

// collector gathers the decision stream from shard goroutines.
type collector struct {
	mu sync.Mutex
	ds []Decision
}

func (c *collector) add(d Decision) {
	c.mu.Lock()
	c.ds = append(c.ds, d)
	c.mu.Unlock()
}

func (c *collector) last() map[int]Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := map[int]Decision{}
	for _, d := range c.ds {
		if !d.Quoted {
			out[d.TaskID] = d
		}
	}
	return out
}

// TestGhostWorkerRegression pins the duplicate-online fix: a worker that
// re-onlines from a cell owned by a different shard must be retired from
// its old shard first. Before the fix the old shard kept a ghost copy that
// could still serve tasks there, double-counting supply.
//
// Geometry (10x10 grid over [0,100], ModPartition(2)): cell ids are
// row-major, so (5,5) is cell 0 (shard 0) and (15,5) is cell 1 (shard 1).
func TestGhostWorkerRegression(t *testing.T) {
	out := &collector{}
	e, err := New(Config{
		Grid:        geo.SquareGrid(100, 10),
		Shards:      2,
		NewStrategy: func(int) core.Strategy { return &fixedPrice{price: 2} },
		AutoDecide:  true,
		OnDecision:  out.add,
	})
	if err != nil {
		t.Fatal(err)
	}
	oldLoc := geo.Point{X: 5, Y: 5}
	newLoc := geo.Point{X: 15, Y: 5}
	mustSubmit(t, e,
		Tick(0),
		WorkerOnline(market.Worker{ID: 1, Loc: oldLoc, Radius: 3, Duration: 100}),
		// Duplicate online from a different cell/shard: the shard-0 copy
		// must be evicted, not left behind.
		WorkerOnline(market.Worker{ID: 1, Loc: newLoc, Radius: 3, Duration: 100}),
		TaskArrival(market.Task{ID: 10, Origin: oldLoc, Distance: 2, Valuation: 5}),
		TaskArrival(market.Task{ID: 11, Origin: newLoc, Distance: 2, Valuation: 5}),
		Tick(1),
	)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	last := out.last()
	if d := last[10]; d.Served {
		t.Fatalf("task at the stale location was served by a ghost copy: %+v", d)
	}
	if d := last[11]; !d.Served || d.WorkerID != 1 {
		t.Fatalf("task at the fresh location not served: %+v", d)
	}
	st := e.Stats()
	if st.Late != 1 || st.Lifecycle.DuplicateOnlines != 1 {
		t.Fatalf("late=%d duplicates=%d, want 1/1", st.Late, st.Lifecycle.DuplicateOnlines)
	}
	if st.Served != 1 {
		t.Fatalf("served=%d, want 1", st.Served)
	}
}

// TestDuplicateOnlineDeterministic checks the same hazard inside one pool:
// a duplicate online replaces the entry in place (never a second copy).
func TestDuplicateOnlineDeterministic(t *testing.T) {
	strat := &fixedPrice{price: 2}
	e, err := New(Config{Grid: geo.SquareGrid(100, 10), Strategy: strat, AutoDecide: true})
	if err != nil {
		t.Fatal(err)
	}
	mustSubmit(t, e,
		Tick(0),
		WorkerOnline(market.Worker{ID: 1, Loc: geo.Point{X: 5, Y: 5}, Radius: 3, Duration: 100}),
		WorkerOnline(market.Worker{ID: 1, Loc: geo.Point{X: 55, Y: 55}, Radius: 3, Duration: 100}),
		TaskArrival(market.Task{ID: 10, Origin: geo.Point{X: 5, Y: 5}, Distance: 2, Valuation: 5}),
		TaskArrival(market.Task{ID: 11, Origin: geo.Point{X: 55, Y: 55}, Distance: 2, Valuation: 5}),
		Tick(1),
	)
	st := e.Stats()
	if st.Lifecycle.Pooled != 0 { // the one copy was consumed by task 11
		t.Fatalf("pooled=%d after assignment, want 0 (no ghost copy)", st.Lifecycle.Pooled)
	}
	if st.Served != 1 || st.Late != 1 || st.Lifecycle.DuplicateOnlines != 1 {
		t.Fatalf("served=%d late=%d dup=%d, want 1/1/1", st.Served, st.Late, st.Lifecycle.DuplicateOnlines)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWorkerMoveDeterministic: an in-place move relocates supply — the
// worker serves at the new position, not the old one.
func TestWorkerMoveDeterministic(t *testing.T) {
	e, err := New(Config{Grid: geo.SquareGrid(100, 10), Strategy: &fixedPrice{price: 2}, AutoDecide: true})
	if err != nil {
		t.Fatal(err)
	}
	mustSubmit(t, e,
		Tick(0),
		WorkerOnline(market.Worker{ID: 1, Loc: geo.Point{X: 5, Y: 5}, Radius: 3, Duration: 100}),
		WorkerMove(1, geo.Point{X: 55, Y: 55}),
		TaskArrival(market.Task{ID: 10, Origin: geo.Point{X: 5, Y: 5}, Distance: 2, Valuation: 5}),
		TaskArrival(market.Task{ID: 11, Origin: geo.Point{X: 55, Y: 55}, Distance: 2, Valuation: 5}),
		Tick(1),
		WorkerMove(99, geo.Point{X: 1, Y: 1}), // unknown worker: late
	)
	st := e.Stats()
	if st.Served != 1 || st.Lifecycle.Moves != 1 {
		t.Fatalf("served=%d moves=%d, want 1/1", st.Served, st.Lifecycle.Moves)
	}
	if st.Late != 1 {
		t.Fatalf("late=%d, want 1 (move for unknown worker)", st.Late)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCrossShardMigration drives the retire-in-old / admit-in-new
// handshake: after the move the worker supplies only its new shard.
func TestCrossShardMigration(t *testing.T) {
	out := &collector{}
	e, err := New(Config{
		Grid:        geo.SquareGrid(100, 10),
		Shards:      2,
		NewStrategy: func(int) core.Strategy { return &fixedPrice{price: 2} },
		AutoDecide:  true,
		OnDecision:  out.add,
	})
	if err != nil {
		t.Fatal(err)
	}
	oldLoc := geo.Point{X: 5, Y: 5}  // cell 0, shard 0
	newLoc := geo.Point{X: 15, Y: 5} // cell 1, shard 1
	mustSubmit(t, e,
		Tick(0),
		WorkerOnline(market.Worker{ID: 1, Loc: oldLoc, Radius: 3, Duration: 100}),
		WorkerMove(1, newLoc),
		TaskArrival(market.Task{ID: 10, Origin: oldLoc, Distance: 2, Valuation: 5}),
		TaskArrival(market.Task{ID: 11, Origin: newLoc, Distance: 2, Valuation: 5}),
		Tick(1),
	)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	last := out.last()
	if d := last[10]; d.Served {
		t.Fatalf("task in the departed shard served: %+v (ghost supply)", d)
	}
	if d := last[11]; !d.Served || d.WorkerID != 1 {
		t.Fatalf("task in the destination shard not served: %+v", d)
	}
	st := e.Stats()
	if st.Lifecycle.Migrations != 1 || st.Late != 0 {
		t.Fatalf("migrations=%d late=%d, want 1/0", st.Lifecycle.Migrations, st.Late)
	}
}

// TestQuotedHeldPinsMigration: a worker referenced by a pending quoted
// batch must not migrate out from under its provisional assignment — the
// move applies in place and the assignment survives finalization.
func TestQuotedHeldPinsMigration(t *testing.T) {
	out := &collector{}
	e, err := New(Config{
		Grid:        geo.SquareGrid(100, 10),
		Shards:      2,
		NewStrategy: func(int) core.Strategy { return &fixedPrice{price: 2} },
		OnDecision:  out.add, // quoted mode
	})
	if err != nil {
		t.Fatal(err)
	}
	loc := geo.Point{X: 5, Y: 5}   // shard 0
	away := geo.Point{X: 15, Y: 5} // shard 1
	mustSubmit(t, e,
		Tick(0),
		WorkerOnline(market.Worker{ID: 1, Loc: loc, Radius: 3, Duration: 100}),
		TaskArrival(market.Task{ID: 10, Origin: loc, Distance: 2}),
		Tick(1),                  // quote the batch; worker 1 is now quoted-held
		AcceptDecision(10, true), // provisional assignment to worker 1
		WorkerMove(1, away),      // cross-shard move while held: must pin
		Tick(2),                  // finalize
	)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Lifecycle.PinnedMoves != 1 || st.Lifecycle.Migrations != 0 {
		t.Fatalf("pinned=%d migrations=%d, want 1/0", st.Lifecycle.PinnedMoves, st.Lifecycle.Migrations)
	}
	if st.Served != 1 || st.Revenue != 4 {
		t.Fatalf("served=%d revenue=%v, want the held assignment to survive (1, 4)", st.Served, st.Revenue)
	}
	if d := out.last()[10]; !d.Served || d.WorkerID != 1 {
		t.Fatalf("final decision %+v, want served by worker 1", d)
	}
}

// TestMobilityReplayExact is the mobility acceptance criterion: a
// deterministic AutoDecide engine in cell-index-graph mode, replaying the
// simulator's own recorded mobility trace, reproduces sim.Run's revenue
// bit for bit — batch construction, adjacency order, tie breaks, pool
// drift, and repositioning all align.
func TestMobilityReplayExact(t *testing.T) {
	in, model := testInstance(t)
	basep := calibratedBase(t, in, model)
	pb := basep.BasePrice()

	mkStrat := func() core.Strategy {
		m, err := core.NewMAPS(core.DefaultParams(), pb)
		if err != nil {
			t.Fatal(err)
		}
		basep.WarmStart(m.CellStats)
		return m
	}

	var moves []market.Move
	simCfg := sim.Config{
		Params:          core.DefaultParams(),
		RepositionSpeed: 2,
		OnMove:          func(m market.Move) { moves = append(moves, m) },
	}
	simRes, err := sim.Run(in, mkStrat(), simCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) == 0 {
		t.Fatal("simulator recorded no moves; the test needs mobility")
	}

	e, err := New(Config{Grid: in.Grid, Strategy: mkStrat(), AutoDecide: true,
		CellIndexGraphs: true, OnDecision: func(Decision) {}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReplayMobility(e, in, moves); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	t.Logf("sim revenue %.6f served %d; engine revenue %.6f served %d; %d moves replayed",
		simRes.Revenue, simRes.Served, st.Revenue, st.Served, len(moves))
	if simRes.Revenue <= 0 {
		t.Fatalf("sim revenue %v, want > 0", simRes.Revenue)
	}
	if st.Revenue != simRes.Revenue {
		t.Fatalf("engine revenue %v != sim revenue %v (exact equality required)", st.Revenue, simRes.Revenue)
	}
	if st.Served != int64(simRes.Served) || st.Accepted != int64(simRes.Accepted) ||
		st.TasksPriced != int64(simRes.Offered) {
		t.Fatalf("funnel mismatch: engine %d/%d/%d, sim %d/%d/%d",
			st.TasksPriced, st.Accepted, st.Served, simRes.Offered, simRes.Accepted, simRes.Served)
	}
}

// TestPartitionerValidation: engine.New must reject partitioners that map
// cells outside [0, Shards).
func TestPartitionerValidation(t *testing.T) {
	_, err := New(Config{
		Grid:        geo.SquareGrid(100, 10),
		Shards:      2,
		NewStrategy: func(int) core.Strategy { return &fixedPrice{price: 2} },
		Partitioner: badPartitioner{},
	})
	if err == nil {
		t.Fatal("out-of-range partitioner accepted")
	}
	// A clamped BalancedPartition (more shards than cells) no longer
	// matches Config.Shards and must be rejected rather than leaving
	// shards without cells.
	tiny := spatial.NewGridSpace(geo.SquareGrid(100, 2)) // 4 cells
	p := spatial.BalancedPartition(tiny, 9)
	if p.Shards() != 4 {
		t.Fatalf("BalancedPartition(4 cells, 9 shards).Shards() = %d, want clamped to 4", p.Shards())
	}
	if _, err := New(Config{
		Space:       tiny,
		Shards:      9,
		NewStrategy: func(int) core.Strategy { return &fixedPrice{price: 2} },
		Partitioner: p,
	}); err == nil {
		t.Fatal("shard-count mismatch accepted")
	}
}

type badPartitioner struct{}

func (badPartitioner) Shards() int          { return 2 }
func (badPartitioner) ShardOf(cell int) int { return cell } // escapes [0,2) on cell 2+
