package engine

import (
	"math"
	"math/rand"
	"testing"

	"spatialcrowd/internal/core"
	"spatialcrowd/internal/market"
	"spatialcrowd/internal/spatial"
	"spatialcrowd/internal/workload"
)

// churnBackends builds one small instance per spatial backend; the road
// instance carries its RoadSpace in Instance.Space.
func churnBackends(t *testing.T) map[string]*market.Instance {
	t.Helper()
	grid, _, err := workload.Synthetic(workload.SyntheticConfig{
		Workers: 150, Requests: 600, Periods: 40, GridSide: 5, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	road, _, _, err := workload.BeijingRoad(workload.RoadConfig{
		Variant: workload.BeijingRush, WorkerDuration: 8, Scale: 200, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*market.Instance{"grid": grid, "road": road}
}

// TestQuotedChurnAcrossBackends drives a quoted-mode engine through a churny
// event stream — quotes answered with random accepts, random workers yanked
// offline mid-batch — over both spatial backends and both execution modes,
// with the same seed. It asserts the run survives (no panics, no stuck
// channels) and that revenue accounting is conserved: shard revenues sum to
// the total, the decision stream's committed pairings carry exactly the
// finalized revenue, and the funnel (served <= accepted <= quoted) holds.
func TestQuotedChurnAcrossBackends(t *testing.T) {
	for name, in := range churnBackends(t) {
		for _, shards := range []int{0, 3} {
			t.Run(name+modeName(shards), func(t *testing.T) {
				runChurn(t, in, shards)
			})
		}
	}
}

func modeName(shards int) string {
	if shards == 0 {
		return "/det"
	}
	return "/sharded"
}

func runChurn(t *testing.T, in *market.Instance, shards int) {
	t.Helper()
	space := in.Spatial()
	cfg := Config{
		Space:  space,
		Shards: shards,
	}
	if shards > 0 {
		cfg.Partitioner = spatial.BalancedPartition(space, shards)
		cfg.NewStrategy = func(int) core.Strategy {
			s, _ := core.NewSDR(core.DefaultParams(), 2)
			return s
		}
	} else {
		s, _ := core.NewSDR(core.DefaultParams(), 2)
		cfg.Strategy = s
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(13))
	tasksByPeriod := in.TasksByPeriod()
	arrivals := in.WorkersByStart()
	var online []int // worker IDs that have gone online (may since be consumed)

	// Collect the decision stream; per task the last non-quoted decision is
	// the committed pairing.
	last := map[int]Decision{}
	drain := func() {
		for _, d := range e.Poll() {
			if !d.Quoted {
				last[d.TaskID] = d
			}
		}
	}

	var openQuotes []int
	for p := 0; p < in.Periods; p++ {
		mustSubmit(t, e, Tick(p))
		// Answer (a random ~70% of) the quotes of the previous window.
		for _, id := range openQuotes {
			if rng.Float64() < 0.7 {
				mustSubmit(t, e, AcceptDecision(id, rng.Float64() < 0.6))
			}
		}
		openQuotes = openQuotes[:0]
		for _, w := range arrivals[p] {
			mustSubmit(t, e, WorkerOnline(w))
			online = append(online, w.ID)
		}
		for _, task := range tasksByPeriod[p] {
			mustSubmit(t, e, TaskArrival(task))
			openQuotes = append(openQuotes, task.ID)
		}
		// Yank a random known worker mid-batch now and then.
		if len(online) > 0 && rng.Float64() < 0.3 {
			mustSubmit(t, e, WorkerOffline(online[rng.Intn(len(online))]))
		}
		if shards == 0 {
			drain()
		}
	}
	mustSubmit(t, e, Tick(in.Periods), Tick(in.Periods+1))
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	drain()

	st := e.Stats()
	if st.TasksPriced == 0 || st.Quoted == 0 {
		t.Fatalf("nothing priced: %+v", st)
	}
	if st.Served > st.Accepted || st.Accepted > st.Quoted {
		t.Fatalf("funnel violated: %+v", st)
	}
	sum := 0.0
	for _, r := range st.ShardRevenue {
		sum += r
	}
	if math.Abs(sum-st.Revenue) > 1e-6 {
		t.Fatalf("shard revenues sum to %v, total %v", sum, st.Revenue)
	}
	var tasks int64
	for _, n := range st.ShardTasks {
		tasks += n
	}
	if tasks != st.TasksPriced {
		t.Fatalf("shard tasks sum to %d, total priced %d", tasks, st.TasksPriced)
	}
	// The committed decision stream must carry exactly the finalized revenue
	// and served count.
	var served int64
	decRevenue := 0.0
	for _, d := range last {
		if d.Served {
			served++
			decRevenue += d.Revenue
		}
	}
	if served != st.Served {
		t.Fatalf("decision stream commits %d served, stats say %d", served, st.Served)
	}
	if rel := math.Abs(decRevenue - st.Revenue); rel > 1e-6*(1+st.Revenue) {
		t.Fatalf("decision stream revenue %v, stats revenue %v", decRevenue, st.Revenue)
	}
	if st.Revenue <= 0 {
		t.Fatalf("no revenue accrued: %+v", st)
	}
}
