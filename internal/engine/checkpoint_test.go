package engine

import (
	"bytes"
	"errors"
	"testing"

	"spatialcrowd/internal/core"
	"spatialcrowd/internal/geo"
	"spatialcrowd/internal/market"
	"spatialcrowd/internal/spatial"
	"spatialcrowd/internal/window"
)

// ckConfig builds the engine config for a checkpoint scenario: MAPS per
// shard (warm-started from one shared calibration, so strategy state is
// non-trivial and must round-trip) over the given backend.
func ckConfig(t *testing.T, in *market.Instance, shards int, basePrice float64) Config {
	t.Helper()
	mk := func(int) core.Strategy {
		m, err := core.NewMAPS(core.DefaultParams(), basePrice)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	cfg := Config{
		Space:      in.Spatial(),
		Shards:     shards,
		AutoDecide: true,
		OnDecision: func(Decision) {},
	}
	if shards > 0 {
		cfg.Partitioner = spatial.BalancedPartition(in.Spatial(), shards)
		cfg.NewStrategy = mk
	} else {
		cfg.Strategy = mk(0)
	}
	return cfg
}

func ledgerOf(st Stats) [8]int64 {
	lc := st.Lifecycle
	return [8]int64{lc.Onlines, lc.DuplicateOnlines, lc.Moves, lc.Migrations,
		lc.RetiredAssigned, lc.RetiredExpired, lc.RetiredOffline, lc.Pooled}
}

// TestCheckpointRestoreRoundTrip is the crash-recovery acceptance
// criterion: run half the stream, checkpoint, restore into a fresh engine,
// finish the stream — revenue and the lifecycle ledger must be identical to
// the uninterrupted run, across det/4-shard and grid/road backends.
func TestCheckpointRestoreRoundTrip(t *testing.T) {
	for name, in := range churnBackends(t) {
		for _, shards := range []int{0, 4} {
			in := in
			t.Run(name+modeName(shards), func(t *testing.T) {
				cut := in.Periods / 2

				// Uninterrupted reference run.
				ref, err := New(ckConfig(t, in, shards, 2))
				if err != nil {
					t.Fatal(err)
				}
				if _, err := ReplayWith(ref, in, ReplayOpts{}); err != nil {
					t.Fatal(err)
				}
				if err := ref.Close(); err != nil {
					t.Fatal(err)
				}
				want := ref.Stats()
				if want.Revenue <= 0 {
					t.Fatalf("reference run accrued no revenue: %+v", want)
				}

				// Interrupted run: replay up to the cut, checkpoint, "crash".
				var ck bytes.Buffer
				first, err := New(ckConfig(t, in, shards, 2))
				if err != nil {
					t.Fatal(err)
				}
				_, err = ReplayWith(first, in, ReplayOpts{AfterPeriod: func(p int) error {
					if p == cut-1 {
						if err := first.Checkpoint(&ck); err != nil {
							return err
						}
						return errCheckpointAbort // the "crash"
					}
					return nil
				}})
				if !errors.Is(err, errCheckpointAbort) || ck.Len() == 0 {
					t.Fatalf("expected aborted replay with a written checkpoint (err=%v, len=%d)", err, ck.Len())
				}
				_ = first.Close()

				// Restore into a fresh engine and finish the stream.
				second, err := New(ckConfig(t, in, shards, 2))
				if err != nil {
					t.Fatal(err)
				}
				if err := second.Restore(bytes.NewReader(ck.Bytes())); err != nil {
					t.Fatal(err)
				}
				if got := second.RestoredPeriod(); got != cut-1 {
					t.Fatalf("RestoredPeriod() = %d, want %d", got, cut-1)
				}
				if _, err := ReplayWith(second, in, ReplayOpts{From: second.RestoredPeriod() + 1}); err != nil {
					t.Fatal(err)
				}
				if err := second.Close(); err != nil {
					t.Fatal(err)
				}
				got := second.Stats()

				if got.Revenue != want.Revenue {
					t.Fatalf("restored revenue %v != uninterrupted %v (exact equality required)",
						got.Revenue, want.Revenue)
				}
				if got.Served != want.Served || got.Accepted != want.Accepted ||
					got.TasksPriced != want.TasksPriced || got.Batches != want.Batches {
					t.Fatalf("funnel mismatch: restored %d/%d/%d/%d, uninterrupted %d/%d/%d/%d",
						got.TasksPriced, got.Accepted, got.Served, got.Batches,
						want.TasksPriced, want.Accepted, want.Served, want.Batches)
				}
				if ledgerOf(got) != ledgerOf(want) {
					t.Fatalf("lifecycle ledger mismatch:\nrestored      %+v\nuninterrupted %+v",
						got.Lifecycle, want.Lifecycle)
				}
			})
		}
	}
}

// checkpointAbort makes ReplayWith stop right after the checkpoint is
// written, simulating the crash.
var errCheckpointAbort = errors.New("checkpoint taken, aborting replay")

// TestCheckpointRestoreQuotedPending checkpoints a quoted batch mid-flight —
// prices out, one acceptance provisionally assigned, one quote unanswered —
// and verifies the restored engine finalizes it exactly like an
// uninterrupted one.
func TestCheckpointRestoreQuotedPending(t *testing.T) {
	build := func() *Engine {
		e, err := New(Config{Grid: geo.SquareGrid(100, 10), Strategy: &fixedPrice{price: 2}})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	prefix := func(e *Engine) {
		mustSubmit(t, e,
			Tick(0),
			WorkerOnline(market.Worker{ID: 1, Loc: geo.Point{X: 10, Y: 10}, Radius: 10, Duration: 100}),
			WorkerOnline(market.Worker{ID: 2, Loc: geo.Point{X: 12, Y: 10}, Radius: 10, Duration: 100}),
			TaskArrival(market.Task{ID: 100, Origin: geo.Point{X: 11, Y: 11}, Distance: 3}),
			TaskArrival(market.Task{ID: 101, Origin: geo.Point{X: 9, Y: 9}, Distance: 2}),
			Tick(1),                   // quote the batch
			AcceptDecision(100, true), // provisional assignment
		)
	}
	suffix := func(e *Engine) Stats {
		mustSubmit(t, e,
			AcceptDecision(101, true),
			Tick(2), // finalize
		)
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
		return e.Stats()
	}

	ref := build()
	prefix(ref)
	want := suffix(ref)

	first := build()
	prefix(first)
	var ck bytes.Buffer
	if err := first.Checkpoint(&ck); err != nil {
		t.Fatal(err)
	}
	_ = first.Close()

	second := build()
	if err := second.Restore(bytes.NewReader(ck.Bytes())); err != nil {
		t.Fatal(err)
	}
	got := suffix(second)

	if got.Revenue != want.Revenue || got.Served != want.Served ||
		got.Accepted != want.Accepted || got.Quoted != want.Quoted {
		t.Fatalf("restored quoted run %+v\nwant %+v", got, want)
	}
	if want.Served != 2 {
		t.Fatalf("scenario degenerate: served=%d, want 2", want.Served)
	}
}

// TestCheckpointReshard restores a deterministic checkpoint onto a sharded
// engine: workers and pricing state are re-homed by cell, totals are
// conserved, and the run continues.
func TestCheckpointReshard(t *testing.T) {
	in, model := testInstance(t)
	basep := calibratedBase(t, in, model)
	pb := basep.BasePrice()
	cut := in.Periods / 2

	first, err := New(ckConfig(t, in, 0, pb))
	if err != nil {
		t.Fatal(err)
	}
	var ck bytes.Buffer
	_, err = ReplayWith(first, in, ReplayOpts{AfterPeriod: func(p int) error {
		if p == cut-1 {
			if err := first.Checkpoint(&ck); err != nil {
				return err
			}
			return errCheckpointAbort
		}
		return nil
	}})
	if !errors.Is(err, errCheckpointAbort) {
		t.Fatalf("replay did not abort at the checkpoint: %v", err)
	}
	atCut := first.Stats()
	_ = first.Close()

	second, err := New(ckConfig(t, in, 4, pb))
	if err != nil {
		t.Fatal(err)
	}
	if err := second.Restore(bytes.NewReader(ck.Bytes())); err != nil {
		t.Fatal(err)
	}
	restored := second.Stats()
	if restored.Revenue != atCut.Revenue {
		t.Fatalf("re-sharded restore lost revenue: %v != %v", restored.Revenue, atCut.Revenue)
	}
	if restored.Lifecycle.Pooled != atCut.Lifecycle.Pooled {
		t.Fatalf("re-sharded restore lost workers: pooled %d != %d",
			restored.Lifecycle.Pooled, atCut.Lifecycle.Pooled)
	}
	// No worker may appear in two shards after the re-homing.
	seen := map[int]int{}
	for si, s := range second.shards {
		for _, w := range s.pool {
			if prev, dup := seen[w.ID]; dup {
				t.Fatalf("worker %d restored into shards %d and %d", w.ID, prev, si)
			}
			seen[w.ID] = si
		}
	}
	if _, err := ReplayWith(second, in, ReplayOpts{From: second.RestoredPeriod() + 1}); err != nil {
		t.Fatal(err)
	}
	if err := second.Close(); err != nil {
		t.Fatal(err)
	}
	final := second.Stats()
	if final.Revenue < atCut.Revenue || final.Served <= atCut.Served {
		t.Fatalf("re-sharded run did not progress: %+v (at cut %+v)", final, atCut)
	}
}

// TestCheckpointRestorePartitionerChange pins the fingerprint check: the
// same shard count under a different Partitioner is NOT an exact layout
// match — without pendings the state is re-homed (revenue conserved, no
// ghost pools); with a pending quoted batch the restore is refused rather
// than silently mis-homing workers.
func TestCheckpointRestorePartitionerChange(t *testing.T) {
	grid := geo.SquareGrid(100, 10)
	mkCfg := func(part spatial.Partitioner, auto bool) Config {
		return Config{
			Grid: grid, Shards: 2, Partitioner: part,
			NewStrategy: func(int) core.Strategy { return &fixedPrice{price: 2} },
			AutoDecide:  auto,
			OnDecision:  func(Decision) {},
		}
	}
	balanced := spatial.BalancedPartition(spatial.NewGridSpace(grid), 2)

	// AutoDecide: checkpoint under ModPartition, restore under
	// BalancedPartition — must take the re-homing path.
	e1, err := New(mkCfg(nil, true))
	if err != nil {
		t.Fatal(err)
	}
	mustSubmit(t, e1,
		Tick(0),
		WorkerOnline(market.Worker{ID: 1, Loc: geo.Point{X: 5, Y: 5}, Radius: 10, Duration: 100}),
		WorkerOnline(market.Worker{ID: 2, Loc: geo.Point{X: 15, Y: 5}, Radius: 10, Duration: 100}),
		TaskArrival(market.Task{ID: 10, Origin: geo.Point{X: 6, Y: 6}, Distance: 2, Valuation: 5}),
		Tick(1),
	)
	var ck bytes.Buffer
	if err := e1.Checkpoint(&ck); err != nil {
		t.Fatal(err)
	}
	atCk := e1.Stats()
	_ = e1.Close()

	e2, err := New(mkCfg(balanced, true))
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.Restore(bytes.NewReader(ck.Bytes())); err != nil {
		t.Fatal(err)
	}
	st := e2.Stats()
	if st.Revenue != atCk.Revenue || st.Lifecycle.Pooled != atCk.Lifecycle.Pooled {
		t.Fatalf("re-homed restore lost state: %+v vs %+v", st, atCk)
	}
	// Every restored worker must sit in the shard its cell now routes to.
	for si, s := range e2.shards {
		for _, w := range s.pool {
			if want := balanced.ShardOf(grid.CellOf(w.Loc)); want != si {
				t.Fatalf("worker %d restored into shard %d, new partitioner routes its cell to %d", w.ID, si, want)
			}
		}
	}
	// A task at the re-homed worker's cell must still be servable.
	mustSubmit(t, e2,
		Tick(2),
		TaskArrival(market.Task{ID: 11, Origin: geo.Point{X: 15, Y: 6}, Distance: 2, Valuation: 5}),
		Tick(3),
	)
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}
	if got := e2.Stats(); got.Served != atCk.Served+1 {
		t.Fatalf("re-homed worker unreachable: served %d, want %d", got.Served, atCk.Served+1)
	}

	// Quoted mode with a pending batch: the partitioner change must refuse.
	q1, err := New(mkCfg(nil, false))
	if err != nil {
		t.Fatal(err)
	}
	mustSubmit(t, q1,
		Tick(0),
		WorkerOnline(market.Worker{ID: 1, Loc: geo.Point{X: 5, Y: 5}, Radius: 10, Duration: 100}),
		TaskArrival(market.Task{ID: 10, Origin: geo.Point{X: 6, Y: 6}, Distance: 2}),
		Tick(1), // quote: batch now pending
	)
	ck.Reset()
	if err := q1.Checkpoint(&ck); err != nil {
		t.Fatal(err)
	}
	_ = q1.Close()
	q2, err := New(mkCfg(balanced, false))
	if err != nil {
		t.Fatal(err)
	}
	if err := q2.Restore(bytes.NewReader(ck.Bytes())); err == nil {
		t.Fatal("pending quoted batch restored across a partitioner change")
	}
	_ = q2.Close()
}

// TestRestoreStateKindMismatch pins the strategy-kind check: a checkpoint
// taken under one UCB-family strategy must refuse to restore into another.
func TestRestoreStateKindMismatch(t *testing.T) {
	m, _ := core.NewMAPS(core.DefaultParams(), 2)
	m.CellStats(0).Seed(2, 10, 5)
	st, err := m.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	c, _ := core.NewCappedUCB(core.DefaultParams(), 2)
	if err := c.RestoreState(st); err == nil {
		t.Fatal("MAPS state restored into CappedUCB")
	}
	pm, _ := core.NewParametricMAPS(core.DefaultParams(), 2)
	if err := pm.RestoreState(st); err == nil {
		t.Fatal("MAPS state restored into ParametricMAPS")
	}
}

// TestCheckpointRestoreValidation pins the failure modes: restore into a
// mismatched config, onto a non-fresh engine, or from garbage.
func TestCheckpointRestoreValidation(t *testing.T) {
	mk := func(window int) *Engine {
		e, err := New(Config{Grid: geo.SquareGrid(100, 10), Window: window,
			Strategy: &fixedPrice{price: 2}, AutoDecide: true})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	e := mk(1)
	mustSubmit(t, e, Tick(0),
		WorkerOnline(market.Worker{ID: 1, Loc: geo.Point{X: 10, Y: 10}, Radius: 10, Duration: 5}))
	var ck bytes.Buffer
	if err := e.Checkpoint(&ck); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	if err := mk(2).Restore(bytes.NewReader(ck.Bytes())); err == nil {
		t.Fatal("window mismatch accepted")
	}
	used := mk(1)
	mustSubmit(t, used, Tick(0))
	if err := used.Restore(bytes.NewReader(ck.Bytes())); err == nil {
		t.Fatal("restore onto a used engine accepted")
	}
	if err := mk(1).Restore(bytes.NewReader([]byte("not json"))); err == nil {
		t.Fatal("garbage accepted")
	}
	fresh := mk(1)
	if err := fresh.Restore(bytes.NewReader(ck.Bytes())); err != nil {
		t.Fatal(err)
	}
	if fresh.Stats().Lifecycle.Pooled != 1 {
		t.Fatalf("restored pool gauge %d, want 1", fresh.Stats().Lifecycle.Pooled)
	}
}

// badCountStrategy violates the one-price-per-task contract.
type badCountStrategy struct{}

func (badCountStrategy) Name() string { return "bad" }
func (badCountStrategy) Prices(ctx *core.PeriodContext) []float64 {
	return make([]float64, 1+len(ctx.Tasks))
}
func (badCountStrategy) Observe(*core.PeriodContext, []float64, []bool) {}

// TestStrategyErrorSurfacedNotPanic pins the satellite bugfix: a strategy
// returning a malformed price vector must not panic the shard — the batch
// is dropped and a typed *window.PriceCountError surfaces through Stats.
func TestStrategyErrorSurfacedNotPanic(t *testing.T) {
	e, err := New(Config{Grid: geo.SquareGrid(100, 10), Strategy: badCountStrategy{}, AutoDecide: true})
	if err != nil {
		t.Fatal(err)
	}
	mustSubmit(t, e,
		Tick(0),
		WorkerOnline(market.Worker{ID: 1, Loc: geo.Point{X: 10, Y: 10}, Radius: 10, Duration: 100}),
		TaskArrival(market.Task{ID: 7, Origin: geo.Point{X: 11, Y: 11}, Distance: 2, Valuation: 5}),
		Tick(1),
	)
	st := e.Stats()
	if st.StrategyErrors != 1 {
		t.Fatalf("StrategyErrors = %d, want 1", st.StrategyErrors)
	}
	var pce *window.PriceCountError
	if !errors.As(st.LastStrategyError, &pce) {
		t.Fatalf("LastStrategyError = %v, want *window.PriceCountError", st.LastStrategyError)
	}
	if pce.Strategy != "bad" || pce.Got != 2 || pce.Want != 1 {
		t.Fatalf("error detail %+v", *pce)
	}
	if st.TasksPriced != 0 || st.Batches != 0 {
		t.Fatalf("dropped batch still counted: %+v", st)
	}
	// The engine keeps serving subsequent (empty) windows without panicking.
	mustSubmit(t, e, Tick(2), Tick(3))
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointByteStability pins checkpoint determinism at the byte
// level: two independent engines fed the same stream must emit identical
// checkpoint bytes. This is what the sorted-key serialization in
// checkpoint.go and the (delta, cell) heap tie-break in core exist for —
// any map-order leak into encoding or pricing shows up here as a diff.
func TestCheckpointByteStability(t *testing.T) {
	for name, in := range churnBackends(t) {
		for _, shards := range []int{0, 4} {
			in := in
			shards := shards
			t.Run(name+modeName(shards), func(t *testing.T) {
				cut := in.Periods / 2
				run := func() []byte {
					e, err := New(ckConfig(t, in, shards, 2))
					if err != nil {
						t.Fatal(err)
					}
					var ck bytes.Buffer
					_, err = ReplayWith(e, in, ReplayOpts{AfterPeriod: func(p int) error {
						if p == cut-1 {
							if err := e.Checkpoint(&ck); err != nil {
								return err
							}
							return errCheckpointAbort
						}
						return nil
					}})
					if !errors.Is(err, errCheckpointAbort) || ck.Len() == 0 {
						t.Fatalf("expected aborted replay with a written checkpoint (err=%v, len=%d)", err, ck.Len())
					}
					_ = e.Close()
					return ck.Bytes()
				}
				a, b := run(), run()
				if !bytes.Equal(a, b) {
					i := 0
					for i < len(a) && i < len(b) && a[i] == b[i] {
						i++
					}
					t.Fatalf("checkpoints differ at byte %d of %d/%d: two runs of the same stream must serialize identically", i, len(a), len(b))
				}
			})
		}
	}
}
