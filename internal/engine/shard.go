package engine

import (
	"fmt"
	"time"

	"spatialcrowd/internal/core"
	"spatialcrowd/internal/market"
	"spatialcrowd/internal/match"
)

// shard owns the market state of a subset of grid cells: the worker pool,
// the open pricing window's tasks, at most one in-flight quoted batch, and a
// private strategy instance. In concurrent mode each shard is driven by its
// own goroutine reading from its channel, so none of this state needs locks;
// in deterministic mode a single shard is driven inline by Submit.
type shard struct {
	id     int
	eng    *Engine
	in     chan Event // nil in deterministic mode
	strat  core.Strategy
	window int

	batchStart int // first period of the open window
	lastTick   int // highest tick period seen (stamps lifecycle notes)

	tasks   []market.Task   // the open window's tasks, in arrival order
	pool    []market.Worker // online workers, in arrival order
	pending *pendingBatch   // quoted batch awaiting requester decisions
	notes   []lifecycleNote // pool transitions since the last flush to the router
}

// pendingBatch is a priced batch whose requesters have not all replied
// (AutoDecide disabled). It keeps a stable copy of the batch's worker slice
// so pool churn cannot shift the matcher's right-vertex indices.
type pendingBatch struct {
	ctx      *core.PeriodContext
	prices   []float64
	workers  []market.Worker // batch right side (stable copy)
	inc      *match.Incremental
	decided  []bool
	accepted []bool
	taskIdx  map[int]int // task ID -> batch index
	snap     []int       // reusable LeftTo snapshot for reassignment detection
}

func newShard(id int, eng *Engine, strat core.Strategy) *shard {
	return &shard{id: id, eng: eng, strat: strat, window: eng.cfg.Window}
}

// run drains the shard's channel until the router closes it, then finalizes
// any in-flight quoted batch so its revenue is counted.
func (s *shard) run() {
	defer s.eng.shardWG.Done()
	for ev := range s.in {
		s.handle(ev)
	}
	s.finalizePending(time.Now())
	s.flushNotes()
}

func (s *shard) handle(ev Event) {
	switch ev.Kind {
	case KindTick:
		s.advanceTo(ev.Period, ev.at)
	case KindTaskArrival:
		s.tasks = append(s.tasks, ev.Task)
	case KindWorkerOnline:
		s.workerOnline(ev.Worker)
	case KindWorkerOffline:
		s.workerOffline(ev.WorkerID, ev.at)
	case KindWorkerMove:
		s.workerMove(ev)
	case KindAcceptDecision:
		s.decide(ev)
	case kindEvict:
		s.evictStale(ev.WorkerID, ev.at)
	case kindAdmit:
		s.admit(ev.Worker)
	}
}

// workerOnline admits a worker into the pool. A duplicate online (the ID is
// already pooled) replaces the entry in place — never appends a second copy,
// which would double-count supply within the shard. In deterministic mode
// the shard also does the router's duplicate accounting.
//
// The duplicate scan is linear in the pool, like every by-ID pool
// operation here: the pool discipline (arrival-ordered slice, positional
// consume shared with the offline simulator) keeps batch construction and
// replay equivalence simple, and steady-state pools stay small because
// assignment and expiry continuously drain them. An ID index would only
// pay off for adversarial streams that park huge idle pools in one shard.
func (s *shard) workerOnline(w market.Worker) {
	for i := range s.pool {
		if s.pool[i].ID == w.ID {
			s.pool[i] = w
			if s.eng.det != nil {
				s.eng.late.Add(1)
				s.eng.lcDuplicates.Add(1)
			}
			return
		}
	}
	s.pool = append(s.pool, w)
	s.eng.pooled.Add(1)
	s.eng.lcOnlines.Add(1)
}

// admit inserts a migrated worker (the admit half of the cross-shard
// handshake). The ID cannot already be pooled here — the router resolved
// the previous owner synchronously — but replace defensively if it is.
func (s *shard) admit(w market.Worker) {
	for i := range s.pool {
		if s.pool[i].ID == w.ID {
			s.pool[i] = w
			return
		}
	}
	s.pool = append(s.pool, w)
	s.eng.pooled.Add(1)
}

// workerMove relocates a pooled worker. With ev.mig set this is the
// migrate-out half of the cross-shard handshake: hand the worker record to
// the router, unless a pending quoted batch still references the worker, in
// which case the move applies in place and the worker stays pinned to this
// shard. Without ev.mig it is an in-place move (deterministic mode, or the
// new cell stayed in this shard); the pending batch's stable worker copies
// are never touched — quoted prices and the matching were computed against
// the old position and remain committed.
func (s *shard) workerMove(ev Event) {
	if ev.mig != nil {
		for i := range s.pool {
			if s.pool[i].ID != ev.WorkerID {
				continue
			}
			if s.heldByPending(ev.WorkerID) {
				s.pool[i].Loc = ev.Loc
				ev.mig.reply <- migrateReply{ok: true, pinned: true}
				return
			}
			w := s.pool[i]
			w.Loc = ev.Loc
			s.pool = append(s.pool[:i], s.pool[i+1:]...)
			s.eng.pooled.Add(-1)
			ev.mig.reply <- migrateReply{ok: true, worker: w}
			return
		}
		ev.mig.reply <- migrateReply{}
		return
	}
	for i := range s.pool {
		if s.pool[i].ID == ev.WorkerID {
			s.pool[i].Loc = ev.Loc
			s.eng.lcMoves.Add(1)
			return
		}
	}
	// Unknown or already-settled worker (mirrors the router's accounting).
	s.eng.late.Add(1)
}

// heldByPending reports whether the pending quoted batch still references
// the worker (it appears on the batch's right side and has not been removed
// from the matcher).
func (s *shard) heldByPending(id int) bool {
	pb := s.pending
	if pb == nil {
		return false
	}
	for r := range pb.workers {
		if pb.workers[r].ID == id && !pb.inc.Removed(r) {
			return true
		}
	}
	return false
}

// evictStale removes a ghost pool copy after a duplicate online re-homed
// the worker to another shard. No late or lifecycle accounting — the router
// already counted the duplicate — but a provisional assignment held by the
// stale copy is repaired exactly like an offline.
func (s *shard) evictStale(id int, at time.Time) {
	s.repairPending(id, at)
	for i := range s.pool {
		if s.pool[i].ID == id {
			s.pool = append(s.pool[:i], s.pool[i+1:]...)
			s.eng.pooled.Add(-1)
			return
		}
	}
}

// advanceTo moves the shard clock to period p, closing every window boundary
// crossed on the way. Idle stretches (no open tasks, no pending batch) are
// fast-forwarded in one step so a sparse tick sequence costs O(1), not one
// iteration per skipped window.
func (s *shard) advanceTo(p int, at time.Time) {
	if p > s.lastTick {
		s.lastTick = p
	}
	for p >= s.batchStart+s.window {
		if len(s.tasks) == 0 && s.pending == nil {
			k := (p - s.batchStart) / s.window
			s.batchStart += k * s.window
			s.evictExpired(s.batchStart - 1)
			break
		}
		s.closeBatch(s.batchStart+s.window-1, at)
		s.batchStart += s.window
	}
	s.flushNotes()
}

// flushNotes reports the pool transitions since the last tick to the
// router, which folds them into the worker table (batch-grain, one lock).
func (s *shard) flushNotes() {
	if len(s.notes) == 0 {
		return
	}
	s.eng.noteLifecycle(s.notes)
	s.notes = s.notes[:0]
}

// note queues one lifecycle note for the router, stamped with the tick
// period this shard is processing. Deterministic mode keeps no table and
// discards notes.
func (s *shard) note(id int, kind noteKind) {
	if s.eng.det != nil {
		return
	}
	s.notes = append(s.notes, lifecycleNote{id: id, shard: s.id, period: s.lastTick, kind: kind})
}

// countRetire bumps the engine's per-reason retirement counter (identical
// in both modes).
func (s *shard) countRetire(why RetireReason) {
	switch why {
	case RetireAssigned:
		s.eng.lcAssigned.Add(1)
	case RetireExpired:
		s.eng.lcExpired.Add(1)
	case RetireOffline:
		s.eng.lcOffline.Add(1)
	}
}

// workerExpired reports whether w's availability has lapsed by period t.
// Unlike !ActiveAt(t) it keeps workers whose start period lies in the
// future, which can occur in live streams that announce workers early.
func workerExpired(w market.Worker, t int) bool {
	d := w.Duration
	if d <= 0 {
		d = 1
	}
	return t >= w.Period+d
}

func (s *shard) evictExpired(period int) {
	live := s.pool[:0]
	for _, w := range s.pool {
		if !workerExpired(w, period) {
			live = append(live, w)
		} else {
			s.countRetire(RetireExpired)
			s.note(w.ID, noteRetire)
		}
	}
	s.eng.pooled.Add(int64(len(live) - len(s.pool)))
	s.pool = live
}

// closeBatch prices the open window as of the given period: finalize the
// previous quoted batch, evict lapsed workers, build the batch bipartite
// graph from k-d tree candidates, price it with the shard's strategy, and
// either resolve it immediately (AutoDecide) or quote it and wait.
func (s *shard) closeBatch(period int, at time.Time) {
	s.finalizePending(at)
	s.evictExpired(period)
	tasks := s.tasks
	s.tasks = nil
	if len(tasks) == 0 {
		return
	}

	// The batch's right side: every pooled worker currently active. poolIdx
	// maps batch indices back to pool positions; nil means identity.
	batchWorkers := s.pool
	var poolIdx []int
	for i := range s.pool {
		if !s.pool[i].ActiveAt(period) {
			batchWorkers = nil
			break
		}
	}
	if batchWorkers == nil {
		batchWorkers = make([]market.Worker, 0, len(s.pool))
		for i, w := range s.pool {
			if w.ActiveAt(period) {
				batchWorkers = append(batchWorkers, w)
				poolIdx = append(poolIdx, i)
			}
		}
	}
	auto := s.eng.cfg.AutoDecide
	if !auto {
		// The pool mutates while requesters deliberate; give the pending
		// batch a stable copy and consume by worker ID at finalization.
		batchWorkers = append([]market.Worker(nil), batchWorkers...)
		poolIdx = nil
	}

	var graph *match.Graph
	if s.eng.cfg.CellIndexGraphs {
		graph = market.BuildBipartiteCellIndex(s.eng.space, tasks, batchWorkers)
	} else {
		graph = market.NewWorkerIndex(batchWorkers).BuildGraph(tasks)
	}
	ctx := core.BuildContext(s.eng.space, period, tasks, batchWorkers, graph)
	prices := s.strat.Prices(ctx)
	if len(prices) != len(tasks) {
		panic(fmt.Sprintf("engine: strategy %s returned %d prices for %d tasks",
			s.strat.Name(), len(prices), len(tasks)))
	}
	s.eng.notePriced(s.id, len(tasks))

	if auto {
		s.resolve(tasks, ctx, graph, prices, batchWorkers, poolIdx, at)
	} else {
		s.quote(ctx, graph, prices, batchWorkers, at)
	}
}

// resolve applies the requesters' valuations immediately and assigns the
// accepting tasks with match.MaxWeightByLeft — greedy-by-weight incremental
// augmentation, exact for left-weighted graphs — so the deterministic
// engine reproduces the simulator's assignment values by construction.
func (s *shard) resolve(tasks []market.Task, ctx *core.PeriodContext, graph *match.Graph,
	prices []float64, batchWorkers []market.Worker, poolIdx []int, at time.Time) {
	n := len(tasks)
	weight := func(i int) float64 { return ctx.Tasks[i].Distance * prices[i] }

	accepted := make([]bool, n)
	acceptedCount := 0
	weights := make([]float64, n) // rejected tasks weigh 0 and are never matched
	for i := range tasks {
		if tasks[i].Accepts(prices[i]) {
			accepted[i] = true
			acceptedCount++
			weights[i] = weight(i)
		}
	}
	m, _ := match.MaxWeightByLeft(graph, weights)

	ds := make([]Decision, n)
	var consumed []int
	served, revenue := 0, 0.0
	for i := range tasks {
		d := Decision{TaskID: ctx.Tasks[i].ID, Period: ctx.Period, Cell: ctx.Tasks[i].Cell,
			Price: prices[i], WorkerID: -1}
		if accepted[i] {
			d.Accepted = true
			if r := m.LeftTo[i]; r >= 0 {
				d.Served = true
				d.WorkerID = batchWorkers[r].ID
				d.Revenue = weight(i)
				served++
				revenue += d.Revenue
				if poolIdx != nil {
					consumed = append(consumed, poolIdx[r])
				} else {
					consumed = append(consumed, r)
				}
			}
		}
		ds[i] = d
	}
	// Observe before consume: consume compacts the pool backing array that
	// ctx.Workers may alias, and strategies are entitled to read ctx in
	// Observe.
	s.strat.Observe(ctx, prices, accepted)
	s.consume(consumed)
	s.eng.noteBatch(s.id, acceptedCount, served, revenue)
	s.eng.emitAll(ds, at)
}

// quote emits one price offer per task and parks the batch until requesters
// reply (or the next window closes it with the silent ones as rejections).
func (s *shard) quote(ctx *core.PeriodContext, graph *match.Graph, prices []float64,
	batchWorkers []market.Worker, at time.Time) {
	n := len(ctx.Tasks)
	pb := &pendingBatch{
		ctx:      ctx,
		prices:   prices,
		workers:  batchWorkers,
		inc:      match.NewIncremental(graph),
		decided:  make([]bool, n),
		accepted: make([]bool, n),
		taskIdx:  make(map[int]int, n),
	}
	ds := make([]Decision, n)
	for i, tv := range ctx.Tasks {
		pb.taskIdx[tv.ID] = i
		ds[i] = Decision{TaskID: tv.ID, Period: ctx.Period, Cell: tv.Cell,
			Price: prices[i], Quoted: true, WorkerID: -1}
	}
	s.pending = pb
	// The batch holds its workers until finalization: quoted-held pins them
	// to this shard (migrations apply in place) and the router's lifecycle
	// table reflects the hold.
	for i := range batchWorkers {
		s.note(batchWorkers[i].ID, noteHeld)
	}
	s.eng.quoted.Add(int64(n))
	s.eng.emitAll(ds, at)
}

// decide handles a requester's reply to a quote: accepts are assigned
// immediately by a single augmentation (first-come-first-matched, the
// online regime), rejects just release the task.
func (s *shard) decide(ev Event) {
	pb := s.pending
	if pb == nil {
		s.eng.late.Add(1)
		return
	}
	i, ok := pb.taskIdx[ev.TaskID]
	if !ok || pb.decided[i] {
		s.eng.late.Add(1)
		return
	}
	pb.decided[i] = true
	tv := pb.ctx.Tasks[i]
	d := Decision{TaskID: tv.ID, Period: pb.ctx.Period, Cell: tv.Cell,
		Price: pb.prices[i], WorkerID: -1}
	if ev.Accept {
		pb.accepted[i] = true
		d.Accepted = true
		if s.augmentQuoted(pb, i, ev.at) {
			r := pb.inc.Matching().LeftTo[i]
			d.Served = true
			d.WorkerID = pb.workers[r].ID
			d.Revenue = tv.Distance * pb.prices[i]
		}
	}
	s.eng.emit(d, ev.at)
}

// augmentQuoted adds task l to the pending matching. Kuhn's augmenting path
// may flip intermediate pairs, silently reassigning tasks whose provisional
// worker was already announced — for each such task a superseding decision
// is emitted so decision-stream consumers always hold the committed pairing.
func (s *shard) augmentQuoted(pb *pendingBatch, l int, at time.Time) bool {
	m := pb.inc.Matching()
	pb.snap = append(pb.snap[:0], m.LeftTo...)
	if !pb.inc.TryAugment(l) {
		return false
	}
	for i, prev := range pb.snap {
		r := m.LeftTo[i]
		if i == l || r == prev || r < 0 {
			continue
		}
		tv := pb.ctx.Tasks[i]
		s.eng.emit(Decision{TaskID: tv.ID, Period: pb.ctx.Period, Cell: tv.Cell,
			Price: pb.prices[i], Accepted: true, Served: true,
			WorkerID: pb.workers[r].ID, Revenue: tv.Distance * pb.prices[i]}, at)
	}
	return true
}

// finalizePending closes the books on the quoted batch: unanswered quotes
// lapse as rejections (each gets a terminal unaccepted Decision so stream
// consumers can settle their open-quote state), the matching state at this
// instant is what the platform commits, matched workers are consumed, and
// the strategy observes the accept/reject outcomes.
func (s *shard) finalizePending(at time.Time) {
	pb := s.pending
	if pb == nil {
		return
	}
	s.pending = nil
	m := pb.inc.Matching()
	var lapsed []Decision
	matched := make([]bool, len(pb.workers))
	acceptedCount, served, revenue := 0, 0, 0.0
	for i, acc := range pb.accepted {
		if !acc {
			if !pb.decided[i] {
				tv := pb.ctx.Tasks[i]
				lapsed = append(lapsed, Decision{TaskID: tv.ID, Period: pb.ctx.Period,
					Cell: tv.Cell, Price: pb.prices[i], WorkerID: -1})
			}
			continue
		}
		acceptedCount++
		if r := m.LeftTo[i]; r >= 0 {
			matched[r] = true
			served++
			revenue += pb.ctx.Tasks[i].Distance * pb.prices[i]
			s.removeWorkerID(pb.workers[r].ID, RetireAssigned)
		}
	}
	// Release the batch's hold on every unconsumed worker: back to plain
	// online in the lifecycle table, migratable again.
	for r := range pb.workers {
		if !matched[r] {
			s.note(pb.workers[r].ID, noteReleased)
		}
	}
	s.eng.noteBatch(s.id, acceptedCount, served, revenue)
	s.strat.Observe(pb.ctx, pb.prices, pb.accepted)
	s.eng.emitAll(lapsed, at)
}

// workerOffline withdraws a worker from the pool and repairs any
// provisional assignment it holds in the pending batch.
func (s *shard) workerOffline(id int, at time.Time) {
	found := s.repairPending(id, at)
	if s.removeWorkerID(id, RetireOffline) || found {
		return
	}
	// Unknown worker (mirrors the router's accounting, so Stats.Late
	// behaves identically in deterministic and sharded mode).
	s.eng.late.Add(1)
}

// repairPending withdraws the worker from the pending batch's matcher, if a
// batch references it: the orphaned task is re-augmented if any path
// remains, and a superseding decision is emitted either way. Reports
// whether the batch referenced the worker.
func (s *shard) repairPending(id int, at time.Time) bool {
	pb := s.pending
	if pb == nil {
		return false
	}
	for r := range pb.workers {
		if pb.workers[r].ID != id || pb.inc.Removed(r) {
			continue
		}
		if freed := pb.inc.RemoveRight(r); freed >= 0 {
			tv := pb.ctx.Tasks[freed]
			d := Decision{TaskID: tv.ID, Period: pb.ctx.Period, Cell: tv.Cell,
				Price: pb.prices[freed], Accepted: true, WorkerID: -1}
			if s.augmentQuoted(pb, freed, at) {
				r2 := pb.inc.Matching().LeftTo[freed]
				d.Served = true
				d.WorkerID = pb.workers[r2].ID
				d.Revenue = tv.Distance * pb.prices[freed]
			}
			s.eng.emit(d, at)
		}
		return true
	}
	return false
}

// removeWorkerID drops the first pool entry with the given ID, preserving
// arrival order, and reports whether the worker was pooled. Assignment and
// expiry retirements are noted to the router; offline retirements are not
// (the router initiated those and already dropped the entry).
func (s *shard) removeWorkerID(id int, why RetireReason) bool {
	for i := range s.pool {
		if s.pool[i].ID == id {
			s.pool = append(s.pool[:i], s.pool[i+1:]...)
			s.eng.pooled.Add(-1)
			s.countRetire(why)
			if why != RetireOffline {
				s.note(id, noteRetire)
			}
			return true
		}
	}
	return false
}

// consume removes the given pool positions (the workers matched by a
// resolved batch), preserving arrival order — the same pool discipline as
// the offline simulator.
func (s *shard) consume(positions []int) {
	if len(positions) == 0 {
		return
	}
	drop := make(map[int]bool, len(positions))
	for _, p := range positions {
		drop[p] = true
	}
	live := s.pool[:0]
	for i := range s.pool {
		if !drop[i] {
			live = append(live, s.pool[i])
		} else {
			s.countRetire(RetireAssigned)
			s.note(s.pool[i].ID, noteRetire)
		}
	}
	s.eng.pooled.Add(int64(len(live) - len(s.pool)))
	s.pool = live
}
