package engine

import (
	"fmt"
	"time"

	"spatialcrowd/internal/core"
	"spatialcrowd/internal/market"
	"spatialcrowd/internal/match"
	"spatialcrowd/internal/window"
)

// shard owns the market state of a subset of grid cells: the worker pool,
// the open pricing window's tasks, at most one in-flight quoted batch, and a
// private strategy instance. In concurrent mode each shard is driven by its
// own goroutine reading from its channel, so none of this state needs locks;
// in deterministic mode a single shard is driven inline by Submit.
//
// Pool discipline: the pool is an unordered set with O(1) by-ID operations
// (swap-delete plus the poolPos index), and every entry carries the arrival
// sequence number poolSeq. Batch construction — the only consumer that
// depends on order, because right-vertex order steers matching tie breaks
// and therefore replay equivalence — restores arrival order by sorting on
// the sequence numbers at batch-build time (see sortPoolByArrival).
type shard struct {
	id     int
	eng    *Engine
	in     chan Event // nil in deterministic mode
	strat  core.Strategy
	window int

	batchStart int // first period of the open window
	lastTick   int // highest tick period seen (stamps lifecycle notes)

	tasks   []market.Task   // the open window's tasks, in arrival order
	pool    []market.Worker // online workers (unordered; see poolSeq)
	poolSeq []uint64        // arrival sequence per pool entry (parallel to pool)
	poolPos map[int]int     // worker ID -> pool index
	nextSeq uint64          // next arrival sequence number

	pending *pendingBatch   // quoted batch awaiting requester decisions
	notes   []lifecycleNote // pool transitions since the last flush to the router

	// exec is the shard's window-execution core: the shared
	// price -> accept -> assign pipeline (internal/window) with all graph,
	// context, and matcher arenas inside, reused window over window.
	exec    *window.Executor
	scratch batchScratch // engine-side per-batch arenas, reused every window

	// lastCache is the executor's cumulative cache counters as of the last
	// report to the engine; closeBatch pushes the delta after each Price.
	lastCache window.CacheStats
}

// batchScratch is the shard's reusable engine-side working state (the
// pipeline's own arenas live in the executor). One pricing window fully
// consumes a batch before the next window rebuilds it (a quoted batch is
// finalized by the next closeBatch before any arena is reused), so every
// arena below is recycled window over window and the steady-state hot path
// allocates nothing beyond what strategies return.
type batchScratch struct {
	pb      pendingBatch    // quoted-batch shell, reused per quote
	batchW  []market.Worker // filtered/stable batch worker copies
	poolIdx []int           // batch index -> pool position (AutoDecide filter)
	cons    []int           // consumed pool positions (AutoDecide)
	ds      []Decision      // decision batch buffer (copied on emit)
	drop    []bool          // per-position drop marks (consume)
}

// pendingBatch is a priced batch whose requesters have not all replied
// (AutoDecide disabled). It keeps a stable copy of the batch's worker slice
// so pool churn cannot shift the matcher's right-vertex indices.
type pendingBatch struct {
	ctx      *core.PeriodContext
	prices   []float64
	workers  []market.Worker // batch right side (stable copy)
	inc      *match.Incremental
	decided  []bool
	accepted []bool
	taskIdx  map[int]int // task ID -> batch index
	snap     []int       // reusable LeftTo snapshot for reassignment detection
}

func newShard(id int, eng *Engine, strat core.Strategy) *shard {
	mode := window.GraphKD
	if eng.cfg.CellIndexGraphs {
		mode = window.GraphCellIndex
	}
	s := &shard{id: id, eng: eng, strat: strat, window: eng.cfg.Window,
		poolPos: make(map[int]int),
		exec:    window.NewExecutor(eng.space, mode)}
	s.exec.SetAmortize(eng.cfg.Amortize)
	return s
}

// reportCache pushes the executor's cache-counter delta since the last
// report to the engine aggregate (called after every Price, on both the
// success and the dropped-batch path, so counters track pricing attempts).
func (s *shard) reportCache() {
	cur := s.exec.CacheStats()
	d := cur.Sub(s.lastCache)
	if d == (window.CacheStats{}) {
		return
	}
	s.lastCache = cur
	s.eng.noteCache(s.id, d)
}

// run drains the shard's channel until the router closes it, then finalizes
// any in-flight quoted batch so its revenue is counted.
func (s *shard) run() {
	defer s.eng.shardWG.Done()
	for ev := range s.in {
		s.handle(ev)
	}
	s.finalizePending(time.Now()) //lint:detsource shutdown drain stamp feeds latency metrics only
	s.flushNotes()
}

func (s *shard) handle(ev Event) {
	switch ev.Kind {
	case KindTick:
		s.advanceTo(ev.Period, ev.at)
	case KindTaskArrival:
		s.tasks = append(s.tasks, ev.Task)
	case KindWorkerOnline:
		s.workerOnline(ev.Worker)
	case KindWorkerOffline:
		s.workerOffline(ev.WorkerID, ev.at)
	case KindWorkerMove:
		s.workerMove(ev)
	case KindAcceptDecision:
		s.decide(ev)
	case kindEvict:
		s.evictStale(ev.WorkerID, ev.at)
	case kindAdmit:
		s.admit(ev.Worker)
	case kindCheckpoint:
		sub := ev.ctl.(*ctlShardCheckpoint)
		st, err := s.checkpoint()
		*sub.out = st
		sub.done <- err
	case kindRestore:
		sub := ev.ctl.(*ctlShardRestore)
		sub.done <- s.restoreGuarded(sub.st)
	}
}

// restoreGuarded backstops restore with a panic guard: a corrupt checkpoint
// that slips past validation must surface as a Restore error, never kill
// the shard goroutine.
func (s *shard) restoreGuarded(st *shardCk) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("engine: corrupt checkpoint: shard %d restore panicked: %v", s.id, p)
		}
	}()
	return s.restore(st)
}

// poolAppend admits a worker at the tail of the pool with a fresh arrival
// sequence number.
func (s *shard) poolAppend(w market.Worker) {
	s.poolPos[w.ID] = len(s.pool)
	s.pool = append(s.pool, w)
	s.poolSeq = append(s.poolSeq, s.nextSeq)
	s.nextSeq++
}

// poolRemoveAt drops the pool entry at index i in O(1) by swapping the last
// entry into the hole. Arrival order is not preserved here; batch
// construction restores it from the sequence numbers.
func (s *shard) poolRemoveAt(i int) {
	id := s.pool[i].ID
	last := len(s.pool) - 1
	if i != last {
		s.pool[i] = s.pool[last]
		s.poolSeq[i] = s.poolSeq[last]
		s.poolPos[s.pool[i].ID] = i
	}
	s.pool = s.pool[:last]
	s.poolSeq = s.poolSeq[:last]
	delete(s.poolPos, id)
}

// workerOnline admits a worker into the pool. A duplicate online (the ID is
// already pooled) replaces the entry in place — never appends a second copy,
// which would double-count supply within the shard — and keeps the original
// arrival sequence, preserving the worker's batch-order slot. In
// deterministic mode the shard also does the router's duplicate accounting.
func (s *shard) workerOnline(w market.Worker) {
	if i, ok := s.poolPos[w.ID]; ok {
		s.pool[i] = w
		if s.eng.det != nil {
			s.eng.late.Add(1)
			s.eng.lcDuplicates.Add(1)
		}
		return
	}
	s.poolAppend(w)
	s.eng.pooled.Add(1)
	s.eng.lcOnlines.Add(1)
}

// admit inserts a migrated worker (the admit half of the cross-shard
// handshake). The ID cannot already be pooled here — the router resolved
// the previous owner synchronously — but replace defensively if it is.
func (s *shard) admit(w market.Worker) {
	if i, ok := s.poolPos[w.ID]; ok {
		s.pool[i] = w
		return
	}
	s.poolAppend(w)
	s.eng.pooled.Add(1)
}

// workerMove relocates a pooled worker. With ev.mig set this is the
// migrate-out half of the cross-shard handshake: hand the worker record to
// the router, unless a pending quoted batch still references the worker, in
// which case the move applies in place and the worker stays pinned to this
// shard. Without ev.mig it is an in-place move (deterministic mode, or the
// new cell stayed in this shard); the pending batch's stable worker copies
// are never touched — quoted prices and the matching were computed against
// the old position and remain committed.
func (s *shard) workerMove(ev Event) {
	if ev.mig != nil {
		i, ok := s.poolPos[ev.WorkerID]
		if !ok {
			ev.mig.reply <- migrateReply{}
			return
		}
		if s.heldByPending(ev.WorkerID) {
			s.pool[i].Loc = ev.Loc
			ev.mig.reply <- migrateReply{ok: true, pinned: true}
			return
		}
		w := s.pool[i]
		w.Loc = ev.Loc
		s.poolRemoveAt(i)
		s.eng.pooled.Add(-1)
		ev.mig.reply <- migrateReply{ok: true, worker: w}
		return
	}
	if i, ok := s.poolPos[ev.WorkerID]; ok {
		s.pool[i].Loc = ev.Loc
		s.eng.lcMoves.Add(1)
		return
	}
	// Unknown or already-settled worker (mirrors the router's accounting).
	s.eng.late.Add(1)
}

// heldByPending reports whether the pending quoted batch still references
// the worker (it appears on the batch's right side and has not been removed
// from the matcher).
func (s *shard) heldByPending(id int) bool {
	pb := s.pending
	if pb == nil {
		return false
	}
	for r := range pb.workers {
		if pb.workers[r].ID == id && !pb.inc.Removed(r) {
			return true
		}
	}
	return false
}

// evictStale removes a ghost pool copy after a duplicate online re-homed
// the worker to another shard. No late or lifecycle accounting — the router
// already counted the duplicate — but a provisional assignment held by the
// stale copy is repaired exactly like an offline.
func (s *shard) evictStale(id int, at time.Time) {
	s.repairPending(id, at)
	if i, ok := s.poolPos[id]; ok {
		s.poolRemoveAt(i)
		s.eng.pooled.Add(-1)
	}
}

// advanceTo moves the shard clock to period p, closing every window boundary
// crossed on the way. Idle stretches (no open tasks, no pending batch) are
// fast-forwarded in one step so a sparse tick sequence costs O(1), not one
// iteration per skipped window.
func (s *shard) advanceTo(p int, at time.Time) {
	if p > s.lastTick {
		s.lastTick = p
	}
	for p >= s.batchStart+s.window {
		if len(s.tasks) == 0 && s.pending == nil {
			k := (p - s.batchStart) / s.window
			s.batchStart += k * s.window
			s.evictExpired(s.batchStart - 1)
			break
		}
		s.closeBatch(s.batchStart+s.window-1, at)
		s.batchStart += s.window
	}
	s.flushNotes()
}

// flushNotes reports the pool transitions since the last tick to the
// router, which folds them into the worker table (batch-grain, one lock).
func (s *shard) flushNotes() {
	if len(s.notes) == 0 {
		return
	}
	s.eng.noteLifecycle(s.notes)
	s.notes = s.notes[:0]
}

// note queues one lifecycle note for the router, stamped with the tick
// period this shard is processing. Deterministic mode keeps no table and
// discards notes.
func (s *shard) note(id int, kind noteKind) {
	if s.eng.det != nil {
		return
	}
	s.notes = append(s.notes, lifecycleNote{id: id, shard: s.id, period: s.lastTick, kind: kind})
}

// countRetire bumps the engine's per-reason retirement counter (identical
// in both modes).
func (s *shard) countRetire(why RetireReason) {
	switch why {
	case RetireAssigned:
		s.eng.lcAssigned.Add(1)
	case RetireExpired:
		s.eng.lcExpired.Add(1)
	case RetireOffline:
		s.eng.lcOffline.Add(1)
	}
}

// workerExpired reports whether w's availability has lapsed by period t.
// Unlike !ActiveAt(t) it keeps workers whose start period lies in the
// future, which can occur in live streams that announce workers early.
func workerExpired(w market.Worker, t int) bool {
	d := w.Duration
	if d <= 0 {
		d = 1
	}
	return t >= w.Period+d
}

// evictExpired compacts lapsed workers out of the pool (relative order of
// the survivors is preserved; absolute order is irrelevant between batches)
// and refreshes the position index for every surviving entry.
func (s *shard) evictExpired(period int) {
	kept := 0
	for i := range s.pool {
		w := s.pool[i]
		if workerExpired(w, period) {
			s.countRetire(RetireExpired)
			s.note(w.ID, noteRetire)
			delete(s.poolPos, w.ID)
			continue
		}
		if kept != i {
			s.pool[kept] = w
			s.poolSeq[kept] = s.poolSeq[i]
			s.poolPos[w.ID] = kept
		}
		kept++
	}
	s.eng.pooled.Add(int64(kept - len(s.pool)))
	s.pool = s.pool[:kept]
	s.poolSeq = s.poolSeq[:kept]
}

// sortPoolByArrival restores the pool to arrival order (ascending sequence
// numbers) before a batch is built, repairing the permutation left by
// swap-deletes. Sequence numbers are unique, so the order — and therefore
// the batch's right-vertex order, matching tie breaks, and deterministic
// replay — does not depend on the removal history. Insertion sort: the pool
// is nearly sorted (only entries displaced by swap-deletes since the last
// batch are out of place), so the common cost is O(n + inversions) with no
// allocation.
func (s *shard) sortPoolByArrival() {
	seq, pool := s.poolSeq, s.pool
	sorted := true
	for i := 1; i < len(seq); i++ {
		if seq[i] < seq[i-1] {
			sorted = false
		}
		j := i
		for j > 0 && seq[j] < seq[j-1] {
			seq[j], seq[j-1] = seq[j-1], seq[j]
			pool[j], pool[j-1] = pool[j-1], pool[j]
			j--
		}
	}
	if sorted {
		return
	}
	for i := range pool {
		s.poolPos[pool[i].ID] = i
	}
}

// closeBatch prices the open window as of the given period: finalize the
// previous quoted batch, evict lapsed workers, then run the unified window
// pipeline (internal/window): graph + context construction, pricing, and
// either immediate resolution (AutoDecide) or a quote that waits for
// requester replies.
//
// Everything the batch builds — worker copies, graph, context, matcher,
// decision buffers — lives in s.exec and s.scratch and is reused window
// over window; a batch fully settles (the quoted case at this closeBatch's
// finalizePending, the AutoDecide case within resolve) before any arena is
// touched again.
//
// A strategy returning a malformed price vector drops the batch (its tasks
// go unpriced) and surfaces a typed *window.PriceCountError through
// Stats.LastStrategyError instead of panicking the shard goroutine.
func (s *shard) closeBatch(period int, at time.Time) {
	s.finalizePending(at)
	s.evictExpired(period)
	tasks := s.tasks
	// Recycle the arrival buffer: nothing below retains the raw task slice
	// (contexts copy task views, graphs hold indices), and no arrival can
	// interleave while the batch is being built.
	s.tasks = tasks[:0]
	if len(tasks) == 0 {
		return
	}
	s.sortPoolByArrival()

	// The batch's right side: every pooled worker currently active. poolIdx
	// maps batch indices back to pool positions; nil means identity.
	sc := &s.scratch
	batchWorkers := s.pool
	var poolIdx []int
	for i := range s.pool {
		if !s.pool[i].ActiveAt(period) {
			batchWorkers = nil
			break
		}
	}
	if batchWorkers == nil {
		sc.batchW = sc.batchW[:0]
		sc.poolIdx = sc.poolIdx[:0]
		for i, w := range s.pool {
			if w.ActiveAt(period) {
				sc.batchW = append(sc.batchW, w)
				sc.poolIdx = append(sc.poolIdx, i)
			}
		}
		batchWorkers, poolIdx = sc.batchW, sc.poolIdx
	}
	auto := s.eng.cfg.AutoDecide
	if !auto {
		// The pool mutates while requesters deliberate; give the pending
		// batch a stable copy and consume by worker ID at finalization. The
		// copy lives in the batchW arena (possibly self-copying the filtered
		// view, which append handles) and is held until finalization — by
		// which time the next batch has not yet touched the arena.
		if poolIdx == nil {
			sc.batchW = append(sc.batchW[:0], batchWorkers...)
			batchWorkers = sc.batchW
		}
		poolIdx = nil
	}

	pr, err := s.exec.Price(s.strat, period, tasks, batchWorkers)
	s.reportCache()
	if err != nil {
		s.eng.noteStrategyError(err)
		return
	}
	s.eng.notePriced(s.id, len(tasks))

	if auto {
		s.resolve(pr, tasks, batchWorkers, poolIdx, at)
	} else {
		s.quote(pr, batchWorkers, at)
	}
}

// resolve applies the requesters' valuations immediately through the
// executor — exact left-weighted maximum-weight assignment, so the
// deterministic engine reproduces the simulator's values by construction —
// and translates the outcome into decisions and pool consumption. The
// executor observes before consume compacts the pool backing array that
// ctx.Workers may alias.
func (s *shard) resolve(pr *window.Priced, tasks []market.Task,
	batchWorkers []market.Worker, poolIdx []int, at time.Time) {
	sc := &s.scratch
	out := s.exec.ResolveImmediate(s.strat, pr, tasks)
	ctx, prices := pr.Ctx, pr.Prices

	ds := resizeDecisions(&sc.ds, len(tasks))
	consumed := sc.cons[:0]
	for i := range tasks {
		d := Decision{TaskID: ctx.Tasks[i].ID, Period: ctx.Period, Cell: ctx.Tasks[i].Cell,
			Price: prices[i], WorkerID: -1}
		if out.Accepted[i] {
			d.Accepted = true
			if r := out.Matching.LeftTo[i]; r >= 0 {
				d.Served = true
				d.WorkerID = batchWorkers[r].ID
				d.Revenue = ctx.Tasks[i].Distance * prices[i]
				if poolIdx != nil {
					consumed = append(consumed, poolIdx[r])
				} else {
					consumed = append(consumed, r)
				}
			}
		}
		ds[i] = d
	}
	sc.cons = consumed
	s.consume(consumed)
	s.eng.noteBatch(s.id, out.AcceptedCount, out.Served, out.Revenue)
	s.eng.emitAll(ds, at)
}

// quote emits one price offer per task and parks the batch until requesters
// reply (or the next window closes it with the silent ones as rejections).
func (s *shard) quote(pr *window.Priced, batchWorkers []market.Worker, at time.Time) {
	sc := &s.scratch
	ctx, prices := pr.Ctx, pr.Prices
	n := len(ctx.Tasks)
	pb := &sc.pb
	pb.ctx = ctx
	pb.prices = prices
	pb.workers = batchWorkers
	pb.inc = s.exec.ArmQuoted(pr)
	pb.decided = resizeZeroed(&pb.decided, n)
	pb.accepted = resizeZeroed(&pb.accepted, n)
	if pb.taskIdx == nil {
		pb.taskIdx = make(map[int]int, n)
	} else {
		clear(pb.taskIdx)
	}
	ds := resizeDecisions(&sc.ds, n)
	for i, tv := range ctx.Tasks {
		pb.taskIdx[tv.ID] = i
		ds[i] = Decision{TaskID: tv.ID, Period: ctx.Period, Cell: tv.Cell,
			Price: prices[i], Quoted: true, WorkerID: -1}
	}
	s.pending = pb
	// The batch holds its workers until finalization: quoted-held pins them
	// to this shard (migrations apply in place) and the router's lifecycle
	// table reflects the hold.
	for i := range batchWorkers {
		s.note(batchWorkers[i].ID, noteHeld)
	}
	s.eng.quoted.Add(int64(n))
	s.eng.emitAll(ds, at)
}

// resizeZeroed returns *p resized to n zero-valued entries, reusing
// capacity.
func resizeZeroed[T any](p *[]T, n int) []T {
	s := *p
	if cap(s) >= n {
		s = s[:n]
		clear(s)
	} else {
		s = make([]T, n)
	}
	*p = s
	return s
}

// resizeDecisions returns *p resized to n entries, reusing capacity. The
// caller overwrites every entry.
func resizeDecisions(p *[]Decision, n int) []Decision {
	s := *p
	if cap(s) >= n {
		s = s[:n]
	} else {
		s = make([]Decision, n)
	}
	*p = s
	return s
}

// decide handles a requester's reply to a quote: accepts are assigned
// immediately by a single augmentation (first-come-first-matched, the
// online regime), rejects just release the task.
func (s *shard) decide(ev Event) {
	pb := s.pending
	if pb == nil {
		s.eng.late.Add(1)
		return
	}
	i, ok := pb.taskIdx[ev.TaskID]
	if !ok || pb.decided[i] {
		s.eng.late.Add(1)
		return
	}
	pb.decided[i] = true
	tv := pb.ctx.Tasks[i]
	d := Decision{TaskID: tv.ID, Period: pb.ctx.Period, Cell: tv.Cell,
		Price: pb.prices[i], WorkerID: -1}
	if ev.Accept {
		pb.accepted[i] = true
		d.Accepted = true
		if s.augmentQuoted(pb, i, ev.at) {
			r := pb.inc.Matching().LeftTo[i]
			d.Served = true
			d.WorkerID = pb.workers[r].ID
			d.Revenue = tv.Distance * pb.prices[i]
		}
	}
	s.eng.emit(d, ev.at)
}

// augmentQuoted adds task l to the pending matching. Kuhn's augmenting path
// may flip intermediate pairs, silently reassigning tasks whose provisional
// worker was already announced — for each such task a superseding decision
// is emitted so decision-stream consumers always hold the committed pairing.
func (s *shard) augmentQuoted(pb *pendingBatch, l int, at time.Time) bool {
	m := pb.inc.Matching()
	pb.snap = append(pb.snap[:0], m.LeftTo...)
	if !pb.inc.TryAugment(l) {
		return false
	}
	for i, prev := range pb.snap {
		r := m.LeftTo[i]
		if i == l || r == prev || r < 0 {
			continue
		}
		tv := pb.ctx.Tasks[i]
		s.eng.emit(Decision{TaskID: tv.ID, Period: pb.ctx.Period, Cell: tv.Cell,
			Price: pb.prices[i], Accepted: true, Served: true,
			WorkerID: pb.workers[r].ID, Revenue: tv.Distance * pb.prices[i]}, at)
	}
	return true
}

// finalizePending closes the books on the quoted batch: unanswered quotes
// lapse as rejections (each gets a terminal unaccepted Decision so stream
// consumers can settle their open-quote state), the executor settles the
// committed matching and feeds the strategy its accept/reject outcomes,
// matched workers are consumed, and unmatched ones are released from the
// quoted hold.
func (s *shard) finalizePending(at time.Time) {
	pb := s.pending
	if pb == nil {
		return
	}
	s.pending = nil
	sc := &s.scratch
	lapsed := sc.ds[:0]
	for i, acc := range pb.accepted {
		if !acc && !pb.decided[i] {
			tv := pb.ctx.Tasks[i]
			lapsed = append(lapsed, Decision{TaskID: tv.ID, Period: pb.ctx.Period,
				Cell: tv.Cell, Price: pb.prices[i], WorkerID: -1})
		}
	}
	sc.ds = lapsed[:0]
	out := s.exec.SettleQuoted(s.strat, pb.ctx, pb.prices, pb.inc, pb.accepted)
	// Consume matched workers; release the batch's hold on every unconsumed
	// one: back to plain online in the lifecycle table, migratable again.
	for r := range pb.workers {
		if out.MatchedRights[r] {
			s.removeWorkerID(pb.workers[r].ID, RetireAssigned)
		} else {
			s.note(pb.workers[r].ID, noteReleased)
		}
	}
	s.eng.noteBatch(s.id, out.AcceptedCount, out.Served, out.Revenue)
	s.eng.emitAll(lapsed, at)
}

// workerOffline withdraws a worker from the pool and repairs any
// provisional assignment it holds in the pending batch.
func (s *shard) workerOffline(id int, at time.Time) {
	found := s.repairPending(id, at)
	if s.removeWorkerID(id, RetireOffline) || found {
		return
	}
	// Unknown worker (mirrors the router's accounting, so Stats.Late
	// behaves identically in deterministic and sharded mode).
	s.eng.late.Add(1)
}

// repairPending withdraws the worker from the pending batch's matcher, if a
// batch references it: the orphaned task is re-augmented if any path
// remains, and a superseding decision is emitted either way. Reports
// whether the batch referenced the worker.
func (s *shard) repairPending(id int, at time.Time) bool {
	pb := s.pending
	if pb == nil {
		return false
	}
	for r := range pb.workers {
		if pb.workers[r].ID != id || pb.inc.Removed(r) {
			continue
		}
		if freed := pb.inc.RemoveRight(r); freed >= 0 {
			tv := pb.ctx.Tasks[freed]
			d := Decision{TaskID: tv.ID, Period: pb.ctx.Period, Cell: tv.Cell,
				Price: pb.prices[freed], Accepted: true, WorkerID: -1}
			if s.augmentQuoted(pb, freed, at) {
				r2 := pb.inc.Matching().LeftTo[freed]
				d.Served = true
				d.WorkerID = pb.workers[r2].ID
				d.Revenue = tv.Distance * pb.prices[freed]
			}
			s.eng.emit(d, at)
		}
		return true
	}
	return false
}

// removeWorkerID drops the pool entry with the given ID in O(1) and reports
// whether the worker was pooled. Assignment and expiry retirements are
// noted to the router; offline retirements are not (the router initiated
// those and already dropped the entry).
func (s *shard) removeWorkerID(id int, why RetireReason) bool {
	i, ok := s.poolPos[id]
	if !ok {
		return false
	}
	s.poolRemoveAt(i)
	s.eng.pooled.Add(-1)
	s.countRetire(why)
	if why != RetireOffline {
		s.note(id, noteRetire)
	}
	return true
}

// consume removes the given pool positions (the workers matched by a
// resolved batch) by compaction, refreshing the position index — the same
// pool discipline as the offline simulator.
func (s *shard) consume(positions []int) {
	if len(positions) == 0 {
		return
	}
	drop := resizeZeroed(&s.scratch.drop, len(s.pool))
	for _, p := range positions {
		drop[p] = true
	}
	kept := 0
	for i := range s.pool {
		w := s.pool[i]
		if drop[i] {
			s.countRetire(RetireAssigned)
			s.note(w.ID, noteRetire)
			delete(s.poolPos, w.ID)
			continue
		}
		if kept != i {
			s.pool[kept] = w
			s.poolSeq[kept] = s.poolSeq[i]
			s.poolPos[w.ID] = kept
		}
		kept++
	}
	s.eng.pooled.Add(int64(kept - len(s.pool)))
	s.pool = s.pool[:kept]
	s.poolSeq = s.poolSeq[:kept]
}
