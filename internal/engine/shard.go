package engine

import (
	"fmt"
	"time"

	"spatialcrowd/internal/core"
	"spatialcrowd/internal/market"
	"spatialcrowd/internal/match"
)

// shard owns the market state of a subset of grid cells: the worker pool,
// the open pricing window's tasks, at most one in-flight quoted batch, and a
// private strategy instance. In concurrent mode each shard is driven by its
// own goroutine reading from its channel, so none of this state needs locks;
// in deterministic mode a single shard is driven inline by Submit.
type shard struct {
	id     int
	eng    *Engine
	in     chan Event // nil in deterministic mode
	strat  core.Strategy
	window int

	batchStart int // first period of the open window

	tasks   []market.Task   // the open window's tasks, in arrival order
	pool    []market.Worker // online workers, in arrival order
	pending *pendingBatch   // quoted batch awaiting requester decisions
	retired []int           // worker IDs removed since the last flush to the router
}

// pendingBatch is a priced batch whose requesters have not all replied
// (AutoDecide disabled). It keeps a stable copy of the batch's worker slice
// so pool churn cannot shift the matcher's right-vertex indices.
type pendingBatch struct {
	ctx      *core.PeriodContext
	prices   []float64
	workers  []market.Worker // batch right side (stable copy)
	inc      *match.Incremental
	decided  []bool
	accepted []bool
	taskIdx  map[int]int // task ID -> batch index
	snap     []int       // reusable LeftTo snapshot for reassignment detection
}

func newShard(id int, eng *Engine, strat core.Strategy) *shard {
	return &shard{id: id, eng: eng, strat: strat, window: eng.cfg.Window}
}

// run drains the shard's channel until the router closes it, then finalizes
// any in-flight quoted batch so its revenue is counted.
func (s *shard) run() {
	defer s.eng.shardWG.Done()
	for ev := range s.in {
		s.handle(ev)
	}
	s.finalizePending(time.Now())
	s.flushRetired()
}

func (s *shard) handle(ev Event) {
	switch ev.Kind {
	case KindTick:
		s.advanceTo(ev.Period, ev.at)
	case KindTaskArrival:
		s.tasks = append(s.tasks, ev.Task)
	case KindWorkerOnline:
		s.pool = append(s.pool, ev.Worker)
	case KindWorkerOffline:
		s.workerOffline(ev.WorkerID, ev.at)
	case KindAcceptDecision:
		s.decide(ev)
	}
}

// advanceTo moves the shard clock to period p, closing every window boundary
// crossed on the way. Idle stretches (no open tasks, no pending batch) are
// fast-forwarded in one step so a sparse tick sequence costs O(1), not one
// iteration per skipped window.
func (s *shard) advanceTo(p int, at time.Time) {
	for p >= s.batchStart+s.window {
		if len(s.tasks) == 0 && s.pending == nil {
			k := (p - s.batchStart) / s.window
			s.batchStart += k * s.window
			s.evictExpired(s.batchStart - 1)
			break
		}
		s.closeBatch(s.batchStart+s.window-1, at)
		s.batchStart += s.window
	}
	s.flushRetired()
}

// flushRetired reports the workers removed since the last tick to the
// router, which drops their routing entries (batch-grain, one lock).
func (s *shard) flushRetired() {
	if len(s.retired) == 0 {
		return
	}
	s.eng.noteRetired(s.retired)
	s.retired = s.retired[:0]
}

// workerExpired reports whether w's availability has lapsed by period t.
// Unlike !ActiveAt(t) it keeps workers whose start period lies in the
// future, which can occur in live streams that announce workers early.
func workerExpired(w market.Worker, t int) bool {
	d := w.Duration
	if d <= 0 {
		d = 1
	}
	return t >= w.Period+d
}

func (s *shard) evictExpired(period int) {
	live := s.pool[:0]
	for _, w := range s.pool {
		if !workerExpired(w, period) {
			live = append(live, w)
		} else {
			s.retired = append(s.retired, w.ID)
		}
	}
	s.pool = live
}

// closeBatch prices the open window as of the given period: finalize the
// previous quoted batch, evict lapsed workers, build the batch bipartite
// graph from k-d tree candidates, price it with the shard's strategy, and
// either resolve it immediately (AutoDecide) or quote it and wait.
func (s *shard) closeBatch(period int, at time.Time) {
	s.finalizePending(at)
	s.evictExpired(period)
	tasks := s.tasks
	s.tasks = nil
	if len(tasks) == 0 {
		return
	}

	// The batch's right side: every pooled worker currently active. poolIdx
	// maps batch indices back to pool positions; nil means identity.
	batchWorkers := s.pool
	var poolIdx []int
	for i := range s.pool {
		if !s.pool[i].ActiveAt(period) {
			batchWorkers = nil
			break
		}
	}
	if batchWorkers == nil {
		batchWorkers = make([]market.Worker, 0, len(s.pool))
		for i, w := range s.pool {
			if w.ActiveAt(period) {
				batchWorkers = append(batchWorkers, w)
				poolIdx = append(poolIdx, i)
			}
		}
	}
	auto := s.eng.cfg.AutoDecide
	if !auto {
		// The pool mutates while requesters deliberate; give the pending
		// batch a stable copy and consume by worker ID at finalization.
		batchWorkers = append([]market.Worker(nil), batchWorkers...)
		poolIdx = nil
	}

	ix := market.NewWorkerIndex(batchWorkers)
	graph := ix.BuildGraph(tasks)
	ctx := core.BuildContext(s.eng.space, period, tasks, batchWorkers, graph)
	prices := s.strat.Prices(ctx)
	if len(prices) != len(tasks) {
		panic(fmt.Sprintf("engine: strategy %s returned %d prices for %d tasks",
			s.strat.Name(), len(prices), len(tasks)))
	}
	s.eng.notePriced(s.id, len(tasks))

	if auto {
		s.resolve(tasks, ctx, graph, prices, batchWorkers, poolIdx, at)
	} else {
		s.quote(ctx, graph, prices, batchWorkers, at)
	}
}

// resolve applies the requesters' valuations immediately and assigns the
// accepting tasks with match.MaxWeightByLeft — greedy-by-weight incremental
// augmentation, exact for left-weighted graphs — so the deterministic
// engine reproduces the simulator's assignment values by construction.
func (s *shard) resolve(tasks []market.Task, ctx *core.PeriodContext, graph *match.Graph,
	prices []float64, batchWorkers []market.Worker, poolIdx []int, at time.Time) {
	n := len(tasks)
	weight := func(i int) float64 { return ctx.Tasks[i].Distance * prices[i] }

	accepted := make([]bool, n)
	acceptedCount := 0
	weights := make([]float64, n) // rejected tasks weigh 0 and are never matched
	for i := range tasks {
		if tasks[i].Accepts(prices[i]) {
			accepted[i] = true
			acceptedCount++
			weights[i] = weight(i)
		}
	}
	m, _ := match.MaxWeightByLeft(graph, weights)

	ds := make([]Decision, n)
	var consumed []int
	served, revenue := 0, 0.0
	for i := range tasks {
		d := Decision{TaskID: ctx.Tasks[i].ID, Period: ctx.Period, Cell: ctx.Tasks[i].Cell,
			Price: prices[i], WorkerID: -1}
		if accepted[i] {
			d.Accepted = true
			if r := m.LeftTo[i]; r >= 0 {
				d.Served = true
				d.WorkerID = batchWorkers[r].ID
				d.Revenue = weight(i)
				served++
				revenue += d.Revenue
				if poolIdx != nil {
					consumed = append(consumed, poolIdx[r])
				} else {
					consumed = append(consumed, r)
				}
			}
		}
		ds[i] = d
	}
	// Observe before consume: consume compacts the pool backing array that
	// ctx.Workers may alias, and strategies are entitled to read ctx in
	// Observe.
	s.strat.Observe(ctx, prices, accepted)
	s.consume(consumed)
	s.eng.noteBatch(s.id, acceptedCount, served, revenue)
	s.eng.emitAll(ds, at)
}

// quote emits one price offer per task and parks the batch until requesters
// reply (or the next window closes it with the silent ones as rejections).
func (s *shard) quote(ctx *core.PeriodContext, graph *match.Graph, prices []float64,
	batchWorkers []market.Worker, at time.Time) {
	n := len(ctx.Tasks)
	pb := &pendingBatch{
		ctx:      ctx,
		prices:   prices,
		workers:  batchWorkers,
		inc:      match.NewIncremental(graph),
		decided:  make([]bool, n),
		accepted: make([]bool, n),
		taskIdx:  make(map[int]int, n),
	}
	ds := make([]Decision, n)
	for i, tv := range ctx.Tasks {
		pb.taskIdx[tv.ID] = i
		ds[i] = Decision{TaskID: tv.ID, Period: ctx.Period, Cell: tv.Cell,
			Price: prices[i], Quoted: true, WorkerID: -1}
	}
	s.pending = pb
	s.eng.quoted.Add(int64(n))
	s.eng.emitAll(ds, at)
}

// decide handles a requester's reply to a quote: accepts are assigned
// immediately by a single augmentation (first-come-first-matched, the
// online regime), rejects just release the task.
func (s *shard) decide(ev Event) {
	pb := s.pending
	if pb == nil {
		s.eng.late.Add(1)
		return
	}
	i, ok := pb.taskIdx[ev.TaskID]
	if !ok || pb.decided[i] {
		s.eng.late.Add(1)
		return
	}
	pb.decided[i] = true
	tv := pb.ctx.Tasks[i]
	d := Decision{TaskID: tv.ID, Period: pb.ctx.Period, Cell: tv.Cell,
		Price: pb.prices[i], WorkerID: -1}
	if ev.Accept {
		pb.accepted[i] = true
		d.Accepted = true
		if s.augmentQuoted(pb, i, ev.at) {
			r := pb.inc.Matching().LeftTo[i]
			d.Served = true
			d.WorkerID = pb.workers[r].ID
			d.Revenue = tv.Distance * pb.prices[i]
		}
	}
	s.eng.emit(d, ev.at)
}

// augmentQuoted adds task l to the pending matching. Kuhn's augmenting path
// may flip intermediate pairs, silently reassigning tasks whose provisional
// worker was already announced — for each such task a superseding decision
// is emitted so decision-stream consumers always hold the committed pairing.
func (s *shard) augmentQuoted(pb *pendingBatch, l int, at time.Time) bool {
	m := pb.inc.Matching()
	pb.snap = append(pb.snap[:0], m.LeftTo...)
	if !pb.inc.TryAugment(l) {
		return false
	}
	for i, prev := range pb.snap {
		r := m.LeftTo[i]
		if i == l || r == prev || r < 0 {
			continue
		}
		tv := pb.ctx.Tasks[i]
		s.eng.emit(Decision{TaskID: tv.ID, Period: pb.ctx.Period, Cell: tv.Cell,
			Price: pb.prices[i], Accepted: true, Served: true,
			WorkerID: pb.workers[r].ID, Revenue: tv.Distance * pb.prices[i]}, at)
	}
	return true
}

// finalizePending closes the books on the quoted batch: unanswered quotes
// lapse as rejections (each gets a terminal unaccepted Decision so stream
// consumers can settle their open-quote state), the matching state at this
// instant is what the platform commits, matched workers are consumed, and
// the strategy observes the accept/reject outcomes.
func (s *shard) finalizePending(at time.Time) {
	pb := s.pending
	if pb == nil {
		return
	}
	s.pending = nil
	m := pb.inc.Matching()
	var lapsed []Decision
	acceptedCount, served, revenue := 0, 0, 0.0
	for i, acc := range pb.accepted {
		if !acc {
			if !pb.decided[i] {
				tv := pb.ctx.Tasks[i]
				lapsed = append(lapsed, Decision{TaskID: tv.ID, Period: pb.ctx.Period,
					Cell: tv.Cell, Price: pb.prices[i], WorkerID: -1})
			}
			continue
		}
		acceptedCount++
		if r := m.LeftTo[i]; r >= 0 {
			served++
			revenue += pb.ctx.Tasks[i].Distance * pb.prices[i]
			s.removeWorkerID(pb.workers[r].ID)
		}
	}
	s.eng.noteBatch(s.id, acceptedCount, served, revenue)
	s.strat.Observe(pb.ctx, pb.prices, pb.accepted)
	s.eng.emitAll(lapsed, at)
}

// workerOffline withdraws a worker from the pool and, if it holds a
// provisional assignment in the pending batch, repairs the matching around
// it: the orphaned task is re-augmented if any path remains, and a
// superseding decision is emitted either way.
func (s *shard) workerOffline(id int, at time.Time) {
	found := false
	if pb := s.pending; pb != nil {
		for r := range pb.workers {
			if pb.workers[r].ID != id || pb.inc.Removed(r) {
				continue
			}
			found = true
			if freed := pb.inc.RemoveRight(r); freed >= 0 {
				tv := pb.ctx.Tasks[freed]
				d := Decision{TaskID: tv.ID, Period: pb.ctx.Period, Cell: tv.Cell,
					Price: pb.prices[freed], Accepted: true, WorkerID: -1}
				if s.augmentQuoted(pb, freed, at) {
					r2 := pb.inc.Matching().LeftTo[freed]
					d.Served = true
					d.WorkerID = pb.workers[r2].ID
					d.Revenue = tv.Distance * pb.prices[freed]
				}
				s.eng.emit(d, at)
			}
			break
		}
	}
	if !s.removeWorkerID(id) && !found {
		// Unknown worker (mirrors the router's accounting, so Stats.Late
		// behaves identically in deterministic and sharded mode).
		s.eng.late.Add(1)
	}
}

// removeWorkerID drops the first pool entry with the given ID, preserving
// arrival order, and reports whether the worker was pooled.
func (s *shard) removeWorkerID(id int) bool {
	for i := range s.pool {
		if s.pool[i].ID == id {
			s.pool = append(s.pool[:i], s.pool[i+1:]...)
			s.retired = append(s.retired, id)
			return true
		}
	}
	return false
}

// consume removes the given pool positions (the workers matched by a
// resolved batch), preserving arrival order — the same pool discipline as
// the offline simulator.
func (s *shard) consume(positions []int) {
	if len(positions) == 0 {
		return
	}
	drop := make(map[int]bool, len(positions))
	for _, p := range positions {
		drop[p] = true
	}
	live := s.pool[:0]
	for i := range s.pool {
		if !drop[i] {
			live = append(live, s.pool[i])
		} else {
			s.retired = append(s.retired, s.pool[i].ID)
		}
	}
	s.pool = live
}
