package engine

import (
	"fmt"

	"spatialcrowd/internal/market"
)

// Replay feeds a complete market instance into the engine as the canonical
// event stream: for every period a Tick, then the period's worker arrivals,
// then its task arrivals, and a final Tick past the last window boundary so
// the last batch flushes. It returns the number of events submitted.
//
// On a deterministic AutoDecide engine this is the streaming equivalent of
// sim.Run on the same instance.
func Replay(e *Engine, in *market.Instance) (int, error) {
	return ReplayMobility(e, in, nil)
}

// ReplayMobility is Replay with a mobility trace interleaved: each move of
// period t becomes a KindWorkerMove event submitted right after the Tick
// that closes period t's batch — the same ordering as the offline
// simulator, which repositions workers after a period's assignment. A
// deterministic AutoDecide engine in cell-index-graph mode replaying
// sim.Run's own recorded moves (sim.Config.OnMove) reproduces the
// simulator's revenue exactly.
func ReplayMobility(e *Engine, in *market.Instance, moves []market.Move) (int, error) {
	return ReplayWith(e, in, ReplayOpts{Moves: moves})
}

// ReplayOpts parameterizes ReplayWith.
type ReplayOpts struct {
	// Moves is an optional mobility trace interleaved as in ReplayMobility.
	Moves []market.Move
	// From starts the replay at this period instead of 0, skipping every
	// earlier event: the resume half of an interrupted replay. After
	// Engine.Restore, From = RestoredPeriod() + 1 continues the stream
	// exactly where the checkpoint left off.
	From int
	// AfterPeriod, when set, runs after each period's events have been
	// submitted — the hook cmd/serve uses to write periodic checkpoints. A
	// returned error aborts the replay.
	AfterPeriod func(period int) error
}

// ReplayWith is the general replay driver: Replay and ReplayMobility are
// thin wrappers over it.
func ReplayWith(e *Engine, in *market.Instance, opts ReplayOpts) (int, error) {
	if err := in.Validate(); err != nil {
		return 0, err
	}
	tasksByPeriod := in.TasksByPeriod()
	arrivals := in.WorkersByStart()
	movesByPeriod := make(map[int][]market.Move, len(opts.Moves))
	for _, m := range opts.Moves {
		movesByPeriod[m.Period] = append(movesByPeriod[m.Period], m)
	}
	n := 0
	submit := func(ev Event) error {
		if err := e.Submit(ev); err != nil {
			return fmt.Errorf("engine: replay event %d: %w", n+1, err)
		}
		n++
		return nil
	}
	from := opts.From
	if from < 0 {
		from = 0
	}
	for t := from; t < in.Periods; t++ {
		if err := submit(Tick(t)); err != nil {
			return n, err
		}
		for _, m := range movesByPeriod[t-1] {
			if err := submit(WorkerMove(m.WorkerID, m.To)); err != nil {
				return n, err
			}
		}
		for _, w := range arrivals[t] {
			if err := submit(WorkerOnline(w)); err != nil {
				return n, err
			}
		}
		for _, task := range tasksByPeriod[t] {
			if err := submit(TaskArrival(task)); err != nil {
				return n, err
			}
		}
		if opts.AfterPeriod != nil {
			if err := opts.AfterPeriod(t); err != nil {
				return n, err
			}
		}
	}
	w := e.Window()
	final := ((in.Periods + w - 1) / w) * w
	if err := submit(Tick(final)); err != nil {
		return n, err
	}
	// The last periods' moves land after the final batch closed; submit
	// them anyway so lifecycle accounting sees the full trace.
	for t := in.Periods - 1; t < final; t++ {
		for _, m := range movesByPeriod[t] {
			if err := submit(WorkerMove(m.WorkerID, m.To)); err != nil {
				return n, err
			}
		}
	}
	return n, nil
}
