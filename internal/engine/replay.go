package engine

import (
	"fmt"

	"spatialcrowd/internal/market"
)

// Replay feeds a complete market instance into the engine as the canonical
// event stream: for every period a Tick, then the period's worker arrivals,
// then its task arrivals, and a final Tick past the last window boundary so
// the last batch flushes. It returns the number of events submitted.
//
// On a deterministic AutoDecide engine this is the streaming equivalent of
// sim.Run on the same instance.
func Replay(e *Engine, in *market.Instance) (int, error) {
	return ReplayMobility(e, in, nil)
}

// ReplayMobility is Replay with a mobility trace interleaved: each move of
// period t becomes a KindWorkerMove event submitted right after the Tick
// that closes period t's batch — the same ordering as the offline
// simulator, which repositions workers after a period's assignment. A
// deterministic AutoDecide engine in cell-index-graph mode replaying
// sim.Run's own recorded moves (sim.Config.OnMove) reproduces the
// simulator's revenue exactly.
func ReplayMobility(e *Engine, in *market.Instance, moves []market.Move) (int, error) {
	return ReplayWith(e, in, ReplayOpts{Moves: moves})
}

// ReplayOpts parameterizes ReplayWith and StreamEvents.
type ReplayOpts struct {
	// Moves is an optional mobility trace interleaved as in ReplayMobility.
	Moves []market.Move
	// From starts the replay at this period instead of 0, skipping every
	// earlier event: the resume half of an interrupted replay. After
	// Engine.Restore, From = RestoredPeriod() + 1 continues the stream
	// exactly where the checkpoint left off.
	From int
	// Until, when positive and below the instance horizon, stops the stream
	// after period Until-1's events WITHOUT the final window-flushing Tick:
	// the open window stays pending, exactly the state an interrupted live
	// ingest leaves behind. A checkpoint taken then restores with
	// RestoredPeriod() == Until-1, and resuming with From = Until replays
	// the remainder — the seam the network server's drain test exercises.
	// Zero (or >= Periods) streams the whole instance with the final Tick.
	Until int
	// AfterPeriod, when set, runs after each period's events have been
	// submitted — the hook cmd/serve uses to write periodic checkpoints. A
	// returned error aborts the replay.
	AfterPeriod func(period int) error
	// SkipEvents suppresses the first N emitted events without changing the
	// stream's shape: the event-exact resume half of WAL recovery. Where
	// From resumes at a period boundary (a checkpoint's granularity),
	// SkipEvents = Stats().Events resumes mid-period, exactly past what the
	// log replayed — the stream is deterministic, so skipping what the
	// engine already holds continues the trace without loss or duplication.
	// AfterPeriod hooks still fire for fully-skipped periods.
	SkipEvents int
}

// ReplayWith is the general replay driver: Replay and ReplayMobility are
// thin wrappers over it. It submits the canonical stream of StreamEvents
// through e.Submit.
func ReplayWith(e *Engine, in *market.Instance, opts ReplayOpts) (int, error) {
	n := 0
	err := StreamEvents(in, e.Window(), opts, func(ev Event) error {
		if err := e.Submit(ev); err != nil {
			return fmt.Errorf("engine: replay event %d: %w", n+1, err)
		}
		n++
		return nil
	})
	return n, err
}

// StreamEvents generates the canonical event stream of a market instance —
// the exact order ReplayWith submits — and hands each event to emit. This
// is the single definition of "the trace of an instance": the in-process
// replay driver and the network load generator (internal/server/loadgen)
// both consume it, which is what makes HTTP-ingested revenue comparable
// bit-for-bit against an in-process replay of the same instance.
//
// window is the engine's pricing window in periods (Engine.Window); it
// positions the final flushing Tick past the last window boundary.
func StreamEvents(in *market.Instance, window int, opts ReplayOpts, emit func(Event) error) error {
	if err := in.Validate(); err != nil {
		return err
	}
	if window <= 0 {
		window = 1
	}
	if opts.SkipEvents > 0 {
		inner := emit
		skip := opts.SkipEvents
		emit = func(ev Event) error {
			if skip > 0 {
				skip--
				return nil
			}
			return inner(ev)
		}
	}
	tasksByPeriod := in.TasksByPeriod()
	arrivals := in.WorkersByStart()
	movesByPeriod := make(map[int][]market.Move, len(opts.Moves))
	for _, m := range opts.Moves {
		movesByPeriod[m.Period] = append(movesByPeriod[m.Period], m)
	}
	from := opts.From
	if from < 0 {
		from = 0
	}
	until := in.Periods
	partial := false
	if opts.Until > 0 && opts.Until < in.Periods {
		until = opts.Until
		partial = true
	}
	for t := from; t < until; t++ {
		if err := emit(Tick(t)); err != nil {
			return err
		}
		for _, m := range movesByPeriod[t-1] {
			if err := emit(WorkerMove(m.WorkerID, m.To)); err != nil {
				return err
			}
		}
		for _, w := range arrivals[t] {
			if err := emit(WorkerOnline(w)); err != nil {
				return err
			}
		}
		for _, task := range tasksByPeriod[t] {
			if err := emit(TaskArrival(task)); err != nil {
				return err
			}
		}
		if opts.AfterPeriod != nil {
			if err := opts.AfterPeriod(t); err != nil {
				return err
			}
		}
	}
	if partial {
		// A truncated stream leaves the open window pending on purpose; the
		// resumed stream's first Tick closes it.
		return nil
	}
	final := ((in.Periods + window - 1) / window) * window
	if err := emit(Tick(final)); err != nil {
		return err
	}
	// The last periods' moves land after the final batch closed; submit
	// them anyway so lifecycle accounting sees the full trace.
	for t := in.Periods - 1; t < final; t++ {
		for _, m := range movesByPeriod[t] {
			if err := emit(WorkerMove(m.WorkerID, m.To)); err != nil {
				return err
			}
		}
	}
	return nil
}
