package engine

import (
	"fmt"

	"spatialcrowd/internal/market"
)

// Replay feeds a complete market instance into the engine as the canonical
// event stream: for every period a Tick, then the period's worker arrivals,
// then its task arrivals, and a final Tick past the last window boundary so
// the last batch flushes. It returns the number of events submitted.
//
// On a deterministic AutoDecide engine this is the streaming equivalent of
// sim.Run on the same instance.
func Replay(e *Engine, in *market.Instance) (int, error) {
	if err := in.Validate(); err != nil {
		return 0, err
	}
	tasksByPeriod := in.TasksByPeriod()
	arrivals := in.WorkersByStart()
	n := 0
	submit := func(ev Event) error {
		if err := e.Submit(ev); err != nil {
			return fmt.Errorf("engine: replay event %d: %w", n+1, err)
		}
		n++
		return nil
	}
	for t := 0; t < in.Periods; t++ {
		if err := submit(Tick(t)); err != nil {
			return n, err
		}
		for _, w := range arrivals[t] {
			if err := submit(WorkerOnline(w)); err != nil {
				return n, err
			}
		}
		for _, task := range tasksByPeriod[t] {
			if err := submit(TaskArrival(task)); err != nil {
				return n, err
			}
		}
	}
	w := e.Window()
	final := ((in.Periods + w - 1) / w) * w
	if err := submit(Tick(final)); err != nil {
		return n, err
	}
	return n, nil
}
