package engine

// Randomized crash-recovery soak: where walcrash_test.go enumerates a fixed
// grid of fault scenarios, this harness lets a seeded generator crash ONE
// long-lived log many times in a row — random kill points, torn-write byte
// budgets, and fsync faults, interleaved with randomly-cadenced checkpoints
// that truncate the log mid-history — and demands that the final stitched
// run is byte-identical to the uninterrupted reference. Every incarnation
// recovers from whatever the previous crash left behind, so recovery bugs
// that only show up on *already-recovered* state (double replay, checkpoint
// of a restored engine, truncation after a lossy kill) have nowhere to hide.
//
// Environment knobs (CI pins them for reproduction):
//
//	SOAK_SEED          generator seed (default 1; shared with soak_test.go)
//	SOAK_CRASHES       crash count per run (default 12; -short 5)
//	SOAK_ARTIFACT_DIR  failing runs write soak-failure-seed.txt there

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"spatialcrowd/internal/wal"
)

func soakCrashes(t *testing.T) int {
	if s := os.Getenv("SOAK_CRASHES"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	if testing.Short() {
		return 5
	}
	return 12
}

func TestSoakCrashRecovery(t *testing.T) {
	seed, crashes := soakSeed(), soakCrashes(t)
	for _, shards := range []int{0, 4} {
		shards := shards
		t.Run("shards="+strconv.Itoa(shards), func(t *testing.T) {
			reportFailureSeed(t, seed, crashes)
			runCrashSoak(t, seed, crashes, shards)
		})
	}
}

func runCrashSoak(t *testing.T, seed int64, crashes, shards int) {
	t.Helper()
	in := churnBackends(t)["grid"]
	cfg := func() Config {
		c := ckConfig(t, in, shards, 2)
		c.AutoDecide = false // quoted mode: crashes land mid-flight in open batches
		return c
	}
	events := quotedStreamOf(in)

	ref, err := New(cfg())
	if err != nil {
		t.Fatal(err)
	}
	for i, ev := range events {
		if err := ref.Submit(ev); err != nil {
			t.Fatalf("reference event %d: %v", i, err)
		}
	}
	if err := ref.Close(); err != nil {
		t.Fatal(err)
	}
	want := ref.Stats()
	if want.Revenue <= 0 {
		t.Fatalf("reference run accrued no revenue: %+v", want)
	}

	rng := rand.New(rand.NewSource(seed))
	mem := wal.NewMemStore() // the "disk": survives every crash below
	var ck []byte            // latest atomic snapshot, held outside the store
	crashCount := 0
	for k := 0; ; k++ {
		// Scripted fault for this incarnation. The final one runs clean so
		// the stream always finishes.
		fpc := wal.Failpoints{LoseUnsynced: true}
		pickKill := false
		if final := k >= crashes; !final {
			switch r := rng.Float64(); {
			case r < 0.6:
				pickKill = true // kill point chosen after recovery, below
			case r < 0.85:
				fpc.CrashAfterBytes = int64(512 + rng.Intn(100_000))
			default:
				fpc.FailSyncAt = 1 + rng.Intn(40)
			}
		}
		fp := wal.NewFailpointStore(mem, fpc)
		log, err := wal.Open(fp, walCrashOptions())
		if err != nil {
			t.Fatalf("incarnation %d: open: %v", k, err)
		}
		c := cfg()
		c.WAL = log
		eng, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		var snap io.Reader
		if ck != nil {
			snap = bytes.NewReader(ck)
		}
		if _, err := eng.RecoverWAL(snap); err != nil {
			t.Fatalf("incarnation %d: RecoverWAL: %v", k, err)
		}
		pos := int(eng.Stats().Events)
		if pos > len(events) {
			t.Fatalf("incarnation %d: recovered %d events, stream only has %d", k, pos, len(events))
		}
		killAt := -1
		if pickKill {
			killAt = pos + 1 + rng.Intn(len(events)-pos+1)
		}
		ckEvery := 0
		if rng.Float64() < 0.7 {
			ckEvery = 40 + rng.Intn(200)
		}

		crashed := false
		for i := pos; i < len(events); i++ {
			if i == killAt {
				fp.Kill()
				crashed = true
				break
			}
			if err := eng.Submit(events[i]); err != nil {
				if !errors.Is(err, wal.ErrInjected) {
					t.Fatalf("incarnation %d event %d: non-injected error: %v", k, i, err)
				}
				crashed = true
				break
			}
			if ckEvery > 0 && (i+1-pos)%ckEvery == 0 {
				ckLSN := eng.WALLastLSN()
				var buf bytes.Buffer
				if err := eng.Checkpoint(&buf); err != nil {
					if !errors.Is(err, wal.ErrInjected) {
						t.Fatalf("incarnation %d event %d: checkpoint: %v", k, i, err)
					}
					crashed = true
					break
				}
				ck = buf.Bytes()
				if _, err := log.TruncateBefore(ckLSN + 1); err != nil && !errors.Is(err, wal.ErrInjected) {
					t.Fatalf("incarnation %d event %d: truncate: %v", k, i, err)
				}
			}
		}
		if k >= crashes && !crashed {
			// Clean final incarnation: close, then demand exactness.
			if err := eng.Close(); err != nil {
				t.Fatal(err)
			}
			got := eng.Stats()
			t.Logf("soak shards=%d seed=%d: %d crashes over %d incarnations, %d events, revenue %.1f",
				shards, seed, crashCount, k+1, len(events), got.Revenue)
			if got.Revenue != want.Revenue {
				t.Fatalf("stitched revenue %v != uninterrupted %v (exact equality required)",
					got.Revenue, want.Revenue)
			}
			if ledgerOf(got) != ledgerOf(want) {
				t.Fatalf("lifecycle ledger mismatch:\nstitched      %+v\nuninterrupted %+v",
					got.Lifecycle, want.Lifecycle)
			}
			if got.Events != want.Events || got.TasksPriced != want.TasksPriced ||
				got.Accepted != want.Accepted || got.Served != want.Served || got.Batches != want.Batches {
				t.Fatalf("funnel mismatch: stitched %d/%d/%d/%d/%d, uninterrupted %d/%d/%d/%d/%d",
					got.Events, got.TasksPriced, got.Accepted, got.Served, got.Batches,
					want.Events, want.TasksPriced, want.Accepted, want.Served, want.Batches)
			}
			log.Close()
			return
		}
		if crashed {
			crashCount++
		}
		fp.Kill() // idempotent; also downs incarnations whose fault never fired
		_ = eng.Close()
	}
}
