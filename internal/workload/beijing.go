package workload

import (
	"fmt"
	"math"
	"math/rand"

	"spatialcrowd/internal/geo"
	"spatialcrowd/internal/market"
	"spatialcrowd/internal/spatial"
	"spatialcrowd/internal/stats"
)

// The paper's real datasets (Table 4) are taxi-calling logs from a large
// Chinese ride-hailing platform, covering the rectangle (116.30, 39.84) to
// (116.50, 40.0) in Beijing with 10x8 grids of 0.02 degrees, 120 one-minute
// periods, and a 3 km worker radius. The logs are proprietary, so BeijingLike
// synthesizes a workload reproducing the published marginals: the same
// region geometry (converted to kilometres), the same population counts, a
// rush-hour or late-night temporal profile, hotspot-mixture spatial
// distributions, and urban-taxi trip lengths. See DESIGN.md §2.

// Geometry of the Table 4 rectangle, converted to kilometres at Beijing's
// latitude (1 deg lat ~ 111.0 km, 1 deg lon ~ 85.2 km at 39.9 N).
const (
	BeijingWidthKM  = 0.20 * 85.2 // ~17.0 km
	BeijingHeightKM = 0.16 * 111  // ~17.8 km
	BeijingCols     = 10
	BeijingRows     = 8
	BeijingRadiusKM = 3.0
	BeijingPeriods  = 120
)

// BeijingVariant selects which of the two published time windows to emulate.
type BeijingVariant int

const (
	// BeijingRush is dataset #1: 5pm-7pm, heavy demand
	// (|W| = 28210, |R| = 113372).
	BeijingRush BeijingVariant = iota
	// BeijingNight is dataset #2: 0am-2am, light demand
	// (|W| = 19006, |R| = 55659).
	BeijingNight
)

// BeijingConfig parameterizes the Beijing-like generator.
type BeijingConfig struct {
	Variant BeijingVariant
	// WorkerDuration is delta_w: how many periods each worker stays
	// available (the x-axis of Fig. 8c/d; 5..25).
	WorkerDuration int
	// Scale shrinks both populations by the given divisor (0 or 1 = full
	// Table 4 size). The benchmark harness uses Scale to keep per-iteration
	// cost sane while preserving the demand:supply ratio.
	Scale int
	Seed  int64
}

// populations returns the Table 4 counts for the variant.
func (c BeijingConfig) populations() (workers, requests int) {
	switch c.Variant {
	case BeijingNight:
		return 19006, 55659
	default:
		return 28210, 113372
	}
}

// BeijingLike generates a Beijing-like market instance. It returns the
// instance and the valuation model used for calibration oracles.
func BeijingLike(cfg BeijingConfig) (*market.Instance, market.ValuationModel, error) {
	if cfg.WorkerDuration <= 0 {
		return nil, nil, fmt.Errorf("workload: need positive WorkerDuration, got %d", cfg.WorkerDuration)
	}
	scale := cfg.Scale
	if scale <= 0 {
		scale = 1
	}
	nw, nr := cfg.populations()
	nw, nr = nw/scale, nr/scale
	if nw == 0 || nr == 0 {
		return nil, nil, fmt.Errorf("workload: scale %d leaves an empty market", cfg.Scale)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	region := geo.NewRect(geo.Point{X: 0, Y: 0}, geo.Point{X: BeijingWidthKM, Y: BeijingHeightKM})
	grid := geo.NewGrid(region, BeijingCols, BeijingRows)

	hot := hotspots(cfg.Variant)
	model, err := beijingDemandModel(cfg.Variant, grid, hot, rng)
	if err != nil {
		return nil, nil, err
	}
	timeOf := beijingTemporal(cfg.Variant)

	in := &market.Instance{
		Grid:    grid,
		Periods: BeijingPeriods,
		Tasks:   make([]market.Task, 0, nr),
		Workers: make([]market.Worker, 0, nw),
	}
	// Trip lengths: log-normal with median ~4 km, clipped to the region
	// scale — the shape of urban taxi trip statistics.
	tripLen := func() float64 {
		d := math.Exp(math.Log(4.0) + 0.55*rng.NormFloat64())
		return math.Min(d, 15)
	}
	for i := 0; i < nr; i++ {
		origin := hot.sample(rng, region)
		ang := rng.Float64() * 2 * math.Pi
		d := tripLen()
		dest := region.Clamp(geo.Point{
			X: origin.X + d*math.Cos(ang),
			Y: origin.Y + d*math.Sin(ang),
		})
		cell := grid.CellOf(origin)
		in.Tasks = append(in.Tasks, market.Task{
			ID:        i,
			Period:    timeOf(rng),
			Origin:    origin,
			Dest:      dest,
			Distance:  origin.Dist(dest),
			Valuation: model.Dist(cell).Sample(rng),
		})
	}
	for i := 0; i < nw; i++ {
		in.Workers = append(in.Workers, market.Worker{
			ID:       i,
			Period:   timeOf(rng),
			Loc:      hot.sample(rng, region),
			Radius:   BeijingRadiusKM,
			Duration: cfg.WorkerDuration,
		})
	}
	return in, model, nil
}

// hotspotMix is a mixture of 2-D Gaussian hotspots.
type hotspotMix struct {
	centers []geo.Point
	sigmas  []float64
	weights []float64 // cumulative
}

func (h hotspotMix) sample(rng *rand.Rand, region geo.Rect) geo.Point {
	u := rng.Float64()
	k := len(h.centers) - 1
	for i, w := range h.weights {
		if u <= w {
			k = i
			break
		}
	}
	return region.Clamp(geo.Point{
		X: h.centers[k].X + h.sigmas[k]*rng.NormFloat64(),
		Y: h.centers[k].Y + h.sigmas[k]*rng.NormFloat64(),
	})
}

// hotspots returns the spatial mixture per variant: the rush window is
// CBD-heavy (office districts, transport hubs); the night window clusters
// around nightlife areas with a wide diffuse component.
func hotspots(v BeijingVariant) hotspotMix {
	w, h := BeijingWidthKM, BeijingHeightKM
	if v == BeijingNight {
		return hotspotMix{
			centers: []geo.Point{{X: 0.55 * w, Y: 0.5 * h}, {X: 0.3 * w, Y: 0.65 * h}, {X: 0.5 * w, Y: 0.5 * h}},
			sigmas:  []float64{1.2, 1.5, 6},
			weights: []float64{0.45, 0.75, 1},
		}
	}
	return hotspotMix{
		centers: []geo.Point{{X: 0.6 * w, Y: 0.55 * h}, {X: 0.35 * w, Y: 0.4 * h}, {X: 0.75 * w, Y: 0.7 * h}, {X: 0.5 * w, Y: 0.5 * h}},
		sigmas:  []float64{1.5, 1.8, 1.2, 5},
		weights: []float64{0.35, 0.6, 0.8, 1},
	}
}

// beijingTemporal returns the start-period sampler: rush hour swells toward
// the middle of the two-hour window; the night window decays from midnight.
func beijingTemporal(v BeijingVariant) func(*rand.Rand) int {
	if v == BeijingNight {
		return func(rng *rand.Rand) int {
			// Exponential decay over the window.
			t := int(rng.ExpFloat64() * BeijingPeriods / 2.5)
			if t >= BeijingPeriods {
				t = BeijingPeriods - 1
			}
			return t
		}
	}
	return func(rng *rand.Rand) int {
		for {
			t := int(0.5*BeijingPeriods + 0.25*BeijingPeriods*rng.NormFloat64())
			if t >= 0 && t < BeijingPeriods {
				return t
			}
		}
	}
}

// beijingDemandModel assigns per-cell valuation distributions: hotspot cells
// (with more competition for rides) carry slightly higher willingness to
// pay, matching the paper's observation that imbalanced areas sustain
// higher prices. It works over any spatial backend: cells are whatever the
// space partitions the region into (uniform grid or road clusters).
func beijingDemandModel(v BeijingVariant, space spatial.Space, hot hotspotMix, rng *rand.Rand) (market.ValuationModel, error) {
	base := 2.0
	if v == BeijingNight {
		base = 2.3 // late-night riders pay more
	}
	cells := make(map[int]stats.Dist, space.NumCells())
	for g := 0; g < space.NumCells(); g++ {
		center := space.CellCenter(g)
		// Proximity to the nearest hotspot raises the local mean.
		nearest := math.Inf(1)
		for _, c := range hot.centers {
			if d := center.Dist(c); d < nearest {
				nearest = d
			}
		}
		mu := base + 0.6*math.Exp(-nearest/3.0) + 0.15*rng.NormFloat64()
		d, err := stats.NewTruncNormal(mu, 1.0, 1, 5)
		if err != nil {
			return nil, err
		}
		cells[g] = d
	}
	def, err := stats.NewTruncNormal(base, 1.0, 1, 5)
	if err != nil {
		return nil, err
	}
	return market.PerCellModel{Cells: cells, Default: def}, nil
}
