package workload

import (
	"math"
	"testing"

	"spatialcrowd/internal/market"
	"spatialcrowd/internal/spatial"
)

func TestSyntheticDefaults(t *testing.T) {
	in, model, err := Synthetic(SyntheticConfig{Workers: 500, Requests: 2000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(in.Tasks) != 2000 || len(in.Workers) != 500 {
		t.Fatalf("populations %d/%d", len(in.Tasks), len(in.Workers))
	}
	if in.Periods != 400 || in.Grid.NumCells() != 100 {
		t.Errorf("defaults wrong: T=%d G=%d", in.Periods, in.Grid.NumCells())
	}
	if model == nil {
		t.Fatal("nil model")
	}
	for _, task := range in.Tasks {
		if task.Valuation < 1 || task.Valuation > 5 {
			t.Fatalf("valuation %v out of [1,5]", task.Valuation)
		}
		if task.Distance < 0 || math.IsNaN(task.Distance) {
			t.Fatalf("bad distance %v", task.Distance)
		}
		if !in.Grid.Region.Contains(task.Origin) || !in.Grid.Region.Contains(task.Dest) {
			t.Fatalf("task outside region: %v -> %v", task.Origin, task.Dest)
		}
	}
	for _, w := range in.Workers {
		if w.Radius != 10 {
			t.Fatalf("default radius %v, want 10", w.Radius)
		}
		if !in.Grid.Region.Contains(w.Loc) {
			t.Fatalf("worker outside region: %v", w.Loc)
		}
	}
}

func TestSyntheticDeterminism(t *testing.T) {
	cfg := SyntheticConfig{Workers: 100, Requests: 300, Periods: 50, GridSide: 5, Seed: 99}
	a, _, _ := Synthetic(cfg)
	b, _, _ := Synthetic(cfg)
	for i := range a.Tasks {
		if a.Tasks[i] != b.Tasks[i] {
			t.Fatalf("task %d differs between equal-seed runs", i)
		}
	}
	cfg.Seed = 100
	c, _, _ := Synthetic(cfg)
	same := 0
	for i := range a.Tasks {
		if a.Tasks[i] == c.Tasks[i] {
			same++
		}
	}
	if same == len(a.Tasks) {
		t.Error("different seeds produced identical workloads")
	}
}

func TestSyntheticTemporalMean(t *testing.T) {
	// Truncation to [0, T) pulls extreme means inward, so assert the
	// monotone ordering plus tightness at the center.
	means := make([]float64, 0, 3)
	for _, mu := range []float64{0.1, 0.5, 0.9} {
		cfg := SyntheticConfig{Workers: 10, Requests: 5000, Periods: 400, TemporalMu: mu, Seed: 3}
		in, _, err := Synthetic(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, task := range in.Tasks {
			sum += float64(task.Period)
		}
		means = append(means, sum/float64(len(in.Tasks))/400)
	}
	if !(means[0] < means[1] && means[1] < means[2]) {
		t.Fatalf("temporal means not ordered: %v", means)
	}
	if math.Abs(means[1]-0.5) > 0.03 {
		t.Errorf("central temporal mean %v, want ~0.5", means[1])
	}
	if means[0] > 0.3 || means[2] < 0.7 {
		t.Errorf("extreme temporal means insufficiently separated: %v", means)
	}
}

func TestSyntheticSpatialMean(t *testing.T) {
	for _, m := range []float64{0.1, 0.9} {
		cfg := SyntheticConfig{Workers: 10, Requests: 5000, SpatialMean: m, Seed: 4}
		in, _, err := Synthetic(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var sx, sy float64
		for _, task := range in.Tasks {
			sx += task.Origin.X
			sy += task.Origin.Y
		}
		n := float64(len(in.Tasks))
		if math.Abs(sx/n-m*100) > 6 || math.Abs(sy/n-m*100) > 6 {
			t.Errorf("spatial mean %v: empirical (%v,%v)", m, sx/n, sy/n)
		}
	}
}

func TestSyntheticDemandFamilies(t *testing.T) {
	// Higher demand mean => higher average valuation.
	lo, _, err := Synthetic(SyntheticConfig{Workers: 10, Requests: 4000, DemandMu: 1.0, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	hi, _, err := Synthetic(SyntheticConfig{Workers: 10, Requests: 4000, DemandMu: 3.0, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if meanValuation(lo) >= meanValuation(hi) {
		t.Errorf("valuations should grow with demand mu: %v vs %v",
			meanValuation(lo), meanValuation(hi))
	}
	// Exponential demand: valid and bounded.
	ex, _, err := Synthetic(SyntheticConfig{Workers: 10, Requests: 2000,
		Demand: DemandExponential, ExpRate: 0.75, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range ex.Tasks {
		if task.Valuation < 1 || task.Valuation > 5 {
			t.Fatalf("exp valuation %v out of [1,5]", task.Valuation)
		}
	}
	// Smaller rate => heavier tail => richer requesters.
	ex2, _, _ := Synthetic(SyntheticConfig{Workers: 10, Requests: 2000,
		Demand: DemandExponential, ExpRate: 1.5, Seed: 6})
	if meanValuation(ex) <= meanValuation(ex2) {
		t.Errorf("exp rate 0.75 should out-value rate 1.5: %v vs %v",
			meanValuation(ex), meanValuation(ex2))
	}
}

func meanValuation(in *market.Instance) float64 {
	s := 0.0
	for _, task := range in.Tasks {
		s += task.Valuation
	}
	return s / float64(len(in.Tasks))
}

func TestSyntheticValidation(t *testing.T) {
	cases := []SyntheticConfig{
		{Workers: -1},
		{TemporalMu: 2},
		{SpatialMean: -0.5},
		{VMin: 5, VMax: 1},
		{Radius: -3},
	}
	for i, c := range cases {
		if _, _, err := Synthetic(c); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestBeijingLikeShapes(t *testing.T) {
	for _, variant := range []BeijingVariant{BeijingRush, BeijingNight} {
		in, model, err := BeijingLike(BeijingConfig{Variant: variant, WorkerDuration: 10, Scale: 50, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		if err := in.Validate(); err != nil {
			t.Fatal(err)
		}
		if model == nil {
			t.Fatal("nil model")
		}
		if in.Periods != BeijingPeriods || in.Grid.NumCells() != 80 {
			t.Errorf("geometry: T=%d G=%d, want 120/80", in.Periods, in.Grid.NumCells())
		}
		for _, w := range in.Workers {
			if w.Radius != BeijingRadiusKM || w.Duration != 10 {
				t.Fatalf("worker radius/duration %v/%d", w.Radius, w.Duration)
			}
		}
		for _, task := range in.Tasks {
			if task.Valuation < 1 || task.Valuation > 5 {
				t.Fatalf("valuation %v out of bounds", task.Valuation)
			}
		}
	}
}

func TestBeijingPopulationRatio(t *testing.T) {
	rush, _, _ := BeijingLike(BeijingConfig{Variant: BeijingRush, WorkerDuration: 5, Scale: 100, Seed: 1})
	night, _, _ := BeijingLike(BeijingConfig{Variant: BeijingNight, WorkerDuration: 5, Scale: 100, Seed: 1})
	// Table 4 ratios: rush ~4.0 tasks per worker, night ~2.9.
	rr := float64(len(rush.Tasks)) / float64(len(rush.Workers))
	nr := float64(len(night.Tasks)) / float64(len(night.Workers))
	if rr <= nr {
		t.Errorf("rush should be more demand-heavy: %v vs %v", rr, nr)
	}
	if math.Abs(rr-4.02) > 0.3 {
		t.Errorf("rush ratio %v, want ~4.0", rr)
	}
}

func TestBeijingTemporalProfiles(t *testing.T) {
	rush, _, _ := BeijingLike(BeijingConfig{Variant: BeijingRush, WorkerDuration: 5, Scale: 50, Seed: 3})
	night, _, _ := BeijingLike(BeijingConfig{Variant: BeijingNight, WorkerDuration: 5, Scale: 50, Seed: 3})
	meanPeriod := func(in *market.Instance) float64 {
		s := 0.0
		for _, task := range in.Tasks {
			s += float64(task.Period)
		}
		return s / float64(len(in.Tasks))
	}
	// Rush peaks mid-window (~60); night decays from 0 (mean well below 60).
	if m := meanPeriod(rush); math.Abs(m-60) > 10 {
		t.Errorf("rush mean period %v, want ~60", m)
	}
	if m := meanPeriod(night); m > 55 {
		t.Errorf("night mean period %v, want decaying profile (< 55)", m)
	}
}

func TestBeijingErrors(t *testing.T) {
	if _, _, err := BeijingLike(BeijingConfig{WorkerDuration: 0}); err == nil {
		t.Error("zero duration should error")
	}
	if _, _, err := BeijingLike(BeijingConfig{WorkerDuration: 5, Scale: 10_000_000}); err == nil {
		t.Error("absurd scale should error")
	}
}

func TestDistanceMetrics(t *testing.T) {
	base := SyntheticConfig{Workers: 10, Requests: 800, Periods: 20, Seed: 8}

	euclid := base
	euclid.DistanceMetric = MetricEuclidean
	manhattan := base
	manhattan.DistanceMetric = MetricManhattan
	road := base
	road.DistanceMetric = MetricRoadNetwork

	inE, _, err := Synthetic(euclid)
	if err != nil {
		t.Fatal(err)
	}
	inM, _, err := Synthetic(manhattan)
	if err != nil {
		t.Fatal(err)
	}
	inR, _, err := Synthetic(road)
	if err != nil {
		t.Fatal(err)
	}
	// Same seed: identical trips, different metrics. For every trip,
	// Euclidean <= road-network and Euclidean <= Manhattan; Manhattan is at
	// most sqrt(2) times Euclidean.
	for i := range inE.Tasks {
		de := inE.Tasks[i].Distance
		dm := inM.Tasks[i].Distance
		dr := inR.Tasks[i].Distance
		if inE.Tasks[i].Origin != inM.Tasks[i].Origin || inE.Tasks[i].Origin != inR.Tasks[i].Origin {
			t.Fatal("same seed must generate the same trips")
		}
		if dm < de-1e-9 || dm > de*math.Sqrt2+1e-9 {
			t.Fatalf("task %d: manhattan %v vs euclid %v out of band", i, dm, de)
		}
		if dr < de-1e-9 {
			t.Fatalf("task %d: road %v shorter than euclid %v", i, dr, de)
		}
	}
	// Aggregate sanity: the road network inflates average distances but not
	// absurdly (connected jittered grid).
	if meanDist(inR) > 2.0*meanDist(inE) {
		t.Errorf("road distances implausibly long: %v vs %v", meanDist(inR), meanDist(inE))
	}
}

func meanDist(in *market.Instance) float64 {
	s := 0.0
	for _, task := range in.Tasks {
		s += task.Distance
	}
	return s / float64(len(in.Tasks))
}

func TestUnknownMetricRejected(t *testing.T) {
	cfg := SyntheticConfig{Workers: 5, Requests: 5, DistanceMetric: Metric(99), Seed: 1}
	if _, _, err := Synthetic(cfg); err == nil {
		t.Error("unknown metric should error")
	}
}

func TestBeijingRoadGenerator(t *testing.T) {
	in, model, space, err := BeijingRoad(RoadConfig{
		Variant: BeijingRush, WorkerDuration: 10, Scale: 100, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if in.Space == nil || in.Spatial() != spatial.Space(space) {
		t.Fatal("instance must carry its RoadSpace")
	}
	if space.NumCells() != BeijingCols*BeijingRows {
		t.Fatalf("cells = %d, want %d", space.NumCells(), BeijingCols*BeijingRows)
	}
	if model == nil {
		t.Fatal("nil valuation model")
	}
	// Every position sits on a network node and every trip's road distance
	// is at least the straight line.
	for i, task := range in.Tasks {
		if task.Origin != space.Snap(task.Origin) || task.Dest != space.Snap(task.Dest) {
			t.Fatalf("task %d not node-snapped", i)
		}
		if task.Distance < task.Origin.Dist(task.Dest)-1e-9 {
			t.Fatalf("task %d: road distance %v beats the straight line %v",
				i, task.Distance, task.Origin.Dist(task.Dest))
		}
	}
	for i, w := range in.Workers {
		if w.Loc != space.Snap(w.Loc) {
			t.Fatalf("worker %d not node-snapped", i)
		}
	}
	if _, _, _, err := BeijingRoad(RoadConfig{Variant: BeijingRush}); err == nil {
		t.Error("zero WorkerDuration should error")
	}
}

// TestMobilityTrace pins the generator's contract: deterministic for a
// seed, moves only reference workers of the instance within their active
// window, targets stay inside the spatial partition, and consecutive moves
// of one worker chain (each starts where the previous ended).
func TestMobilityTrace(t *testing.T) {
	in, _, err := Synthetic(SyntheticConfig{Workers: 300, Requests: 600, Periods: 40, GridSide: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	cfg := MobilityConfig{MoveProb: 0.3, Seed: 9}
	a := MobilityTrace(in, cfg)
	b := MobilityTrace(in, cfg)
	if len(a) == 0 {
		t.Fatal("empty trace")
	}
	if len(a) != len(b) {
		t.Fatalf("trace not deterministic: %d vs %d moves", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace not deterministic at move %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	byID := map[int]market.Worker{}
	for _, w := range in.Workers {
		byID[w.ID] = w
	}
	space := in.Spatial()
	lastPeriod := -1
	for _, m := range a {
		w, ok := byID[m.WorkerID]
		if !ok {
			t.Fatalf("move for unknown worker %d", m.WorkerID)
		}
		if !w.ActiveAt(m.Period) {
			t.Fatalf("worker %d moved in period %d outside its window [%d,%d)",
				m.WorkerID, m.Period, w.Period, w.Period+w.Duration)
		}
		if m.Period < lastPeriod {
			t.Fatalf("trace not period-ordered: %d after %d", m.Period, lastPeriod)
		}
		lastPeriod = m.Period
		if c := space.CellOf(m.To); c < 0 || c >= space.NumCells() {
			t.Fatalf("move target %v maps to invalid cell %d", m.To, c)
		}
	}
	// A different seed diverges.
	c := MobilityTrace(in, MobilityConfig{MoveProb: 0.3, Seed: 10})
	same := len(c) == len(a)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}
