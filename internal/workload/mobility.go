package workload

import (
	"math/rand"
	"sort"

	"spatialcrowd/internal/market"
)

// MobilityConfig parameterizes the synthetic mobility-trace generator.
type MobilityConfig struct {
	// MoveProb is the per-worker per-active-period probability of a
	// relocation (default 0.2).
	MoveProb float64
	// Jitter displaces each move's target from the chosen cell center by up
	// to this many distance units per axis (default 1), so moved workers do
	// not pile up on exact centers.
	Jitter float64
	Seed   int64
}

// MobilityTrace fabricates a worker mobility trace for an instance: each
// period, every worker whose availability covers the period relocates with
// probability MoveProb to a jittered point near the center of a uniformly
// chosen neighbor of its current cell (or its own cell), walking the
// instance's spatial backend. Moves chain — a second move starts from the
// first move's target — so the trace is a plausible random drift rather
// than independent teleports.
//
// The trace ignores assignment (it cannot know which workers a pricing run
// will consume); replaying it produces late moves for consumed workers,
// which is exactly the churn the engine's lifecycle handling absorbs. For
// the demand-following trace of a specific simulation run, record
// sim.Config.OnMove instead.
func MobilityTrace(in *market.Instance, cfg MobilityConfig) []market.Move {
	if cfg.MoveProb <= 0 {
		cfg.MoveProb = 0.2
	}
	if cfg.Jitter == 0 {
		cfg.Jitter = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	space := in.Spatial()

	// Iterate workers in ID order each period so the trace is independent
	// of the instance's worker-slice ordering.
	workers := append([]market.Worker(nil), in.Workers...)
	sort.Slice(workers, func(i, j int) bool { return workers[i].ID < workers[j].ID })

	var moves []market.Move
	var buf []int
	for t := 0; t < in.Periods; t++ {
		for i := range workers {
			w := &workers[i]
			if !w.ActiveAt(t) || rng.Float64() >= cfg.MoveProb {
				continue
			}
			cur := space.CellOf(w.Loc)
			buf = append(buf[:0], cur)
			buf = space.NeighborsAppend(cur, buf)
			target := space.CellCenter(buf[rng.Intn(len(buf))])
			target.X += (rng.Float64()*2 - 1) * cfg.Jitter
			target.Y += (rng.Float64()*2 - 1) * cfg.Jitter
			w.Loc = target
			moves = append(moves, market.Move{Period: t, WorkerID: w.ID, To: target})
		}
	}
	return moves
}
