// Package workload generates the market instances of the paper's evaluation:
// the synthetic parameter grid of Table 3 and a Beijing-like taxi workload
// standing in for the proprietary Didi dataset of Table 4 (see DESIGN.md for
// the substitution rationale).
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"spatialcrowd/internal/geo"
	"spatialcrowd/internal/market"
	"spatialcrowd/internal/roadnet"
	"spatialcrowd/internal/stats"
)

// DemandKind selects the family of the valuation (demand) distribution.
type DemandKind int

const (
	// DemandNormal draws valuations from a per-grid normal conditioned on
	// [VMin, VMax] — the paper's default demand model.
	DemandNormal DemandKind = iota
	// DemandExponential draws valuations from a shifted exponential
	// conditioned on [VMin, VMax] — the appendix-D variant (Figure 10).
	DemandExponential
)

// Metric selects how task travel distances d_r are computed (Section 2.1
// allows "Euclidean or road-network distance").
type Metric int

const (
	// MetricEuclidean is the straight-line distance (the default).
	MetricEuclidean Metric = iota
	// MetricManhattan is the L1 distance, a cheap road proxy.
	MetricManhattan
	// MetricRoadNetwork routes trips over a synthetic jittered grid city
	// (see internal/roadnet) with nearest-node snapping.
	MetricRoadNetwork
)

// SyntheticConfig mirrors Table 3. Zero values are replaced by the bold
// defaults of the table.
type SyntheticConfig struct {
	Workers  int // |W|, default 5000
	Requests int // |R|, default 20000
	Periods  int // T, default 400
	GridSide int // default 10 (G = 10x10 grids)

	// TemporalMu positions the mean of task start times as a fraction of the
	// horizon (0.1..0.9, default 0.5). Worker start times always center at
	// T/2, matching the evaluation ("The mean for the workers is fixed at
	// T/2").
	TemporalMu float64
	// TemporalSigma is the start-time standard deviation as a fraction of
	// the horizon (default 0.2).
	TemporalSigma float64

	// SpatialMean positions the mean of task origins on the diagonal of the
	// 100x100 region (0.1..0.9, default 0.5); workers always center at 0.5.
	SpatialMean float64
	// SpatialSigma is the origin standard deviation (default 20 units).
	SpatialSigma float64

	// DemandMu is the global mean of the valuation distribution (1..3,
	// default 2); each grid's own mean is drawn N(DemandMu, GridMuSigma).
	DemandMu float64
	// DemandSigma is the valuation standard deviation (0.5..2.5, default 1).
	DemandSigma float64
	// GridMuSigma is the across-grid dispersion of per-grid demand means
	// (default 0.3); it creates the heterogeneous local markets dynamic
	// pricing exploits.
	GridMuSigma float64
	// Demand selects the distribution family (default DemandNormal).
	Demand DemandKind
	// ExpRate is the exponential rate alpha for DemandExponential
	// (0.5..1.5, default 1).
	ExpRate float64

	// Radius is the worker range constraint a_w (5..25, default 10).
	Radius float64
	// WorkerDuration is how many periods a worker stays available if not
	// consumed (default 1: workers are per-period supply, as in the paper's
	// synthetic model where only start times are drawn; the real-data
	// experiments sweep multi-period durations explicitly).
	WorkerDuration int
	// DistanceMetric selects how d_r is computed (default MetricEuclidean).
	DistanceMetric Metric
	// VMin, VMax bound valuations (default [1, 5]).
	VMin, VMax float64

	// Seed drives all randomness; runs with equal configs are identical.
	Seed int64
}

// withDefaults returns cfg with zero fields replaced by Table 3's bold
// defaults.
func (cfg SyntheticConfig) withDefaults() SyntheticConfig {
	def := func(v *int, d int) {
		if *v == 0 {
			*v = d
		}
	}
	deff := func(v *float64, d float64) {
		if *v == 0 {
			*v = d
		}
	}
	def(&cfg.Workers, 5000)
	def(&cfg.Requests, 20000)
	def(&cfg.Periods, 400)
	def(&cfg.GridSide, 10)
	deff(&cfg.TemporalMu, 0.5)
	deff(&cfg.TemporalSigma, 0.2)
	deff(&cfg.SpatialMean, 0.5)
	deff(&cfg.SpatialSigma, 20)
	deff(&cfg.DemandMu, 2)
	deff(&cfg.DemandSigma, 1)
	deff(&cfg.GridMuSigma, 0.3)
	deff(&cfg.ExpRate, 1)
	deff(&cfg.Radius, 10)
	def(&cfg.WorkerDuration, 1)
	deff(&cfg.VMin, 1)
	deff(&cfg.VMax, 5)
	return cfg
}

// Validate rejects nonsensical configurations after defaulting.
func (cfg SyntheticConfig) Validate() error {
	c := cfg.withDefaults()
	if c.Workers < 0 || c.Requests < 0 {
		return fmt.Errorf("workload: negative population (%d workers, %d requests)", c.Workers, c.Requests)
	}
	if c.Periods <= 0 || c.GridSide <= 0 {
		return fmt.Errorf("workload: need positive periods and grid side, got %d/%d", c.Periods, c.GridSide)
	}
	if c.TemporalMu < 0 || c.TemporalMu > 1 || c.SpatialMean < 0 || c.SpatialMean > 1 {
		return fmt.Errorf("workload: temporal/spatial means are fractions in [0,1]")
	}
	if c.VMin >= c.VMax {
		return fmt.Errorf("workload: need VMin < VMax, got [%v,%v]", c.VMin, c.VMax)
	}
	if c.Radius <= 0 {
		return fmt.Errorf("workload: need positive radius, got %v", c.Radius)
	}
	return nil
}

// RegionSide is the synthetic region's extent (Table 3: a 100x100 square).
const RegionSide = 100.0

// Synthetic generates a complete market instance per Table 3, including
// hidden private valuations, and returns it with the valuation model used
// (for oracle calibration).
func Synthetic(cfg SyntheticConfig) (*market.Instance, market.ValuationModel, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	c := cfg.withDefaults()
	rng := rand.New(rand.NewSource(c.Seed))
	grid := geo.SquareGrid(RegionSide, c.GridSide)

	model, err := buildDemandModel(c, grid, rng)
	if err != nil {
		return nil, nil, err
	}

	in := &market.Instance{
		Grid:    grid,
		Periods: c.Periods,
		Tasks:   make([]market.Task, 0, c.Requests),
		Workers: make([]market.Worker, 0, c.Workers),
	}

	taskTime := truncTime(c.TemporalMu, c.TemporalSigma, c.Periods)
	workerTime := truncTime(0.5, c.TemporalSigma, c.Periods)
	taskCenter := geo.Point{X: c.SpatialMean * RegionSide, Y: c.SpatialMean * RegionSide}
	workerCenter := geo.Point{X: 0.5 * RegionSide, Y: 0.5 * RegionSide}

	distance, err := distanceFunc(c, rng)
	if err != nil {
		return nil, nil, err
	}
	for i := 0; i < c.Requests; i++ {
		origin := gaussPoint(taskCenter, c.SpatialSigma, rng)
		dest := geo.Point{X: rng.Float64() * RegionSide, Y: rng.Float64() * RegionSide}
		cell := grid.CellOf(origin)
		in.Tasks = append(in.Tasks, market.Task{
			ID:        i,
			Period:    taskTime(rng),
			Origin:    origin,
			Dest:      dest,
			Distance:  distance(origin, dest),
			Valuation: model.Dist(cell).Sample(rng),
		})
	}
	for i := 0; i < c.Workers; i++ {
		in.Workers = append(in.Workers, market.Worker{
			ID:       i,
			Period:   workerTime(rng),
			Loc:      gaussPoint(workerCenter, c.SpatialSigma, rng),
			Radius:   c.Radius,
			Duration: c.WorkerDuration,
		})
	}
	return in, model, nil
}

// buildDemandModel draws one valuation distribution per grid cell.
func buildDemandModel(c SyntheticConfig, grid geo.Grid, rng *rand.Rand) (market.ValuationModel, error) {
	cells := make(map[int]stats.Dist, grid.NumCells())
	for g := 0; g < grid.NumCells(); g++ {
		switch c.Demand {
		case DemandNormal:
			mu := c.DemandMu + c.GridMuSigma*rng.NormFloat64()
			d, err := stats.NewTruncNormal(mu, c.DemandSigma, c.VMin, c.VMax)
			if err != nil {
				return nil, err
			}
			cells[g] = d
		case DemandExponential:
			rate := c.ExpRate * math.Exp(0.15*rng.NormFloat64()) // mild per-grid variety
			d, err := stats.NewTruncated(stats.Exponential{Rate: rate, Shift: c.VMin}, c.VMin, c.VMax)
			if err != nil {
				return nil, err
			}
			cells[g] = d
		default:
			return nil, fmt.Errorf("workload: unknown demand kind %d", c.Demand)
		}
	}
	def, err := stats.NewTruncNormal(c.DemandMu, c.DemandSigma, c.VMin, c.VMax)
	if err != nil {
		return nil, err
	}
	return market.PerCellModel{Cells: cells, Default: def}, nil
}

// distanceFunc builds the d_r metric for the configured DistanceMetric.
func distanceFunc(c SyntheticConfig, rng *rand.Rand) (func(a, b geo.Point) float64, error) {
	switch c.DistanceMetric {
	case MetricEuclidean:
		return func(a, b geo.Point) float64 { return a.Dist(b) }, nil
	case MetricManhattan:
		return func(a, b geo.Point) float64 {
			return math.Abs(a.X-b.X) + math.Abs(a.Y-b.Y)
		}, nil
	case MetricRoadNetwork:
		city, err := roadnet.GridCity(roadnet.GridCityConfig{
			Region:   geo.Square(RegionSide),
			Cols:     20,
			Rows:     20,
			Jitter:   0.25,
			DropProb: 0.05,
			Seed:     c.Seed + 1,
		})
		if err != nil {
			return nil, err
		}
		return city.Distance, nil
	default:
		return nil, fmt.Errorf("workload: unknown distance metric %d", c.DistanceMetric)
	}
}

// truncTime returns a sampler of start periods from a normal centered at
// muFrac*T with sd sigmaFrac*T, conditioned on [0, T).
func truncTime(muFrac, sigmaFrac float64, periods int) func(*rand.Rand) int {
	mu := muFrac * float64(periods)
	sigma := sigmaFrac * float64(periods)
	return func(rng *rand.Rand) int {
		for i := 0; i < 1000; i++ {
			t := int(mu + sigma*rng.NormFloat64())
			if t >= 0 && t < periods {
				return t
			}
		}
		// Pathological window: clamp.
		t := int(mu)
		if t < 0 {
			t = 0
		}
		if t >= periods {
			t = periods - 1
		}
		return t
	}
}

// gaussPoint samples a 2-D Gaussian point clamped into the region.
func gaussPoint(center geo.Point, sigma float64, rng *rand.Rand) geo.Point {
	p := geo.Point{
		X: center.X + sigma*rng.NormFloat64(),
		Y: center.Y + sigma*rng.NormFloat64(),
	}
	return geo.Square(RegionSide).Clamp(p)
}
