package workload

import (
	"fmt"
	"math"
	"math/rand"

	"spatialcrowd/internal/geo"
	"spatialcrowd/internal/market"
	"spatialcrowd/internal/roadnet"
	"spatialcrowd/internal/spatial"
)

// RoadConfig parameterizes the road-network Beijing-like generator: the same
// Table 4 populations, temporal profiles, and hotspot mixtures as
// BeijingLike, but laid over a synthetic street network. Every position
// (task origin, task destination, worker location) sits on a network node,
// travel distances d_r are shortest paths over the streets, and the market's
// cells are the road clusters of the resulting spatial.RoadSpace rather than
// uniform grid rectangles.
type RoadConfig struct {
	Variant BeijingVariant
	// WorkerDuration is delta_w: periods each worker stays available.
	WorkerDuration int
	// Scale shrinks both populations by the given divisor (0 or 1 = full
	// Table 4 size).
	Scale int
	Seed  int64

	// Cols x Rows intersections of the street lattice (default 24 x 20 —
	// ~0.75 km blocks over the ~17 km Beijing rectangle).
	Cols, Rows int
	// Jitter displaces intersections by up to this fraction of a block
	// (default 0.3), DropProb removes street segments (default 0.05),
	// producing dead ends and detours that make road distances genuinely
	// exceed Euclidean ones.
	Jitter   float64
	DropProb float64
	// Cells is the number of road clusters (local markets); default 80,
	// matching the 10x8 grid of the flat Beijing workload so revenue is
	// comparable across backends.
	Cells int
}

// withDefaults fills zero fields.
func (cfg RoadConfig) withDefaults() RoadConfig {
	if cfg.Cols == 0 {
		cfg.Cols = 24
	}
	if cfg.Rows == 0 {
		cfg.Rows = 20
	}
	if cfg.Jitter == 0 {
		cfg.Jitter = 0.3
	}
	if cfg.DropProb == 0 {
		cfg.DropProb = 0.05
	}
	if cfg.Cells == 0 {
		cfg.Cells = BeijingCols * BeijingRows
	}
	return cfg
}

// BeijingRoad generates a road-network Beijing-like market instance. The
// returned instance carries the RoadSpace in Instance.Space, so the
// simulator, the streaming engine, and the bipartite cell index all operate
// over road clusters and shortest-path distances. The valuation model (for
// calibration oracles) is keyed by road cluster.
func BeijingRoad(cfg RoadConfig) (*market.Instance, market.ValuationModel, *spatial.RoadSpace, error) {
	if cfg.WorkerDuration <= 0 {
		return nil, nil, nil, fmt.Errorf("workload: need positive WorkerDuration, got %d", cfg.WorkerDuration)
	}
	c := cfg.withDefaults()
	scale := c.Scale
	if scale <= 0 {
		scale = 1
	}
	nw, nr := BeijingConfig{Variant: c.Variant}.populations()
	nw, nr = nw/scale, nr/scale
	if nw == 0 || nr == 0 {
		return nil, nil, nil, fmt.Errorf("workload: scale %d leaves an empty market", c.Scale)
	}

	region := geo.NewRect(geo.Point{X: 0, Y: 0}, geo.Point{X: BeijingWidthKM, Y: BeijingHeightKM})
	city, err := roadnet.GridCity(roadnet.GridCityConfig{
		Region:   region,
		Cols:     c.Cols,
		Rows:     c.Rows,
		Jitter:   c.Jitter,
		DropProb: c.DropProb,
		Seed:     c.Seed + 1,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	space, err := spatial.NewRoadSpace(city, c.Cells)
	if err != nil {
		return nil, nil, nil, err
	}

	rng := rand.New(rand.NewSource(c.Seed))
	hot := hotspots(c.Variant)
	model, err := beijingDemandModel(c.Variant, space, hot, rng)
	if err != nil {
		return nil, nil, nil, err
	}
	timeOf := beijingTemporal(c.Variant)

	// Grid stays zero: the road clusters are the only cell structure, and a
	// reference grid would carry cell ids that disagree with them —
	// consumers that reached for in.Grid instead of in.Spatial() would
	// compute wrong cells silently. A zero grid fails loudly instead.
	in := &market.Instance{
		Space:   space,
		Periods: BeijingPeriods,
		Tasks:   make([]market.Task, 0, nr),
		Workers: make([]market.Worker, 0, nw),
	}
	tripLen := func() float64 {
		d := math.Exp(math.Log(4.0) + 0.55*rng.NormFloat64())
		return math.Min(d, 15)
	}
	for i := 0; i < nr; i++ {
		origin := space.Snap(hot.sample(rng, region))
		ang := rng.Float64() * 2 * math.Pi
		d := tripLen()
		dest := space.Snap(region.Clamp(geo.Point{
			X: origin.X + d*math.Cos(ang),
			Y: origin.Y + d*math.Sin(ang),
		}))
		cell := space.CellOf(origin)
		in.Tasks = append(in.Tasks, market.Task{
			ID:        i,
			Period:    timeOf(rng),
			Origin:    origin,
			Dest:      dest,
			Distance:  space.Dist(origin, dest),
			Valuation: model.Dist(cell).Sample(rng),
		})
	}
	for i := 0; i < nw; i++ {
		in.Workers = append(in.Workers, market.Worker{
			ID:       i,
			Period:   timeOf(rng),
			Loc:      space.Snap(hot.sample(rng, region)),
			Radius:   BeijingRadiusKM,
			Duration: c.WorkerDuration,
		})
	}
	return in, model, space, nil
}
