package core

// Exact strategy-state snapshots. Unlike the cross-deployment persistence
// format of persist.go (SaveState/LoadState), which deliberately drops the
// change-detection windows so a redeployed service re-learns its reference
// ratios, these snapshots capture the complete learning state — including
// window counters — so that restoring a strategy and resuming the exact
// same observation stream reproduces every subsequent pricing decision bit
// for bit. The engine's checkpoint/restore path (crash recovery) depends on
// that exactness.
//
// The state decomposes spatially: a StrategyState carries one Head (the
// non-spatial scalars: base price, ladder, smoothing) plus one CellSnapshot
// per grid cell. Cells partition cleanly across engine shards, so per-shard
// snapshots can be merged into one global state and re-filtered under a
// different partitioner — pricing state travels with the workers of its
// cells when an engine is restored onto a new shard layout.

import (
	"encoding/json"
	"fmt"
	"sort"
)

// PriceSnap is one candidate price's exact learned state: the lifetime
// counts plus the sliding change-detection window of Section 4.2.2.
type PriceSnap struct {
	Price      float64 `json:"price"`
	Tried      int     `json:"tried"`
	Accepts    int     `json:"accepts"`
	WinTrials  int     `json:"win_trials,omitempty"`
	WinAccepts int     `json:"win_accepts,omitempty"`
	WinRef     float64 `json:"win_ref,omitempty"`
	WinRefSet  bool    `json:"win_ref_set,omitempty"`
}

// LogitSnap is one cell's logistic demand fit (LogisticDemand).
type LogitSnap struct {
	A  float64 `json:"a"`
	B  float64 `json:"b"`
	LR float64 `json:"lr"`
	N  int     `json:"n"`
}

// CellSnapshot is the exact serialized learning state of one grid cell.
type CellSnapshot struct {
	Cell         int         `json:"cell"`
	Total        int         `json:"total,omitempty"`
	Changes      int         `json:"changes,omitempty"`
	ChangeWindow int         `json:"change_window,omitempty"`
	Prices       []PriceSnap `json:"prices,omitempty"`
	Logit        *LogitSnap  `json:"logit,omitempty"`
}

// StrategyState is a strategy's complete serializable learned state: a
// strategy-specific head (non-spatial scalars, JSON) plus per-cell
// snapshots sorted by cell.
type StrategyState struct {
	Kind  string          `json:"kind"`
	Head  json.RawMessage `json:"head,omitempty"`
	Cells []CellSnapshot  `json:"cells,omitempty"`
}

// StateSnapshotter is the optional Strategy extension for strategies whose
// learned state can be captured and restored exactly. MAPS, CappedUCB, and
// ParametricMAPS implement it; SDR and SDE are stateless and need nothing.
// RestoreState replaces the strategy's learned state wholesale with the
// snapshot's head and installs exactly the given cells.
type StateSnapshotter interface {
	SnapshotState() (StrategyState, error)
	RestoreState(st StrategyState) error
}

// CellFilter returns a copy of st whose cells are restricted to those for
// which keep reports true. The head is shared (it is read-only). The engine
// uses it to hand each shard the pricing state of exactly the cells it
// owns when restoring a checkpoint onto a different shard layout.
func (st StrategyState) CellFilter(keep func(cell int) bool) StrategyState {
	out := StrategyState{Kind: st.Kind, Head: st.Head}
	for _, c := range st.Cells {
		if keep(c.Cell) {
			out.Cells = append(out.Cells, c)
		}
	}
	return out
}

// MergeStrategyStates combines per-shard snapshots of the same strategy
// kind into one global state: the head comes from the first snapshot with
// one (shards share scalar state by construction — every shard's strategy
// was built by the same factory) and the cell sets, which are disjoint
// across shards, are concatenated and re-sorted.
func MergeStrategyStates(states []StrategyState) StrategyState {
	var out StrategyState
	for _, st := range states {
		if out.Kind == "" {
			out.Kind = st.Kind
		}
		if out.Head == nil && st.Head != nil {
			out.Head = st.Head
		}
		out.Cells = append(out.Cells, st.Cells...)
	}
	sort.Slice(out.Cells, func(i, j int) bool { return out.Cells[i].Cell < out.Cells[j].Cell })
	return out
}

// snapshotExact captures the cell's complete state, window counters
// included. Untouched rungs are omitted.
func (cs *CellStats) snapshotExact(cell int) CellSnapshot {
	snap := CellSnapshot{Cell: cell, Total: cs.total, Changes: cs.Changes, ChangeWindow: cs.ChangeWindow}
	for i, p := range cs.ladder {
		st := cs.stat[i]
		if st == (priceStat{}) {
			continue
		}
		snap.Prices = append(snap.Prices, PriceSnap{
			Price: p, Tried: st.tried, Accepts: st.accepts,
			WinTrials: st.winTrials, WinAccepts: st.winAccepts,
			WinRef: st.winRef, WinRefSet: st.winRefSet,
		})
	}
	return snap
}

// restoreExact installs the snapshot verbatim over freshly reset state.
func (cs *CellStats) restoreExact(snap CellSnapshot) error {
	if snap.Total < 0 {
		return fmt.Errorf("core: cell %d snapshot has negative total %d", snap.Cell, snap.Total)
	}
	cs.total = snap.Total
	cs.Changes = snap.Changes
	if snap.ChangeWindow > 0 {
		cs.ChangeWindow = snap.ChangeWindow
	}
	for _, p := range snap.Prices {
		if p.Tried < 0 || p.Accepts < 0 || p.Accepts > p.Tried {
			return fmt.Errorf("core: cell %d snapshot has invalid counts %+v", snap.Cell, p)
		}
		cs.stat[cs.ladderIndex(p.Price)] = priceStat{
			tried: p.Tried, accepts: p.Accepts,
			winTrials: p.WinTrials, winAccepts: p.WinAccepts,
			winRef: p.WinRef, winRefSet: p.WinRefSet,
		}
	}
	return nil
}

// ucbHead is the shared non-spatial state of the UCB-family strategies.
type ucbHead struct {
	Version   int       `json:"version"`
	BasePrice float64   `json:"base_price"`
	Ladder    []float64 `json:"ladder"`
	Smoothing float64   `json:"smoothing,omitempty"`
}

func (h ucbHead) validate() error {
	if h.Version != snapshotVersion {
		return fmt.Errorf("core: unsupported strategy state version %d", h.Version)
	}
	if len(h.Ladder) == 0 {
		return fmt.Errorf("core: strategy state has an empty price ladder")
	}
	for i := 1; i < len(h.Ladder); i++ {
		if h.Ladder[i] <= h.Ladder[i-1] {
			return fmt.Errorf("core: strategy state ladder is not increasing at %d", i)
		}
	}
	return nil
}

// sortedCellIDs returns the map's keys ascending (deterministic output).
func sortedCellIDs[V any](m map[int]*V) []int {
	out := make([]int, 0, len(m))
	for c := range m {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// SnapshotState implements StateSnapshotter: the exact learned state of the
// MAPS strategy (base price, ladder, smoothing, and every cell's UCB
// statistics with their change-detection windows).
func (m *MAPS) SnapshotState() (StrategyState, error) {
	head, err := json.Marshal(ucbHead{
		Version: snapshotVersion, BasePrice: m.basePrice,
		Ladder: m.ladder, Smoothing: m.Smoothing,
	})
	if err != nil {
		return StrategyState{}, err
	}
	st := StrategyState{Kind: "maps", Head: head}
	for _, c := range sortedCellIDs(m.cells) {
		st.Cells = append(st.Cells, m.cells[c].snapshotExact(c))
	}
	return st, nil
}

// checkStateKind rejects a snapshot taken under a different strategy: the
// UCB-family heads decode interchangeably, so without this a CappedUCB or
// maps-logit checkpoint would restore silently into plain MAPS and the
// resumed run would diverge without a diagnostic.
func checkStateKind(st StrategyState, want string) error {
	if st.Kind != want {
		return fmt.Errorf("core: strategy state kind %q cannot restore into %q", st.Kind, want)
	}
	return nil
}

// RestoreState implements StateSnapshotter: learned state is replaced
// wholesale with the snapshot's head and exactly the given cells.
func (m *MAPS) RestoreState(st StrategyState) error {
	if err := checkStateKind(st, "maps"); err != nil {
		return err
	}
	return m.restoreUCBState(st)
}

// restoreUCBState installs the head and cells without a kind check (the
// shared half of MAPS and ParametricMAPS restoration).
func (m *MAPS) restoreUCBState(st StrategyState) error {
	var head ucbHead
	if err := json.Unmarshal(st.Head, &head); err != nil {
		return fmt.Errorf("core: decoding MAPS state head: %w", err)
	}
	if err := head.validate(); err != nil {
		return err
	}
	m.basePrice = head.BasePrice
	m.Smoothing = head.Smoothing
	m.SetLadder(head.Ladder) // resets all cells
	return restoreUCBCells(st.Cells, m.CellStats)
}

// restoreUCBCells installs cell snapshots into a UCB statistics store.
// Logit-only cells (a ParametricMAPS fit with no rung observations) are
// skipped — the fit layer restores those.
func restoreUCBCells(cells []CellSnapshot, cellStats func(int) *CellStats) error {
	for _, c := range cells {
		if c.Cell < 0 {
			return fmt.Errorf("core: strategy state has negative cell %d", c.Cell)
		}
		if c.Total == 0 && c.Changes == 0 && len(c.Prices) == 0 {
			continue
		}
		if err := cellStats(c.Cell).restoreExact(c); err != nil {
			return err
		}
	}
	return nil
}

// SnapshotState implements StateSnapshotter for the CappedUCB baseline.
func (c *CappedUCB) SnapshotState() (StrategyState, error) {
	head, err := json.Marshal(ucbHead{
		Version: snapshotVersion, BasePrice: c.basePrice, Ladder: c.ladder,
	})
	if err != nil {
		return StrategyState{}, err
	}
	st := StrategyState{Kind: "cappeducb", Head: head}
	for _, cell := range sortedCellIDs(c.cells) {
		st.Cells = append(st.Cells, c.cells[cell].snapshotExact(cell))
	}
	return st, nil
}

// RestoreState implements StateSnapshotter for the CappedUCB baseline. The
// per-period task/worker tallies are transient and restart empty.
func (c *CappedUCB) RestoreState(st StrategyState) error {
	if err := checkStateKind(st, "cappeducb"); err != nil {
		return err
	}
	var head ucbHead
	if err := json.Unmarshal(st.Head, &head); err != nil {
		return fmt.Errorf("core: decoding CappedUCB state head: %w", err)
	}
	if err := head.validate(); err != nil {
		return err
	}
	c.basePrice = head.BasePrice
	c.ladder = append([]float64(nil), head.Ladder...)
	c.cells = make(map[int]*CellStats)
	c.taskCount = make(map[int]int)
	c.workerCount = make(map[int]int)
	c.ver++ // restored state invalidates any cached price vector
	return restoreUCBCells(st.Cells, c.cellStats)
}

// SnapshotState implements StateSnapshotter for ParametricMAPS: the
// embedded MAPS state plus one logistic fit per cell, attached to the
// cell's snapshot.
func (pm *ParametricMAPS) SnapshotState() (StrategyState, error) {
	st, err := pm.MAPS.SnapshotState()
	if err != nil {
		return StrategyState{}, err
	}
	st.Kind = "maps-logit"
	byCell := make(map[int]int, len(st.Cells))
	for i := range st.Cells {
		byCell[st.Cells[i].Cell] = i
	}
	for _, cell := range sortedCellIDs(pm.fits) {
		f := pm.fits[cell]
		snap := &LogitSnap{A: f.a, B: f.b, LR: f.lr, N: f.n}
		if i, ok := byCell[cell]; ok {
			st.Cells[i].Logit = snap
		} else {
			st.Cells = append(st.Cells, CellSnapshot{Cell: cell, Logit: snap})
		}
	}
	sort.Slice(st.Cells, func(i, j int) bool { return st.Cells[i].Cell < st.Cells[j].Cell })
	return st, nil
}

// RestoreState implements StateSnapshotter for ParametricMAPS.
func (pm *ParametricMAPS) RestoreState(st StrategyState) error {
	if err := checkStateKind(st, "maps-logit"); err != nil {
		return err
	}
	if err := pm.MAPS.restoreUCBState(st); err != nil {
		return err
	}
	pm.fits = make(map[int]*LogisticDemand)
	for _, c := range st.Cells {
		if c.Logit == nil {
			continue
		}
		l := c.Logit
		if l.LR <= 0 || l.N < 0 {
			return fmt.Errorf("core: cell %d has invalid logistic fit %+v", c.Cell, *l)
		}
		pm.fits[c.Cell] = &LogisticDemand{a: l.A, b: l.B, lr: l.LR, n: l.N}
	}
	return nil
}
