package core

import (
	"math"

	"spatialcrowd/internal/market"
	"spatialcrowd/internal/match"
)

// This file is the invalidation side of the window-level amortization
// layer: cheap rolling fingerprints over the strategy-visible inputs of a
// pricing window, the PriceCacheable opt-in for price-vector reuse, and
// the context-reuse fast path that pairs with BuildContextScratch. The
// cache layer itself lives in internal/window; core only defines what
// "unchanged inputs" means, so the equality contract sits next to the
// structures it protects.

// FNV-1a folded over 64-bit words — the same constants the engine's
// partition fingerprint uses. Word-at-a-time mixing keeps hashing a
// window's inputs far cheaper than rebuilding anything from them, which is
// the whole point: a fingerprint check must cost less than the cheapest
// recomputation it can skip.
const (
	fpOffset uint64 = 14695981039346656037
	fpPrime  uint64 = 1099511628211
)

func fpMix(h, v uint64) uint64 { return (h ^ v) * fpPrime }

// TasksFingerprint hashes everything about a task batch that pricing can
// see except the IDs: origins, destinations, and distances, in order,
// plus the batch length. IDs are deliberately excluded — the engine mints
// fresh task IDs every window even when the underlying demand pattern
// repeats, and no strategy-visible derivation (cell grouping, adjacency,
// prices) depends on them — and valuations are excluded because they are
// hidden information that never reaches a strategy.
func TasksFingerprint(tasks []market.Task) uint64 {
	h := fpMix(fpOffset, uint64(len(tasks)))
	for i := range tasks {
		t := &tasks[i]
		h = fpMix(h, math.Float64bits(t.Origin.X))
		h = fpMix(h, math.Float64bits(t.Origin.Y))
		h = fpMix(h, math.Float64bits(t.Dest.X))
		h = fpMix(h, math.Float64bits(t.Dest.Y))
		h = fpMix(h, math.Float64bits(t.Distance))
	}
	return h
}

// WorkersFingerprint hashes a worker batch in order, covering every field:
// strategies see the worker slice verbatim through PeriodContext, so any
// field change must invalidate.
func WorkersFingerprint(workers []market.Worker) uint64 {
	h := fpMix(fpOffset, uint64(len(workers)))
	for i := range workers {
		w := &workers[i]
		h = fpMix(h, uint64(w.ID))
		h = fpMix(h, uint64(w.Period))
		h = fpMix(h, math.Float64bits(w.Loc.X))
		h = fpMix(h, math.Float64bits(w.Loc.Y))
		h = fpMix(h, math.Float64bits(w.Radius))
		h = fpMix(h, uint64(w.Duration))
	}
	return h
}

// PriceCacheable is the opt-in for price-vector caching. A strategy
// implementing it declares that Prices is a pure function of (its internal
// state as versioned here, the window's tasks and workers, and the spatial
// backend) — in particular independent of ctx.Period and of call count —
// so a caller may replay the previous window's price vector verbatim when
// the version and both input fingerprints are unchanged.
//
// Implementations must bump the version on every state change that could
// alter future prices: observing outcomes, replacing the ladder, restoring
// a snapshot. Learning strategies therefore never produce stale hits (each
// Observe invalidates); the stateless heuristics return a constant and hit
// whenever the market repeats.
type PriceCacheable interface {
	PriceStateVersion() uint64
}

// ReuseContextScratch rewires the context left in sc by the previous
// BuildContextScratch call for a new window whose tasks have the same
// fingerprint (TasksFingerprint — identical origins, destinations,
// distances, and count; only IDs may differ). The per-cell grouping, the
// distance-sorted order inside each cell, and every view field except ID
// are input-identical, so only the IDs are rewritten and the
// window-specific fields (period, workers, graph) reassigned. The caller
// owns the fingerprint check; calling this with non-matching tasks
// silently corrupts the context.
func ReuseContextScratch(sc *ContextScratch, period int, tasks []market.Task, workers []market.Worker, graph *match.Graph) *PeriodContext {
	views := sc.views[:len(tasks)]
	for i := range tasks {
		views[i].ID = tasks[i].ID
	}
	sc.ctx.Period = period
	sc.ctx.Tasks = views
	sc.ctx.Workers = workers
	sc.ctx.Graph = graph
	return &sc.ctx
}

// Len reports how many task views the scratch currently holds — the guard
// a caller pairs with the fingerprint check before ReuseContextScratch.
func (sc *ContextScratch) Len() int { return len(sc.views) }
