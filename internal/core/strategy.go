// Package core implements the paper's pricing strategies: the base pricing
// algorithm with Myerson-reserve estimation (Algorithm 1), the MAPS
// matching-based dynamic pricing strategy (Algorithms 2–3), and the three
// comparison baselines of Section 5 (SDR, SDE, CappedUCB).
//
// Strategies see only public market information — task origins, destinations,
// distances and worker positions — plus the accept/reject feedback of past
// offers. Private valuations never cross this API.
package core

import (
	"fmt"

	"spatialcrowd/internal/geo"
	"spatialcrowd/internal/market"
	"spatialcrowd/internal/match"
	"spatialcrowd/internal/spatial"
)

// TaskView is the strategy-visible projection of a task: everything except
// the requester's private valuation.
type TaskView struct {
	ID       int
	Origin   geo.Point
	Dest     geo.Point
	Distance float64
	Cell     int
}

// PeriodContext carries one time period's market state to a strategy.
type PeriodContext struct {
	Period  int
	Space   spatial.Space   // the spatial backend partitioning the market
	Tasks   []TaskView      // this period's issued tasks
	Workers []market.Worker // this period's available workers
	Graph   *match.Graph    // bipartite graph: Tasks x Workers (range constraint)
	Cells   map[int][]int   // cell -> task indices, sorted by distance descending
}

// Strategy prices one period's tasks and learns from the outcome.
type Strategy interface {
	// Name identifies the strategy in experiment tables.
	Name() string
	// Prices returns one unit price per task in ctx.Tasks. Implementations
	// must give tasks of the same grid cell the same price (Definition 1).
	Prices(ctx *PeriodContext) []float64
	// Observe reports the requesters' decisions for the prices returned by
	// the immediately preceding Prices call on the same context.
	Observe(ctx *PeriodContext, prices []float64, accepted []bool)
}

// GridPricer is implemented by strategies that expose their most recent
// per-grid prices (cell -> unit price). The simulator's worker-repositioning
// extension uses it: the paper notes that higher prices in under-supplied
// regions "will motivate more drivers to move to these regions"
// (Section 4.2.3, practical note (i)).
type GridPricer interface {
	// GridPrices returns the latest per-grid unit prices.
	GridPrices() map[int]float64
}

// ProbeOracle answers base pricing's calibration probes: offer `price` to
// one fresh requester whose task originates in `cell` and report acceptance.
// In the simulator this draws from the hidden valuation model, standing in
// for "requesters who recently have issued tasks" (Algorithm 1, line 6).
type ProbeOracle interface {
	Probe(cell int, price float64) bool
}

// Params bundles the pricing knobs shared by every strategy.
type Params struct {
	PMin  float64 // lower bound of candidate prices
	PMax  float64 // upper bound of candidate prices
	Alpha float64 // ladder multiplier: successive candidates differ by (1+Alpha)
	Eps   float64 // base pricing sampling accuracy (Theorem 2)
	Delta float64 // base pricing failure probability (Theorem 2)
}

// DefaultParams mirrors the paper's experimental configuration: valuations
// live in [1, 5], alpha = 0.5 (Example 4), and the standard (0.2, 0.01)
// accuracy pair.
func DefaultParams() Params {
	return Params{PMin: 1, PMax: 5, Alpha: 0.5, Eps: 0.2, Delta: 0.01}
}

// Validate reports the first invalid field.
func (p Params) Validate() error {
	if p.PMin <= 0 || p.PMax < p.PMin {
		return fmt.Errorf("core: need 0 < PMin <= PMax, got [%v,%v]", p.PMin, p.PMax)
	}
	if p.Alpha <= 0 {
		return fmt.Errorf("core: need Alpha > 0, got %v", p.Alpha)
	}
	if p.Eps <= 0 {
		return fmt.Errorf("core: need Eps > 0, got %v", p.Eps)
	}
	if p.Delta <= 0 || p.Delta >= 1 {
		return fmt.Errorf("core: need Delta in (0,1), got %v", p.Delta)
	}
	return nil
}

// Clamp restricts a price to [PMin, PMax], the bounded-price cap the paper
// recommends as a practical note in Section 4.2.3.
func (p Params) Clamp(price float64) float64 {
	if price < p.PMin {
		return p.PMin
	}
	if price > p.PMax {
		return p.PMax
	}
	return price
}

// BuildContext assembles a PeriodContext from raw market data: it projects
// tasks to TaskViews, builds the range-constraint bipartite graph, and
// groups tasks per cell of the spatial backend with distances sorted
// descending. A geo.Grid passes directly as the space.
func BuildContext(space spatial.Space, period int, tasks []market.Task, workers []market.Worker, graph *match.Graph) *PeriodContext {
	return BuildContextScratch(space, period, tasks, workers, graph, nil)
}

// ContextScratch is reusable working state for BuildContextScratch: the
// context, its task-view array, and the per-cell grouping map survive across
// pricing windows, so a caller building one context per window allocates
// nothing in steady state. One instance serves one goroutine; the returned
// context is valid until the scratch's next use.
type ContextScratch struct {
	ctx   PeriodContext
	views []TaskView
	cells map[int][]int
	used  []int   // cells grouped this window (live map keys)
	free  [][]int // retired per-cell index slices, recycled next window
}

// BuildContextScratch is BuildContext with caller-owned scratch state. A nil
// scratch allocates fresh state (exactly BuildContext). Grouping content is
// identical either way; only map identity differs.
func BuildContextScratch(space spatial.Space, period int, tasks []market.Task, workers []market.Worker, graph *match.Graph, sc *ContextScratch) *PeriodContext {
	if sc == nil {
		sc = &ContextScratch{}
	}
	if cap(sc.views) >= len(tasks) {
		sc.views = sc.views[:len(tasks)]
	} else {
		sc.views = make([]TaskView, len(tasks))
	}
	if sc.cells == nil {
		sc.cells = make(map[int][]int)
	}
	// Strategies iterate ctx.Cells, so stale keys must truly leave the map;
	// their index slices are parked on a free list for the new grouping.
	for _, c := range sc.used {
		sc.free = append(sc.free, sc.cells[c][:0])
		delete(sc.cells, c)
	}
	sc.used = sc.used[:0]
	views, cells := sc.views, sc.cells
	for i, t := range tasks {
		cell := space.CellOf(t.Origin)
		views[i] = TaskView{
			ID: t.ID, Origin: t.Origin, Dest: t.Dest,
			Distance: t.Distance, Cell: cell,
		}
		idx, ok := cells[cell]
		if !ok {
			sc.used = append(sc.used, cell)
			if n := len(sc.free); n > 0 {
				idx = sc.free[n-1]
				sc.free = sc.free[:n-1]
			}
		}
		cells[cell] = append(idx, i)
	}
	for _, c := range sc.used {
		sortByDistanceDesc(views, cells[c])
	}
	sc.ctx = PeriodContext{
		Period: period, Space: space, Tasks: views, Workers: workers,
		Graph: graph, Cells: cells,
	}
	return &sc.ctx
}

// sortByDistanceDesc sorts idx (task indices) by views' distance descending;
// insertion sort keeps it allocation-free for the typically short per-cell
// lists.
func sortByDistanceDesc(views []TaskView, idx []int) {
	for i := 1; i < len(idx); i++ {
		j := i
		for j > 0 && views[idx[j-1]].Distance < views[idx[j]].Distance {
			idx[j-1], idx[j] = idx[j], idx[j-1]
			j--
		}
	}
}
