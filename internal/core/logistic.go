package core

import "math"

// LogisticDemand is a parametric alternative to the per-rung UCB estimator:
// it fits the acceptance curve of one grid as a logistic function of price,
//
//	S(p) = 1 / (1 + exp(a + b*p)),   b >= 0,
//
// by online gradient descent on the log-loss of accept/reject outcomes.
// Related work (Section 6.2) notes our problem "adopts the parametric ones,
// which admit the parameters in the structure of the demand function" —
// this type makes that alternative concrete and comparable (ablation A6):
// a parametric fit shares strength across prices (one observation at any
// price informs the whole curve) at the cost of bias when the true demand
// is not logistic.
//
// The zero value is not ready; use NewLogisticDemand.
type LogisticDemand struct {
	a, b float64 // curve parameters; acceptance falls as a + b*p grows
	lr   float64 // learning rate
	n    int
}

// NewLogisticDemand starts from a gently decreasing prior centered at mid.
func NewLogisticDemand(mid float64) *LogisticDemand {
	// Prior: S(mid) = 0.5 with slope b = 1.
	return &LogisticDemand{a: -mid, b: 1, lr: 0.05}
}

// Observe folds one accept/reject outcome at price p into the fit.
func (l *LogisticDemand) Observe(p float64, accepted bool) {
	l.n++
	pred := l.Accept(p)
	y := 0.0
	if accepted {
		y = 1
	}
	// d(logloss)/da = (pred - y), d/db = (pred - y) * p, for
	// S = sigma(-(a + b p)).
	g := pred - y
	l.a -= l.lr * (-g)     // note S uses -(a+bp): gradient flips sign
	l.b -= l.lr * (-g * p) //
	if l.b < 0 {
		l.b = 0 // acceptance must be non-increasing in price
	}
	// Decay the learning rate slowly for stability.
	if l.n%500 == 0 && l.lr > 0.005 {
		l.lr *= 0.9
	}
}

// Accept returns the fitted S(p).
func (l *LogisticDemand) Accept(p float64) float64 {
	return 1 / (1 + math.Exp(l.a+l.b*p))
}

// N returns the number of observations.
func (l *LogisticDemand) N() int { return l.n }

// ParametricMAPS is a MAPS variant whose per-grid pricing maximizes
// min(p*S_fit(p), (D/C)*p) over the candidate ladder using the logistic fit
// instead of the UCB index. It exists to quantify the value of the paper's
// nonparametric UCB choice (ablation A6); it shares all supply-distribution
// machinery with MAPS by embedding.
type ParametricMAPS struct {
	*MAPS
	fits map[int]*LogisticDemand
}

// NewParametricMAPS wraps a fresh MAPS.
func NewParametricMAPS(p Params, basePrice float64) (*ParametricMAPS, error) {
	m, err := NewMAPS(p, basePrice)
	if err != nil {
		return nil, err
	}
	pm := &ParametricMAPS{MAPS: m, fits: make(map[int]*LogisticDemand)}
	return pm, nil
}

// Name implements Strategy.
func (pm *ParametricMAPS) Name() string { return "MAPS-logit" }

// fit returns (creating on demand) the logistic fit of a cell.
func (pm *ParametricMAPS) fit(cell int) *LogisticDemand {
	f, ok := pm.fits[cell]
	if !ok {
		f = NewLogisticDemand((pm.P.PMin + pm.P.PMax) / 2)
		pm.fits[cell] = f
	}
	return f
}

// Prices implements Strategy: before delegating to MAPS's supply loop, it
// overwrites each touched cell's UCB statistics with pseudo-counts from the
// logistic fit, so Algorithm 3's maximizer consumes the parametric curve.
func (pm *ParametricMAPS) Prices(ctx *PeriodContext) []float64 {
	//lint:ordered per-cell fit and per-key map write; no state crosses cells
	for cell := range ctx.Cells {
		f := pm.fit(cell)
		if f.N() == 0 {
			continue
		}
		cs := NewCellStats(pm.ladder)
		const pseudo = 10000
		for _, p := range pm.ladder {
			cs.Seed(p, pseudo, int(pseudo*f.Accept(p)))
		}
		pm.cells[cell] = cs
	}
	return pm.MAPS.Prices(ctx)
}

// Observe implements Strategy: feed outcomes to the logistic fits. The
// embedded MAPS version counter is bumped directly — this override never
// reaches MAPS.Observe, but the fits feed the next Prices call all the
// same, so the cached price vector must invalidate.
func (pm *ParametricMAPS) Observe(ctx *PeriodContext, prices []float64, accepted []bool) {
	if len(ctx.Tasks) > 0 {
		pm.ver++
	}
	for i, tv := range ctx.Tasks {
		pm.fit(tv.Cell).Observe(prices[i], accepted[i])
	}
}
