package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// The persistence format: learned demand statistics survive process
// restarts, so a platform can redeploy its pricing service without paying
// the calibration and exploration cost again. The change-detection windows
// are deliberately not persisted — after a restart the market may have
// moved, so the detector restarts its reference from fresh observations.

// cellSnapshot is the serialized learning state of one grid cell.
type cellSnapshot struct {
	Cell   int         `json:"cell"`
	Total  int         `json:"total"`
	Prices []priceSnap `json:"prices"`
}

type priceSnap struct {
	Price   float64 `json:"price"`
	Tried   int     `json:"tried"`
	Accepts int     `json:"accepts"`
}

// mapsSnapshot is the serialized state of a MAPS strategy.
type mapsSnapshot struct {
	Version   int            `json:"version"`
	BasePrice float64        `json:"base_price"`
	Ladder    []float64      `json:"ladder"`
	Smoothing float64        `json:"smoothing"`
	Cells     []cellSnapshot `json:"cells"`
}

const snapshotVersion = 1

// Snapshot exports a cell's statistics (price rungs with their counts).
func (cs *CellStats) snapshot(cell int) cellSnapshot {
	snap := cellSnapshot{Cell: cell, Total: cs.total}
	for i, p := range cs.ladder {
		st := cs.stat[i]
		if st.tried == 0 {
			continue
		}
		snap.Prices = append(snap.Prices, priceSnap{Price: p, Tried: st.tried, Accepts: st.accepts})
	}
	return snap
}

// SaveState serializes the strategy's learned statistics as JSON.
func (m *MAPS) SaveState(w io.Writer) error {
	snap := mapsSnapshot{
		Version:   snapshotVersion,
		BasePrice: m.basePrice,
		Ladder:    m.ladder,
		Smoothing: m.Smoothing,
	}
	// Deterministic order for stable output.
	cells := make([]int, 0, len(m.cells))
	for c := range m.cells {
		cells = append(cells, c)
	}
	sort.Ints(cells)
	for _, c := range cells {
		snap.Cells = append(snap.Cells, m.cells[c].snapshot(c))
	}
	enc := json.NewEncoder(w)
	return enc.Encode(snap)
}

// LoadState restores a strategy's learned statistics from SaveState output.
// The current ladder and cells are replaced wholesale.
func (m *MAPS) LoadState(r io.Reader) error {
	var snap mapsSnapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("core: decoding MAPS state: %w", err)
	}
	if snap.Version != snapshotVersion {
		return fmt.Errorf("core: unsupported MAPS state version %d", snap.Version)
	}
	if len(snap.Ladder) == 0 {
		return fmt.Errorf("core: MAPS state has an empty price ladder")
	}
	for i := 1; i < len(snap.Ladder); i++ {
		if snap.Ladder[i] <= snap.Ladder[i-1] {
			return fmt.Errorf("core: MAPS state ladder is not increasing at %d", i)
		}
	}
	m.basePrice = m.P.Clamp(snap.BasePrice)
	m.Smoothing = snap.Smoothing
	m.SetLadder(snap.Ladder)
	for _, c := range snap.Cells {
		if c.Cell < 0 {
			return fmt.Errorf("core: MAPS state has negative cell %d", c.Cell)
		}
		cs := m.CellStats(c.Cell)
		seeded := 0
		for _, p := range c.Prices {
			if p.Tried < 0 || p.Accepts < 0 || p.Accepts > p.Tried {
				return fmt.Errorf("core: MAPS state cell %d has invalid counts %+v", c.Cell, p)
			}
			cs.Seed(p.Price, p.Tried, p.Accepts)
			seeded += p.Tried
		}
		// Seed() accumulated per-price totals; align the cell total with the
		// recorded N (probes may have been observed at prices later removed
		// from the ladder).
		if c.Total > seeded {
			cs.total += c.Total - seeded
		}
	}
	return nil
}
