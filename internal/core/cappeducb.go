package core

import "spatialcrowd/internal/stats"

// CappedUCB is the per-grid independent pricing baseline of Section 5.1,
// after Babaioff et al.'s dynamic pricing with limited supply: every grid is
// treated as an isolated market with |W^tg| units of supply, priced at
//
//	argmax_p min(|R^tg| * p * S^g(p), |W^tg| * p)
//
// with every d_r taken as 1 — Eq. (1) with n^tg pinned to the local worker
// count. Acceptance ratios are learned with the same UCB machinery as MAPS,
// but no supply is shared across grids, which is exactly the weakness the
// paper's evaluation exposes.
type CappedUCB struct {
	P Params //lint:snapfields operator config injected at construction, not learned state

	basePrice float64
	ladder    []float64
	cells     map[int]*CellStats

	// counts per cell kept for the memory-profile parity with the paper
	// ("CappedUCB needs to store more information such as the number of
	// tasks and workers in each grid").
	taskCount   map[int]int //lint:snapfields memory-parity telemetry, rebuilt every window
	workerCount map[int]int //lint:snapfields memory-parity telemetry, rebuilt every window

	// ver counts price-relevant state changes; see PriceStateVersion.
	ver uint64 //lint:snapfields cache-invalidation counter; RestoreState bumps it instead of restoring it
}

// NewCappedUCB builds the baseline around a base price fallback.
func NewCappedUCB(p Params, basePrice float64) (*CappedUCB, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	ladder, err := stats.PriceLadder(p.PMin, p.PMax, p.Alpha)
	if err != nil {
		return nil, err
	}
	return &CappedUCB{
		P:           p,
		basePrice:   p.Clamp(basePrice),
		ladder:      ladder,
		cells:       make(map[int]*CellStats),
		taskCount:   make(map[int]int),
		workerCount: make(map[int]int),
	}, nil
}

// Name implements Strategy.
func (c *CappedUCB) Name() string { return "CappedUCB" }

// CellStats returns (creating on demand) the learning state of a cell.
func (c *CappedUCB) CellStats(cell int) *CellStats { return c.cellStats(cell) }

// cellStats returns (creating on demand) the learning state of a cell.
func (c *CappedUCB) cellStats(cell int) *CellStats {
	cs, ok := c.cells[cell]
	if !ok {
		cs = NewCellStats(c.ladder)
		c.cells[cell] = cs
	}
	return cs
}

// Prices implements Strategy.
func (c *CappedUCB) Prices(ctx *PeriodContext) []float64 {
	workers := countWorkersByCell(ctx)
	out := make([]float64, len(ctx.Tasks))
	for cell, n := range workers {
		c.workerCount[cell] = n
	}
	//lint:ordered each grid is priced independently; writes land in per-cell map keys and disjoint out indices
	for cell, tasks := range ctx.Cells {
		c.taskCount[cell] = len(tasks)
		cs := c.cellStats(cell)
		price := c.basePrice
		if cs.Total() > 0 && len(tasks) > 0 {
			// D/C with every d_r = 1: |W^tg| / |R^tg|.
			ratio := float64(workers[cell]) / float64(len(tasks))
			pos, _ := cs.BestIndex(ratio)
			price = c.ladder[pos]
		}
		for _, ti := range tasks {
			out[ti] = price
		}
	}
	return out
}

// Observe implements Strategy: per-grid UCB updates, as in MAPS.
func (c *CappedUCB) Observe(ctx *PeriodContext, prices []float64, accepted []bool) {
	if len(ctx.Tasks) > 0 {
		c.ver++
	}
	for i, tv := range ctx.Tasks {
		c.cellStats(tv.Cell).Observe(prices[i], accepted[i])
	}
}

// PriceStateVersion implements PriceCacheable; the version advances on
// every Observe and snapshot restore.
func (c *CappedUCB) PriceStateVersion() uint64 { return c.ver }
