package core

import (
	"math/rand"
	"testing"

	"spatialcrowd/internal/geo"
	"spatialcrowd/internal/market"
)

// TestBuildContextScratchMatchesFresh drives the reusable context builder
// through many windows of varying shape and checks each context equals a
// freshly built one: same views, same per-cell grouping (content and task
// order), and crucially no stale cells leaking from earlier windows.
func TestBuildContextScratchMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	grid := geo.SquareGrid(100, 6)
	sc := &ContextScratch{}
	for round := 0; round < 60; round++ {
		nt := rng.Intn(50)
		tasks := make([]market.Task, nt)
		for i := range tasks {
			o := geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
			d := geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
			tasks[i] = market.Task{ID: round*1000 + i, Origin: o, Dest: d, Distance: o.Dist(d)}
		}
		workers := make([]market.Worker, rng.Intn(30))
		for i := range workers {
			workers[i] = market.Worker{ID: i, Loc: geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}, Radius: 10}
		}
		graph := market.BuildBipartite(tasks, workers)
		got := BuildContextScratch(grid, round, tasks, workers, graph, sc)
		want := BuildContext(grid, round, tasks, workers, graph)
		if got.Period != want.Period || len(got.Tasks) != len(want.Tasks) {
			t.Fatalf("round %d: context shape diverges", round)
		}
		for i := range want.Tasks {
			if got.Tasks[i] != want.Tasks[i] {
				t.Fatalf("round %d task %d: view %+v, want %+v", round, i, got.Tasks[i], want.Tasks[i])
			}
		}
		if len(got.Cells) != len(want.Cells) {
			t.Fatalf("round %d: %d cells (stale leak?), want %d: %v vs %v",
				round, len(got.Cells), len(want.Cells), got.Cells, want.Cells)
		}
		for cell, wIdx := range want.Cells {
			gIdx, ok := got.Cells[cell]
			if !ok || len(gIdx) != len(wIdx) {
				t.Fatalf("round %d cell %d: grouping %v, want %v", round, cell, gIdx, wIdx)
			}
			for i := range wIdx {
				if gIdx[i] != wIdx[i] {
					t.Fatalf("round %d cell %d: task order %v, want %v", round, cell, gIdx, wIdx)
				}
			}
		}
	}
}
