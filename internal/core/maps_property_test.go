package core

import (
	"math"
	"math/rand"
	"testing"

	"spatialcrowd/internal/geo"
	"spatialcrowd/internal/market"
	"spatialcrowd/internal/stats"
)

// TestLemma9DeltaDecreasing checks the heap-order invariant MAPS relies on
// (Lemma 9): for MHR demand the marginal increase of
// L^g(n) = max_p min(C p S(p), D_n p) is non-increasing in n. The lemma's
// geometric proof lives on the continuous price axis, so the property is
// verified exactly on a dense sweep of the true curve; MAPS's discrete
// ladder maximizer is then checked to track the continuous optimum within
// the rung-quantization band (Δ ordering can wobble a few percent on a
// coarse ladder, which is why the algorithm's guarantee is stated on L, not
// on the ladder).
func TestLemma9DeltaDecreasing(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	fine, err := stats.PriceLadder(1, 5, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 40; trial++ {
		nTasks := 3 + rng.Intn(10)
		m, err := NewMAPS(DefaultParams(), 2)
		if err != nil {
			t.Fatal(err)
		}
		m.SetLadder(fine)
		d := stats.TruncNormal{Mu: 1 + 2.5*rng.Float64(), Sigma: 0.6 + rng.Float64(), Lo: 1, Hi: 5}
		cs := m.CellStats(0)
		for _, p := range cs.Ladder() {
			cs.Seed(p, 5_000_000, int(5_000_000*stats.Accept(d, p)))
		}
		cr := &cellRound{cellID: 0}
		cr.prefix = make([]float64, nTasks)
		dists := make([]float64, nTasks)
		for i := range dists {
			dists[i] = 0.5 + rng.Float64()*9
		}
		sortDesc(dists)
		run := 0.0
		for i, dd := range dists {
			run += dd
			cr.prefix[i] = run
			cr.tasks = append(cr.tasks, i)
		}
		cr.sumDist = run

		// Continuous L by dense sweep.
		contL := func(D float64) float64 {
			best := 0.0
			for p := 1.0; p <= 5.0; p += 0.002 {
				v := math.Min(cr.sumDist*p*stats.Accept(d, p), D*p)
				if v > best {
					best = v
				}
			}
			return best
		}

		prevCont, prevContDelta := 0.0, math.Inf(1)
		for n := 1; n <= nTasks; n++ {
			// (i) Lemma 9 exactly on the continuous curve.
			cl := contL(cr.topDistSum(n))
			cd := cl - prevCont
			if cd > prevContDelta*(1+1e-6)+1e-9 {
				t.Fatalf("trial %d: continuous Delta increased at n=%d (%v -> %v)",
					trial, n, prevContDelta, cd)
			}
			prevCont, prevContDelta = cl, cd

			// (ii) The ladder maximizer tracks the continuous optimum.
			_, l := m.maximizer(cr, n)
			if cl > 0 && (l < cl*0.93 || l > cl*1.05) {
				t.Fatalf("trial %d n=%d: ladder L=%v vs continuous %v", trial, n, l, cl)
			}
		}
	}
}

func sortDesc(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j-1] < xs[j]; j-- {
			xs[j-1], xs[j] = xs[j], xs[j-1]
		}
	}
}

// TestMaximizerFigure4Cases exercises the three supply regimes of Figure 4.
func TestMaximizerFigure4Cases(t *testing.T) {
	m, err := NewMAPS(Params{PMin: 1, PMax: 3, Alpha: 0.5, Eps: 0.2, Delta: 0.01}, 2)
	if err != nil {
		t.Fatal(err)
	}
	m.SetLadder([]float64{1, 2, 3})
	cs := m.CellStats(0)
	// Table 1 curve with near-exact statistics: revenue p*S(p) maximal at 2.
	cs.Seed(1, 5_000_000, 4_500_000)
	cs.Seed(2, 5_000_000, 4_000_000)
	cs.Seed(3, 5_000_000, 2_500_000)

	mkRound := func(dists ...float64) *cellRound {
		cr := &cellRound{cellID: 0}
		cr.prefix = make([]float64, len(dists))
		run := 0.0
		for i, d := range dists {
			run += d
			cr.prefix[i] = run
			cr.tasks = append(cr.tasks, i)
		}
		cr.sumDist = run
		return cr
	}

	// Case 1 (sufficient supply): n >= |R|, D/C = 1 — the Myerson rung (2)
	// maximizes.
	cr := mkRound(1, 1, 1)
	price, _ := m.maximizer(cr, 3)
	if price != 2 {
		t.Errorf("case 1: price %v, want Myerson rung 2", price)
	}

	// Case 2 (limited supply, Myerson still feasible): one worker, top
	// distance dominating the demand mass => D/C large enough that the cap
	// doesn't cut below the Myerson point.
	cr = mkRound(10, 0.1, 0.1)
	price, _ = m.maximizer(cr, 1)
	if price != 2 {
		t.Errorf("case 2: price %v, want 2", price)
	}

	// Case 3 (scarce supply): D/C small => the intersection price, above
	// Myerson, wins. D/C = 1/11 here: cap*3 = 0.27 > cap-limited values of
	// lower rungs, and ucb(3)=1.5 doesn't bind.
	cr = mkRound(1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1)
	price, _ = m.maximizer(cr, 1)
	if price != 3 {
		t.Errorf("case 3: price %v, want intersection rung 3", price)
	}
}

// TestMAPSDeterministicGivenStats verifies Prices is a pure function of the
// context and statistics (no hidden randomness) — two identical calls give
// identical prices.
func TestMAPSDeterministicGivenStats(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	grid := geo.SquareGrid(50, 5)
	var tasks []market.Task
	for i := 0; i < 40; i++ {
		o := geo.Point{X: rng.Float64() * 50, Y: rng.Float64() * 50}
		tasks = append(tasks, market.Task{ID: i, Origin: o, Distance: 1 + rng.Float64()*5})
	}
	var workers []market.Worker
	for i := 0; i < 15; i++ {
		workers = append(workers, market.Worker{ID: i,
			Loc: geo.Point{X: rng.Float64() * 50, Y: rng.Float64() * 50}, Radius: 12})
	}
	ctx := BuildContext(grid, 0, tasks, workers, market.BuildBipartite(tasks, workers))
	m, _ := NewMAPS(DefaultParams(), 2)
	for cell := range ctx.Cells {
		cs := m.CellStats(cell)
		for _, p := range cs.Ladder() {
			cs.Seed(p, 1000, int(1000*(1-p/6)))
		}
	}
	p1 := m.Prices(ctx)
	p2 := m.Prices(ctx)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("non-deterministic price at task %d: %v vs %v", i, p1[i], p2[i])
		}
	}
}

// TestBasePWarmStartTransfersCalibration ensures every probe base pricing
// spends lands in the warm-started learner's statistics.
func TestBasePWarmStartTransfersCalibration(t *testing.T) {
	params := DefaultParams()
	b, _ := NewBaseP(params)
	oracle := &distOracle{def: exampleTruncNormal(), rng: rand.New(rand.NewSource(9))}
	if err := b.Calibrate(oracle, 3, 40); err != nil {
		t.Fatal(err)
	}
	m, _ := NewMAPS(params, b.BasePrice())
	b.WarmStart(m.CellStats)
	totalSeeded := 0
	for cell := 0; cell < 3; cell++ {
		totalSeeded += m.CellStats(cell).Total()
	}
	if totalSeeded != b.ProbeCount() {
		t.Errorf("warm start transferred %d of %d probes", totalSeeded, b.ProbeCount())
	}
	// Per-cell samples are exposed too.
	if got := b.Samples(0); len(got) == 0 {
		t.Error("no samples recorded for cell 0")
	}
	if b.Samples(99) != nil || b.Samples(-1) != nil {
		t.Error("out-of-range samples should be nil")
	}
}
