package core

import "spatialcrowd/internal/match"

// preMatcher maintains MAPS's pre-matching M′ (Algorithm 2): an incremental
// matching over the period's bipartite graph used purely to validate that a
// grid can absorb one more unit of supply without violating the range
// constraints or double-booking a worker. The matcher and its candidate
// buffer are reused across periods (reset re-arms them), so steady-state
// validation allocates nothing.
type preMatcher struct {
	inc *match.Incremental
	buf []int // unassigned-candidate buffer, reused across probes
}

// newPreMatcher wraps the period's graph.
func newPreMatcher(ctx *PeriodContext) *preMatcher {
	pm := &preMatcher{}
	pm.reset(ctx)
	return pm
}

// reset re-arms the pre-matcher over a new period's graph, reusing the
// incremental matcher's arrays.
func (pm *preMatcher) reset(ctx *PeriodContext) {
	if pm.inc == nil {
		pm.inc = match.NewIncremental(ctx.Graph)
	} else {
		pm.inc.Reset(ctx.Graph)
	}
}

// unassigned collects the cell's tasks that are not yet in M′, preserving the
// distance-descending order so the supply curve consumes the largest
// distances first. The returned slice is the reused buffer, valid until the
// next unassigned call.
func (pm *preMatcher) unassigned(cr *cellRound) []int {
	pm.buf = pm.buf[:0]
	for _, ti := range cr.tasks {
		if !pm.inc.Matched(ti) {
			pm.buf = append(pm.buf, ti)
		}
	}
	return pm.buf
}

// augmentOne commits one more of the cell's tasks into M′ via an augmenting
// path (Algorithm 2, line 10). It reports whether a path existed.
func (pm *preMatcher) augmentOne(cell int, cr *cellRound) bool {
	return pm.inc.TryAugmentAny(pm.unassigned(cr)) >= 0
}

// canAugment reports whether some unassigned task of the cell admits an
// augmenting path, without mutating M′ (Algorithm 2, line 16).
func (pm *preMatcher) canAugment(cell int, cr *cellRound) bool {
	return pm.inc.CanAugmentAny(pm.unassigned(cr))
}

// matching exposes M′ for tests.
func (pm *preMatcher) matching() *match.Matching { return pm.inc.Matching() }
