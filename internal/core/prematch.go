package core

import "spatialcrowd/internal/match"

// preMatcher maintains MAPS's pre-matching M′ (Algorithm 2): an incremental
// matching over the period's bipartite graph used purely to validate that a
// grid can absorb one more unit of supply without violating the range
// constraints or double-booking a worker.
type preMatcher struct {
	inc *match.Incremental
}

// newPreMatcher wraps the period's graph.
func newPreMatcher(ctx *PeriodContext) *preMatcher {
	return &preMatcher{inc: match.NewIncremental(ctx.Graph)}
}

// unassigned collects the cell's tasks that are not yet in M′, preserving the
// distance-descending order so the supply curve consumes the largest
// distances first.
func (pm *preMatcher) unassigned(cr *cellRound) []int {
	out := make([]int, 0, len(cr.tasks))
	for _, ti := range cr.tasks {
		if !pm.inc.Matched(ti) {
			out = append(out, ti)
		}
	}
	return out
}

// augmentOne commits one more of the cell's tasks into M′ via an augmenting
// path (Algorithm 2, line 10). It reports whether a path existed.
func (pm *preMatcher) augmentOne(cell int, cr *cellRound) bool {
	return pm.inc.TryAugmentAny(pm.unassigned(cr)) >= 0
}

// canAugment reports whether some unassigned task of the cell admits an
// augmenting path, without mutating M′ (Algorithm 2, line 16).
func (pm *preMatcher) canAugment(cell int, cr *cellRound) bool {
	return pm.inc.CanAugmentAny(pm.unassigned(cr))
}

// matching exposes M′ for tests.
func (pm *preMatcher) matching() *match.Matching { return pm.inc.Matching() }
