package core

import (
	"math"
	"math/rand"
	"testing"

	"spatialcrowd/internal/geo"
	"spatialcrowd/internal/market"
	"spatialcrowd/internal/match"
	"spatialcrowd/internal/stats"
)

// distOracle implements ProbeOracle from per-cell valuation distributions.
type distOracle struct {
	dists map[int]stats.Dist
	def   stats.Dist
	rng   *rand.Rand
}

func (o *distOracle) Probe(cell int, price float64) bool {
	d := o.def
	if dd, ok := o.dists[cell]; ok {
		d = dd
	}
	return price <= d.Sample(o.rng)
}

func TestParamsValidate(t *testing.T) {
	cases := []struct {
		name string
		p    Params
		ok   bool
	}{
		{"defaults", DefaultParams(), true},
		{"zero pmin", Params{PMin: 0, PMax: 5, Alpha: 0.5, Eps: 0.2, Delta: 0.01}, false},
		{"pmax < pmin", Params{PMin: 2, PMax: 1, Alpha: 0.5, Eps: 0.2, Delta: 0.01}, false},
		{"zero alpha", Params{PMin: 1, PMax: 5, Alpha: 0, Eps: 0.2, Delta: 0.01}, false},
		{"zero eps", Params{PMin: 1, PMax: 5, Alpha: 0.5, Eps: 0, Delta: 0.01}, false},
		{"delta = 1", Params{PMin: 1, PMax: 5, Alpha: 0.5, Eps: 0.2, Delta: 1}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := c.p.Validate(); (err == nil) != c.ok {
				t.Errorf("Validate() err=%v, want ok=%v", err, c.ok)
			}
		})
	}
}

func TestParamsClamp(t *testing.T) {
	p := DefaultParams()
	if p.Clamp(0.5) != 1 || p.Clamp(7) != 5 || p.Clamp(3) != 3 {
		t.Error("Clamp wrong")
	}
}

func TestBasePCalibration(t *testing.T) {
	// Two cells with known truncated-normal demand; the estimated reserve
	// must be close to the true per-grid Myerson reserve, and the base price
	// the average of the two.
	p := DefaultParams()
	b, err := NewBaseP(p)
	if err != nil {
		t.Fatal(err)
	}
	d0 := stats.TruncNormal{Mu: 1.5, Sigma: 0.8, Lo: 1, Hi: 5}
	d1 := stats.TruncNormal{Mu: 3.5, Sigma: 0.8, Lo: 1, Hi: 5}
	oracle := &distOracle{
		dists: map[int]stats.Dist{0: d0, 1: d1},
		rng:   rand.New(rand.NewSource(42)),
	}
	if err := b.Calibrate(oracle, 2, 0); err != nil {
		t.Fatal(err)
	}
	ladder, _ := stats.PriceLadder(p.PMin, p.PMax, p.Alpha)
	bestOn := func(d stats.Dist) float64 {
		best, bestRev := ladder[0], -1.0
		for _, lp := range ladder {
			if rev := stats.RevenueAt(d, lp); rev > bestRev {
				best, bestRev = lp, rev
			}
		}
		return best
	}
	res := b.Reserves()
	if len(res) != 2 {
		t.Fatalf("reserves = %v", res)
	}
	// With h(p) in the hundreds the estimate should land on the true best
	// ladder rung (the revenue gaps here are far above eps).
	if res[0] != bestOn(d0) {
		t.Errorf("cell 0 reserve = %v, want %v", res[0], bestOn(d0))
	}
	if res[1] != bestOn(d1) {
		t.Errorf("cell 1 reserve = %v, want %v", res[1], bestOn(d1))
	}
	if pb := b.BasePrice(); math.Abs(pb-(res[0]+res[1])/2) > 1e-12 {
		t.Errorf("base price %v is not the mean of %v", pb, res)
	}
	if b.ProbeCount() == 0 {
		t.Error("calibration should consume probes")
	}
}

func TestBasePTheorem3Bound(t *testing.T) {
	// Theorem 3: p_m S(p_m) >= (1 - alpha) p* S(p*) with high probability.
	// Check over several MHR demand curves and seeds.
	p := DefaultParams()
	for seed := int64(0); seed < 8; seed++ {
		mu := 1.2 + float64(seed)*0.4
		d := stats.TruncNormal{Mu: mu, Sigma: 1.0, Lo: 1, Hi: 5}
		b, _ := NewBaseP(p)
		oracle := &distOracle{def: d, rng: rand.New(rand.NewSource(seed))}
		if err := b.Calibrate(oracle, 1, 0); err != nil {
			t.Fatal(err)
		}
		pm := b.Reserves()[0]
		pstar := stats.MyersonReserve(d, p.PMin, p.PMax)
		lhs := stats.RevenueAt(d, pm)
		rhs := (1 - p.Alpha) * stats.RevenueAt(d, pstar)
		if lhs < rhs-0.05 { // small slack for sampling noise beyond eps
			t.Errorf("seed %d: p_m=%v gives %v < (1-alpha)*OPT %v (p*=%v)",
				seed, pm, lhs, rhs, pstar)
		}
	}
}

func TestBasePCalibrateErrors(t *testing.T) {
	b, _ := NewBaseP(DefaultParams())
	if err := b.Calibrate(nil, 2, 0); err == nil {
		t.Error("nil oracle should error")
	}
	if err := b.Calibrate(&distOracle{def: stats.Uniform{Lo: 1, Hi: 5}, rng: rand.New(rand.NewSource(1))}, 0, 0); err == nil {
		t.Error("zero cells should error")
	}
	if _, err := NewBaseP(Params{}); err == nil {
		t.Error("invalid params should error")
	}
}

func TestBasePUncalibratedFallback(t *testing.T) {
	b, _ := NewBaseP(DefaultParams())
	if pb := b.BasePrice(); pb != 3 {
		t.Errorf("uncalibrated base price = %v, want midpoint 3", pb)
	}
	b.SetBasePrice(2.2)
	if pb := b.BasePrice(); pb != 2.2 {
		t.Errorf("base price = %v, want 2.2", pb)
	}
	b.SetBasePrice(99)
	if pb := b.BasePrice(); pb != 5 {
		t.Errorf("base price should clamp to 5, got %v", pb)
	}
}

func TestBasePPricesUniform(t *testing.T) {
	b, _ := NewBaseP(DefaultParams())
	b.SetBasePrice(2.5)
	ctx := exampleContext(t)
	prices := b.Prices(ctx)
	for i, p := range prices {
		if p != 2.5 {
			t.Errorf("task %d priced %v, want 2.5", i, p)
		}
	}
	b.Observe(ctx, prices, make([]bool, len(prices))) // must not panic
}

func TestCellStatsObserveAndMean(t *testing.T) {
	cs := NewCellStats([]float64{1, 2, 3})
	for i := 0; i < 10; i++ {
		cs.Observe(2, i < 8) // 8 accepts of 10
	}
	if got := cs.MeanAt(2); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("mean = %v, want 0.8", got)
	}
	if cs.TriedAt(2) != 10 || cs.Total() != 10 {
		t.Errorf("tried=%d total=%d", cs.TriedAt(2), cs.Total())
	}
	if cs.MeanAt(1) != 0 {
		t.Error("untried price should have zero mean")
	}
	// Nearest-rung snapping: 2.2 maps to rung 2.
	cs.Observe(2.2, true)
	if cs.TriedAt(2) != 11 {
		t.Error("observation at 2.2 should snap to rung 2")
	}
}

func TestCellStatsIndexCap(t *testing.T) {
	cs := NewCellStats([]float64{1, 2, 3})
	cs.Seed(2, 1000, 800)
	// Large supply: cap never binds, index = UCB term.
	idx := cs.Index(1, 10)
	want := 2*0.8 + stats.UCBRadius(2, 1000, 1000)
	if math.Abs(idx-want) > 1e-12 {
		t.Errorf("index = %v, want %v", idx, want)
	}
	// Tight supply: cap binds.
	if got := cs.Index(1, 0.1); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("capped index = %v, want 0.2", got)
	}
	// Unexplored price with observations elsewhere: index equals the cap.
	if got := cs.Index(0, 0.3); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("unexplored index = %v, want cap 0.3", got)
	}
}

func TestCellStatsBestIndexPaperExample5(t *testing.T) {
	// Grid 9 of Example 5: C=2.0, top-1 distance 1.3 => D/C = 0.65 and
	// Table 1 ratios. Best index must be price 3 with value 1.5
	// (=> increase 3.0 after scaling by C).
	cs := NewCellStats([]float64{1, 2, 3})
	cs.Seed(1, 100000, 90000)
	cs.Seed(2, 100000, 80000)
	cs.Seed(3, 100000, 50000)
	pos, val := cs.BestIndex(0.65)
	if cs.Ladder()[pos] != 3 {
		t.Fatalf("best price = %v, want 3", cs.Ladder()[pos])
	}
	if math.Abs(val-1.5) > 0.06 { // UCB radius ~0.05 at N=3e5
		t.Errorf("best index = %v, want ~1.5", val)
	}
	// Grid 11: D/C = 1.0 => best price 2, value ~1.6.
	pos, val = cs.BestIndex(1.0)
	if cs.Ladder()[pos] != 2 {
		t.Fatalf("best price = %v, want 2", cs.Ladder()[pos])
	}
	if math.Abs(val-1.6) > 0.06 {
		t.Errorf("best index = %v, want ~1.6", val)
	}
}

func TestCellStatsChangeDetection(t *testing.T) {
	cs := NewCellStats([]float64{2})
	cs.ChangeWindow = 32
	rng := rand.New(rand.NewSource(9))
	// Learn S(2) = 0.9.
	for i := 0; i < 500; i++ {
		cs.Observe(2, rng.Float64() < 0.9)
	}
	if m := cs.MeanAt(2); math.Abs(m-0.9) > 0.05 {
		t.Fatalf("learned mean %v, want ~0.9", m)
	}
	// Demand collapses to 0.2: the detector must fire and re-learn.
	for i := 0; i < 500; i++ {
		cs.Observe(2, rng.Float64() < 0.2)
	}
	if cs.Changes == 0 {
		t.Fatal("change detector never fired")
	}
	if m := cs.MeanAt(2); math.Abs(m-0.2) > 0.1 {
		t.Errorf("post-change mean %v, want ~0.2 (history dropped)", m)
	}
}

func TestCellStatsNoFalseChangeUnderStationaryDemand(t *testing.T) {
	cs := NewCellStats([]float64{2})
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 5000; i++ {
		cs.Observe(2, rng.Float64() < 0.7)
	}
	// A handful of resets is tolerable (2-sigma fires ~5% of windows); what
	// matters is the estimate stays sharp.
	if m := cs.MeanAt(2); math.Abs(m-0.7) > 0.08 {
		t.Errorf("stationary mean drifted to %v", m)
	}
}

// exampleContext builds the period context of the paper's running example:
// grid of 16 cells over [0,8]^2; r1(d=1.3) and r2(d=0.7) in cell 8
// (paper grid 9), r3(d=1.0) in cell 10 (paper grid 11); workers w1(3,5),
// w2(7,5), w3(5,3) with radius 2.5.
func exampleContext(t *testing.T) *PeriodContext {
	t.Helper()
	grid := geo.SquareGrid(8, 4)
	tasks := []market.Task{
		{ID: 1, Origin: geo.Point{X: 1, Y: 5}, Dest: geo.Point{X: 1, Y: 6.3}, Distance: 1.3},
		{ID: 2, Origin: geo.Point{X: 1.5, Y: 5.5}, Dest: geo.Point{X: 1.5, Y: 6.2}, Distance: 0.7},
		{ID: 3, Origin: geo.Point{X: 5, Y: 5}, Dest: geo.Point{X: 5, Y: 6}, Distance: 1.0},
	}
	workers := []market.Worker{
		{ID: 1, Loc: geo.Point{X: 3, Y: 5}, Radius: 2.5},
		{ID: 2, Loc: geo.Point{X: 7, Y: 5}, Radius: 2.5},
		{ID: 3, Loc: geo.Point{X: 5, Y: 3}, Radius: 2.5},
	}
	graph := market.BuildBipartite(tasks, workers)
	// Topology sanity: r1,r2 only reach w1; r3 reaches all three.
	if len(graph.Adj(0)) != 1 || len(graph.Adj(1)) != 1 || len(graph.Adj(2)) != 3 {
		t.Fatalf("example graph degrees %d/%d/%d, want 1/1/3",
			len(graph.Adj(0)), len(graph.Adj(1)), len(graph.Adj(2)))
	}
	return BuildContext(grid, 0, tasks, workers, graph)
}

func TestMAPSPaperExample5(t *testing.T) {
	// With Table 1 statistics pre-seeded, MAPS must reproduce Example 5:
	// price 3 for the grid of r1/r2 and price 2 for the grid of r3, with one
	// worker of supply each.
	ctx := exampleContext(t)
	m, err := NewMAPS(Params{PMin: 1, PMax: 3, Alpha: 0.5, Eps: 0.2, Delta: 0.01}, 2)
	if err != nil {
		t.Fatal(err)
	}
	m.SetLadder([]float64{1, 2, 3})
	for _, cell := range []int{8, 10} {
		cs := m.CellStats(cell)
		cs.Seed(1, 100000, 90000)
		cs.Seed(2, 100000, 80000)
		cs.Seed(3, 100000, 50000)
	}
	prices := m.Prices(ctx)
	if prices[0] != 3 || prices[1] != 3 {
		t.Errorf("grid-9 tasks priced %v/%v, want 3/3 (Example 5)", prices[0], prices[1])
	}
	if prices[2] != 2 {
		t.Errorf("grid-11 task priced %v, want 2 (Example 5)", prices[2])
	}
	if m.LastSupply[8] != 1 {
		t.Errorf("grid 9 supply = %d, want 1 (r2 has no augmenting path)", m.LastSupply[8])
	}
	if m.LastSupply[10] != 1 {
		t.Errorf("grid 11 supply = %d, want 1", m.LastSupply[10])
	}
}

func TestMAPSSameCellSamePrice(t *testing.T) {
	// Definition 1: one price per grid per period.
	rng := rand.New(rand.NewSource(4))
	grid := geo.SquareGrid(100, 5)
	var tasks []market.Task
	for i := 0; i < 60; i++ {
		o := geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		tasks = append(tasks, market.Task{
			ID: i, Origin: o, Dest: geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100},
			Distance: 1 + rng.Float64()*10,
		})
	}
	var workers []market.Worker
	for i := 0; i < 20; i++ {
		workers = append(workers, market.Worker{
			ID: i, Loc: geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}, Radius: 20,
		})
	}
	graph := market.BuildBipartite(tasks, workers)
	ctx := BuildContext(grid, 0, tasks, workers, graph)

	m, _ := NewMAPS(DefaultParams(), 2)
	// Train with random observations so prices move off the base price.
	for round := 0; round < 30; round++ {
		prices := m.Prices(ctx)
		accepted := make([]bool, len(prices))
		for i := range accepted {
			accepted[i] = rng.Float64() < 0.6
		}
		m.Observe(ctx, prices, accepted)
	}
	prices := m.Prices(ctx)
	perCell := map[int]float64{}
	for i, tv := range ctx.Tasks {
		if prev, ok := perCell[tv.Cell]; ok && prev != prices[i] {
			t.Fatalf("cell %d has two prices %v and %v", tv.Cell, prev, prices[i])
		}
		perCell[tv.Cell] = prices[i]
		if prices[i] < 1-1e-9 || prices[i] > 5+1e-9 {
			t.Fatalf("price %v out of [1,5]", prices[i])
		}
	}
}

func TestMAPSSupplyRespectsMatchingFeasibility(t *testing.T) {
	// Total allocated supply can never exceed the maximum matching size of
	// the bipartite graph (every admitted unit is one augmenting path).
	rng := rand.New(rand.NewSource(5))
	grid := geo.SquareGrid(100, 4)
	for trial := 0; trial < 20; trial++ {
		nt, nw := 1+rng.Intn(25), 1+rng.Intn(10)
		var tasks []market.Task
		for i := 0; i < nt; i++ {
			tasks = append(tasks, market.Task{
				ID: i, Origin: geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100},
				Distance: 1 + rng.Float64()*5,
			})
		}
		var workers []market.Worker
		for i := 0; i < nw; i++ {
			workers = append(workers, market.Worker{
				ID: i, Loc: geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100},
				Radius: 15 + rng.Float64()*20,
			})
		}
		graph := market.BuildBipartite(tasks, workers)
		ctx := BuildContext(grid, 0, tasks, workers, graph)
		m, _ := NewMAPS(DefaultParams(), 2)
		// Seed moderate stats so supply allocation actually happens.
		for cell := range ctx.Cells {
			cs := m.CellStats(cell)
			for _, p := range cs.Ladder() {
				cs.Seed(p, 200, int(200*(1-p/6)))
			}
		}
		m.Prices(ctx)
		totalSupply := 0
		for _, n := range m.LastSupply {
			totalSupply += n
		}
		maxMatch := match.MaxCardinality(ctx.Graph).Size()
		if totalSupply > maxMatch {
			t.Fatalf("trial %d: supply %d > max matching %d", trial, totalSupply, maxMatch)
		}
	}
}

func TestMAPSEmptyPeriod(t *testing.T) {
	grid := geo.SquareGrid(10, 2)
	graph := market.BuildBipartite(nil, nil)
	ctx := BuildContext(grid, 0, nil, nil, graph)
	m, _ := NewMAPS(DefaultParams(), 2)
	if got := m.Prices(ctx); len(got) != 0 {
		t.Errorf("empty period priced %v", got)
	}
}

func TestMAPSNoWorkers(t *testing.T) {
	grid := geo.SquareGrid(10, 2)
	tasks := []market.Task{{ID: 0, Origin: geo.Point{X: 1, Y: 1}, Distance: 2}}
	graph := market.BuildBipartite(tasks, nil)
	ctx := BuildContext(grid, 0, tasks, nil, graph)
	m, _ := NewMAPS(DefaultParams(), 2.5)
	prices := m.Prices(ctx)
	// No supply anywhere: grid retires immediately at the base price.
	if prices[0] != 2.5 {
		t.Errorf("price = %v, want base price 2.5", prices[0])
	}
	if m.LastSupply[ctx.Tasks[0].Cell] != 0 {
		t.Error("supply should be zero without workers")
	}
}

func TestMAPSUnseenCellKeepsBasePrice(t *testing.T) {
	ctx := exampleContext(t)
	m, _ := NewMAPS(DefaultParams(), 2)
	prices := m.Prices(ctx) // no statistics at all
	for i, p := range prices {
		if p != 2 {
			t.Errorf("task %d priced %v, want base price 2 before any learning", i, p)
		}
	}
}

func TestMAPSObservePanicsOnMismatch(t *testing.T) {
	ctx := exampleContext(t)
	m, _ := NewMAPS(DefaultParams(), 2)
	defer func() {
		if recover() == nil {
			t.Error("mismatched Observe should panic")
		}
	}()
	m.Observe(ctx, []float64{1}, []bool{true})
}

func TestMAPSLearnsFromFeedback(t *testing.T) {
	// Online use: run many periods against a fixed hidden demand and check
	// the learned acceptance ratio converges near truth.
	ctx := exampleContext(t)
	m, _ := NewMAPS(Params{PMin: 1, PMax: 3, Alpha: 0.5, Eps: 0.2, Delta: 0.01}, 2)
	m.SetLadder([]float64{1, 2, 3})
	table := map[float64]float64{1: 0.9, 2: 0.8, 3: 0.5}
	rng := rand.New(rand.NewSource(31))
	const rounds, tail = 30000, 2000
	r3AtTwo := 0
	for round := 0; round < rounds; round++ {
		prices := m.Prices(ctx)
		accepted := make([]bool, len(prices))
		for i, p := range prices {
			accepted[i] = rng.Float64() < table[p]
		}
		m.Observe(ctx, prices, accepted)
		if round >= rounds-tail && prices[2] == 2 {
			r3AtTwo++
		}
	}
	// The grid-11 cell (r3, cell 10) has D/C = 1: its optimum is price 2
	// (1.6 vs 1.5 revenue). UCB should mostly play 2 late in the run.
	cs := m.CellStats(10)
	if n := cs.TriedAt(2); n == 0 {
		t.Fatal("price 2 never explored in cell 10")
	}
	if mean := cs.MeanAt(2); math.Abs(mean-0.8) > 0.1 {
		t.Errorf("learned S(2) = %v, want ~0.8", mean)
	}
	if frac := float64(r3AtTwo) / tail; frac < 0.6 {
		t.Errorf("r3 priced at 2 in only %.0f%% of the last %d rounds", frac*100, tail)
	}
}

func TestSDRPricing(t *testing.T) {
	ctx := exampleContext(t)
	s, err := NewSDR(DefaultParams(), 2)
	if err != nil {
		t.Fatal(err)
	}
	prices := s.Prices(ctx)
	// Cell 8 (r1, r2): 2 tasks, 0 workers located in the cell => capped at pmax.
	if prices[0] != 5 || prices[1] != 5 {
		t.Errorf("starved cell priced %v/%v, want pmax 5", prices[0], prices[1])
	}
	// Cell 10 (r3): 1 task, 0 workers in cell => also starved.
	if prices[2] != 5 {
		t.Errorf("r3 priced %v, want 5", prices[2])
	}
	s.Observe(ctx, prices, make([]bool, 3))
}

func TestSDRBalancedUsesBase(t *testing.T) {
	grid := geo.SquareGrid(10, 1)
	tasks := []market.Task{{ID: 0, Origin: geo.Point{X: 5, Y: 5}, Distance: 1}}
	workers := []market.Worker{
		{ID: 0, Loc: geo.Point{X: 5, Y: 5}, Radius: 5},
		{ID: 1, Loc: geo.Point{X: 6, Y: 5}, Radius: 5},
	}
	ctx := BuildContext(grid, 0, tasks, workers, market.BuildBipartite(tasks, workers))
	s, _ := NewSDR(DefaultParams(), 2)
	if p := s.Prices(ctx)[0]; p != 2 {
		t.Errorf("balanced market priced %v, want base 2", p)
	}
	// Imbalanced: 3 tasks 1 worker => 0.5 * 2 * 3/1 = 3.
	tasks = append(tasks,
		market.Task{ID: 1, Origin: geo.Point{X: 4, Y: 5}, Distance: 1},
		market.Task{ID: 2, Origin: geo.Point{X: 5, Y: 4}, Distance: 1})
	workers = workers[:1]
	ctx = BuildContext(grid, 0, tasks, workers, market.BuildBipartite(tasks, workers))
	if p := s.Prices(ctx)[0]; p != 3 {
		t.Errorf("imbalanced market priced %v, want 3", p)
	}
}

func TestSDEPricing(t *testing.T) {
	grid := geo.SquareGrid(10, 1)
	tasks := []market.Task{
		{ID: 0, Origin: geo.Point{X: 5, Y: 5}, Distance: 1},
		{ID: 1, Origin: geo.Point{X: 4, Y: 5}, Distance: 1},
		{ID: 2, Origin: geo.Point{X: 5, Y: 4}, Distance: 1},
	}
	workers := []market.Worker{{ID: 0, Loc: geo.Point{X: 5, Y: 5}, Radius: 5}}
	ctx := BuildContext(grid, 0, tasks, workers, market.BuildBipartite(tasks, workers))
	s, err := NewSDE(DefaultParams(), 2)
	if err != nil {
		t.Fatal(err)
	}
	// |W|-|R| = -2: p = 2 * (1 + 2 e^{-2}) ~ 2.54.
	want := 2 * (1 + 2*math.Exp(-2))
	if p := s.Prices(ctx)[0]; math.Abs(p-want) > 1e-9 {
		t.Errorf("SDE price = %v, want %v", p, want)
	}
	// Balanced market: base price.
	workers = append(workers, market.Worker{ID: 1, Loc: geo.Point{X: 6, Y: 5}, Radius: 5},
		market.Worker{ID: 2, Loc: geo.Point{X: 5, Y: 6}, Radius: 5})
	ctx = BuildContext(grid, 0, tasks, workers, market.BuildBipartite(tasks, workers))
	if p := s.Prices(ctx)[0]; p != 2 {
		t.Errorf("balanced SDE price = %v, want 2", p)
	}
	s.Observe(ctx, s.Prices(ctx), make([]bool, 3))
}

func TestCappedUCBLearnsSingleMarket(t *testing.T) {
	// One grid, plentiful supply: CappedUCB should converge to the Myerson
	// rung of the ladder, like any UCB pricer in a single market.
	grid := geo.SquareGrid(10, 1)
	var tasks []market.Task
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 20; i++ {
		tasks = append(tasks, market.Task{
			ID: i, Origin: geo.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10}, Distance: 1,
		})
	}
	var workers []market.Worker
	for i := 0; i < 40; i++ {
		workers = append(workers, market.Worker{
			ID: i, Loc: geo.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10}, Radius: 15,
		})
	}
	ctx := BuildContext(grid, 0, tasks, workers, market.BuildBipartite(tasks, workers))
	c, err := NewCappedUCB(DefaultParams(), 2)
	if err != nil {
		t.Fatal(err)
	}
	d := stats.TruncNormal{Mu: 2, Sigma: 1, Lo: 1, Hi: 5}
	for round := 0; round < 500; round++ {
		prices := c.Prices(ctx)
		accepted := make([]bool, len(prices))
		for i, p := range prices {
			accepted[i] = p <= d.Sample(rng)
		}
		c.Observe(ctx, prices, accepted)
	}
	// The best rung on the ladder for this demand curve:
	ladder, _ := stats.PriceLadder(1, 5, 0.5)
	best, bestRev := ladder[0], -1.0
	for _, p := range ladder {
		if rev := stats.RevenueAt(d, p); rev > bestRev {
			best, bestRev = p, rev
		}
	}
	final := c.Prices(ctx)[0]
	if math.Abs(final-best) > 0.8 {
		t.Errorf("CappedUCB converged to %v, Myerson rung is %v", final, best)
	}
}

func TestBuildContextGrouping(t *testing.T) {
	ctx := exampleContext(t)
	if len(ctx.Cells) != 2 {
		t.Fatalf("cells = %v, want 2 groups", ctx.Cells)
	}
	g9 := ctx.Cells[8]
	if len(g9) != 2 {
		t.Fatalf("cell 8 has %d tasks, want 2", len(g9))
	}
	// Distance-descending: r1 (1.3) before r2 (0.7).
	if ctx.Tasks[g9[0]].Distance != 1.3 || ctx.Tasks[g9[1]].Distance != 0.7 {
		t.Errorf("cell 8 order wrong: %v then %v",
			ctx.Tasks[g9[0]].Distance, ctx.Tasks[g9[1]].Distance)
	}
	if len(ctx.Cells[10]) != 1 {
		t.Errorf("cell 10 tasks = %v, want 1", ctx.Cells[10])
	}
}

func exampleTruncNormal() stats.Dist {
	return stats.TruncNormal{Mu: 2, Sigma: 1, Lo: 1, Hi: 5}
}
