package core

import (
	"fmt"
	"math"

	"spatialcrowd/internal/stats"
)

// MAPS is the matching-based dynamic pricing strategy of Section 4
// (Algorithms 2 and 3). Each period it:
//
//  1. builds the task–worker bipartite graph (supplied via the context),
//  2. greedily distributes the dependent supply: a max-heap over grids
//     repeatedly admits one more worker to the grid with the largest
//     marginal increase Δ^g of the approximate expected revenue
//     L^g(n,p) = min(Σ d_r·p·S(p), Σ_{top n} d_r·p), validating every
//     admission with an augmenting path in the pre-matching M′,
//  3. prices each grid with the UCB index of Section 4.2.2 over the
//     candidate ladder, so demand is learned online from accept/reject
//     feedback with change detection.
//
// Grids without tasks are priced at the base price p_b.
type MAPS struct {
	P Params //lint:snapfields operator config injected at construction, not learned state

	basePrice float64
	ladder    []float64
	cells     map[int]*CellStats

	// NoMatchingValidation disables the augmenting-path check when admitting
	// supply (ablation A2 in DESIGN.md): every grid may claim up to |R^tg|
	// workers regardless of the bipartite structure, as if supply were
	// independent across grids. Real deployments must leave this false.
	NoMatchingValidation bool //lint:snapfields ablation knob, part of config rather than learned state

	// Smoothing in [0, 1) blends each grid's price toward its neighbors'
	// average after the main pricing pass (Section 4.2.3's spatial smoothing
	// note). 0 disables smoothing.
	Smoothing float64

	// LastSupply exposes the n^{tg} chosen in the most recent Prices call
	// (cell -> worker count); experiment ablations read it.
	LastSupply map[int]int //lint:snapfields per-window diagnostic output, rebuilt by the next Prices call
	// LastPrices exposes the final per-grid prices of the last Prices call.
	LastPrices map[int]float64 //lint:snapfields per-window diagnostic output, rebuilt by the next Prices call

	// Per-period working state, reused across Prices calls (strategies
	// serve one goroutine; the engine gives each shard a private instance).
	// The greedy loop's structures — pre-matching, proposal heap, cell
	// rounds — allocate nothing in steady state; the returned price slice
	// and the exported LastSupply/LastPrices maps are still fresh per call,
	// because callers may retain them across periods.
	pre       preMatcher         //lint:snapfields per-period scratch, reset at the top of every Prices call
	h         deltaHeap          //lint:snapfields per-period scratch, reset at the top of every Prices call
	rounds    map[int]*cellRound //lint:snapfields per-period scratch, reset at the top of every Prices call
	roundFree []*cellRound       //lint:snapfields buffer free-list; capacity cache only, never holds live state

	// ver counts state changes that can alter future prices (Observe,
	// SetLadder, snapshot restore); see PriceStateVersion.
	ver uint64 //lint:snapfields cache-invalidation counter; RestoreState bumps it instead of restoring it

	// Previous smoothing pass (raw input, smoothed output, weight), kept as
	// private copies so SmoothPricesIncremental can skip cells whose
	// neighborhood did not change between windows.
	prevRaw    map[int]float64 //lint:snapfields smoothing delta cache; restore clears it and the next window recomputes in full
	prevSmooth map[int]float64 //lint:snapfields smoothing delta cache; restore clears it and the next window recomputes in full
	prevW      float64         //lint:snapfields smoothing delta cache; restore clears it and the next window recomputes in full
}

// NewMAPS builds a MAPS strategy around a base price (typically
// BaseP.BasePrice() after calibration, as Algorithm 2 prescribes).
func NewMAPS(p Params, basePrice float64) (*MAPS, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	ladder, err := stats.PriceLadder(p.PMin, p.PMax, p.Alpha)
	if err != nil {
		return nil, err
	}
	return &MAPS{
		P:         p,
		basePrice: p.Clamp(basePrice),
		ladder:    ladder,
		cells:     make(map[int]*CellStats),
	}, nil
}

// Name implements Strategy.
func (m *MAPS) Name() string { return "MAPS" }

// GridPrices implements GridPricer with the last period's per-grid prices.
func (m *MAPS) GridPrices() map[int]float64 { return m.LastPrices }

// BasePrice returns the p_b used for task-free grids and initialization.
func (m *MAPS) BasePrice() float64 { return m.basePrice }

// CellStats returns (creating on demand) the learning state of a cell.
func (m *MAPS) CellStats(cell int) *CellStats {
	cs, ok := m.cells[cell]
	if !ok {
		cs = NewCellStats(m.ladder)
		m.cells[cell] = cs
	}
	return cs
}

// SetLadder replaces the candidate price set, e.g. with an empirically
// tabulated one like Table 1 of the paper. It resets all learned statistics.
func (m *MAPS) SetLadder(ladder []float64) {
	m.ladder = append([]float64(nil), ladder...)
	m.cells = make(map[int]*CellStats)
	m.ver++
}

// PriceStateVersion implements PriceCacheable: the version advances on
// every Observe, SetLadder, and snapshot restore, so a cached price vector
// is replayed only for windows between which MAPS learned nothing.
func (m *MAPS) PriceStateVersion() uint64 { return m.ver }

// heapEntry is the tuple ((g, n_new, p_new), Δ^g) of Algorithm 2.
type heapEntry struct {
	cell  int
	nNew  int
	pNew  float64
	delta float64 // +Inf on the initialization round
}

// deltaHeap is the max-heap H keyed by Δ^g. It is a typed implementation of
// the container/heap sift rules (identical element movement, so pop order —
// including between equal keys — matches what container/heap would do)
// without the interface boxing that allocates one heap.Push per proposal.
type deltaHeap []heapEntry

// less orders by Δ descending with cell ID as the tie-break. The tie-break
// is load-bearing: equal deltas are common (every grid starts at Δ = ∞, and
// retired grids all carry Δ = 0), the grids compete for a shared worker pool
// through the pre-matching, and entries land in the heap in ctx.Cells map
// order — without the tie-break, which grid wins a contested worker would
// depend on map iteration order and replay would not be bit-identical.
func (h deltaHeap) less(i, j int) bool {
	if h[i].delta != h[j].delta {
		return h[i].delta > h[j].delta
	}
	return h[i].cell < h[j].cell
}

func (h *deltaHeap) push(e heapEntry) {
	*h = append(*h, e)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *deltaHeap) pop() heapEntry {
	s := *h
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	// Sift the new root down over the first n elements.
	i := 0
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && s.less(j2, j1) {
			j = j2
		}
		if !s.less(j, i) {
			break
		}
		s[i], s[j] = s[j], s[i]
		i = j
	}
	e := s[n]
	*h = s[:n]
	return e
}

// cellRound is MAPS's per-period working state for one grid cell.
type cellRound struct {
	cellID    int
	tasks     []int   // task indices, distance-descending (ctx.Cells order)
	sumDist   float64 // C = Σ_r d_r over the cell's tasks
	prefix    []float64
	n         int     // committed supply n^{tg}
	price     float64 // current tentative price
	lval      float64 // L^g at the committed (n, price)
	finalized bool
}

// takeRound pops a recycled cellRound (or allocates the pool's first), reset
// to zero state except for the reusable prefix arena.
func (m *MAPS) takeRound() *cellRound {
	n := len(m.roundFree)
	if n == 0 {
		return &cellRound{}
	}
	cr := m.roundFree[n-1]
	m.roundFree = m.roundFree[:n-1]
	*cr = cellRound{prefix: cr.prefix[:0]}
	return cr
}

// topDistSum returns D = Σ of the top-n distances.
func (cr *cellRound) topDistSum(n int) float64 {
	if n <= 0 {
		return 0
	}
	if n >= len(cr.prefix) {
		return cr.prefix[len(cr.prefix)-1]
	}
	return cr.prefix[n-1]
}

// Prices implements Strategy by running Algorithm 2.
func (m *MAPS) Prices(ctx *PeriodContext) []float64 {
	prices := make([]float64, len(ctx.Tasks))
	m.LastSupply = make(map[int]int, len(ctx.Cells))
	m.LastPrices = make(map[int]float64, len(ctx.Cells))
	if len(ctx.Tasks) == 0 {
		return prices
	}

	// Pre-matching M′ over the period's bipartite graph (line 1–2).
	m.pre.reset(ctx)
	pre := &m.pre

	// Recycle the previous period's working rounds and heap.
	rounds := m.rounds
	if rounds == nil {
		rounds = make(map[int]*cellRound, len(ctx.Cells))
		m.rounds = rounds
	}
	//lint:ordered free-list order only decides which recycled buffer serves which cell, never the computed values
	for c, cr := range rounds {
		m.roundFree = append(m.roundFree, cr)
		delete(rounds, c)
	}
	h := &m.h
	*h = (*h)[:0]
	// Lines 3–4: one entry per grid with Δ = ∞ so every grid is evaluated
	// once before any admission.
	//lint:ordered heap pops are totally ordered by (delta, cell) regardless of push order; all other writes are keyed per cell
	for cell, tasks := range ctx.Cells {
		cr := m.takeRound()
		cr.cellID = cell
		cr.tasks = tasks
		cr.price = m.basePrice
		if cap(cr.prefix) >= len(tasks) {
			cr.prefix = cr.prefix[:len(tasks)]
		} else {
			cr.prefix = make([]float64, len(tasks))
		}
		run := 0.0
		for i, ti := range tasks {
			d := ctx.Tasks[ti].Distance
			run += d
			cr.prefix[i] = run
		}
		cr.sumDist = run
		rounds[cell] = cr
		h.push(heapEntry{cell: cell, nNew: 0, pNew: m.basePrice, delta: math.Inf(1)})
	}

	// Lines 5–21: the greedy supply-distribution loop.
	for len(*h) > 0 {
		e := h.pop()
		cr := rounds[e.cell]
		if cr.finalized {
			continue
		}
		if !math.IsInf(e.delta, 1) && e.delta > 0 {
			// Lines 8–10: admit the proposed worker — find an augmenting
			// path for an unassigned task of this grid.
			if m.NoMatchingValidation || pre.augmentOne(e.cell, cr) {
				cr.n = e.nNew
				cr.price = e.pNew
				cr.lval = m.lValue(cr, cr.n, cr.price)
			}
			// If the augmentation went stale (another grid took the worker
			// since the proposal), fall through: the re-proposal below will
			// discover infeasibility and retire the grid with Δ = 0.
		}
		if e.delta == 0 {
			// Lines 11–14: final price for this grid, clamped to the cap.
			cr.price = m.P.Clamp(e.pNew)
			cr.finalized = true
			continue
		}
		// Lines 16–21: propose one more worker for this grid.
		feasible := len(cr.tasks) > 0
		if feasible && !m.NoMatchingValidation {
			feasible = pre.canAugment(e.cell, cr)
		} else if feasible && m.NoMatchingValidation {
			feasible = cr.n < len(cr.tasks)
		}
		if !feasible {
			price := cr.price
			if cr.n == 0 && len(cr.tasks) > 0 {
				// Starved grid: no supply could be validated. Retire it at
				// its one-worker aspirational price, which sits high on the
				// revenue curve (Section 4.2.3's note that MAPS prices
				// under-supplied regions up). Pricing starved grids at the
				// base price instead floods the market with cheap accepted
				// tasks that divert workers from the premium grids in the
				// realized assignment.
				price, _ = m.maximizer(cr, 1)
			}
			h.push(heapEntry{cell: e.cell, nNew: cr.n, pNew: price, delta: 0})
			continue
		}
		nNext := cr.n + 1
		pNext, lNext := m.maximizer(cr, nNext)
		delta := lNext - cr.lval
		if delta <= 1e-12 {
			h.push(heapEntry{cell: e.cell, nNew: cr.n, pNew: pNext, delta: 0})
			continue
		}
		h.push(heapEntry{cell: e.cell, nNew: nNext, pNew: pNext, delta: delta})
	}

	// Emit per-task prices; task-free grids never appear in ctx.Cells and
	// implicitly keep the base price.
	//lint:ordered per-cell map writes whose values derive only from that cell's round
	for cell, cr := range rounds {
		m.LastSupply[cell] = cr.n
		m.LastPrices[cell] = m.P.Clamp(cr.price)
	}
	if m.Smoothing > 0 {
		raw := m.LastPrices
		hist := m.prevRaw
		if m.Smoothing != m.prevW {
			hist = nil // weight changed: the previous pass is not comparable
		}
		m.LastPrices = SmoothPricesIncremental(ctx.Space, raw, hist, m.prevSmooth, m.Smoothing)
		// Keep private copies for the next window's delta detection (the
		// exported maps may be retained or mutated by callers).
		m.prevRaw = copyPriceMap(m.prevRaw, raw)
		m.prevSmooth = copyPriceMap(m.prevSmooth, m.LastPrices)
		m.prevW = m.Smoothing
	}
	//lint:ordered writes go to disjoint task indices owned by each cell
	for cell, cr := range rounds {
		p := m.LastPrices[cell]
		for _, ti := range cr.tasks {
			prices[ti] = p
		}
	}
	return prices
}

// maximizer is Algorithm 3: scan the ladder from pmax down and return the
// price with the largest UCB index, along with the resulting estimate of
// L^g(n, p) (the index scaled back by C).
func (m *MAPS) maximizer(cr *cellRound, n int) (price, lval float64) {
	cs := m.cellStatsFor(cr)
	if cr.sumDist <= 0 || cs.Total() == 0 {
		// No demand mass or no observations yet: stay at the base price, the
		// initial input Algorithm 2 receives from base pricing.
		return m.basePrice, 0
	}
	ratio := cr.topDistSum(n) / cr.sumDist // D/C
	pos, idx := cs.BestIndex(ratio)
	if math.IsInf(idx, -1) || idx < 0 {
		return m.basePrice, 0
	}
	return cs.Ladder()[pos], idx * cr.sumDist
}

// lValue evaluates the committed L^g(n, p) with the current statistics.
func (m *MAPS) lValue(cr *cellRound, n int, p float64) float64 {
	cs := m.cellStatsFor(cr)
	demand := cr.sumDist * p * cs.MeanAt(p)
	supply := cr.topDistSum(n) * p
	return math.Min(demand, supply)
}

// cellStatsFor maps a working round back to its persistent statistics.
func (m *MAPS) cellStatsFor(cr *cellRound) *CellStats {
	// rounds are keyed by cell in Prices; stash the cell on first use.
	return m.CellStats(cr.cellID)
}

// Observe implements Strategy: feed every requester decision into the cell's
// UCB statistics and change detector.
func (m *MAPS) Observe(ctx *PeriodContext, prices []float64, accepted []bool) {
	if len(prices) != len(ctx.Tasks) || len(accepted) != len(ctx.Tasks) {
		panic(fmt.Sprintf("core: Observe with %d prices / %d outcomes for %d tasks",
			len(prices), len(accepted), len(ctx.Tasks)))
	}
	if len(ctx.Tasks) > 0 {
		m.ver++
	}
	for i, tv := range ctx.Tasks {
		m.CellStats(tv.Cell).Observe(prices[i], accepted[i])
	}
}

// copyPriceMap replaces dst's contents with src's, reusing dst when
// possible.
func copyPriceMap(dst, src map[int]float64) map[int]float64 {
	if dst == nil {
		dst = make(map[int]float64, len(src))
	} else {
		for k := range dst {
			delete(dst, k)
		}
	}
	for k, v := range src {
		dst[k] = v
	}
	return dst
}
