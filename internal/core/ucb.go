package core

import (
	"math"

	"spatialcrowd/internal/stats"
)

// priceStat tracks observations of one candidate price in one grid cell.
type priceStat struct {
	tried   int // N(p): offers made at this price
	accepts int // accepted offers

	// Sliding change-detection window (Section 4.2.2): outcomes since the
	// last reset, compared against the acceptance ratio frozen at the
	// window's start.
	winTrials  int
	winAccepts int
	winRef     float64 // Shat(p) at window start
	winRefSet  bool
}

// mean returns the sample acceptance ratio Shat(p); 0 before any trial.
func (ps *priceStat) mean() float64 {
	if ps.tried == 0 {
		return 0
	}
	return float64(ps.accepts) / float64(ps.tried)
}

// CellStats is the per-grid UCB learning state of MAPS: for every candidate
// price on the ladder it keeps N(p) and the empirical acceptance ratio, the
// total requester count N, and a deviation-based change detector that resets
// a price's statistics when the market moves (Section 4.2.2).
type CellStats struct {
	ladder []float64
	stat   []priceStat
	total  int // N: requesters observed in this cell so far

	// ChangeWindow is the number of outcomes between change checks.
	ChangeWindow int //lint:snapfields detector config; change detection restarts fresh after restore by design (see persist.go)
	// Changes counts detected demand shifts (exposed for diagnostics).
	Changes int //lint:snapfields diagnostics counter, not learned pricing state
}

// NewCellStats builds learning state over the given candidate ladder.
func NewCellStats(ladder []float64) *CellStats {
	return &CellStats{
		ladder:       ladder,
		stat:         make([]priceStat, len(ladder)),
		ChangeWindow: 64,
	}
}

// Ladder returns the candidate prices.
func (cs *CellStats) Ladder() []float64 { return cs.ladder }

// Total returns N, the number of requesters observed in the cell.
func (cs *CellStats) Total() int { return cs.total }

// ladderIndex returns the index of the ladder price nearest to p.
func (cs *CellStats) ladderIndex(p float64) int {
	best, bestDiff := 0, math.Inf(1)
	for i, lp := range cs.ladder {
		if d := math.Abs(lp - p); d < bestDiff {
			best, bestDiff = i, d
		}
	}
	return best
}

// Observe folds one requester decision at price p into the statistics and
// runs the change detector. When the detector flags a statistically
// significant deviation (outside mean +/- 2 sd, Section 4.2.2) the price's
// history is discarded so the estimate re-learns the new market.
func (cs *CellStats) Observe(p float64, accepted bool) {
	cs.total++
	ps := &cs.stat[cs.ladderIndex(p)]
	ps.tried++
	if accepted {
		ps.accepts++
	}

	if !ps.winRefSet {
		// Freeze the reference ratio once enough mass exists.
		if ps.tried >= cs.ChangeWindow {
			ps.winRef = ps.mean()
			ps.winRefSet = true
			ps.winTrials, ps.winAccepts = 0, 0
		}
		return
	}
	ps.winTrials++
	if accepted {
		ps.winAccepts++
	}
	if ps.winTrials >= cs.ChangeWindow {
		if stats.BinomialDeviation(ps.winAccepts, ps.winTrials, ps.winRef) {
			// Demand changed: drop history, keep only the fresh window.
			cs.Changes++
			ps.tried = ps.winTrials
			ps.accepts = ps.winAccepts
			ps.winRefSet = false
		} else {
			ps.winRef = ps.mean()
		}
		ps.winTrials, ps.winAccepts = 0, 0
	}
}

// Seed installs `trials` observations with `accepts` acceptances for the
// ladder price nearest p, bypassing the change detector. Tests and the
// oracle-demand ablation use it to start from a known acceptance table.
func (cs *CellStats) Seed(p float64, trials, accepts int) {
	ps := &cs.stat[cs.ladderIndex(p)]
	ps.tried += trials
	ps.accepts += accepts
	cs.total += trials
}

// MeanAt returns Shat(p) for the ladder price nearest p.
func (cs *CellStats) MeanAt(p float64) float64 {
	return cs.stat[cs.ladderIndex(p)].mean()
}

// TriedAt returns N(p) for the ladder price nearest p.
func (cs *CellStats) TriedAt(p float64) int {
	return cs.stat[cs.ladderIndex(p)].tried
}

// Index computes the UCB index of Section 4.2.2 for ladder entry i given the
// supply/demand line slope ratio supplyOverDemand = D/C:
//
//	I(p) = min(p*Shat(p) + p*sqrt(2 ln N / N(p)), (D/C)*p)
//
// An unexplored price (N(p) = 0 with N > 0) has an unbounded confidence term,
// so its index is the supply cap alone — optimism that forces exploration.
func (cs *CellStats) Index(i int, supplyOverDemand float64) float64 {
	p := cs.ladder[i]
	cap := supplyOverDemand * p
	ucb := p*cs.stat[i].mean() + stats.UCBRadius(p, cs.total, cs.stat[i].tried)
	return math.Min(ucb, cap)
}

// BestIndex scans the ladder from the highest price down (Algorithm 3,
// lines 4–9) and returns the ladder position and value of the maximum index.
// Ties favour the larger price because the scan is strictly descending and
// only strict improvements replace the incumbent — mirroring Algorithm 3's
// "if I_new < min(...)" update order.
func (cs *CellStats) BestIndex(supplyOverDemand float64) (pos int, value float64) {
	pos, value = len(cs.ladder)-1, math.Inf(-1)
	for i := len(cs.ladder) - 1; i >= 0; i-- {
		if v := cs.Index(i, supplyOverDemand); v > value {
			pos, value = i, v
		}
	}
	return pos, value
}
