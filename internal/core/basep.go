package core

import (
	"fmt"

	"spatialcrowd/internal/stats"
)

// BaseP is the base pricing strategy of Section 3 (Algorithm 1): it probes a
// geometric ladder of candidate prices against recent requesters in every
// grid, estimates the per-grid Myerson reserve price as
// argmax p * Shat^g(p), and prices every task at the arithmetic mean of the
// per-grid estimates — the base price p_b.
//
// Calibrate must run before the strategy is used; the zero base price
// otherwise falls back to the ladder midpoint.
type BaseP struct {
	P Params

	basePrice float64
	reserves  []float64 // estimated p_m^g per calibrated grid
	probes    int       // total oracle probes spent during calibration
	samples   [][]PriceSample
	ready     bool
}

// PriceSample records the calibration outcomes of one candidate price in one
// grid: Algorithm 1's (p, Shat(p)) pair with its raw counts. Downstream
// learners (MAPS, CappedUCB) warm-start their statistics from these instead
// of discarding the platform's observation history.
type PriceSample struct {
	Price   float64
	Tried   int
	Accepts int
}

// NewBaseP returns an uncalibrated base pricing strategy.
func NewBaseP(p Params) (*BaseP, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &BaseP{P: p}, nil
}

// Name implements Strategy.
func (b *BaseP) Name() string { return "BaseP" }

// Calibrate runs Algorithm 1: for each grid cell 0..numCells-1, it offers
// every ladder price p to h(p) fresh requesters via the oracle, records the
// empirical acceptance ratio, picks the revenue-maximizing candidate as the
// grid's Myerson reserve estimate, and finally averages the estimates into
// the base price. Ties break toward the smaller price (higher acceptance),
// as the paper prescribes.
//
// budgetPerPrice caps h(p) when positive; the Hoeffding bound h(p) =
// ceil((2p^2/eps^2) ln(2k/delta)) can reach thousands of probes per price,
// which is faithful but slow for very fine grids.
func (b *BaseP) Calibrate(oracle ProbeOracle, numCells int, budgetPerPrice int) error {
	if oracle == nil || numCells <= 0 {
		return fmt.Errorf("core: BaseP.Calibrate needs an oracle and numCells > 0, got %v cells", numCells)
	}
	ladder, err := stats.PriceLadder(b.P.PMin, b.P.PMax, b.P.Alpha)
	if err != nil {
		return err
	}
	k := stats.LadderSize(b.P.PMin, b.P.PMax, b.P.Alpha)
	b.reserves = make([]float64, numCells)
	b.samples = make([][]PriceSample, numCells)
	b.probes = 0
	sum := 0.0
	for cell := 0; cell < numCells; cell++ {
		bestPrice, bestRev := ladder[0], -1.0
		for _, p := range ladder {
			h := stats.HoeffdingSamples(p, b.P.Eps, k, b.P.Delta)
			if budgetPerPrice > 0 && h > budgetPerPrice {
				h = budgetPerPrice
			}
			accepts := 0
			for i := 0; i < h; i++ {
				if oracle.Probe(cell, p) {
					accepts++
				}
			}
			b.probes += h
			b.samples[cell] = append(b.samples[cell], PriceSample{Price: p, Tried: h, Accepts: accepts})
			shat := float64(accepts) / float64(h)
			// Strict improvement only: ties keep the earlier (smaller) price.
			if rev := p * shat; rev > bestRev {
				bestPrice, bestRev = p, rev
			}
		}
		b.reserves[cell] = bestPrice
		sum += bestPrice
	}
	b.basePrice = b.P.Clamp(sum / float64(numCells))
	b.ready = true
	return nil
}

// SetBasePrice installs a precomputed base price, bypassing calibration.
// MAPS and the heuristics use it to share one calibration across strategies.
func (b *BaseP) SetBasePrice(pb float64) {
	b.basePrice = b.P.Clamp(pb)
	b.ready = true
}

// BasePrice returns p_b, the single unit price used for every grid. Before
// calibration it falls back to the geometric midpoint of [PMin, PMax].
func (b *BaseP) BasePrice() float64 {
	if !b.ready {
		return b.P.Clamp((b.P.PMin + b.P.PMax) / 2)
	}
	return b.basePrice
}

// Reserves returns the estimated per-grid Myerson reserve prices from the
// last calibration (nil before calibration).
func (b *BaseP) Reserves() []float64 { return b.reserves }

// ProbeCount returns the oracle probes spent by the last calibration.
func (b *BaseP) ProbeCount() int { return b.probes }

// Samples returns the calibration observations of one grid (nil before
// calibration or for out-of-range cells).
func (b *BaseP) Samples(cell int) []PriceSample {
	if cell < 0 || cell >= len(b.samples) {
		return nil
	}
	return b.samples[cell]
}

// WarmStart copies the calibration observations of every grid into a UCB
// statistics store (one per cell, created via the factory). MAPS and
// CappedUCB call this so online learning continues from the data base
// pricing already paid for rather than from zero.
func (b *BaseP) WarmStart(cellStats func(cell int) *CellStats) {
	for cell := range b.samples {
		cs := cellStats(cell)
		for _, s := range b.samples[cell] {
			cs.Seed(s.Price, s.Tried, s.Accepts)
		}
	}
}

// Prices implements Strategy: the same base price for every task.
func (b *BaseP) Prices(ctx *PeriodContext) []float64 {
	out := make([]float64, len(ctx.Tasks))
	pb := b.BasePrice()
	for i := range out {
		out[i] = pb
	}
	return out
}

// Observe implements Strategy. Base pricing is static after calibration.
func (b *BaseP) Observe(*PeriodContext, []float64, []bool) {}
