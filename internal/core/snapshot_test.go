package core

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"
)

// observeStream feeds n pseudo-random outcomes into a strategy via a tiny
// synthetic context, exercising the change-detection windows.
func observeStream(t *testing.T, s Strategy, seed int64, n int) {
	t.Helper()
	ctx := exampleContext(t)
	rng := rand.New(rand.NewSource(seed))
	prices := make([]float64, len(ctx.Tasks))
	accepted := make([]bool, len(ctx.Tasks))
	for i := 0; i < n; i++ {
		got := s.Prices(ctx)
		copy(prices, got)
		for j := range accepted {
			accepted[j] = rng.Float64() < 0.6
		}
		s.Observe(ctx, prices, accepted)
	}
}

// TestSnapshotStateExactRoundTrip: after restoring a snapshot, the strategy
// must be indistinguishable from the original — continuing the identical
// observation stream yields identical prices and an identical re-snapshot
// (window counters included, unlike the SaveState format).
func TestSnapshotStateExactRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		mk   func() StateSnapshotter
	}{
		{"MAPS", func() StateSnapshotter {
			m, _ := NewMAPS(DefaultParams(), 2.2)
			m.Smoothing = 0.25
			return m
		}},
		{"CappedUCB", func() StateSnapshotter {
			c, _ := NewCappedUCB(DefaultParams(), 2.2)
			return c
		}},
		{"ParametricMAPS", func() StateSnapshotter {
			pm, _ := NewParametricMAPS(DefaultParams(), 2.2)
			return pm
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			orig := tc.mk()
			observeStream(t, orig.(Strategy), 11, 80) // past the change window
			st, err := orig.SnapshotState()
			if err != nil {
				t.Fatal(err)
			}
			// The snapshot must survive JSON (the engine checkpoint medium).
			data, err := json.Marshal(st)
			if err != nil {
				t.Fatal(err)
			}
			var decoded StrategyState
			if err := json.Unmarshal(data, &decoded); err != nil {
				t.Fatal(err)
			}
			restored := tc.mk()
			if err := restored.RestoreState(decoded); err != nil {
				t.Fatal(err)
			}

			// Continue both on the same stream: identical prices...
			ctx := exampleContext(t)
			p1 := orig.(Strategy).Prices(ctx)
			p2 := restored.(Strategy).Prices(ctx)
			if !reflect.DeepEqual(p1, p2) {
				t.Fatalf("restored strategy prices %v, original %v", p2, p1)
			}
			observeStream(t, orig.(Strategy), 29, 40)
			observeStream(t, restored.(Strategy), 29, 40)
			// ...and identical state afterwards, window counters included.
			s1, err := orig.SnapshotState()
			if err != nil {
				t.Fatal(err)
			}
			s2, err := restored.SnapshotState()
			if err != nil {
				t.Fatal(err)
			}
			b1, _ := json.Marshal(s1)
			b2, _ := json.Marshal(s2)
			if string(b1) != string(b2) {
				t.Fatalf("states diverged after the shared continuation:\n%s\n%s", b1, b2)
			}
		})
	}
}

func TestSnapshotStateRejectsGarbage(t *testing.T) {
	m, _ := NewMAPS(DefaultParams(), 2)
	cases := []StrategyState{
		{Kind: "maps"}, // no head
		{Kind: "maps", Head: json.RawMessage(`{"version":99,"ladder":[1,2]}`)},
		{Kind: "maps", Head: json.RawMessage(`{"version":1,"ladder":[]}`)},
		{Kind: "maps", Head: json.RawMessage(`{"version":1,"ladder":[2,1]}`)},
		{Kind: "maps", Head: json.RawMessage(`{"version":1,"base_price":2,"ladder":[1,2]}`),
			Cells: []CellSnapshot{{Cell: -1, Total: 3}}},
		{Kind: "maps", Head: json.RawMessage(`{"version":1,"base_price":2,"ladder":[1,2]}`),
			Cells: []CellSnapshot{{Cell: 0, Total: 3, Prices: []PriceSnap{{Price: 1, Tried: 2, Accepts: 5}}}}},
	}
	for i, st := range cases {
		if err := m.RestoreState(st); err == nil {
			t.Errorf("case %d should be rejected", i)
		}
	}
}

// TestCellFilterAndMerge pins the re-sharding helpers: merging per-shard
// snapshots and re-filtering them partitions the cells without loss.
func TestCellFilterAndMerge(t *testing.T) {
	m, _ := NewMAPS(DefaultParams(), 2)
	for cell := 0; cell < 6; cell++ {
		m.CellStats(cell).Seed(2, 10+cell, 5)
	}
	full, err := m.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	even := full.CellFilter(func(c int) bool { return c%2 == 0 })
	odd := full.CellFilter(func(c int) bool { return c%2 == 1 })
	if len(even.Cells) != 3 || len(odd.Cells) != 3 {
		t.Fatalf("filter split %d/%d, want 3/3", len(even.Cells), len(odd.Cells))
	}
	merged := MergeStrategyStates([]StrategyState{odd, even})
	b1, _ := json.Marshal(full)
	b2, _ := json.Marshal(merged)
	if string(b1) != string(b2) {
		t.Fatalf("merge(filter(even), filter(odd)) != original:\n%s\n%s", b1, b2)
	}
}
