package core

import (
	"math"
	"math/rand"
	"testing"

	"spatialcrowd/internal/stats"
)

func TestLogisticDemandFitsLogisticTruth(t *testing.T) {
	// True curve: S(p) = sigma(-(a + b p)) with a = -4, b = 2
	// => S(1) ~ 0.88, S(2) = 0.5, S(3) ~ 0.12.
	truth := func(p float64) float64 { return 1 / (1 + math.Exp(-4+2*p)) }
	f := NewLogisticDemand(2.5)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 30000; i++ {
		p := 1 + 4*rng.Float64()
		f.Observe(p, rng.Float64() < truth(p))
	}
	for _, p := range []float64{1, 2, 3, 4} {
		if got := f.Accept(p); math.Abs(got-truth(p)) > 0.08 {
			t.Errorf("S(%v) = %v, want ~%v", p, got, truth(p))
		}
	}
	if f.N() != 30000 {
		t.Errorf("N = %d", f.N())
	}
}

func TestLogisticDemandMonotoneNonIncreasing(t *testing.T) {
	f := NewLogisticDemand(3)
	rng := rand.New(rand.NewSource(2))
	// Even under adversarially increasing acceptance observations, the
	// b >= 0 projection keeps the fitted curve non-increasing in price.
	for i := 0; i < 5000; i++ {
		p := 1 + 4*rng.Float64()
		f.Observe(p, p > 3) // higher prices "accept" more
	}
	prev := f.Accept(1)
	for p := 1.0; p <= 5; p += 0.1 {
		cur := f.Accept(p)
		if cur > prev+1e-9 {
			t.Fatalf("fitted curve increased at p=%v", p)
		}
		prev = cur
	}
}

func TestLogisticDemandAgainstTruncNormalTruth(t *testing.T) {
	// Misspecified truth (truncated normal): the logistic fit should still
	// track the curve's general level at interior prices.
	d := stats.TruncNormal{Mu: 2, Sigma: 1, Lo: 1, Hi: 5}
	f := NewLogisticDemand(2.5)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 40000; i++ {
		p := 1 + 4*rng.Float64()
		f.Observe(p, p <= d.Sample(rng))
	}
	for _, p := range []float64{1.5, 2, 2.5, 3} {
		if got, want := f.Accept(p), stats.Accept(d, p); math.Abs(got-want) > 0.15 {
			t.Errorf("S(%v) = %v, want ~%v (misspecification tolerance)", p, got, want)
		}
	}
}

func TestParametricMAPSEndToEnd(t *testing.T) {
	ctx := exampleContext(t)
	pm, err := NewParametricMAPS(Params{PMin: 1, PMax: 3, Alpha: 0.5, Eps: 0.2, Delta: 0.01}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if pm.Name() != "MAPS-logit" {
		t.Errorf("name %q", pm.Name())
	}
	table := map[float64]float64{1: 0.9, 1.5: 0.85, 2.25: 0.75, 3: 0.5}
	accept := func(p float64) float64 {
		best, bd := 0.9, math.Inf(1)
		for tp, s := range table {
			if d := math.Abs(tp - p); d < bd {
				bd, best = d, s
			}
		}
		return best
	}
	rng := rand.New(rand.NewSource(4))
	for round := 0; round < 2000; round++ {
		prices := pm.Prices(ctx)
		acc := make([]bool, len(prices))
		for i, p := range prices {
			acc[i] = rng.Float64() < accept(p)
		}
		pm.Observe(ctx, prices, acc)
	}
	prices := pm.Prices(ctx)
	for i, p := range prices {
		if p < 1 || p > 3 {
			t.Fatalf("task %d priced %v out of bounds", i, p)
		}
	}
	// Same grid, same price (Definition 1) must survive the wrapper.
	if prices[0] != prices[1] {
		t.Errorf("cell 8 split prices: %v vs %v", prices[0], prices[1])
	}
}
