package core

import "math"

// countWorkersByCell buckets this period's workers into cells by their
// current location; the supply-demand heuristics compare it against the
// per-cell task counts.
func countWorkersByCell(ctx *PeriodContext) map[int]int {
	out := make(map[int]int)
	for _, w := range ctx.Workers {
		out[ctx.Space.CellOf(w.Loc)]++
	}
	return out
}

// SDR is the supply-demand-ratio baseline of Section 5.1: for a grid with
// more tasks than workers it prices at Coef * p_b * |R^tg| / |W^tg|, and at
// the base price otherwise. The paper empirically sets Coef = 0.5.
type SDR struct {
	P         Params
	BasePrice float64
	Coef      float64
}

// NewSDR builds the SDR heuristic with the paper's coefficient.
func NewSDR(p Params, basePrice float64) (*SDR, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &SDR{P: p, BasePrice: p.Clamp(basePrice), Coef: 0.5}, nil
}

// Name implements Strategy.
func (s *SDR) Name() string { return "SDR" }

// Prices implements Strategy.
func (s *SDR) Prices(ctx *PeriodContext) []float64 {
	workers := countWorkersByCell(ctx)
	out := make([]float64, len(ctx.Tasks))
	//lint:ordered each grid is priced independently; writes go to disjoint out indices
	for cell, tasks := range ctx.Cells {
		nr, nw := len(tasks), workers[cell]
		price := s.BasePrice
		if nr > nw {
			if nw == 0 {
				price = s.P.PMax // unbounded ratio: cap
			} else {
				price = s.P.Clamp(s.Coef * s.BasePrice * float64(nr) / float64(nw))
			}
		}
		for _, ti := range tasks {
			out[ti] = price
		}
	}
	return out
}

// Observe implements Strategy; SDR does not learn.
func (s *SDR) Observe(*PeriodContext, []float64, []bool) {}

// PriceStateVersion implements PriceCacheable: SDR carries no learned
// state, so its prices depend only on the window's tasks and workers and a
// cached vector stays valid whenever the market repeats. (Callers mutating
// the public knobs mid-stream forfeit that guarantee.)
func (s *SDR) PriceStateVersion() uint64 { return 0 }

// SDE is the exponential supply-demand-difference baseline of Section 5.1:
// p^tg = p_b * (1 + 2 e^{|W^tg| - |R^tg|}) when tasks outnumber workers,
// and p_b otherwise.
type SDE struct {
	P         Params
	BasePrice float64
}

// NewSDE builds the SDE heuristic.
func NewSDE(p Params, basePrice float64) (*SDE, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &SDE{P: p, BasePrice: p.Clamp(basePrice)}, nil
}

// Name implements Strategy.
func (s *SDE) Name() string { return "SDE" }

// Prices implements Strategy.
func (s *SDE) Prices(ctx *PeriodContext) []float64 {
	workers := countWorkersByCell(ctx)
	out := make([]float64, len(ctx.Tasks))
	//lint:ordered each grid is priced independently; writes go to disjoint out indices
	for cell, tasks := range ctx.Cells {
		nr, nw := len(tasks), workers[cell]
		price := s.BasePrice
		if nr > nw {
			price = s.P.Clamp(s.BasePrice * (1 + 2*math.Exp(float64(nw-nr))))
		}
		for _, ti := range tasks {
			out[ti] = price
		}
	}
	return out
}

// Observe implements Strategy; SDE does not learn.
func (s *SDE) Observe(*PeriodContext, []float64, []bool) {}

// PriceStateVersion implements PriceCacheable; like SDR, SDE is stateless.
func (s *SDE) PriceStateVersion() uint64 { return 0 }
