package core

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"spatialcrowd/internal/geo"
)

func TestSmoothPricesReducesGap(t *testing.T) {
	grid := geo.SquareGrid(30, 3)
	prices := map[int]float64{
		0: 1, 1: 1, 2: 1,
		3: 1, 4: 5, 5: 1, // spike in the middle
		6: 1, 7: 1, 8: 1,
	}
	before := PriceGap(grid, prices)
	smoothed := SmoothPrices(grid, prices, 0.5)
	after := PriceGap(grid, smoothed)
	if after >= before {
		t.Fatalf("gap %v did not shrink (was %v)", after, before)
	}
	// The spike moved toward its neighbors' mean: (1-w)*5 + w*1 = 3.
	if math.Abs(smoothed[4]-3) > 1e-9 {
		t.Errorf("spike smoothed to %v, want 3", smoothed[4])
	}
	// Total order preserved: spike still the max.
	for c, p := range smoothed {
		if c != 4 && p > smoothed[4] {
			t.Errorf("cell %d (%v) exceeds the smoothed spike (%v)", c, p, smoothed[4])
		}
	}
}

func TestSmoothPricesEdgeCases(t *testing.T) {
	grid := geo.SquareGrid(30, 3)
	// w = 0: identity.
	prices := map[int]float64{0: 2, 4: 3}
	out := SmoothPrices(grid, prices, 0)
	if out[0] != 2 || out[4] != 3 {
		t.Error("w=0 must be the identity")
	}
	// Isolated cell (no priced neighbors): unchanged.
	out = SmoothPrices(grid, map[int]float64{0: 2.5}, 0.8)
	if out[0] != 2.5 {
		t.Errorf("isolated cell changed to %v", out[0])
	}
	// w >= 1 is clamped, not panicking.
	out = SmoothPrices(grid, map[int]float64{0: 2, 1: 4}, 1.5)
	if out[0] <= 2 || out[0] >= 4 {
		t.Errorf("clamped smoothing produced %v", out[0])
	}
	// Input map is not mutated.
	in := map[int]float64{0: 2, 1: 4}
	SmoothPrices(grid, in, 0.5)
	if in[0] != 2 || in[1] != 4 {
		t.Error("input mutated")
	}
}

func TestSmoothingRepeatedConvergesToConsensus(t *testing.T) {
	grid := geo.SquareGrid(40, 4)
	rng := rand.New(rand.NewSource(3))
	prices := map[int]float64{}
	for c := 0; c < grid.NumCells(); c++ {
		prices[c] = 1 + 4*rng.Float64()
	}
	for i := 0; i < 400; i++ {
		prices = SmoothPrices(grid, prices, 0.5)
	}
	if gap := PriceGap(grid, prices); gap > 0.05 {
		t.Errorf("repeated smoothing left gap %v", gap)
	}
}

func TestMAPSWithSmoothingStillOnePricePerCell(t *testing.T) {
	ctx := exampleContext(t)
	m, _ := NewMAPS(Params{PMin: 1, PMax: 3, Alpha: 0.5, Eps: 0.2, Delta: 0.01}, 2)
	m.SetLadder([]float64{1, 2, 3})
	m.Smoothing = 0.3
	for _, cell := range []int{8, 10} {
		cs := m.CellStats(cell)
		cs.Seed(1, 100000, 90000)
		cs.Seed(2, 100000, 80000)
		cs.Seed(3, 100000, 50000)
	}
	prices := m.Prices(ctx)
	if prices[0] != prices[1] {
		t.Errorf("cell 8 tasks priced differently: %v vs %v", prices[0], prices[1])
	}
	// Cells 8 and 10 are not neighbors on the 4x4 grid, so smoothing with no
	// priced neighbors leaves the Example 5 prices intact.
	if prices[0] != 3 || prices[2] != 2 {
		t.Errorf("non-adjacent grids should keep {3,2}, got %v", prices)
	}
}

func TestMAPSSaveLoadRoundTrip(t *testing.T) {
	m1, _ := NewMAPS(DefaultParams(), 2.2)
	m1.Smoothing = 0.25
	rng := rand.New(rand.NewSource(5))
	for cell := 0; cell < 6; cell++ {
		cs := m1.CellStats(cell)
		for _, p := range cs.Ladder() {
			tried := 50 + rng.Intn(500)
			cs.Seed(p, tried, rng.Intn(tried+1))
		}
	}
	var buf bytes.Buffer
	if err := m1.SaveState(&buf); err != nil {
		t.Fatal(err)
	}

	m2, _ := NewMAPS(DefaultParams(), 1.0)
	if err := m2.LoadState(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if m2.BasePrice() != m1.BasePrice() || m2.Smoothing != m1.Smoothing {
		t.Errorf("scalar state differs: pb %v/%v smoothing %v/%v",
			m2.BasePrice(), m1.BasePrice(), m2.Smoothing, m1.Smoothing)
	}
	for cell := 0; cell < 6; cell++ {
		a, b := m1.CellStats(cell), m2.CellStats(cell)
		if a.Total() != b.Total() {
			t.Fatalf("cell %d total %d vs %d", cell, a.Total(), b.Total())
		}
		for _, p := range a.Ladder() {
			if a.TriedAt(p) != b.TriedAt(p) || math.Abs(a.MeanAt(p)-b.MeanAt(p)) > 1e-12 {
				t.Fatalf("cell %d price %v: stats differ", cell, p)
			}
		}
	}
	// Save the restored copy: must be byte-identical (deterministic order).
	var buf2 bytes.Buffer
	if err := m2.SaveState(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("round-tripped snapshot differs")
	}
}

func TestMAPSLoadStateRejectsGarbage(t *testing.T) {
	m, _ := NewMAPS(DefaultParams(), 2)
	cases := []string{
		"not json",
		`{"version":99,"ladder":[1,2]}`,
		`{"version":1,"ladder":[]}`,
		`{"version":1,"ladder":[2,1]}`,
		`{"version":1,"ladder":[1,2],"cells":[{"cell":-1}]}`,
		`{"version":1,"ladder":[1,2],"cells":[{"cell":0,"prices":[{"price":1,"tried":2,"accepts":5}]}]}`,
	}
	for i, c := range cases {
		if err := m.LoadState(strings.NewReader(c)); err == nil {
			t.Errorf("case %d should be rejected", i)
		}
	}
}

func TestMAPSLoadedStatePricesLikeOriginal(t *testing.T) {
	// A restored strategy must make the same pricing decisions.
	ctx := exampleContext(t)
	m1, _ := NewMAPS(Params{PMin: 1, PMax: 3, Alpha: 0.5, Eps: 0.2, Delta: 0.01}, 2)
	m1.SetLadder([]float64{1, 2, 3})
	for _, cell := range []int{8, 10} {
		cs := m1.CellStats(cell)
		cs.Seed(1, 100000, 90000)
		cs.Seed(2, 100000, 80000)
		cs.Seed(3, 100000, 50000)
	}
	var buf bytes.Buffer
	if err := m1.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	m2, _ := NewMAPS(Params{PMin: 1, PMax: 3, Alpha: 0.5, Eps: 0.2, Delta: 0.01}, 1)
	if err := m2.LoadState(&buf); err != nil {
		t.Fatal(err)
	}
	p1 := m1.Prices(ctx)
	p2 := m2.Prices(ctx)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("restored strategy disagrees at task %d: %v vs %v", i, p1[i], p2[i])
		}
	}
}
