package core

import "spatialcrowd/internal/spatial"

// SmoothPrices applies one pass of spatial price smoothing: each cell's
// price moves toward the average price of its neighboring cells (up to 8 on
// a grid; the cluster adjacency on a road network), weighted by w in [0, 1).
// This implements the practical note of Section 4.2.3 — "Spatial smoothing
// can also be integrated to reduce the gap of unit prices among neighbouring
// grids" — which platforms use to avoid cliff-edge surges across street
// boundaries.
//
// Cells absent from prices (no tasks this period) do not contribute to
// their neighbors' averages. The result is a new map; the input is not
// modified.
func SmoothPrices(space spatial.Space, prices map[int]float64, w float64) map[int]float64 {
	out := make(map[int]float64, len(prices))
	if w <= 0 {
		for c, p := range prices {
			out[c] = p
		}
		return out
	}
	if w >= 1 {
		w = 0.999
	}
	var buf []int
	//lint:ordered each cell's smoothed value reads the input map and writes only out[cell]
	for cell, p := range prices {
		sum, n := 0.0, 0
		buf = space.NeighborsAppend(cell, buf[:0])
		for _, nb := range buf {
			if np, ok := prices[nb]; ok {
				sum += np
				n++
			}
		}
		if n == 0 {
			out[cell] = p
			continue
		}
		out[cell] = (1-w)*p + w*sum/float64(n)
	}
	return out
}

// SmoothPricesIncremental is SmoothPrices restricted to the cells whose
// result can actually have changed since a previous smoothing pass: given
// the previous pass's raw input (prevRaw) and output (prevSmoothed) under
// the same weight and spatial backend, a cell is recomputed iff its own raw
// price or any neighbor's raw price changed, appeared, or disappeared;
// every other cell copies its previous smoothed value, which is bit-exact
// because its entire input neighborhood is unchanged and the per-cell
// computation touches nothing else. Passing nil history falls back to a
// full SmoothPrices pass. The result is a new map; no input is modified.
func SmoothPricesIncremental(space spatial.Space, prices, prevRaw, prevSmoothed map[int]float64, w float64) map[int]float64 {
	if prevRaw == nil || prevSmoothed == nil {
		return SmoothPrices(space, prices, w)
	}
	out := make(map[int]float64, len(prices))
	if w <= 0 {
		for c, p := range prices {
			out[c] = p
		}
		return out
	}
	if w >= 1 {
		w = 0.999
	}
	dirty := make(map[int]struct{})
	for c, p := range prices {
		if pp, ok := prevRaw[c]; !ok || pp != p {
			dirty[c] = struct{}{}
		}
	}
	for c := range prevRaw {
		if _, ok := prices[c]; !ok {
			dirty[c] = struct{}{}
		}
	}
	var buf []int
	//lint:ordered each cell's smoothed value reads the input maps and writes only out[cell]
	for cell, p := range prices {
		buf = space.NeighborsAppend(cell, buf[:0])
		_, recompute := dirty[cell]
		if !recompute {
			for _, nb := range buf {
				if _, d := dirty[nb]; d {
					recompute = true
					break
				}
			}
		}
		if !recompute {
			out[cell] = prevSmoothed[cell]
			continue
		}
		sum, n := 0.0, 0
		for _, nb := range buf {
			if np, ok := prices[nb]; ok {
				sum += np
				n++
			}
		}
		if n == 0 {
			out[cell] = p
			continue
		}
		out[cell] = (1-w)*p + w*sum/float64(n)
	}
	return out
}

// PriceGap measures the maximum absolute price difference between any two
// neighboring priced cells — the quantity smoothing is meant to shrink.
func PriceGap(space spatial.Space, prices map[int]float64) float64 {
	gap := 0.0
	var buf []int
	//lint:ordered max accumulation commutes across visit orders
	for cell, p := range prices {
		buf = space.NeighborsAppend(cell, buf[:0])
		for _, nb := range buf {
			if np, ok := prices[nb]; ok {
				if d := p - np; d > gap {
					gap = d
				} else if -d > gap {
					gap = -d
				}
			}
		}
	}
	return gap
}
