package core

import "spatialcrowd/internal/geo"

// SmoothPrices applies one pass of spatial price smoothing: each grid's
// price moves toward the average price of its (up to 8) neighboring grids,
// weighted by w in [0, 1). This implements the practical note of
// Section 4.2.3 — "Spatial smoothing can also be integrated to reduce the
// gap of unit prices among neighbouring grids" — which platforms use to
// avoid cliff-edge surges across street boundaries.
//
// Grids absent from prices (no tasks this period) do not contribute to
// their neighbors' averages. The result is a new map; the input is not
// modified.
func SmoothPrices(grid geo.Grid, prices map[int]float64, w float64) map[int]float64 {
	out := make(map[int]float64, len(prices))
	if w <= 0 {
		for c, p := range prices {
			out[c] = p
		}
		return out
	}
	if w >= 1 {
		w = 0.999
	}
	for cell, p := range prices {
		sum, n := 0.0, 0
		for _, nb := range grid.Neighbors(cell) {
			if np, ok := prices[nb]; ok {
				sum += np
				n++
			}
		}
		if n == 0 {
			out[cell] = p
			continue
		}
		out[cell] = (1-w)*p + w*sum/float64(n)
	}
	return out
}

// PriceGap measures the maximum absolute price difference between any two
// neighboring priced grids — the quantity smoothing is meant to shrink.
func PriceGap(grid geo.Grid, prices map[int]float64) float64 {
	gap := 0.0
	for cell, p := range prices {
		for _, nb := range grid.Neighbors(cell) {
			if np, ok := prices[nb]; ok {
				if d := p - np; d > gap {
					gap = d
				} else if -d > gap {
					gap = -d
				}
			}
		}
	}
	return gap
}
