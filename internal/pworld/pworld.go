// Package pworld implements the possible-world semantics of Definitions 5–6:
// exact expected total revenue by enumerating all 2^|R| accept/reject worlds
// of the probabilistic bipartite graph, and a Monte-Carlo estimator for
// instances too large to enumerate. It is the ground-truth yardstick for the
// pricing strategies and for the approximation L^g(n, p) of Eq. (1).
package pworld

import (
	"fmt"
	"math"
	"math/rand"

	"spatialcrowd/internal/match"
)

// World describes the probabilistic bipartite graph B^t = <R, W, E, S> with
// chosen prices: task i accepts its price with probability AcceptProb[i] and
// contributes weight Weight[i] = d_i * p_i when matched.
type World struct {
	Graph      *match.Graph // tasks on the left, workers on the right
	AcceptProb []float64    // S^g(p_i), per task
	Weight     []float64    // d_i * p_i, per task
}

// Validate checks the structural invariants of the world.
func (w *World) Validate() error {
	n := w.Graph.NLeft()
	if len(w.AcceptProb) != n || len(w.Weight) != n {
		return fmt.Errorf("pworld: %d tasks but %d probs / %d weights",
			n, len(w.AcceptProb), len(w.Weight))
	}
	for i, p := range w.AcceptProb {
		if p < 0 || p > 1 || math.IsNaN(p) {
			return fmt.Errorf("pworld: task %d acceptance probability %v out of [0,1]", i, p)
		}
		if w.Weight[i] < 0 {
			return fmt.Errorf("pworld: task %d negative weight %v", i, w.Weight[i])
		}
	}
	return nil
}

// MaxTasksExact bounds the enumeration: 2^20 worlds is ~1M matchings.
const MaxTasksExact = 20

// ExpectedRevenueExact computes E[U(B)] by full possible-world enumeration
// (Definition 6). It returns an error when the world is invalid or has more
// than MaxTasksExact tasks.
func ExpectedRevenueExact(w *World) (float64, error) {
	if err := w.Validate(); err != nil {
		return 0, err
	}
	n := w.Graph.NLeft()
	if n > MaxTasksExact {
		return 0, fmt.Errorf("pworld: %d tasks exceeds exact enumeration limit %d", n, MaxTasksExact)
	}
	total := 0.0
	accepted := make([]int, 0, n)
	for mask := 0; mask < 1<<uint(n); mask++ {
		prob := 1.0
		accepted = accepted[:0]
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				prob *= w.AcceptProb[i]
				accepted = append(accepted, i)
			} else {
				prob *= 1 - w.AcceptProb[i]
			}
		}
		if prob == 0 {
			continue
		}
		total += prob * revenueOf(w, accepted)
	}
	return total, nil
}

// ExpectedRevenueMC estimates E[U(B)] by sampling `samples` possible worlds.
// The returned standard error is the sample standard deviation divided by
// sqrt(samples).
func ExpectedRevenueMC(w *World, samples int, rng *rand.Rand) (mean, stderr float64, err error) {
	if err := w.Validate(); err != nil {
		return 0, 0, err
	}
	if samples <= 0 {
		return 0, 0, fmt.Errorf("pworld: samples must be positive, got %d", samples)
	}
	n := w.Graph.NLeft()
	accepted := make([]int, 0, n)
	sum, sumsq := 0.0, 0.0
	for s := 0; s < samples; s++ {
		accepted = accepted[:0]
		for i := 0; i < n; i++ {
			if rng.Float64() < w.AcceptProb[i] {
				accepted = append(accepted, i)
			}
		}
		u := revenueOf(w, accepted)
		sum += u
		sumsq += u * u
	}
	mean = sum / float64(samples)
	variance := sumsq/float64(samples) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return mean, math.Sqrt(variance / float64(samples)), nil
}

// revenueOf returns U(PWB): the maximum-weight matching value of the
// subgraph induced by the accepting tasks (Definition 5). Edge weights are
// task-determined, so the exact matroid greedy applies.
func revenueOf(w *World, accepted []int) float64 {
	if len(accepted) == 0 {
		return 0
	}
	sub, origin := w.Graph.InducedLeft(accepted)
	weights := make([]float64, len(origin))
	for i, l := range origin {
		weights[i] = w.Weight[l]
	}
	_, total := match.MaxWeightByLeft(sub, weights)
	return total
}

// WorldProbability returns Pr[PWB_i] for the world where exactly the tasks
// in `accepted` (a bitmask) accept — the sampling probability formula of
// Section 2.2. Exposed for tests and tooling.
func WorldProbability(w *World, mask uint64) float64 {
	prob := 1.0
	for i := 0; i < w.Graph.NLeft(); i++ {
		if mask&(1<<uint(i)) != 0 {
			prob *= w.AcceptProb[i]
		} else {
			prob *= 1 - w.AcceptProb[i]
		}
	}
	return prob
}
