package pworld

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"spatialcrowd/internal/match"
)

// exampleWorld reproduces the running example of the paper with prices
// {3, 3, 2} for tasks {r1, r2, r3} (Example 3 / Figure 2):
// distances {1.3, 0.7, 1.0}, acceptance S(3)=0.5, S(3)=0.5, S(2)=0.8.
// Graph of Figure 1b: r1 and r2 (grid 9) reach only w1; r3 (grid 11)
// reaches all three workers — the topology Example 5's arithmetic pins down.
func exampleWorld() *World {
	g := match.NewGraph(3, 3)
	g.AddEdge(0, 0) // r1-w1
	g.AddEdge(1, 0) // r2-w1
	g.AddEdge(2, 0) // r3-w1
	g.AddEdge(2, 1) // r3-w2
	g.AddEdge(2, 2) // r3-w3
	return &World{
		Graph:      g,
		AcceptProb: []float64{0.5, 0.5, 0.8},
		Weight:     []float64{1.3 * 3, 0.7 * 3, 1.0 * 2},
	}
}

func TestExpectedRevenueExactPaperExample3(t *testing.T) {
	// "given the unit prices {3, 3, 2}, the expected total revenue of
	// Fig. 1b is 4.1" — the exact enumeration gives 4.075, which the paper
	// reports rounded to one decimal. See EXPERIMENTS.md for the world-by-
	// world table.
	w := exampleWorld()
	got, err := ExpectedRevenueExact(w)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-4.075) > 1e-9 {
		t.Fatalf("E[U] = %v, want 4.075 (paper Example 3, rounded to 4.1)", got)
	}
}

func TestPaperFigure2Worlds(t *testing.T) {
	// Spot-check individual possible worlds from Figure 2. World 2 is
	// {r1 accepts, r2/r3 reject}: Pr = 0.5*0.5*0.2 = 0.05, U = 3.9 — the
	// probability the paper computes explicitly in Example 3.
	w := exampleWorld()
	if p := WorldProbability(w, 0b001); math.Abs(p-0.05) > 1e-12 {
		t.Errorf("Pr[only r1] = %v, want 0.05", p)
	}
	if u := revenueOf(w, []int{0}); math.Abs(u-3.9) > 1e-9 {
		t.Errorf("U[only r1] = %v, want 3.9", u)
	}
	// All accept: Pr = 0.5*0.5*0.8 = 0.2; w1 serves r1 (3.9), r3 takes
	// w2/w3 (2.0), r2 is unserved: U = 5.9.
	if p := WorldProbability(w, 0b111); math.Abs(p-0.2) > 1e-12 {
		t.Errorf("Pr[all] = %v, want 0.2", p)
	}
	if u := revenueOf(w, []int{0, 1, 2}); math.Abs(u-5.9) > 1e-9 {
		t.Errorf("U[all accept] = %v, want 5.9", u)
	}
	// r1 and r2 accept, r3 rejects: they share w1, the heavier r1 wins.
	if u := revenueOf(w, []int{0, 1}); math.Abs(u-3.9) > 1e-9 {
		t.Errorf("U[r1,r2] = %v, want 3.9", u)
	}
	// r2 and r3 accept: no conflict (r3 moves to w2/w3): 2.1 + 2.0.
	if u := revenueOf(w, []int{1, 2}); math.Abs(u-4.1) > 1e-9 {
		t.Errorf("U[r2,r3] = %v, want 4.1", u)
	}
	// None accept.
	if u := revenueOf(w, nil); u != 0 {
		t.Errorf("U[empty] = %v, want 0", u)
	}
}

func TestWorldProbabilitiesSumToOne(t *testing.T) {
	f := func(a, b, c uint8) bool {
		w := exampleWorld()
		w.AcceptProb = []float64{
			float64(a%101) / 100,
			float64(b%101) / 100,
			float64(c%101) / 100,
		}
		sum := 0.0
		for mask := uint64(0); mask < 8; mask++ {
			sum += WorldProbability(w, mask)
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExpectedRevenueOptimalPricesBeatUniform(t *testing.T) {
	// The paper argues {3,3,2} is optimal for the example; it must beat the
	// globally-uniform price 2 (which Table 1 favours only with unlimited
	// supply).
	table := map[float64]float64{1: 0.9, 2: 0.8, 3: 0.5}
	build := func(p1, p2, p3 float64) *World {
		w := exampleWorld()
		w.AcceptProb = []float64{table[p1], table[p2], table[p3]}
		w.Weight = []float64{1.3 * p1, 0.7 * p2, 1.0 * p3}
		return w
	}
	opt, err := ExpectedRevenueExact(build(3, 3, 2))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{1, 2, 3} {
		uni, err := ExpectedRevenueExact(build(p, p, p))
		if err != nil {
			t.Fatal(err)
		}
		if uni > opt+1e-9 {
			t.Errorf("uniform price %v yields %v > optimal %v", p, uni, opt)
		}
	}
	// Exhaustive check over per-grid price combinations: r1 and r2 share
	// grid 9 so they must share a price (Definition 1's one-price-per-grid
	// rule). {3,3,2} is optimal, exactly as the paper claims.
	best, bestCombo := -1.0, [3]float64{}
	for _, p9 := range []float64{1, 2, 3} {
		for _, p11 := range []float64{1, 2, 3} {
			u, err := ExpectedRevenueExact(build(p9, p9, p11))
			if err != nil {
				t.Fatal(err)
			}
			if u > best {
				best, bestCombo = u, [3]float64{p9, p9, p11}
			}
		}
	}
	if bestCombo != [3]float64{3, 3, 2} {
		t.Errorf("optimal combo = %v (%.4f), paper says {3,3,2} (%.4f)", bestCombo, best, opt)
	}
}

func TestExactVsMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(8)
		nw := 1 + rng.Intn(6)
		g := match.NewGraph(n, nw)
		probs := make([]float64, n)
		weights := make([]float64, n)
		for i := 0; i < n; i++ {
			probs[i] = rng.Float64()
			weights[i] = rng.Float64() * 5
			for j := 0; j < nw; j++ {
				if rng.Float64() < 0.5 {
					g.AddEdge(i, j)
				}
			}
		}
		w := &World{Graph: g, AcceptProb: probs, Weight: weights}
		exact, err := ExpectedRevenueExact(w)
		if err != nil {
			t.Fatal(err)
		}
		mc, se, err := ExpectedRevenueMC(w, 20000, rng)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(mc-exact) > 5*se+1e-6 {
			t.Errorf("trial %d: MC %v vs exact %v (se %v)", trial, mc, exact, se)
		}
	}
}

func TestExpectedRevenueMonotoneInProb(t *testing.T) {
	// Raising any single acceptance probability cannot decrease E[U].
	w := exampleWorld()
	base, _ := ExpectedRevenueExact(w)
	for i := range w.AcceptProb {
		w2 := exampleWorld()
		w2.AcceptProb[i] = math.Min(1, w2.AcceptProb[i]+0.15)
		up, _ := ExpectedRevenueExact(w2)
		if up < base-1e-9 {
			t.Errorf("raising prob of task %d decreased E[U]: %v -> %v", i, base, up)
		}
		_ = w2
	}
	_ = base
}

func TestValidationErrors(t *testing.T) {
	w := exampleWorld()
	w.AcceptProb = w.AcceptProb[:2]
	if _, err := ExpectedRevenueExact(w); err == nil {
		t.Error("mismatched probs should error")
	}
	w = exampleWorld()
	w.AcceptProb[0] = 1.5
	if _, err := ExpectedRevenueExact(w); err == nil {
		t.Error("out-of-range prob should error")
	}
	w = exampleWorld()
	w.Weight[0] = -1
	if _, err := ExpectedRevenueExact(w); err == nil {
		t.Error("negative weight should error")
	}
	w = exampleWorld()
	if _, _, err := ExpectedRevenueMC(w, 0, rand.New(rand.NewSource(1))); err == nil {
		t.Error("zero samples should error")
	}
	big := &World{Graph: match.NewGraph(MaxTasksExact+1, 1),
		AcceptProb: make([]float64, MaxTasksExact+1),
		Weight:     make([]float64, MaxTasksExact+1)}
	if _, err := ExpectedRevenueExact(big); err == nil {
		t.Error("oversized exact enumeration should error")
	}
}

func TestDeterministicWorld(t *testing.T) {
	// All probabilities 1: E[U] equals the max-weight matching outright.
	w := exampleWorld()
	w.AcceptProb = []float64{1, 1, 1}
	got, err := ExpectedRevenueExact(w)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-5.9) > 1e-9 {
		t.Errorf("E[U] = %v, want 5.9", got)
	}
	// All probabilities 0: no revenue.
	w.AcceptProb = []float64{0, 0, 0}
	got, _ = ExpectedRevenueExact(w)
	if got != 0 {
		t.Errorf("E[U] = %v, want 0", got)
	}
}
