// Package roadnet provides a road-network distance substrate. The paper
// defines d_r as the travel distance from a task's origin to its destination
// "(e.g., Euclidean or road-network distance)"; this package supplies the
// road-network option: a directed weighted graph with Dijkstra and A*
// shortest paths, nearest-node snapping for off-network points, and a
// synthetic Manhattan-style grid-city generator.
package roadnet

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"

	"spatialcrowd/internal/geo"
)

// NodeID identifies a network node.
type NodeID int

type edge struct {
	to NodeID
	w  float64
}

// Network is a directed weighted road graph embedded in the plane.
type Network struct {
	coords []geo.Point
	adj    [][]edge
	edges  int
}

// New returns an empty network.
func New() *Network { return &Network{} }

// AddNode inserts a node at p and returns its id.
func (nw *Network) AddNode(p geo.Point) NodeID {
	nw.coords = append(nw.coords, p)
	nw.adj = append(nw.adj, nil)
	return NodeID(len(nw.coords) - 1)
}

// NumNodes returns the node count.
func (nw *Network) NumNodes() int { return len(nw.coords) }

// NumEdges returns the directed edge count.
func (nw *Network) NumEdges() int { return nw.edges }

// Coord returns a node's location.
func (nw *Network) Coord(id NodeID) geo.Point { return nw.coords[id] }

// AddEdge inserts the directed edge a -> b with weight w. It panics on
// invalid endpoints or negative weight (shortest paths require w >= 0).
func (nw *Network) AddEdge(a, b NodeID, w float64) {
	if int(a) >= len(nw.coords) || int(b) >= len(nw.coords) || a < 0 || b < 0 {
		panic(fmt.Sprintf("roadnet: edge (%d,%d) out of range", a, b))
	}
	if w < 0 || math.IsNaN(w) {
		panic(fmt.Sprintf("roadnet: negative edge weight %v", w))
	}
	nw.adj[a] = append(nw.adj[a], edge{to: b, w: w})
	nw.edges++
}

// AddRoad inserts a bidirectional road between a and b weighted by the
// Euclidean distance between their coordinates.
func (nw *Network) AddRoad(a, b NodeID) {
	w := nw.coords[a].Dist(nw.coords[b])
	nw.AddEdge(a, b, w)
	nw.AddEdge(b, a, w)
}

// Unreachable is returned by shortest-path queries when no route exists.
var Unreachable = math.Inf(1)

// ShortestPath runs Dijkstra from a to b and returns the distance and the
// node path (inclusive). When b is unreachable it returns Unreachable and a
// nil path.
func (nw *Network) ShortestPath(a, b NodeID) (float64, []NodeID) {
	return nw.search(a, b, func(NodeID) float64 { return 0 })
}

// AStar runs A* with the (admissible) straight-line-distance heuristic,
// which never overestimates when edge weights are at least the Euclidean
// length of the road. It returns the same answers as ShortestPath, faster on
// long queries.
func (nw *Network) AStar(a, b NodeID) (float64, []NodeID) {
	target := nw.coords[b]
	return nw.search(a, b, func(n NodeID) float64 { return nw.coords[n].Dist(target) })
}

// search is the shared Dijkstra/A* implementation; h is the heuristic.
func (nw *Network) search(a, b NodeID, h func(NodeID) float64) (float64, []NodeID) {
	n := len(nw.coords)
	if int(a) >= n || int(b) >= n || a < 0 || b < 0 {
		return Unreachable, nil
	}
	dist := make([]float64, n)
	prev := make([]NodeID, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = Unreachable
		prev[i] = -1
	}
	dist[a] = 0
	pq := &nodeHeap{{id: a, f: h(a)}}
	for pq.Len() > 0 {
		cur := heap.Pop(pq).(nodeEntry)
		if done[cur.id] {
			continue
		}
		done[cur.id] = true
		if cur.id == b {
			break
		}
		for _, e := range nw.adj[cur.id] {
			if done[e.to] {
				continue
			}
			if d := dist[cur.id] + e.w; d < dist[e.to] {
				dist[e.to] = d
				prev[e.to] = cur.id
				heap.Push(pq, nodeEntry{id: e.to, f: d + h(e.to)})
			}
		}
	}
	if math.IsInf(dist[b], 1) {
		return Unreachable, nil
	}
	var path []NodeID
	for at := b; at != -1; at = prev[at] {
		path = append(path, at)
	}
	// Reverse in place.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return dist[b], path
}

type nodeEntry struct {
	id NodeID
	f  float64
}

type nodeHeap []nodeEntry

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].f < h[j].f }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(nodeEntry)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// VisitEdges calls fn for every directed edge out of id, in insertion order.
// External shortest-path code (e.g. the spatial.RoadSpace bounded searches)
// uses it to walk the adjacency without the package exposing its edge
// representation.
func (nw *Network) VisitEdges(id NodeID, fn func(to NodeID, w float64)) {
	if id < 0 || int(id) >= len(nw.adj) {
		return
	}
	for _, e := range nw.adj[id] {
		fn(e.to, e.w)
	}
}

// BoundedShortestDist runs Dijkstra from a toward b but abandons the search
// as soon as the frontier exceeds bound: every later pop would only be
// farther. It returns Unreachable both when no route exists and when the
// shortest route is longer than bound, so range checks ("is b within r of
// a?") never pay the full O(V log V) search on a dense network.
func (nw *Network) BoundedShortestDist(a, b NodeID, bound float64) float64 {
	d, _ := nw.BoundedShortestDistInfo(a, b, bound)
	return d
}

// BoundedShortestDistInfo is BoundedShortestDist distinguishing the two
// Unreachable outcomes: disconnected is true when the search exhausted a's
// component without reaching b — no route exists at ANY distance — and
// false when the search was merely cut off at bound (the route, if any, is
// longer than bound). Callers caching negative range checks need the
// distinction: disconnection is permanent and cacheable as an exact
// Unreachable, a bound cutoff only establishes a lower bound.
func (nw *Network) BoundedShortestDistInfo(a, b NodeID, bound float64) (d float64, disconnected bool) {
	n := len(nw.coords)
	if int(a) >= n || int(b) >= n || a < 0 || b < 0 || bound < 0 {
		return Unreachable, false
	}
	if a == b {
		return 0, false
	}
	dist := make([]float64, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[a] = 0
	pq := &nodeHeap{{id: a, f: 0}}
	for pq.Len() > 0 {
		cur := heap.Pop(pq).(nodeEntry)
		if cur.f > bound {
			return Unreachable, false
		}
		if done[cur.id] {
			continue
		}
		done[cur.id] = true
		if cur.id == b {
			return dist[b], false
		}
		for _, e := range nw.adj[cur.id] {
			if done[e.to] {
				continue
			}
			if d := dist[cur.id] + e.w; d < dist[e.to] {
				dist[e.to] = d
				heap.Push(pq, nodeEntry{id: e.to, f: d})
			}
		}
	}
	return Unreachable, true
}

// Nearest returns the network node closest to p (linear scan; networks here
// are small enough that an index is not warranted).
func (nw *Network) Nearest(p geo.Point) NodeID {
	best, bestD := NodeID(-1), math.Inf(1)
	for i, c := range nw.coords {
		if d := c.SqDist(p); d < bestD {
			best, bestD = NodeID(i), d
		}
	}
	return best
}

// Distance returns the road distance between two arbitrary points: walk to
// the nearest node, ride the network, walk from the nearest node. When no
// route exists it falls back to the Euclidean distance (a disconnected map
// should degrade, not break pricing).
func (nw *Network) Distance(a, b geo.Point) float64 {
	if nw.NumNodes() == 0 {
		return a.Dist(b)
	}
	na, nb := nw.Nearest(a), nw.Nearest(b)
	d, _ := nw.AStar(na, nb)
	if math.IsInf(d, 1) {
		return a.Dist(b)
	}
	return a.Dist(nw.coords[na]) + d + nw.coords[nb].Dist(b)
}

// GridCityConfig parameterizes the synthetic city generator.
type GridCityConfig struct {
	Region geo.Rect
	Cols   int
	Rows   int
	// Jitter displaces intersections by up to this fraction of the block
	// size (0 = a perfect grid).
	Jitter float64
	// DropProb removes each street segment independently with this
	// probability, producing dead ends and detours (kept below the
	// percolation threshold to stay mostly connected).
	DropProb float64
	Seed     int64
}

// GridCity builds a Manhattan-style road network: a Cols x Rows lattice of
// intersections connected by orthogonal streets, with optional jitter and
// random missing segments.
func GridCity(cfg GridCityConfig) (*Network, error) {
	if cfg.Cols < 2 || cfg.Rows < 2 {
		return nil, fmt.Errorf("roadnet: grid city needs at least 2x2 intersections, got %dx%d",
			cfg.Cols, cfg.Rows)
	}
	if cfg.Region.Width() <= 0 || cfg.Region.Height() <= 0 {
		return nil, fmt.Errorf("roadnet: empty region %v", cfg.Region)
	}
	if cfg.DropProb < 0 || cfg.DropProb >= 1 {
		return nil, fmt.Errorf("roadnet: DropProb must be in [0,1), got %v", cfg.DropProb)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	nw := New()
	bw := cfg.Region.Width() / float64(cfg.Cols-1)
	bh := cfg.Region.Height() / float64(cfg.Rows-1)
	id := func(c, r int) NodeID { return NodeID(r*cfg.Cols + c) }
	for r := 0; r < cfg.Rows; r++ {
		for c := 0; c < cfg.Cols; c++ {
			p := geo.Point{
				X: cfg.Region.Min.X + float64(c)*bw,
				Y: cfg.Region.Min.Y + float64(r)*bh,
			}
			if cfg.Jitter > 0 {
				p.X += (rng.Float64() - 0.5) * cfg.Jitter * bw
				p.Y += (rng.Float64() - 0.5) * cfg.Jitter * bh
				p = cfg.Region.Clamp(p)
			}
			nw.AddNode(p)
		}
	}
	for r := 0; r < cfg.Rows; r++ {
		for c := 0; c < cfg.Cols; c++ {
			if c+1 < cfg.Cols && rng.Float64() >= cfg.DropProb {
				nw.AddRoad(id(c, r), id(c+1, r))
			}
			if r+1 < cfg.Rows && rng.Float64() >= cfg.DropProb {
				nw.AddRoad(id(c, r), id(c, r+1))
			}
		}
	}
	return nw, nil
}
