package roadnet

import (
	"math"
	"math/rand"
	"testing"

	"spatialcrowd/internal/geo"
)

// lineNetwork builds 0 -1- 1 -1- 2 -1- 3 on the x axis.
func lineNetwork() *Network {
	nw := New()
	for i := 0; i < 4; i++ {
		nw.AddNode(geo.Point{X: float64(i), Y: 0})
	}
	for i := 0; i < 3; i++ {
		nw.AddRoad(NodeID(i), NodeID(i+1))
	}
	return nw
}

func TestShortestPathLine(t *testing.T) {
	nw := lineNetwork()
	d, path := nw.ShortestPath(0, 3)
	if d != 3 {
		t.Fatalf("distance = %v, want 3", d)
	}
	want := []NodeID{0, 1, 2, 3}
	if len(path) != len(want) {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
	// Self path.
	d, path = nw.ShortestPath(2, 2)
	if d != 0 || len(path) != 1 || path[0] != 2 {
		t.Errorf("self path: d=%v path=%v", d, path)
	}
}

func TestShortestPathPrefersDetourOverLongEdge(t *testing.T) {
	// Triangle: direct edge 0-2 costs 10, the detour via 1 costs 2.
	nw := New()
	a := nw.AddNode(geo.Point{X: 0, Y: 0})
	b := nw.AddNode(geo.Point{X: 1, Y: 0})
	c := nw.AddNode(geo.Point{X: 2, Y: 0})
	nw.AddEdge(a, c, 10)
	nw.AddEdge(a, b, 1)
	nw.AddEdge(b, c, 1)
	d, path := nw.ShortestPath(a, c)
	if d != 2 || len(path) != 3 {
		t.Fatalf("d=%v path=%v, want detour", d, path)
	}
}

func TestUnreachable(t *testing.T) {
	nw := New()
	a := nw.AddNode(geo.Point{X: 0, Y: 0})
	b := nw.AddNode(geo.Point{X: 5, Y: 5})
	d, path := nw.ShortestPath(a, b)
	if !math.IsInf(d, 1) || path != nil {
		t.Errorf("disconnected: d=%v path=%v", d, path)
	}
	// Directed edge: reachable one way only.
	nw.AddEdge(a, b, 1)
	if d, _ := nw.ShortestPath(a, b); d != 1 {
		t.Errorf("forward d=%v", d)
	}
	if d, _ := nw.ShortestPath(b, a); !math.IsInf(d, 1) {
		t.Errorf("backward should be unreachable, d=%v", d)
	}
}

func TestAStarMatchesDijkstra(t *testing.T) {
	nw, err := GridCity(GridCityConfig{
		Region: geo.Square(100), Cols: 12, Rows: 12, Jitter: 0.3, DropProb: 0.1, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 200; trial++ {
		a := NodeID(rng.Intn(nw.NumNodes()))
		b := NodeID(rng.Intn(nw.NumNodes()))
		d1, _ := nw.ShortestPath(a, b)
		d2, _ := nw.AStar(a, b)
		if math.IsInf(d1, 1) != math.IsInf(d2, 1) {
			t.Fatalf("reachability disagreement %v vs %v", d1, d2)
		}
		if !math.IsInf(d1, 1) && math.Abs(d1-d2) > 1e-9 {
			t.Fatalf("A* %v != Dijkstra %v for %d->%d", d2, d1, a, b)
		}
	}
}

func TestPathEdgesExistAndSumToDistance(t *testing.T) {
	nw, err := GridCity(GridCityConfig{
		Region: geo.Square(50), Cols: 8, Rows: 8, Jitter: 0.2, DropProb: 0.05, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 100; trial++ {
		a := NodeID(rng.Intn(nw.NumNodes()))
		b := NodeID(rng.Intn(nw.NumNodes()))
		d, path := nw.AStar(a, b)
		if math.IsInf(d, 1) {
			continue
		}
		sum := 0.0
		for i := 1; i < len(path); i++ {
			w := math.Inf(1)
			for _, e := range nw.adj[path[i-1]] {
				if e.to == path[i] && e.w < w {
					w = e.w
				}
			}
			if math.IsInf(w, 1) {
				t.Fatalf("path uses non-edge %d->%d", path[i-1], path[i])
			}
			sum += w
		}
		if math.Abs(sum-d) > 1e-9 {
			t.Fatalf("path weighs %v, reported %v", sum, d)
		}
	}
}

func TestRoadDistanceAtLeastEuclidean(t *testing.T) {
	// With edges weighted by Euclidean length, network distance between two
	// nodes can never beat the straight line.
	nw, err := GridCity(GridCityConfig{
		Region: geo.Square(100), Cols: 10, Rows: 10, Jitter: 0.4, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 200; trial++ {
		a := NodeID(rng.Intn(nw.NumNodes()))
		b := NodeID(rng.Intn(nw.NumNodes()))
		d, _ := nw.AStar(a, b)
		if math.IsInf(d, 1) {
			continue
		}
		if euclid := nw.Coord(a).Dist(nw.Coord(b)); d < euclid-1e-9 {
			t.Fatalf("road distance %v < euclidean %v", d, euclid)
		}
	}
}

func TestPerfectGridIsManhattan(t *testing.T) {
	// No jitter, no drops: network distance between intersections equals the
	// Manhattan distance.
	nw, err := GridCity(GridCityConfig{Region: geo.Square(90), Cols: 10, Rows: 10})
	if err != nil {
		t.Fatal(err)
	}
	d, _ := nw.ShortestPath(0, NodeID(10*10-1)) // corner to corner
	if math.Abs(d-180) > 1e-9 {
		t.Errorf("corner-to-corner = %v, want 180 (Manhattan)", d)
	}
}

func TestNearestAndPointDistance(t *testing.T) {
	nw := lineNetwork()
	if n := nw.Nearest(geo.Point{X: 2.2, Y: 1}); n != 2 {
		t.Errorf("Nearest = %d, want 2", n)
	}
	// Distance includes the walks to/from the network.
	d := nw.Distance(geo.Point{X: 0, Y: 1}, geo.Point{X: 3, Y: -1})
	if math.Abs(d-(1+3+1)) > 1e-9 {
		t.Errorf("point distance = %v, want 5", d)
	}
	// Empty network: fall back to Euclidean.
	empty := New()
	if d := empty.Distance(geo.Point{X: 0, Y: 0}, geo.Point{X: 3, Y: 4}); d != 5 {
		t.Errorf("empty network distance = %v, want 5", d)
	}
}

func TestDistanceFallsBackWhenDisconnected(t *testing.T) {
	nw := New()
	nw.AddNode(geo.Point{X: 0, Y: 0})
	nw.AddNode(geo.Point{X: 100, Y: 0})
	d := nw.Distance(geo.Point{X: 1, Y: 0}, geo.Point{X: 99, Y: 0})
	if d != 98 {
		t.Errorf("fallback distance = %v, want 98 (euclidean)", d)
	}
}

func TestGridCityErrors(t *testing.T) {
	if _, err := GridCity(GridCityConfig{Region: geo.Square(10), Cols: 1, Rows: 5}); err == nil {
		t.Error("1-column city should error")
	}
	if _, err := GridCity(GridCityConfig{Region: geo.Rect{}, Cols: 3, Rows: 3}); err == nil {
		t.Error("empty region should error")
	}
	if _, err := GridCity(GridCityConfig{Region: geo.Square(10), Cols: 3, Rows: 3, DropProb: 1}); err == nil {
		t.Error("DropProb 1 should error")
	}
}

func TestAddEdgePanics(t *testing.T) {
	nw := New()
	nw.AddNode(geo.Point{})
	t.Run("out of range", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("want panic")
			}
		}()
		nw.AddEdge(0, 5, 1)
	})
	t.Run("negative weight", func(t *testing.T) {
		nw.AddNode(geo.Point{X: 1})
		defer func() {
			if recover() == nil {
				t.Error("want panic")
			}
		}()
		nw.AddEdge(0, 1, -2)
	})
}
