package stats

import (
	"fmt"
	"math"
	"sort"
)

// PSquare estimates a single quantile online without storing observations,
// using the P² algorithm (Jain & Chlamtac, 1985): five markers whose
// positions are nudged by piecewise-parabolic interpolation. The simulator
// uses it to report price and revenue quantiles over millions of
// observations in O(1) memory.
type PSquare struct {
	p       float64
	n       int
	heights [5]float64
	pos     [5]float64 // actual marker positions (1-based)
	want    [5]float64 // desired marker positions
	incr    [5]float64
	initial []float64
}

// NewPSquare returns an estimator of the p-quantile, 0 < p < 1.
func NewPSquare(p float64) (*PSquare, error) {
	if p <= 0 || p >= 1 {
		return nil, fmt.Errorf("stats: PSquare needs p in (0,1), got %v", p)
	}
	ps := &PSquare{p: p}
	ps.incr = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return ps, nil
}

// Add folds one observation into the estimator.
func (ps *PSquare) Add(x float64) {
	if ps.n < 5 {
		ps.initial = append(ps.initial, x)
		ps.n++
		if ps.n == 5 {
			sort.Float64s(ps.initial)
			for i := 0; i < 5; i++ {
				ps.heights[i] = ps.initial[i]
				ps.pos[i] = float64(i + 1)
			}
			ps.want = [5]float64{1, 1 + 2*ps.p, 1 + 4*ps.p, 3 + 2*ps.p, 5}
			ps.initial = nil
		}
		return
	}
	ps.n++

	// Find the cell containing x and update extreme heights.
	var k int
	switch {
	case x < ps.heights[0]:
		ps.heights[0] = x
		k = 0
	case x >= ps.heights[4]:
		ps.heights[4] = x
		k = 3
	default:
		for k = 0; k < 4; k++ {
			if x < ps.heights[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		ps.pos[i]++
	}
	for i := 0; i < 5; i++ {
		ps.want[i] += ps.incr[i]
	}

	// Adjust the three interior markers.
	for i := 1; i <= 3; i++ {
		d := ps.want[i] - ps.pos[i]
		if (d >= 1 && ps.pos[i+1]-ps.pos[i] > 1) || (d <= -1 && ps.pos[i-1]-ps.pos[i] < -1) {
			s := 1.0
			if d < 0 {
				s = -1
			}
			h := ps.parabolic(i, s)
			if ps.heights[i-1] < h && h < ps.heights[i+1] {
				ps.heights[i] = h
			} else {
				ps.heights[i] = ps.linear(i, s)
			}
			ps.pos[i] += s
		}
	}
}

// parabolic is the P² piecewise-parabolic height prediction.
func (ps *PSquare) parabolic(i int, s float64) float64 {
	return ps.heights[i] + s/(ps.pos[i+1]-ps.pos[i-1])*
		((ps.pos[i]-ps.pos[i-1]+s)*(ps.heights[i+1]-ps.heights[i])/(ps.pos[i+1]-ps.pos[i])+
			(ps.pos[i+1]-ps.pos[i]-s)*(ps.heights[i]-ps.heights[i-1])/(ps.pos[i]-ps.pos[i-1]))
}

// linear is the fallback height prediction.
func (ps *PSquare) linear(i int, s float64) float64 {
	j := i + int(s)
	return ps.heights[i] + s*(ps.heights[j]-ps.heights[i])/(ps.pos[j]-ps.pos[i])
}

// N returns the number of observations.
func (ps *PSquare) N() int { return ps.n }

// Quantile returns the current estimate. With fewer than five observations
// it falls back to the exact small-sample quantile; with none it returns
// NaN.
func (ps *PSquare) Quantile() float64 {
	if ps.n == 0 {
		return math.NaN()
	}
	if ps.n < 5 {
		tmp := append([]float64(nil), ps.initial...)
		sort.Float64s(tmp)
		idx := int(ps.p * float64(len(tmp)))
		if idx >= len(tmp) {
			idx = len(tmp) - 1
		}
		return tmp[idx]
	}
	return ps.heights[2]
}
