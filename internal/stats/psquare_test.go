package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestPSquareValidation(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 1.5} {
		if _, err := NewPSquare(p); err == nil {
			t.Errorf("p=%v should be rejected", p)
		}
	}
	ps, err := NewPSquare(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(ps.Quantile()) {
		t.Error("empty estimator should return NaN")
	}
}

func TestPSquareSmallSamples(t *testing.T) {
	ps, _ := NewPSquare(0.5)
	ps.Add(3)
	if ps.Quantile() != 3 {
		t.Errorf("single sample median = %v", ps.Quantile())
	}
	ps.Add(1)
	ps.Add(2)
	if q := ps.Quantile(); q != 2 {
		t.Errorf("3-sample median = %v, want 2", q)
	}
	if ps.N() != 3 {
		t.Errorf("N = %d", ps.N())
	}
}

func TestPSquareAgainstExactQuantiles(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	dists := map[string]func() float64{
		"uniform": func() float64 { return rng.Float64() * 10 },
		"normal":  func() float64 { return 5 + 2*rng.NormFloat64() },
		"exp":     func() float64 { return rng.ExpFloat64() * 3 },
		"bimodal": func() float64 {
			if rng.Intn(2) == 0 {
				return rng.NormFloat64() + 2
			}
			return rng.NormFloat64() + 8
		},
	}
	for name, draw := range dists {
		for _, p := range []float64{0.1, 0.5, 0.9} {
			t.Run(name, func(t *testing.T) {
				ps, _ := NewPSquare(p)
				const n = 50000
				samples := make([]float64, n)
				for i := range samples {
					x := draw()
					samples[i] = x
					ps.Add(x)
				}
				sort.Float64s(samples)
				exact := samples[int(p*float64(n))]
				got := ps.Quantile()
				// Tolerance relative to the distribution's spread.
				spread := samples[n-1-n/100] - samples[n/100]
				if math.Abs(got-exact) > 0.05*spread+0.02 {
					t.Errorf("p=%v: P2 %v vs exact %v (spread %v)", p, got, exact, spread)
				}
			})
		}
	}
}

func TestPSquareMonotoneQuantiles(t *testing.T) {
	// For the same stream, the 0.1-quantile <= median <= 0.9-quantile.
	rng := rand.New(rand.NewSource(33))
	q10, _ := NewPSquare(0.1)
	q50, _ := NewPSquare(0.5)
	q90, _ := NewPSquare(0.9)
	for i := 0; i < 20000; i++ {
		x := rng.NormFloat64()*3 + 7
		q10.Add(x)
		q50.Add(x)
		q90.Add(x)
	}
	if !(q10.Quantile() <= q50.Quantile() && q50.Quantile() <= q90.Quantile()) {
		t.Errorf("quantiles out of order: %v %v %v",
			q10.Quantile(), q50.Quantile(), q90.Quantile())
	}
}

func TestPSquareConstantStream(t *testing.T) {
	ps, _ := NewPSquare(0.5)
	for i := 0; i < 1000; i++ {
		ps.Add(4.2)
	}
	if q := ps.Quantile(); q != 4.2 {
		t.Errorf("constant stream median = %v", q)
	}
}
