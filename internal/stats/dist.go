// Package stats implements the probability machinery the pricing algorithms
// depend on: valuation distributions (normal, truncated normal, exponential,
// uniform), acceptance-ratio curves S(p) = 1 - F(p), Myerson reserve price
// computation for known curves, Hoeffding sample-size bounds used by base
// pricing, and the binomial deviation test MAPS uses for demand change
// detection.
//
// Every sampler takes an explicit *rand.Rand so callers control determinism.
package stats

import (
	"fmt"
	"math"
	"math/rand"
)

// Dist is a univariate distribution of requester private valuations.
// CDF(p) is F(p) = Pr[v <= p]; Accept(p) is the acceptance ratio
// S(p) = Pr[v > p] = 1 - F(p) of Definition 3.
type Dist interface {
	// CDF returns Pr[V <= x].
	CDF(x float64) float64
	// Sample draws one valuation.
	Sample(rng *rand.Rand) float64
	// Mean returns the distribution mean.
	Mean() float64
}

// Accept returns the acceptance ratio S(p) = 1 - F(p) for d at price p.
func Accept(d Dist, p float64) float64 { return 1 - d.CDF(p) }

// Normal is the N(Mu, Sigma^2) distribution.
type Normal struct {
	Mu, Sigma float64
}

// CDF implements Dist using the error function.
func (n Normal) CDF(x float64) float64 {
	if n.Sigma <= 0 {
		if x < n.Mu {
			return 0
		}
		return 1
	}
	return 0.5 * (1 + math.Erf((x-n.Mu)/(n.Sigma*math.Sqrt2)))
}

// Sample implements Dist.
func (n Normal) Sample(rng *rand.Rand) float64 {
	return n.Mu + n.Sigma*rng.NormFloat64()
}

// Mean implements Dist.
func (n Normal) Mean() float64 { return n.Mu }

// TruncNormal is a normal distribution conditioned on [Lo, Hi], the demand
// distribution the paper uses for synthetic valuations ("we restrict all the
// vr to [1,5], so the distribution of vr is a conditional probability
// distribution").
type TruncNormal struct {
	Mu, Sigma float64
	Lo, Hi    float64
}

// NewTruncNormal validates and builds a truncated normal.
func NewTruncNormal(mu, sigma, lo, hi float64) (TruncNormal, error) {
	if sigma <= 0 {
		return TruncNormal{}, fmt.Errorf("stats: truncated normal needs sigma > 0, got %v", sigma)
	}
	if lo >= hi {
		return TruncNormal{}, fmt.Errorf("stats: truncated normal needs lo < hi, got [%v,%v]", lo, hi)
	}
	return TruncNormal{Mu: mu, Sigma: sigma, Lo: lo, Hi: hi}, nil
}

func (t TruncNormal) base() Normal { return Normal{Mu: t.Mu, Sigma: t.Sigma} }

// mass returns F(Hi) - F(Lo) of the untruncated normal.
func (t TruncNormal) mass() float64 {
	b := t.base()
	m := b.CDF(t.Hi) - b.CDF(t.Lo)
	if m <= 0 {
		// Degenerate truncation window far in a tail; treat as a point mass
		// at the nearer bound to keep callers finite.
		return math.SmallestNonzeroFloat64
	}
	return m
}

// CDF implements Dist.
func (t TruncNormal) CDF(x float64) float64 {
	if x < t.Lo {
		return 0
	}
	if x >= t.Hi {
		return 1
	}
	b := t.base()
	return (b.CDF(x) - b.CDF(t.Lo)) / t.mass()
}

// Sample implements Dist via inverse-CDF-free rejection with a numeric
// fallback: rejection is exact and fast when the window carries reasonable
// mass; otherwise we invert the CDF by bisection.
func (t TruncNormal) Sample(rng *rand.Rand) float64 {
	b := t.base()
	if t.mass() > 1e-3 {
		for i := 0; i < 1000; i++ {
			v := b.Sample(rng)
			if v >= t.Lo && v <= t.Hi {
				return v
			}
		}
	}
	// Inverse transform by bisection on the truncated CDF.
	u := rng.Float64()
	lo, hi := t.Lo, t.Hi
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if t.CDF(mid) < u {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// Mean implements Dist with the standard truncated-normal formula.
func (t TruncNormal) Mean() float64 {
	alpha := (t.Lo - t.Mu) / t.Sigma
	beta := (t.Hi - t.Mu) / t.Sigma
	num := stdPDF(alpha) - stdPDF(beta)
	den := stdCDF(beta) - stdCDF(alpha)
	if den <= 0 {
		return math.Max(t.Lo, math.Min(t.Hi, t.Mu))
	}
	return t.Mu + t.Sigma*num/den
}

func stdPDF(x float64) float64 { return math.Exp(-x*x/2) / math.Sqrt(2*math.Pi) }
func stdCDF(x float64) float64 { return 0.5 * (1 + math.Erf(x/math.Sqrt2)) }

// Exponential is the Exp(Rate) distribution shifted by Shift, used for the
// appendix-D experiment (Figure 10) on exponential demand.
type Exponential struct {
	Rate  float64 // alpha in the paper's Figure 10
	Shift float64 // location offset so valuations start near pmin
}

// CDF implements Dist.
func (e Exponential) CDF(x float64) float64 {
	if x <= e.Shift {
		return 0
	}
	return 1 - math.Exp(-e.Rate*(x-e.Shift))
}

// Sample implements Dist.
func (e Exponential) Sample(rng *rand.Rand) float64 {
	return e.Shift + rng.ExpFloat64()/e.Rate
}

// Mean implements Dist.
func (e Exponential) Mean() float64 { return e.Shift + 1/e.Rate }

// Uniform is the U[Lo,Hi] distribution.
type Uniform struct {
	Lo, Hi float64
}

// CDF implements Dist.
func (u Uniform) CDF(x float64) float64 {
	if x <= u.Lo {
		return 0
	}
	if x >= u.Hi {
		return 1
	}
	return (x - u.Lo) / (u.Hi - u.Lo)
}

// Sample implements Dist.
func (u Uniform) Sample(rng *rand.Rand) float64 {
	return u.Lo + rng.Float64()*(u.Hi-u.Lo)
}

// Mean implements Dist.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

// PointMass is the degenerate distribution at V; every requester accepts any
// price <= V and rejects any price > V. The NP-hardness reduction (Theorem 1)
// and several unit tests use it.
type PointMass struct {
	V float64
}

// CDF implements Dist.
func (pm PointMass) CDF(x float64) float64 {
	if x < pm.V {
		return 0
	}
	return 1
}

// Sample implements Dist.
func (pm PointMass) Sample(*rand.Rand) float64 { return pm.V }

// Mean implements Dist.
func (pm PointMass) Mean() float64 { return pm.V }

// Table is an empirical acceptance-ratio table like Table 1 of the paper:
// a step CDF defined by (price, acceptance ratio) pairs. Prices must be
// strictly increasing and ratios non-increasing in [0,1].
type Table struct {
	prices []float64
	accept []float64 // S(prices[i])
}

// NewTable builds an acceptance table. It returns an error when the inputs
// are not a valid non-increasing acceptance curve.
func NewTable(prices, accept []float64) (*Table, error) {
	if len(prices) == 0 || len(prices) != len(accept) {
		return nil, fmt.Errorf("stats: table needs equal, non-empty price/accept slices (got %d/%d)",
			len(prices), len(accept))
	}
	for i := range prices {
		if accept[i] < 0 || accept[i] > 1 {
			return nil, fmt.Errorf("stats: acceptance ratio %v out of [0,1]", accept[i])
		}
		if i > 0 {
			if prices[i] <= prices[i-1] {
				return nil, fmt.Errorf("stats: table prices must be strictly increasing")
			}
			if accept[i] > accept[i-1] {
				return nil, fmt.Errorf("stats: acceptance ratios must be non-increasing")
			}
		}
	}
	t := &Table{prices: append([]float64(nil), prices...), accept: append([]float64(nil), accept...)}
	return t, nil
}

// AcceptAt returns S(p) by step interpolation: the ratio of the largest
// tabulated price <= p, 1 below the first price, and the last ratio above
// the last price.
func (t *Table) AcceptAt(p float64) float64 {
	if p < t.prices[0] {
		return 1
	}
	s := t.accept[0]
	for i, tp := range t.prices {
		if tp <= p {
			s = t.accept[i]
		} else {
			break
		}
	}
	return s
}

// CDF implements Dist as 1 - S(p).
func (t *Table) CDF(x float64) float64 { return 1 - t.AcceptAt(x) }

// Sample implements Dist by inverting the step CDF: it returns a valuation
// drawn so that Pr[v > p] = AcceptAt(p) for every tabulated p.
func (t *Table) Sample(rng *rand.Rand) float64 {
	u := rng.Float64() // valuation survives price p iff u < S(p)
	// Find the largest tabulated price the valuation exceeds.
	v := t.prices[0] - 1 // below every tabulated price
	for i, p := range t.prices {
		if u < t.accept[i] {
			v = p
		}
	}
	// Nudge above the price so "accept iff v > p" holds at equality points.
	return v + 1e-9
}

// Mean implements Dist approximately as the mean of the step distribution.
func (t *Table) Mean() float64 {
	m := 0.0
	prev := 1.0
	for i, p := range t.prices {
		m += (prev - t.accept[i]) * p
		prev = t.accept[i]
	}
	// Remaining mass sits at the top price.
	m += prev * t.prices[len(t.prices)-1]
	return m
}
