package stats

import (
	"fmt"
	"math"
)

// RevenueAt returns the per-unit-distance expected revenue p*S(p) of offering
// price p against demand d. For MHR demand this curve is concave with a
// unique maximizer, the Myerson reserve price (Section 3.1.1).
func RevenueAt(d Dist, p float64) float64 { return p * Accept(d, p) }

// MyersonReserve numerically locates argmax_{p in [lo,hi]} p*S(p) by golden
// section search; for MHR distributions p*S(p) is unimodal so the search is
// exact up to tol. It is the ground-truth reference the estimators are
// compared against in tests and ablations.
func MyersonReserve(d Dist, lo, hi float64) float64 {
	if lo > hi {
		lo, hi = hi, lo
	}
	const phi = 0.6180339887498949 // (sqrt(5)-1)/2
	const tol = 1e-9
	a, b := lo, hi
	x1 := b - phi*(b-a)
	x2 := a + phi*(b-a)
	f1, f2 := RevenueAt(d, x1), RevenueAt(d, x2)
	for b-a > tol {
		if f1 < f2 {
			a, x1, f1 = x1, x2, f2
			x2 = a + phi*(b-a)
			f2 = RevenueAt(d, x2)
		} else {
			b, x2, f2 = x2, x1, f1
			x1 = b - phi*(b-a)
			f1 = RevenueAt(d, x1)
		}
	}
	return (a + b) / 2
}

// PriceLadder returns the geometric candidate price set
// {pmin, pmin(1+alpha), pmin(1+alpha)^2, ...} capped at pmax, the candidate
// set both base pricing (Algorithm 1) and MAPS (Algorithm 3) scan.
// It returns an error on invalid bounds or step.
func PriceLadder(pmin, pmax, alpha float64) ([]float64, error) {
	if pmin <= 0 || pmax < pmin {
		return nil, fmt.Errorf("stats: ladder needs 0 < pmin <= pmax, got [%v,%v]", pmin, pmax)
	}
	if alpha <= 0 {
		return nil, fmt.Errorf("stats: ladder needs alpha > 0, got %v", alpha)
	}
	var out []float64
	for p := pmin; p <= pmax*(1+1e-12); p *= 1 + alpha {
		out = append(out, p)
	}
	return out, nil
}

// LadderSize returns k = ceil(ln(pmax/pmin)/ln(1+alpha)), the candidate count
// from line 1 of Algorithm 1.
func LadderSize(pmin, pmax, alpha float64) int {
	if pmax <= pmin {
		return 1
	}
	return int(math.Ceil(math.Log(pmax/pmin) / math.Log(1+alpha)))
}

// HoeffdingSamples returns h(p) = ceil((2 p^2 / eps^2) * ln(2k/delta)), the
// number of requesters Algorithm 1 probes at price p so that
// |p*Shat(p) - p*S(p)| <= eps/2 with probability 1 - delta/k (Theorem 2).
func HoeffdingSamples(p, eps float64, k int, delta float64) int {
	if eps <= 0 || delta <= 0 || delta >= 1 || k <= 0 {
		return 1
	}
	h := math.Ceil(2 * p * p / (eps * eps) * math.Log(2*float64(k)/delta))
	if h < 1 {
		return 1
	}
	return int(h)
}

// UCBRadius returns the confidence radius p*sqrt(2 ln N / N(p)) of the index
// in Section 4.2.2. When the price has never been tried (np == 0) the radius
// is +Inf, forcing exploration; when no requester has been seen at all
// (n == 0) it is 0, matching the paper's note that the radius is zero before
// any observation exists.
func UCBRadius(p float64, n, np int) float64 {
	if n <= 0 {
		return 0
	}
	if np <= 0 {
		return math.Inf(1)
	}
	return p * math.Sqrt(2*math.Log(float64(n))/float64(np))
}

// BinomialDeviation reports whether observing k accepts out of m trials is a
// statistically significant deviation from acceptance ratio s, using the
// paper's +/- 2 standard deviation rule: flag when k is outside
// m*s +/- 2*sqrt(m*s*(1-s)). With fewer than minTrials observations it never
// flags (the binomial normal approximation needs mass).
func BinomialDeviation(k, m int, s float64) bool {
	const minTrials = 8
	if m < minTrials || s < 0 || s > 1 {
		return false
	}
	mean := float64(m) * s
	sd := math.Sqrt(float64(m) * s * (1 - s))
	dev := math.Abs(float64(k) - mean)
	if sd == 0 {
		return dev > 0.5 // deterministic curve: any miss is a change
	}
	return dev > 2*sd
}

// Welford accumulates a running mean and variance without storing samples.
// The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the observation count.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 before any observation).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the unbiased sample variance (0 with fewer than 2 samples).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }
