package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNormalCDF(t *testing.T) {
	n := Normal{Mu: 0, Sigma: 1}
	tests := []struct {
		x, want float64
	}{
		{0, 0.5},
		{1.959963985, 0.975},
		{-1.959963985, 0.025},
		{3, 0.99865},
		{-3, 0.00135},
	}
	for _, tt := range tests {
		if got := n.CDF(tt.x); !almost(got, tt.want, 1e-4) {
			t.Errorf("CDF(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
}

func TestNormalZeroSigma(t *testing.T) {
	n := Normal{Mu: 2, Sigma: 0}
	if n.CDF(1.999) != 0 || n.CDF(2) != 1 {
		t.Error("zero-sigma normal should be a step at mu")
	}
}

func TestDistCDFProperties(t *testing.T) {
	dists := map[string]Dist{
		"normal":      Normal{Mu: 2, Sigma: 1},
		"truncnormal": TruncNormal{Mu: 2, Sigma: 1, Lo: 1, Hi: 5},
		"exponential": Exponential{Rate: 1, Shift: 1},
		"uniform":     Uniform{Lo: 1, Hi: 5},
		"pointmass":   PointMass{V: 2},
	}
	for name, d := range dists {
		t.Run(name, func(t *testing.T) {
			f := func(a, b float64) bool {
				x := math.Mod(math.Abs(a), 10) - 2
				y := x + math.Mod(math.Abs(b), 10)
				cx, cy := d.CDF(x), d.CDF(y)
				return cx >= 0 && cy <= 1 && cx <= cy+1e-12
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestSamplesMatchCDF(t *testing.T) {
	// Kolmogorov-style check: empirical acceptance at a few probes should be
	// close to 1 - CDF.
	rng := rand.New(rand.NewSource(7))
	dists := map[string]Dist{
		"truncnormal": TruncNormal{Mu: 2, Sigma: 1, Lo: 1, Hi: 5},
		"exponential": Exponential{Rate: 0.8, Shift: 1},
		"uniform":     Uniform{Lo: 1, Hi: 5},
		"normal":      Normal{Mu: 3, Sigma: 0.7},
	}
	const n = 20000
	for name, d := range dists {
		t.Run(name, func(t *testing.T) {
			samples := make([]float64, n)
			for i := range samples {
				samples[i] = d.Sample(rng)
			}
			for _, p := range []float64{1.2, 2, 2.8, 3.6, 4.4} {
				acc := 0
				for _, v := range samples {
					if v > p {
						acc++
					}
				}
				got := float64(acc) / n
				want := Accept(d, p)
				if !almost(got, want, 0.02) {
					t.Errorf("empirical S(%v) = %v, want %v", p, got, want)
				}
			}
		})
	}
}

func TestTruncNormalBounds(t *testing.T) {
	d, err := NewTruncNormal(2, 1, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		v := d.Sample(rng)
		if v < 1 || v > 5 {
			t.Fatalf("sample %v out of [1,5]", v)
		}
	}
	if d.CDF(0.5) != 0 || d.CDF(5) != 1 {
		t.Error("CDF must be 0 below Lo and 1 at Hi")
	}
}

func TestTruncNormalFarTail(t *testing.T) {
	// Window far into the tail: sampling must still terminate and stay in
	// bounds (bisection fallback).
	d := TruncNormal{Mu: -20, Sigma: 1, Lo: 1, Hi: 5}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		v := d.Sample(rng)
		if v < 1-1e-6 || v > 5+1e-6 {
			t.Fatalf("tail sample %v out of window", v)
		}
	}
}

func TestNewTruncNormalErrors(t *testing.T) {
	if _, err := NewTruncNormal(2, 0, 1, 5); err == nil {
		t.Error("sigma=0 should error")
	}
	if _, err := NewTruncNormal(2, 1, 5, 1); err == nil {
		t.Error("lo>hi should error")
	}
}

func TestTruncNormalMean(t *testing.T) {
	d := TruncNormal{Mu: 2, Sigma: 1, Lo: 1, Hi: 5}
	rng := rand.New(rand.NewSource(11))
	var w Welford
	for i := 0; i < 40000; i++ {
		w.Add(d.Sample(rng))
	}
	if !almost(w.Mean(), d.Mean(), 0.02) {
		t.Errorf("empirical mean %v vs analytic %v", w.Mean(), d.Mean())
	}
}

func TestTableMatchesPaperTable1(t *testing.T) {
	// Table 1: S(1)=0.9, S(2)=0.8, S(3)=0.5.
	tbl, err := NewTable([]float64{1, 2, 3}, []float64{0.9, 0.8, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		p, want float64
	}{
		{0.5, 1}, {1, 0.9}, {1.5, 0.9}, {2, 0.8}, {2.5, 0.8}, {3, 0.5}, {10, 0.5},
	}
	for _, tt := range tests {
		if got := tbl.AcceptAt(tt.p); got != tt.want {
			t.Errorf("AcceptAt(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	// The paper's observation: with unlimited supply, unit price 2 maximizes
	// p*S(p) among {1,2,3}: 0.9 vs 1.6 vs 1.5.
	if RevenueAt(tbl, 2) <= RevenueAt(tbl, 1) || RevenueAt(tbl, 2) <= RevenueAt(tbl, 3) {
		t.Errorf("price 2 should maximize revenue: R(1)=%v R(2)=%v R(3)=%v",
			RevenueAt(tbl, 1), RevenueAt(tbl, 2), RevenueAt(tbl, 3))
	}
}

func TestTableSampling(t *testing.T) {
	tbl, err := NewTable([]float64{1, 2, 3}, []float64{0.9, 0.8, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	const n = 50000
	counts := map[float64]int{}
	for i := 0; i < n; i++ {
		v := tbl.Sample(rng)
		for _, p := range []float64{1, 2, 3} {
			if v > p {
				counts[p]++
			}
		}
	}
	for _, p := range []float64{1, 2, 3} {
		got := float64(counts[p]) / n
		if !almost(got, tbl.AcceptAt(p), 0.01) {
			t.Errorf("empirical S(%v) = %v, want %v", p, got, tbl.AcceptAt(p))
		}
	}
}

func TestNewTableErrors(t *testing.T) {
	cases := []struct {
		name string
		p, s []float64
	}{
		{"empty", nil, nil},
		{"mismatched", []float64{1}, []float64{0.5, 0.2}},
		{"ratio > 1", []float64{1}, []float64{1.5}},
		{"non-increasing prices", []float64{2, 2}, []float64{0.9, 0.8}},
		{"increasing acceptance", []float64{1, 2}, []float64{0.5, 0.9}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := NewTable(c.p, c.s); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestMyersonReserveKnownCases(t *testing.T) {
	tests := []struct {
		name string
		d    Dist
		want float64
		tol  float64
	}{
		// U[0,1]: max p(1-p) at p=0.5.
		{"uniform01", Uniform{0, 1}, 0.5, 1e-6},
		// Exp(rate λ, shift 0): max p e^{-λp} at p = 1/λ.
		{"exp rate 2", Exponential{Rate: 2}, 0.5, 1e-6},
		{"exp rate 0.5", Exponential{Rate: 0.5}, 2, 1e-6},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := MyersonReserve(tt.d, 0.01, 10)
			if !almost(got, tt.want, tt.tol) {
				t.Errorf("MyersonReserve = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestMyersonReserveIsMaximizer(t *testing.T) {
	d := TruncNormal{Mu: 2, Sigma: 1, Lo: 1, Hi: 5}
	pm := MyersonReserve(d, 1, 5)
	best := RevenueAt(d, pm)
	for p := 1.0; p <= 5; p += 0.01 {
		if RevenueAt(d, p) > best+1e-9 {
			t.Fatalf("found better price %v: %v > %v", p, RevenueAt(d, p), best)
		}
	}
}

func TestPriceLadderExample4(t *testing.T) {
	// Example 4: pmin=1, pmax=5, alpha=0.5 => k=4, ladder {1, 1.5, 2.25, 3.375}.
	ladder, err := PriceLadder(1, 5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 1.5, 2.25, 3.375, 5.0625}
	// The paper's candidate set stops before exceeding pmax: {1,1.5,2.25,3.375}.
	// Our ladder enumerates while p <= pmax, so the last entry 5.0625 is
	// excluded.
	want = want[:4]
	if len(ladder) != len(want) {
		t.Fatalf("ladder = %v, want %v", ladder, want)
	}
	for i := range want {
		if !almost(ladder[i], want[i], 1e-12) {
			t.Errorf("ladder[%d] = %v, want %v", i, ladder[i], want[i])
		}
	}
	if k := LadderSize(1, 5, 0.5); k != 4 {
		t.Errorf("LadderSize = %d, want 4 (Example 4)", k)
	}
}

func TestPriceLadderErrors(t *testing.T) {
	if _, err := PriceLadder(0, 5, 0.5); err == nil {
		t.Error("pmin=0 should error")
	}
	if _, err := PriceLadder(2, 1, 0.5); err == nil {
		t.Error("pmax<pmin should error")
	}
	if _, err := PriceLadder(1, 5, 0); err == nil {
		t.Error("alpha=0 should error")
	}
}

func TestPriceLadderProperty(t *testing.T) {
	f := func(a, b, c uint8) bool {
		pmin := 0.5 + float64(a%40)/10
		pmax := pmin + float64(b%50)/5
		alpha := 0.1 + float64(c%20)/20
		ladder, err := PriceLadder(pmin, pmax, alpha)
		if err != nil {
			return false
		}
		if len(ladder) == 0 || ladder[0] != pmin {
			return false
		}
		for i := 1; i < len(ladder); i++ {
			if !almost(ladder[i]/ladder[i-1], 1+alpha, 1e-9) {
				return false
			}
		}
		return ladder[len(ladder)-1] <= pmax*(1+1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHoeffdingSamplesExample4(t *testing.T) {
	// Example 4: p=1, eps=0.2, k=4, delta=0.01 => h = ceil(50*ln(800)) = 335.
	if got := HoeffdingSamples(1, 0.2, 4, 0.01); got != 335 {
		t.Errorf("HoeffdingSamples = %d, want 335 (Example 4)", got)
	}
}

func TestHoeffdingSamplesMonotone(t *testing.T) {
	// More accuracy or higher prices demand more samples.
	if HoeffdingSamples(2, 0.2, 4, 0.01) <= HoeffdingSamples(1, 0.2, 4, 0.01) {
		t.Error("higher price should need more samples")
	}
	if HoeffdingSamples(1, 0.1, 4, 0.01) <= HoeffdingSamples(1, 0.2, 4, 0.01) {
		t.Error("smaller eps should need more samples")
	}
	if HoeffdingSamples(1, 0.2, 4, 0.001) <= HoeffdingSamples(1, 0.2, 4, 0.01) {
		t.Error("smaller delta should need more samples")
	}
	if got := HoeffdingSamples(1, 0, 4, 0.01); got != 1 {
		t.Errorf("degenerate eps: got %d, want 1", got)
	}
}

func TestUCBRadius(t *testing.T) {
	if r := UCBRadius(2, 0, 0); r != 0 {
		t.Errorf("no requesters yet: radius = %v, want 0", r)
	}
	if r := UCBRadius(2, 100, 0); !math.IsInf(r, 1) {
		t.Errorf("unexplored price: radius = %v, want +Inf", r)
	}
	got := UCBRadius(2, 100, 25)
	want := 2 * math.Sqrt(2*math.Log(100)/25)
	if !almost(got, want, 1e-12) {
		t.Errorf("radius = %v, want %v", got, want)
	}
	// Radius shrinks with more observations of the price.
	if UCBRadius(2, 100, 50) >= UCBRadius(2, 100, 25) {
		t.Error("radius should shrink as N(p) grows")
	}
}

func TestBinomialDeviation(t *testing.T) {
	tests := []struct {
		name string
		k, m int
		s    float64
		want bool
	}{
		{"on the mean", 50, 100, 0.5, false},
		{"within 2sd", 58, 100, 0.5, false},
		{"beyond 2sd high", 70, 100, 0.5, true},
		{"beyond 2sd low", 30, 100, 0.5, true},
		{"too few trials", 0, 4, 0.5, false},
		{"deterministic miss", 9, 10, 1.0, true},
		{"deterministic hit", 10, 10, 1.0, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := BinomialDeviation(tt.k, tt.m, tt.s); got != tt.want {
				t.Errorf("BinomialDeviation(%d,%d,%v) = %v, want %v", tt.k, tt.m, tt.s, got, tt.want)
			}
		})
	}
}

func TestBinomialDeviationFalsePositiveRate(t *testing.T) {
	// Under the true ratio, the 2-sigma rule should flag rarely (~5%).
	rng := rand.New(rand.NewSource(13))
	const trials, m = 2000, 64
	s := 0.7
	flags := 0
	for i := 0; i < trials; i++ {
		k := 0
		for j := 0; j < m; j++ {
			if rng.Float64() < s {
				k++
			}
		}
		if BinomialDeviation(k, m, s) {
			flags++
		}
	}
	rate := float64(flags) / trials
	if rate > 0.10 {
		t.Errorf("false positive rate %v too high", rate)
	}
}

func TestBinomialDeviationDetectsShift(t *testing.T) {
	// After demand shifts from 0.8 to 0.3, a window of 64 should flag almost
	// always.
	rng := rand.New(rand.NewSource(17))
	const trials, m = 500, 64
	detected := 0
	for i := 0; i < trials; i++ {
		k := 0
		for j := 0; j < m; j++ {
			if rng.Float64() < 0.3 {
				k++
			}
		}
		if BinomialDeviation(k, m, 0.8) {
			detected++
		}
	}
	if rate := float64(detected) / trials; rate < 0.99 {
		t.Errorf("detection rate %v too low", rate)
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Var() != 0 || w.N() != 0 {
		t.Error("zero value should report zeros")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 || !almost(w.Mean(), 5, 1e-12) {
		t.Errorf("mean = %v, n = %d", w.Mean(), w.N())
	}
	if !almost(w.Var(), 32.0/7.0, 1e-12) {
		t.Errorf("var = %v, want %v", w.Var(), 32.0/7.0)
	}
	if !almost(w.Std(), math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("std = %v", w.Std())
	}
}

func TestRevenueConcaveForMHR(t *testing.T) {
	// For MHR families the revenue curve rises then falls (unimodal). Probe a
	// dense ladder and assert no second rise after the first fall.
	for name, d := range map[string]Dist{
		"uniform":     Uniform{1, 5},
		"truncnormal": TruncNormal{Mu: 2, Sigma: 1, Lo: 1, Hi: 5},
		"exponential": Exponential{Rate: 1, Shift: 0},
	} {
		t.Run(name, func(t *testing.T) {
			falling := false
			prev := math.Inf(-1)
			for p := 0.05; p < 6; p += 0.05 {
				cur := RevenueAt(d, p)
				if cur < prev-1e-9 {
					falling = true
				} else if falling && cur > prev+1e-6 {
					t.Fatalf("revenue curve rose again at p=%v", p)
				}
				prev = cur
			}
		})
	}
}
