package stats

import (
	"fmt"
	"math/rand"
)

// Truncated conditions an arbitrary distribution on the interval [Lo, Hi],
// renormalizing its CDF. The paper restricts all valuations to [1, 5] this
// way ("the distribution of vr is a conditional probability distribution"),
// including the exponential-demand variant of Figure 10.
type Truncated struct {
	D      Dist
	Lo, Hi float64
}

// NewTruncated validates and builds the conditional distribution.
func NewTruncated(d Dist, lo, hi float64) (Truncated, error) {
	if d == nil {
		return Truncated{}, fmt.Errorf("stats: Truncated needs a base distribution")
	}
	if lo >= hi {
		return Truncated{}, fmt.Errorf("stats: Truncated needs lo < hi, got [%v,%v]", lo, hi)
	}
	if d.CDF(hi)-d.CDF(lo) <= 0 {
		return Truncated{}, fmt.Errorf("stats: base distribution has no mass on [%v,%v]", lo, hi)
	}
	return Truncated{D: d, Lo: lo, Hi: hi}, nil
}

func (t Truncated) mass() float64 {
	m := t.D.CDF(t.Hi) - t.D.CDF(t.Lo)
	if m <= 0 {
		return 1e-300
	}
	return m
}

// CDF implements Dist.
func (t Truncated) CDF(x float64) float64 {
	if x < t.Lo {
		return 0
	}
	if x >= t.Hi {
		return 1
	}
	return (t.D.CDF(x) - t.D.CDF(t.Lo)) / t.mass()
}

// Sample implements Dist by rejection with a bisection fallback for thin
// windows.
func (t Truncated) Sample(rng *rand.Rand) float64 {
	if t.mass() > 1e-3 {
		for i := 0; i < 1000; i++ {
			if v := t.D.Sample(rng); v >= t.Lo && v <= t.Hi {
				return v
			}
		}
	}
	u := rng.Float64()
	lo, hi := t.Lo, t.Hi
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if t.CDF(mid) < u {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// Mean implements Dist numerically via the identity
// E[X] = Lo + ∫_Lo^Hi (1 - CDF(x)) dx on the truncated support.
func (t Truncated) Mean() float64 {
	const steps = 2048
	h := (t.Hi - t.Lo) / steps
	sum := 0.0
	for i := 0; i < steps; i++ {
		x := t.Lo + (float64(i)+0.5)*h
		sum += (1 - t.CDF(x)) * h
	}
	return t.Lo + sum
}
