package match

import (
	"math"
	"math/rand"
	"testing"
)

// paperGraph builds the bipartite graph of Figure 1b:
// tasks r1,r2,r3 = left 0,1,2; workers w1,w2,w3 = right 0,1,2.
// r1 and r2 (the grid-9 tasks) reach only w1; r3 (grid 11) reaches all three
// workers. This is the topology Example 5's arithmetic confirms ("at most one
// of r1 and r2 can be served", "r3 is assured to be served").
func paperGraph() *Graph {
	g := NewGraph(3, 3)
	g.AddEdge(0, 0) // r1-w1
	g.AddEdge(1, 0) // r2-w1
	g.AddEdge(2, 0) // r3-w1
	g.AddEdge(2, 1) // r3-w2
	g.AddEdge(2, 2) // r3-w3
	return g
}

func TestMaxCardinalityPaperExample(t *testing.T) {
	// "From Fig. 1b, at most two tasks can be served and at most one of r1
	// and r2 can be served."
	g := paperGraph()
	m := MaxCardinality(g)
	if m.Size() != 2 {
		t.Fatalf("max cardinality = %d, want 2", m.Size())
	}
	if err := m.Validate(g); err != nil {
		t.Fatal(err)
	}
	// r2 and r3 both only reach w1, so they cannot both be matched.
	if m.LeftTo[1] >= 0 && m.LeftTo[2] >= 0 {
		t.Error("r2 and r3 cannot both be served")
	}
}

func TestMaxCardinalityEdgeCases(t *testing.T) {
	tests := []struct {
		name  string
		build func() *Graph
		want  int
	}{
		{"empty graph", func() *Graph { return NewGraph(0, 0) }, 0},
		{"no edges", func() *Graph { return NewGraph(3, 3) }, 0},
		{"single edge", func() *Graph {
			g := NewGraph(1, 1)
			g.AddEdge(0, 0)
			return g
		}, 1},
		{"perfect 3x3", func() *Graph {
			g := NewGraph(3, 3)
			for i := 0; i < 3; i++ {
				g.AddEdge(i, i)
				g.AddEdge(i, (i+1)%3)
			}
			return g
		}, 3},
		{"star: many tasks one worker", func() *Graph {
			g := NewGraph(5, 1)
			for i := 0; i < 5; i++ {
				g.AddEdge(i, 0)
			}
			return g
		}, 1},
		{"star: one task many workers", func() *Graph {
			g := NewGraph(1, 5)
			for i := 0; i < 5; i++ {
				g.AddEdge(0, i)
			}
			return g
		}, 1},
		{"needs augmentation", func() *Graph {
			// l0-r0, l1-{r0,r1}: greedy l1->r0 would block l0.
			g := NewGraph(2, 2)
			g.AddEdge(0, 0)
			g.AddEdge(1, 0)
			g.AddEdge(1, 1)
			return g
		}, 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g := tt.build()
			m := MaxCardinality(g)
			if m.Size() != tt.want {
				t.Errorf("size = %d, want %d", m.Size(), tt.want)
			}
			if err := m.Validate(g); err != nil {
				t.Error(err)
			}
		})
	}
}

// bruteMaxCardinality enumerates all subsets of left vertices.
func bruteMaxCardinality(g *Graph) int {
	best := 0
	var rec func(l int, used uint64, n int)
	rec = func(l int, used uint64, n int) {
		if n > best {
			best = n
		}
		if l >= g.NLeft() {
			return
		}
		rec(l+1, used, n) // skip l
		for _, r := range g.Adj(l) {
			if used&(1<<uint(r)) == 0 {
				rec(l+1, used|1<<uint(r), n+1)
			}
		}
	}
	rec(0, 0, 0)
	return best
}

func TestMaxCardinalityVsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		nl := 1 + rng.Intn(7)
		nr := 1 + rng.Intn(7)
		g := NewGraph(nl, nr)
		for l := 0; l < nl; l++ {
			for r := 0; r < nr; r++ {
				if rng.Float64() < 0.35 {
					g.AddEdge(l, r)
				}
			}
		}
		m := MaxCardinality(g)
		if err := m.Validate(g); err != nil {
			t.Fatal(err)
		}
		if want := bruteMaxCardinality(g); m.Size() != want {
			t.Fatalf("trial %d: HK size %d, brute force %d", trial, m.Size(), want)
		}
	}
}

// bruteMaxWeight enumerates all matchings, maximizing total weight where the
// weight of (l, r) is w(l, r).
func bruteMaxWeight(g *Graph, w func(l, r int) float64) float64 {
	best := 0.0
	var rec func(l int, used uint64, sum float64)
	rec = func(l int, used uint64, sum float64) {
		if sum > best {
			best = sum
		}
		if l >= g.NLeft() {
			return
		}
		rec(l+1, used, sum)
		for _, r := range g.Adj(l) {
			if used&(1<<uint(r)) == 0 {
				rec(l+1, used|1<<uint(r), sum+w(l, r))
			}
		}
	}
	rec(0, 0, 0)
	return best
}

func TestMaxWeightByLeftPaperExample(t *testing.T) {
	// Figure 2, all-accept world at prices {3,3,2}: weights are
	// d_r * p_r = {1.3*3, 0.7*3, 1*2} = {3.9, 2.1, 2}. w1 serves the heavier
	// of r1/r2 (r1, 3.9); r3 takes w2 or w3 => 3.9 + 2.0 = 5.9.
	g := paperGraph()
	weights := []float64{3.9, 2.1, 2}
	m, total := MaxWeightByLeft(g, weights)
	if math.Abs(total-5.9) > 1e-9 {
		t.Fatalf("total = %v, want 5.9 (paper Fig. 2 all-accept world)", total)
	}
	if err := m.Validate(g); err != nil {
		t.Fatal(err)
	}
	if m.LeftTo[0] != 0 || m.LeftTo[2] < 1 {
		t.Errorf("want r1 on w1 and r3 on w2/w3, got %v", m.LeftTo)
	}
}

func TestMaxWeightByLeftSkipsNonPositive(t *testing.T) {
	g := NewGraph(2, 2)
	g.AddEdge(0, 0)
	g.AddEdge(1, 1)
	m, total := MaxWeightByLeft(g, []float64{5, 0})
	if total != 5 || m.Size() != 1 {
		t.Errorf("total=%v size=%d; zero-weight task should be skipped", total, m.Size())
	}
}

func TestMaxWeightByLeftVsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 300; trial++ {
		nl := 1 + rng.Intn(7)
		nr := 1 + rng.Intn(7)
		g := NewGraph(nl, nr)
		weights := make([]float64, nl)
		for l := range weights {
			weights[l] = rng.Float64() * 10
		}
		for l := 0; l < nl; l++ {
			for r := 0; r < nr; r++ {
				if rng.Float64() < 0.4 {
					g.AddEdge(l, r)
				}
			}
		}
		m, total := MaxWeightByLeft(g, weights)
		if err := m.Validate(g); err != nil {
			t.Fatal(err)
		}
		want := bruteMaxWeight(g, func(l, r int) float64 { return weights[l] })
		if math.Abs(total-want) > 1e-9 {
			t.Fatalf("trial %d: greedy %v, brute force %v", trial, total, want)
		}
	}
}

func TestMaxWeightGeneralVsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	for trial := 0; trial < 300; trial++ {
		nl := 1 + rng.Intn(6)
		nr := 1 + rng.Intn(6)
		wg := NewWeightedGraph(nl, nr)
		wmap := map[[2]int]float64{}
		for l := 0; l < nl; l++ {
			for r := 0; r < nr; r++ {
				if rng.Float64() < 0.45 {
					w := rng.Float64() * 10
					wg.AddEdge(l, r, w)
					wmap[[2]int{l, r}] = w
				}
			}
		}
		m, total := MaxWeightGeneral(wg)
		if err := m.Validate(wg.Graph()); err != nil {
			t.Fatal(err)
		}
		// Re-derive the total from the matching itself.
		derived := 0.0
		for l, r := range m.LeftTo {
			if r >= 0 {
				derived += wmap[[2]int{l, r}]
			}
		}
		if math.Abs(derived-total) > 1e-6 {
			t.Fatalf("trial %d: reported %v but matching weighs %v", trial, total, derived)
		}
		want := bruteMaxWeight(wg.Graph(), func(l, r int) float64 { return wmap[[2]int{l, r}] })
		if math.Abs(total-want) > 1e-6 {
			t.Fatalf("trial %d: SSP %v, brute force %v", trial, total, want)
		}
	}
}

func TestMaxWeightGeneralPrefersWeightOverCardinality(t *testing.T) {
	// l0-r0 w=10; l1-r0 w=1, l1-r1 w=1: either {l0-r0, l1-r1} = 11.
	// But with l1-r1 absent, {l0-r0} (weight 10) beats {l1-r0 + nothing}=1
	// and also beats matching both via any other combination.
	wg := NewWeightedGraph(2, 1)
	wg.AddEdge(0, 0, 10)
	wg.AddEdge(1, 0, 1)
	m, total := MaxWeightGeneral(wg)
	if total != 10 || m.LeftTo[0] != 0 || m.LeftTo[1] != -1 {
		t.Errorf("total=%v matching=%v; want only the weight-10 edge", total, m.LeftTo)
	}
}

func TestIncrementalPaperWalkthrough(t *testing.T) {
	// Example 5, iterations 17-18: grid 9 admits r1 (matched to w1), then
	// "there is no augmenting path for r2 in grid 9"; grid 11 admits r3.
	g := paperGraph()
	inc := NewIncremental(g)

	if !inc.TryAugment(0) { // admit r1 -> w1 (M' = {r1,w1})
		t.Fatal("r1 should match")
	}
	if inc.Matching().LeftTo[0] != 0 {
		t.Fatalf("r1 should hold w1, got %d", inc.Matching().LeftTo[0])
	}
	// r2 only reaches w1 and r1 has no alternative: no augmenting path.
	if inc.TryAugment(1) {
		t.Fatal("r2 must not match: w1 is pinned by r1")
	}
	// r3 reaches w2/w3 and matches.
	if !inc.TryAugment(2) {
		t.Fatal("r3 should match")
	}
	if inc.Size() != 2 {
		t.Fatalf("size = %d, want 2", inc.Size())
	}
	if err := inc.Matching().Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestIncrementalMatchesHopcroftKarp(t *testing.T) {
	// Feeding every left vertex to the incremental matcher must reach max
	// cardinality (Kuhn == HK in size).
	rng := rand.New(rand.NewSource(777))
	for trial := 0; trial < 200; trial++ {
		nl := 1 + rng.Intn(12)
		nr := 1 + rng.Intn(12)
		g := NewGraph(nl, nr)
		for l := 0; l < nl; l++ {
			for r := 0; r < nr; r++ {
				if rng.Float64() < 0.3 {
					g.AddEdge(l, r)
				}
			}
		}
		inc := NewIncremental(g)
		for l := 0; l < nl; l++ {
			inc.TryAugment(l)
		}
		if hk := MaxCardinality(g).Size(); inc.Size() != hk {
			t.Fatalf("trial %d: incremental %d vs HK %d", trial, inc.Size(), hk)
		}
	}
}

func TestIncrementalCanAugmentAnyDoesNotMutate(t *testing.T) {
	g := paperGraph()
	inc := NewIncremental(g)
	inc.TryAugment(0)
	before := append([]int(nil), inc.Matching().LeftTo...)
	if !inc.CanAugmentAny([]int{1, 2}) {
		t.Fatal("r3 should be augmentable")
	}
	if inc.CanAugmentAny([]int{1}) {
		t.Fatal("r2 alone should not be augmentable while r1 pins w1")
	}
	for i, v := range inc.Matching().LeftTo {
		if before[i] != v {
			t.Fatal("CanAugmentAny mutated the matching")
		}
	}
}

func TestIncrementalTryAugmentAny(t *testing.T) {
	g := paperGraph()
	inc := NewIncremental(g)
	if got := inc.TryAugmentAny([]int{2, 1}); got != 2 {
		t.Fatalf("TryAugmentAny = %d, want first candidate 2", got)
	}
	if got := inc.TryAugmentAny([]int{2}); got != -1 {
		t.Fatalf("already matched candidate should return -1, got %d", got)
	}
}

func TestIncrementalRelease(t *testing.T) {
	g := paperGraph()
	inc := NewIncremental(g)
	inc.TryAugment(0) // r1 -> w1
	if inc.TryAugment(1) {
		t.Fatal("r2 should be blocked while r1 holds w1")
	}
	inc.Release(0)
	if inc.Size() != 0 {
		t.Fatal("release should free the pair")
	}
	if !inc.TryAugment(1) {
		t.Fatal("r2 should match after release")
	}
	inc.Release(99) // out of range: no panic
}

func TestInducedLeft(t *testing.T) {
	g := paperGraph()
	sub, origin := g.InducedLeft([]int{0, 2}) // keep r1 and r3
	if sub.NLeft() != 2 || sub.NRight() != 3 {
		t.Fatalf("induced size %dx%d", sub.NLeft(), sub.NRight())
	}
	if origin[0] != 0 || origin[1] != 2 {
		t.Fatalf("origin = %v", origin)
	}
	if len(sub.Adj(0)) != 1 || len(sub.Adj(1)) != 3 {
		t.Fatalf("induced degrees %d,%d", len(sub.Adj(0)), len(sub.Adj(1)))
	}
	m := MaxCardinality(sub)
	if m.Size() != 2 {
		t.Fatalf("induced max matching = %d, want 2", m.Size())
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := paperGraph()
	m := NewMatching(3, 3)
	m.LeftTo[1] = 2 // r2-w3 is not an edge
	m.RightTo[2] = 1
	if err := m.Validate(g); err == nil {
		t.Error("want validation error for non-edge pair")
	}
	m2 := NewMatching(3, 3)
	m2.LeftTo[0] = 1 // asymmetric
	if err := m2.Validate(g); err == nil {
		t.Error("want validation error for asymmetric pair")
	}
	m3 := NewMatching(2, 3)
	if err := m3.Validate(g); err == nil {
		t.Error("want validation error for size mismatch")
	}
}

func TestGraphPanics(t *testing.T) {
	g := NewGraph(2, 2)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range AddEdge should panic")
		}
	}()
	g.AddEdge(2, 0)
}

func TestHasEdge(t *testing.T) {
	g := paperGraph()
	if !g.HasEdge(2, 2) || g.HasEdge(0, 2) || g.HasEdge(-1, 0) {
		t.Error("HasEdge wrong")
	}
	if g.NumEdges() != 5 {
		t.Errorf("NumEdges = %d, want 5", g.NumEdges())
	}
}

func TestIncrementalRemoveRight(t *testing.T) {
	g := paperGraph()
	inc := NewIncremental(g)
	for l := 0; l < 3; l++ {
		inc.TryAugment(l)
	}
	if inc.Size() != 2 {
		t.Fatalf("initial size = %d, want 2", inc.Size())
	}

	// w1 (right 0) goes offline: whichever of r1/r2 held it is freed and
	// cannot be repaired (w1 was their only neighbor).
	freed := inc.RemoveRight(0)
	if freed != 0 && freed != 1 {
		t.Fatalf("RemoveRight(0) freed %d, want 0 or 1", freed)
	}
	if !inc.Removed(0) || inc.Size() != 1 {
		t.Fatalf("after removal: removed=%v size=%d", inc.Removed(0), inc.Size())
	}
	if inc.TryAugment(freed) {
		t.Fatal("freed task re-augmented through a removed worker")
	}

	// r3 still holds one of w2/w3; removing it must repair onto the other.
	r3Worker := inc.Matching().LeftTo[2]
	if r3Worker < 1 {
		t.Fatalf("r3 matched to %d, want w2 or w3", r3Worker)
	}
	if got := inc.RemoveRight(r3Worker); got != 2 {
		t.Fatalf("RemoveRight(%d) freed %d, want 2", r3Worker, got)
	}
	if !inc.TryAugment(2) {
		t.Fatal("r3 not repairable despite a spare worker")
	}
	if err := inc.Matching().Validate(g); err != nil {
		t.Fatal(err)
	}

	// Duplicate and out-of-range removals are inert.
	if inc.RemoveRight(r3Worker) != -1 || inc.RemoveRight(99) != -1 || inc.RemoveRight(-1) != -1 {
		t.Fatal("redundant RemoveRight should return -1")
	}

	// Restoring w1 re-admits it for augmentation.
	if !inc.RestoreRight(0) || inc.RestoreRight(0) {
		t.Fatal("RestoreRight should succeed once")
	}
	if !inc.TryAugment(freed) {
		t.Fatal("restored worker not reachable")
	}
}

// TestIncrementalInterleavedAugmentRemove drives random interleavings of
// augment/remove/restore operations and checks two invariants after every
// step: the matching stays valid for the graph, and no removed right vertex
// is ever matched. At the end, re-augmenting every unmatched left vertex
// must reach the maximum cardinality of the graph induced on the surviving
// right vertices (Kuhn over the non-removed workers).
func TestIncrementalInterleavedAugmentRemove(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		nl, nr := 2+rng.Intn(12), 2+rng.Intn(12)
		g := NewGraph(nl, nr)
		for l := 0; l < nl; l++ {
			for r := 0; r < nr; r++ {
				if rng.Float64() < 0.3 {
					g.AddEdge(l, r)
				}
			}
		}
		inc := NewIncremental(g)
		removed := make(map[int]bool)
		for step := 0; step < 60; step++ {
			switch op := rng.Intn(4); op {
			case 0, 1:
				inc.TryAugment(rng.Intn(nl))
			case 2:
				r := rng.Intn(nr)
				if freed := inc.RemoveRight(r); freed >= 0 {
					inc.TryAugment(freed) // repair attempt
				}
				if inc.Removed(r) {
					removed[r] = true
				}
			case 3:
				r := rng.Intn(nr)
				if inc.RestoreRight(r) {
					delete(removed, r)
				}
			}
			m := inc.Matching()
			if err := m.Validate(g); err != nil {
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}
			for r := range removed {
				if m.RightTo[r] >= 0 {
					t.Fatalf("trial %d step %d: removed right %d is matched", trial, step, r)
				}
			}
		}
		// Saturate, then compare against max cardinality on the survivors.
		for l := 0; l < nl; l++ {
			inc.TryAugment(l)
		}
		surviving := NewGraph(nl, nr)
		for l := 0; l < nl; l++ {
			for _, r := range g.Adj(l) {
				if !removed[r] {
					surviving.AddEdge(l, r)
				}
			}
		}
		want := MaxCardinality(surviving).Size()
		if got := inc.Size(); got != want {
			t.Fatalf("trial %d: saturated size %d, max cardinality on survivors %d", trial, got, want)
		}
	}
}
