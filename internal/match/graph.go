// Package match implements the bipartite-graph machinery of the paper:
// the task–worker graph B^t of Section 2.2, maximum-cardinality matching
// (Hopcroft–Karp), exact maximum-weight bipartite matching (the revenue of
// Definition 5), and the incremental single-augmentation matcher MAPS uses
// to validate worker additions (Algorithm 2, line 10).
//
// Left vertices are tasks and right vertices are workers throughout, but the
// package is agnostic to that interpretation.
package match

import "fmt"

// Graph is a bipartite graph with nLeft left vertices and nRight right
// vertices, stored as left adjacency lists. The zero value is an empty graph
// with no vertices; use NewGraph for sized construction.
type Graph struct {
	nLeft, nRight int
	adj           [][]int // adj[l] = right neighbors of left vertex l
	edges         int
}

// NewGraph returns an empty bipartite graph with the given side sizes.
// It panics on negative sizes (a programming error, not runtime input).
func NewGraph(nLeft, nRight int) *Graph {
	if nLeft < 0 || nRight < 0 {
		panic(fmt.Sprintf("match: negative graph size %dx%d", nLeft, nRight))
	}
	return &Graph{nLeft: nLeft, nRight: nRight, adj: make([][]int, nLeft)}
}

// Reset re-dimensions g to an empty nLeft x nRight graph, reusing the
// adjacency backing arrays of previous batches. Hot paths that build one
// graph per pricing window (the streaming engine) call it instead of
// NewGraph so steady-state construction allocates nothing.
func (g *Graph) Reset(nLeft, nRight int) {
	if nLeft < 0 || nRight < 0 {
		panic(fmt.Sprintf("match: negative graph size %dx%d", nLeft, nRight))
	}
	if cap(g.adj) >= nLeft {
		g.adj = g.adj[:nLeft]
	} else {
		adj := make([][]int, nLeft)
		copy(adj, g.adj)
		g.adj = adj
	}
	for l := range g.adj {
		g.adj[l] = g.adj[l][:0]
	}
	g.nLeft, g.nRight = nLeft, nRight
	g.edges = 0
}

// NLeft returns the number of left vertices.
func (g *Graph) NLeft() int { return g.nLeft }

// NRight returns the number of right vertices.
func (g *Graph) NRight() int { return g.nRight }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return g.edges }

// AddEdge inserts the edge (l, r). Duplicate edges are allowed but useless;
// callers are expected to add each pair once. It panics on out-of-range
// endpoints.
func (g *Graph) AddEdge(l, r int) {
	if l < 0 || l >= g.nLeft || r < 0 || r >= g.nRight {
		panic(fmt.Sprintf("match: edge (%d,%d) out of range %dx%d", l, r, g.nLeft, g.nRight))
	}
	g.adj[l] = append(g.adj[l], r)
	g.edges++
}

// Adj returns the right neighbors of left vertex l. The returned slice is
// owned by the graph and must not be modified.
func (g *Graph) Adj(l int) []int { return g.adj[l] }

// HasEdge reports whether the edge (l, r) exists. O(deg(l)).
func (g *Graph) HasEdge(l, r int) bool {
	if l < 0 || l >= g.nLeft {
		return false
	}
	for _, x := range g.adj[l] {
		if x == r {
			return true
		}
	}
	return false
}

// InducedLeft returns the subgraph on the given subset of left vertices
// (with the same right side), along with the mapping from new left index to
// original left index. The revenue computation uses it to restrict B^t to
// the tasks that accepted their price.
func (g *Graph) InducedLeft(keep []int) (*Graph, []int) {
	sub := NewGraph(len(keep), g.nRight)
	origin := make([]int, len(keep))
	for i, l := range keep {
		origin[i] = l
		for _, r := range g.adj[l] {
			sub.AddEdge(i, r)
		}
	}
	return sub, origin
}

// Matching is a pairing between left and right vertices. LeftTo[l] is the
// right partner of l or -1; RightTo[r] is the left partner of r or -1.
type Matching struct {
	LeftTo  []int
	RightTo []int
}

// NewMatching returns an empty matching for a graph with the given sizes.
func NewMatching(nLeft, nRight int) *Matching {
	m := &Matching{}
	m.Reset(nLeft, nRight)
	return m
}

// Reset re-dimensions the matching to empty, reusing the pairing arrays.
func (m *Matching) Reset(nLeft, nRight int) {
	m.LeftTo = resetPairs(m.LeftTo, nLeft)
	m.RightTo = resetPairs(m.RightTo, nRight)
}

// resetPairs returns a length-n all -1 slice, reusing s's backing array when
// it is large enough.
func resetPairs(s []int, n int) []int {
	if cap(s) >= n {
		s = s[:n]
	} else {
		s = make([]int, n)
	}
	for i := range s {
		s[i] = -1
	}
	return s
}

// Size returns the number of matched pairs.
func (m *Matching) Size() int {
	n := 0
	for _, r := range m.LeftTo {
		if r >= 0 {
			n++
		}
	}
	return n
}

// Validate checks the matching invariants against g: every matched pair is
// an edge of g and the two directions agree. It returns a descriptive error
// on the first violation found.
func (m *Matching) Validate(g *Graph) error {
	if len(m.LeftTo) != g.NLeft() || len(m.RightTo) != g.NRight() {
		return fmt.Errorf("match: matching sized %dx%d vs graph %dx%d",
			len(m.LeftTo), len(m.RightTo), g.NLeft(), g.NRight())
	}
	for l, r := range m.LeftTo {
		if r < 0 {
			continue
		}
		if r >= g.NRight() {
			return fmt.Errorf("match: left %d matched to out-of-range right %d", l, r)
		}
		if m.RightTo[r] != l {
			return fmt.Errorf("match: asymmetric pair l=%d r=%d (RightTo=%d)", l, r, m.RightTo[r])
		}
		if !g.HasEdge(l, r) {
			return fmt.Errorf("match: pair (%d,%d) is not an edge", l, r)
		}
	}
	for r, l := range m.RightTo {
		if l >= 0 && (l >= g.NLeft() || m.LeftTo[l] != r) {
			return fmt.Errorf("match: asymmetric pair r=%d l=%d", r, l)
		}
	}
	return nil
}
