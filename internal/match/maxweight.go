package match

import (
	"fmt"
	"math"
	"sort"
)

// MaxWeightByLeft computes an exact maximum-weight matching when the weight
// of every edge (l, r) equals weight[l], i.e. the weight is determined by the
// left (task) vertex. This is precisely the structure of Definition 5, where
// every edge of task r weighs d_r * p_r regardless of the worker.
//
// The matchable left subsets form a transversal matroid, so the greedy
// algorithm — scan tasks by decreasing weight, keep each task whose addition
// still admits an augmenting path — is exact. Complexity O(L * E).
// Tasks with non-positive weight are skipped (they cannot increase revenue).
func MaxWeightByLeft(g *Graph, weight []float64) (*Matching, float64) {
	return MaxWeightByLeftScratch(g, weight, nil)
}

// MaxWeightScratch is reusable working state for MaxWeightByLeftScratch: the
// weight-sorted order and the incremental matcher survive across calls, so a
// caller matching one batch per pricing window allocates nothing in steady
// state. One instance serves one goroutine.
type MaxWeightScratch struct {
	order []int
	inc   *Incremental
}

// MaxWeightByLeftScratch is MaxWeightByLeft with caller-owned scratch state.
// A nil scratch allocates fresh state (exactly MaxWeightByLeft). The
// returned matching is backed by the scratch and valid until its next use.
func MaxWeightByLeftScratch(g *Graph, weight []float64, sc *MaxWeightScratch) (*Matching, float64) {
	if len(weight) != g.NLeft() {
		panic(fmt.Sprintf("match: %d weights for %d left vertices", len(weight), g.NLeft()))
	}
	if sc == nil {
		sc = &MaxWeightScratch{}
	}
	if cap(sc.order) >= g.NLeft() {
		sc.order = sc.order[:g.NLeft()]
	} else {
		sc.order = make([]int, g.NLeft())
	}
	order := sc.order
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return weight[order[i]] > weight[order[j]] })

	if sc.inc == nil {
		sc.inc = NewIncremental(g)
	} else {
		sc.inc.Reset(g)
	}
	inc := sc.inc
	total := 0.0
	for _, l := range order {
		if weight[l] <= 0 {
			break
		}
		if inc.TryAugment(l) {
			total += weight[l]
		}
	}
	return inc.Matching(), total
}

// WeightedGraph is a bipartite graph with a float64 weight per edge.
type WeightedGraph struct {
	g *Graph
	w [][]float64 // parallel to g.adj
}

// NewWeightedGraph returns an empty weighted bipartite graph.
func NewWeightedGraph(nLeft, nRight int) *WeightedGraph {
	return &WeightedGraph{g: NewGraph(nLeft, nRight), w: make([][]float64, nLeft)}
}

// Graph returns the underlying unweighted graph.
func (wg *WeightedGraph) Graph() *Graph { return wg.g }

// AddEdge inserts edge (l, r) with weight w.
func (wg *WeightedGraph) AddEdge(l, r int, w float64) {
	wg.g.AddEdge(l, r)
	wg.w[l] = append(wg.w[l], w)
}

// Weight returns the weight of the i-th edge out of l (parallel to Adj).
func (wg *WeightedGraph) Weight(l, i int) float64 { return wg.w[l][i] }

// MaxWeightGeneral computes an exact maximum-weight bipartite matching for
// arbitrary non-negative edge weights with the Hungarian algorithm
// (Kuhn–Munkres with potentials, O(L^2 * (L + R))). The matching may leave
// vertices unmatched whenever that increases total weight; zero-weight
// "dummy" columns encode the unmatched option.
//
// This is the reference solver for Definition 5 when edge weights are not
// determined by the task alone. For the common left-weighted case prefer
// MaxWeightByLeft, which is asymptotically faster and allocation-free per
// edge. MaxWeightGeneral materializes a dense L x (R + L) cost matrix, so it
// suits moderate sizes (thousands of vertices), such as per-period matching
// and the possible-world enumerations.
func MaxWeightGeneral(wg *WeightedGraph) (*Matching, float64) {
	g := wg.g
	nl, nr := g.NLeft(), g.NRight()
	m := NewMatching(nl, nr)
	if nl == 0 || nr == 0 || g.NumEdges() == 0 {
		return m, 0
	}

	// Dense cost matrix: cost[l][r] = -weight for real edges, 0 otherwise.
	// Columns nr..nr+nl-1 are dummy columns (cost 0) so every row can always
	// be "assigned" without stealing a real worker from another task.
	cols := nr + nl
	cost := make([][]float64, nl)
	for l := 0; l < nl; l++ {
		cost[l] = make([]float64, cols)
		for i, r := range g.Adj(l) {
			w := wg.w[l][i]
			if w > 0 && -w < cost[l][r] {
				cost[l][r] = -w
			}
		}
	}

	assignment := hungarian(cost)

	total := 0.0
	for l, r := range assignment {
		if r < 0 || r >= nr {
			continue // dummy column: task stays unmatched
		}
		if w, ok := findEdgeWeight(wg, l, r); ok && w > 0 {
			m.LeftTo[l] = r
			m.RightTo[r] = l
			total += w
		}
	}
	return m, total
}

// hungarian solves the rectangular assignment problem min sum cost[i][row(i)]
// with len(cost) rows and len(cost[0]) >= len(cost) columns, returning the
// column assigned to each row. Standard O(n^2 m) potential-based
// implementation (e-maxx formulation, 1-indexed internally).
func hungarian(cost [][]float64) []int {
	n := len(cost)
	if n == 0 {
		return nil
	}
	mcols := len(cost[0])
	if mcols < n {
		panic(fmt.Sprintf("match: hungarian needs cols >= rows, got %dx%d", n, mcols))
	}
	u := make([]float64, n+1)
	v := make([]float64, mcols+1)
	p := make([]int, mcols+1) // p[j] = row assigned to column j (1-based), 0 = none
	way := make([]int, mcols+1)

	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, mcols+1)
		used := make([]bool, mcols+1)
		for j := range minv {
			minv[j] = math.Inf(1)
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := math.Inf(1)
			j1 := 0
			for j := 1; j <= mcols; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= mcols; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	for j := 1; j <= mcols; j++ {
		if p[j] > 0 {
			assign[p[j]-1] = j - 1
		}
	}
	return assign
}

// findEdgeWeight returns the weight of edge (l, r) and whether it exists.
func findEdgeWeight(wg *WeightedGraph, l, r int) (float64, bool) {
	best, found := 0.0, false
	for i, rr := range wg.g.Adj(l) {
		if rr == r && (!found || wg.w[l][i] > best) {
			best, found = wg.w[l][i], true
		}
	}
	return best, found
}
