package match

// Incremental maintains a matching under one-at-a-time left-vertex
// augmentations using Kuhn's algorithm. MAPS keeps one Incremental as the
// pre-matching M' of Algorithm 2: each time a grid wants one more unit of
// supply, it asks whether some still-unassigned task of that grid admits an
// augmenting path, and commits the flip if so (line 10).
type Incremental struct {
	g       *Graph
	m       *Matching
	visited []int // stamp-based visited marks for right vertices
	removed []int // stamp-based removal marks (worker churn); see removedGen
	stamp   int
	// removedGen is the stamp meaning "removed in the current generation".
	// Reset bumps it instead of clearing the array, so re-arming the matcher
	// for a new batch is O(1) in the removal state.
	removedGen int
}

// NewIncremental returns an incremental matcher over g with an empty
// matching.
func NewIncremental(g *Graph) *Incremental {
	in := &Incremental{}
	in.Reset(g)
	return in
}

// Reset re-arms the matcher over a (possibly different) graph with an empty
// matching, reusing the visited, removal, and pairing arrays. The epoch
// stamps make the old marks unreadable without clearing them, so a per-batch
// reset costs O(nLeft + nRight) for the pairing fill and nothing else.
func (in *Incremental) Reset(g *Graph) {
	in.g = g
	if in.m == nil {
		in.m = NewMatching(g.NLeft(), g.NRight())
	} else {
		in.m.Reset(g.NLeft(), g.NRight())
	}
	in.visited = growStamps(in.visited, g.NRight())
	in.removed = growStamps(in.removed, g.NRight())
	in.removedGen++
}

// growStamps returns a length-n stamp array, reusing s when large enough.
// Stale stamps in the reused prefix stay: generations only move forward, so
// they can never equal a current stamp again.
func growStamps(s []int, n int) []int {
	if cap(s) >= n {
		return s[:n]
	}
	grown := make([]int, n)
	copy(grown, s)
	return grown
}

// Matching exposes the current matching. Callers must treat it as read-only;
// mutating it corrupts the augmentation state.
func (in *Incremental) Matching() *Matching { return in.m }

// Matched reports whether left vertex l is currently matched.
func (in *Incremental) Matched(l int) bool { return in.m.LeftTo[l] >= 0 }

// Size returns the current matching size.
func (in *Incremental) Size() int { return in.m.Size() }

// TryAugment attempts to add left vertex l to the matching by finding an
// augmenting path from l. It returns true and flips the path if found; the
// matching is unchanged otherwise. Already-matched vertices return false.
// Complexity O(E) per call.
func (in *Incremental) TryAugment(l int) bool {
	if l < 0 || l >= in.g.NLeft() || in.Matched(l) {
		return false
	}
	in.stamp++
	return in.dfs(l)
}

// TryAugmentAny attempts TryAugment on each candidate in order and returns
// the first left vertex that was successfully matched, or -1. MAPS calls it
// with the unassigned tasks of one grid.
func (in *Incremental) TryAugmentAny(candidates []int) int {
	for _, l := range candidates {
		if in.TryAugment(l) {
			return l
		}
	}
	return -1
}

// CanAugmentAny reports whether at least one candidate admits an augmenting
// path without committing any change. MAPS uses it for the "is there an
// augmenting path for any unassigned r in R^tg" test of Algorithm 2 line 16.
func (in *Incremental) CanAugmentAny(candidates []int) bool {
	for _, l := range candidates {
		if l < 0 || l >= in.g.NLeft() || in.Matched(l) {
			continue
		}
		in.stamp++
		if in.probe(l) {
			return true
		}
	}
	return false
}

// dfs searches for an augmenting path from l and flips it when found.
func (in *Incremental) dfs(l int) bool {
	for _, r := range in.g.Adj(l) {
		if in.removed[r] == in.removedGen || in.visited[r] == in.stamp {
			continue
		}
		in.visited[r] = in.stamp
		if in.m.RightTo[r] < 0 || in.dfs(in.m.RightTo[r]) {
			in.m.LeftTo[l] = r
			in.m.RightTo[r] = l
			return true
		}
	}
	return false
}

// probe is dfs without committing the flip.
func (in *Incremental) probe(l int) bool {
	for _, r := range in.g.Adj(l) {
		if in.removed[r] == in.removedGen || in.visited[r] == in.stamp {
			continue
		}
		in.visited[r] = in.stamp
		if in.m.RightTo[r] < 0 || in.probe(in.m.RightTo[r]) {
			return true
		}
	}
	return false
}

// Release unmatches left vertex l if matched, freeing its worker. The
// simulator uses it when a priced task is ultimately rejected by its
// requester, returning the provisional supply to the pool.
func (in *Incremental) Release(l int) {
	if l < 0 || l >= in.g.NLeft() {
		return
	}
	if r := in.m.LeftTo[l]; r >= 0 {
		in.m.LeftTo[l] = -1
		in.m.RightTo[r] = -1
	}
}

// RemoveRight withdraws right vertex r from service: it is unmatched (if
// matched) and excluded from every future augmentation. The streaming
// dispatch engine uses it when a worker goes offline while a pricing batch
// is in flight. It returns the left vertex that lost its partner, or -1 if r
// was unmatched, already removed, or out of range; callers typically try to
// re-augment the freed left vertex to repair the matching.
func (in *Incremental) RemoveRight(r int) int {
	if r < 0 || r >= in.g.NRight() || in.removed[r] == in.removedGen {
		return -1
	}
	in.removed[r] = in.removedGen
	l := in.m.RightTo[r]
	if l < 0 {
		return -1
	}
	in.m.RightTo[r] = -1
	in.m.LeftTo[l] = -1
	return l
}

// RestoreRight re-admits a previously removed right vertex (unmatched). It
// reports whether the vertex was in the removed state.
func (in *Incremental) RestoreRight(r int) bool {
	if r < 0 || r >= in.g.NRight() || in.removed[r] != in.removedGen {
		return false
	}
	in.removed[r] = 0
	return true
}

// Removed reports whether right vertex r has been withdrawn from service.
func (in *Incremental) Removed(r int) bool {
	return r >= 0 && r < in.g.NRight() && in.removed[r] == in.removedGen
}

// RestorePair force-installs the pairing (l, r) without searching for an
// augmenting path. It exists for checkpoint restore: a matcher re-armed
// over a deterministically rebuilt graph is brought back to its recorded
// matching pair by pair. Both vertices must be unmatched and r not removed;
// violations report false and change nothing.
func (in *Incremental) RestorePair(l, r int) bool {
	if l < 0 || l >= in.g.NLeft() || r < 0 || r >= in.g.NRight() {
		return false
	}
	if in.m.LeftTo[l] >= 0 || in.m.RightTo[r] >= 0 || in.removed[r] == in.removedGen {
		return false
	}
	in.m.LeftTo[l] = r
	in.m.RightTo[r] = l
	return true
}
