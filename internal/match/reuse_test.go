package match

import (
	"math/rand"
	"testing"
)

// randomGraph builds an nl x nr graph with the given edge density.
func randomGraph(rng *rand.Rand, nl, nr int, p float64) *Graph {
	g := NewGraph(nl, nr)
	for l := 0; l < nl; l++ {
		for r := 0; r < nr; r++ {
			if rng.Float64() < p {
				g.AddEdge(l, r)
			}
		}
	}
	return g
}

// TestGraphResetReuse drives one graph through many reset/rebuild rounds of
// varying shape and checks every round matches a freshly constructed graph.
func TestGraphResetReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	reused := NewGraph(0, 0)
	for round := 0; round < 50; round++ {
		nl, nr := rng.Intn(20), rng.Intn(20)
		fresh := NewGraph(nl, nr)
		reused.Reset(nl, nr)
		for l := 0; l < nl; l++ {
			for r := 0; r < nr; r++ {
				if rng.Float64() < 0.3 {
					fresh.AddEdge(l, r)
					reused.AddEdge(l, r)
				}
			}
		}
		if reused.NLeft() != nl || reused.NRight() != nr || reused.NumEdges() != fresh.NumEdges() {
			t.Fatalf("round %d: reused graph %dx%d/%d edges, want %dx%d/%d",
				round, reused.NLeft(), reused.NRight(), reused.NumEdges(), nl, nr, fresh.NumEdges())
		}
		for l := 0; l < nl; l++ {
			fa, ra := fresh.Adj(l), reused.Adj(l)
			if len(fa) != len(ra) {
				t.Fatalf("round %d left %d: adjacency %v vs fresh %v", round, l, ra, fa)
			}
			for i := range fa {
				if fa[i] != ra[i] {
					t.Fatalf("round %d left %d: adjacency %v vs fresh %v", round, l, ra, fa)
				}
			}
		}
	}
}

// TestIncrementalResetEpochs pins the epoch stamping: after a Reset, prior
// removals and visited marks must be unreadable without any clearing, and
// the matcher must behave exactly like a fresh one.
func TestIncrementalResetEpochs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	reused := NewIncremental(NewGraph(0, 0))
	for round := 0; round < 60; round++ {
		nl, nr := 1+rng.Intn(15), 1+rng.Intn(15)
		g := randomGraph(rng, nl, nr, 0.35)
		reused.Reset(g)
		fresh := NewIncremental(g)
		// Interleave augments and removals identically on both matchers.
		for step := 0; step < 40; step++ {
			switch rng.Intn(4) {
			case 0, 1:
				l := rng.Intn(nl)
				if got, want := reused.TryAugment(l), fresh.TryAugment(l); got != want {
					t.Fatalf("round %d step %d: TryAugment(%d) reused=%v fresh=%v", round, step, l, got, want)
				}
			case 2:
				r := rng.Intn(nr)
				if got, want := reused.RemoveRight(r), fresh.RemoveRight(r); got != want {
					t.Fatalf("round %d step %d: RemoveRight(%d) reused=%v fresh=%v", round, step, r, got, want)
				}
			case 3:
				r := rng.Intn(nr)
				if got, want := reused.RestoreRight(r), fresh.RestoreRight(r); got != want {
					t.Fatalf("round %d step %d: RestoreRight(%d) reused=%v fresh=%v", round, step, r, got, want)
				}
			}
		}
		for r := 0; r < nr; r++ {
			if reused.Removed(r) != fresh.Removed(r) {
				t.Fatalf("round %d: Removed(%d) diverges after reuse", round, r)
			}
		}
		mr, mf := reused.Matching(), fresh.Matching()
		for l := 0; l < nl; l++ {
			if mr.LeftTo[l] != mf.LeftTo[l] {
				t.Fatalf("round %d: LeftTo diverges: reused %v fresh %v", round, mr.LeftTo, mf.LeftTo)
			}
		}
		if err := mr.Validate(g); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}

// TestHopcroftKarpReuse checks a reused HopcroftKarp instance returns the
// same matching sizes as one-shot MaxCardinality across many graphs.
func TestHopcroftKarpReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	var hk HopcroftKarp
	for round := 0; round < 80; round++ {
		nl, nr := rng.Intn(25), rng.Intn(25)
		g := randomGraph(rng, nl, nr, 0.25)
		reused := hk.Match(g)
		if err := reused.Validate(g); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if got, want := reused.Size(), MaxCardinality(g).Size(); got != want {
			t.Fatalf("round %d: reused HK size %d, fresh %d", round, got, want)
		}
	}
}

// TestMaxWeightByLeftScratchMatchesFresh checks the scratch variant returns
// the same matching and total as the allocating one across random rounds.
func TestMaxWeightByLeftScratchMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	sc := &MaxWeightScratch{}
	for round := 0; round < 60; round++ {
		nl, nr := rng.Intn(20), rng.Intn(20)
		g := randomGraph(rng, nl, nr, 0.3)
		weights := make([]float64, nl)
		for i := range weights {
			weights[i] = rng.Float64()*10 - 1 // include non-positive weights
		}
		mf, tf := MaxWeightByLeft(g, weights)
		ms, ts := MaxWeightByLeftScratch(g, weights, sc)
		if tf != ts {
			t.Fatalf("round %d: scratch total %v, fresh %v", round, ts, tf)
		}
		for l := 0; l < nl; l++ {
			if mf.LeftTo[l] != ms.LeftTo[l] {
				t.Fatalf("round %d: LeftTo diverges: scratch %v fresh %v", round, ms.LeftTo, mf.LeftTo)
			}
		}
	}
}
