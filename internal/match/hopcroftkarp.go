package match

// hkInf is the "unreached this phase" distance. Levels are bounded by the
// number of left vertices, so any value above that works.
const hkInf = int(^uint(0) >> 1)

// HopcroftKarp is reusable scratch state for maximum-cardinality matching.
// The zero value is ready to use; calling Match repeatedly reuses the level,
// queue, and matching arrays, with epoch stamps standing in for the per-phase
// clearing of the BFS level structure. One instance serves one goroutine.
type HopcroftKarp struct {
	m     *Matching
	dist  []int
	seen  []int // dist[l] is valid iff seen[l] == stamp (current BFS phase)
	queue []int
	stamp int
}

// Match computes a maximum-cardinality matching of g in O(E * sqrt(V)).
// The returned matching is owned by the receiver and valid until the next
// Match call; callers that need to keep it across calls must copy it.
func (hk *HopcroftKarp) Match(g *Graph) *Matching {
	if hk.m == nil {
		hk.m = NewMatching(g.NLeft(), g.NRight())
	} else {
		hk.m.Reset(g.NLeft(), g.NRight())
	}
	m := hk.m
	if g.NLeft() == 0 || g.NRight() == 0 {
		return m
	}
	hk.dist = growStamps(hk.dist, g.NLeft())
	hk.seen = growStamps(hk.seen, g.NLeft())
	if cap(hk.queue) < g.NLeft() {
		hk.queue = make([]int, 0, g.NLeft())
	}

	// level returns l's BFS level this phase; unvisited vertices read as inf
	// without the array ever being cleared between phases.
	level := func(l int) int {
		if hk.seen[l] == hk.stamp {
			return hk.dist[l]
		}
		return hkInf
	}
	setLevel := func(l, d int) {
		hk.seen[l] = hk.stamp
		hk.dist[l] = d
	}

	bfs := func() bool {
		hk.stamp++
		queue := hk.queue[:0]
		for l := 0; l < g.NLeft(); l++ {
			if m.LeftTo[l] < 0 {
				setLevel(l, 0)
				queue = append(queue, l)
			}
		}
		found := false
		for qi := 0; qi < len(queue); qi++ {
			l := queue[qi]
			for _, r := range g.Adj(l) {
				nl := m.RightTo[r]
				if nl < 0 {
					found = true
				} else if level(nl) == hkInf {
					setLevel(nl, hk.dist[l]+1)
					queue = append(queue, nl)
				}
			}
		}
		hk.queue = queue
		return found
	}

	var dfs func(l int) bool
	dfs = func(l int) bool {
		for _, r := range g.Adj(l) {
			nl := m.RightTo[r]
			if nl < 0 || (level(nl) == hk.dist[l]+1 && dfs(nl)) {
				m.LeftTo[l] = r
				m.RightTo[r] = l
				return true
			}
		}
		setLevel(l, hkInf)
		return false
	}

	for bfs() {
		for l := 0; l < g.NLeft(); l++ {
			if m.LeftTo[l] < 0 {
				dfs(l)
			}
		}
	}
	return m
}

// MaxCardinality computes a maximum-cardinality matching of g with the
// Hopcroft–Karp algorithm in O(E * sqrt(V)). It is used for questions that
// only need sizes, e.g. "at most two tasks can be served" in Example 1, and
// as a fast feasibility check in tests. Callers on a hot path should keep a
// HopcroftKarp instance and call Match to reuse its scratch state.
func MaxCardinality(g *Graph) *Matching {
	return new(HopcroftKarp).Match(g)
}
