package match

// MaxCardinality computes a maximum-cardinality matching of g with the
// Hopcroft–Karp algorithm in O(E * sqrt(V)). It is used for questions that
// only need sizes, e.g. "at most two tasks can be served" in Example 1, and
// as a fast feasibility check in tests.
func MaxCardinality(g *Graph) *Matching {
	m := NewMatching(g.NLeft(), g.NRight())
	if g.NLeft() == 0 || g.NRight() == 0 {
		return m
	}
	const inf = int(^uint(0) >> 1)
	dist := make([]int, g.NLeft())
	queue := make([]int, 0, g.NLeft())

	bfs := func() bool {
		queue = queue[:0]
		for l := 0; l < g.NLeft(); l++ {
			if m.LeftTo[l] < 0 {
				dist[l] = 0
				queue = append(queue, l)
			} else {
				dist[l] = inf
			}
		}
		found := false
		for qi := 0; qi < len(queue); qi++ {
			l := queue[qi]
			for _, r := range g.Adj(l) {
				nl := m.RightTo[r]
				if nl < 0 {
					found = true
				} else if dist[nl] == inf {
					dist[nl] = dist[l] + 1
					queue = append(queue, nl)
				}
			}
		}
		return found
	}

	var dfs func(l int) bool
	dfs = func(l int) bool {
		for _, r := range g.Adj(l) {
			nl := m.RightTo[r]
			if nl < 0 || (dist[nl] == dist[l]+1 && dfs(nl)) {
				m.LeftTo[l] = r
				m.RightTo[r] = l
				return true
			}
		}
		dist[l] = inf
		return false
	}

	for bfs() {
		for l := 0; l < g.NLeft(); l++ {
			if m.LeftTo[l] < 0 {
				dfs(l)
			}
		}
	}
	return m
}
