package server

import (
	"context"
	"sync"
	"sync/atomic"

	"spatialcrowd/internal/engine"
)

// defaultQuoteCache is the per-generation size of the recent-decision cache
// (two generations live at once, so the worst-case footprint is twice this).
const defaultQuoteCache = 1 << 16

// subscriberBuffer is the bounded per-SSE-subscriber queue. A subscriber
// that cannot keep up loses frames (counted in Dropped) — the hub never
// buffers without bound on a slow consumer's behalf.
const subscriberBuffer = 256

// quoteHub fans one tenant's decision stream out to requesters. Two
// delivery paths:
//
//   - Long-poll by task ID (Await): a requester that just posted a task
//     blocks until the engine prices it. Decisions that arrive before the
//     requester asks are held in a two-generation recent cache, rotated by
//     size, so the memory stays bounded while a quote remains retrievable
//     for roughly two cache generations.
//   - Broadcast subscription (Subscribe): every decision, pushed over a
//     bounded channel; SSE handlers drain it.
//
// Publish is called from engine shard goroutines (Config.OnDecision) and
// holds the mutex only for map/slice operations — no I/O.
type quoteHub struct {
	mu      sync.Mutex
	waiters map[int][]chan engine.Decision
	cur     map[int]engine.Decision // recent decisions, current generation
	prev    map[int]engine.Decision // previous generation
	genSize int
	subs    map[*subscriber]struct{}
	closed  bool

	published atomic.Int64
	dropped   atomic.Int64 // frames lost to slow subscribers
}

type subscriber struct {
	ch chan engine.Decision
}

func newQuoteHub(genSize int) *quoteHub {
	if genSize <= 0 {
		genSize = defaultQuoteCache
	}
	return &quoteHub{
		waiters: make(map[int][]chan engine.Decision),
		cur:     make(map[int]engine.Decision),
		prev:    make(map[int]engine.Decision),
		genSize: genSize,
		subs:    make(map[*subscriber]struct{}),
	}
}

// Publish delivers one decision: wakes the task's long-poll waiters, caches
// it for late arrivals, and fans it out to broadcast subscribers without
// blocking.
func (h *quoteHub) Publish(d engine.Decision) {
	h.published.Add(1)
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	if ws := h.waiters[d.TaskID]; len(ws) > 0 {
		for _, w := range ws {
			w <- d // buffered cap 1, at most one send per waiter
		}
		delete(h.waiters, d.TaskID)
	}
	if len(h.cur) >= h.genSize {
		h.prev = h.cur
		h.cur = make(map[int]engine.Decision, h.genSize)
	}
	h.cur[d.TaskID] = d
	var drops int64
	for s := range h.subs {
		select {
		case s.ch <- d:
		default:
			drops++
		}
	}
	h.mu.Unlock()
	if drops > 0 {
		h.dropped.Add(drops)
	}
}

// Await returns the most recent decision for the task, blocking until one
// is published or the context ends. ok is false on timeout/cancel.
func (h *quoteHub) Await(ctx context.Context, taskID int) (engine.Decision, bool) {
	h.mu.Lock()
	if d, hit := h.cur[taskID]; hit {
		h.mu.Unlock()
		return d, true
	}
	if d, hit := h.prev[taskID]; hit {
		h.mu.Unlock()
		return d, true
	}
	if h.closed {
		h.mu.Unlock()
		return engine.Decision{}, false
	}
	ch := make(chan engine.Decision, 1)
	h.waiters[taskID] = append(h.waiters[taskID], ch)
	h.mu.Unlock()

	select {
	case d := <-ch:
		return d, true
	case <-ctx.Done():
		h.mu.Lock()
		ws := h.waiters[taskID]
		for i, w := range ws {
			if w == ch {
				ws[i] = ws[len(ws)-1]
				ws = ws[:len(ws)-1]
				break
			}
		}
		if len(ws) == 0 {
			delete(h.waiters, taskID)
		} else {
			h.waiters[taskID] = ws
		}
		h.mu.Unlock()
		// The publisher may have raced the cancellation; prefer the decision.
		select {
		case d := <-ch:
			return d, true
		default:
			return engine.Decision{}, false
		}
	}
}

// Subscribe registers a broadcast consumer. The caller must Unsubscribe.
// Returns nil after Close.
func (h *quoteHub) Subscribe() *subscriber {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil
	}
	s := &subscriber{ch: make(chan engine.Decision, subscriberBuffer)}
	h.subs[s] = struct{}{}
	return s
}

// Unsubscribe removes a broadcast consumer and closes its channel.
func (h *quoteHub) Unsubscribe(s *subscriber) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.subs[s]; ok {
		delete(h.subs, s)
		close(s.ch)
	}
}

// Close wakes nothing further: waiters' channels stay empty (their contexts
// will expire), subscribers' channels close so SSE handlers return.
func (h *quoteHub) Close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for s := range h.subs {
		delete(h.subs, s)
		close(s.ch)
	}
	h.waiters = make(map[int][]chan engine.Decision)
}

// Dropped reports frames lost to slow broadcast subscribers.
func (h *quoteHub) Dropped() int64 { return h.dropped.Load() }

// Published reports total decisions seen.
func (h *quoteHub) Published() int64 { return h.published.Load() }
