package server

// The binary ingest fast path: POST /v1/{tenant}/ingest with Content-Type
// application/x-spatialcrowd-frame carries length-prefixed, CRC-checked
// batch frames (internal/wire) instead of NDJSON. Each frame's events are
// decoded into pooled per-connection buffers — zero per-event allocations in
// steady state — and handed to the engine as ONE batch submission, so the
// per-event JSON-codec and channel-handoff costs that cap NDJSON ingest
// collapse into per-batch costs.
//
// The backpressure contract is unchanged: the response's Accepted count is
// the number of events durably handed to the engine (fsynced first on
// WAL-backed tenants), so a 429 client resumes by slicing its batch payload
// at the accepted prefix's byte offset and re-framing the tail — events are
// self-delimiting, no re-encode needed.

import (
	"fmt"
	"io"
	"mime"
	"net/http"
	"time"

	"spatialcrowd/internal/engine"
	"spatialcrowd/internal/wire"
)

// Codec indices for per-codec tenant counters and content negotiation.
const (
	codecJSON = iota
	codecBinary
	numCodecs
)

// codecName labels a codec index in metrics and TenantConfig.Codec values.
func codecName(c int) string {
	if c == codecBinary {
		return "binary"
	}
	return "json"
}

// negotiateCodec resolves a request's wire codec from its Content-Type: JSON
// media types (or none) select the JSON codec, wire.ContentType the binary
// frame codec, and anything else is an error the handlers answer with 415.
func negotiateCodec(r *http.Request) (int, error) {
	ct := r.Header.Get("Content-Type")
	if ct == "" {
		return codecJSON, nil
	}
	mt, _, err := mime.ParseMediaType(ct)
	if err != nil {
		return 0, fmt.Errorf("unparseable Content-Type %q", ct)
	}
	switch mt {
	case "application/json", "application/x-ndjson":
		return codecJSON, nil
	case wire.ContentType:
		return codecBinary, nil
	}
	return 0, fmt.Errorf("unsupported Content-Type %q (want application/json, application/x-ndjson, or %s)", mt, wire.ContentType)
}

// checkCodec negotiates the request codec and enforces the tenant's Codec
// restriction, answering 415 itself on refusal.
func (s *Server) checkCodec(w http.ResponseWriter, r *http.Request, t *Tenant) (int, bool) {
	codec, err := negotiateCodec(r)
	if err != nil {
		writeJSON(w, http.StatusUnsupportedMediaType, IngestResult{Error: err.Error()})
		return 0, false
	}
	if !t.allowsCodec(codec) {
		writeJSON(w, http.StatusUnsupportedMediaType, IngestResult{
			Error: fmt.Sprintf("tenant %q accepts only the %s codec", t.name, t.codec)})
		return 0, false
	}
	return codec, true
}

// countingReader counts the bytes a decoder consumed from the request body:
// the per-codec wire-traffic gauge behind codec_ingested_bytes_total.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// binIngest is the pooled per-request state of the binary path: the frame
// reader's payload buffer plus the decoded engine event slice, both reused
// across requests so steady-state ingest allocates nothing per event.
type binIngest struct {
	fr   *wire.FrameReader
	eevs []engine.Event
}

func (s *Server) getBinIngest(body io.Reader) *binIngest {
	if st, ok := s.binPool.Get().(*binIngest); ok {
		st.fr.Reset(body)
		return st
	}
	return &binIngest{fr: wire.NewFrameReader(body, 0)}
}

func (s *Server) putBinIngest(st *binIngest) {
	st.fr.Reset(nil)
	st.eevs = st.eevs[:0]
	s.binPool.Put(st)
}

// submitBatchAdmitted runs one decoded batch through the tenant's admission
// control with the configured busy grace: a partially accepted batch gets a
// few short waits (resuming at the accepted offset; nothing is buffered
// while waiting) before ErrBusy sticks. Returns the total accepted prefix.
func (s *Server) submitBatchAdmitted(t *Tenant, evs []engine.Event) (int, error) {
	accepted, err := t.submitBatch(evs)
	if err != engine.ErrBusy || s.busyGrace <= 0 {
		return accepted, err
	}
	const step = 100 * time.Microsecond
	for waited := time.Duration(0); waited < s.busyGrace; waited += step {
		time.Sleep(step)
		n, err := t.submitBatch(evs[accepted:])
		accepted += n
		if err != engine.ErrBusy {
			return accepted, err
		}
	}
	return accepted, engine.ErrBusy
}

// validateBinaryEvents applies the same semantic checks the JSON decoder
// enforces (WireEvent.Event), so the two codecs admit exactly the same event
// space: a malformed event rejects identically whichever wire form carried
// it.
func validateBinaryEvents(evs []engine.Event, base int) error {
	for i, ev := range evs {
		switch ev.Kind {
		case engine.KindTaskArrival:
			if ev.Task.Distance < 0 {
				return fmt.Errorf("event %d: task %d has negative distance %v", base+i+1, ev.Task.ID, ev.Task.Distance)
			}
		case engine.KindWorkerOnline:
			if ev.Worker.Radius <= 0 {
				return fmt.Errorf("event %d: worker %d has non-positive radius %v", base+i+1, ev.Worker.ID, ev.Worker.Radius)
			}
		}
	}
	return nil
}

// handleIngestBinary ingests a stream of binary batch frames, stopping at
// the first refusal; the Accepted count resumes a 429 client exactly as on
// the NDJSON path, at event (not frame) granularity.
func (s *Server) handleIngestBinary(w http.ResponseWriter, t *Tenant, body io.Reader) {
	st := s.getBinIngest(body)
	defer s.putBinIngest(st)
	accepted := 0
	defer func() { t.noteCodecTraffic(codecBinary, accepted, st.fr.PayloadBytes()) }()
	for {
		typ, payload, err := st.fr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			s.finishIngest(w, t, http.StatusBadRequest,
				IngestResult{Accepted: accepted, Error: err.Error()})
			return
		}
		if typ != wire.FrameBatch {
			s.finishIngest(w, t, http.StatusBadRequest,
				IngestResult{Accepted: accepted, Error: fmt.Sprintf("frame %d: unsupported frame type %d", st.fr.Frames()-1, typ)})
			return
		}
		if st.eevs, err = engine.DecodeWireEvents(payload, st.eevs[:0]); err != nil {
			s.finishIngest(w, t, http.StatusBadRequest,
				IngestResult{Accepted: accepted, Error: err.Error()})
			return
		}
		if err := validateBinaryEvents(st.eevs, accepted); err != nil {
			s.finishIngest(w, t, http.StatusBadRequest,
				IngestResult{Accepted: accepted, Error: err.Error()})
			return
		}
		n, err := s.submitBatchAdmitted(t, st.eevs)
		accepted += n
		switch err {
		case nil:
		case engine.ErrBusy:
			s.writeBusy(w, t, IngestResult{Accepted: accepted})
			return
		case errDraining, engine.ErrClosed:
			s.finishIngest(w, t, http.StatusServiceUnavailable,
				IngestResult{Accepted: accepted, Error: "draining"})
			return
		default:
			s.finishIngest(w, t, http.StatusBadRequest,
				IngestResult{Accepted: accepted, Error: err.Error()})
			return
		}
	}
	s.finishIngest(w, t, http.StatusOK, IngestResult{Accepted: accepted})
}
