package server_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"spatialcrowd/internal/core"
	"spatialcrowd/internal/engine"
	"spatialcrowd/internal/market"
	"spatialcrowd/internal/server"
	"spatialcrowd/internal/server/loadgen"
	"spatialcrowd/internal/workload"
)

// flatStrategy prices every task at a fixed unit price: deterministic
// revenue with no calibration, ideal for wire-level equivalence tests.
type flatStrategy struct{ price float64 }

func (f *flatStrategy) Name() string { return "flat" }
func (f *flatStrategy) Prices(ctx *core.PeriodContext) []float64 {
	ps := make([]float64, len(ctx.Tasks))
	for i := range ps {
		ps[i] = f.price
	}
	return ps
}
func (f *flatStrategy) Observe(*core.PeriodContext, []float64, []bool) {}

// gateStrategy blocks its first Prices call until the gate channel closes —
// the lever that saturates a shard for the backpressure test.
type gateStrategy struct {
	flatStrategy
	gate <-chan struct{}
	once sync.Once
}

func (g *gateStrategy) Prices(ctx *core.PeriodContext) []float64 {
	g.once.Do(func() { <-g.gate })
	return g.flatStrategy.Prices(ctx)
}

func testInstance(t *testing.T, requests, workers, periods int) *market.Instance {
	t.Helper()
	in, _, err := workload.Synthetic(workload.SyntheticConfig{
		Workers: workers, Requests: requests, Periods: periods,
		GridSide: 5, Seed: 7,
	})
	if err != nil {
		t.Fatalf("synthetic workload: %v", err)
	}
	return in
}

func flatEngineConfig(in *market.Instance, shards int) engine.Config {
	return engine.Config{
		Grid:        in.Grid,
		Shards:      shards,
		AutoDecide:  true,
		NewStrategy: func(int) core.Strategy { return &flatStrategy{price: 1.5} },
	}
}

// inProcessStats replays the instance through a fresh engine of the given
// config and returns the final statistics.
func inProcessStats(t *testing.T, cfg engine.Config, in *market.Instance, opts engine.ReplayOpts) engine.Stats {
	t.Helper()
	cfg.OnDecision = func(engine.Decision) {}
	eng, err := engine.New(cfg)
	if err != nil {
		t.Fatalf("engine.New: %v", err)
	}
	if _, err := engine.ReplayWith(eng, in, opts); err != nil {
		t.Fatalf("ReplayWith: %v", err)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return eng.Stats()
}

// TestLoopbackRevenueMatchesInProcess is the end-to-end acceptance test:
// the same synthetic trace ingested over real HTTP (load generator,
// chunked NDJSON) must produce exactly the revenue of an in-process replay
// through an identically configured engine — in deterministic mode and in
// sharded mode.
func TestLoopbackRevenueMatchesInProcess(t *testing.T) {
	in := testInstance(t, 4000, 1200, 120)
	for _, tc := range []struct {
		name   string
		shards int
	}{
		{"deterministic", 0},
		{"sharded4", 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want := inProcessStats(t, flatEngineConfig(in, tc.shards), in, engine.ReplayOpts{})
			if want.Revenue <= 0 {
				t.Fatalf("reference revenue %v, want > 0 (degenerate workload)", want.Revenue)
			}

			srv, err := server.New(server.Config{Tenants: []server.TenantConfig{{
				Name: "e2e", Engine: flatEngineConfig(in, tc.shards),
			}}})
			if err != nil {
				t.Fatalf("server.New: %v", err)
			}
			hs := httptest.NewServer(srv)
			defer hs.Close()

			rep, err := loadgen.Run(loadgen.Config{
				BaseURL: hs.URL, Tenant: "e2e", ChunkEvents: 700,
			}, in)
			if err != nil {
				t.Fatalf("loadgen: %v", err)
			}
			if err := srv.Drain(); err != nil {
				t.Fatalf("drain: %v", err)
			}

			tn, _ := srv.Tenant("e2e")
			got := tn.Engine().Stats()
			if got.Revenue != want.Revenue {
				t.Errorf("HTTP revenue %.9f != in-process %.9f", got.Revenue, want.Revenue)
			}
			if got.Served != want.Served || got.Accepted != want.Accepted {
				t.Errorf("served/accepted %d/%d != %d/%d", got.Served, got.Accepted, want.Served, want.Accepted)
			}
			if int64(rep.Events) != got.Events {
				t.Errorf("loadgen reported %d accepted events, engine counted %d", rep.Events, got.Events)
			}
			if tn.Ingested() != got.Events {
				t.Errorf("tenant ingested %d != engine events %d", tn.Ingested(), got.Events)
			}
		})
	}
}

// TestDrainCheckpointRestore is the SIGTERM seam: ingest half the trace,
// drain (which checkpoints atomically), restore a new tenant from the
// checkpoint file, ingest the remainder, and require the stitched run's
// revenue to equal the uninterrupted run's exactly.
func TestDrainCheckpointRestore(t *testing.T) {
	in := testInstance(t, 3000, 900, 100)
	cut := in.Periods / 2
	want := inProcessStats(t, flatEngineConfig(in, 0), in, engine.ReplayOpts{})

	ckpt := filepath.Join(t.TempDir(), "city.ckpt")
	srv1, err := server.New(server.Config{Tenants: []server.TenantConfig{{
		Name: "city", Engine: flatEngineConfig(in, 0), CheckpointPath: ckpt,
	}}})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	hs1 := httptest.NewServer(srv1)
	defer hs1.Close()
	if _, err := loadgen.Run(loadgen.Config{
		BaseURL: hs1.URL, Tenant: "city", ChunkEvents: 500,
		Opts: engine.ReplayOpts{Until: cut},
	}, in); err != nil {
		t.Fatalf("loadgen first half: %v", err)
	}
	if err := srv1.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// The drained server refuses work instead of silently dropping it.
	resp, res := postIngest(t, hs1.URL, "city", ndjson(t, engine.Tick(cut)))
	if resp.StatusCode == http.StatusOK && res.Accepted > 0 {
		t.Fatalf("drained server accepted an event: status %d, accepted %d", resp.StatusCode, res.Accepted)
	}
	if hresp, err := http.Get(hs1.URL + "/healthz"); err == nil {
		io.Copy(io.Discard, hresp.Body)
		hresp.Body.Close()
		if hresp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("drained /healthz status %d, want 503", hresp.StatusCode)
		}
	}

	srv2, err := server.New(server.Config{Tenants: []server.TenantConfig{{
		Name: "city", Engine: flatEngineConfig(in, 0), RestoreFrom: ckpt,
	}}})
	if err != nil {
		t.Fatalf("server.New (restore): %v", err)
	}
	hs2 := httptest.NewServer(srv2)
	defer hs2.Close()

	tn, _ := srv2.Tenant("city")
	resumeFrom := tn.Engine().RestoredPeriod() + 1
	if resumeFrom != cut {
		t.Fatalf("RestoredPeriod()+1 = %d, want %d", resumeFrom, cut)
	}
	if _, err := loadgen.Run(loadgen.Config{
		BaseURL: hs2.URL, Tenant: "city", ChunkEvents: 500,
		Opts: engine.ReplayOpts{From: resumeFrom},
	}, in); err != nil {
		t.Fatalf("loadgen second half: %v", err)
	}
	if err := srv2.Drain(); err != nil {
		t.Fatalf("drain 2: %v", err)
	}
	got := tn.Engine().Stats()
	if got.Revenue != want.Revenue {
		t.Errorf("stitched revenue %.9f != uninterrupted %.9f", got.Revenue, want.Revenue)
	}
	if got.Served != want.Served {
		t.Errorf("stitched served %d != uninterrupted %d", got.Served, want.Served)
	}
}

// ndjson renders wire events as an NDJSON body.
func ndjson(t *testing.T, evs ...engine.Event) string {
	t.Helper()
	var b strings.Builder
	enc := json.NewEncoder(&b)
	for _, ev := range evs {
		we, err := server.FromEvent(ev)
		if err != nil {
			t.Fatalf("FromEvent: %v", err)
		}
		if err := enc.Encode(we); err != nil {
			t.Fatalf("encode: %v", err)
		}
	}
	return b.String()
}

// ingestAll pushes events until the server has accepted every one,
// resuming after the accepted prefix on each 429 — the client half of the
// lossless backpressure protocol, inlined for tests that bypass loadgen.
func ingestAll(t *testing.T, url, tenant string, evs []engine.Event) {
	t.Helper()
	sent := 0
	deadline := time.Now().Add(10 * time.Second)
	for sent < len(evs) {
		if time.Now().After(deadline) {
			t.Fatalf("ingest did not complete: %d/%d", sent, len(evs))
		}
		resp, res := postIngest(t, url, tenant, ndjson(t, evs[sent:]...))
		sent += res.Accepted
		switch resp.StatusCode {
		case http.StatusOK:
		case http.StatusTooManyRequests:
			time.Sleep(2 * time.Millisecond)
		default:
			t.Fatalf("ingest: status %d (%s)", resp.StatusCode, res.Error)
		}
	}
}

func postIngest(t *testing.T, url, tenant, body string) (*http.Response, server.IngestResult) {
	t.Helper()
	resp, err := http.Post(url+"/v1/"+tenant+"/ingest", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST ingest: %v", err)
	}
	defer resp.Body.Close()
	var res server.IngestResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatalf("decoding ingest result (status %d): %v", resp.StatusCode, err)
	}
	return resp, res
}

// TestBackpressure429NoLoss saturates a single-shard engine (its strategy
// blocked mid-batch, tiny channel buffers) and asserts: the server answers
// 429 with Retry-After instead of buffering, queue depths stay within the
// configured bound, and after the shard unblocks a client following the
// accepted-count resume protocol loses no events.
func TestBackpressure429NoLoss(t *testing.T) {
	in := testInstance(t, 200, 40, 2) // geometry donor for valid task coordinates
	gate := make(chan struct{})
	const buffer = 8
	srv, err := server.New(server.Config{
		BusyGrace: -1, // answer 429 immediately once the queue is full
		Tenants: []server.TenantConfig{{
			Name: "jam",
			Engine: engine.Config{
				Grid:        in.Grid,
				Shards:      1,
				Buffer:      buffer,
				AutoDecide:  true, // the gated Prices call happens at window close
				NewStrategy: func(int) core.Strategy { return &gateStrategy{flatStrategy: flatStrategy{price: 1}, gate: gate} },
			},
		}},
	})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()

	tasks := in.TasksByPeriod()
	if len(tasks[0]) < 10 {
		t.Fatalf("want >= 10 tasks in period 0, have %d", len(tasks[0]))
	}
	// Phase 1: one window of tasks, then the closing tick — the gated
	// strategy blocks the shard inside that batch close. With an 8-slot
	// buffer even this trickle can outrun the router momentarily, so the
	// head already follows the accepted-count resume protocol.
	head := []engine.Event{engine.Tick(0)}
	for _, task := range tasks[0][:10] {
		head = append(head, engine.TaskArrival(task))
	}
	head = append(head, engine.Tick(1))
	ingestAll(t, hs.URL, "jam", head)

	// Phase 2: push far more events than the bounded queues can hold
	// (router cap + shard cap + in-flight ≈ 2*buffer+2). Fabricated
	// period-1 tasks keep the stream well-formed; the final tick closes
	// their window once the jam clears.
	donor := tasks[0][0]
	var tail []engine.Event
	for i := 0; i < 5*buffer; i++ {
		task := donor
		task.ID = 100000 + i
		task.Period = 1
		tail = append(tail, engine.TaskArrival(task))
	}
	tail = append(tail, engine.Tick(2))
	body := ndjson(t, tail...)
	resp, res := postIngest(t, hs.URL, "jam", body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated ingest: status %d (accepted %d of %d), want 429", resp.StatusCode, res.Accepted, len(tail))
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Errorf("429 without Retry-After header")
	}
	if res.RetryAfterMS <= 0 {
		t.Errorf("429 body carries no retry_after_ms hint: %+v", res)
	}
	if res.Accepted >= len(tail) {
		t.Fatalf("server claims to have accepted the whole saturated stream (%d)", res.Accepted)
	}
	tn, _ := srv.Tenant("jam")
	if tn.Rejected() == 0 {
		t.Errorf("rejected counter not bumped")
	}
	qd := tn.Engine().QueueDepths()
	if qd.Capacity != buffer {
		t.Errorf("queue capacity %d, want %d", qd.Capacity, buffer)
	}
	if qd.Router > qd.Capacity || qd.MaxShard > qd.Capacity {
		t.Errorf("queue depth exceeded bound: router %d, maxShard %d, cap %d", qd.Router, qd.MaxShard, qd.Capacity)
	}

	// Phase 3: unblock the shard and resume from the accepted prefix —
	// the lossless-retry protocol the load generator implements.
	close(gate)
	ingestAll(t, hs.URL, "jam", tail[res.Accepted:])
	if err := srv.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	st := tn.Engine().Stats()
	wantEvents := int64(len(head) + len(tail))
	if st.Events != wantEvents {
		t.Errorf("engine saw %d events, want %d (zero loss after retry)", st.Events, wantEvents)
	}
	wantPriced := int64(10 + 5*buffer) // both windows' tasks
	if st.TasksPriced != wantPriced {
		t.Errorf("priced %d tasks, want %d", st.TasksPriced, wantPriced)
	}
}

// TestConcurrentTenants hammers two isolated tenants from parallel load
// generators while scraping /metrics, /stats and /healthz — the
// race-detector coverage for the registry, hub, and admission path. The
// tenants run the same trace through identical engines, so isolation
// means identical outcomes.
func TestConcurrentTenants(t *testing.T) {
	in := testInstance(t, 1500, 500, 60)
	srv, err := server.New(server.Config{Tenants: []server.TenantConfig{
		{Name: "north", Engine: flatEngineConfig(in, 2)},
		{Name: "south", Engine: flatEngineConfig(in, 2)},
	}})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()

	var ingesters sync.WaitGroup
	errCh := make(chan error, 2)
	for _, tenant := range []string{"north", "south"} {
		ingesters.Add(1)
		go func(tenant string) {
			defer ingesters.Done()
			if _, err := loadgen.Run(loadgen.Config{
				BaseURL: hs.URL, Tenant: tenant, ChunkEvents: 300,
			}, in); err != nil {
				errCh <- fmt.Errorf("%s: %w", tenant, err)
			}
		}(tenant)
	}

	stop := make(chan struct{})
	var scraper sync.WaitGroup
	scraper.Add(1)
	go func() {
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, path := range []string{"/metrics", "/v1/north/stats", "/healthz"} {
				resp, err := http.Get(hs.URL + path)
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	ingesters.Wait()
	close(stop)
	scraper.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	if err := srv.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	n, _ := srv.Tenant("north")
	s, _ := srv.Tenant("south")
	ns, ss := n.Engine().Stats(), s.Engine().Stats()
	if ns.Revenue <= 0 || ss.Revenue <= 0 {
		t.Errorf("revenue north %.2f south %.2f, want both > 0", ns.Revenue, ss.Revenue)
	}
	if ns.Revenue != ss.Revenue || ns.Served != ss.Served {
		t.Errorf("tenant isolation broken: north %.9f/%d != south %.9f/%d",
			ns.Revenue, ns.Served, ss.Revenue, ss.Served)
	}
}

// TestQuoteDelivery covers quoted (non-AutoDecide) mode over the network:
// the long-poll endpoint returns the quote for a posted task, the decision
// reply flows back in, and the SSE stream carries both the quote frame and
// the final served frame.
func TestQuoteDelivery(t *testing.T) {
	in := testInstance(t, 50, 20, 2)
	srv, err := server.New(server.Config{Tenants: []server.TenantConfig{{
		Name: "q",
		Engine: engine.Config{
			Grid: in.Grid, Shards: 0, AutoDecide: false,
			NewStrategy: func(int) core.Strategy { return &flatStrategy{price: 2} },
		},
	}}})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()

	// SSE subscriber first, so it observes everything published after it.
	sseResp, err := http.Get(hs.URL + "/v1/q/quotes/stream")
	if err != nil {
		t.Fatalf("GET quotes/stream: %v", err)
	}
	defer sseResp.Body.Close()
	if ct := sseResp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Fatalf("SSE content type %q", ct)
	}
	frames := make(chan server.WireDecision, 64)
	go func() {
		defer close(frames)
		sc := bufio.NewScanner(sseResp.Body)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var d server.WireDecision
			if json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &d) == nil {
				frames <- d
			}
		}
	}()

	task := in.Tasks[0]
	task.ID = 9001
	task.Period = 0
	worker := in.Workers[0]
	worker.Loc = task.Origin // guarantee an edge
	worker.Radius = 10
	worker.Period = 0
	worker.Duration = 100
	evs := []engine.Event{engine.Tick(0), engine.WorkerOnline(worker), engine.TaskArrival(task), engine.Tick(1)}
	if resp, res := postIngest(t, hs.URL, "q", ndjson(t, evs...)); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: status %d (%s)", resp.StatusCode, res.Error)
	}

	// Long-poll the quote.
	qresp, err := http.Get(hs.URL + "/v1/q/quotes/9001?timeout_ms=5000")
	if err != nil {
		t.Fatalf("GET quote: %v", err)
	}
	if qresp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, qresp.Body)
		qresp.Body.Close()
		t.Fatalf("quote status %d, want 200", qresp.StatusCode)
	}
	var quote server.WireDecision
	if err := json.NewDecoder(qresp.Body).Decode(&quote); err != nil {
		t.Fatalf("decoding quote: %v", err)
	}
	qresp.Body.Close()
	if !quote.Quoted || quote.TaskID != 9001 || quote.Price != 2 {
		t.Fatalf("unexpected quote %+v", quote)
	}

	// Accept it; the assignment decision must arrive on the stream.
	accept := ndjson(t, engine.AcceptDecision(9001, true), engine.Tick(2))
	if resp, res := postIngest(t, hs.URL, "q", accept); resp.StatusCode != http.StatusOK {
		t.Fatalf("accept ingest: status %d (%s)", resp.StatusCode, res.Error)
	}

	sawQuote, sawServed := false, false
	deadline := time.After(10 * time.Second)
	for !(sawQuote && sawServed) {
		select {
		case d, ok := <-frames:
			if !ok {
				t.Fatalf("SSE stream closed early (quote %v, served %v)", sawQuote, sawServed)
			}
			if d.TaskID == 9001 && d.Quoted && !d.Served {
				sawQuote = true
			}
			if d.TaskID == 9001 && d.Served {
				sawServed = true
			}
		case <-deadline:
			t.Fatalf("timed out waiting for SSE frames (quote %v, served %v)", sawQuote, sawServed)
		}
	}

	// A quote for an unknown task times out with 204.
	nresp, err := http.Get(hs.URL + "/v1/q/quotes/777777?timeout_ms=50")
	if err != nil {
		t.Fatalf("GET unknown quote: %v", err)
	}
	io.Copy(io.Discard, nresp.Body)
	nresp.Body.Close()
	if nresp.StatusCode != http.StatusNoContent {
		t.Errorf("unknown-task long-poll status %d, want 204", nresp.StatusCode)
	}

	if err := srv.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestStatsEndpoint checks /stats rides the stable engine.Stats JSON
// encoding and round-trips through UnmarshalJSON.
func TestStatsEndpoint(t *testing.T) {
	in := testInstance(t, 500, 200, 30)
	srv, err := server.New(server.Config{Tenants: []server.TenantConfig{{
		Name: "s", Engine: flatEngineConfig(in, 0),
	}}})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()
	if _, err := loadgen.Run(loadgen.Config{BaseURL: hs.URL, Tenant: "s", ChunkEvents: 400}, in); err != nil {
		t.Fatalf("loadgen: %v", err)
	}
	resp, err := http.Get(hs.URL + "/v1/s/stats")
	if err != nil {
		t.Fatalf("GET stats: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var st engine.Stats
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("stats did not round-trip through engine.Stats: %v\n%s", err, raw)
	}
	if st.Revenue <= 0 || st.Events == 0 {
		t.Errorf("stats look empty: %+v", st)
	}
	var loose map[string]any
	if err := json.Unmarshal(raw, &loose); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"revenue", "events", "tasks_priced", "p50_latency_ns", "p99_latency", "lifecycle", "shard_revenue"} {
		if _, ok := loose[key]; !ok {
			t.Errorf("stats JSON missing key %q", key)
		}
	}
	if err := srv.Drain(); err != nil {
		t.Fatal(err)
	}
}

// TestWireRoundTrip pins the JSON codec: every public event kind survives
// FromEvent -> JSON -> Event unchanged, and malformed payloads are
// rejected rather than decoded as zero values.
func TestWireRoundTrip(t *testing.T) {
	in := testInstance(t, 10, 5, 2)
	events := []engine.Event{
		engine.TaskArrival(in.Tasks[0]),
		engine.WorkerOnline(in.Workers[0]),
		engine.WorkerOffline(42),
		engine.WorkerMove(7, in.Tasks[1].Origin),
		engine.AcceptDecision(13, true),
		engine.Tick(5),
	}
	for _, ev := range events {
		we, err := server.FromEvent(ev)
		if err != nil {
			t.Fatalf("FromEvent(%v): %v", ev.Kind, err)
		}
		raw, err := json.Marshal(we)
		if err != nil {
			t.Fatal(err)
		}
		var back server.WireEvent
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatal(err)
		}
		got, err := back.Event()
		if err != nil {
			t.Fatalf("Event() for %s: %v", raw, err)
		}
		if got.Kind != ev.Kind || got.Task != ev.Task || got.Worker != ev.Worker ||
			got.WorkerID != ev.WorkerID || got.Loc != ev.Loc ||
			got.TaskID != ev.TaskID || got.Accept != ev.Accept || got.Period != ev.Period {
			t.Errorf("round trip mismatch:\n in: %+v\nout: %+v", ev, got)
		}
	}
	for _, bad := range []string{
		`{"type":"task"}`,
		`{"type":"worker_online"}`,
		`{"type":"worker_move","worker_id":1}`,
		`{"type":"nonsense"}`,
		`{"type":"worker_online","worker":{"id":1,"loc":{"x":0,"y":0},"radius":0}}`,
		`{"type":"task","task":{"id":1,"period":0,"origin":{"x":0,"y":0},"distance":-2}}`,
	} {
		var we server.WireEvent
		if err := json.Unmarshal([]byte(bad), &we); err != nil {
			t.Fatalf("unmarshal %s: %v", bad, err)
		}
		if _, err := we.Event(); err == nil {
			t.Errorf("Event() accepted malformed %s", bad)
		}
	}
}
