package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"spatialcrowd/internal/engine"
	"spatialcrowd/internal/market"
	"spatialcrowd/internal/server"
	"spatialcrowd/internal/server/loadgen"
	"spatialcrowd/internal/wire"
	"spatialcrowd/internal/workload"
)

// streamEvents flattens the instance's canonical replay stream.
func streamEvents(t testing.TB, in *market.Instance, opts engine.ReplayOpts) []engine.Event {
	t.Helper()
	var evs []engine.Event
	if err := engine.StreamEvents(in, 1, opts, func(ev engine.Event) error {
		evs = append(evs, ev)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return evs
}

// binaryBody encodes evs as a stream of batch frames, perFrame events each.
func binaryBody(t testing.TB, evs []engine.Event, perFrame int) []byte {
	t.Helper()
	var body []byte
	for off := 0; off < len(evs); off += perFrame {
		end := off + perFrame
		if end > len(evs) {
			end = len(evs)
		}
		wevs := make([]wire.Event, 0, end-off)
		for _, ev := range evs[off:end] {
			wevs = append(wevs, ev.Wire())
		}
		var err error
		if body, err = wire.AppendBatchFrame(body, wevs); err != nil {
			t.Fatal(err)
		}
	}
	return body
}

func postBinary(t testing.TB, url, tenant string, body []byte) (*http.Response, server.IngestResult) {
	t.Helper()
	resp, err := http.Post(url+"/v1/"+tenant+"/ingest", wire.ContentType, bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST binary ingest: %v", err)
	}
	defer resp.Body.Close()
	var res server.IngestResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatalf("decoding ingest result (status %d): %v", resp.StatusCode, err)
	}
	return resp, res
}

// ingestAllBinary pushes the events as binary frames until all are accepted,
// re-framing from the accepted event offset on each 429 — the binary half of
// the lossless resume protocol.
func ingestAllBinary(t *testing.T, url, tenant string, evs []engine.Event, perFrame int) {
	t.Helper()
	sent := 0
	deadline := time.Now().Add(10 * time.Second)
	for sent < len(evs) {
		if time.Now().After(deadline) {
			t.Fatalf("binary ingest did not complete: %d/%d", sent, len(evs))
		}
		resp, res := postBinary(t, url, tenant, binaryBody(t, evs[sent:], perFrame))
		sent += res.Accepted
		switch resp.StatusCode {
		case http.StatusOK:
		case http.StatusTooManyRequests:
			time.Sleep(2 * time.Millisecond)
		default:
			t.Fatalf("binary ingest: status %d (%s)", resp.StatusCode, res.Error)
		}
	}
}

// TestBinaryIngestRevenueMatchesJSON is the codec-equivalence acceptance
// test: the same trace ingested as binary frames and as NDJSON into two
// identically configured tenants produces exactly the revenue of an
// in-process replay — deterministic and sharded.
func TestBinaryIngestRevenueMatchesJSON(t *testing.T) {
	in := testInstance(t, 4000, 1200, 120)
	evs := streamEvents(t, in, engine.ReplayOpts{})
	for _, tc := range []struct {
		name   string
		shards int
	}{
		{"deterministic", 0},
		{"sharded4", 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want := inProcessStats(t, flatEngineConfig(in, tc.shards), in, engine.ReplayOpts{})
			srv, err := server.New(server.Config{Tenants: []server.TenantConfig{
				{Name: "json", Engine: flatEngineConfig(in, tc.shards), Codec: "json"},
				{Name: "bin", Engine: flatEngineConfig(in, tc.shards), Codec: "binary"},
			}})
			if err != nil {
				t.Fatalf("server.New: %v", err)
			}
			hs := httptest.NewServer(srv)
			defer hs.Close()

			ingestAll(t, hs.URL, "json", evs)
			ingestAllBinary(t, hs.URL, "bin", evs, 512)
			if err := srv.Drain(); err != nil {
				t.Fatalf("Drain: %v", err)
			}
			for _, name := range []string{"json", "bin"} {
				tn, _ := srv.Tenant(name)
				got := tn.Engine().Stats()
				if got.Revenue != want.Revenue || got.Served != want.Served || got.Events != want.Events {
					t.Errorf("tenant %s diverged from in-process: rev %v/%v served %d/%d events %d/%d",
						name, got.Revenue, want.Revenue, got.Served, want.Served, got.Events, want.Events)
				}
			}
		})
	}
}

// TestLoadgenBinaryCodec drives the load generator in binary mode through a
// deliberately tiny engine buffer with busy grace disabled, so chunks are
// routinely part-accepted and the generator's byte-offset re-framing resume
// is exercised for real — and the revenue must still match the in-process
// replay exactly, with zero loss and zero duplication.
func TestLoadgenBinaryCodec(t *testing.T) {
	in := testInstance(t, 3000, 900, 100)
	cfg := flatEngineConfig(in, 4)
	cfg.Buffer = 16
	want := inProcessStats(t, cfg, in, engine.ReplayOpts{})

	srv, err := server.New(server.Config{
		BusyGrace: -1,
		Tenants:   []server.TenantConfig{{Name: "lg", Engine: cfg, Codec: "binary"}},
	})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()

	rep, err := loadgen.Run(loadgen.Config{
		BaseURL: hs.URL, Tenant: "lg", Codec: "binary", ChunkEvents: 250,
	}, in)
	if err != nil {
		t.Fatalf("loadgen binary: %v", err)
	}
	if err := srv.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	tn, _ := srv.Tenant("lg")
	got := tn.Engine().Stats()
	if got.Revenue != want.Revenue || got.Served != want.Served {
		t.Errorf("binary loadgen revenue %.9f/served %d != in-process %.9f/%d",
			got.Revenue, got.Served, want.Revenue, want.Served)
	}
	if int64(rep.Events) != got.Events {
		t.Errorf("loadgen reported %d accepted events, engine counted %d", rep.Events, got.Events)
	}
	if rep.Rejections == 0 {
		t.Logf("note: no 429s occurred (buffer kept up); resume path not stressed this run")
	}

	if _, err := loadgen.Run(loadgen.Config{BaseURL: hs.URL, Tenant: "lg", Codec: "morse"}, in); err == nil {
		t.Error("unknown codec accepted by loadgen")
	}
}

// TestUnsupportedMediaType pins the 415 taxonomy: unknown Content-Type on
// /events and /ingest, binary frames on the single-event endpoint, and a
// codec-restricted tenant refusing the other codec.
func TestUnsupportedMediaType(t *testing.T) {
	in := testInstance(t, 50, 20, 2)
	srv, err := server.New(server.Config{Tenants: []server.TenantConfig{
		{Name: "any", Engine: flatEngineConfig(in, 0)},
		{Name: "jsononly", Engine: flatEngineConfig(in, 0), Codec: "json"},
		{Name: "binonly", Engine: flatEngineConfig(in, 0), Codec: "binary"},
	}})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()
	defer srv.Drain()

	tick := ndjson(t, engine.Tick(0))
	frame := binaryBody(t, []engine.Event{engine.Tick(0)}, 16)

	post := func(path, tenant, ct string, body []byte) int {
		resp, err := http.Post(hs.URL+"/v1/"+tenant+path, ct, bytes.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	for _, tc := range []struct {
		name, path, tenant, ct string
		body                   []byte
		want                   int
	}{
		{"events-unknown-ct", "/events", "any", "text/csv", []byte(tick), http.StatusUnsupportedMediaType},
		{"ingest-unknown-ct", "/ingest", "any", "application/octet-stream", []byte(tick), http.StatusUnsupportedMediaType},
		{"events-binary-frame", "/events", "any", wire.ContentType, frame, http.StatusUnsupportedMediaType},
		{"json-tenant-refuses-binary", "/ingest", "jsononly", wire.ContentType, frame, http.StatusUnsupportedMediaType},
		{"binary-tenant-refuses-json", "/ingest", "binonly", "application/x-ndjson", []byte(tick), http.StatusUnsupportedMediaType},
		{"events-json-ok", "/events", "any", "application/json", []byte(tick), http.StatusAccepted},
		{"ingest-ndjson-ok", "/ingest", "any", "application/x-ndjson", []byte(tick), http.StatusOK},
		{"ingest-binary-ok", "/ingest", "any", wire.ContentType, frame, http.StatusOK},
	} {
		if got := post(tc.path, tc.tenant, tc.ct, tc.body); got != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestBinaryIngestRejectsCorruption: a flipped payload byte or a truncated
// stream is an explicit 400 rejection with an exact accepted count — never
// a silent drop, never a panic.
func TestBinaryIngestRejectsCorruption(t *testing.T) {
	in := testInstance(t, 50, 20, 2)
	evs := streamEvents(t, in, engine.ReplayOpts{})
	srv, err := server.New(server.Config{Tenants: []server.TenantConfig{
		{Name: "c", Engine: flatEngineConfig(in, 0)},
	}})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()
	defer srv.Drain()

	good := binaryBody(t, evs, 32)
	flipped := append([]byte(nil), good...)
	flipped[wire.HeaderLen+3] ^= 0x20 // inside the first frame's payload
	resp, res := postBinary(t, hs.URL, "c", flipped)
	if resp.StatusCode != http.StatusBadRequest || res.Accepted != 0 {
		t.Errorf("corrupt first frame: status %d accepted %d (%s), want 400 with 0 accepted",
			resp.StatusCode, res.Accepted, res.Error)
	}
	if res.Error == "" {
		t.Error("corrupt frame rejected without an error message")
	}

	truncated := good[:len(good)-5]
	resp, res = postBinary(t, hs.URL, "c", truncated)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("truncated stream: status %d, want 400", resp.StatusCode)
	}
	if res.Accepted == 0 && len(good) > wire.HeaderLen {
		t.Errorf("truncation at the tail should still accept the complete leading frames (accepted %d)", res.Accepted)
	}
}

// BenchmarkIngestLoopback measures end-to-end loopback ingest throughput
// per codec against a deterministic flat-strategy tenant: one POST of the
// full pre-encoded trace per iteration, a fresh tenant each time so state
// never accumulates. The stream is worker-heavy (a fleet onboarding feed:
// lifecycle events outnumber task arrivals 10:1), so the per-event engine
// work both codecs share stays small and the measurement lands on the wire
// path — codec, HTTP, and admission — which is what the two subbenchmarks
// differ in. The committed baseline pins binary ≥ 5x json events/s
// (compare the ns/op of the two subbenchmarks — both ingest the same event
// count).
func BenchmarkIngestLoopback(b *testing.B) {
	in, _, err := workload.Synthetic(workload.SyntheticConfig{
		Workers: 20000, Requests: 2000, Periods: 100, GridSide: 5, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	evs := streamEvents(b, in, engine.ReplayOpts{})

	var ndjsonBody []byte
	{
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		for _, ev := range evs {
			we, err := server.FromEvent(ev)
			if err != nil {
				b.Fatal(err)
			}
			if err := enc.Encode(we); err != nil {
				b.Fatal(err)
			}
		}
		ndjsonBody = buf.Bytes()
	}
	frameBody := binaryBody(b, evs, 1024)

	// The stream fully turns the worker pool over each period, so per-window
	// k-d rebuilds would dominate the engine floor both codecs share;
	// cell-index graphs (identical adjacency, no tree maintenance) keep the
	// measurement on the wire path instead.
	benchCfg := func() engine.Config {
		cfg := flatEngineConfig(in, 0)
		cfg.CellIndexGraphs = true
		return cfg
	}

	run := func(b *testing.B, ct string, body []byte) {
		srv, err := server.New(server.Config{Tenants: []server.TenantConfig{
			{Name: "warm", Engine: benchCfg()},
		}})
		if err != nil {
			b.Fatal(err)
		}
		hs := httptest.NewServer(srv)
		defer hs.Close()
		defer srv.Drain()
		client := hs.Client()

		post := func(tenant string) {
			resp, err := client.Post(hs.URL+"/v1/"+tenant+"/ingest", ct, bytes.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			var res server.IngestResult
			if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK || res.Accepted != len(evs) {
				b.Fatalf("ingest: status %d accepted %d/%d (%s)", resp.StatusCode, res.Accepted, len(evs), res.Error)
			}
		}
		post("warm") // connection + pool warmup outside the timer

		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			name := fmt.Sprintf("iter%d", i)
			if err := srv.AddTenant(server.TenantConfig{Name: name, Engine: benchCfg()}); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			post(name)
		}
		b.StopTimer()
		b.ReportMetric(float64(len(evs))*float64(b.N)/b.Elapsed().Seconds(), "events/s")
		b.ReportMetric(float64(len(evs)), "events/op")
	}

	b.Run("json", func(b *testing.B) {
		run(b, "application/x-ndjson", ndjsonBody)
	})
	b.Run("binary", func(b *testing.B) {
		run(b, wire.ContentType, frameBody)
	})
}
