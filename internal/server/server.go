// Package server is the network-facing dispatch service over the streaming
// engine: one HTTP listener hosting N isolated "city" tenants, each a
// private engine instance. It ingests market events as JSON (single-shot
// POSTs and NDJSON bulk streams), streams price quotes back to requesters
// (SSE broadcast and long-poll by task ID), enforces admission control
// against the engine's bounded ingest queues (429 + Retry-After — never
// unbounded buffering), exposes engine statistics as Prometheus text on
// /metrics and JSON on /stats, and drains gracefully: ingestion quiesces,
// every tenant writes an atomic checkpoint through the PR-5 seam, engines
// close.
//
// Endpoints (all tenant routes under /v1/{tenant}/):
//
//	POST /v1/{tenant}/events        one WireEvent            -> 202 IngestResult
//	POST /v1/{tenant}/ingest        NDJSON of WireEvents     -> 200/429 IngestResult
//	GET  /v1/{tenant}/quotes/{task} long-poll one decision   -> 200 WireDecision | 204
//	GET  /v1/{tenant}/quotes/stream SSE of every decision
//	GET  /v1/{tenant}/stats         engine.Stats JSON
//	GET  /metrics                   Prometheus text, all tenants
//	GET  /healthz                   200 while serving, 503 once draining
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"spatialcrowd/internal/engine"
)

// Config parameterizes a Server.
type Config struct {
	// Tenants are the cities to host. At least one; more can be added with
	// AddTenant before serving.
	Tenants []TenantConfig
	// RetryAfter is the advisory client backoff sent with 429 responses
	// (rounded up to whole seconds for the header; the JSON carries the
	// exact value). Default 50ms.
	RetryAfter time.Duration
	// BusyGrace is how long an ingest handler nudges a momentarily full
	// queue (short sleeps between TrySubmit attempts) before giving up with
	// 429. It bounds handler latency, not memory — nothing is buffered
	// while waiting. Default 2ms; negative disables the grace entirely.
	BusyGrace time.Duration
	// MaxBodyBytes caps a single request body. Default 64 MiB.
	MaxBodyBytes int64
}

// IngestResult is the JSON body of every ingest response. Accepted counts
// events durably handed to the engine in this request; a client that gets
// 429 resumes its stream after skipping that many events — the retry
// protocol that makes backpressure lossless end to end. For WAL-backed
// tenants the handlers fsync before answering, so Accepted events are
// crash-durable and DurableLSN is the log position that covers them.
type IngestResult struct {
	Accepted     int     `json:"accepted"`
	Error        string  `json:"error,omitempty"`
	RetryAfterMS float64 `json:"retry_after_ms,omitempty"`
	DurableLSN   uint64  `json:"durable_lsn,omitempty"`
}

// Server hosts the tenant registry and implements http.Handler.
type Server struct {
	mu      sync.RWMutex
	tenants map[string]*Tenant
	order   []string

	retryAfter time.Duration
	busyGrace  time.Duration
	maxBody    int64
	mux        *http.ServeMux
	draining   bool

	// binPool recycles the binary ingest path's per-request decode state
	// (frame buffer + event slices) across connections; see binary.go.
	binPool sync.Pool
}

// New builds a server and starts every configured tenant's engine.
func New(cfg Config) (*Server, error) {
	s := &Server{
		tenants:    make(map[string]*Tenant),
		retryAfter: cfg.RetryAfter,
		busyGrace:  cfg.BusyGrace,
		maxBody:    cfg.MaxBodyBytes,
	}
	if s.retryAfter <= 0 {
		s.retryAfter = 50 * time.Millisecond
	}
	if s.busyGrace == 0 {
		s.busyGrace = 2 * time.Millisecond
	}
	if s.maxBody <= 0 {
		s.maxBody = 64 << 20
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/{tenant}/events", s.handleEvent)
	mux.HandleFunc("POST /v1/{tenant}/ingest", s.handleIngest)
	mux.HandleFunc("GET /v1/{tenant}/quotes/stream", s.handleQuoteStream)
	mux.HandleFunc("GET /v1/{tenant}/quotes/{task}", s.handleQuote)
	mux.HandleFunc("GET /v1/{tenant}/stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux = mux
	for _, tc := range cfg.Tenants {
		if err := s.AddTenant(tc); err != nil {
			s.Drain()
			return nil, err
		}
	}
	return s, nil
}

// AddTenant registers one more city. Fails on duplicate or invalid names
// and after Drain.
func (s *Server) AddTenant(cfg TenantConfig) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return fmt.Errorf("server: draining, cannot add tenant %q", cfg.Name)
	}
	if _, dup := s.tenants[cfg.Name]; dup {
		return fmt.Errorf("server: duplicate tenant %q", cfg.Name)
	}
	t, err := newTenant(cfg)
	if err != nil {
		return err
	}
	s.tenants[cfg.Name] = t
	s.order = append(s.order, cfg.Name)
	return nil
}

// Tenant looks a city up by name.
func (s *Server) Tenant(name string) (*Tenant, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tenants[name]
	return t, ok
}

// TenantNames lists the cities in registration order.
func (s *Server) TenantNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]string(nil), s.order...)
}

// Drain quiesces the whole server: every tenant stops admitting events
// (503), writes its checkpoint if configured, and closes its engine. The
// HTTP listener itself is the caller's to shut down (http.Server.Shutdown)
// — typically after Drain returns so late scrapes of /metrics still see
// the final counters. Idempotent; returns the joined per-tenant errors.
func (s *Server) Drain() error {
	s.mu.Lock()
	s.draining = true
	ts := make([]*Tenant, 0, len(s.order))
	for _, name := range s.order {
		ts = append(ts, s.tenants[name])
	}
	s.mu.Unlock()
	var errs []error
	for _, t := range ts {
		if err := t.drain(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// tenantOf resolves the {tenant} path segment, answering 404 itself when
// unknown.
func (s *Server) tenantOf(w http.ResponseWriter, r *http.Request) (*Tenant, bool) {
	name := r.PathValue("tenant")
	t, ok := s.Tenant(name)
	if !ok {
		writeJSON(w, http.StatusNotFound, IngestResult{Error: fmt.Sprintf("unknown tenant %q", name)})
		return nil, false
	}
	return t, true
}

// submitAdmitted runs one event through the tenant's admission control,
// with the configured busy grace: a full queue gets a few short waits (the
// event is not buffered anywhere while waiting) before ErrBusy sticks.
func (s *Server) submitAdmitted(t *Tenant, ev engine.Event) error {
	err := t.submit(ev)
	if err != engine.ErrBusy || s.busyGrace <= 0 {
		return err
	}
	const step = 100 * time.Microsecond
	for waited := time.Duration(0); waited < s.busyGrace; waited += step {
		time.Sleep(step)
		if err = t.submit(ev); err != engine.ErrBusy {
			return err
		}
	}
	return engine.ErrBusy
}

// handleEvent ingests one JSON event. The endpoint is JSON-only — binary
// frames are batch-shaped and go to /ingest — so any other Content-Type
// (including the frame codec's) is 415.
func (s *Server) handleEvent(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenantOf(w, r)
	if !ok {
		return
	}
	codec, ok := s.checkCodec(w, r, t)
	if !ok {
		return
	}
	if codec != codecJSON {
		writeJSON(w, http.StatusUnsupportedMediaType,
			IngestResult{Error: "binary frames are accepted on /ingest only"})
		return
	}
	body := &countingReader{r: http.MaxBytesReader(w, r.Body, s.maxBody)}
	accepted := 0
	defer func() { t.noteCodecTraffic(codecJSON, accepted, body.n) }()
	var we WireEvent
	if err := json.NewDecoder(body).Decode(&we); err != nil {
		writeJSON(w, http.StatusBadRequest, IngestResult{Error: "decoding event: " + err.Error()})
		return
	}
	ev, err := we.Event()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, IngestResult{Error: err.Error()})
		return
	}
	switch err := s.submitAdmitted(t, ev); err {
	case nil:
		accepted = 1
		s.finishIngest(w, t, http.StatusAccepted, IngestResult{Accepted: 1})
	case engine.ErrBusy:
		s.writeBusy(w, t, IngestResult{})
	case errDraining, engine.ErrClosed:
		writeJSON(w, http.StatusServiceUnavailable, IngestResult{Error: "draining"})
	default:
		writeJSON(w, http.StatusBadRequest, IngestResult{Error: err.Error()})
	}
}

// handleIngest ingests a bulk event stream, stopping at the first refusal.
// Content-Type selects the codec: NDJSON (default) decodes WireEvents one
// at a time; wire.ContentType switches to the binary frame fast path
// (binary.go). Either way the response's Accepted count tells the client
// exactly how far the stream got, so a 429 retry resumes without loss or
// duplication.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenantOf(w, r)
	if !ok {
		return
	}
	codec, ok := s.checkCodec(w, r, t)
	if !ok {
		return
	}
	if codec == codecBinary {
		s.handleIngestBinary(w, t, http.MaxBytesReader(w, r.Body, s.maxBody))
		return
	}
	body := &countingReader{r: http.MaxBytesReader(w, r.Body, s.maxBody)}
	dec := json.NewDecoder(body)
	accepted := 0
	defer func() { t.noteCodecTraffic(codecJSON, accepted, body.n) }()
	for {
		var we WireEvent
		if err := dec.Decode(&we); err == io.EOF {
			break
		} else if err != nil {
			s.finishIngest(w, t, http.StatusBadRequest,
				IngestResult{Accepted: accepted, Error: fmt.Sprintf("event %d: %v", accepted+1, err)})
			return
		}
		ev, err := we.Event()
		if err != nil {
			s.finishIngest(w, t, http.StatusBadRequest,
				IngestResult{Accepted: accepted, Error: fmt.Sprintf("event %d: %v", accepted+1, err)})
			return
		}
		switch err := s.submitAdmitted(t, ev); err {
		case nil:
			accepted++
		case engine.ErrBusy:
			s.writeBusy(w, t, IngestResult{Accepted: accepted})
			return
		case errDraining, engine.ErrClosed:
			s.finishIngest(w, t, http.StatusServiceUnavailable, IngestResult{Accepted: accepted, Error: "draining"})
			return
		default:
			s.finishIngest(w, t, http.StatusBadRequest,
				IngestResult{Accepted: accepted, Error: fmt.Sprintf("event %d: %v", accepted+1, err)})
			return
		}
	}
	s.finishIngest(w, t, http.StatusOK, IngestResult{Accepted: accepted})
}

// finishIngest writes an ingest response whose Accepted count a client may
// act on as a resume cursor — so for WAL-backed tenants it first runs the
// group-commit barrier, downgrading to 500 if durability cannot be
// promised. Every terminal path of the ingest handlers funnels through
// here: an acknowledged event count is never weaker than an fsync.
func (s *Server) finishIngest(w http.ResponseWriter, t *Tenant, code int, res IngestResult) {
	if res.Accepted > 0 {
		if err := t.syncDurable(); err != nil {
			res.Error = err.Error()
			writeJSON(w, http.StatusInternalServerError, res)
			return
		}
		res.DurableLSN = t.durableLSN()
	}
	writeJSON(w, code, res)
}

// writeBusy answers 429 with the advisory Retry-After. The Accepted count
// in a 429 is precisely the client's resume offset, so it passes through
// the same durability barrier as a success: on a WAL-backed tenant the
// offset is backed by an fsynced LSN before the client ever sees it.
func (s *Server) writeBusy(w http.ResponseWriter, t *Tenant, res IngestResult) {
	res.Error = "ingest queue full"
	res.RetryAfterMS = float64(s.retryAfter) / float64(time.Millisecond)
	secs := int(s.retryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	s.finishIngest(w, t, http.StatusTooManyRequests, res)
}

// handleQuote long-polls the decision for one task ID. ?timeout_ms bounds
// the wait (default 30s, cap 120s); no decision in time answers 204.
func (s *Server) handleQuote(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenantOf(w, r)
	if !ok {
		return
	}
	taskID, err := strconv.Atoi(r.PathValue("task"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, IngestResult{Error: "task ID must be an integer"})
		return
	}
	timeout := 30 * time.Second
	if ms := r.URL.Query().Get("timeout_ms"); ms != "" {
		v, err := strconv.Atoi(ms)
		if err != nil || v < 0 {
			writeJSON(w, http.StatusBadRequest, IngestResult{Error: "timeout_ms must be a non-negative integer"})
			return
		}
		timeout = time.Duration(v) * time.Millisecond
		if timeout > 120*time.Second {
			timeout = 120 * time.Second
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	if d, ok := t.hub.Await(ctx, taskID); ok {
		writeJSON(w, http.StatusOK, wireDecision(d))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleQuoteStream serves the tenant's full decision stream as SSE. A
// consumer that falls behind its bounded buffer loses frames (counted in
// the quote_stream_dropped metric) rather than growing server memory.
func (s *Server) handleQuoteStream(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenantOf(w, r)
	if !ok {
		return
	}
	fl, canFlush := w.(http.Flusher)
	if !canFlush {
		writeJSON(w, http.StatusNotImplemented, IngestResult{Error: "streaming unsupported by this connection"})
		return
	}
	sub := t.hub.Subscribe()
	if sub == nil {
		writeJSON(w, http.StatusServiceUnavailable, IngestResult{Error: "draining"})
		return
	}
	defer t.hub.Unsubscribe(sub)
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	enc := json.NewEncoder(w)
	for {
		select {
		case d, open := <-sub.ch:
			if !open {
				return
			}
			if _, err := io.WriteString(w, "data: "); err != nil {
				return
			}
			if err := enc.Encode(wireDecision(d)); err != nil { // Encode appends \n
				return
			}
			if _, err := io.WriteString(w, "\n"); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// handleStats serves the tenant's engine statistics in the stable JSON
// shape of engine.Stats.MarshalJSON.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenantOf(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, t.eng.Stats())
}

// handleHealth answers 200 while serving and 503 once draining.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	draining := s.draining
	s.mu.RUnlock()
	if draining {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "draining\n")
		return
	}
	io.WriteString(w, "ok\n")
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}
