package server

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"spatialcrowd/internal/engine"
)

// The /metrics encoder writes Prometheus text exposition format (version
// 0.0.4) by hand — no client library dependency. Every family is emitted
// once with its HELP/TYPE header followed by one sample per tenant (per
// shard where applicable), so a multi-city server scrapes as one page with
// a `tenant` label distinguishing the cities.

// metricFamily describes one family and how to sample it per tenant.
type metricFamily struct {
	name string
	help string
	typ  string // "counter" | "gauge"
	// sample appends one line per (labelset, value) for the tenant.
	sample func(b *strings.Builder, tenant string, t *Tenant, st engine.Stats, qd engine.QueueDepths)
}

// writeSample writes `name{tenant="x",k1="v1",...} value` with the tenant
// label always first. Values render in Go's shortest round-trip float form,
// which Prometheus accepts.
func writeSample(b *strings.Builder, name, tenant string, extra []string, v float64) {
	b.WriteString(name)
	b.WriteString(`{tenant="`)
	b.WriteString(tenant)
	b.WriteString(`"`)
	for i := 0; i+1 < len(extra); i += 2 {
		b.WriteString(",")
		b.WriteString(extra[i])
		b.WriteString(`="`)
		b.WriteString(extra[i+1])
		b.WriteString(`"`)
	}
	b.WriteString("} ")
	b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	b.WriteString("\n")
}

func counter(name, help string, f func(*Tenant, engine.Stats, engine.QueueDepths) float64) metricFamily {
	return scalarFamily(name, help, "counter", f)
}

func gauge(name, help string, f func(*Tenant, engine.Stats, engine.QueueDepths) float64) metricFamily {
	return scalarFamily(name, help, "gauge", f)
}

func scalarFamily(name, help, typ string, f func(*Tenant, engine.Stats, engine.QueueDepths) float64) metricFamily {
	return metricFamily{name: name, help: help, typ: typ,
		sample: func(b *strings.Builder, tenant string, t *Tenant, st engine.Stats, qd engine.QueueDepths) {
			writeSample(b, name, tenant, nil, f(t, st, qd))
		}}
}

// metricFamilies is the fixed family set, in exposition order. The parsing
// test pins the required names; additions are free, removals break
// scrapers.
var metricFamilies = []metricFamily{
	counter("spatialcrowd_events_total", "Events accepted by the engine (Submit and TrySubmit).",
		func(_ *Tenant, st engine.Stats, _ engine.QueueDepths) float64 { return float64(st.Events) }),
	counter("spatialcrowd_http_ingested_total", "Events accepted over HTTP ingestion.",
		func(t *Tenant, _ engine.Stats, _ engine.QueueDepths) float64 { return float64(t.Ingested()) }),
	{
		name: "spatialcrowd_codec_ingested_events_total", typ: "counter",
		help: "Events accepted over HTTP per wire codec.",
		sample: func(b *strings.Builder, tenant string, t *Tenant, _ engine.Stats, _ engine.QueueDepths) {
			for c := 0; c < numCodecs; c++ {
				writeSample(b, "spatialcrowd_codec_ingested_events_total", tenant,
					[]string{"codec", codecName(c)}, float64(t.codecEvents[c].Load()))
			}
		},
	},
	{
		name: "spatialcrowd_codec_ingested_bytes_total", typ: "counter",
		help: "Ingest wire bytes consumed per codec (JSON body bytes; binary frame payload bytes).",
		sample: func(b *strings.Builder, tenant string, t *Tenant, _ engine.Stats, _ engine.QueueDepths) {
			for c := 0; c < numCodecs; c++ {
				writeSample(b, "spatialcrowd_codec_ingested_bytes_total", tenant,
					[]string{"codec", codecName(c)}, float64(t.codecBytes[c].Load()))
			}
		},
	},
	counter("spatialcrowd_rejected_events_total", "Events refused by admission control with 429 (ingest queue full).",
		func(t *Tenant, _ engine.Stats, _ engine.QueueDepths) float64 { return float64(t.Rejected()) }),
	counter("spatialcrowd_tasks_priced_total", "Tasks run through a pricing strategy.",
		func(_ *Tenant, st engine.Stats, _ engine.QueueDepths) float64 { return float64(st.TasksPriced) }),
	counter("spatialcrowd_quotes_total", "Price quotes emitted in quoted mode.",
		func(_ *Tenant, st engine.Stats, _ engine.QueueDepths) float64 { return float64(st.Quoted) }),
	counter("spatialcrowd_accepted_total", "Requester acceptances.",
		func(_ *Tenant, st engine.Stats, _ engine.QueueDepths) float64 { return float64(st.Accepted) }),
	counter("spatialcrowd_served_total", "Finalized task-worker assignments.",
		func(_ *Tenant, st engine.Stats, _ engine.QueueDepths) float64 { return float64(st.Served) }),
	counter("spatialcrowd_revenue_total", "Platform revenue: sum of distance * price over served tasks.",
		func(_ *Tenant, st engine.Stats, _ engine.QueueDepths) float64 { return st.Revenue }),
	counter("spatialcrowd_batches_total", "Closed non-empty pricing batches.",
		func(_ *Tenant, st engine.Stats, _ engine.QueueDepths) float64 { return float64(st.Batches) }),
	counter("spatialcrowd_late_events_total", "Events referencing unknown or already-settled targets.",
		func(_ *Tenant, st engine.Stats, _ engine.QueueDepths) float64 { return float64(st.Late) }),
	counter("spatialcrowd_strategy_errors_total", "Pricing batches dropped for violating the one-price-per-task contract.",
		func(_ *Tenant, st engine.Stats, _ engine.QueueDepths) float64 { return float64(st.StrategyErrors) }),
	{
		name: "spatialcrowd_shard_tasks_total", typ: "counter",
		help: "Tasks priced per shard (per-shard throughput).",
		sample: func(b *strings.Builder, tenant string, _ *Tenant, st engine.Stats, _ engine.QueueDepths) {
			for i, n := range st.ShardTasks {
				writeSample(b, "spatialcrowd_shard_tasks_total", tenant,
					[]string{"shard", strconv.Itoa(i)}, float64(n))
			}
		},
	},
	{
		name: "spatialcrowd_shard_revenue_total", typ: "counter",
		help: "Revenue per shard.",
		sample: func(b *strings.Builder, tenant string, _ *Tenant, st engine.Stats, _ engine.QueueDepths) {
			for i, r := range st.ShardRevenue {
				writeSample(b, "spatialcrowd_shard_revenue_total", tenant,
					[]string{"shard", strconv.Itoa(i)}, r)
			}
		},
	},
	{
		name: "spatialcrowd_decision_latency_seconds", typ: "gauge",
		help: "Online P-square quantile estimates of decision latency.",
		sample: func(b *strings.Builder, tenant string, _ *Tenant, st engine.Stats, _ engine.QueueDepths) {
			writeSample(b, "spatialcrowd_decision_latency_seconds", tenant,
				[]string{"quantile", "0.5"}, st.P50Latency.Seconds())
			writeSample(b, "spatialcrowd_decision_latency_seconds", tenant,
				[]string{"quantile", "0.99"}, st.P99Latency.Seconds())
		},
	},
	gauge("spatialcrowd_router_queue_depth", "Events waiting in the router's bounded ingest queue.",
		func(_ *Tenant, _ engine.Stats, qd engine.QueueDepths) float64 { return float64(qd.Router) }),
	{
		name: "spatialcrowd_shard_queue_depth", typ: "gauge",
		help: "Events waiting per shard's bounded queue.",
		sample: func(b *strings.Builder, tenant string, _ *Tenant, _ engine.Stats, qd engine.QueueDepths) {
			for i, n := range qd.Shards {
				writeSample(b, "spatialcrowd_shard_queue_depth", tenant,
					[]string{"shard", strconv.Itoa(i)}, float64(n))
			}
		},
	},
	gauge("spatialcrowd_ingest_queue_capacity", "Fixed capacity of each bounded ingest queue (0 in deterministic mode).",
		func(_ *Tenant, _ engine.Stats, qd engine.QueueDepths) float64 { return float64(qd.Capacity) }),
	gauge("spatialcrowd_workers_pooled", "Workers currently waiting in shard pools.",
		func(_ *Tenant, st engine.Stats, _ engine.QueueDepths) float64 { return float64(st.Lifecycle.Pooled) }),
	counter("spatialcrowd_worker_onlines_total", "Fresh worker pool admissions.",
		func(_ *Tenant, st engine.Stats, _ engine.QueueDepths) float64 { return float64(st.Lifecycle.Onlines) }),
	counter("spatialcrowd_worker_migrations_total", "Completed cross-shard worker migrations.",
		func(_ *Tenant, st engine.Stats, _ engine.QueueDepths) float64 {
			return float64(st.Lifecycle.Migrations)
		}),
	counter("spatialcrowd_worker_retired_total", "Workers retired: assigned + expired + offline.",
		func(_ *Tenant, st engine.Stats, _ engine.QueueDepths) float64 {
			lc := st.Lifecycle
			return float64(lc.RetiredAssigned + lc.RetiredExpired + lc.RetiredOffline)
		}),
	counter("spatialcrowd_context_cache_hits_total", "Pricing windows whose context was reused from the previous window (amortization on).",
		func(_ *Tenant, st engine.Stats, _ engine.QueueDepths) float64 { return float64(st.Cache.CtxHits) }),
	counter("spatialcrowd_context_cache_misses_total", "Pricing windows whose context was rebuilt from scratch (amortization on).",
		func(_ *Tenant, st engine.Stats, _ engine.QueueDepths) float64 { return float64(st.Cache.CtxMisses) }),
	counter("spatialcrowd_price_cache_hits_total", "Pricing windows served from the cached price vector (amortization on).",
		func(_ *Tenant, st engine.Stats, _ engine.QueueDepths) float64 { return float64(st.Cache.PriceHits) }),
	counter("spatialcrowd_price_cache_misses_total", "Pricing windows that invoked the strategy's Prices (amortization on).",
		func(_ *Tenant, st engine.Stats, _ engine.QueueDepths) float64 { return float64(st.Cache.PriceMisses) }),
	counter("spatialcrowd_kd_incremental_total", "Worker-index updates applied as incremental deltas (amortization on, kd mode).",
		func(_ *Tenant, st engine.Stats, _ engine.QueueDepths) float64 { return float64(st.Cache.KDIncremental) }),
	counter("spatialcrowd_kd_rebuilds_total", "Worker-index updates that fell back to a bulk rebuild (amortization on, kd mode).",
		func(_ *Tenant, st engine.Stats, _ engine.QueueDepths) float64 { return float64(st.Cache.KDRebuilds) }),
	counter("spatialcrowd_quote_stream_dropped_total", "SSE frames dropped on slow quote-stream subscribers.",
		func(t *Tenant, _ engine.Stats, _ engine.QueueDepths) float64 { return float64(t.hub.Dropped()) }),
	gauge("spatialcrowd_wal_last_lsn", "Last LSN appended to the tenant's write-ahead log (0 without a WAL).",
		func(t *Tenant, _ engine.Stats, _ engine.QueueDepths) float64 { return float64(t.eng.WALLastLSN()) }),
	gauge("spatialcrowd_wal_durable_lsn", "Last WAL LSN covered by a successful fsync (0 without a WAL).",
		func(t *Tenant, _ engine.Stats, _ engine.QueueDepths) float64 { return float64(t.eng.WALDurableLSN()) }),
	gauge("spatialcrowd_wal_segments", "Live segment files in the tenant's write-ahead log.",
		func(t *Tenant, _ engine.Stats, _ engine.QueueDepths) float64 {
			return float64(t.eng.WALStats().Segments)
		}),
	gauge("spatialcrowd_wal_active_segment_bytes", "Bytes in the write-ahead log's active segment.",
		func(t *Tenant, _ engine.Stats, _ engine.QueueDepths) float64 {
			return float64(t.eng.WALStats().ActiveSize)
		}),
	gauge("spatialcrowd_events_per_second", "Engine event throughput since start.",
		func(_ *Tenant, st engine.Stats, _ engine.QueueDepths) float64 { return st.EventsPerSec }),
	gauge("spatialcrowd_uptime_seconds", "Engine lifetime (start to close, or to now).",
		func(_ *Tenant, st engine.Stats, _ engine.QueueDepths) float64 { return st.Elapsed.Seconds() }),
}

// handleMetrics renders every tenant's snapshot in Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	names := append([]string(nil), s.order...)
	tenants := make([]*Tenant, len(names))
	for i, n := range names {
		tenants[i] = s.tenants[n]
	}
	s.mu.RUnlock()
	sort.Strings(names) // scrape output is stable regardless of registration order
	byName := make(map[string]*Tenant, len(tenants))
	for _, t := range tenants {
		byName[t.name] = t
	}

	type snap struct {
		st engine.Stats
		qd engine.QueueDepths
	}
	snaps := make(map[string]snap, len(names))
	for _, n := range names {
		t := byName[n]
		snaps[n] = snap{st: t.eng.Stats(), qd: t.eng.QueueDepths()}
	}

	var b strings.Builder
	for _, fam := range metricFamilies {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", fam.name, fam.help, fam.name, fam.typ)
		for _, n := range names {
			sn := snaps[n]
			fam.sample(&b, n, byName[n], sn.st, sn.qd)
		}
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(b.String()))
}
