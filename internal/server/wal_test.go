package server_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"spatialcrowd/internal/engine"
	"spatialcrowd/internal/server"
)

// ingestChunks drives evs through POST /ingest in fixed-size chunks,
// resuming after 429 from the durable Accepted offset — the client half of
// the lossless-backpressure protocol. It also asserts that every
// event-accepting response on a WAL-backed tenant carries a DurableLSN.
func ingestChunks(t *testing.T, baseURL, tenant string, evs []engine.Event, wantLSN bool) {
	t.Helper()
	const chunk = 400
	i := 0
	for i < len(evs) {
		end := i + chunk
		if end > len(evs) {
			end = len(evs)
		}
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		for _, ev := range evs[i:end] {
			we, err := server.FromEvent(ev)
			if err != nil {
				t.Fatal(err)
			}
			if err := enc.Encode(we); err != nil {
				t.Fatal(err)
			}
		}
		resp, err := http.Post(baseURL+"/v1/"+tenant+"/ingest", "application/x-ndjson", &buf)
		if err != nil {
			t.Fatal(err)
		}
		var res server.IngestResult
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			if res.Accepted != end-i {
				t.Fatalf("200 with %d/%d accepted", res.Accepted, end-i)
			}
		case http.StatusTooManyRequests:
			time.Sleep(2 * time.Millisecond)
		default:
			t.Fatalf("ingest status %d: %s", resp.StatusCode, res.Error)
		}
		if wantLSN && res.Accepted > 0 && res.DurableLSN == 0 {
			t.Fatalf("accepted %d events but response carries no durable LSN", res.Accepted)
		}
		i += res.Accepted
	}
}

// TestWALRecoveryOverHTTP proves the server-level durability contract in
// both failure modes:
//
//   - crash: the first server is abandoned mid-stream with NO drain and no
//     checkpoint; a second server on the same WAL directory must rebuild
//     every acknowledged event by replaying the log alone.
//   - drain: the first server drains (atomic checkpoint + WAL truncation);
//     the second recovers from snapshot + tail.
//
// In both modes the stitched run must reproduce the uninterrupted run's
// revenue and lifecycle counters exactly.
func TestWALRecoveryOverHTTP(t *testing.T) {
	in := testInstance(t, 1500, 500, 60)
	want := inProcessStats(t, flatEngineConfig(in, 0), in, engine.ReplayOpts{})
	if want.Revenue <= 0 {
		t.Fatalf("reference revenue %v, want > 0", want.Revenue)
	}

	// Collect the canonical stream with the same window the tenant engine
	// will use, so the HTTP run submits the identical event sequence.
	probe, err := engine.New(flatEngineConfig(in, 0))
	if err != nil {
		t.Fatal(err)
	}
	var events []engine.Event
	if err := engine.StreamEvents(in, probe.Window(), engine.ReplayOpts{}, func(ev engine.Event) error {
		events = append(events, ev)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	probe.Close()
	cut := len(events) / 2

	for _, mode := range []string{"crash", "drain"} {
		mode := mode
		t.Run(mode, func(t *testing.T) {
			dir := t.TempDir()
			walDir := filepath.Join(dir, "wal")
			ckpt := filepath.Join(dir, "city.ckpt")
			tcfg := func() server.TenantConfig {
				return server.TenantConfig{
					Name:           "city",
					Engine:         flatEngineConfig(in, 0),
					CheckpointPath: ckpt,
					WALDir:         walDir,
					WALSyncEvery:   16,
					// Tiny segments so the run rotates several times and the
					// drain-time truncation actually reclaims files.
					WALSegmentBytes: 8 << 10,
				}
			}

			srv1, err := server.New(server.Config{Tenants: []server.TenantConfig{tcfg()}})
			if err != nil {
				t.Fatal(err)
			}
			hs1 := httptest.NewServer(srv1)
			ingestChunks(t, hs1.URL, "city", events[:cut], true)
			hs1.Close()
			if mode == "drain" {
				if err := srv1.Drain(); err != nil {
					t.Fatal(err)
				}
				if _, err := os.Stat(ckpt); err != nil {
					t.Fatalf("drain left no checkpoint: %v", err)
				}
			}
			// In crash mode srv1 is simply abandoned: no drain, no
			// checkpoint, engines still holding their state in memory. The
			// only thing the second server can use is the WAL directory.

			srv2, err := server.New(server.Config{Tenants: []server.TenantConfig{tcfg()}})
			if err != nil {
				t.Fatalf("recovery startup: %v", err)
			}
			tn, _ := srv2.Tenant("city")
			if got := tn.Engine().Stats().Events; got != int64(cut) {
				t.Fatalf("recovered %d events, acknowledged %d", got, cut)
			}
			hs2 := httptest.NewServer(srv2)
			ingestChunks(t, hs2.URL, "city", events[cut:], true)
			hs2.Close()
			if err := srv2.Drain(); err != nil {
				t.Fatal(err)
			}

			got := tn.Engine().Stats()
			if got.Revenue != want.Revenue {
				t.Errorf("recovered revenue %.9f != uninterrupted %.9f", got.Revenue, want.Revenue)
			}
			if got.Events != want.Events || got.Served != want.Served || got.Accepted != want.Accepted {
				t.Errorf("events/served/accepted %d/%d/%d != %d/%d/%d",
					got.Events, got.Served, got.Accepted, want.Events, want.Served, want.Accepted)
			}
			if got.Lifecycle != want.Lifecycle {
				t.Errorf("lifecycle mismatch:\nrecovered     %+v\nuninterrupted %+v", got.Lifecycle, want.Lifecycle)
			}
			if mode == "drain" {
				// The drain truncated the log past the checkpoint: the
				// retained history must start after LSN 1.
				if st := tn.Engine().WALStats(); st.FirstLSN <= 1 {
					t.Errorf("drain did not truncate the WAL: stats %+v", st)
				}
			}
		})
	}
}
