package server

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sync"
	"sync/atomic"

	"spatialcrowd/internal/engine"
	"spatialcrowd/internal/wal"
)

// tenantNameRE constrains tenant names to characters that are safe in URL
// paths and Prometheus label values without escaping.
var tenantNameRE = regexp.MustCompile(`^[a-zA-Z0-9_-]{1,64}$`)

// TenantConfig describes one isolated "city": a private engine instance
// behind the shared listener.
type TenantConfig struct {
	// Name routes requests (/v1/{name}/...) and labels metrics. Letters,
	// digits, '_' and '-' only.
	Name string
	// Engine configures the tenant's engine. OnDecision is chained: the
	// server installs its quote hub first and then calls any configured
	// callback. Shards == 0 keeps the engine's deterministic mode (useful
	// for replay-exact tenants); use engine.DefaultShards to auto-size.
	Engine engine.Config
	// RestoreFrom, when non-empty, loads this checkpoint into the fresh
	// engine before serving — the recovery half of a drained tenant.
	RestoreFrom string
	// CheckpointPath, when non-empty, receives an atomic checkpoint
	// (tmp+rename) when the server drains.
	CheckpointPath string
	// QuoteCache overrides the per-generation recent-quote cache size
	// (default 65536 entries; two generations live at once).
	QuoteCache int
	// WALDir, when non-empty, gives the tenant a durable write-ahead log in
	// that directory: every accepted event is appended (and group-commit
	// fsynced) before the HTTP response, so an acknowledged event survives
	// a crash. On startup the tenant auto-recovers — the newest checkpoint
	// (RestoreFrom, or CheckpointPath if it exists on disk) plus the WAL
	// tail replayed past it.
	WALDir string
	// WALSyncEvery batches fsyncs: the log syncs after this many appends
	// (and at every ingest acknowledgement — the group-commit barrier).
	// <= 1 fsyncs every append.
	WALSyncEvery int
	// WALSegmentBytes caps segment size before rotation (default 16 MiB).
	WALSegmentBytes int64
	// Codec restricts which ingest codec the tenant accepts: "json",
	// "binary", or "" for both. A request in the refused codec gets 415, the
	// lever that pins a replay-exact tenant to one canonical wire path.
	Codec string
}

// Tenant is one running city: engine + quote hub + ingest accounting.
type Tenant struct {
	name     string
	eng      *engine.Engine
	hub      *quoteHub
	ckptPath string
	wlog     *wal.Log // nil without WALDir; owned by the tenant, closed on drain

	// ingestMu serializes ingestion against drain: handlers hold it shared
	// around Submit calls; Drain takes it exclusively so the checkpoint
	// cannot race an in-flight Submit (an Engine.Checkpoint precondition).
	ingestMu sync.RWMutex

	// det marks a deterministic (Shards == 0) engine, which processes
	// events inline in the submitter's goroutine and therefore needs
	// submissions serialized; detMu provides that. Concurrent engines
	// skip it — their router channel is the synchronization point.
	det   bool
	detMu sync.Mutex

	ingested atomic.Int64 // events accepted over HTTP
	rejected atomic.Int64 // events refused with 429 (admission control)
	draining atomic.Bool

	// codec, when non-empty, is the only wire codec the tenant accepts.
	codec string
	// Per-codec ingest traffic, indexed by codecJSON/codecBinary: events
	// accepted and request-body bytes consumed.
	codecEvents [numCodecs]atomic.Int64
	codecBytes  [numCodecs]atomic.Int64
}

// newTenant validates the config, builds the engine (restoring a checkpoint
// when configured), and wires the quote hub into the decision stream.
func newTenant(cfg TenantConfig) (*Tenant, error) {
	if !tenantNameRE.MatchString(cfg.Name) {
		return nil, fmt.Errorf("server: invalid tenant name %q (want [a-zA-Z0-9_-]{1,64})", cfg.Name)
	}
	switch cfg.Codec {
	case "", "json", "binary":
	default:
		return nil, fmt.Errorf("server: tenant %q: invalid Codec %q (want json, binary, or empty for both)", cfg.Name, cfg.Codec)
	}
	t := &Tenant{name: cfg.Name, hub: newQuoteHub(cfg.QuoteCache), ckptPath: cfg.CheckpointPath, codec: cfg.Codec}
	ecfg := cfg.Engine
	chained := ecfg.OnDecision
	ecfg.OnDecision = func(d engine.Decision) {
		t.hub.Publish(d)
		if chained != nil {
			chained(d)
		}
	}
	if cfg.WALDir != "" {
		st, err := wal.NewFileStore(cfg.WALDir)
		if err != nil {
			return nil, fmt.Errorf("server: tenant %q: wal dir: %w", cfg.Name, err)
		}
		opt := wal.Options{SegmentBytes: cfg.WALSegmentBytes}
		if cfg.WALSyncEvery > 1 {
			opt.Sync = wal.SyncBatch
			opt.BatchAppends = cfg.WALSyncEvery
		}
		log, err := wal.Open(st, opt)
		if err != nil {
			return nil, fmt.Errorf("server: tenant %q: opening wal: %w", cfg.Name, err)
		}
		t.wlog = log
		ecfg.WAL = log
	}
	eng, err := engine.New(ecfg)
	if err != nil {
		t.closeWAL()
		return nil, fmt.Errorf("server: tenant %q: %w", cfg.Name, err)
	}

	// Pick the snapshot to start from: an explicit RestoreFrom wins;
	// otherwise a WAL-backed tenant auto-recovers from its own last
	// checkpoint when one exists on disk.
	snapPath := cfg.RestoreFrom
	if snapPath == "" && t.wlog != nil && cfg.CheckpointPath != "" {
		if _, err := os.Stat(cfg.CheckpointPath); err == nil {
			snapPath = cfg.CheckpointPath
		}
	}
	if t.wlog != nil {
		var snap io.Reader
		var f *os.File
		if snapPath != "" {
			f, err = os.Open(snapPath)
			if err != nil {
				eng.Close()
				t.closeWAL()
				return nil, fmt.Errorf("server: tenant %q: %w", cfg.Name, err)
			}
			snap = f
		}
		_, err = eng.RecoverWAL(snap)
		if f != nil {
			f.Close()
		}
		if err != nil {
			eng.Close()
			t.closeWAL()
			return nil, fmt.Errorf("server: tenant %q: wal recovery (snapshot %q): %w", cfg.Name, snapPath, err)
		}
	} else if snapPath != "" {
		f, err := os.Open(snapPath)
		if err != nil {
			eng.Close()
			return nil, fmt.Errorf("server: tenant %q: %w", cfg.Name, err)
		}
		err = eng.Restore(f)
		f.Close()
		if err != nil {
			eng.Close()
			return nil, fmt.Errorf("server: tenant %q: restoring %s: %w", cfg.Name, snapPath, err)
		}
	}
	t.eng = eng
	t.det = eng.Shards() == 0
	return t, nil
}

// closeWAL releases the tenant's log handle (nil-safe, idempotent enough
// for the error paths that call it before the tenant ever served).
func (t *Tenant) closeWAL() {
	if t.wlog != nil {
		t.wlog.Close()
	}
}

// Name reports the tenant's routing name.
func (t *Tenant) Name() string { return t.name }

// Engine exposes the tenant's engine (stats, checkpoint in tests).
func (t *Tenant) Engine() *engine.Engine { return t.eng }

// Ingested reports events accepted over HTTP; Rejected reports events the
// admission controller refused with 429.
func (t *Tenant) Ingested() int64 { return t.ingested.Load() }
func (t *Tenant) Rejected() int64 { return t.rejected.Load() }

// allowsCodec reports whether the tenant admits the given wire codec.
func (t *Tenant) allowsCodec(codec int) bool {
	return t.codec == "" || t.codec == codecName(codec)
}

// noteCodecTraffic records one ingest request's per-codec accounting:
// events accepted and body bytes consumed.
func (t *Tenant) noteCodecTraffic(codec int, events int, bytes int64) {
	if events > 0 {
		t.codecEvents[codec].Add(int64(events))
	}
	if bytes > 0 {
		t.codecBytes[codec].Add(bytes)
	}
}

// submit runs one event through admission control: a non-blocking TrySubmit
// against the engine's bounded ingest queue. engine.ErrBusy propagates to
// the handler, which converts it into 429 + Retry-After — the queue never
// grows beyond its fixed capacity on a client's behalf.
func (t *Tenant) submit(ev engine.Event) error {
	t.ingestMu.RLock()
	defer t.ingestMu.RUnlock()
	if t.draining.Load() {
		return errDraining
	}
	if t.det {
		t.detMu.Lock()
		defer t.detMu.Unlock()
	}
	if err := t.eng.TrySubmit(ev); err != nil {
		if err == engine.ErrBusy {
			t.rejected.Add(1)
		}
		return err
	}
	t.ingested.Add(1)
	return nil
}

// submitBatch is submit at batch granularity: one TrySubmitBatch hands the
// whole decoded batch to the engine in a single bounded-channel operation,
// and the accepted-prefix count propagates to the handler as the client's
// resume cursor — the same lossless 429 contract as per-event ingest, paid
// once per batch instead of once per event.
func (t *Tenant) submitBatch(evs []engine.Event) (int, error) {
	t.ingestMu.RLock()
	defer t.ingestMu.RUnlock()
	if t.draining.Load() {
		return 0, errDraining
	}
	if t.det {
		t.detMu.Lock()
		defer t.detMu.Unlock()
	}
	n, err := t.eng.TrySubmitBatch(evs)
	t.ingested.Add(int64(n))
	if err == engine.ErrBusy {
		t.rejected.Add(int64(len(evs) - n))
	}
	return n, err
}

// syncDurable is the group-commit barrier handlers place before answering
// an ingest request that accepted events: on return every acknowledged
// event is fsynced, so "accepted" always means "survives a crash". Nil
// without a WAL. Concurrent requests coalesce — one fsync covers every
// append racing with it.
func (t *Tenant) syncDurable() error {
	if t.wlog == nil {
		return nil
	}
	if err := t.eng.SyncWAL(); err != nil {
		return fmt.Errorf("%w: %v", errWALSync, err)
	}
	return nil
}

// durableLSN reports the tenant's last fsynced WAL position (0 without a
// WAL) — the resume cursor ingest responses hand back to clients.
func (t *Tenant) durableLSN() uint64 { return t.eng.WALDurableLSN() }

var (
	errDraining = fmt.Errorf("server: tenant draining")
	// errWALSync marks a failed durability barrier: the engine applied the
	// events but could not make them crash-safe. The tenant's log is
	// poisoned (all later appends fail) — it needs a drain + recovery.
	errWALSync = fmt.Errorf("server: wal sync failed")
)

// drain quiesces the tenant: new ingestion is refused (503), in-flight
// submits finish, a checkpoint is written while the engine still runs (the
// FIFO barrier flushes every accepted event into it), and the engine closes
// — finalizing pending quoted batches. Idempotent.
func (t *Tenant) drain() error {
	if !t.draining.CompareAndSwap(false, true) {
		return nil
	}
	// Exclusive lock: every in-flight submit has returned and later ones
	// see the draining flag, so Checkpoint/Close cannot race Submit.
	t.ingestMu.Lock()
	defer t.ingestMu.Unlock()
	var err error
	if t.ckptPath != "" {
		ckLSN := t.eng.WALLastLSN()
		err = writeCheckpointAtomic(t.eng, t.ckptPath)
		if err == nil && t.wlog != nil {
			// The snapshot now covers everything up to ckLSN; reclaim the
			// sealed segments below it. Startup recovery replays only the
			// tail past the snapshot.
			if _, terr := t.wlog.TruncateBefore(ckLSN + 1); terr != nil {
				err = terr
			}
		}
	}
	if cerr := t.eng.Close(); cerr != nil && cerr != engine.ErrClosed && err == nil {
		err = cerr
	}
	if t.wlog != nil {
		if werr := t.wlog.Close(); werr != nil && werr != wal.ErrClosed && err == nil {
			err = werr
		}
	}
	t.hub.Close()
	if err != nil {
		return fmt.Errorf("server: draining tenant %q: %w", t.name, err)
	}
	return nil
}

// writeCheckpointAtomic replaces path with a fresh engine checkpoint via
// the write-temp-then-rename dance, so a crash mid-write cannot corrupt the
// last good checkpoint. The temp file is fsynced before the rename and the
// parent directory after it: without the first, the rename can install a
// name whose bytes are still in the page cache (a crash then leaves a
// corrupt "good" checkpoint); without the second, the rename itself can
// vanish and resurrect a stale snapshot — fatal once the WAL has been
// truncated past it. Shared with cmd/serve's periodic and signal-triggered
// checkpoints.
func writeCheckpointAtomic(eng *engine.Engine, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := eng.Checkpoint(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	dir, err := os.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	defer dir.Close()
	return dir.Sync()
}

// WriteCheckpointAtomic is the exported form of the atomic checkpoint
// helper; cmd/serve reuses it for periodic and signal-triggered snapshots.
func WriteCheckpointAtomic(eng *engine.Engine, path string) error {
	return writeCheckpointAtomic(eng, path)
}
