package server_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"spatialcrowd/internal/server"
	"spatialcrowd/internal/server/loadgen"
)

// promSample is one parsed exposition line.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

// parsePrometheus parses the text exposition format far enough to verify
// the contract: every non-comment line must be `name{labels} value` with a
// parseable float, every metric must be preceded by HELP and TYPE comments.
func parsePrometheus(t *testing.T, text string) []promSample {
	t.Helper()
	var samples []promSample
	typed := map[string]bool{}
	helped := map[string]bool{}
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			helped[strings.Fields(line)[2]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) < 4 || (f[3] != "counter" && f[3] != "gauge" && f[3] != "summary") {
				t.Errorf("bad TYPE line: %s", line)
			}
			typed[f[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("sample line without value: %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		nameAndLabels := line[:sp]
		s := promSample{labels: map[string]string{}, value: v}
		if i := strings.IndexByte(nameAndLabels, '{'); i >= 0 {
			s.name = nameAndLabels[:i]
			inner := strings.TrimSuffix(nameAndLabels[i+1:], "}")
			for _, pair := range strings.Split(inner, ",") {
				if pair == "" {
					continue
				}
				kv := strings.SplitN(pair, "=", 2)
				if len(kv) != 2 {
					t.Fatalf("bad label pair %q in %q", pair, line)
				}
				s.labels[kv[0]] = strings.Trim(kv[1], `"`)
			}
		} else {
			s.name = nameAndLabels
		}
		if !typed[s.name] || !helped[s.name] {
			t.Errorf("metric %s has no preceding HELP/TYPE", s.name)
		}
		samples = append(samples, s)
	}
	return samples
}

func findSample(samples []promSample, name string, want map[string]string) (promSample, bool) {
	for _, s := range samples {
		if s.name != name {
			continue
		}
		ok := true
		for k, v := range want {
			if s.labels[k] != v {
				ok = false
				break
			}
		}
		if ok {
			return s, true
		}
	}
	return promSample{}, false
}

// TestMetricsExposition drives traffic through two tenants and asserts the
// /metrics page carries, per tenant: p50/p99 decision latency, per-shard
// throughput, ingest queue depth/capacity, and the rejected-event counter —
// all in parseable Prometheus text format.
func TestMetricsExposition(t *testing.T) {
	in := testInstance(t, 1200, 400, 50)
	srv, err := server.New(server.Config{Tenants: []server.TenantConfig{
		{Name: "alpha", Engine: flatEngineConfig(in, 2)},
		{Name: "beta", Engine: flatEngineConfig(in, 3)},
	}})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()
	for _, tenant := range []string{"alpha", "beta"} {
		if _, err := loadgen.Run(loadgen.Config{BaseURL: hs.URL, Tenant: tenant, ChunkEvents: 400}, in); err != nil {
			t.Fatalf("loadgen %s: %v", tenant, err)
		}
	}

	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("metrics content type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples := parsePrometheus(t, string(raw))
	if len(samples) == 0 {
		t.Fatal("no samples parsed from /metrics")
	}

	shardsOf := map[string]int{"alpha": 2, "beta": 3}
	for tenant, shards := range shardsOf {
		lbl := map[string]string{"tenant": tenant}

		for _, q := range []string{"0.5", "0.99"} {
			s, ok := findSample(samples, "spatialcrowd_decision_latency_seconds", map[string]string{"tenant": tenant, "quantile": q})
			if !ok {
				t.Errorf("[%s] no decision latency quantile %s", tenant, q)
			} else if s.value <= 0 {
				t.Errorf("[%s] latency quantile %s is %v, want > 0", tenant, q, s.value)
			}
		}

		// Per-shard throughput: one tasks sample per shard, summing to the
		// tenant's priced tasks.
		var shardSum float64
		for i := 0; i < shards; i++ {
			s, ok := findSample(samples, "spatialcrowd_shard_tasks_total", map[string]string{"tenant": tenant, "shard": strconv.Itoa(i)})
			if !ok {
				t.Errorf("[%s] missing shard_tasks_total{shard=%d}", tenant, i)
				continue
			}
			shardSum += s.value
		}
		if priced, ok := findSample(samples, "spatialcrowd_tasks_priced_total", lbl); !ok {
			t.Errorf("[%s] missing tasks_priced_total", tenant)
		} else if shardSum != priced.value {
			t.Errorf("[%s] shard task sum %v != tasks_priced_total %v", tenant, shardSum, priced.value)
		}
		if _, ok := findSample(samples, "spatialcrowd_shard_tasks_total", map[string]string{"tenant": tenant, "shard": strconv.Itoa(shards)}); ok {
			t.Errorf("[%s] unexpected extra shard %d", tenant, shards)
		}

		for _, name := range []string{
			"spatialcrowd_router_queue_depth",
			"spatialcrowd_ingest_queue_capacity",
			"spatialcrowd_rejected_events_total",
			"spatialcrowd_http_ingested_total",
			"spatialcrowd_revenue_total",
			"spatialcrowd_events_total",
			"spatialcrowd_context_cache_hits_total",
			"spatialcrowd_context_cache_misses_total",
			"spatialcrowd_price_cache_hits_total",
			"spatialcrowd_price_cache_misses_total",
			"spatialcrowd_kd_incremental_total",
			"spatialcrowd_kd_rebuilds_total",
		} {
			if _, ok := findSample(samples, name, lbl); !ok {
				t.Errorf("[%s] missing metric %s", tenant, name)
			}
		}

		if ing, ok := findSample(samples, "spatialcrowd_http_ingested_total", lbl); !ok || ing.value <= 0 {
			t.Errorf("[%s] http_ingested_total missing or zero", tenant)
		}
		if cap, ok := findSample(samples, "spatialcrowd_ingest_queue_capacity", lbl); !ok || cap.value <= 0 {
			t.Errorf("[%s] ingest_queue_capacity missing or zero", tenant)
		}
	}

	for _, tenant := range []string{"alpha", "beta"} {
		if rev, ok := findSample(samples, "spatialcrowd_revenue_total", map[string]string{"tenant": tenant}); !ok || rev.value <= 0 {
			t.Errorf("[%s] revenue metric missing or zero", tenant)
		}
	}

	if err := srv.Drain(); err != nil {
		t.Fatal(err)
	}
}
