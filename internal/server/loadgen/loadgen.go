// Package loadgen drives a market instance through the dispatch server
// over real sockets: it renders the canonical event stream of the instance
// (engine.StreamEvents — the exact order the in-process replay driver
// submits) as NDJSON lines or binary wire frames (Config.Codec) and posts
// it in chunks to /v1/{tenant}/ingest, honoring the server's backpressure
// protocol: a 429 response carries the number of events the server
// accepted, so the generator resumes the chunk after that prefix once
// Retry-After elapses — no event is lost or duplicated across retries.
// Both codecs resume by byte offset within the encoded chunk (binary
// events are self-delimiting, so the tail just gets a fresh frame header).
// Because the stream is sent on one connection in order, a deterministic
// tenant ingests exactly the in-process replay, which is what makes HTTP
// revenue comparable bit for bit across codecs.
package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"spatialcrowd/internal/engine"
	"spatialcrowd/internal/market"
	"spatialcrowd/internal/server"
	"spatialcrowd/internal/wire"
)

// Config parameterizes a load-generation run.
type Config struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Tenant is the target city.
	Tenant string
	// Client overrides the HTTP client (default: a dedicated client with
	// keep-alives, no timeout — the chunks bound request sizes).
	Client *http.Client
	// ChunkEvents is the number of events per POST (default 5000).
	ChunkEvents int
	// Codec selects the wire encoding: "" or "json" renders NDJSON lines,
	// "binary" renders one wire batch frame per chunk. Either way a 429
	// resume slices the chunk at the accepted event's byte offset — binary
	// events are self-delimiting, so the tail is re-framed without
	// re-encoding anything. (Binary chunks must stay under
	// wire.MaxFrameBytes; the default chunk size is three orders of
	// magnitude below it.)
	Codec string
	// Window is the tenant engine's pricing window (positions the final
	// flushing tick); default 1.
	Window int
	// Opts select the slice of the trace to send (From/Until/Moves), as in
	// engine.ReplayOpts.
	Opts engine.ReplayOpts
	// MaxRetries caps consecutive 429 retries of one chunk before giving
	// up (default 1000 — effectively "keep pushing"; the server's
	// Retry-After paces the loop).
	MaxRetries int
}

// Report summarizes a run.
type Report struct {
	// Events is the number of events the server accepted (sum of the
	// Accepted counts — every event of the requested slice, on success).
	Events int
	// Posts counts HTTP requests; Rejections counts 429 responses (each
	// followed by a resume).
	Posts      int
	Rejections int
	// Duration spans first byte to last response; EventsPerSec is
	// Events/Duration.
	Duration     time.Duration
	EventsPerSec float64
}

// Run streams the instance's events into the server and blocks until the
// whole requested slice is ingested (or a non-retryable error).
func Run(cfg Config, in *market.Instance) (Report, error) {
	if cfg.ChunkEvents <= 0 {
		cfg.ChunkEvents = 5000
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 1000
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	cd, err := codecFor(cfg.Codec)
	if err != nil {
		return Report{}, err
	}
	url := cfg.BaseURL + "/v1/" + cfg.Tenant + "/ingest"

	var rep Report
	start := time.Now()

	chunk := newChunk(cfg.ChunkEvents)
	flush := func() error {
		if chunk.events() == 0 {
			return nil
		}
		if err := postChunk(client, url, cd, chunk, cfg.MaxRetries, &rep); err != nil {
			return err
		}
		chunk.reset()
		return nil
	}
	encode := cd.encoder(chunk)
	emit := func(ev engine.Event) error {
		if err := encode(ev); err != nil {
			return err
		}
		if chunk.events() >= cfg.ChunkEvents {
			return flush()
		}
		return nil
	}
	if err := engine.StreamEvents(in, cfg.Window, cfg.Opts, emit); err != nil {
		return rep, err
	}
	if err := flush(); err != nil {
		return rep, err
	}
	rep.Duration = time.Since(start)
	if secs := rep.Duration.Seconds(); secs > 0 {
		rep.EventsPerSec = float64(rep.Events) / secs
	}
	return rep, nil
}

// codec renders events into a chunk and chunk tails into request bodies.
type codec interface {
	contentType() string
	// encoder returns the per-event append function writing into c.
	encoder(c *chunk) func(engine.Event) error
	// body wraps the unaccepted tail of a chunk's encoded bytes into a
	// request body (identity for NDJSON; header + CRC framing for binary).
	body(tail []byte) []byte
}

func codecFor(name string) (codec, error) {
	switch name {
	case "", "json":
		return &jsonCodec{}, nil
	case "binary":
		return &binaryCodec{}, nil
	}
	return nil, fmt.Errorf("loadgen: unknown codec %q (want json or binary)", name)
}

type jsonCodec struct{}

func (*jsonCodec) contentType() string     { return "application/x-ndjson" }
func (*jsonCodec) body(tail []byte) []byte { return tail }
func (*jsonCodec) encoder(c *chunk) func(engine.Event) error {
	enc := json.NewEncoder(&c.buf)
	return func(ev engine.Event) error {
		we, err := server.FromEvent(ev)
		if err != nil {
			return err
		}
		c.markStart()
		return enc.Encode(we) // Encode appends the NDJSON newline
	}
}

// binaryCodec streams wire batch frames: the chunk buffer holds the bare
// concatenated event encodings (the frame payload), and body() prepends a
// freshly computed header — so resuming at an event's byte offset is a
// slice plus one cheap CRC, never a re-encode.
type binaryCodec struct {
	scratch []byte // one event's encoding, reused
	frame   []byte // header + payload tail, reused per POST
}

func (*binaryCodec) contentType() string { return wire.ContentType }

func (b *binaryCodec) encoder(c *chunk) func(engine.Event) error {
	return func(ev engine.Event) error {
		var err error
		if b.scratch, err = wire.AppendEvent(b.scratch[:0], ev.Wire()); err != nil {
			return err
		}
		c.markStart()
		c.buf.Write(b.scratch)
		return nil
	}
}

func (b *binaryCodec) body(tail []byte) []byte {
	need := wire.HeaderLen + len(tail)
	if cap(b.frame) < need {
		b.frame = make([]byte, need)
	}
	b.frame = b.frame[:need]
	copy(b.frame[wire.HeaderLen:], tail)
	wire.PutFrameHeader(b.frame[:wire.HeaderLen], wire.FrameBatch, b.frame[wire.HeaderLen:])
	return b.frame
}

// chunk accumulates encoded NDJSON lines plus the byte offset where each
// event starts, so a partial acceptance can resume mid-chunk.
type chunk struct {
	buf     bytes.Buffer
	offsets []int // offsets[i] = start of event i; len(offsets) = event count
}

func newChunk(hint int) *chunk {
	return &chunk{offsets: make([]int, 0, hint)}
}

// markStart records the buffer position where the next event's bytes will
// begin; call it immediately before encoding that event.
func (c *chunk) markStart()  { c.offsets = append(c.offsets, c.buf.Len()) }
func (c *chunk) events() int { return len(c.offsets) }
func (c *chunk) reset()      { c.buf.Reset(); c.offsets = c.offsets[:0] }

func (c *chunk) tail(fromEvent int) []byte {
	if fromEvent >= len(c.offsets) {
		return nil
	}
	return c.buf.Bytes()[c.offsets[fromEvent]:]
}

// postChunk sends the chunk, resuming on 429 from the server's accepted
// count. Any other non-2xx status is a hard error.
func postChunk(client *http.Client, url string, cd codec, c *chunk, maxRetries int, rep *Report) error {
	sent := 0 // events of this chunk the server has accepted
	for retry := 0; ; retry++ {
		body := cd.body(c.tail(sent))
		req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", cd.contentType())
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		rep.Posts++
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		var res server.IngestResult
		if err := json.Unmarshal(raw, &res); err != nil {
			return fmt.Errorf("loadgen: %s: status %d, undecodable body %q", url, resp.StatusCode, truncate(raw))
		}
		sent += res.Accepted
		rep.Events += res.Accepted
		switch resp.StatusCode {
		case http.StatusOK, http.StatusAccepted:
			if sent != c.events() {
				return fmt.Errorf("loadgen: server accepted %d of %d chunk events with status %d", sent, c.events(), resp.StatusCode)
			}
			return nil
		case http.StatusTooManyRequests:
			rep.Rejections++
			if retry >= maxRetries {
				return fmt.Errorf("loadgen: gave up after %d retries (%d of %d chunk events in): %s", retry, sent, c.events(), res.Error)
			}
			time.Sleep(retryDelay(resp, res))
		default:
			return fmt.Errorf("loadgen: %s: status %d: %s", url, resp.StatusCode, res.Error)
		}
	}
}

// retryDelay prefers the exact JSON retry hint over the whole-second
// Retry-After header, clamped to keep the loop lively in tests.
func retryDelay(resp *http.Response, res server.IngestResult) time.Duration {
	if res.RetryAfterMS > 0 {
		return time.Duration(res.RetryAfterMS * float64(time.Millisecond))
	}
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
			d := time.Duration(secs) * time.Second
			if d > 2*time.Second {
				d = 2 * time.Second
			}
			return d
		}
	}
	return 20 * time.Millisecond
}

func truncate(b []byte) string {
	const n = 200
	if len(b) > n {
		return string(b[:n]) + "..."
	}
	return string(b)
}
