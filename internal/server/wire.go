package server

import (
	"fmt"

	"spatialcrowd/internal/engine"
	"spatialcrowd/internal/geo"
	"spatialcrowd/internal/market"
)

// Wire event types: the "type" discriminator of WireEvent. They mirror the
// engine's public event kinds one-to-one; the engine's internal kinds
// (evict, admit, checkpoint, restore) have no wire form on purpose — a
// network client must not be able to fabricate control events.
const (
	WireTaskArrival   = "task"
	WireWorkerOnline  = "worker_online"
	WireWorkerOffline = "worker_offline"
	WireWorkerMove    = "worker_move"
	WireDecisionReply = "decision"
	WireTick          = "tick"
)

// WirePoint is the JSON form of a geo.Point.
type WirePoint struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

func (p WirePoint) point() geo.Point   { return geo.Point{X: p.X, Y: p.Y} }
func wirePoint(p geo.Point) *WirePoint { return &WirePoint{X: p.X, Y: p.Y} }

// WireTask is the JSON form of a market.Task. Valuation rides along only
// for replay/selftest traffic against an AutoDecide tenant (the simulated
// requester oracle lives server-side there); live quoted-mode clients send
// 0 and answer quotes themselves with "decision" events.
type WireTask struct {
	ID        int        `json:"id"`
	Period    int        `json:"period"`
	Origin    WirePoint  `json:"origin"`
	Dest      *WirePoint `json:"dest,omitempty"`
	Distance  float64    `json:"distance"`
	Valuation float64    `json:"valuation,omitempty"`
}

// WireWorker is the JSON form of a market.Worker.
type WireWorker struct {
	ID       int       `json:"id"`
	Period   int       `json:"period"`
	Loc      WirePoint `json:"loc"`
	Radius   float64   `json:"radius"`
	Duration int       `json:"duration,omitempty"`
}

// WireEvent is the JSON wire form of one engine event — the unit of the
// single-shot POST body and of each NDJSON ingest line.
type WireEvent struct {
	Type string `json:"type"`

	Task   *WireTask   `json:"task,omitempty"`   // type "task"
	Worker *WireWorker `json:"worker,omitempty"` // type "worker_online"

	WorkerID int        `json:"worker_id,omitempty"` // "worker_offline", "worker_move"
	To       *WirePoint `json:"to,omitempty"`        // "worker_move"

	TaskID int  `json:"task_id,omitempty"` // "decision"
	Accept bool `json:"accept,omitempty"`  // "decision"

	Period int `json:"period,omitempty"` // "tick"
}

// Event converts the wire form into an engine event, validating the
// per-type required payload.
func (w *WireEvent) Event() (engine.Event, error) {
	switch w.Type {
	case WireTaskArrival:
		if w.Task == nil {
			return engine.Event{}, fmt.Errorf(`event type %q needs a "task" payload`, w.Type)
		}
		t := market.Task{
			ID:        w.Task.ID,
			Period:    w.Task.Period,
			Origin:    w.Task.Origin.point(),
			Distance:  w.Task.Distance,
			Valuation: w.Task.Valuation,
		}
		if w.Task.Dest != nil {
			t.Dest = w.Task.Dest.point()
		}
		if t.Distance < 0 {
			return engine.Event{}, fmt.Errorf("task %d has negative distance %v", t.ID, t.Distance)
		}
		return engine.TaskArrival(t), nil
	case WireWorkerOnline:
		if w.Worker == nil {
			return engine.Event{}, fmt.Errorf(`event type %q needs a "worker" payload`, w.Type)
		}
		wk := market.Worker{
			ID:       w.Worker.ID,
			Period:   w.Worker.Period,
			Loc:      w.Worker.Loc.point(),
			Radius:   w.Worker.Radius,
			Duration: w.Worker.Duration,
		}
		if wk.Radius <= 0 {
			return engine.Event{}, fmt.Errorf("worker %d has non-positive radius %v", wk.ID, wk.Radius)
		}
		return engine.WorkerOnline(wk), nil
	case WireWorkerOffline:
		return engine.WorkerOffline(w.WorkerID), nil
	case WireWorkerMove:
		if w.To == nil {
			return engine.Event{}, fmt.Errorf(`event type %q needs a "to" position`, w.Type)
		}
		return engine.WorkerMove(w.WorkerID, w.To.point()), nil
	case WireDecisionReply:
		return engine.AcceptDecision(w.TaskID, w.Accept), nil
	case WireTick:
		return engine.Tick(w.Period), nil
	default:
		return engine.Event{}, fmt.Errorf("unknown event type %q", w.Type)
	}
}

// FromEvent converts an engine event into its wire form: the encoder the
// load generator uses, and the exact inverse of Event for every public
// event kind. Internal engine kinds return an error.
func FromEvent(ev engine.Event) (WireEvent, error) {
	switch ev.Kind {
	case engine.KindTaskArrival:
		t := ev.Task
		return WireEvent{Type: WireTaskArrival, Task: &WireTask{
			ID: t.ID, Period: t.Period,
			Origin:   WirePoint{X: t.Origin.X, Y: t.Origin.Y},
			Dest:     wirePoint(t.Dest),
			Distance: t.Distance, Valuation: t.Valuation,
		}}, nil
	case engine.KindWorkerOnline:
		w := ev.Worker
		return WireEvent{Type: WireWorkerOnline, Worker: &WireWorker{
			ID: w.ID, Period: w.Period,
			Loc:    WirePoint{X: w.Loc.X, Y: w.Loc.Y},
			Radius: w.Radius, Duration: w.Duration,
		}}, nil
	case engine.KindWorkerOffline:
		return WireEvent{Type: WireWorkerOffline, WorkerID: ev.WorkerID}, nil
	case engine.KindWorkerMove:
		return WireEvent{Type: WireWorkerMove, WorkerID: ev.WorkerID, To: wirePoint(ev.Loc)}, nil
	case engine.KindAcceptDecision:
		return WireEvent{Type: WireDecisionReply, TaskID: ev.TaskID, Accept: ev.Accept}, nil
	case engine.KindTick:
		return WireEvent{Type: WireTick, Period: ev.Period}, nil
	default:
		return WireEvent{}, fmt.Errorf("event kind %d has no wire form", ev.Kind)
	}
}

// WireDecision is the JSON form of an engine decision: the payload of the
// long-poll quote endpoint and of each SSE frame on the quote stream.
type WireDecision struct {
	TaskID    int     `json:"task_id"`
	Period    int     `json:"period"`
	Cell      int     `json:"cell"`
	Price     float64 `json:"price"`
	Quoted    bool    `json:"quoted"`
	Accepted  bool    `json:"accepted"`
	Served    bool    `json:"served"`
	WorkerID  int     `json:"worker_id"`
	Revenue   float64 `json:"revenue,omitempty"`
	LatencyNS int64   `json:"latency_ns"`
}

func wireDecision(d engine.Decision) WireDecision {
	return WireDecision{
		TaskID: d.TaskID, Period: d.Period, Cell: d.Cell,
		Price: d.Price, Quoted: d.Quoted, Accepted: d.Accepted,
		Served: d.Served, WorkerID: d.WorkerID, Revenue: d.Revenue,
		LatencyNS: int64(d.Latency),
	}
}
