// Package suite is the authoritative list of spatiallint analyzers, shared
// by the cmd/spatiallint standalone and vet-tool modes. New analyzers are
// added here (and documented in internal/analysis/README.md).
package suite

import (
	"spatialcrowd/internal/analysis"
	"spatialcrowd/internal/analysis/passes/arenaescape"
	"spatialcrowd/internal/analysis/passes/detmaprange"
	"spatialcrowd/internal/analysis/passes/detsource"
	"spatialcrowd/internal/analysis/passes/snapfields"
)

// All returns the spatiallint analyzer suite.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		detmaprange.Analyzer,
		detsource.Analyzer,
		arenaescape.Analyzer,
		snapfields.Analyzer,
	}
}

// ByName returns the named analyzers, or nil with false when a name is
// unknown.
func ByName(names []string) ([]*analysis.Analyzer, bool) {
	byName := map[string]*analysis.Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, false
		}
		out = append(out, a)
	}
	return out, true
}
