// Package detmaprange flags `for range` over maps in the engine's
// deterministic packages. Map iteration order is randomized per run, so a
// map-range on a replay path can reorder float additions (revenue), event
// emission, or checkpoint encoding — exactly the nondeterminism the
// engine's bit-identical replay contract forbids.
//
// A loop is accepted without a waiver when its body is provably
// order-insensitive:
//
//   - it only writes map entries (m[k] = v), deletes (delete(m, k)), or
//     accumulates with commutative integer ops (n++, n += x, bitwise or/and/
//     xor); float accumulation is never accepted — float addition is not
//     associative, which is the whole point;
//   - it only tracks an extremum (if v > best { best = v });
//   - it collects keys or values into a slice that is sorted by a
//     sort/slices call later in the same block (the sortedKeys pattern).
//
// Anything else needs `//lint:ordered <justification>` on the offending
// line (or the comment line above it).
package detmaprange

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"spatialcrowd/internal/analysis"
)

// Analyzer is the detmaprange pass.
var Analyzer = &analysis.Analyzer{
	Name: "detmaprange",
	Doc: "flags map iteration on deterministic replay paths unless the loop body " +
		"is provably order-insensitive or carries a //lint:ordered waiver",
	Run: run,
}

// detPackages are the packages whose execution must be bit-reproducible:
// everything between an event entering the engine and revenue leaving it.
var detPackages = []string{
	"spatialcrowd/internal/engine",
	"spatialcrowd/internal/window",
	"spatialcrowd/internal/core",
	"spatialcrowd/internal/market",
	"spatialcrowd/internal/match",
}

// inScope reports whether the package is held to the determinism contract.
// Packages outside the spatialcrowd module are analysistest testdata and
// are always in scope.
func inScope(path string) bool {
	if !strings.HasPrefix(path, "spatialcrowd/") && path != "spatialcrowd" {
		return true
	}
	for _, p := range detPackages {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.PkgPath) {
		return nil
	}
	for _, f := range pass.Files {
		// Tests assert determinism rather than sit on the replay path, and
		// ranging over a case map is idiomatic there (subtest order is
		// random by design).
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			var stmts []ast.Stmt
			switch b := n.(type) {
			case *ast.BlockStmt:
				stmts = b.List
			case *ast.CaseClause:
				stmts = b.Body
			case *ast.CommClause:
				stmts = b.Body
			default:
				return true
			}
			for i, st := range stmts {
				rs, ok := st.(*ast.RangeStmt)
				if !ok {
					continue
				}
				t := pass.TypesInfo.TypeOf(rs.X)
				if t == nil {
					continue
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					continue
				}
				if bodyOrderInsensitive(pass, rs.Body.List) {
					continue
				}
				if collectThenSort(pass, rs, stmts[i+1:]) {
					continue
				}
				pass.Reportf(rs.For, "map iteration order is nondeterministic and the loop body is not provably order-insensitive; iterate sorted keys, or waive with //lint:ordered <why>")
			}
			return true
		})
	}
	return nil
}

// bodyOrderInsensitive reports whether executing the statements once per
// map entry produces the same final state under any entry order.
func bodyOrderInsensitive(pass *analysis.Pass, stmts []ast.Stmt) bool {
	for _, st := range stmts {
		if !stmtOrderInsensitive(pass, st) {
			return false
		}
	}
	return true
}

func stmtOrderInsensitive(pass *analysis.Pass, st ast.Stmt) bool {
	switch s := st.(type) {
	case *ast.AssignStmt:
		return assignOrderInsensitive(pass, s)
	case *ast.IncDecStmt:
		return isIntegerish(pass.TypesInfo.TypeOf(s.X))
	case *ast.ExprStmt:
		// delete(m, k) commutes across distinct keys; any other call may
		// observe order through its side effects.
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "delete" {
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					return true
				}
			}
		}
		return false
	case *ast.IfStmt:
		if s.Init != nil && !stmtOrderInsensitive(pass, s.Init) {
			return false
		}
		if !pureExpr(pass, s.Cond) {
			return false
		}
		if extremumUpdate(s) {
			return true
		}
		if !bodyOrderInsensitive(pass, s.Body.List) {
			return false
		}
		if s.Else != nil {
			return stmtOrderInsensitive(pass, s.Else)
		}
		return true
	case *ast.BlockStmt:
		return bodyOrderInsensitive(pass, s.List)
	case *ast.BranchStmt:
		// continue is harmless; break/goto make the result depend on which
		// entry came first.
		return s.Tok == token.CONTINUE
	case *ast.DeclStmt:
		// A per-iteration declaration is fine as long as its initializers
		// are pure; the variable's effects are judged where it is used.
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return false
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				return false
			}
			for _, v := range vs.Values {
				if !pureExpr(pass, v) {
					return false
				}
			}
		}
		return true
	default:
		// break/return make the result depend on which entry came first;
		// nested loops, sends, and the rest are beyond this proof.
		return false
	}
}

// assignOrderInsensitive accepts map writes, commutative integer/bitwise
// accumulation, and idempotent constant stores.
func assignOrderInsensitive(pass *analysis.Pass, s *ast.AssignStmt) bool {
	for _, r := range s.Rhs {
		if !pureExpr(pass, r) {
			return false
		}
	}
	switch s.Tok {
	case token.ASSIGN, token.DEFINE:
		for i, l := range s.Lhs {
			if ix, ok := l.(*ast.IndexExpr); ok {
				if _, isMap := pass.TypesInfo.TypeOf(ix.X).Underlying().(*types.Map); isMap {
					continue // set/map insert: last-writer conflicts aside, commutative per key
				}
			}
			if s.Tok == token.DEFINE {
				continue // fresh per-iteration variable, judged at use sites
			}
			// A constant store is idempotent (found = true).
			if i < len(s.Rhs) && pass.TypesInfo.Types[s.Rhs[i]].Value != nil {
				continue
			}
			return false
		}
		return true
	case token.ADD_ASSIGN, token.SUB_ASSIGN:
		// Integer addition commutes; float addition does not associate.
		return allIntegerish(pass, s.Lhs)
	case token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		return allIntegerish(pass, s.Lhs)
	default:
		return false
	}
}

func allIntegerish(pass *analysis.Pass, exprs []ast.Expr) bool {
	for _, e := range exprs {
		if !isIntegerish(pass.TypesInfo.TypeOf(e)) {
			return false
		}
	}
	return true
}

func isIntegerish(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// extremumUpdate recognizes `if a OP b { x = y }` where OP is an ordering
// comparison and {x, y} are the compared expressions — the max/min pattern,
// which is order-insensitive.
func extremumUpdate(s *ast.IfStmt) bool {
	cmp, ok := s.Cond.(*ast.BinaryExpr)
	if !ok || s.Else != nil || len(s.Body.List) != 1 {
		return false
	}
	switch cmp.Op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ:
	default:
		return false
	}
	as, ok := s.Body.List[0].(*ast.AssignStmt)
	if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	l, r := types.ExprString(as.Lhs[0]), types.ExprString(as.Rhs[0])
	a, b := types.ExprString(cmp.X), types.ExprString(cmp.Y)
	return (l == a && r == b) || (l == b && r == a)
}

// collectThenSort recognizes the sortedKeys pattern: the loop only appends
// the key (or value) to a slice, and a later statement in the same block
// sorts that slice before anything else can observe its order.
func collectThenSort(pass *analysis.Pass, rs *ast.RangeStmt, rest []ast.Stmt) bool {
	if len(rs.Body.List) != 1 {
		return false
	}
	as, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	target, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) < 1 {
		return false
	}
	if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" {
		return false
	}
	if base, ok := call.Args[0].(*ast.Ident); !ok || base.Name != target.Name {
		return false
	}
	for _, st := range rest {
		es, ok := st.(*ast.ExprStmt)
		if !ok {
			// Any intervening statement might observe the unsorted slice.
			return false
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		if !sortsIdent(pass, call, target.Name) {
			return false
		}
		return true
	}
	return false
}

// sortsIdent reports whether the call is sort.X(name, ...) or
// slices.X(name, ...).
func sortsIdent(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) < 1 {
		return false
	}
	arg, ok := call.Args[0].(*ast.Ident)
	if !ok || arg.Name != name {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	p := fn.Pkg().Path()
	return p == "sort" || p == "slices"
}

// pureExpr reports whether evaluating e cannot observe iteration order
// through side effects: no calls (len/cap excepted), receives, or new
// closures.
func pureExpr(pass *analysis.Pass, e ast.Expr) bool {
	pure := true
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			id, ok := x.Fun.(*ast.Ident)
			if !ok {
				pure = false
				return false
			}
			if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin || (id.Name != "len" && id.Name != "cap") {
				pure = false
				return false
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				pure = false
				return false
			}
		case *ast.FuncLit:
			pure = false
			return false
		}
		return true
	})
	return pure
}
