// Package a exercises detmaprange: map iteration on a deterministic path.
package a

import "sort"

// Float accumulation over a map is the canonical violation: float addition
// is not associative, so iteration order changes the sum's low bits.
func sumRevenue(rev map[int]float64) float64 {
	total := 0.0
	for _, r := range rev { // want `map iteration order is nondeterministic`
		total += r
	}
	return total
}

// Integer accumulation commutes: clean.
func countTasks(byCell map[int][]int) int {
	n := 0
	for _, ts := range byCell {
		n += len(ts)
	}
	return n
}

// Per-key map writes commute across distinct keys: clean.
func invert(src map[int]int) map[int]int {
	dst := make(map[int]int, len(src))
	for k, v := range src {
		dst[v] = k
	}
	return dst
}

// delete commutes across distinct keys: clean.
func clearSeen(old, seen map[int]bool) {
	for k := range old {
		delete(seen, k)
	}
}

// Extremum tracking is order-insensitive: clean.
func maxPrice(prices map[int]float64) float64 {
	best := 0.0
	for _, v := range prices {
		if v > best {
			best = v
		}
	}
	return best
}

// The sortedKeys pattern: collect, then sort before anything observes the
// order. Clean.
func sortedKeys(m map[int]float64) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// Appending values in map order without a sort leaks the order: flagged.
func keysUnsorted(m map[int]float64) []int {
	var out []int
	for k := range m { // want `map iteration order is nondeterministic`
		out = append(out, k)
	}
	return out
}

// break makes the result depend on which entry came first: flagged.
func anyNegative(m map[int]float64) bool {
	found := false
	for _, v := range m { // want `map iteration order is nondeterministic`
		if v < 0 {
			found = true
			break
		}
	}
	return found
}

func process(v float64) float64 { return v * 2 }

// The call defeats the prover, but the waiver (with its mandatory
// justification) suppresses the diagnostic.
func waived(m map[int]float64, out map[int]float64) {
	//lint:ordered writes are keyed per entry and process is stateless
	for k, v := range m {
		out[k] = process(v)
	}
}
