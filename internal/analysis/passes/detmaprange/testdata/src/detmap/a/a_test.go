package a

// _test.go files are allow-listed: ranging over a case map is idiomatic in
// tests, and subtest order is random by design.
func casesByName() map[string]float64 {
	total := 0.0
	m := map[string]float64{"a": 1, "b": 2}
	for _, v := range m {
		total += v
	}
	m["total"] = total
	return m
}
