// Package util models a spatialcrowd package outside the deterministic set:
// detmaprange must not report here even for the canonical violation.
package util

func Sum(m map[int]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v
	}
	return total
}
