package detmaprange_test

import (
	"testing"

	"spatialcrowd/internal/analysis/analysistest"
	"spatialcrowd/internal/analysis/passes/detmaprange"
)

func TestDetMapRange(t *testing.T) {
	analysistest.Run(t, "testdata", detmaprange.Analyzer,
		"detmap/a",
		"spatialcrowd/internal/util",
	)
}
