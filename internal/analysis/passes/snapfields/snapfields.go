// Package snapfields guards the persistence seams: it verifies that the
// wire structs behind checkpoint/restore and stats serialization
// (engine checkpointFile/shardCk/statsJSON, core StrategyState/CellSnapshot
// and friends) have every field both populated before encoding and consumed
// on decode, and that explicit marshal/snapshot method pairs cover every
// field of their receiver. A field added to Stats but forgotten in
// MarshalJSON, or added to a *Ck struct but never restored, is exactly the
// silent persistence drop the engine's checkpoint exactness contract cannot
// tolerate.
//
// Two rules:
//
//  1. Wire structs — package-level structs whose every field carries a json
//     tag — must have each field written somewhere in the package
//     (composite-literal key or field assignment) and read somewhere
//     (selector use). Decode-only or encode-only fields are declared with a
//     `//lint:snapfields <why>` waiver on the field.
//
//  2. Persistence methods — MarshalJSON, UnmarshalJSON, SnapshotState,
//     RestoreState, and snapshot-prefixed capture methods — must reference every
//     field of their receiver struct, directly or through same-package
//     calls. Transient fields (config, per-call scratch) carry the waiver on
//     their declaration, which documents in-source why they survive a
//     restart without being serialized.
//
// Scope: internal/engine and internal/core, where the engine's persistence
// formats live.
package snapfields

import (
	"go/ast"
	"go/types"
	"reflect"
	"regexp"
	"sort"
	"strings"

	"spatialcrowd/internal/analysis"
)

// Analyzer is the snapfields pass.
var Analyzer = &analysis.Analyzer{
	Name: "snapfields",
	Doc: "verifies wire-struct and snapshot-method field coverage on the persistence " +
		"seams so new fields cannot silently drop from checkpoints or stats JSON",
	Run: run,
}

var scopePackages = []string{
	"spatialcrowd/internal/engine",
	"spatialcrowd/internal/core",
	"spatialcrowd/internal/wal",
	"spatialcrowd/internal/wire",
}

// persistMethod matches the method names making up the persistence seams:
// the json.Marshaler/Unmarshaler pair, the core.StateSnapshotter pair, and
// any snapshot-prefixed capture method (snapshotExact and friends). Restore
// helpers other than RestoreState are deliberately not matched: generic
// restore methods (Engine.Restore, shard.restore) rebuild runtime state
// far beyond the serialized field set, and their wire shapes are already
// covered by the wire-struct rule.
var persistMethod = regexp.MustCompile(`^(MarshalJSON|UnmarshalJSON|SnapshotState|RestoreState|[Ss]napshot\w*)$`)

func inScope(path string) bool {
	if !strings.HasPrefix(path, "spatialcrowd/") && path != "spatialcrowd" {
		return true // analysistest testdata
	}
	for _, p := range scopePackages {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.PkgPath) {
		return nil
	}
	checkWireStructs(pass)
	checkPersistMethods(pass)
	return nil
}

// wireStruct returns the struct's fields when every one of them carries a
// json tag (other than "-"), the marker of a serialization shape.
func wireStruct(st *types.Struct) []*types.Var {
	if st.NumFields() == 0 {
		return nil
	}
	fields := make([]*types.Var, 0, st.NumFields())
	for i := 0; i < st.NumFields(); i++ {
		name := reflect.StructTag(st.Tag(i)).Get("json")
		if name == "" || name == "-" {
			return nil
		}
		fields = append(fields, st.Field(i))
	}
	return fields
}

// checkWireStructs verifies rule 1: every field of every wire struct is
// written and read somewhere in the package.
func checkWireStructs(pass *analysis.Pass) {
	type coverage struct{ written, read bool }
	fieldCov := map[*types.Var]*coverage{}
	var wireFields []*types.Var
	wireOwner := map[*types.Var]string{}

	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for _, f := range wireStruct(st) {
			fieldCov[f] = &coverage{}
			wireFields = append(wireFields, f)
			wireOwner[f] = tn.Name()
		}
	}
	if len(wireFields) == 0 {
		return
	}

	// One walk marks writes (assignment LHS selectors, composite-literal
	// keys, positional literals) and reads (every other selector use).
	lhsTop := map[ast.Expr]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				for _, l := range x.Lhs {
					lhsTop[ast.Unparen(l)] = true
				}
			case *ast.SelectorExpr:
				sel, ok := pass.TypesInfo.Selections[x]
				if !ok || sel.Kind() != types.FieldVal {
					return true
				}
				fv, ok := sel.Obj().(*types.Var)
				if !ok {
					return true
				}
				cov, tracked := fieldCov[fv]
				if !tracked {
					return true
				}
				if lhsTop[x] {
					cov.written = true
				} else {
					cov.read = true
				}
			case *ast.CompositeLit:
				t := pass.TypesInfo.TypeOf(x)
				if t == nil {
					return true
				}
				if p, ok := t.Underlying().(*types.Pointer); ok {
					t = p.Elem()
				}
				st, ok := t.Underlying().(*types.Struct)
				if !ok {
					return true
				}
				if len(x.Elts) > 0 {
					if _, keyed := x.Elts[0].(*ast.KeyValueExpr); !keyed {
						// Positional literal: every field is written.
						for i := 0; i < st.NumFields(); i++ {
							if cov, tracked := fieldCov[st.Field(i)]; tracked {
								cov.written = true
							}
						}
						return true
					}
				}
				for _, el := range x.Elts {
					kv, ok := el.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					id, ok := kv.Key.(*ast.Ident)
					if !ok {
						continue
					}
					if fv, ok := pass.TypesInfo.Uses[id].(*types.Var); ok {
						if cov, tracked := fieldCov[fv]; tracked {
							cov.written = true
						}
					}
				}
			}
			return true
		})
	}

	for _, f := range wireFields {
		cov := fieldCov[f]
		if !cov.written {
			pass.Reportf(f.Pos(), "field %s of wire struct %s is never populated in this package: it will serialize as its zero value; fill it on the encode path, or waive with //lint:snapfields <why>", f.Name(), wireOwner[f])
		}
		if !cov.read {
			pass.Reportf(f.Pos(), "field %s of wire struct %s is never consumed in this package: its serialized value is dropped on restore; read it on the decode path, or waive with //lint:snapfields <why>", f.Name(), wireOwner[f])
		}
	}
}

// checkPersistMethods verifies rule 2: each persistence method references
// every field of its receiver struct, transitively through same-package
// calls.
func checkPersistMethods(pass *analysis.Pass) {
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
	}

	// missing aggregates (field -> methods that miss it) so one field
	// yields one diagnostic.
	type key struct {
		field *types.Var
		owner string
	}
	missing := map[key][]string{}

	for fn, fd := range decls {
		if fd.Recv == nil || !persistMethod.MatchString(fn.Name()) {
			continue
		}
		sig := fn.Type().(*types.Signature)
		recv := sig.Recv()
		if recv == nil {
			continue
		}
		rt := recv.Type()
		if p, ok := rt.Underlying().(*types.Pointer); ok {
			rt = p.Elem()
		}
		named, ok := rt.(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		want := map[*types.Var]bool{}
		for i := 0; i < st.NumFields(); i++ {
			want[st.Field(i)] = false
		}
		refs := referencedFields(pass, decls, fd)
		for f := range want {
			if !refs[f] {
				k := key{field: f, owner: named.Obj().Name()}
				missing[k] = append(missing[k], fn.Name())
			}
		}
	}

	for k, methods := range missing {
		sort.Strings(methods)
		pass.Reportf(k.field.Pos(), "field %s of %s is not referenced by persistence method(s) %s: it will be silently dropped from (or not restored into) the serialized state; include it, or mark it transient with //lint:snapfields <why>", k.field.Name(), k.owner, strings.Join(methods, ", "))
	}
}

// referencedFields collects every struct field referenced by the function
// body, following same-package calls to a fixed point.
func referencedFields(pass *analysis.Pass, decls map[*types.Func]*ast.FuncDecl, root *ast.FuncDecl) map[*types.Var]bool {
	refs := map[*types.Var]bool{}
	visited := map[*ast.FuncDecl]bool{}
	var visit func(fd *ast.FuncDecl)
	visit = func(fd *ast.FuncDecl) {
		if visited[fd] {
			return
		}
		visited[fd] = true
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.SelectorExpr:
				if sel, ok := pass.TypesInfo.Selections[x]; ok && sel.Kind() == types.FieldVal {
					if fv, ok := sel.Obj().(*types.Var); ok {
						refs[fv] = true
					}
				}
			case *ast.CompositeLit:
				for _, el := range x.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						if id, ok := kv.Key.(*ast.Ident); ok {
							if fv, ok := pass.TypesInfo.Uses[id].(*types.Var); ok {
								refs[fv] = true
							}
						}
					}
				}
			case *ast.CallExpr:
				if fn := calleeFunc(pass, x); fn != nil {
					if fd2, ok := decls[fn]; ok {
						visit(fd2)
					}
				}
			}
			return true
		})
	}
	visit(root)
	return refs
}

func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}
