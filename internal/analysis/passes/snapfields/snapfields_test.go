package snapfields_test

import (
	"testing"

	"spatialcrowd/internal/analysis/analysistest"
	"spatialcrowd/internal/analysis/passes/snapfields"
)

func TestSnapFields(t *testing.T) {
	analysistest.Run(t, "testdata", snapfields.Analyzer, "snap/a")
}
