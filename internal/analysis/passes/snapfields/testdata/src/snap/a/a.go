// Package a exercises snapfields: wire-struct coverage (rule 1) and
// persistence-method field coverage (rule 2).
package a

import "encoding/json"

// ckFile is a wire struct with every field written by save and read by
// load: clean.
type ckFile struct {
	Version int   `json:"version"`
	Cells   []int `json:"cells"`
}

func save(v int, cells []int) ([]byte, error) {
	return json.Marshal(ckFile{Version: v, Cells: cells})
}

func load(b []byte) (int, []int, error) {
	var f ckFile
	if err := json.Unmarshal(b, &f); err != nil {
		return 0, nil, err
	}
	return f.Version, f.Cells, nil
}

// staleFile has a field the decode path forgot: its serialized value is
// silently dropped on restore.
type staleFile struct {
	Version int `json:"version"`
	Extra   int `json:"extra"` // want `never consumed`
}

func saveStale(v, x int) ([]byte, error) {
	return json.Marshal(staleFile{Version: v, Extra: x})
}

func loadStale(b []byte) (int, error) {
	var f staleFile
	if err := json.Unmarshal(b, &f); err != nil {
		return 0, err
	}
	return f.Version, nil
}

// zeroFile has a field the encode path never fills: it always serializes as
// zero.
type zeroFile struct {
	Version int `json:"version"`
	Padding int `json:"padding"` // want `never populated`
}

func saveZero(v int) ([]byte, error) {
	return json.Marshal(zeroFile{Version: v})
}

func loadZero(b []byte) (int, error) {
	var f zeroFile
	if err := json.Unmarshal(b, &f); err != nil {
		return 0, err
	}
	return f.Version + f.Padding, nil
}

// counter has an explicit MarshalJSON/UnmarshalJSON pair that both miss one
// field; the transient buffer carries a waiver.
type counter struct {
	total   int
	hits    int   // want `not referenced by persistence method`
	scratch []int //lint:snapfields per-call buffer, rebuilt lazily on first use
}

func (c *counter) MarshalJSON() ([]byte, error) {
	return json.Marshal(map[string]int{"total": c.total})
}

func (c *counter) UnmarshalJSON(b []byte) error {
	var m map[string]int
	if err := json.Unmarshal(b, &m); err != nil {
		return err
	}
	c.total = m["total"]
	return nil
}

// gauge reaches its fields through a same-package helper: the transitive
// walk must see them. Clean.
type gauge struct {
	level int
	peak  int
}

func (g *gauge) SnapshotState() ([]byte, error) {
	return json.Marshal(g.snap())
}

func (g *gauge) snap() map[string]int {
	return map[string]int{"level": g.level, "peak": g.peak}
}
