package arenaescape_test

import (
	"testing"

	"spatialcrowd/internal/analysis/analysistest"
	"spatialcrowd/internal/analysis/passes/arenaescape"
)

func TestArenaEscape(t *testing.T) {
	analysistest.Run(t, "testdata", arenaescape.Analyzer, "arena/a")
}
