// Package arenaescape tracks values returned by the scratch-arena APIs —
// the Reset / *Scratch / *Append / *Into families introduced by the
// zero-allocation batch pipeline — and flags stores that retain them in
// struct fields or package variables. Arena-backed memory is recycled on
// the next batch: a retained slice or graph silently aliases the next
// window's data, which corrupts replay without crashing.
//
// The legitimate recycle idiom stays clean: storing the result back into
// the same object that owns the arena (`s.buf = copyInto(s.buf, ...)`,
// `x.pr = Priced{Ctx: core.BuildContextScratch(..., &x.ctxSc)}`) is how the
// arenas are threaded, and is recognized by matching the store target's
// root against the call's receiver and argument roots. Returning an
// arena-backed value is also fine — the contract ("valid until the next
// Price/Reset") is the callee's to document and the caller's to honor.
package arenaescape

import (
	"go/ast"
	"go/types"
	"regexp"

	"spatialcrowd/internal/analysis"
)

// Analyzer is the arenaescape pass.
var Analyzer = &analysis.Analyzer{
	Name: "arenaescape",
	Doc: "flags scratch-arena results (Reset/*Scratch/*Append/*Into families) retained " +
		"in struct fields or package variables across batch boundaries",
	Run: run,
}

// arenaFunc matches the arena API families. Only calls whose results carry
// references (slices, pointers, maps) are tracked.
var arenaFunc = regexp.MustCompile(`^Reset$|Scratch$|Append$|Into$`)

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// checkFunc runs the two-pass escape check over one function: first taint
// every local assigned from an arena call, then flag stores of tainted
// values (or direct call results) into fields and package variables.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	tainted := map[types.Object]*ast.CallExpr{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call := arenaCall(pass, as.Rhs[0])
		if call == nil {
			return true
		}
		for _, l := range as.Lhs {
			id, ok := l.(*ast.Ident)
			if !ok {
				continue
			}
			if obj := identObj(pass, id); obj != nil && obj.Parent() != pass.Pkg.Scope() {
				tainted[obj] = call
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, l := range as.Lhs {
			if i >= len(as.Rhs) && len(as.Rhs) != 1 {
				break
			}
			r := as.Rhs[0]
			if len(as.Rhs) == len(as.Lhs) {
				r = as.Rhs[i]
			}
			call, src := taintSource(pass, tainted, r)
			if call == nil {
				continue
			}
			target, root := escapeTarget(pass, l)
			if target == "" {
				continue
			}
			if root != nil && ownsArena(pass, call, root) {
				continue
			}
			pass.Reportf(l.Pos(), "%s is arena-backed (%s) and must not be retained in %s across batch boundaries; copy it, or waive with //lint:arenaescape <why>", src, callName(call), target)
		}
		return true
	})
}

// arenaCall returns the call if e is a call to an arena-family function
// whose results carry references.
func arenaCall(pass *analysis.Pass, e ast.Expr) *ast.CallExpr {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil
	}
	fn := calleeFunc(pass, call)
	if fn == nil || !arenaFunc.MatchString(fn.Name()) {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if carriesReference(sig.Results().At(i).Type()) {
			return call
		}
	}
	return nil
}

func carriesReference(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Slice, *types.Pointer, *types.Map:
		return true
	}
	return false
}

// taintSource resolves an expression to the arena call backing it: the call
// itself, a tainted local, or a composite literal embedding either.
func taintSource(pass *analysis.Pass, tainted map[types.Object]*ast.CallExpr, e ast.Expr) (*ast.CallExpr, string) {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op.String() == "&" {
		e = ast.Unparen(u.X)
	}
	if call := arenaCall(pass, e); call != nil {
		return call, "the result of this call"
	}
	if id, ok := e.(*ast.Ident); ok {
		if call, ok := tainted[identObj(pass, id)]; ok {
			return call, id.Name
		}
	}
	if lit, ok := e.(*ast.CompositeLit); ok {
		for _, el := range lit.Elts {
			v := el
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			if call, src := taintSource(pass, tainted, v); call != nil {
				return call, src
			}
		}
	}
	return nil, ""
}

// escapeTarget classifies an assignment LHS that outlives the batch:
// a field store (selector or indexed field) or a package variable. It
// returns a description and the root object the store hangs off.
func escapeTarget(pass *analysis.Pass, l ast.Expr) (string, types.Object) {
	switch x := ast.Unparen(l).(type) {
	case *ast.Ident:
		obj := identObj(pass, x)
		if obj != nil && obj.Parent() == pass.Pkg.Scope() {
			return "package variable " + x.Name, nil
		}
		return "", nil
	case *ast.SelectorExpr, *ast.IndexExpr:
		root := rootIdent(l)
		if root == nil {
			return "", nil
		}
		obj := identObj(pass, root)
		if obj == nil {
			return "", nil
		}
		if _, isPkg := obj.(*types.PkgName); isPkg {
			return "", nil
		}
		return "field " + types.ExprString(l), obj
	}
	return "", nil
}

// ownsArena reports whether the store target's root object also appears as
// the call's receiver root or among its argument roots — the self-recycle
// idiom, where the object retaining the result owns the arena it came from.
func ownsArena(pass *analysis.Pass, call *ast.CallExpr, root types.Object) bool {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if r := rootIdent(sel.X); r != nil && identObj(pass, r) == root {
			return true
		}
	}
	for _, a := range call.Args {
		if r := rootIdent(a); r != nil && identObj(pass, r) == root {
			return true
		}
	}
	return false
}

// rootIdent walks to the base identifier of a selector/index/slice/unary
// chain.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.CallExpr:
			return nil
		default:
			return nil
		}
	}
}

func identObj(pass *analysis.Pass, id *ast.Ident) types.Object {
	if obj := pass.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Defs[id]
}

// calleeFunc resolves the called function or method, if statically known.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

func callName(call *ast.CallExpr) string {
	return types.ExprString(call.Fun)
}
