// Package a models the engine's batch-scratch recycle idiom
// (engine.shard.closeBatch and its batchScratch arenas) together with the
// retention bugs arenaescape exists to catch.
package a

type worker struct{ id int }

// scratch owns per-batch arenas, like engine.batchScratch.
type scratch struct {
	batchW  []worker
	poolIdx []int
}

// FilterAppend is an arena-family API: appends active workers to dst and
// returns the (possibly regrown) buffer. The result is valid until the
// buffer's next reuse.
func FilterAppend(dst []worker, src []worker, period int) []worker {
	for _, w := range src {
		if w.id >= period {
			dst = append(dst, w)
		}
	}
	return dst
}

// IDsScratch exposes s's reusable id buffer, truncated.
func (s *scratch) IDsScratch() []int { return s.poolIdx[:0] }

type batchView struct{ workers []worker }

type shard struct {
	sc   scratch
	pool []worker

	view     []worker
	last     batchView
	cacheIDs []int
}

// closeBatch is the clean idiom: the result lands back in the arena that
// produced it, exactly like shard.closeBatch refilling sc.batchW.
func (s *shard) closeBatch(period int) int {
	s.sc.batchW = FilterAppend(s.sc.batchW[:0], s.pool, period)
	ids := s.sc.IDsScratch() // local use of a scratch view is fine
	s.cacheIDs = s.sc.IDsScratch()
	return len(ids) + len(s.sc.batchW)
}

// consume only inspects the arena-backed slice locally: clean.
func (s *shard) consume(o *scratch, period int) int {
	tmp := FilterAppend(o.batchW[:0], s.pool, period)
	return len(tmp)
}

var lastBatch []worker

// leaks retains another object's arena memory across the batch boundary in
// a struct field, a package variable, a tainted local, and a composite
// literal — all four escape routes.
func (s *shard) leaks(o *scratch, src []worker, period int) {
	s.view = FilterAppend(o.batchW[:0], src, period)    // want `arena-backed`
	lastBatch = FilterAppend(o.batchW[:0], src, period) // want `arena-backed`

	buf := FilterAppend(o.batchW[:0], src, period)
	s.view = buf // want `arena-backed`

	s.last = batchView{workers: FilterAppend(o.batchW[:0], src, period)} // want `arena-backed`

	s.cacheIDs = o.IDsScratch() // want `arena-backed`
}

// waived documents a deliberate ownership transfer.
func (s *shard) waived(o *scratch, src []worker, period int) {
	s.view = FilterAppend(o.batchW[:0], src, period) //lint:arenaescape o is discarded after this call; ownership transfers to s
}
