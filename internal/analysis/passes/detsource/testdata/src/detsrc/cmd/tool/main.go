// Package main models an operational command; cmd/ paths are allow-listed
// because tooling legitimately reads the clock.
package main

import "time"

func main() {
	_ = time.Now()
}
