package a

import "time"

// _test.go files are allow-listed: tests may time themselves freely.
func helperNow() time.Time { return time.Now() }
